GO ?= go

.PHONY: all build vet test race check bench bench-smoke bench-gate profile fuzz fuzz-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must build, vet clean, and pass the full
# test suite (including the fuzz seed corpus, which plain `go test` replays)
# under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	# Multi-shard smoke: two peered brokers, skewed submission, asserts at
	# least one migration and every job completing (also part of the suite
	# above; kept explicit so sharding regressions fail loudly).
	$(GO) test -race -run 'TestShardGroupExchangeSmoke' -count 1 ./internal/broker/
	# Batching smoke under race: the batched control plane (the default) and
	# its -no-batch ablation must stay bit-identical, live and sharded.
	$(GO) test -race -run 'TestDifferentialBatching' -count 1 ./internal/broker/
	# Partitioned-core smoke under race: -partitions=1 must stay
	# event-identical to the legacy serialized broker, and the cross-stripe
	# stress (interleaved submit/result/deadline/cancel plus a provider loss)
	# must finalize every tasklet exactly once and leak no attempts.
	$(GO) test -race -run 'TestDifferentialPartitions|TestPartitionStress' -count 1 ./internal/broker/

# bench runs the headline benchmarks with allocation reporting: interpreter
# hot paths, the broker data-plane throughput pair (coalescing on/off), and
# the wire send path. Compare runs across commits with benchstat
# (golang.org/x/perf/cmd/benchstat); the experiment-level numbers behind
# BENCH_PR2.json / BENCH_PR3.json regenerate via
# `go run ./cmd/tasklet-bench -exp e8|e9 -json <file>`.
bench:
	$(GO) test -run XXX -bench 'BenchmarkVM_|BenchmarkE1_SpinVM|BenchmarkAblation_Optimize|BenchmarkAblation_Memo|BenchmarkBrokerThroughput|BenchmarkAblation_Coalesce|BenchmarkAblation_Batch' -benchmem .
	$(GO) test -run XXX -bench 'BenchmarkConnSend|BenchmarkLegacySend|BenchmarkBatch' -benchmem ./internal/wire/
	$(GO) test -run XXX -bench BenchmarkSchedulerPick -benchmem ./internal/scheduler/
	$(GO) test -run XXX -bench BenchmarkBrokerPlacement -benchmem ./internal/broker/
	$(GO) test -run XXX -bench BenchmarkLifecycleEngine -benchmem ./internal/lifecycle/
	$(GO) test -run XXX -bench 'BenchmarkRing|BenchmarkPlanPull' -benchmem ./internal/shard/

# profile captures CPU, mutex and block profiles from the saturating
# broker-throughput benchmark — the partitioned core's hot path. Inspect
# with `go tool pprof $(PROFILEDIR)/cpu.out` (or mutex.out / block.out) plus
# the test binary left beside them; mutex samples on b.mu and the partition
# stripes are the first thing to look at when scaling regresses.
PROFILEDIR ?= profiles
profile:
	mkdir -p $(PROFILEDIR)
	$(GO) test -run XXX -bench 'BenchmarkBrokerThroughput$$' -benchmem \
		-cpuprofile $(PROFILEDIR)/cpu.out \
		-mutexprofile $(PROFILEDIR)/mutex.out \
		-blockprofile $(PROFILEDIR)/block.out \
		-o $(PROFILEDIR)/bench.test .

# bench-gate re-runs the partitioned-core experiment at CI scale and diffs
# its series against the committed baseline (BENCH_PR9.json). Drops beyond
# 10% print WARN lines but never fail the target — host noise makes CI
# timings advisory; the hard thresholds live inside the experiment itself
# (it errors below a 1.5x P=8-vs-P=1 speedup).
bench-gate:
	$(GO) run ./cmd/tasklet-bench -exp e13 -quick -q -compare BENCH_PR9.json

# bench-smoke compiles and runs every throughput/ablation benchmark exactly
# once (-benchtime=1x) — the CI gate that keeps the bench harness building
# and executing without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -run XXX -bench 'BenchmarkBrokerThroughput|BenchmarkAblation_' -benchtime 1x .
	$(GO) test -run XXX -bench . -benchtime 1x ./internal/wire/
	$(GO) test -run XXX -bench BenchmarkSchedulerPick -benchtime 1x ./internal/scheduler/
	$(GO) test -run XXX -bench 'BenchmarkBrokerPlacement/P=(100|1000)$$/' -benchtime 1x ./internal/broker/
	$(GO) test -run XXX -bench BenchmarkLifecycleEngine -benchtime 1x ./internal/lifecycle/
	$(GO) test -run XXX -bench . -benchtime 1x ./internal/shard/

# fuzz gives the program decoder + differential interpreter fuzzer a short
# budget; lengthen FUZZTIME for deeper runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzProgramUnmarshal -fuzztime $(FUZZTIME) ./internal/tvm/

# fuzz-smoke gives every fuzzer in the repo a short budget — the CI-sized
# sweep that catches regressions in the decoders and the compiler without
# the cost of a real fuzzing campaign.
SMOKETIME ?= 10s
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzProgramUnmarshal -fuzztime $(SMOKETIME) ./internal/tvm/
	$(GO) test -run XXX -fuzz FuzzDecodeValue -fuzztime $(SMOKETIME) ./internal/tvm/
	$(GO) test -run XXX -fuzz FuzzCompile -fuzztime $(SMOKETIME) ./internal/tasklang/
	$(GO) test -run XXX -fuzz FuzzUnmarshal -fuzztime $(SMOKETIME) ./internal/wire/
	$(GO) test -run XXX -fuzz FuzzLifecycle -fuzztime $(SMOKETIME) ./internal/lifecycle/

clean:
	$(GO) clean ./...
