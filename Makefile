GO ?= go

.PHONY: all build vet test race check bench fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must build, vet clean, and pass the full
# test suite (including the fuzz seed corpus, which plain `go test` replays)
# under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the headline interpreter benchmarks with allocation reporting.
bench:
	$(GO) test -run XXX -bench 'BenchmarkVM_|BenchmarkE1_SpinVM|BenchmarkAblation_Optimize' -benchmem .

# fuzz gives the program decoder + differential interpreter fuzzer a short
# budget; lengthen FUZZTIME for deeper runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzProgramUnmarshal -fuzztime $(FUZZTIME) ./internal/tvm/

clean:
	$(GO) clean ./...
