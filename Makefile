GO ?= go

.PHONY: all build vet test race check bench fuzz fuzz-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must build, vet clean, and pass the full
# test suite (including the fuzz seed corpus, which plain `go test` replays)
# under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the headline interpreter benchmarks with allocation reporting.
bench:
	$(GO) test -run XXX -bench 'BenchmarkVM_|BenchmarkE1_SpinVM|BenchmarkAblation_Optimize|BenchmarkAblation_Memo' -benchmem .

# fuzz gives the program decoder + differential interpreter fuzzer a short
# budget; lengthen FUZZTIME for deeper runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzProgramUnmarshal -fuzztime $(FUZZTIME) ./internal/tvm/

# fuzz-smoke gives every fuzzer in the repo a short budget — the CI-sized
# sweep that catches regressions in the decoders and the compiler without
# the cost of a real fuzzing campaign.
SMOKETIME ?= 10s
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzProgramUnmarshal -fuzztime $(SMOKETIME) ./internal/tvm/
	$(GO) test -run XXX -fuzz FuzzDecodeValue -fuzztime $(SMOKETIME) ./internal/tvm/
	$(GO) test -run XXX -fuzz FuzzCompile -fuzztime $(SMOKETIME) ./internal/tasklang/
	$(GO) test -run XXX -fuzz FuzzUnmarshal -fuzztime $(SMOKETIME) ./internal/wire/

clean:
	$(GO) clean ./...
