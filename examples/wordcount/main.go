// Wordcount: data-parallel text processing in the Tasklet model. A corpus
// is split into shards, one tasklet counts a target word per shard, and the
// consumer reduces the partial counts — the classic map/reduce shape on the
// Tasklet middleware.
//
//	go run ./examples/wordcount
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/tasklets"
)

// corpus is a public-domain excerpt (Lincoln, Gettysburg Address).
const corpus = `
Four score and seven years ago our fathers brought forth on this continent a
new nation conceived in liberty and dedicated to the proposition that all men
are created equal Now we are engaged in a great civil war testing whether
that nation or any nation so conceived and so dedicated can long endure We
are met on a great battlefield of that war We have come to dedicate a portion
of that field as a final resting place for those who here gave their lives
that that nation might live It is altogether fitting and proper that we
should do this But in a larger sense we can not dedicate we can not
consecrate we can not hallow this ground The brave men living and dead who
struggled here have consecrated it far above our poor power to add or detract
The world will little note nor long remember what we say here but it can
never forget what they did here It is for us the living rather to be
dedicated here to the unfinished work which they who fought here have thus
far so nobly advanced It is rather for us to be here dedicated to the great
task remaining before us that from these honored dead we take increased
devotion to that cause for which they gave the last full measure of devotion
that we here highly resolve that these dead shall not have died in vain that
this nation under God shall have a new birth of freedom and that government
of the people by the people for the people shall not perish from the earth
`

const target = "that"

func main() {
	broker, err := tasklets.NewBroker(tasklets.BrokerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := broker.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()

	for i := 0; i < 3; i++ {
		p, err := tasklets.StartProvider(tasklets.ProviderOptions{
			Broker: addr, Slots: 2, Name: fmt.Sprintf("wc-%d", i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
	}

	prog, err := tasklets.Compile(`
		func main(text str, word str) int {
			var words arr = split(lower(text), "");
			var t str = lower(word);
			var count int = 0;
			for (var i int = 0; i < len(words); i = i + 1) {
				if (words[i] == t) { count = count + 1; }
			}
			return count;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Shard the corpus by lines, 4 lines per shard (the "map" phase input).
	lines := strings.Split(strings.TrimSpace(corpus), "\n")
	var shards []string
	for i := 0; i < len(lines); i += 4 {
		end := i + 4
		if end > len(lines) {
			end = len(lines)
		}
		shards = append(shards, strings.Join(lines[i:end], "\n"))
	}
	params := make([][]tasklets.Value, len(shards))
	for i, shard := range shards {
		params[i] = []tasklets.Value{tasklets.Str(shard), tasklets.Str(target)}
	}

	client, err := tasklets.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	job, err := client.Map(prog, params, tasklets.JobOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := job.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Reduce.
	total := int64(0)
	for i, r := range results {
		if !r.OK() {
			log.Fatalf("shard %d failed: %s", i, r.Fault)
		}
		fmt.Printf("shard %2d: %2d occurrences\n", i, r.Return.I)
		total += r.Return.I
	}

	// Verify against a local count.
	localCount := int64(0)
	for _, w := range strings.Fields(strings.ToLower(corpus)) {
		if w == target {
			localCount++
		}
	}
	fmt.Printf("\n%q appears %d times (local verification: %d)\n", target, total, localCount)
	if total != localCount {
		log.Fatal("distributed count disagrees with local count")
	}
}
