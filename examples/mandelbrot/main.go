// Mandelbrot: the paper's canonical compute-offload scenario. A weak
// "phone" (the consumer) renders a fractal by shipping one tasklet per
// image row to a heterogeneous fleet — a fast desktop, a laptop, and a slow
// phone-class provider — and the middleware's speed-aware scheduler keeps
// most rows on the fast device.
//
//	go run ./examples/mandelbrot
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/tasklets"
)

const (
	width   = 100
	height  = 30
	maxIter = 200
)

var shades = []byte(" .:-=+*#%@")

func main() {
	broker, err := tasklets.NewBroker(tasklets.BrokerOptions{Policy: "work_steal"})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := broker.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()

	// A heterogeneous fleet: throttle emulates weaker device classes.
	fleet := []struct {
		name     string
		slots    int
		throttle float64
		class    tasklets.DeviceClass
	}{
		{"desktop", 4, 1.0, tasklets.ClassDesktop},
		{"laptop", 2, 0.6, tasklets.ClassLaptop},
		{"phone", 1, 0.25, tasklets.ClassMobile},
	}
	providers := map[uint64]string{}
	for _, spec := range fleet {
		p, err := tasklets.StartProvider(tasklets.ProviderOptions{
			Broker: addr, Slots: spec.slots, Throttle: spec.throttle,
			Class: spec.class, Name: spec.name,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		providers[p.ID()] = spec.name
	}

	prog, err := tasklets.Compile(`
		func main(y int, w int, h int, mi int) int {
			var total int = 0;
			for (var x int = 0; x < w; x = x + 1) {
				var cr float = (float(x) / float(w)) * 3.5 - 2.5;
				var ci float = (float(y) / float(h)) * 2.0 - 1.0;
				var zr float = 0.0;
				var zi float = 0.0;
				var it int = 0;
				while (it < mi && zr*zr + zi*zi <= 4.0) {
					var t float = zr*zr - zi*zi + cr;
					zi = 2.0*zr*zi + ci;
					zr = t;
					it = it + 1;
				}
				emit(it);
				total = total + it;
			}
			return total;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	client, err := tasklets.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	params := make([][]tasklets.Value, height)
	for y := range params {
		params[y] = []tasklets.Value{
			tasklets.Int(int64(y)), tasklets.Int(width),
			tasklets.Int(height), tasklets.Int(maxIter),
		}
	}

	start := time.Now()
	job, err := client.Map(prog, params, tasklets.JobOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rows, err := job.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Render: each emitted value is one pixel's iteration count.
	perProvider := map[string]int{}
	for y, r := range rows {
		if !r.OK() {
			log.Fatalf("row %d failed: %s", y, r.Fault)
		}
		line := make([]byte, width)
		for x, v := range r.Emitted {
			shade := int(v.I) * (len(shades) - 1) / maxIter
			line[x] = shades[shade]
		}
		fmt.Println(string(line))
		name := providers[uint64(r.Provider)]
		if name == "" {
			name = fmt.Sprintf("provider-%d", r.Provider)
		}
		perProvider[name]++
	}

	fmt.Printf("\nrendered %dx%d in %v\n", width, height, elapsed.Round(time.Millisecond))
	for _, spec := range fleet {
		fmt.Printf("  %-8s rendered %2d rows\n", spec.name, perProvider[spec.name])
	}
}
