// Quickstart: the smallest complete Tasklet deployment — a broker, two
// providers and a consumer in one process — squaring numbers remotely.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/tasklets"
)

func main() {
	// 1. Start a broker on an ephemeral port.
	broker, err := tasklets.NewBroker(tasklets.BrokerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := broker.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	fmt.Println("broker listening on", addr)

	// 2. Donate some cycles: two providers with two slots each. In a real
	// deployment these run on other machines via cmd/tasklet-provider.
	for i := 0; i < 2; i++ {
		p, err := tasklets.StartProvider(tasklets.ProviderOptions{
			Broker: addr, Slots: 2, Name: fmt.Sprintf("quickstart-%d", i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
	}

	// 3. Write a tasklet in TCL and compile it once.
	prog, err := tasklets.Compile(`
		func main(n int) int {
			return n * n;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Connect as a consumer and map the tasklet over a parameter grid.
	client, err := tasklets.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	params := make([][]tasklets.Value, 10)
	for i := range params {
		params[i] = []tasklets.Value{tasklets.Int(int64(i))}
	}
	job, err := client.Map(prog, params, tasklets.JobOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Collect results (ordered by tasklet index).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := job.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		if !r.OK() {
			log.Fatalf("tasklet %d failed: %s", i, r.Fault)
		}
		fmt.Printf("%d^2 = %s  (provider %d)\n", i, r.Return, r.Provider)
	}
}
