// Pi estimate: embarrassingly parallel Monte-Carlo simulation under voting
// QoC. Each tasklet throws a batch of pseudo-random darts; because rand()
// is seeded per job, every replica of a tasklet produces bit-identical
// output, so majority voting works even for stochastic computations — the
// property that lets the middleware trust results from anonymous devices.
//
//	go run ./examples/piestimate
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/tasklets"
)

const (
	shards          = 24
	samplesPerShard = 200_000
)

func main() {
	broker, err := tasklets.NewBroker(tasklets.BrokerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := broker.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()

	for i := 0; i < 3; i++ {
		p, err := tasklets.StartProvider(tasklets.ProviderOptions{
			Broker: addr, Slots: 2, Name: fmt.Sprintf("pi-%d", i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
	}

	// Each shard mixes its index into the dart positions so shards are
	// independent samples, while replicas of the same shard (same index,
	// same job seed) remain identical for voting.
	prog, err := tasklets.Compile(`
		func main(shard int, samples int) int {
			// Burn shard-dependent draws so every shard explores a
			// different part of the stream.
			for (var k int = 0; k < shard * 7; k = k + 1) { rand(); }
			var hits int = 0;
			for (var i int = 0; i < samples; i = i + 1) {
				var x float = rand();
				var y float = rand();
				if (x*x + y*y <= 1.0) { hits = hits + 1; }
			}
			return hits;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	client, err := tasklets.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	params := make([][]tasklets.Value, shards)
	for i := range params {
		params[i] = []tasklets.Value{tasklets.Int(int64(i)), tasklets.Int(samplesPerShard)}
	}
	start := time.Now()
	job, err := client.Map(prog, params, tasklets.JobOptions{
		QoC:  tasklets.QoC{Mode: tasklets.Voting, Replicas: 3},
		Seed: 12345,
		Fuel: 1 << 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := job.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var hits, attempts int64
	for i, r := range results {
		if !r.OK() {
			log.Fatalf("shard %d failed: %s", i, r.Fault)
		}
		hits += r.Return.I
		attempts += int64(r.Attempts)
	}
	total := float64(shards) * samplesPerShard
	pi := 4 * float64(hits) / total
	fmt.Printf("π ≈ %.6f  (error %.6f) from %.0f samples\n", pi, math.Abs(pi-math.Pi), total)
	fmt.Printf("%d shards, 3-way voting, %d attempts total, %v wall\n",
		shards, attempts, elapsed.Round(time.Millisecond))
	if math.Abs(pi-math.Pi) > 0.01 {
		log.Fatal("estimate implausibly far from π")
	}
}
