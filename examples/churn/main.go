// Churn: reliability on an unreliable fleet. Two of the three providers
// crash partway through the job; the broker's failure detector and the QoC
// engine re-issue the lost tasklets, and the whole batch still completes
// correctly. A second round demonstrates majority voting over redundant
// executions.
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/tasklets"
)

func main() {
	broker, err := tasklets.NewBroker(tasklets.BrokerOptions{
		HeartbeatTimeout: 500 * time.Millisecond, // fast failure detection for the demo
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := broker.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()

	// Two flaky providers (they crash after 8 tasklets each) and one
	// stable one.
	for i := 0; i < 2; i++ {
		p, err := tasklets.StartProvider(tasklets.ProviderOptions{
			Broker: addr, Slots: 1, Name: fmt.Sprintf("flaky-%d", i), FailAfter: 8,
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
	}
	stable, err := tasklets.StartProvider(tasklets.ProviderOptions{
		Broker: addr, Slots: 1, Name: "stable",
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stable.Close()

	prog, err := tasklets.Compile(`
		func main(n int) int {
			// A little real work so crashes land mid-job.
			var acc int = 0;
			for (var i int = 0; i < 200000; i = i + 1) { acc = acc + i % 7; }
			return n * n + acc - acc;
		}
	`)
	if err != nil {
		log.Fatal(err)
	}

	client, err := tasklets.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	const n = 40
	params := make([][]tasklets.Value, n)
	for i := range params {
		params[i] = []tasklets.Value{tasklets.Int(int64(i))}
	}

	fmt.Println("round 1: best-effort QoC on a crashing fleet")
	start := time.Now()
	job, err := client.Map(prog, params, tasklets.JobOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := job.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	retried := 0
	for i, r := range results {
		if !r.OK() {
			log.Fatalf("tasklet %d failed: %s", i, r.Fault)
		}
		if r.Return.I != int64(i*i) {
			log.Fatalf("tasklet %d wrong: %s", i, r.Return)
		}
		if r.Attempts > 1 {
			retried++
		}
	}
	fmt.Printf("  all %d tasklets correct in %v; %d were re-issued after provider crashes\n",
		n, time.Since(start).Round(time.Millisecond), retried)
	fmt.Printf("  stable provider executed %d tasklets\n\n", stable.Executed())

	// Round 2: voting. Every tasklet runs on 3 distinct providers (the
	// broker re-spreads as the fleet changes) and completes only when a
	// majority agree.
	fmt.Println("round 2: majority voting (3 replicas) on the surviving fleet")
	for i := 0; i < 2; i++ {
		p, err := tasklets.StartProvider(tasklets.ProviderOptions{
			Broker: addr, Slots: 1, Name: fmt.Sprintf("late-%d", i),
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
	}
	job2, err := client.Map(prog, params[:10], tasklets.JobOptions{
		QoC: tasklets.QoC{Mode: tasklets.Voting, Replicas: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	results2, err := job2.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results2 {
		if !r.OK() || r.Return.I != int64(i*i) {
			log.Fatalf("voting tasklet %d: %+v", i, r)
		}
	}
	fmt.Printf("  10 tasklets completed with %d-way agreement each\n", 2)
	fmt.Println("done")
}
