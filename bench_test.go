// Package repro's root bench harness regenerates the paper's evaluation
// artifacts: one benchmark per table/figure (E1–E7, see DESIGN.md §4),
// each reporting its headline metric via b.ReportMetric, plus
// micro-benchmarks for the hot paths (VM, codec, scheduler, simulator).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The full experiment reports (complete series/tables) come from
// cmd/tasklet-bench; these benches track the same quantities in a form the
// Go tooling can diff across commits.
package repro

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/provider"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/stdtasks"
	"repro/internal/tasklang"
	"repro/internal/tvm"
	"repro/internal/wire"
	"repro/internal/workload"
)

func quickOpts() experiments.Options { return experiments.Options{Quick: true, Seed: 42} }

// ---------- E1: Table 1 — middleware micro-overheads ----------

func BenchmarkE1_CompileMandelbrot(b *testing.B) {
	src := stdtasks.Sources["mandelbrot"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tasklang.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_VMDispatchNoop(b *testing.B) {
	prog := stdtasks.MustProgram("noop")
	cfg := tvm.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tvm.New(prog, cfg).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_SpinVM(b *testing.B) {
	prog := stdtasks.MustProgram("spin")
	cfg := tvm.DefaultConfig()
	const iters = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tvm.New(prog, cfg).Run(tvm.Int(iters))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.FuelUsed)*float64(b.N), "fuel/op-total")
		}
	}
}

func BenchmarkE1_SpinNative(b *testing.B) {
	const iters = 100_000
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = stdtasks.RefSpin(iters)
	}
	_ = sink
}

func BenchmarkE1_Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE1(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// ---------- E2: Figure 2 — offload crossover ----------

func BenchmarkE2_OffloadCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE2(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: offload cost on the largest quick size (ms).
		remote := res.Series[1]
		b.ReportMetric(remote.Y[len(remote.Y)-1], "offload-ms@1e6")
	}
}

// ---------- E3: Figure 3 — speedup vs providers ----------

func BenchmarkE3_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE3(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup := res.Series[0]
		b.ReportMetric(speedup.Y[len(speedup.Y)-1],
			fmt.Sprintf("speedup@%.0fproviders", speedup.X[len(speedup.X)-1]))
	}
}

// ---------- E4: Figure 4 — heterogeneity & policy ----------

func BenchmarkE4_Heterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE4(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: random/fastest latency ratio at max spread.
		var random, fastest float64
		for _, s := range res.Series {
			last := s.Y[len(s.Y)-1]
			switch {
			case s.Name == "random ms":
				random = last
			case s.Name == "fastest ms":
				fastest = last
			}
		}
		if fastest > 0 {
			b.ReportMetric(random/fastest, "random/fastest@spread16")
		}
	}
}

// ---------- E5: Figure 5 — churn ----------

func BenchmarkE5_Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE5(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: redundant2 completion at the harshest MTBF.
		red := res.Series[2]
		b.ReportMetric(red.Y[len(red.Y)-1], "redundant2-%done@mtbf8s")
	}
}

// ---------- E6: Table 2 — QoC cost ----------

func BenchmarkE6_QoCCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE6(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 5 {
			b.Fatal("rows missing")
		}
	}
}

// ---------- E7: Figure 6 — broker throughput ----------

func BenchmarkE7_BrokerThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE7(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		tput := res.Series[0]
		var max float64
		for _, y := range tput.Y {
			if y > max {
				max = y
			}
		}
		b.ReportMetric(max, "tasklets/s-peak")
	}
}

// ---------- micro-benchmarks ----------

func BenchmarkVM_Fib20(b *testing.B) {
	prog, err := tasklang.Compile(`
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main(n int) int { return fib(n); }`)
	if err != nil {
		b.Fatal(err)
	}
	vm := tvm.New(prog, tvm.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Reset()
		if _, err := vm.Run(tvm.Int(20)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVM_FusedDispatch exercises the superinstruction-dense inner loop
// shape (local/int compare-and-branch, arithmetic-on-locals with store):
// after the load-time pass the loop body executes as 4 dispatches instead
// of 13.
func BenchmarkVM_FusedDispatch(b *testing.B) {
	prog, err := tasklang.Compile(`
func main(n int) int {
	var acc int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		acc = acc + (i * 3 + 7) % 11;
	}
	return acc;
}`)
	if err != nil {
		b.Fatal(err)
	}
	vm := tvm.New(prog, tvm.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Reset()
		if _, err := vm.Run(tvm.Int(100_000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVM_ArrayHeavy(b *testing.B) {
	prog := stdtasks.MustProgram("matmul")
	cfg := tvm.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tvm.New(prog, cfg).Run(tvm.Int(1), tvm.Int(24)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWire_MarshalAssign(b *testing.B) {
	msg := &wire.Assign{
		Attempt: 1, Tasklet: 2, Program: 3,
		Params: []tvm.Value{tvm.Int(1), tvm.Str("hello"), tvm.Float(2.5)},
		Fuel:   1000, Seed: 7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Marshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWire_UnmarshalAssign(b *testing.B) {
	msg := &wire.Assign{
		Attempt: 1, Tasklet: 2, Program: 3,
		Params: []tvm.Value{tvm.Int(1), tvm.Str("hello"), tvm.Float(2.5)},
		Fuel:   1000, Seed: 7,
	}
	frame, err := wire.Marshal(msg)
	if err != nil {
		b.Fatal(err)
	}
	payload := frame[5:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(wire.TypeAssign, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduler_Pick(b *testing.B) {
	for _, name := range scheduler.Names() {
		b.Run(name, func(b *testing.B) {
			pol, err := scheduler.New(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			cands := make([]scheduler.Candidate, 64)
			for i := range cands {
				cands[i] = scheduler.Candidate{
					Info: &core.ProviderInfo{
						ID: core.ProviderID(i + 1), Speed: float64(10 + i), Slots: 2, Reliability: 1,
					},
					FreeSlots: 1 + i%2,
					Backlog:   i % 3,
				}
			}
			req := scheduler.Request{Tasklet: &core.Tasklet{Fuel: 1_000_000}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := pol.Pick(req, cands); !ok {
					b.Fatal("no pick")
				}
			}
		})
	}
}

func BenchmarkSim_Batch512On16(b *testing.B) {
	devices := workload.PaperMix(16)
	tasks := workload.Batch(512, 10_000_000, core.QoC{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := sim.Run(sim.Config{
			Devices: devices, Tasks: tasks,
			Latency: 2 * time.Millisecond, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Completed != 512 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkSim_ChurnHeavy(b *testing.B) {
	devices := workload.WithChurn(workload.Homogeneous(16, core.ClassDesktop, 1),
		20*time.Second, 5*time.Second)
	tasks := workload.Batch(256, 100_000_000, core.QoC{Mode: core.QoCRedundant, Replicas: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			Devices: devices, Tasks: tasks,
			DetectDelay: time.Second, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashValue(b *testing.B) {
	v := tvm.Arr(tvm.Int(1), tvm.Str("result"), tvm.Float(3.14), tvm.Arr(tvm.Int(2)))
	for i := 0; i < b.N; i++ {
		_ = tvm.HashValue(v)
	}
}

// ---------- ablations (design choices called out in DESIGN.md) ----------

// bigProgram compiles a TCL program with hundreds of functions (~60 KiB of
// bytecode) whose main does trivial work — the worst case for per-assign
// bytecode shipping and therefore the program-cache ablation's workload.
func bigProgram(b *testing.B) []byte {
	b.Helper()
	var src fmt.Stringer
	var sb = &strings.Builder{}
	for i := 0; i < 300; i++ {
		fmt.Fprintf(sb, "func helper%d(x int) int { return x * %d + x %% %d; }\n", i, i+1, i+2)
	}
	sb.WriteString("func main(n int) int { return helper0(n); }\n")
	src = sb
	prog, err := tasklang.Compile(src.String())
	if err != nil {
		b.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// benchAblationProgramCache measures a 512-tasklet trivial job carrying a
// large program, with and without the broker's per-provider bytecode
// cache. The cache is one of the middleware's bandwidth design choices:
// with it the program crosses each link once; without it every assignment
// carries the full bytecode.
func benchAblationProgramCache(b *testing.B, disable bool) {
	// Result memo off at both tiers: repeat iterations must actually assign
	// and execute work (a memo hit ships nothing), or the bench stops
	// measuring program shipping.
	br := newBrokerForBench(b,
		broker.Options{DisableProgramCache: disable, MemoEntries: -1, MemoBytes: -1, MemoTTL: -1},
		provider.Options{MemoEntries: -1, MemoBytes: -1, MemoTTL: -1})
	defer br.Close()
	data := bigProgram(b)
	b.ReportMetric(float64(len(data)), "program-bytes")
	params := make([][]tvm.Value, 512)
	for i := range params {
		params[i] = []tvm.Value{tvm.Int(int64(i))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.run(data, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ProgramCacheOn(b *testing.B)  { benchAblationProgramCache(b, false) }
func BenchmarkAblation_ProgramCacheOff(b *testing.B) { benchAblationProgramCache(b, true) }

// benchAblationOptimize isolates the load-time optimization pass: the same
// spin workload with the fused fast-path stream enabled vs disabled
// (Config.NoOptimize). The pair demonstrates the pass — not unrelated VM
// changes — is responsible for the interpreter speedup.
func benchAblationOptimize(b *testing.B, disable bool) {
	prog := stdtasks.MustProgram("spin")
	cfg := tvm.DefaultConfig()
	cfg.NoOptimize = disable
	vm := tvm.New(prog, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Reset()
		if _, err := vm.Run(tvm.Int(100_000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_OptimizeOn(b *testing.B)  { benchAblationOptimize(b, false) }
func BenchmarkAblation_OptimizeOff(b *testing.B) { benchAblationOptimize(b, true) }

// benchAblationMemo measures the result memo (internal/memo) on a live
// stack under a Zipf-repeated workload: 512 spin tasklets drawn from a pool
// of 64 distinct contents. With the memo on, repeated content is served
// from cache (or coalesced while in flight) instead of executing; the
// throughput gap is the ablation's headline.
func benchAblationMemo(b *testing.B, memoOn bool) {
	var opts broker.Options
	var pOpts provider.Options
	if !memoOn {
		// Disable both tiers: the baseline is "no memoization anywhere".
		opts.MemoEntries, opts.MemoBytes, opts.MemoTTL = -1, -1, -1
		pOpts.MemoEntries, pOpts.MemoBytes, pOpts.MemoTTL = -1, -1, -1
	}
	br := newBrokerForBench(b, opts, pOpts)
	defer br.Close()
	spin, err := stdtasks.Bytecode("spin")
	if err != nil {
		b.Fatal(err)
	}
	const nTasks, pool = 512, 64
	idx := workload.ZipfIndices(nTasks, pool, 1.1, 42)
	params := make([][]tvm.Value, nTasks)
	for i, ix := range idx {
		// Distinct iteration counts per content, so distinct results prove
		// the cache keys content correctly.
		params[i] = []tvm.Value{tvm.Int(int64(100_000 + ix))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.run(spin, params); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nTasks*b.N)/b.Elapsed().Seconds(), "tasklets/s")
}

func BenchmarkAblation_MemoOn(b *testing.B)  { benchAblationMemo(b, true) }
func BenchmarkAblation_MemoOff(b *testing.B) { benchAblationMemo(b, false) }

// benchBrokerThroughput drives the submit→assign→result hot path at scale:
// 4 consumers × 4 providers on loopback, each consumer pushing a 256-tasklet
// noop job per iteration, so the broker handles bursts of assigns and result
// pushes on every connection. The coalescing ablation pair below toggles
// write coalescing (broker writer batching + wire flush policy) — the frame
// bytes are identical either way, only syscall boundaries move. The batching
// ablation pair toggles the batch frames themselves (AssignBatch /
// AttemptResultBatch / ResultPushBatch and the bulk lifecycle ingest):
// batch-off pays one frame and one broker lock acquisition per attempt.
func benchBrokerThroughput(b *testing.B, noCoalesce, noBatch bool) {
	const nConsumers, nProviders, perJob = 4, 4, 256
	// Memo off at both tiers: repeated identical noop tasklets must traverse
	// the full data plane every iteration.
	br := broker.New(broker.Options{
		MemoEntries: -1, MemoBytes: -1, MemoTTL: -1,
		NoCoalesce: noCoalesce, NoBatch: noBatch,
	})
	defer br.Close()
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nProviders; i++ {
		p, err := provider.Connect(provider.Options{
			BrokerAddr: addr, Slots: 8, Speed: 100,
			MemoEntries: -1, MemoBytes: -1, MemoTTL: -1,
			NoCoalesce: noCoalesce, NoBatch: noBatch,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
	}
	consumers := make([]*consumer.Client, nConsumers)
	for i := range consumers {
		c, err := consumer.Connect(addr, fmt.Sprintf("bench-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		consumers[i] = c
	}
	noop, err := stdtasks.Bytecode("noop")
	if err != nil {
		b.Fatal(err)
	}
	params := make([][]tvm.Value, perJob)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errs := make(chan error, nConsumers)
		for _, c := range consumers {
			go func(c *consumer.Client) {
				job, err := c.Submit(core.JobSpec{Program: noop, Params: params, Seed: 1})
				if err != nil {
					errs <- err
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
				defer cancel()
				res, err := job.Collect(ctx)
				if err == nil {
					for _, r := range res {
						if !r.OK() {
							err = fmt.Errorf("tasklet %d failed: %s", r.Index, r.Fault)
							break
						}
					}
				}
				errs <- err
			}(c)
		}
		for range consumers {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(nConsumers*perJob*b.N)/b.Elapsed().Seconds(), "tasklets/s")
}

func BenchmarkBrokerThroughput(b *testing.B)     { benchBrokerThroughput(b, false, false) }
func BenchmarkAblation_CoalesceOn(b *testing.B)  { benchBrokerThroughput(b, false, false) }
func BenchmarkAblation_CoalesceOff(b *testing.B) { benchBrokerThroughput(b, true, false) }
func BenchmarkAblation_BatchOn(b *testing.B)     { benchBrokerThroughput(b, false, false) }
func BenchmarkAblation_BatchOff(b *testing.B)    { benchBrokerThroughput(b, false, true) }

// benchStack is a minimal live stack helper for ablation benches.
type benchStack struct {
	b      *broker.Broker
	provs  []*provider.Provider
	client *consumer.Client
}

func newBrokerForBench(tb testing.TB, opts broker.Options, pOpts provider.Options) *benchStack {
	tb.Helper()
	s := &benchStack{b: broker.New(opts)}
	addr, err := s.b.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		po := pOpts
		po.BrokerAddr = addr
		po.Slots, po.Speed = 4, 100
		p, err := provider.Connect(po)
		if err != nil {
			tb.Fatal(err)
		}
		s.provs = append(s.provs, p)
	}
	c, err := consumer.Connect(addr, "bench")
	if err != nil {
		tb.Fatal(err)
	}
	s.client = c
	return s
}

func (s *benchStack) run(prog []byte, params [][]tvm.Value) error {
	job, err := s.client.Submit(core.JobSpec{Program: prog, Params: params, Seed: 1})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := job.Collect(ctx)
	if err != nil {
		return err
	}
	for _, r := range res {
		if !r.OK() {
			return fmt.Errorf("tasklet %d failed: %s", r.Index, r.Fault)
		}
	}
	return nil
}

func (s *benchStack) Close() {
	s.client.Close()
	for _, p := range s.provs {
		p.Close()
	}
	s.b.Close()
}

func BenchmarkVM_NQueens8(b *testing.B) {
	prog := stdtasks.MustProgram("nqueens")
	cfg := tvm.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tvm.New(prog, cfg).Run(tvm.Int(8))
		if err != nil {
			b.Fatal(err)
		}
		if res.Return.I != 92 {
			b.Fatal("wrong solution count")
		}
	}
}

func BenchmarkVM_SortCheck(b *testing.B) {
	prog := stdtasks.MustProgram("sortcheck")
	cfg := tvm.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tvm.New(prog, cfg).Run(tvm.Int(300), tvm.Int(7)); err != nil {
			b.Fatal(err)
		}
	}
}
