package tasklets

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
)

// stack brings up a broker and n providers for a test.
func stack(t *testing.T, n int, opts BrokerOptions) (*Broker, string) {
	t.Helper()
	b, err := NewBroker(opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	for i := 0; i < n; i++ {
		p, err := StartProvider(ProviderOptions{Broker: addr, Slots: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
	}
	return b, addr
}

func TestQuickstartFlow(t *testing.T) {
	_, addr := stack(t, 2, BrokerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prog, err := Compile(`func main(n int) int { return n * n; }`)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Map(prog, [][]Value{{Int(3)}, {Int(4)}, {Int(5)}}, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := job.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{9, 16, 25}
	for i, r := range results {
		if !r.OK() || r.Return.I != want[i] {
			t.Fatalf("result[%d] = %+v, want %d", i, r, want[i])
		}
	}
}

func TestRunSingle(t *testing.T) {
	_, addr := stack(t, 1, BrokerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prog, err := Compile(`func main(a int, b int) int { return a + b; }`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(prog, []Value{Int(20), Int(22)}, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() || r.Return.I != 42 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunLocalMatchesRemote(t *testing.T) {
	_, addr := stack(t, 1, BrokerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prog, err := Compile(`
func main(n int) int {
	var acc int = 0;
	for (var i int = 0; i < n; i = i + 1) { acc = acc + i * i; }
	emit(acc % 1000);
	return acc;
}`)
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunLocal(prog, Int(100))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Run(prog, []Value{Int(100)}, JobOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !local.Return.Equal(remote.Return) {
		t.Fatalf("local %s != remote %s", local.Return, remote.Return)
	}
	if len(local.Emitted) != len(remote.Emitted) || !local.Emitted[0].Equal(remote.Emitted[0]) {
		t.Fatalf("emitted diverged: %v vs %v", local.Emitted, remote.Emitted)
	}
}

func TestVotingQoCFromPublicAPI(t *testing.T) {
	_, addr := stack(t, 3, BrokerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prog, err := Compile(`func main(n int) int { return n + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(prog, []Value{Int(1)}, JobOptions{QoC: QoC{Mode: Voting, Replicas: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() || r.Return.I != 2 || r.Attempts < 2 {
		t.Fatalf("voting result = %+v", r)
	}
}

func TestCompileErrorSurfacesPosition(t *testing.T) {
	_, err := Compile(`func main() int { return x; }`)
	if err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := NewBroker(BrokerOptions{Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestProviderRequiresBroker(t *testing.T) {
	if _, err := StartProvider(ProviderOptions{}); err == nil {
		t.Fatal("empty broker address accepted")
	}
}

func TestBrokerProvidersVisible(t *testing.T) {
	b, _ := stack(t, 2, BrokerOptions{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(b.Providers()) == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("providers = %v", b.Providers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDisassembleExposed(t *testing.T) {
	prog, err := Compile(`func main() int { return 7; }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Disassemble(), "pushi 7") {
		t.Fatal("disassembly missing")
	}
	if len(prog.Bytecode()) == 0 {
		t.Fatal("bytecode empty")
	}
}

func TestLocalFallbackWhenFleetEmpty(t *testing.T) {
	// No providers at all: the deadline expires broker-side, and the
	// consumer's local fallback still produces the right answer.
	b, err := NewBroker(BrokerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prog, err := Compile(`func main(n int) int { return n * 3; }`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(prog, []Value{Int(14)}, JobOptions{
		QoC: QoC{Deadline: 200 * time.Millisecond, LocalFallback: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() || !r.Local || r.Return.I != 42 {
		t.Fatalf("fallback result = %+v", r)
	}
}

func TestStressHeterogeneousFleetWithRedundancy(t *testing.T) {
	// A wider live deployment: 8 providers across three speed classes,
	// 200 tasklets with 2-way redundancy. Exercises concurrent slots,
	// program caching, replica placement on distinct providers and result
	// routing, all over real sockets.
	if testing.Short() {
		t.Skip("stress test")
	}
	b, err := NewBroker(BrokerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	throttles := []float64{1, 1, 1, 0.6, 0.6, 0.25, 0.25, 0.25}
	for i, th := range throttles {
		p, err := StartProvider(ProviderOptions{
			Broker: addr, Slots: 2, Throttle: th, Name: fmt.Sprintf("s%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
	}

	prog, err := Compile(`
func main(n int) int {
	var acc int = 0;
	for (var i int = 0; i < 20000; i = i + 1) { acc = acc + i % 9; }
	return n * 2 + acc - acc;
}`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	params := make([][]Value, n)
	for i := range params {
		params[i] = []Value{Int(int64(i))}
	}
	job, err := c.Map(prog, params, JobOptions{
		QoC: QoC{Mode: Redundant, Replicas: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := job.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	providers := map[uint64]int{}
	for i, r := range res {
		if !r.OK() || r.Return.I != int64(i*2) {
			t.Fatalf("res[%d] = %+v", i, r)
		}
		providers[uint64(r.Provider)]++
	}
	if len(providers) < 4 {
		t.Fatalf("work concentrated on %d providers; expected spread", len(providers))
	}
}

func TestFleetQuery(t *testing.T) {
	_, addr := stack(t, 2, BrokerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Wait until both providers registered their slots.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fleet, pending, err := c.Fleet()
		if err != nil {
			t.Fatal(err)
		}
		ready := 0
		for _, p := range fleet {
			if p.Slots == 2 && p.Speed > 0 {
				ready++
			}
		}
		if len(fleet) == 2 && ready == 2 {
			if pending != 0 {
				t.Fatalf("pending = %d, want 0", pending)
			}
			if fleet[0].ID >= fleet[1].ID {
				t.Fatalf("directory not sorted: %+v", fleet)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never ready: %+v", fleet)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Run work, then confirm the executed counters move.
	prog, err := Compile(`func main(n int) int { return n; }`)
	if err != nil {
		t.Fatal(err)
	}
	params := make([][]Value, 8)
	for i := range params {
		params[i] = []Value{Int(int64(i))}
	}
	job, err := c.Map(prog, params, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := job.Collect(ctx); err != nil {
		t.Fatal(err)
	}
	fleet, _, err := c.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	var executed int64
	for _, p := range fleet {
		executed += p.Executed
	}
	if executed != 8 {
		t.Fatalf("executed total = %d, want 8", executed)
	}
}

// TestDialShardedRoutesAndCompletes runs a 3-shard group end to end
// through the facade: the client's ring must agree with the group's, and
// jobs for distinct programs must complete on whichever shard owns them.
func TestDialShardedRoutesAndCompletes(t *testing.T) {
	g := broker.NewShardGroup(3, broker.Options{})
	addrs, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	for _, a := range addrs {
		p, err := StartProvider(ProviderOptions{Broker: a, Slots: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
	}

	sc, err := DialSharded(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	for i := 0; i < 5; i++ {
		prog, err := Compile(fmt.Sprintf("func main(n int) int { return n * n + %d; }", i))
		if err != nil {
			t.Fatal(err)
		}
		for j, a := range addrs {
			if g.AddrFor(prog.Bytecode()) == a && sc.ClientFor(prog) != sc.clients[j] {
				t.Fatalf("program %d: facade routed to a different shard than the group ring", i)
			}
		}
		res, err := sc.Run(prog, []Value{Int(7)}, JobOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() || res.Return.I != int64(49+i) {
			t.Fatalf("program %d: result %+v, want %d", i, res, 49+i)
		}
	}
}
