// Package tasklets is the public API of the Tasklet middleware — a
// distributed computing system that overcomes device heterogeneity by
// running self-contained computation units ("tasklets") on a common virtual
// machine across any mix of machines, mediated by a broker and governed by
// per-tasklet Quality-of-Computation goals.
//
// A minimal deployment has three processes (or three objects in one test
// process):
//
//	b := tasklets.NewBroker(tasklets.BrokerOptions{})
//	addr, _ := b.Listen("127.0.0.1:0")
//
//	p, _ := tasklets.StartProvider(tasklets.ProviderOptions{Broker: addr, Slots: 4})
//	defer p.Close()
//
//	c, _ := tasklets.Dial(addr)
//	defer c.Close()
//
//	prog, _ := tasklets.Compile(`func main(n int) int { return n * n; }`)
//	job, _ := c.Map(prog, [][]tasklets.Value{{tasklets.Int(3)}, {tasklets.Int(4)}}, tasklets.JobOptions{})
//	results, _ := job.Collect(context.Background())
//
// Tasklets are written in TCL, a small C-like language (see the repository
// README for the language reference), compiled once with Compile, and
// executed wherever the broker's scheduling policy places them. QoC goals
// (redundant execution, majority voting, deadlines) make the results
// trustworthy even on fleets that churn or misbehave.
package tasklets

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/broker"
	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/scheduler"
	"repro/internal/shard"
	"repro/internal/tasklang"
	"repro/internal/tvm"
)

// Value is a TVM value: the currency of tasklet parameters and results.
type Value = tvm.Value

// Value constructors, re-exported for parameter building.
var (
	Int   = tvm.Int
	Float = tvm.Float
	Bool  = tvm.Bool
	Str   = tvm.Str
	Arr   = tvm.Arr
	Nil   = tvm.Nil
)

// QoC carries a tasklet's Quality-of-Computation goals.
type QoC = core.QoC

// QoC modes.
const (
	// BestEffort runs one attempt and reports whatever happens.
	BestEffort = core.QoCBestEffort
	// Redundant runs replicas on distinct providers; first success wins.
	Redundant = core.QoCRedundant
	// Voting runs replicas on distinct providers and requires a majority
	// to agree on the result.
	Voting = core.QoCVoting
)

// DeviceClass describes the kind of machine a provider runs on.
type DeviceClass = core.DeviceClass

// Device classes.
const (
	ClassServer   = core.ClassServer
	ClassDesktop  = core.ClassDesktop
	ClassLaptop   = core.ClassLaptop
	ClassMobile   = core.ClassMobile
	ClassEmbedded = core.ClassEmbedded
)

// Program is a compiled tasklet program, ready to submit or run locally.
type Program struct {
	prog *tvm.Program
	data []byte
}

// Compile compiles TCL source. The entry point is the function named
// "main"; its parameters are the tasklet parameters.
func Compile(src string) (*Program, error) {
	prog, err := tasklang.Compile(src)
	if err != nil {
		return nil, err
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &Program{prog: prog, data: data}, nil
}

// Bytecode returns the portable binary encoding of the program.
func (p *Program) Bytecode() []byte { return p.data }

// Disassemble renders the program's bytecode as readable assembler.
func (p *Program) Disassemble() string { return p.prog.Disassemble() }

// LocalResult is the outcome of a local (in-process) execution.
type LocalResult struct {
	Return   Value
	Emitted  []Value
	Printed  []string
	FuelUsed uint64
}

// RunLocal executes the program in this process — the fallback every
// Tasklet application keeps for disconnected operation, and the baseline
// the offload experiments compare against.
func RunLocal(p *Program, params ...Value) (*LocalResult, error) {
	return RunLocalSeeded(p, 1, 0, params...)
}

// RunLocalSeeded is RunLocal with an explicit rand() seed and fuel budget
// (0 selects the default budget).
func RunLocalSeeded(p *Program, seed uint64, fuel uint64, params ...Value) (*LocalResult, error) {
	cfg := tvm.DefaultConfig()
	cfg.Seed = seed
	if fuel > 0 {
		cfg.Fuel = fuel
	}
	res, err := tvm.New(p.prog, cfg).Run(params...)
	if err != nil {
		return nil, err
	}
	return &LocalResult{
		Return:   res.Return,
		Emitted:  res.Emitted,
		Printed:  res.Printed,
		FuelUsed: res.FuelUsed,
	}, nil
}

// ---------- broker ----------

// BrokerOptions configures a broker. The zero value works.
type BrokerOptions struct {
	// Policy names the scheduling policy: one of "random", "round_robin",
	// "fastest", "least_loaded", "work_steal" (default), "reliable".
	Policy string
	// PolicySeed seeds stochastic policies.
	PolicySeed uint64
	// HeartbeatTimeout declares providers dead after this silence
	// (default 5s).
	HeartbeatTimeout time.Duration
	// Logger receives operational logs; nil disables logging.
	Logger *log.Logger
	// MemoEntries, MemoBytes and MemoTTL bound the broker's result memo
	// (content-addressed cache of finalized results plus coalescing of
	// identical in-flight tasklets). Zero selects the defaults; any
	// negative value disables memoization. See README "Result memoization".
	MemoEntries int
	MemoBytes   int
	MemoTTL     time.Duration
}

// Broker mediates between consumers and providers.
type Broker struct {
	b *broker.Broker
}

// NewBroker creates a broker.
func NewBroker(opts BrokerOptions) (*Broker, error) {
	var pol scheduler.Policy
	if opts.Policy != "" {
		p, err := scheduler.New(opts.Policy, opts.PolicySeed)
		if err != nil {
			return nil, err
		}
		pol = p
	}
	return &Broker{b: broker.New(broker.Options{
		Policy:           pol,
		HeartbeatTimeout: opts.HeartbeatTimeout,
		Logger:           opts.Logger,
		MemoEntries:      opts.MemoEntries,
		MemoBytes:        opts.MemoBytes,
		MemoTTL:          opts.MemoTTL,
	})}, nil
}

// Listen binds the address (use ":0" for an ephemeral port) and starts
// serving. It returns the bound address providers and consumers dial.
func (b *Broker) Listen(addr string) (string, error) { return b.b.Listen(addr) }

// Close shuts the broker down.
func (b *Broker) Close() error { return b.b.Close() }

// Metrics exposes the broker's counters and histograms.
func (b *Broker) Metrics() *metrics.Registry { return b.b.Metrics() }

// Providers lists currently-registered providers.
func (b *Broker) Providers() []core.ProviderInfo { return b.b.Snapshot().Providers }

// ---------- provider ----------

// ProviderOptions configures a provider daemon.
type ProviderOptions struct {
	// Broker is the broker address. Required.
	Broker string
	// Slots is the number of concurrent executions (default 1).
	Slots int
	// Class is the advertised device class.
	Class DeviceClass
	// Throttle in (0,1] emulates a slower device (default 1).
	Throttle float64
	// Name appears in broker logs.
	Name string
	// Logger receives operational logs; nil disables logging.
	Logger *log.Logger
	// FailAfter, when positive, makes the provider abruptly disconnect
	// after executing that many tasklets — a churn-injection knob for
	// reliability demonstrations and tests.
	FailAfter int
	// HeartbeatInterval is how often the provider pings the broker
	// (default 1s). Keep it well under the broker's HeartbeatTimeout.
	HeartbeatInterval time.Duration
}

// Provider donates this process's cycles to the middleware.
type Provider struct {
	p *provider.Provider
}

// StartProvider connects to the broker, benchmarks this host's execution
// speed, registers, and begins accepting tasklets.
func StartProvider(opts ProviderOptions) (*Provider, error) {
	if opts.Broker == "" {
		return nil, errors.New("tasklets: ProviderOptions.Broker is required")
	}
	p, err := provider.Connect(provider.Options{
		BrokerAddr:        opts.Broker,
		Slots:             opts.Slots,
		Class:             opts.Class,
		Throttle:          opts.Throttle,
		Name:              opts.Name,
		Logger:            opts.Logger,
		FailAfter:         opts.FailAfter,
		HeartbeatInterval: opts.HeartbeatInterval,
	})
	if err != nil {
		return nil, err
	}
	return &Provider{p: p}, nil
}

// Close disconnects the provider.
func (p *Provider) Close() error { return p.p.Close() }

// Executed reports how many tasklets this provider has run.
func (p *Provider) Executed() int64 { return p.p.Executed() }

// ID returns the broker-assigned provider ID (matches TaskResult.Provider).
func (p *Provider) ID() uint64 { return uint64(p.p.ID()) }

// ---------- consumer ----------

// Client is an application session with the broker.
type Client struct {
	c *consumer.Client
}

// Job is a handle on a submitted batch; see Results, Collect, Counts.
type Job = consumer.Job

// TaskResult is one tasklet's final outcome.
type TaskResult = consumer.TaskResult

// Dial connects a consumer session.
func Dial(addr string) (*Client, error) {
	c, err := consumer.Connect(addr, "tasklets-client")
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.c.Close() }

// JobOptions tunes a submission.
type JobOptions struct {
	// QoC goals applied to every tasklet in the job.
	QoC QoC
	// Fuel bounds each tasklet's execution (VM operations); zero selects
	// the broker default (100M).
	Fuel uint64
	// Seed feeds each tasklet's deterministic rand() builtin.
	Seed uint64
}

// Map submits one tasklet per parameter set — the bulk data-parallel
// operation ("run main over this parameter grid").
func (c *Client) Map(p *Program, params [][]Value, opts JobOptions) (*Job, error) {
	return c.c.Submit(core.JobSpec{
		Program: p.Bytecode(),
		Params:  params,
		QoC:     opts.QoC,
		Fuel:    opts.Fuel,
		Seed:    opts.Seed,
	})
}

// Run submits a single tasklet and waits for its result.
func (c *Client) Run(p *Program, params []Value, opts JobOptions) (TaskResult, error) {
	job, err := c.Map(p, [][]Value{params}, opts)
	if err != nil {
		return TaskResult{}, err
	}
	for r := range job.Results() {
		return r, nil
	}
	if err := job.Err(); err != nil {
		return TaskResult{}, err
	}
	return TaskResult{}, fmt.Errorf("tasklets: job ended without a result")
}

// Cancel abandons a job's outstanding tasklets.
func (c *Client) Cancel(job *Job) error { return c.c.Cancel(job) }

// FleetProvider is one row of the broker's provider directory.
type FleetProvider = consumer.FleetProvider

// Fleet queries the broker's provider directory: registered providers with
// their class, capacity, measured speed and reliability, plus the number of
// tasklets currently awaiting placement.
func (c *Client) Fleet() ([]FleetProvider, int, error) { return c.c.Fleet() }

// ---------- sharded consumer ----------

// ShardedClient routes jobs across a broker shard group by consistent
// hash of the program, matching the brokers' own partitioning: identical
// tasklets always land on the same shard, so that shard's result memo and
// flight table see every repeat. Work submitted to a busy shard still
// spreads — the brokers' pull-based exchange migrates queued tasklets to
// underloaded peers.
type ShardedClient struct {
	ring    *shard.Ring
	clients []*Client
}

// DialSharded connects one consumer session per shard. Addresses must be
// listed in shard-ID order — the order ShardGroup.Listen returned them, or
// ports P..P+N-1 for a `tasklet-broker -shards N -addr :P` group — and the
// list must match across every client for routing to agree.
func DialSharded(addrs ...string) (*ShardedClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("tasklets: DialSharded needs at least one address")
	}
	s := &ShardedClient{ring: shard.NewRing(0)}
	for i, a := range addrs {
		c, err := Dial(a)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("tasklets: shard %d (%s): %w", i+1, a, err)
		}
		s.clients = append(s.clients, c)
		s.ring.Add(uint64(i + 1))
	}
	return s, nil
}

// ClientFor returns the session for the shard owning a program.
func (s *ShardedClient) ClientFor(p *Program) *Client {
	owner, _ := s.ring.Owner(uint64(core.HashProgram(p.Bytecode())))
	return s.clients[owner-1]
}

// Map submits one tasklet per parameter set on the program's owning shard.
func (s *ShardedClient) Map(p *Program, params [][]Value, opts JobOptions) (*Job, error) {
	return s.ClientFor(p).Map(p, params, opts)
}

// Run submits a single tasklet on the owning shard and waits for it.
func (s *ShardedClient) Run(p *Program, params []Value, opts JobOptions) (TaskResult, error) {
	return s.ClientFor(p).Run(p, params, opts)
}

// Close ends every shard session.
func (s *ShardedClient) Close() error {
	var first error
	for _, c := range s.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
