// Command tasklet-bench regenerates the paper's evaluation: every table and
// figure has an experiment (e1–e12; see DESIGN.md §4) whose rows/series this
// tool prints.
//
// Usage:
//
//	tasklet-bench -exp all            # full evaluation (minutes)
//	tasklet-bench -exp e3 -quick      # one experiment at CI scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e12) or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	seed := flag.Uint64("seed", 42, "simulation seed")
	quiet := flag.Bool("q", false, "suppress progress logs")
	csvDir := flag.String("csv", "", "also write each experiment's series as <dir>/<id>.csv")
	jsonPath := flag.String("json", "", "write all experiment results as a JSON array to this file")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if !*quiet {
		opts.Out = os.Stderr
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	failed := false
	var results []*experiments.Result
	for _, id := range ids {
		id = strings.TrimSpace(id)
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		fmt.Println(res.Render())
		results = append(results, res)
		if *csvDir != "" && len(res.Series) > 0 {
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(metrics.CSV(res.Series...)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
