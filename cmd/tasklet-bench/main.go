// Command tasklet-bench regenerates the paper's evaluation: every table and
// figure has an experiment (e1–e13; see DESIGN.md §4) whose rows/series this
// tool prints.
//
// Usage:
//
//	tasklet-bench -exp all            # full evaluation (minutes)
//	tasklet-bench -exp e3 -quick      # one experiment at CI scale
//	tasklet-bench -exp e13 -quick -compare BENCH_PR9.json   # warn-only drift check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e12) or 'all'")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	seed := flag.Uint64("seed", 42, "simulation seed")
	quiet := flag.Bool("q", false, "suppress progress logs")
	csvDir := flag.String("csv", "", "also write each experiment's series as <dir>/<id>.csv")
	jsonPath := flag.String("json", "", "write all experiment results as a JSON array to this file")
	baseline := flag.String("compare", "",
		"baseline JSON (a previous -json output) to diff series against; regressions print warnings but never fail the run")
	tolerance := flag.Float64("tolerance", 0.10,
		"relative drop versus the -compare baseline that triggers a warning")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if !*quiet {
		opts.Out = os.Stderr
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	failed := false
	var results []*experiments.Result
	for _, id := range ids {
		id = strings.TrimSpace(id)
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		fmt.Println(res.Render())
		results = append(results, res)
		if *csvDir != "" && len(res.Series) > 0 {
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(metrics.CSV(res.Series...)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if *baseline != "" {
		if err := compareBaseline(*baseline, results, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// compareBaseline is the warn-only regression gate (benchstat is not vendored,
// so the diff lives here): every series point shared between this run and the
// committed baseline is compared, and a drop beyond the tolerance prints a
// WARN line. Host noise and Quick-vs-full scale differences make this
// advisory — only a failure to read or match the baseline is an error; the
// experiments' own hard-fail thresholds (inside Run) guard the real claims.
func compareBaseline(path string, results []*experiments.Result, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base []*experiments.Result
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("compare: %s: %w", path, err)
	}
	byID := map[string]*experiments.Result{}
	for _, r := range base {
		byID[r.ID] = r
	}
	warned, points := 0, 0
	for _, cur := range results {
		ref := byID[cur.ID]
		if ref == nil {
			continue
		}
		refSeries := map[string]*metrics.Series{}
		for _, s := range ref.Series {
			refSeries[s.Name] = s
		}
		for _, s := range cur.Series {
			rs := refSeries[s.Name]
			if rs == nil {
				continue
			}
			refY := map[float64]float64{}
			for i, x := range rs.X {
				refY[x] = rs.Y[i]
			}
			for i, x := range s.X {
				want, ok := refY[x]
				if !ok || want <= 0 {
					continue
				}
				points++
				if drop := 1 - s.Y[i]/want; drop > tolerance {
					warned++
					fmt.Printf("WARN %s %q @%g: %.4g vs baseline %.4g (-%.1f%%)\n",
						cur.ID, s.Name, x, s.Y[i], want, drop*100)
				}
			}
		}
	}
	if points == 0 {
		return fmt.Errorf("compare: no shared series points between this run and %s", path)
	}
	fmt.Printf("compare vs %s: %d points checked, %d beyond -tolerance %.0f%% (warn-only)\n",
		path, points, warned, tolerance*100)
	return nil
}
