// Command tasklet-broker runs the Tasklet broker: the mediator that
// registers providers, accepts jobs from consumers, schedules tasklets and
// routes results.
//
// Usage:
//
//	tasklet-broker -addr :7420 -policy work_steal
//
// Sharded deployments run several brokers and route jobs by consistent
// hash of the program (see README "Broker sharding"):
//
//	tasklet-broker -addr :7420 -shards 4 -exchange        # in-process group on ports 7420..7423
//	tasklet-broker -addr :7420 -shard-id 1 -peer host2:7420 -exchange   # one shard of a multi-host group
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/scheduler"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "listen address")
	policy := flag.String("policy", "work_steal",
		"scheduling policy: "+strings.Join(scheduler.Names(), ", "))
	seed := flag.Uint64("seed", 1, "seed for stochastic policies")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "provider heartbeat timeout")
	memoEntries := flag.Int("memo", 0, "result-memo entry budget (0 = default, negative = disable memoization)")
	memoTTL := flag.Duration("memo-ttl", 0, "result-memo entry TTL (0 = default)")
	maxAttempts := flag.Int("max-attempts", 0,
		"cap total attempts per tasklet across lost-attempt re-issues (0 = unlimited); exhaustion fails the tasklet as lost")
	retryBackoff := flag.Duration("retry-backoff", 0,
		"base delay before re-issuing a lost attempt, doubling per re-issue (0 = immediate)")
	noCoalesce := flag.Bool("no-coalesce", false,
		"disable write coalescing (flush every frame individually; ablation/debugging)")
	noBatch := flag.Bool("no-batch", false,
		"disable batch frames (one Assign/ResultPush per attempt even to batch-capable peers; ablation/debugging)")
	noIndex := flag.Bool("no-index", false,
		"disable the incremental scheduler index (full-scan placement; ablation/debugging)")
	partitions := flag.Int("partitions", 0,
		"lock-striped lifecycle partitions per broker (0 = GOMAXPROCS; 1 = single-stripe ablation/legacy-equivalent)")
	shards := flag.Int("shards", 1,
		"run an in-process shard group of N brokers (an explicit port P binds ports P..P+N-1)")
	shardID := flag.Uint64("shard-id", 0,
		"this broker's shard ID in a multi-process group (0 = unsharded; mutually exclusive with -shards)")
	peers := flag.String("peer", "",
		"comma-separated peer broker addresses to link with (requires -shard-id)")
	exchange := flag.Bool("exchange", false,
		"enable the pull-based work exchange toward this broker when it is underloaded")
	gossip := flag.Duration("gossip", 0, "shard load-gossip interval (0 = 100ms default)")
	stats := flag.Duration("stats", 0, "print a status line at this interval (0 = off)")
	quiet := flag.Bool("q", false, "suppress operational logs")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}

	if *shards > 1 && *shardID != 0 {
		fmt.Fprintln(os.Stderr, "-shards and -shard-id are mutually exclusive")
		os.Exit(2)
	}
	mkOptions := func() (broker.Options, error) {
		pol, err := scheduler.New(*policy, *seed)
		if err != nil {
			return broker.Options{}, err
		}
		return broker.Options{
			Policy:           pol,
			HeartbeatTimeout: *heartbeat,
			Logger:           logger,
			MemoEntries:      *memoEntries,
			MemoTTL:          *memoTTL,
			MaxAttempts:      *maxAttempts,
			RetryBackoff:     *retryBackoff,
			NoCoalesce:       *noCoalesce,
			NoBatch:          *noBatch,
			NoIndex:          *noIndex,
			Partitions:       *partitions,
			ShardID:          *shardID,
			GossipInterval:   *gossip,
			Exchange:         *exchange,
		}, nil
	}

	var b *broker.Broker // the (only or first) shard, for -stats
	var closer io.Closer // what shutdown tears down
	if *shards > 1 {
		// In-process shard group: policies carry mutable state, so each
		// shard gets its own instance.
		var mkErr error
		g := broker.NewShardGroupWith(*shards, func(int) broker.Options {
			o, err := mkOptions()
			if err != nil {
				mkErr = err
			}
			return o
		})
		if mkErr != nil {
			fmt.Fprintln(os.Stderr, mkErr)
			os.Exit(2)
		}
		addrs, err := g.Listen(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("tasklet-broker shard group listening on %s (policy %s, exchange %v)\n",
			strings.Join(addrs, " "), *policy, *exchange)
		b, closer = g.Broker(0), g
	} else {
		opts, err := mkOptions()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		b = broker.New(opts)
		closer = b
		bound, err := b.Listen(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("tasklet-broker listening on %s (policy %s)\n", bound, *policy)
		if *peers != "" {
			if *shardID == 0 {
				fmt.Fprintln(os.Stderr, "-peer requires -shard-id")
				os.Exit(2)
			}
			for _, pa := range strings.Split(*peers, ",") {
				pa = strings.TrimSpace(pa)
				if pa == "" {
					continue
				}
				// Peers may come up in any order; keep retrying in the
				// background until the link is made.
				go func(pa string) {
					backoff := time.Second
					for {
						err := b.ConnectPeer(pa)
						if err == nil {
							return
						}
						fmt.Fprintf(os.Stderr, "peer %s: %v; retrying in %v\n", pa, err, backoff)
						time.Sleep(backoff)
						if backoff < 30*time.Second {
							backoff *= 2
						}
					}
				}(pa)
			}
		}
	}

	if *stats > 0 {
		go func() {
			tick := time.NewTicker(*stats)
			defer tick.Stop()
			for range tick.C {
				s := b.Snapshot()
				m := b.Metrics()
				fmt.Printf("status: %d providers, %d jobs, %d pending, %d in flight; memo %d hits / %d misses / %d stores / %d evictions / %d coalesced\n",
					len(s.Providers), s.Jobs, s.Pending, s.InFlight,
					m.Counter("memo.hits").Value(), m.Counter("memo.misses").Value(),
					m.Counter("memo.stores").Value(), m.Counter("memo.evictions").Value(),
					m.Counter("memo.coalesced").Value())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := closer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
