// Command tasklet-broker runs the Tasklet broker: the mediator that
// registers providers, accepts jobs from consumers, schedules tasklets and
// routes results.
//
// Usage:
//
//	tasklet-broker -addr :7420 -policy work_steal
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/scheduler"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "listen address")
	policy := flag.String("policy", "work_steal",
		"scheduling policy: "+strings.Join(scheduler.Names(), ", "))
	seed := flag.Uint64("seed", 1, "seed for stochastic policies")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "provider heartbeat timeout")
	memoEntries := flag.Int("memo", 0, "result-memo entry budget (0 = default, negative = disable memoization)")
	memoTTL := flag.Duration("memo-ttl", 0, "result-memo entry TTL (0 = default)")
	maxAttempts := flag.Int("max-attempts", 0,
		"cap total attempts per tasklet across lost-attempt re-issues (0 = unlimited); exhaustion fails the tasklet as lost")
	retryBackoff := flag.Duration("retry-backoff", 0,
		"base delay before re-issuing a lost attempt, doubling per re-issue (0 = immediate)")
	noCoalesce := flag.Bool("no-coalesce", false,
		"disable write coalescing (flush every frame individually; ablation/debugging)")
	noIndex := flag.Bool("no-index", false,
		"disable the incremental scheduler index (full-scan placement; ablation/debugging)")
	stats := flag.Duration("stats", 0, "print a status line at this interval (0 = off)")
	quiet := flag.Bool("q", false, "suppress operational logs")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}

	pol, err := scheduler.New(*policy, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	b := broker.New(broker.Options{
		Policy:           pol,
		HeartbeatTimeout: *heartbeat,
		Logger:           logger,
		MemoEntries:      *memoEntries,
		MemoTTL:          *memoTTL,
		MaxAttempts:      *maxAttempts,
		RetryBackoff:     *retryBackoff,
		NoCoalesce:       *noCoalesce,
		NoIndex:          *noIndex,
	})
	bound, err := b.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("tasklet-broker listening on %s (policy %s)\n", bound, pol.Name())

	if *stats > 0 {
		go func() {
			tick := time.NewTicker(*stats)
			defer tick.Stop()
			for range tick.C {
				s := b.Snapshot()
				m := b.Metrics()
				fmt.Printf("status: %d providers, %d jobs, %d pending, %d in flight; memo %d hits / %d misses / %d stores / %d evictions / %d coalesced\n",
					len(s.Providers), s.Jobs, s.Pending, s.InFlight,
					m.Counter("memo.hits").Value(), m.Counter("memo.misses").Value(),
					m.Counter("memo.stores").Value(), m.Counter("memo.evictions").Value(),
					m.Counter("memo.coalesced").Value())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := b.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
