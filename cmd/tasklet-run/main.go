// Command tasklet-run submits a TCL program to a Tasklet broker and prints
// the results — the consumer side of the middleware as a CLI.
//
// Usage:
//
//	tasklet-run -broker 127.0.0.1:7420 -params "3; 4; 5" square.tcl
//	tasklet-run -qoc voting -replicas 3 -params "10" prog.tcl
//
// Parameter rows are separated by ';', one tasklet per row; values within a
// row by ',' (see taskletc for value syntax).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliparse"
	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/tasklang"
	"repro/internal/tvm"
)

var qocModes = map[string]core.QoCMode{
	"best_effort": core.QoCBestEffort,
	"redundant":   core.QoCRedundant,
	"voting":      core.QoCVoting,
}

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:7420", "broker address")
	params := flag.String("params", "", "parameter rows: values by ',', tasklets by ';'")
	qocName := flag.String("qoc", "best_effort", "QoC mode: best_effort, redundant, voting")
	replicas := flag.Int("replicas", 1, "replicas for redundant/voting QoC")
	deadline := flag.Duration("deadline", 0, "per-tasklet deadline (0 = none)")
	fuel := flag.Uint64("fuel", 0, "per-tasklet fuel budget (0 = broker default)")
	seed := flag.Uint64("seed", 1, "rand() seed")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall wait budget")
	fleet := flag.Bool("fleet", false, "print the broker's provider directory and exit")
	flag.Parse()

	if *fleet {
		printFleet(*brokerAddr)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tasklet-run [flags] file.tcl")
		os.Exit(2)
	}
	mode, ok := qocModes[*qocName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown QoC mode %q\n", *qocName)
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := tasklang.Compile(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s:%v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rows, err := cliparse.Rows(*params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(rows) == 0 {
		rows = [][]tvm.Value{nil} // single parameterless tasklet
	}

	c, err := consumer.Connect(*brokerAddr, "tasklet-run")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()

	start := time.Now()
	job, err := c.Submit(core.JobSpec{
		Program: data,
		Params:  rows,
		QoC:     core.QoC{Mode: mode, Replicas: *replicas, Deadline: *deadline},
		Fuel:    *fuel,
		Seed:    *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	results, err := job.Collect(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	failed := 0
	for i, r := range results {
		if r.OK() {
			fmt.Printf("[%d] %s", i, r.Return)
			for j, e := range r.Emitted {
				if j == 0 {
					fmt.Printf("  emitted:")
				}
				fmt.Printf(" %s", e)
			}
			fmt.Printf("  (provider %d, %d attempt(s), %v)\n", r.Provider, r.Attempts, r.Exec.Round(time.Microsecond))
		} else {
			failed++
			fmt.Printf("[%d] FAILED: %s %s\n", i, r.Status, r.Fault)
		}
	}
	fmt.Printf("%d tasklets, %d failed, wall %v\n", len(results), failed, elapsed.Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}

// printFleet renders the broker's provider directory.
func printFleet(addr string) {
	c, err := consumer.Connect(addr, "tasklet-run")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	providers, pending, err := c.Fleet()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-4s %-9s %5s %5s %10s %6s %9s\n",
		"ID", "CLASS", "SLOTS", "FREE", "MOPS/S", "REL", "EXECUTED")
	for _, p := range providers {
		fmt.Printf("%-4d %-9s %5d %5d %10.1f %6.2f %9d\n",
			p.ID, p.Class, p.Slots, p.FreeSlots, p.Speed, p.Reliability, p.Executed)
	}
	fmt.Printf("%d providers, %d tasklets pending placement\n", len(providers), pending)
}
