// Command taskletc is the TCL compiler: it turns tasklet source into
// portable TVM bytecode, optionally disassembling or running it locally.
//
// Usage:
//
//	taskletc prog.tcl                 # compile to prog.tvm
//	taskletc -dis prog.tcl            # print bytecode disassembly
//	taskletc -run -params "3" prog.tcl  # compile and run main(3) locally
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliparse"
	"repro/internal/tasklang"
	"repro/internal/tvm"
)

func main() {
	out := flag.String("o", "", "output file (default: input with .tvm extension)")
	dis := flag.Bool("dis", false, "print disassembly instead of writing bytecode")
	run := flag.Bool("run", false, "run the program locally after compiling")
	params := flag.String("params", "", "comma-separated parameters for -run (int, float, true/false, or quoted str)")
	seed := flag.Uint64("seed", 1, "rand() seed for -run")
	fuel := flag.Uint64("fuel", 0, "fuel budget for -run (0 = default)")
	entry := flag.String("entry", "main", "entry function")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: taskletc [flags] file.tcl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prog, err := tasklang.CompileEntry(string(src), *entry)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s:%v\n", path, err)
		os.Exit(1)
	}

	if *dis {
		fmt.Print(prog.Disassemble())
		return
	}

	if *run {
		vals, err := cliparse.Values(*params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := tvm.DefaultConfig()
		cfg.Seed = *seed
		if *fuel > 0 {
			cfg.Fuel = *fuel
		}
		res, err := tvm.New(prog, cfg).Run(vals...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, line := range res.Printed {
			fmt.Println("print:", line)
		}
		for i, v := range res.Emitted {
			fmt.Printf("emit[%d]: %s\n", i, v)
		}
		fmt.Printf("return: %s (fuel %d)\n", res.Return, res.FuelUsed)
		return
	}

	data, err := prog.MarshalBinary()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	target := *out
	if target == "" {
		target = strings.TrimSuffix(path, filepath.Ext(path)) + ".tvm"
	}
	if err := os.WriteFile(target, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", target, len(data))
}
