// Command tasklet-provider donates this machine's cycles to a Tasklet
// broker: it benchmarks local execution speed, registers, and executes
// assigned tasklets in sandboxed VMs.
//
// Usage:
//
//	tasklet-provider -broker 127.0.0.1:7420 -slots 4
//	tasklet-provider -broker ... -throttle 0.25 -class mobile   # emulate a phone
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/provider"
)

var classes = map[string]core.DeviceClass{
	"server": core.ClassServer, "desktop": core.ClassDesktop,
	"laptop": core.ClassLaptop, "mobile": core.ClassMobile,
	"embedded": core.ClassEmbedded, "unknown": core.ClassUnknown,
}

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:7420", "broker address")
	slots := flag.Int("slots", 1, "concurrent tasklet executions")
	throttle := flag.Float64("throttle", 1.0, "speed factor in (0,1] emulating a slower device")
	class := flag.String("class", "unknown", "advertised device class (server, desktop, laptop, mobile, embedded)")
	name := flag.String("name", "", "provider name shown in broker logs")
	failAfter := flag.Int("fail-after", 0, "abruptly disconnect after N tasklets (churn injection; 0 = never)")
	reconnect := flag.Bool("reconnect", false, "keep reconnecting with backoff when the broker goes away")
	quiet := flag.Bool("q", false, "suppress operational logs")
	flag.Parse()

	cls, ok := classes[*class]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown class %q\n", *class)
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}

	opts := provider.Options{
		BrokerAddr: *brokerAddr,
		Slots:      *slots,
		Class:      cls,
		Throttle:   *throttle,
		Name:       *name,
		Logger:     logger,
		FailAfter:  *failAfter,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	backoff := time.Second
	for {
		p, err := provider.Connect(opts)
		if err != nil {
			if !*reconnect {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "connect failed (%v); retrying in %v\n", err, backoff)
			select {
			case <-sig:
				return
			case <-time.After(backoff):
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Second
		fmt.Printf("tasklet-provider %d connected to %s (%d slots)\n", p.ID(), *brokerAddr, *slots)

		done := make(chan struct{})
		go func() {
			p.Wait() // broker gone or injected failure
			close(done)
		}()
		select {
		case <-sig:
			fmt.Println("shutting down")
			p.Close()
			return
		case <-done:
			fmt.Printf("connection ended after %d tasklets\n", p.Executed())
			if !*reconnect {
				return
			}
		}
	}
}
