// Command tasklet-provider donates this machine's cycles to a Tasklet
// broker: it benchmarks local execution speed, registers, and executes
// assigned tasklets in sandboxed VMs.
//
// Usage:
//
//	tasklet-provider -broker 127.0.0.1:7420 -slots 4
//	tasklet-provider -broker ... -throttle 0.25 -class mobile   # emulate a phone
//
// Against a sharded broker group, pass a comma-separated address list to
// multi-home: the provider registers with every listed shard, splitting
// its slot budget so total concurrency is unchanged (any remainder goes to
// the first shards in the list; more shards than slots is an error):
//
//	tasklet-provider -broker host:7420,host:7421 -slots 5      # 3 + 2 slots
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/provider"
)

var classes = map[string]core.DeviceClass{
	"server": core.ClassServer, "desktop": core.ClassDesktop,
	"laptop": core.ClassLaptop, "mobile": core.ClassMobile,
	"embedded": core.ClassEmbedded, "unknown": core.ClassUnknown,
}

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:7420",
		"broker address; a comma-separated list multi-homes across a shard group, splitting -slots")
	slots := flag.Int("slots", 1, "concurrent tasklet executions (split across multi-homed brokers)")
	throttle := flag.Float64("throttle", 1.0, "speed factor in (0,1] emulating a slower device")
	class := flag.String("class", "unknown", "advertised device class (server, desktop, laptop, mobile, embedded)")
	name := flag.String("name", "", "provider name shown in broker logs")
	failAfter := flag.Int("fail-after", 0, "abruptly disconnect after N tasklets (churn injection; 0 = never)")
	reconnect := flag.Bool("reconnect", false, "keep reconnecting with backoff when the broker goes away")
	noBatch := flag.Bool("no-batch", false,
		"disable batch frames (don't advertise batching; send one result per frame; ablation/debugging)")
	quiet := flag.Bool("q", false, "suppress operational logs")
	flag.Parse()

	cls, ok := classes[*class]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown class %q\n", *class)
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}

	var addrs []string
	for _, a := range strings.Split(*brokerAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "no broker address given")
		os.Exit(2)
	}
	if *slots < 1 {
		fmt.Fprintln(os.Stderr, "-slots must be at least 1")
		os.Exit(2)
	}
	if len(addrs) > *slots {
		fmt.Fprintf(os.Stderr, "-slots %d cannot cover %d brokers (each home needs at least one slot); raise -slots or list fewer brokers\n",
			*slots, len(addrs))
		os.Exit(2)
	}
	// Multi-homing splits the slot budget so total concurrency matches
	// -slots exactly: every home gets the base share and the first
	// slots%len(addrs) homes absorb the remainder.
	base, rem := *slots/len(addrs), *slots%len(addrs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for i, addr := range addrs {
		perHome := base
		if i < rem {
			perHome++
		}
		opts := provider.Options{
			BrokerAddr: addr,
			Slots:      perHome,
			Class:      cls,
			Throttle:   *throttle,
			Name:       *name,
			Logger:     logger,
			FailAfter:  *failAfter,
			NoBatch:    *noBatch,
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			serveBroker(opts, *reconnect, stop)
		}(addr)
	}

	<-sig
	fmt.Println("shutting down")
	close(stop)
	wg.Wait()
}

// serveBroker keeps one broker connection alive until stop closes (or the
// connection ends with -reconnect off).
func serveBroker(opts provider.Options, reconnect bool, stop <-chan struct{}) {
	backoff := time.Second
	for {
		p, err := provider.Connect(opts)
		if err != nil {
			if !reconnect {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Fprintf(os.Stderr, "connect %s failed (%v); retrying in %v\n", opts.BrokerAddr, err, backoff)
			select {
			case <-stop:
				return
			case <-time.After(backoff):
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Second
		fmt.Printf("tasklet-provider %d connected to %s (%d slots)\n", p.ID(), opts.BrokerAddr, opts.Slots)

		done := make(chan struct{})
		go func() {
			p.Wait() // broker gone or injected failure
			close(done)
		}()
		select {
		case <-stop:
			p.Close()
			return
		case <-done:
			fmt.Printf("connection to %s ended after %d tasklets\n", opts.BrokerAddr, p.Executed())
			if !reconnect {
				return
			}
		}
	}
}
