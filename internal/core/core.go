// Package core defines the Tasklet system's central abstractions: the
// tasklet itself (a self-contained, side-effect-free unit of computation),
// jobs (batches of tasklets sharing one program), Quality-of-Computation
// (QoC) goals, results, and the descriptors the broker keeps for providers.
//
// Every other component — broker, provider, consumer, scheduler, QoC engine,
// simulator — speaks in these types. The package has no I/O and no
// goroutines; it is the shared vocabulary of the system.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/tvm"
)

// TaskletID uniquely identifies one logical tasklet within a broker.
// Redundant (QoC-replicated) executions of the same tasklet share the ID;
// attempts are distinguished by AttemptID.
type TaskletID uint64

// AttemptID identifies one physical execution attempt of a tasklet.
type AttemptID uint64

// JobID identifies a batch of tasklets submitted together by one consumer.
type JobID uint64

// ProgramID is the content hash of a marshalled TVM program; brokers and
// providers use it to cache bytecode so a job's program crosses each link
// once.
type ProgramID uint64

// ProviderID identifies a registered provider for the lifetime of its
// connection.
type ProviderID uint64

// ConsumerID identifies a connected consumer session.
type ConsumerID uint64

// QoCMode selects the completion rule the QoC engine applies to a tasklet.
type QoCMode uint8

// QoC modes, in increasing order of reliability cost.
const (
	// QoCBestEffort runs one attempt; a lost provider triggers re-issue up
	// to the retry budget, a fault is reported to the consumer as-is.
	QoCBestEffort QoCMode = iota
	// QoCRedundant runs Replicas attempts on distinct providers and
	// completes with the first successful result.
	QoCRedundant
	// QoCVoting runs Replicas attempts on distinct providers and completes
	// when a majority agree on the result hash; disagreement past the
	// retry budget fails the tasklet.
	QoCVoting
)

// String returns a stable lower-case name for the mode.
func (m QoCMode) String() string {
	switch m {
	case QoCBestEffort:
		return "best_effort"
	case QoCRedundant:
		return "redundant"
	case QoCVoting:
		return "voting"
	default:
		return fmt.Sprintf("qoc(%d)", uint8(m))
	}
}

// QoC carries a tasklet's quality-of-computation goals. The zero value is
// best-effort, single attempt, no deadline.
type QoC struct {
	Mode     QoCMode
	Replicas int // attempts scheduled up front for Redundant/Voting; min 1

	// MaxRetries bounds re-issues after provider loss or fault (in
	// addition to the initial attempts). Default 0 means the engine's
	// default policy (providers lost -> re-issue up to 3 times).
	MaxRetries int

	// Deadline, when nonzero, is the wall-clock budget for the tasklet;
	// the scheduler deprioritizes or fails tasklets that exceed it.
	Deadline time.Duration

	// PreferFast asks speed-aware schedulers to place this tasklet on the
	// fastest free provider rather than balancing load.
	PreferFast bool

	// LocalFallback makes the *consumer* execute the tasklet in-process
	// if distributed execution ends in failure (all attempts lost, fleet
	// empty past the deadline, …). This is the middleware's disconnected-
	// operation guarantee: a tasklet application always makes progress,
	// network or no network.
	LocalFallback bool

	// NoCache opts the tasklet out of result memoization end to end: the
	// broker neither serves it from nor stores it into the result cache,
	// does not coalesce it with identical in-flight work, and providers
	// always execute it. Use for calibration runs and ablation.
	NoCache bool
}

// VoteStrength returns the voting strength a finalized result for this goal
// carries: the (normalized) replica count under voting, 0 otherwise. The
// result cache uses it to ensure an entry only satisfies requests demanding
// at most the strength it was established with.
func (q QoC) VoteStrength() int {
	if q.Mode != QoCVoting {
		return 0
	}
	return q.Normalize().Replicas
}

// Normalize returns q with invalid fields clamped to the documented
// defaults: Replicas at least 1 (and at least 3 for voting so a majority
// exists), retries non-negative.
func (q QoC) Normalize() QoC {
	if q.Replicas < 1 {
		q.Replicas = 1
	}
	if q.Mode == QoCVoting && q.Replicas < 3 {
		q.Replicas = 3
	}
	if q.Mode == QoCBestEffort {
		q.Replicas = 1
	}
	if q.MaxRetries < 0 {
		q.MaxRetries = 0
	}
	if q.Deadline < 0 {
		q.Deadline = 0
	}
	return q
}

// Validate rejects semantically impossible goals.
func (q QoC) Validate() error {
	if q.Mode > QoCVoting {
		return fmt.Errorf("core: unknown QoC mode %d", uint8(q.Mode))
	}
	if q.Replicas > 16 {
		return errors.New("core: more than 16 replicas is not supported")
	}
	if q.MaxRetries > 64 {
		return errors.New("core: more than 64 retries is not supported")
	}
	return nil
}

// Majority returns the number of agreeing results required to complete a
// voting tasklet with n attempts.
func Majority(n int) int { return n/2 + 1 }

// Tasklet is one schedulable unit of computation: a program reference, the
// parameters for this invocation, and its QoC goals. Tasklets are immutable
// once created; all mutable state lives in the broker's tracking structures.
type Tasklet struct {
	ID      TaskletID
	Job     JobID
	Index   int // position within the job, used by consumers to order results
	Program ProgramID
	Params  []tvm.Value
	QoC     QoC

	// Execution limits, forwarded into the provider's VM config.
	Fuel uint64
	Seed uint64 // rand() seed; equal seeds keep replicas vote-compatible

	Submitted time.Time
}

// ResultStatus classifies a tasklet attempt's outcome.
type ResultStatus uint8

// Result statuses. Values are part of the wire format; append only.
const (
	StatusOK       ResultStatus = iota // program ran to completion
	StatusFault                        // program faulted (code in FaultCode)
	StatusLost                         // provider vanished before reporting
	StatusRejected                     // provider refused (unknown program, over capacity)
)

// String returns a stable lower-case name for the status.
func (s ResultStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFault:
		return "fault"
	case StatusLost:
		return "lost"
	case StatusRejected:
		return "rejected"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Result is the outcome of one execution attempt.
type Result struct {
	Tasklet  TaskletID
	Attempt  AttemptID
	Job      JobID
	Index    int
	Provider ProviderID

	Status    ResultStatus
	Return    tvm.Value
	Emitted   []tvm.Value
	FaultCode tvm.FaultCode
	FaultMsg  string

	FuelUsed uint64
	Exec     time.Duration // provider-measured execution time
}

// OK reports whether the attempt completed successfully.
func (r *Result) OK() bool { return r.Status == StatusOK }

// Hash returns the vote-comparison hash of a successful result.
func (r *Result) Hash() uint64 {
	return tvm.HashValues(append([]tvm.Value{r.Return}, r.Emitted...))
}

// DeviceClass buckets providers by the kind of machine they run on. The
// heterogeneity experiments sweep fleets mixing these classes; the live
// provider daemon reports ClassUnknown and relies on its measured speed.
type DeviceClass uint8

// Device classes with their conventional relative speeds (see
// ClassSpeedFactor).
const (
	ClassUnknown DeviceClass = iota
	ClassServer
	ClassDesktop
	ClassLaptop
	ClassMobile
	ClassEmbedded
)

// String returns the lower-case class name.
func (c DeviceClass) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ClassServer:
		return "server"
	case ClassDesktop:
		return "desktop"
	case ClassLaptop:
		return "laptop"
	case ClassMobile:
		return "mobile"
	case ClassEmbedded:
		return "embedded"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ClassSpeedFactor returns the conventional relative execution speed of a
// device class, normalized to desktop = 1.0. The values follow the spread
// the paper's heterogeneous testbed exhibits: a server core runs roughly 2x
// a desktop, a phone roughly a quarter, embedded an order of magnitude less.
func ClassSpeedFactor(c DeviceClass) float64 {
	switch c {
	case ClassServer:
		return 2.0
	case ClassDesktop:
		return 1.0
	case ClassLaptop:
		return 0.6
	case ClassMobile:
		return 0.25
	case ClassEmbedded:
		return 0.1
	default:
		return 1.0
	}
}

// ProviderInfo is the broker's view of a registered provider.
type ProviderInfo struct {
	ID    ProviderID
	Addr  string
	Class DeviceClass

	// Slots is the number of tasklets the provider executes concurrently.
	Slots int

	// Speed is the provider's self-measured benchmark score in TVM
	// mega-ops per second (see internal/speedbench). Speed-aware
	// schedulers rank providers by it.
	Speed float64

	// Reliability is the broker-tracked completion ratio (completed
	// attempts / assigned attempts), in [0, 1]; starts optimistic at 1.
	Reliability float64

	Joined        time.Time
	LastHeartbeat time.Time
}

// ExpectedExec estimates how long work worth 'fuel' VM operations takes on
// this provider, given its measured speed. Used by deadline- and
// speed-aware scheduling policies.
func (p *ProviderInfo) ExpectedExec(fuel uint64) time.Duration {
	if p.Speed <= 0 {
		return time.Duration(0)
	}
	opsPerSec := p.Speed * 1e6
	return time.Duration(float64(fuel) / opsPerSec * float64(time.Second))
}

// JobSpec is a consumer's description of a batch submission: one program,
// many parameter sets, shared QoC.
type JobSpec struct {
	Program []byte // marshalled tvm.Program
	Params  [][]tvm.Value
	QoC     QoC
	Fuel    uint64
	Seed    uint64
}

// Validate checks the spec is executable.
func (s *JobSpec) Validate() error {
	if len(s.Program) == 0 {
		return errors.New("core: job has no program")
	}
	if len(s.Params) == 0 {
		return errors.New("core: job has no tasklets")
	}
	if err := s.QoC.Validate(); err != nil {
		return err
	}
	var prog tvm.Program
	if err := prog.UnmarshalBinary(s.Program); err != nil {
		return fmt.Errorf("core: job program invalid: %w", err)
	}
	want := prog.EntryFunc().NumParams
	for i, ps := range s.Params {
		if len(ps) != want {
			return fmt.Errorf("core: tasklet %d has %d params, entry wants %d", i, len(ps), want)
		}
	}
	return nil
}

// HashProgram computes the ProgramID of marshalled bytecode (FNV-1a).
func HashProgram(data []byte) ProgramID {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime
	}
	return ProgramID(h)
}
