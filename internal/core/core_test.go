package core

import (
	"testing"
	"time"

	"repro/internal/tasklang"
	"repro/internal/tvm"
)

func TestQoCNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   QoC
		want QoC
	}{
		{"zero value", QoC{}, QoC{Mode: QoCBestEffort, Replicas: 1}},
		{"best effort forces 1 replica", QoC{Mode: QoCBestEffort, Replicas: 5}, QoC{Mode: QoCBestEffort, Replicas: 1}},
		{"voting forces 3 replicas", QoC{Mode: QoCVoting, Replicas: 1}, QoC{Mode: QoCVoting, Replicas: 3}},
		{"voting keeps 5", QoC{Mode: QoCVoting, Replicas: 5}, QoC{Mode: QoCVoting, Replicas: 5}},
		{"redundant keeps 2", QoC{Mode: QoCRedundant, Replicas: 2}, QoC{Mode: QoCRedundant, Replicas: 2}},
		{"negative retries clamped", QoC{MaxRetries: -3}, QoC{Replicas: 1, MaxRetries: 0}},
		{"negative deadline clamped", QoC{Deadline: -time.Second}, QoC{Replicas: 1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.Normalize(); got != tc.want {
				t.Fatalf("Normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestQoCValidate(t *testing.T) {
	if err := (QoC{Mode: QoCVoting, Replicas: 3}).Validate(); err != nil {
		t.Fatalf("valid QoC rejected: %v", err)
	}
	if err := (QoC{Replicas: 100}).Validate(); err == nil {
		t.Fatal("100 replicas accepted")
	}
	if err := (QoC{MaxRetries: 1000}).Validate(); err == nil {
		t.Fatal("1000 retries accepted")
	}
	if err := (QoC{Mode: QoCMode(99)}).Validate(); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestMajority(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4}
	for n, want := range cases {
		if got := Majority(n); got != want {
			t.Errorf("Majority(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestResultHashDistinguishesOutputs(t *testing.T) {
	a := Result{Return: tvm.Int(1), Emitted: []tvm.Value{tvm.Str("x")}}
	b := Result{Return: tvm.Int(1), Emitted: []tvm.Value{tvm.Str("x")}}
	c := Result{Return: tvm.Int(2), Emitted: []tvm.Value{tvm.Str("x")}}
	if a.Hash() != b.Hash() {
		t.Fatal("identical results hash differently")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different results hash identically")
	}
}

func TestResultOK(t *testing.T) {
	if !(&Result{Status: StatusOK}).OK() {
		t.Fatal("StatusOK not OK")
	}
	for _, s := range []ResultStatus{StatusFault, StatusLost, StatusRejected} {
		if (&Result{Status: s}).OK() {
			t.Fatalf("%s reported OK", s)
		}
	}
}

func TestClassSpeedFactorOrdering(t *testing.T) {
	order := []DeviceClass{ClassServer, ClassDesktop, ClassLaptop, ClassMobile, ClassEmbedded}
	for i := 1; i < len(order); i++ {
		if ClassSpeedFactor(order[i-1]) <= ClassSpeedFactor(order[i]) {
			t.Fatalf("%s should be faster than %s", order[i-1], order[i])
		}
	}
	if ClassSpeedFactor(ClassUnknown) != 1.0 {
		t.Fatal("unknown class should default to 1.0")
	}
}

func TestExpectedExec(t *testing.T) {
	p := &ProviderInfo{Speed: 10} // 10 M ops/s
	if got := p.ExpectedExec(10_000_000); got != time.Second {
		t.Fatalf("ExpectedExec = %v, want 1s", got)
	}
	zero := &ProviderInfo{}
	if got := zero.ExpectedExec(1000); got != 0 {
		t.Fatalf("zero-speed provider should estimate 0, got %v", got)
	}
}

func TestJobSpecValidate(t *testing.T) {
	prog, err := tasklang.Compile(`func main(a int, b int) int { return a + b; }`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	good := &JobSpec{
		Program: data,
		Params:  [][]tvm.Value{{tvm.Int(1), tvm.Int(2)}, {tvm.Int(3), tvm.Int(4)}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	bad := &JobSpec{Program: data, Params: [][]tvm.Value{{tvm.Int(1)}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("param-count mismatch accepted")
	}
	if err := (&JobSpec{Params: [][]tvm.Value{{}}}).Validate(); err == nil {
		t.Fatal("empty program accepted")
	}
	if err := (&JobSpec{Program: data}).Validate(); err == nil {
		t.Fatal("empty params accepted")
	}
	if err := (&JobSpec{Program: []byte("junk"), Params: [][]tvm.Value{{}}}).Validate(); err == nil {
		t.Fatal("garbage program accepted")
	}
}

func TestHashProgramDiffers(t *testing.T) {
	a := HashProgram([]byte("aaa"))
	b := HashProgram([]byte("aab"))
	if a == b {
		t.Fatal("different programs share an ID")
	}
	if a != HashProgram([]byte("aaa")) {
		t.Fatal("hash not deterministic")
	}
}

func TestStringers(t *testing.T) {
	if QoCVoting.String() != "voting" || QoCMode(9).String() == "" {
		t.Fatal("QoCMode.String broken")
	}
	if StatusLost.String() != "lost" || ResultStatus(9).String() == "" {
		t.Fatal("ResultStatus.String broken")
	}
	if ClassMobile.String() != "mobile" || DeviceClass(9).String() == "" {
		t.Fatal("DeviceClass.String broken")
	}
}
