package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
)

// TestSimIndexMatchesLegacy is the simulator-level differential test for
// the incremental placement index: for every policy, with and without
// device churn, a run with the index must be event-for-event identical to a
// run with the legacy scan — same final results, same per-device execution
// counts, same attempt totals, same makespan.
func TestSimIndexMatchesLegacy(t *testing.T) {
	mixedDevices := func(churn bool) []DeviceSpec {
		devs := []DeviceSpec{
			{Class: core.ClassServer, Slots: 4, Speed: 400},
			{Class: core.ClassDesktop, Slots: 2, Speed: 100},
			{Class: core.ClassDesktop, Slots: 2, Speed: 100}, // rank ties
			{Class: core.ClassMobile, Slots: 1, Speed: 25},
			{Class: core.ClassEmbedded, Slots: 1, Speed: 5},
		}
		if churn {
			devs[1].MTBF, devs[1].MTTR = 20*time.Second, 5*time.Second
			devs[3].MTBF, devs[3].MTTR = 15*time.Second, 10*time.Second
		}
		return devs
	}
	tasks := func() []TaskSpec {
		var ts []TaskSpec
		for i := 0; i < 60; i++ {
			spec := TaskSpec{
				Fuel:    uint64(1+i%7) * 40_000_000,
				Arrival: time.Duration(i) * 150 * time.Millisecond,
			}
			switch i % 4 {
			case 1:
				spec.QoC = core.QoC{Mode: core.QoCRedundant, Replicas: 2}
			case 2:
				spec.QoC = core.QoC{Deadline: 30 * time.Second}
			}
			ts = append(ts, spec)
		}
		return ts
	}

	for _, name := range scheduler.Names() {
		name := name
		for _, churn := range []bool{false, true} {
			churn := churn
			label := name + "/steady"
			if churn {
				label = name + "/churn"
			}
			t.Run(label, func(t *testing.T) {
				run := func(noIndex bool) *Stats {
					pol, err := scheduler.New(name, 42)
					if err != nil {
						t.Fatal(err)
					}
					stats, err := Run(Config{
						Devices: mixedDevices(churn),
						Tasks:   tasks(),
						Policy:  pol,
						Latency: 5 * time.Millisecond,
						Seed:    42,
						NoIndex: noIndex,
					})
					if err != nil {
						t.Fatal(err)
					}
					return stats
				}
				indexed, legacy := run(false), run(true)

				if indexed.Makespan != legacy.Makespan {
					t.Errorf("makespan: indexed %v, legacy %v", indexed.Makespan, legacy.Makespan)
				}
				if indexed.Attempts != legacy.Attempts ||
					indexed.Completed != legacy.Completed ||
					indexed.Failed != legacy.Failed {
					t.Errorf("attempts/completed/failed: indexed %d/%d/%d, legacy %d/%d/%d",
						indexed.Attempts, indexed.Completed, indexed.Failed,
						legacy.Attempts, legacy.Completed, legacy.Failed)
				}
				for i := range indexed.DeviceExecuted {
					if indexed.DeviceExecuted[i] != legacy.DeviceExecuted[i] {
						t.Errorf("device %d executed: indexed %d, legacy %d",
							i, indexed.DeviceExecuted[i], legacy.DeviceExecuted[i])
					}
				}
				for i := range indexed.Finals {
					a, b := indexed.Finals[i], legacy.Finals[i]
					if a.Status != b.Status || a.Provider != b.Provider ||
						a.Return.Kind != b.Return.Kind || a.Return.I != b.Return.I {
						t.Errorf("tasklet %d final: indexed %+v, legacy %+v", i, a, b)
					}
				}
			})
		}
	}
}
