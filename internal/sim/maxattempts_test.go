package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// churnConfig is a provider-churn scenario with enough failures to exercise
// lost-attempt re-issue (mirrors the churn_retries golden scenario).
func churnConfig() Config {
	return Config{
		Devices: []DeviceSpec{
			{Class: core.ClassDesktop, Slots: 1, MTBF: 5 * time.Second, MTTR: 2 * time.Second},
			{Class: core.ClassDesktop, Slots: 1},
		},
		Tasks:       uniformTasks(60, 50_000_000),
		DetectDelay: 500 * time.Millisecond,
		Seed:        11,
	}
}

// TestSimMaxAttemptsUnlimitedMatchesHugeCap is the differential pin for the
// attempt-cap plumbing: a cap high enough never to bind must be
// event-identical to no cap at all — same makespan, same attempt counts,
// same finals. Any divergence means the cap accounting perturbs scheduling
// even when inactive.
func TestSimMaxAttemptsUnlimitedMatchesHugeCap(t *testing.T) {
	base := churnConfig()
	capped := churnConfig()
	capped.MaxAttempts = 1 << 30

	sb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Makespan != sc.Makespan || sb.Attempts != sc.Attempts ||
		sb.LostAttempts != sc.LostAttempts || sb.Completed != sc.Completed ||
		sb.Failed != sc.Failed {
		t.Fatalf("aggregates diverged:\n  uncapped: makespan=%v attempts=%d lost=%d ok=%d fail=%d\n  capped:   makespan=%v attempts=%d lost=%d ok=%d fail=%d",
			sb.Makespan, sb.Attempts, sb.LostAttempts, sb.Completed, sb.Failed,
			sc.Makespan, sc.Attempts, sc.LostAttempts, sc.Completed, sc.Failed)
	}
	if !reflect.DeepEqual(sb.DeviceExecuted, sc.DeviceExecuted) {
		t.Fatalf("device executions diverged: %v vs %v", sb.DeviceExecuted, sc.DeviceExecuted)
	}
	for i := range sb.Finals {
		a, b := sb.Finals[i], sc.Finals[i]
		if a.Status != b.Status || a.Provider != b.Provider || !a.Return.Equal(b.Return) {
			t.Fatalf("final %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestSimMaxAttemptsExhaustionFailsLost pins the cap semantics: with
// MaxAttempts=1 a tasklet whose only attempt dies with its device cannot
// re-issue and must finalize as StatusLost; without the cap the same
// scenario re-issues after recovery and completes.
func TestSimMaxAttemptsExhaustionFailsLost(t *testing.T) {
	cfg := Config{
		Devices: []DeviceSpec{
			// Single device whose first failure (seed 2) lands inside the 5s
			// execution; the re-issue after recovery runs to completion.
			{Class: core.ClassDesktop, Slots: 1, MTBF: 8 * time.Second, MTTR: time.Second},
		},
		Tasks:       []TaskSpec{{Fuel: 500_000_000}},
		DetectDelay: 100 * time.Millisecond,
		Seed:        2,
	}

	uncapped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.Completed != 1 || uncapped.LostAttempts == 0 {
		t.Fatalf("uncapped run: completed=%d lost=%d; want completion after >=1 loss (pick another seed?)",
			uncapped.Completed, uncapped.LostAttempts)
	}

	cfg.MaxAttempts = 1
	capped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Failed != 1 || capped.Completed != 0 {
		t.Fatalf("capped run: completed=%d failed=%d, want the tasklet to fail", capped.Completed, capped.Failed)
	}
	if got := capped.Finals[0].Status; got != core.StatusLost {
		t.Fatalf("capped final status = %v, want StatusLost", got)
	}
	if capped.Attempts != 1 {
		t.Fatalf("capped run launched %d attempts, want exactly 1", capped.Attempts)
	}
}

// TestSimRetryBackoffDelaysReissue pins the backoff plumbing: the same
// churn scenario with a large re-issue backoff can only finish later (or at
// the same time) and must deliver every tasklet with identical finals —
// backoff delays work, it must not change results.
func TestSimRetryBackoffDelaysReissue(t *testing.T) {
	base := churnConfig()
	delayed := churnConfig()
	delayed.RetryBackoff = 3 * time.Second

	sb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := Run(delayed)
	if err != nil {
		t.Fatal(err)
	}
	if sb.LostAttempts == 0 {
		t.Fatal("scenario produced no losses; backoff unexercised")
	}
	if sd.Completed != len(delayed.Tasks) {
		t.Fatalf("backoff run completed %d/%d", sd.Completed, len(delayed.Tasks))
	}
	if sd.Makespan < sb.Makespan {
		t.Fatalf("backoff shortened the makespan: %v < %v", sd.Makespan, sb.Makespan)
	}
	for i := range sb.Finals {
		if sb.Finals[i].Status != sd.Finals[i].Status {
			t.Fatalf("final %d status diverged: %v vs %v", i, sb.Finals[i].Status, sd.Finals[i].Status)
		}
	}
}
