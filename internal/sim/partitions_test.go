package sim

import (
	"testing"
	"time"
)

// partitionScenario is a result-bound cluster: one shard, plenty of device
// capacity, and a result-processing cost high enough that the serialized
// dispatcher line is the bottleneck partitioning relieves.
func partitionScenario(partitions int) ShardedConfig {
	devices := make([]DeviceSpec, 16)
	for i := range devices {
		devices[i] = DeviceSpec{Slots: 6, Speed: 100}
	}
	tasks := make([]TaskSpec, 1500)
	for i := range tasks {
		tasks[i] = TaskSpec{Fuel: 100_000, Arrival: time.Duration(i) * 25 * time.Microsecond}
	}
	return ShardedConfig{
		Base: Config{
			Devices: devices,
			Tasks:   tasks,
			Latency: 200 * time.Microsecond,
			Seed:    7,
		},
		Shards:         1,
		BrokerOverhead: 12 * time.Microsecond,
		ResultOverhead: 50 * time.Microsecond,
		FrameOverhead:  25 * time.Microsecond,
		Batch:          true,
		Partitions:     partitions,
	}
}

// TestPartitionsInertAtOne pins the ablation contract: Partitions 0 and 1
// run the identical fully-serialized model — same event sequence, same
// makespan, same finals.
func TestPartitionsInertAtOne(t *testing.T) {
	zero, err := RunSharded(partitionScenario(0))
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunSharded(partitionScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Makespan != one.Makespan {
		t.Fatalf("Partitions 0 vs 1 diverged: makespan %v vs %v", zero.Makespan, one.Makespan)
	}
	if zero.Completed != one.Completed || zero.Attempts != one.Attempts {
		t.Fatalf("Partitions 0 vs 1 diverged: completed %d/%d attempts %d/%d",
			zero.Completed, one.Completed, zero.Attempts, one.Attempts)
	}
	for i := range zero.Finals {
		a, b := zero.Finals[i], one.Finals[i]
		if a.Tasklet != b.Tasklet || a.Status != b.Status || a.Provider != b.Provider ||
			a.Attempt != b.Attempt || !a.Return.Equal(b.Return) {
			t.Fatalf("final %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestPartitionsRelieveResultBottleneck checks the model does what the
// partitioned broker core claims: on a result-bound scenario, striping
// result processing across partition servers shortens the makespan, and
// more partitions never hurt.
func TestPartitionsRelieveResultBottleneck(t *testing.T) {
	base, err := RunSharded(partitionScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := base.Makespan
	for _, p := range []int{2, 4, 8} {
		st, err := RunSharded(partitionScenario(p))
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != base.Completed {
			t.Fatalf("P=%d completed %d, want %d", p, st.Completed, base.Completed)
		}
		// Tail effects of the tasklet-to-partition keying can wiggle a tier
		// by a hair; anything beyond 2% is a real regression.
		if st.Makespan > prev+prev/50 {
			t.Fatalf("P=%d makespan %v regressed over previous tier %v", p, st.Makespan, prev)
		}
		if st.Makespan < prev {
			prev = st.Makespan
		}
	}
	if ratio := float64(base.Makespan) / float64(prev); ratio < 1.5 {
		t.Fatalf("P=8 speedup %.2fx over serialized, want >= 1.5x", ratio)
	}
}
