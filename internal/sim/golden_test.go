package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
)

// The golden file pins the simulator's observable behaviour bit-for-bit
// across refactors: it was generated *before* the tasklet lifecycle was
// extracted into internal/lifecycle, so any divergence between these runs
// and the recorded values means the shared engine changed scheduling,
// QoC, memoization, or finalization behaviour. Regenerate only when a
// behaviour change is intentional: go test ./internal/sim -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json")

// goldenFinal is the per-tasklet slice of a final result that must stay
// identical: status, executing provider, returned value, and fuel accounting.
type goldenFinal struct {
	Status   uint8  `json:"status"`
	Provider uint64 `json:"provider"`
	RetKind  uint8  `json:"retKind"`
	RetI     int64  `json:"retI"`
	FuelUsed uint64 `json:"fuelUsed"`
}

// goldenRun is one scenario's pinned outcome.
type goldenRun struct {
	MakespanNS     int64         `json:"makespanNS"`
	Completed      int           `json:"completed"`
	Failed         int           `json:"failed"`
	Attempts       int           `json:"attempts"`
	LostAttempts   int           `json:"lostAttempts"`
	WastedAttempts int           `json:"wastedAttempts"`
	CacheHits      int           `json:"cacheHits"`
	Coalesced      int           `json:"coalesced"`
	DeviceExecuted []int         `json:"deviceExecuted"`
	Finals         []goldenFinal `json:"finals"`
}

// goldenScenarios builds the pinned scenarios fresh each call (policies are
// stateful). They cover every lifecycle path the refactor moves: QoC voting
// with a faulty minority, memo hits and coalesced flights, deadlines,
// redundant fan-out with cancellations, provider churn with lost-attempt
// re-issue, and mixed arrivals over a heterogeneous fleet.
func goldenScenarios(t *testing.T) map[string]Config {
	t.Helper()
	pol := func(name string) scheduler.Policy {
		p, err := scheduler.New(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	votingFaulty := Config{
		Devices: []DeviceSpec{
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2, Faulty: true},
		},
		Tasks: keyedTasks(64, 20_000_000, []uint64{11, 12, 11, 13, 11, 12, 14, 11},
			100*time.Millisecond, core.QoC{Mode: core.QoCVoting, Replicas: 3}),
		Seed: 17,
	}

	mixed := Config{
		Devices: []DeviceSpec{
			{Class: core.ClassServer, Slots: 4, Speed: 400},
			{Class: core.ClassDesktop, Slots: 2, Speed: 100},
			{Class: core.ClassMobile, Slots: 1, Speed: 25},
		},
		Policy:  pol("fastest"),
		Latency: 5 * time.Millisecond,
		Seed:    7,
	}
	for i := 0; i < 48; i++ {
		spec := TaskSpec{
			Fuel:    uint64(1+i%5) * 30_000_000,
			Arrival: time.Duration(i) * 120 * time.Millisecond,
		}
		switch i % 4 {
		case 1:
			spec.QoC = core.QoC{Mode: core.QoCRedundant, Replicas: 2}
		case 2:
			spec.QoC = core.QoC{Deadline: 2 * time.Second}
		case 3:
			spec.Key = uint64(20 + i%3)
		}
		mixed.Tasks = append(mixed.Tasks, spec)
	}

	churn := Config{
		Devices: []DeviceSpec{
			{Class: core.ClassDesktop, Slots: 1, MTBF: 5 * time.Second, MTTR: 2 * time.Second},
			{Class: core.ClassDesktop, Slots: 1},
		},
		Tasks:       uniformTasks(60, 50_000_000),
		DetectDelay: 500 * time.Millisecond,
		Seed:        11,
	}

	memoBurst := Config{
		Devices: homogeneous(2, 2, 100),
		Tasks:   keyedTasks(40, 40_000_000, []uint64{5, 6, 5, 5, 7}, 50*time.Millisecond, core.QoC{}),
		Seed:    3,
	}

	return map[string]Config{
		"voting_faulty_memo": votingFaulty,
		"mixed_modes":        mixed,
		"churn_retries":      churn,
		"memo_burst":         memoBurst,
	}
}

func goldenFromStats(stats *Stats) goldenRun {
	g := goldenRun{
		MakespanNS:     int64(stats.Makespan),
		Completed:      stats.Completed,
		Failed:         stats.Failed,
		Attempts:       stats.Attempts,
		LostAttempts:   stats.LostAttempts,
		WastedAttempts: stats.WastedAttempts,
		CacheHits:      stats.CacheHits,
		Coalesced:      stats.Coalesced,
		DeviceExecuted: stats.DeviceExecuted,
	}
	for _, f := range stats.Finals {
		g.Finals = append(g.Finals, goldenFinal{
			Status:   uint8(f.Status),
			Provider: uint64(f.Provider),
			RetKind:  uint8(f.Return.Kind),
			RetI:     f.Return.I,
			FuelUsed: f.FuelUsed,
		})
	}
	return g
}

// TestSimGoldenPinned replays the pinned scenarios and requires every
// recorded field — aggregate counters, per-device execution counts, and
// every tasklet's final result — to match the pre-refactor goldens exactly.
func TestSimGoldenPinned(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	got := map[string]goldenRun{}
	for name, cfg := range goldenScenarios(t) {
		stats, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = goldenFromStats(stats)
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update): %v", err)
	}
	var want map[string]goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name := range want {
		w, g := want[name], got[name]
		if g.MakespanNS != w.MakespanNS || g.Completed != w.Completed || g.Failed != w.Failed ||
			g.Attempts != w.Attempts || g.LostAttempts != w.LostAttempts ||
			g.WastedAttempts != w.WastedAttempts || g.CacheHits != w.CacheHits ||
			g.Coalesced != w.Coalesced {
			t.Errorf("%s: aggregates diverged from pre-refactor golden:\n got %+v\nwant %+v",
				name, stripFinals(g), stripFinals(w))
		}
		if !reflect.DeepEqual(g.DeviceExecuted, w.DeviceExecuted) {
			t.Errorf("%s: per-device execution counts diverged:\n got %v\nwant %v",
				name, g.DeviceExecuted, w.DeviceExecuted)
		}
		if len(g.Finals) != len(w.Finals) {
			t.Errorf("%s: finals count %d, want %d", name, len(g.Finals), len(w.Finals))
			continue
		}
		for i := range w.Finals {
			if g.Finals[i] != w.Finals[i] {
				t.Errorf("%s: final %d diverged:\n got %+v\nwant %+v", name, i, g.Finals[i], w.Finals[i])
			}
		}
	}
}

func stripFinals(g goldenRun) goldenRun {
	g.Finals = nil
	g.DeviceExecuted = nil
	return g
}
