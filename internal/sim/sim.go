package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/tvm"
)

// DeviceSpec describes one simulated provider.
type DeviceSpec struct {
	Class core.DeviceClass
	// Slots is the number of concurrent executions (cores donated).
	Slots int
	// Speed is the device's execution speed in TVM mega-ops/second. Zero
	// derives it from the class: desktop-class 100 Mops/s scaled by
	// core.ClassSpeedFactor.
	Speed float64
	// MTBF/MTTR parameterize exponential churn; zero MTBF means the device
	// never fails.
	MTBF time.Duration
	MTTR time.Duration
	// Faulty devices return corrupted results (their device index instead
	// of the true value) — the adversary QoC voting defends against.
	Faulty bool
}

// speed returns the effective Mops/s.
func (d DeviceSpec) speed() float64 {
	if d.Speed > 0 {
		return d.Speed
	}
	return 100 * core.ClassSpeedFactor(d.Class)
}

// TaskSpec describes one tasklet in the simulated workload.
type TaskSpec struct {
	// Fuel is the tasklet's work in VM operations.
	Fuel uint64
	// Arrival is when the consumer submits it.
	Arrival time.Duration
	QoC     core.QoC
	// Key is the tasklet's content identity: tasklets with the same nonzero
	// Key model submissions of identical (program, seed, params) content and
	// are eligible for result memoization and coalescing. Zero means unique
	// content (never memoized). A correct execution of a keyed tasklet
	// returns Int(Key), so repeats are bit-identical, as purity guarantees.
	Key uint64
	// Program is the tasklet's program hash, used only by the sharded
	// simulator as the consistent-hash routing key (RunSharded). Zero falls
	// back to Key, then to a per-task spread. Single-shard Run ignores it.
	Program uint64
}

// Config is a complete simulation scenario.
type Config struct {
	Devices []DeviceSpec
	Tasks   []TaskSpec
	// Policy is the placement policy; nil selects work_steal.
	Policy scheduler.Policy
	// Latency is the one-way broker<->provider message delay.
	Latency time.Duration
	// DetectDelay is how long after a device fails the broker notices
	// (heartbeat timeout). Zero selects 2s.
	DetectDelay time.Duration
	Seed        uint64
	// MaxTime aborts runaway scenarios. Zero selects 24h of virtual time.
	MaxTime time.Duration
	// Trace records a per-event timeline into Stats.Trace (see trace.go).
	Trace bool
	// MemoEntries, MemoBytes and MemoTTL bound the simulated broker's result
	// memo, mirroring broker.Options: zero selects the memo package defaults,
	// any negative value disables memoization and coalescing. TTL expiry runs
	// on the simulator's virtual clock.
	MemoEntries int
	MemoBytes   int
	MemoTTL     time.Duration
	// NoIndex disables the incremental scheduler index and forces the
	// legacy full-scan placement path, mirroring broker.Options.NoIndex.
	// Device choices are identical either way (pinned by the differential
	// tests); exists for the E10 ablation.
	NoIndex bool
	// MaxAttempts caps the total attempts one tasklet may consume across
	// lost-attempt re-issues, mirroring broker.Options.MaxAttempts: zero (or
	// negative) means unlimited — the legacy behavior, bounded only by the
	// QoC retry budget. Cap exhaustion finalizes the tasklet as StatusLost.
	MaxAttempts int
	// RetryBackoff delays the n-th re-issue of a tasklet by
	// RetryBackoff << min(n-1, 6) of virtual time; zero re-issues
	// immediately (the legacy behavior).
	RetryBackoff time.Duration
}

// Stats is the outcome of a simulation run.
type Stats struct {
	// Makespan is the virtual time from first arrival to last completion.
	Makespan time.Duration
	// Completed and Failed count tasklets by final status.
	Completed int
	Failed    int
	// Attempts counts executions launched; LostAttempts those that died
	// with their device; WastedAttempts completed-but-redundant ones.
	Attempts       int
	LostAttempts   int
	WastedAttempts int
	// CacheHits counts tasklets served from the result memo without any
	// attempt; Coalesced counts tasklets that joined an identical in-flight
	// tasklet's fan-out instead of scheduling their own.
	CacheHits int
	Coalesced int
	// Latency is the per-tasklet submission-to-final-result distribution
	// (milliseconds of virtual time).
	Latency metrics.Summary
	// QueueDelay is the per-attempt placement delay distribution (ms).
	QueueDelay metrics.Summary
	// BusyTime is each device's cumulative execution time.
	BusyTime []time.Duration
	// DeviceExecuted counts attempts finished per device.
	DeviceExecuted []int
	// Trace is the event timeline, recorded only when Config.Trace is set.
	Trace []TraceEvent
	// Finals records every tasklet's final result, indexed like Config.Tasks.
	// The memo differential tests assert these are bit-identical with
	// memoization on and off.
	Finals []core.Result
}

// Utilization returns mean device busy fraction over the makespan.
func (s *Stats) Utilization(devices []DeviceSpec) float64 {
	if s.Makespan <= 0 || len(devices) == 0 {
		return 0
	}
	var frac float64
	for i, bt := range s.BusyTime {
		slots := devices[i].Slots
		if slots <= 0 {
			slots = 1
		}
		frac += float64(bt) / float64(s.Makespan) / float64(slots)
	}
	return frac / float64(len(s.BusyTime))
}

// attemptRec is one in-flight simulated execution — the transport/timing
// half of an attempt. The lifecycle half (which tasklet, abandoned or not)
// lives in the shared lifecycle engine.
type attemptRec struct {
	id       core.AttemptID
	tasklet  core.TaskletID
	device   int
	epoch    int // device incarnation at launch; stale completions are void
	started  time.Duration
	fuel     uint64
	content  uint64 // TaskSpec.Key; decides the canonical result value
	finished bool
}

// deviceState is the runtime state of one simulated device.
type deviceState struct {
	spec    DeviceSpec
	info    core.ProviderInfo
	up      bool
	epoch   int
	free    int
	backlog int
	busy    time.Duration
	done    int
	// lastFramePass marks the placement pass that last charged this device
	// an assignment frame; under the batched control-plane model all of a
	// pass's launches to one device share one AssignBatch frame.
	lastFramePass uint64
}

// sim is the running world: a virtual-time driver of the shared lifecycle
// engine. The engine owns submission, memoization, coalescing, QoC decisions
// and finalization; the sim owns devices, virtual clocks, message latency,
// churn, and placement.
type sim struct {
	cfg     Config
	eng     *engine
	life    *lifecycle.Engine
	devices []*deviceState
	attempt map[core.AttemptID]*attemptRec
	pending []pendingEntry
	memoOn  bool

	// index is the incremental placement index; nil when Config.NoIndex is
	// set or the policy has no indexed form (legacy scan runs instead).
	// Down devices stay indexed with zero capacity rather than removed, so
	// recovery is an O(log P) weight flip, not a re-insertion.
	index *scheduler.Index
	// excl and cands are placement scratch buffers reused across picks.
	excl  []core.ProviderID
	cands []scheduler.Candidate

	stats      Stats
	latency    *metrics.Histogram
	queueDelay *metrics.Histogram
	lastDone   time.Duration
	firstArr   time.Duration
	remaining  int

	// overhead models the broker dispatcher's serialized CPU cost per
	// placement dispatch and per result processed; busyUntil is the virtual
	// time the dispatcher frees up. Zero overhead (plain Run) adds no events
	// and no delay, keeping single-broker behavior bit-identical. The
	// sharded simulator sets it so that splitting one dispatcher into N
	// actually buys throughput (see sharded.go).
	overhead  time.Duration
	busyUntil time.Duration
	// frameOverhead extends the overhead model with a per-wire-frame cost
	// (encode + syscall + decode) on top of the per-operation cost. batched
	// selects the batched control plane: a placement pass pays one frame per
	// destination device (AssignBatch) instead of one per attempt, and a
	// result pays a frame only when the dispatcher is idle — results that
	// arrive while it is busy fold into the batch already being drained
	// (AttemptResultBatch). Zero frameOverhead makes both modes identical.
	frameOverhead time.Duration
	batched       bool
	passSeq       uint64
	// partitions/partBusy/resultOverhead model the lock-striped partitioned
	// broker core (ShardedConfig.Partitions): with partitions > 1, result
	// processing is served by one of partitions parallel servers keyed by
	// tasklet ID while dispatch stays on the serialized busyUntil line.
	// resultOverhead overrides the per-result op cost (zero = overhead).
	// partitions <= 1 leaves every path untouched — bit-identical to the
	// serialized model.
	partitions     int
	partBusy       []time.Duration
	resultOverhead time.Duration
}

type pendingEntry struct {
	tasklet core.TaskletID
	since   time.Duration
}

// normalize fills Config defaults shared by Run and RunSharded.
func (cfg Config) normalize() (Config, error) {
	if len(cfg.Devices) == 0 {
		return cfg, errors.New("sim: no devices")
	}
	if len(cfg.Tasks) == 0 {
		return cfg, errors.New("sim: no tasks")
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.NewWorkSteal()
	}
	if cfg.DetectDelay <= 0 {
		cfg.DetectDelay = 2 * time.Second
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = 24 * time.Hour
	}
	return cfg, nil
}

// newSim builds one broker world — lifecycle engine, memo, devices, index —
// on the given event engine. Run uses exactly one; RunSharded builds one
// per shard over a shared engine. cfg must be normalized and its Devices
// are this world's devices only (Tasks stays the full list: shards need
// arrival/key lookups for any task index that migrates to them).
func newSim(cfg Config, eng *engine) *sim {
	s := &sim{
		cfg:        cfg,
		eng:        eng,
		attempt:    map[core.AttemptID]*attemptRec{},
		latency:    &metrics.Histogram{},
		queueDelay: &metrics.Histogram{},
	}
	var opts lifecycle.Options
	opts.MaxAttempts = cfg.MaxAttempts
	opts.RetryBackoff = cfg.RetryBackoff
	if cfg.MemoEntries >= 0 && cfg.MemoBytes >= 0 && cfg.MemoTTL >= 0 {
		epoch := time.Unix(0, 0)
		opts.Memo = memo.New(memo.Config{
			MaxEntries: cfg.MemoEntries,
			MaxBytes:   cfg.MemoBytes,
			TTL:        cfg.MemoTTL,
			// TTL expiry must happen in virtual time, not wall time.
			Clock: func() time.Time { return epoch.Add(s.eng.now) },
		})
		opts.Flights = memo.NewFlightTable(nil, "")
		s.memoOn = true
	}
	s.life = lifecycle.New(opts)

	for i, spec := range cfg.Devices {
		if spec.Slots <= 0 {
			spec.Slots = 1
		}
		d := &deviceState{
			spec: spec,
			info: core.ProviderInfo{
				ID:          core.ProviderID(i + 1),
				Class:       spec.Class,
				Slots:       spec.Slots,
				Speed:       spec.speed(),
				Reliability: 1,
			},
			up:   true,
			free: spec.Slots,
		}
		s.devices = append(s.devices, d)
		if spec.MTBF > 0 {
			s.scheduleFailure(i)
		}
	}
	if !cfg.NoIndex {
		if ix, err := scheduler.NewIndexFor(cfg.Policy); err == nil {
			s.index = ix
			for _, d := range s.devices {
				s.index.Upsert(&d.info, d.free, 0)
			}
		}
	}
	s.stats.BusyTime = make([]time.Duration, len(s.devices))
	s.stats.DeviceExecuted = make([]int, len(s.devices))
	s.stats.Finals = make([]core.Result, len(cfg.Tasks))
	s.firstArr = time.Duration(-1)
	return s
}

// Run executes the scenario and returns its statistics.
func Run(cfg Config) (*Stats, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	s := newSim(cfg, newEngine(cfg.Seed))
	s.remaining = len(cfg.Tasks)
	for i, tspec := range cfg.Tasks {
		fuel := tspec.Fuel
		if fuel == 0 {
			fuel = 1_000_000
		}
		t := core.Tasklet{
			ID: core.TaskletID(i + 1), Job: 1, Index: i,
			Fuel: fuel, QoC: tspec.QoC,
		}
		if s.firstArr < 0 || tspec.Arrival < s.firstArr {
			s.firstArr = tspec.Arrival
		}
		content := tspec.Key
		s.eng.at(tspec.Arrival, func() { s.onArrival(t, content) })
	}

	// Drive events until every tasklet is final. Churn events reschedule
	// themselves forever, so "queue empty" is not the termination
	// condition — "no tasklets remaining" is.
	for s.remaining > 0 {
		if len(s.eng.heap) > 0 && s.eng.heap[0].at > cfg.MaxTime {
			return nil, fmt.Errorf("sim: exceeded max virtual time %v with %d tasklets unfinished",
				cfg.MaxTime, s.remaining)
		}
		if !s.eng.step() {
			return nil, fmt.Errorf("sim: event queue drained with %d tasklets unfinished (fleet dead?)", s.remaining)
		}
	}

	s.stats.Makespan = s.lastDone - s.firstArr
	s.stats.Latency = s.latency.Snapshot()
	s.stats.QueueDelay = s.queueDelay.Snapshot()
	for i, d := range s.devices {
		s.stats.BusyTime[i] = d.busy
		s.stats.DeviceExecuted[i] = d.done
	}
	return &s.stats, nil
}

// ---------- world mechanics ----------

// apply executes the engine's effects against the simulated world. It
// reports whether any immediate launch was queued, so callers know to run a
// placement pass.
func (s *sim) apply(fx []lifecycle.Effect) (launched bool) {
	for _, ef := range fx {
		switch ef.Kind {
		case lifecycle.EffectLaunch:
			if ef.Delay > 0 {
				tid := ef.Tasklet
				s.eng.after(ef.Delay, func() {
					if !s.life.Live(tid) {
						return
					}
					s.pending = append(s.pending, pendingEntry{tasklet: tid, since: s.eng.now})
					s.schedule()
				})
			} else {
				s.pending = append(s.pending, pendingEntry{tasklet: ef.Tasklet, since: s.eng.now})
				launched = true
			}
		case lifecycle.EffectSetDeadline:
			tid := ef.Tasklet
			s.eng.after(ef.Delay, func() { s.onDeadline(tid) })
		case lifecycle.EffectCoalesced:
			s.stats.Coalesced++
		case lifecycle.EffectDeliver:
			s.recordFinal(ef)
		case lifecycle.EffectCancelAttempt:
			// Simulated providers have no cancellation channel: the
			// redundant execution runs to completion and is counted as
			// wasted (conservative for the overhead measurements).
		}
	}
	return launched
}

// recordFinal books one tasklet's final result into the run statistics.
func (s *sim) recordFinal(ef lifecycle.Effect) {
	final := ef.Final
	if ef.FromCache {
		s.stats.CacheHits++
	}
	s.remaining--
	s.stats.Finals[final.Index] = final
	s.trace(TraceFinal, -1, final.Index, 0, final.OK())
	if final.OK() {
		s.stats.Completed++
	} else {
		s.stats.Failed++
	}
	s.latency.Observe(float64(s.eng.now-s.cfg.Tasks[final.Index].Arrival) / 1e6)
	if s.eng.now > s.lastDone {
		s.lastDone = s.eng.now
	}
}

func (s *sim) onArrival(t core.Tasklet, content uint64) {
	s.trace(TraceArrival, -1, t.Index, 0, false)
	var key memo.Key
	var haveKey bool
	if s.memoOn && content != 0 {
		key, haveKey = memo.KeyFor(content, s.cfg.Seed, nil)
	}
	if s.apply(s.life.Submit(t, key, haveKey)) {
		s.schedule()
	}
}

func (s *sim) onDeadline(id core.TaskletID) {
	expired, fx := s.life.Deadline(id)
	if !expired {
		return
	}
	if s.apply(fx) {
		s.schedule()
	}
}

// schedule walks the placement queue like the live broker: the indexed
// batch pass by default, the legacy full-scan pass under Config.NoIndex.
func (s *sim) schedule() {
	if len(s.pending) == 0 {
		return
	}
	s.passSeq++ // new pass: each device's first launch charges a fresh frame
	if s.index != nil {
		s.scheduleIndexed()
	} else {
		s.scheduleLegacy()
	}
}

// scheduleIndexed feeds the queue through the incremental index; launch's
// Assign hook re-ranks the chosen device before the next pick.
func (s *sim) scheduleIndexed() {
	remaining := s.pending[:0]
	for idx, pe := range s.pending {
		if s.index.FreeSlots() <= 0 {
			remaining = append(remaining, s.pending[idx:]...)
			break
		}
		t := s.life.Tasklet(pe.tasklet)
		if t == nil {
			continue
		}
		s.excl = s.life.AppendActiveProviders(pe.tasklet, s.excl[:0])
		pid, ok := s.index.Pick(t, s.excl)
		if !ok {
			remaining = append(remaining, pe)
			continue
		}
		dev := s.devices[int(pid)-1]
		if !dev.up || dev.free <= 0 {
			remaining = append(remaining, pe)
			continue
		}
		s.queueDelay.Observe(float64(s.eng.now-pe.since) / 1e6)
		s.launch(t, dev)
	}
	s.pending = remaining
}

// scheduleLegacy rebuilds the candidate view for every pick (free/backlog
// change as attempts launch). Kept for the E10 ablation and for policies
// without an indexed form.
func (s *sim) scheduleLegacy() {
	totalFree := 0
	for _, d := range s.devices {
		if d.up {
			totalFree += d.free
		}
	}
	remaining := s.pending[:0]
	for idx, pe := range s.pending {
		if totalFree <= 0 {
			remaining = append(remaining, s.pending[idx:]...)
			break
		}
		t := s.life.Tasklet(pe.tasklet)
		if t == nil {
			continue
		}
		cands := s.cands[:0]
		for _, d := range s.devices {
			if !d.up {
				continue
			}
			cands = append(cands, scheduler.Candidate{
				Info: &d.info, FreeSlots: d.free, Backlog: d.backlog,
			})
		}
		s.cands = cands
		s.excl = s.life.AppendActiveProviders(pe.tasklet, s.excl[:0])
		req := scheduler.Request{Tasklet: t, ExcludeIDs: s.excl}
		pid, ok := s.cfg.Policy.Pick(req, cands)
		if !ok {
			remaining = append(remaining, pe)
			continue
		}
		dev := s.devices[int(pid)-1]
		if !dev.up || dev.free <= 0 {
			remaining = append(remaining, pe)
			continue
		}
		s.queueDelay.Observe(float64(s.eng.now-pe.since) / 1e6)
		s.launch(t, dev)
		totalFree--
	}
	s.pending = remaining
}

// launch starts one attempt on dev; completion is scheduled after the
// network latency plus the device-speed-scaled execution time.
func (s *sim) launch(t *core.Tasklet, dev *deviceState) {
	aid, ok := s.life.Launched(t.ID, dev.info.ID)
	if !ok {
		return
	}
	devIdx := int(dev.info.ID) - 1
	rec := &attemptRec{
		id: aid, tasklet: t.ID, device: devIdx, epoch: dev.epoch,
		started: s.eng.now, fuel: t.Fuel, content: s.cfg.Tasks[t.Index].Key,
	}
	s.attempt[aid] = rec
	dev.free--
	dev.backlog++
	s.index.Assign(dev.info.ID)
	s.stats.Attempts++
	s.trace(TraceLaunch, devIdx, t.Index, int(aid), false)

	exec := execTime(t.Fuel, dev.info.Speed)
	total := 2*s.cfg.Latency + exec
	// The dispatch itself consumes serialized broker CPU before the Assign
	// leaves the broker (no-op when the overhead model is off). Batched
	// control plane: only the pass's first launch onto this device pays the
	// frame cost — the rest ride the same AssignBatch.
	frame := true
	if s.batched {
		if dev.lastFramePass == s.passSeq {
			frame = false
		} else {
			dev.lastFramePass = s.passSeq
		}
	}
	total += s.gate(frame)
	s.eng.after(total, func() { s.onComplete(rec, exec) })
}

// gate charges one dispatcher operation — plus one wire frame when frame is
// set — against the broker-CPU model and returns how long the caller must
// wait for its turn. With no cost configured it returns 0 without touching
// any state.
func (s *sim) gate(frame bool) time.Duration {
	cost := s.overhead
	if frame {
		cost += s.frameOverhead
	}
	if cost <= 0 {
		return 0
	}
	start := s.busyUntil
	if start < s.eng.now {
		start = s.eng.now
	}
	s.busyUntil = start + cost
	return s.busyUntil - s.eng.now
}

// resultCost is the per-result dispatcher op cost (the override, else the
// shared op cost).
func (s *sim) resultCost() time.Duration {
	if s.resultOverhead > 0 {
		return s.resultOverhead
	}
	return s.overhead
}

// partFor returns the partition server owning tid's results.
func (s *sim) partFor(tid core.TaskletID) int {
	return int(uint64(tid) % uint64(s.partitions))
}

// resultIdle reports whether tid's result-processing line is idle (the
// batched control plane charges a frame only then; later results fold into
// the batch being drained).
func (s *sim) resultIdle(tid core.TaskletID) bool {
	if s.partitions > 1 {
		return s.partBusy[s.partFor(tid)] <= s.eng.now
	}
	return s.busyUntil <= s.eng.now
}

// gateResult charges one result-processing operation — plus one wire frame
// when frame is set — and returns the wait. With partitions > 1 the cost
// lands on tid's partition server; otherwise on the serialized dispatcher
// line (identical arithmetic to gate, so partitions <= 1 with no result
// override reproduces the legacy model exactly).
func (s *sim) gateResult(tid core.TaskletID, frame bool) time.Duration {
	cost := s.resultCost()
	if frame {
		cost += s.frameOverhead
	}
	if cost <= 0 {
		return 0
	}
	if s.partitions <= 1 {
		start := s.busyUntil
		if start < s.eng.now {
			start = s.eng.now
		}
		s.busyUntil = start + cost
		return s.busyUntil - s.eng.now
	}
	p := s.partFor(tid)
	start := s.partBusy[p]
	if start < s.eng.now {
		start = s.eng.now
	}
	s.partBusy[p] = start + cost
	return s.partBusy[p] - s.eng.now
}

// execTime converts fuel to wall time at the given speed.
func execTime(fuel uint64, mopsPerSec float64) time.Duration {
	if mopsPerSec <= 0 {
		mopsPerSec = 0.001
	}
	return time.Duration(float64(fuel) / (mopsPerSec * 1e6) * float64(time.Second))
}

// onComplete fires when an attempt's result would arrive at the broker.
// Result processing consumes serialized broker CPU: under the overhead
// model the booking is deferred until the dispatcher frees up, otherwise it
// runs inline (no extra event, keeping plain Run bit-identical).
func (s *sim) onComplete(rec *attemptRec, exec time.Duration) {
	if rec.finished || s.devices[rec.device].epoch != rec.epoch {
		return // device died mid-execution; loss handled by detection
	}
	// Batched control plane: a result arriving while its processing line is
	// busy folds into the AttemptResultBatch already being drained, so only
	// a result that finds the line idle pays its own frame.
	frame := !s.batched || s.resultIdle(rec.tasklet)
	if d := s.gateResult(rec.tasklet, frame); d > 0 {
		s.eng.after(d, func() { s.completeReady(rec, exec) })
		return
	}
	s.completeReady(rec, exec)
}

func (s *sim) completeReady(rec *attemptRec, exec time.Duration) {
	dev := s.devices[rec.device]
	if rec.finished || dev.epoch != rec.epoch {
		return // device died while the result sat in the dispatcher queue
	}
	rec.finished = true
	delete(s.attempt, rec.id)
	dev.free++
	dev.backlog--
	s.index.Complete(dev.info.ID)
	dev.busy += exec
	dev.done++
	s.stats.DeviceExecuted[rec.device] = dev.done
	s.trace(TraceComplete, rec.device, int(rec.tasklet)-1, int(rec.id), false)

	canon := int64(rec.tasklet)
	if rec.content != 0 {
		canon = int64(rec.content) // keyed content: result depends on content only
	}
	ret := tvm.Int(canon) // canonical "correct" result
	if dev.spec.Faulty {
		ret = tvm.Int(int64(-1000 - rec.device)) // corrupted, device-specific
	}
	disp, fx := s.life.Result(core.Result{
		Attempt: rec.id, Tasklet: rec.tasklet, Provider: dev.info.ID,
		Status: core.StatusOK, Return: ret,
		FuelUsed: rec.fuel, Exec: exec,
	})
	if disp == lifecycle.ResultConsumed {
		s.apply(fx)
	} else {
		s.stats.WastedAttempts++
	}
	s.schedule()
}

// scheduleFailure arms the next failure of device i.
func (s *sim) scheduleFailure(i int) {
	dev := s.devices[i]
	wait := s.eng.exponential(dev.spec.MTBF)
	s.eng.after(wait, func() { s.onFail(i) })
}

func (s *sim) onFail(i int) {
	dev := s.devices[i]
	if !dev.up {
		return
	}
	dev.up = false
	dev.epoch++
	dev.free = 0
	dev.backlog = 0
	s.index.Upsert(&dev.info, 0, 0) // parked: zero capacity, stays indexed
	s.trace(TraceDeviceFail, i, 0, 0, false)

	// The broker discovers the loss after the detection delay and feeds
	// losses to the lifecycle engine.
	var lost []*attemptRec
	for _, rec := range s.attempt {
		if rec.device == i && !rec.finished {
			lost = append(lost, rec)
		}
	}
	s.eng.after(s.cfg.DetectDelay, func() {
		for _, rec := range lost {
			if rec.finished {
				continue
			}
			rec.finished = true
			delete(s.attempt, rec.id)
			s.stats.LostAttempts++
			s.trace(TraceLost, rec.device, int(rec.tasklet)-1, int(rec.id), false)
			_, fx := s.life.Result(core.Result{
				Attempt: rec.id, Tasklet: rec.tasklet,
				Provider: dev.info.ID, Status: core.StatusLost,
			})
			s.apply(fx)
		}
		s.schedule()
	})

	// Recovery.
	mttr := dev.spec.MTTR
	if mttr <= 0 {
		mttr = time.Minute
	}
	s.eng.after(s.eng.exponential(mttr), func() { s.onRecover(i) })
}

func (s *sim) onRecover(i int) {
	dev := s.devices[i]
	if dev.up {
		return
	}
	dev.up = true
	dev.free = dev.spec.Slots
	dev.backlog = 0
	s.index.Upsert(&dev.info, dev.free, 0)
	s.trace(TraceDeviceRecover, i, 0, 0, false)
	s.scheduleFailure(i)
	s.schedule()
}
