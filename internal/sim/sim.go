package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/qoc"
	"repro/internal/scheduler"
	"repro/internal/tvm"
)

// DeviceSpec describes one simulated provider.
type DeviceSpec struct {
	Class core.DeviceClass
	// Slots is the number of concurrent executions (cores donated).
	Slots int
	// Speed is the device's execution speed in TVM mega-ops/second. Zero
	// derives it from the class: desktop-class 100 Mops/s scaled by
	// core.ClassSpeedFactor.
	Speed float64
	// MTBF/MTTR parameterize exponential churn; zero MTBF means the device
	// never fails.
	MTBF time.Duration
	MTTR time.Duration
	// Faulty devices return corrupted results (their device index instead
	// of the true value) — the adversary QoC voting defends against.
	Faulty bool
}

// speed returns the effective Mops/s.
func (d DeviceSpec) speed() float64 {
	if d.Speed > 0 {
		return d.Speed
	}
	return 100 * core.ClassSpeedFactor(d.Class)
}

// TaskSpec describes one tasklet in the simulated workload.
type TaskSpec struct {
	// Fuel is the tasklet's work in VM operations.
	Fuel uint64
	// Arrival is when the consumer submits it.
	Arrival time.Duration
	QoC     core.QoC
	// Key is the tasklet's content identity: tasklets with the same nonzero
	// Key model submissions of identical (program, seed, params) content and
	// are eligible for result memoization and coalescing. Zero means unique
	// content (never memoized). A correct execution of a keyed tasklet
	// returns Int(Key), so repeats are bit-identical, as purity guarantees.
	Key uint64
}

// Config is a complete simulation scenario.
type Config struct {
	Devices []DeviceSpec
	Tasks   []TaskSpec
	// Policy is the placement policy; nil selects work_steal.
	Policy scheduler.Policy
	// Latency is the one-way broker<->provider message delay.
	Latency time.Duration
	// DetectDelay is how long after a device fails the broker notices
	// (heartbeat timeout). Zero selects 2s.
	DetectDelay time.Duration
	Seed        uint64
	// MaxTime aborts runaway scenarios. Zero selects 24h of virtual time.
	MaxTime time.Duration
	// Trace records a per-event timeline into Stats.Trace (see trace.go).
	Trace bool
	// MemoEntries, MemoBytes and MemoTTL bound the simulated broker's result
	// memo, mirroring broker.Options: zero selects the memo package defaults,
	// any negative value disables memoization and coalescing. TTL expiry runs
	// on the simulator's virtual clock.
	MemoEntries int
	MemoBytes   int
	MemoTTL     time.Duration
	// NoIndex disables the incremental scheduler index and forces the
	// legacy full-scan placement path, mirroring broker.Options.NoIndex.
	// Device choices are identical either way (pinned by the differential
	// tests); exists for the E10 ablation.
	NoIndex bool
}

// Stats is the outcome of a simulation run.
type Stats struct {
	// Makespan is the virtual time from first arrival to last completion.
	Makespan time.Duration
	// Completed and Failed count tasklets by final status.
	Completed int
	Failed    int
	// Attempts counts executions launched; LostAttempts those that died
	// with their device; WastedAttempts completed-but-redundant ones.
	Attempts       int
	LostAttempts   int
	WastedAttempts int
	// CacheHits counts tasklets served from the result memo without any
	// attempt; Coalesced counts tasklets that joined an identical in-flight
	// tasklet's fan-out instead of scheduling their own.
	CacheHits int
	Coalesced int
	// Latency is the per-tasklet submission-to-final-result distribution
	// (milliseconds of virtual time).
	Latency metrics.Summary
	// QueueDelay is the per-attempt placement delay distribution (ms).
	QueueDelay metrics.Summary
	// BusyTime is each device's cumulative execution time.
	BusyTime []time.Duration
	// DeviceExecuted counts attempts finished per device.
	DeviceExecuted []int
	// Trace is the event timeline, recorded only when Config.Trace is set.
	Trace []TraceEvent
	// Finals records every tasklet's final result, indexed like Config.Tasks.
	// The memo differential tests assert these are bit-identical with
	// memoization on and off.
	Finals []core.Result
}

// Utilization returns mean device busy fraction over the makespan.
func (s *Stats) Utilization(devices []DeviceSpec) float64 {
	if s.Makespan <= 0 || len(devices) == 0 {
		return 0
	}
	var frac float64
	for i, bt := range s.BusyTime {
		slots := devices[i].Slots
		if slots <= 0 {
			slots = 1
		}
		frac += float64(bt) / float64(s.Makespan) / float64(slots)
	}
	return frac / float64(len(s.BusyTime))
}

// attemptRec is one in-flight simulated execution.
type attemptRec struct {
	id       core.AttemptID
	tasklet  core.TaskletID
	device   int
	epoch    int // device incarnation at launch; stale completions are void
	started  time.Duration
	fuel     uint64
	content  uint64 // TaskSpec.Key; decides the canonical result value
	finished bool
}

// deviceState is the runtime state of one simulated device.
type deviceState struct {
	spec    DeviceSpec
	info    core.ProviderInfo
	up      bool
	epoch   int
	free    int
	backlog int
	busy    time.Duration
	done    int
}

// flightRole is a tasklet's position in a coalesced flight.
type flightRole uint8

const (
	flightNone   flightRole = iota
	flightLeader            // drives the real QoC attempt fan-out
	flightWaiter            // receives a copy of the leader's final
)

// taskState tracks one tasklet through the QoC engine.
type taskState struct {
	t       core.Tasklet
	tracker *qoc.Tracker
	arrived time.Duration
	queued  int // pending placement entries
	content uint64
	coKey   memo.FlightKey
	role    flightRole
}

// sim is the running world.
type sim struct {
	cfg     Config
	eng     *engine
	devices []*deviceState
	tasks   map[core.TaskletID]*taskState
	attempt map[core.AttemptID]*attemptRec
	pending []pendingEntry
	memo    *memo.Cache       // nil when disabled
	flights *memo.FlightTable // nil when disabled

	// index is the incremental placement index; nil when Config.NoIndex is
	// set or the policy has no indexed form (legacy scan runs instead).
	// Down devices stay indexed with zero capacity rather than removed, so
	// recovery is an O(log P) weight flip, not a re-insertion.
	index *scheduler.Index
	// excl and cands are placement scratch buffers reused across picks.
	excl  []core.ProviderID
	cands []scheduler.Candidate

	nextAttempt core.AttemptID
	stats       Stats
	latency     metrics.Histogram
	queueDelay  metrics.Histogram
	lastDone    time.Duration
	firstArr    time.Duration
	remaining   int
}

type pendingEntry struct {
	tasklet core.TaskletID
	since   time.Duration
}

// Run executes the scenario and returns its statistics.
func Run(cfg Config) (*Stats, error) {
	if len(cfg.Devices) == 0 {
		return nil, errors.New("sim: no devices")
	}
	if len(cfg.Tasks) == 0 {
		return nil, errors.New("sim: no tasks")
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.NewWorkSteal()
	}
	if cfg.DetectDelay <= 0 {
		cfg.DetectDelay = 2 * time.Second
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = 24 * time.Hour
	}

	s := &sim{
		cfg:     cfg,
		eng:     newEngine(cfg.Seed),
		tasks:   map[core.TaskletID]*taskState{},
		attempt: map[core.AttemptID]*attemptRec{},
	}
	if cfg.MemoEntries >= 0 && cfg.MemoBytes >= 0 && cfg.MemoTTL >= 0 {
		epoch := time.Unix(0, 0)
		s.memo = memo.New(memo.Config{
			MaxEntries: cfg.MemoEntries,
			MaxBytes:   cfg.MemoBytes,
			TTL:        cfg.MemoTTL,
			// TTL expiry must happen in virtual time, not wall time.
			Clock: func() time.Time { return epoch.Add(s.eng.now) },
		})
		s.flights = memo.NewFlightTable(nil, "")
	}

	for i, spec := range cfg.Devices {
		if spec.Slots <= 0 {
			spec.Slots = 1
		}
		d := &deviceState{
			spec: spec,
			info: core.ProviderInfo{
				ID:          core.ProviderID(i + 1),
				Class:       spec.Class,
				Slots:       spec.Slots,
				Speed:       spec.speed(),
				Reliability: 1,
			},
			up:   true,
			free: spec.Slots,
		}
		s.devices = append(s.devices, d)
		if spec.MTBF > 0 {
			s.scheduleFailure(i)
		}
	}
	if !cfg.NoIndex {
		if ix, err := scheduler.NewIndexFor(cfg.Policy); err == nil {
			s.index = ix
			for _, d := range s.devices {
				s.index.Upsert(&d.info, d.free, 0)
			}
		}
	}
	s.stats.BusyTime = make([]time.Duration, len(s.devices))
	s.stats.DeviceExecuted = make([]int, len(s.devices))
	s.stats.Finals = make([]core.Result, len(cfg.Tasks))

	s.firstArr = time.Duration(-1)
	s.remaining = len(cfg.Tasks)
	for i, tspec := range cfg.Tasks {
		id := core.TaskletID(i + 1)
		fuel := tspec.Fuel
		if fuel == 0 {
			fuel = 1_000_000
		}
		t := core.Tasklet{ID: id, Job: 1, Index: i, Fuel: fuel, QoC: tspec.QoC}
		ts := &taskState{t: t, arrived: tspec.Arrival, content: tspec.Key}
		ts.tracker = qoc.NewTracker(&ts.t)
		s.tasks[id] = ts
		if s.firstArr < 0 || tspec.Arrival < s.firstArr {
			s.firstArr = tspec.Arrival
		}
		arrival := tspec.Arrival
		s.eng.at(arrival, func() { s.onArrival(ts) })
	}

	// Drive events until every tasklet is final. Churn events reschedule
	// themselves forever, so "queue empty" is not the termination
	// condition — "no tasklets remaining" is.
	for s.remaining > 0 {
		if len(s.eng.heap) > 0 && s.eng.heap[0].at > cfg.MaxTime {
			return nil, fmt.Errorf("sim: exceeded max virtual time %v with %d tasklets unfinished",
				cfg.MaxTime, s.remaining)
		}
		if !s.eng.step() {
			return nil, fmt.Errorf("sim: event queue drained with %d tasklets unfinished (fleet dead?)", s.remaining)
		}
	}

	s.stats.Makespan = s.lastDone - s.firstArr
	s.stats.Latency = s.latency.Snapshot()
	s.stats.QueueDelay = s.queueDelay.Snapshot()
	for i, d := range s.devices {
		s.stats.BusyTime[i] = d.busy
		s.stats.DeviceExecuted[i] = d.done
	}
	return &s.stats, nil
}

// ---------- world mechanics ----------

func (s *sim) onArrival(ts *taskState) {
	s.trace(TraceArrival, -1, ts.t.Index, 0, false)
	goal := ts.tracker.Goal()
	if goal.Deadline > 0 {
		id := ts.t.ID
		s.eng.after(goal.Deadline, func() { s.onDeadline(id) })
	}
	// Memo tier, mirroring the live broker's acceptJob: a finalized result
	// for identical content is served without any attempt; otherwise an
	// identical in-flight tasklet absorbs this one as a waiter.
	if s.memo != nil && ts.content != 0 && !goal.NoCache {
		key, _ := memo.KeyFor(ts.content, s.cfg.Seed, nil)
		if e := s.memo.Get(key, goal.VoteStrength(), ts.t.Fuel); e != nil {
			s.stats.CacheHits++
			ret, _ := e.CachedResult()
			s.finalize(ts, core.Result{
				Tasklet: ts.t.ID, Status: core.StatusOK, Return: ret,
				FuelUsed: e.FuelUsed, Exec: e.Exec,
			})
			return
		}
		ts.coKey = memo.FlightKey{
			Content: key, Mode: uint8(goal.Mode),
			Replicas: goal.Replicas, Fuel: ts.t.Fuel,
		}
		if !s.flights.Join(ts.coKey, uint64(ts.t.ID)) {
			ts.role = flightWaiter
			s.stats.Coalesced++
			return // the leader's finalization fans out to us
		}
		ts.role = flightLeader
	}
	d := ts.tracker.Start()
	for i := 0; i < d.Launch; i++ {
		s.pending = append(s.pending, pendingEntry{tasklet: ts.t.ID, since: s.eng.now})
		ts.queued++
	}
	s.schedule()
}

func (s *sim) onDeadline(id core.TaskletID) {
	ts := s.tasks[id]
	if ts == nil || ts.tracker.Done() {
		return
	}
	s.finalize(ts, core.Result{
		Tasklet: id, Status: core.StatusFault, FaultMsg: "deadline exceeded",
	})
}

// schedule walks the placement queue like the live broker: the indexed
// batch pass by default, the legacy full-scan pass under Config.NoIndex.
func (s *sim) schedule() {
	if len(s.pending) == 0 {
		return
	}
	if s.index != nil {
		s.scheduleIndexed()
	} else {
		s.scheduleLegacy()
	}
}

// scheduleIndexed feeds the queue through the incremental index; launch's
// Assign hook re-ranks the chosen device before the next pick.
func (s *sim) scheduleIndexed() {
	remaining := s.pending[:0]
	for idx, pe := range s.pending {
		if s.index.FreeSlots() <= 0 {
			remaining = append(remaining, s.pending[idx:]...)
			break
		}
		ts := s.tasks[pe.tasklet]
		if ts == nil || ts.tracker.Done() {
			continue
		}
		s.excl = ts.tracker.AppendActiveProviders(s.excl[:0])
		pid, ok := s.index.Pick(&ts.t, s.excl)
		if !ok {
			remaining = append(remaining, pe)
			continue
		}
		dev := s.devices[int(pid)-1]
		if !dev.up || dev.free <= 0 {
			remaining = append(remaining, pe)
			continue
		}
		s.queueDelay.Observe(float64(s.eng.now-pe.since) / 1e6)
		s.launch(ts, dev)
	}
	s.pending = remaining
}

// scheduleLegacy rebuilds the candidate view for every pick (free/backlog
// change as attempts launch). Kept for the E10 ablation and for policies
// without an indexed form.
func (s *sim) scheduleLegacy() {
	totalFree := 0
	for _, d := range s.devices {
		if d.up {
			totalFree += d.free
		}
	}
	remaining := s.pending[:0]
	for idx, pe := range s.pending {
		if totalFree <= 0 {
			remaining = append(remaining, s.pending[idx:]...)
			break
		}
		ts := s.tasks[pe.tasklet]
		if ts == nil || ts.tracker.Done() {
			continue
		}
		cands := s.cands[:0]
		for _, d := range s.devices {
			if !d.up {
				continue
			}
			cands = append(cands, scheduler.Candidate{
				Info: &d.info, FreeSlots: d.free, Backlog: d.backlog,
			})
		}
		s.cands = cands
		s.excl = ts.tracker.AppendActiveProviders(s.excl[:0])
		req := scheduler.Request{Tasklet: &ts.t, ExcludeIDs: s.excl}
		pid, ok := s.cfg.Policy.Pick(req, cands)
		if !ok {
			remaining = append(remaining, pe)
			continue
		}
		dev := s.devices[int(pid)-1]
		if !dev.up || dev.free <= 0 {
			remaining = append(remaining, pe)
			continue
		}
		s.queueDelay.Observe(float64(s.eng.now-pe.since) / 1e6)
		s.launch(ts, dev)
		totalFree--
	}
	s.pending = remaining
}

// launch starts one attempt on dev; completion is scheduled after the
// network latency plus the device-speed-scaled execution time.
func (s *sim) launch(ts *taskState, dev *deviceState) {
	s.nextAttempt++
	aid := s.nextAttempt
	devIdx := int(dev.info.ID) - 1
	rec := &attemptRec{
		id: aid, tasklet: ts.t.ID, device: devIdx, epoch: dev.epoch,
		started: s.eng.now, fuel: ts.t.Fuel, content: ts.content,
	}
	s.attempt[aid] = rec
	dev.free--
	dev.backlog++
	s.index.Assign(dev.info.ID)
	ts.tracker.OnLaunched(aid, dev.info.ID)
	s.stats.Attempts++
	s.trace(TraceLaunch, devIdx, ts.t.Index, int(aid), false)

	exec := execTime(ts.t.Fuel, dev.info.Speed)
	total := 2*s.cfg.Latency + exec
	s.eng.after(total, func() { s.onComplete(rec, exec) })
}

// execTime converts fuel to wall time at the given speed.
func execTime(fuel uint64, mopsPerSec float64) time.Duration {
	if mopsPerSec <= 0 {
		mopsPerSec = 0.001
	}
	return time.Duration(float64(fuel) / (mopsPerSec * 1e6) * float64(time.Second))
}

// onComplete fires when an attempt's result would arrive at the broker.
func (s *sim) onComplete(rec *attemptRec, exec time.Duration) {
	dev := s.devices[rec.device]
	if rec.finished || dev.epoch != rec.epoch {
		return // device died mid-execution; loss handled by detection
	}
	rec.finished = true
	delete(s.attempt, rec.id)
	dev.free++
	dev.backlog--
	s.index.Complete(dev.info.ID)
	dev.busy += exec
	dev.done++
	s.stats.DeviceExecuted[rec.device] = dev.done
	s.trace(TraceComplete, rec.device, int(rec.tasklet)-1, int(rec.id), false)

	ts := s.tasks[rec.tasklet]
	if ts == nil || ts.tracker.Done() {
		s.stats.WastedAttempts++
		s.schedule()
		return
	}

	canon := int64(rec.tasklet)
	if rec.content != 0 {
		canon = int64(rec.content) // keyed content: result depends on content only
	}
	ret := tvm.Int(canon) // canonical "correct" result
	if dev.spec.Faulty {
		ret = tvm.Int(int64(-1000 - rec.device)) // corrupted, device-specific
	}
	res := core.Result{
		Attempt: rec.id, Tasklet: rec.tasklet, Provider: dev.info.ID,
		Status: core.StatusOK, Return: ret,
		FuelUsed: rec.fuel, Exec: exec,
	}
	d := ts.tracker.OnResult(res)
	s.applyDecision(ts, d)
	s.schedule()
}

// scheduleFailure arms the next failure of device i.
func (s *sim) scheduleFailure(i int) {
	dev := s.devices[i]
	wait := s.eng.exponential(dev.spec.MTBF)
	s.eng.after(wait, func() { s.onFail(i) })
}

func (s *sim) onFail(i int) {
	dev := s.devices[i]
	if !dev.up {
		return
	}
	dev.up = false
	dev.epoch++
	dev.free = 0
	dev.backlog = 0
	s.index.Upsert(&dev.info, 0, 0) // parked: zero capacity, stays indexed
	s.trace(TraceDeviceFail, i, 0, 0, false)

	// The broker discovers the loss after the detection delay and feeds
	// losses to the trackers.
	var lost []*attemptRec
	for _, rec := range s.attempt {
		if rec.device == i && !rec.finished {
			lost = append(lost, rec)
		}
	}
	s.eng.after(s.cfg.DetectDelay, func() {
		for _, rec := range lost {
			if rec.finished {
				continue
			}
			rec.finished = true
			delete(s.attempt, rec.id)
			s.stats.LostAttempts++
			s.trace(TraceLost, rec.device, int(rec.tasklet)-1, int(rec.id), false)
			ts := s.tasks[rec.tasklet]
			if ts == nil || ts.tracker.Done() {
				continue
			}
			d := ts.tracker.OnResult(core.Result{
				Attempt: rec.id, Tasklet: rec.tasklet,
				Provider: dev.info.ID, Status: core.StatusLost,
			})
			s.applyDecision(ts, d)
		}
		s.schedule()
	})

	// Recovery.
	mttr := dev.spec.MTTR
	if mttr <= 0 {
		mttr = time.Minute
	}
	s.eng.after(s.eng.exponential(mttr), func() { s.onRecover(i) })
}

func (s *sim) onRecover(i int) {
	dev := s.devices[i]
	if dev.up {
		return
	}
	dev.up = true
	dev.free = dev.spec.Slots
	dev.backlog = 0
	s.index.Upsert(&dev.info, dev.free, 0)
	s.trace(TraceDeviceRecover, i, 0, 0, false)
	s.scheduleFailure(i)
	s.schedule()
}

// applyDecision mirrors the live broker's reaction to QoC decisions.
func (s *sim) applyDecision(ts *taskState, d qoc.Decision) {
	for i := 0; i < d.Launch; i++ {
		s.pending = append(s.pending, pendingEntry{tasklet: ts.t.ID, since: s.eng.now})
	}
	// Cancelled attempts: in simulation the redundant executions simply
	// run to completion and are counted as wasted (conservative for the
	// overhead measurements).
	if d.Done {
		s.finalize(ts, d.Final)
	}
}

// finalize records a tasklet's final state and settles its flight, if any:
// a finalized leader stores the result (only if QoC-cacheable) and fans it
// out to every waiter, or — on a non-OK final — dissolves the flight so each
// waiter schedules independently; a finalized waiter just leaves its flight.
func (s *sim) finalize(ts *taskState, final core.Result) {
	if ts.tracker.Done() && final.Tasklet == 0 {
		return
	}
	role, fk := ts.role, ts.coKey
	ts.role = flightNone
	cacheable := ts.tracker.FinalCacheable()
	strength := ts.tracker.Goal().VoteStrength()
	delete(s.tasks, ts.t.ID)
	s.remaining--
	s.stats.Finals[ts.t.Index] = final
	s.trace(TraceFinal, -1, ts.t.Index, 0, final.OK())
	if final.OK() {
		s.stats.Completed++
	} else {
		s.stats.Failed++
	}
	s.latency.Observe(float64(s.eng.now-ts.arrived) / 1e6)
	if s.eng.now > s.lastDone {
		s.lastDone = s.eng.now
	}

	switch role {
	case flightWaiter:
		s.flights.DropWaiter(fk, uint64(ts.t.ID))
	case flightLeader:
		if final.OK() {
			if cacheable {
				s.memo.Put(fk.Content, final.Return, nil, final.FuelUsed, final.Exec, strength)
			}
			for _, wid := range s.flights.Complete(fk) {
				wts := s.tasks[core.TaskletID(wid)]
				if wts == nil {
					continue
				}
				wts.role = flightNone
				s.finalize(wts, core.Result{
					Tasklet: wts.t.ID, Provider: final.Provider,
					Status: core.StatusOK, Return: final.Return.Clone(),
					FuelUsed: final.FuelUsed, Exec: final.Exec,
				})
			}
		} else {
			// The coalesced execution failed; waiters fall back to real
			// scheduling rather than inheriting the failure.
			for _, wid := range s.flights.Complete(fk) {
				wts := s.tasks[core.TaskletID(wid)]
				if wts == nil {
					continue
				}
				wts.role = flightNone
				s.applyDecision(wts, wts.tracker.Start())
			}
			s.schedule()
		}
	}
}
