package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tvm"
)

// keyedTasks builds n tasklets whose content keys cycle through keys,
// arriving every gap.
func keyedTasks(n int, fuel uint64, keys []uint64, gap time.Duration, q core.QoC) []TaskSpec {
	tasks := make([]TaskSpec, n)
	for i := range tasks {
		tasks[i] = TaskSpec{
			Fuel:    fuel,
			Key:     keys[i%len(keys)],
			Arrival: time.Duration(i) * gap,
			QoC:     q,
		}
	}
	return tasks
}

func TestSimMemoServesRepeats(t *testing.T) {
	// 10 tasklets over 2 distinct contents, spaced so each finishes before
	// the next arrives: 2 real executions, 8 cache hits.
	stats, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   keyedTasks(10, 10_000_000, []uint64{41, 42}, time.Second, core.QoC{}),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 10 {
		t.Fatalf("completed = %d", stats.Completed)
	}
	if stats.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one per distinct content)", stats.Attempts)
	}
	if stats.CacheHits != 8 {
		t.Fatalf("cache hits = %d, want 8", stats.CacheHits)
	}
	for i, f := range stats.Finals {
		want := tvm.Int(int64([]uint64{41, 42}[i%2]))
		if !f.Return.Equal(want) {
			t.Fatalf("final %d = %s, want %s", i, f.Return, want)
		}
	}
}

func TestSimMemoCoalescesConcurrentIdentical(t *testing.T) {
	// 8 identical tasklets all arriving at t=0 on a single slot: one real
	// attempt, 7 coalesced waiters, everyone served.
	stats, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   keyedTasks(8, 100_000_000, []uint64{9}, 0, core.QoC{}),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 8 {
		t.Fatalf("completed = %d", stats.Completed)
	}
	if stats.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (coalesced)", stats.Attempts)
	}
	if stats.Coalesced != 7 {
		t.Fatalf("coalesced = %d, want 7", stats.Coalesced)
	}
	for i, f := range stats.Finals {
		if !f.OK() || !f.Return.Equal(tvm.Int(9)) {
			t.Fatalf("final %d = %+v", i, f)
		}
	}
}

func TestSimMemoCoalescingRespectsVotingReplicas(t *testing.T) {
	// Coalescing must not reduce the QoC-required attempt count: 6 identical
	// voting(3) tasklets run exactly 3 attempts, not 18 and not 1.
	stats, err := Run(Config{
		Devices: homogeneous(3, 1, 100),
		Tasks: keyedTasks(6, 50_000_000, []uint64{5}, 0,
			core.QoC{Mode: core.QoCVoting, Replicas: 3}),
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 6 {
		t.Fatalf("completed = %d", stats.Completed)
	}
	if stats.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (one voting fan-out)", stats.Attempts)
	}
	if stats.Coalesced != 5 {
		t.Fatalf("coalesced = %d, want 5", stats.Coalesced)
	}
}

func TestSimMemoDisabled(t *testing.T) {
	stats, err := Run(Config{
		Devices:     homogeneous(1, 1, 100),
		Tasks:       keyedTasks(6, 10_000_000, []uint64{3}, time.Second, core.QoC{}),
		Seed:        1,
		MemoEntries: -1, MemoBytes: -1, MemoTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 6 {
		t.Fatalf("attempts = %d, want 6 with memo disabled", stats.Attempts)
	}
	if stats.CacheHits != 0 || stats.Coalesced != 0 {
		t.Fatalf("hits/coalesced = %d/%d with memo disabled", stats.CacheHits, stats.Coalesced)
	}
}

func TestSimMemoNoCacheOptOut(t *testing.T) {
	stats, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   keyedTasks(4, 10_000_000, []uint64{3}, time.Second, core.QoC{NoCache: true}),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4 under NoCache", stats.Attempts)
	}
	if stats.CacheHits != 0 || stats.Coalesced != 0 {
		t.Fatalf("hits/coalesced = %d/%d under NoCache", stats.CacheHits, stats.Coalesced)
	}
}

func TestSimMemoTTLExpiresOnVirtualClock(t *testing.T) {
	// TTL 1s of *virtual* time: a repeat 5s later misses and re-executes, a
	// repeat 400ms after that hits the refreshed entry.
	tasks := []TaskSpec{
		{Fuel: 10_000_000, Key: 7, Arrival: 0},
		{Fuel: 10_000_000, Key: 7, Arrival: 5 * time.Second},
		{Fuel: 10_000_000, Key: 7, Arrival: 5*time.Second + 500*time.Millisecond},
	}
	stats, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   tasks,
		Seed:    1,
		MemoTTL: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (TTL forces one re-execution)", stats.Attempts)
	}
	if stats.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", stats.CacheHits)
	}
}

func TestSimMemoStrengthGate(t *testing.T) {
	// A best-effort final must not satisfy a later voting request; the
	// voting final upgrades the entry and then serves best-effort repeats.
	tasks := []TaskSpec{
		{Fuel: 10_000_000, Key: 5, Arrival: 0},
		{Fuel: 10_000_000, Key: 5, Arrival: time.Second,
			QoC: core.QoC{Mode: core.QoCVoting, Replicas: 3}},
		{Fuel: 10_000_000, Key: 5, Arrival: 2 * time.Second},
	}
	stats, err := Run(Config{
		Devices: homogeneous(3, 1, 100),
		Tasks:   tasks,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (1 best-effort + 3 voting)", stats.Attempts)
	}
	if stats.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1 (only the final best-effort repeat)", stats.CacheHits)
	}
}

// diffConfig builds the differential scenario: a fleet with a faulty
// minority, voting QoC, and heavily repeated content keys.
func diffConfig(memoOn bool) Config {
	keys := []uint64{11, 12, 11, 13, 11, 12, 14, 11}
	cfg := Config{
		Devices: []DeviceSpec{
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2, Faulty: true},
		},
		Tasks: keyedTasks(64, 20_000_000, keys, 100*time.Millisecond,
			core.QoC{Mode: core.QoCVoting, Replicas: 3}),
		Seed: 17,
	}
	if !memoOn {
		cfg.MemoEntries, cfg.MemoBytes, cfg.MemoTTL = -1, -1, -1
	}
	return cfg
}

func TestSimMemoDifferentialVotingFaulty(t *testing.T) {
	// The acceptance differential: with a faulty provider under voting QoC,
	// every tasklet's final result is bit-identical with the memo on and
	// off — the cache can only ever serve what voting already certified.
	on, err := Run(diffConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(diffConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if on.Completed != 64 || off.Completed != 64 {
		t.Fatalf("completed on/off = %d/%d", on.Completed, off.Completed)
	}
	for i := range on.Finals {
		a, b := on.Finals[i], off.Finals[i]
		if a.Status != b.Status || !a.Return.Equal(b.Return) || a.FuelUsed != b.FuelUsed {
			t.Fatalf("final %d diverged:\nmemo on:  %+v\nmemo off: %+v", i, a, b)
		}
	}
	if on.CacheHits+on.Coalesced == 0 {
		t.Fatal("memo run neither hit nor coalesced; scenario exercises nothing")
	}
	if on.Attempts >= off.Attempts {
		t.Fatalf("memo saved no attempts: on=%d off=%d", on.Attempts, off.Attempts)
	}
}

func TestSimMemoDifferentialMixedModes(t *testing.T) {
	// Honest fleet, all three QoC modes interleaved over shared content.
	build := func(memoOn bool) Config {
		modes := []core.QoC{
			{},
			{Mode: core.QoCRedundant, Replicas: 2},
			{Mode: core.QoCVoting, Replicas: 3},
		}
		keys := []uint64{21, 22, 23, 21, 22}
		tasks := make([]TaskSpec, 60)
		for i := range tasks {
			tasks[i] = TaskSpec{
				Fuel:    10_000_000,
				Key:     keys[i%len(keys)],
				QoC:     modes[i%len(modes)],
				Arrival: time.Duration(i) * 50 * time.Millisecond,
			}
		}
		cfg := Config{Devices: homogeneous(4, 2, 100), Tasks: tasks, Seed: 9}
		if !memoOn {
			cfg.MemoEntries, cfg.MemoBytes, cfg.MemoTTL = -1, -1, -1
		}
		return cfg
	}
	on, err := Run(build(true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(build(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range on.Finals {
		a, b := on.Finals[i], off.Finals[i]
		if a.Status != b.Status || !a.Return.Equal(b.Return) || a.FuelUsed != b.FuelUsed {
			t.Fatalf("final %d diverged:\nmemo on:  %+v\nmemo off: %+v", i, a, b)
		}
	}
	if on.CacheHits == 0 {
		t.Fatal("mixed-mode run produced no cache hits")
	}
}
