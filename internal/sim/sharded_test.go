package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// diffConfigs are scenarios exercising every mechanism the sharded world
// transcribes: heterogeneous fleets, memoization/coalescing, voting QoC,
// deadlines, churn, retries.
func diffConfigs() map[string]Config {
	mixed := []DeviceSpec{
		{Class: core.ClassServer, Slots: 4},
		{Class: core.ClassDesktop, Slots: 2},
		{Class: core.ClassLaptop, Slots: 2},
		{Class: core.ClassMobile, Slots: 1},
		{Class: core.ClassDesktop, Slots: 2},
		{Class: core.ClassServer, Slots: 3},
	}
	tasks := func(n int, f func(i int) TaskSpec) []TaskSpec {
		ts := make([]TaskSpec, n)
		for i := range ts {
			ts[i] = f(i)
		}
		return ts
	}
	return map[string]Config{
		"plain": {
			Devices: mixed,
			Tasks: tasks(120, func(i int) TaskSpec {
				return TaskSpec{Fuel: 300_000, Arrival: time.Duration(i) * time.Millisecond}
			}),
			Latency: 2 * time.Millisecond,
			Seed:    7,
		},
		"memo_voting": {
			Devices: mixed,
			Tasks: tasks(150, func(i int) TaskSpec {
				ts := TaskSpec{Fuel: 200_000, Arrival: time.Duration(i/3) * time.Millisecond}
				ts.Key = uint64(i%10 + 1) // heavy key repetition: memo + coalescing
				if i%4 == 0 {
					ts.QoC = core.QoC{Mode: core.QoCVoting, Replicas: 3}
				}
				return ts
			}),
			Latency: time.Millisecond,
			Seed:    11,
		},
		"churn_deadline": {
			Devices: []DeviceSpec{
				{Class: core.ClassServer, Slots: 4, MTBF: 3 * time.Second, MTTR: 500 * time.Millisecond},
				{Class: core.ClassDesktop, Slots: 2},
				{Class: core.ClassLaptop, Slots: 2, MTBF: 2 * time.Second, MTTR: 300 * time.Millisecond},
				{Class: core.ClassDesktop, Slots: 2},
			},
			Tasks: tasks(100, func(i int) TaskSpec {
				ts := TaskSpec{Fuel: 500_000, Arrival: time.Duration(i*2) * time.Millisecond}
				if i%5 == 0 {
					ts.QoC = core.QoC{Deadline: 4 * time.Second, MaxRetries: 2}
				}
				return ts
			}),
			Latency:      time.Millisecond,
			DetectDelay:  200 * time.Millisecond,
			Seed:         23,
			MaxAttempts:  8,
			RetryBackoff: 5 * time.Millisecond,
		},
	}
}

// TestShardedSingleMatchesUnsharded is the differential acceptance test: a
// 1-shard cluster must be event-identical to the unsharded simulator —
// same finals, same attempt counts, same makespan, same traces.
func TestShardedSingleMatchesUnsharded(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.Trace = true
			want, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSharded(ShardedConfig{Base: cfg, Shards: 1, Exchange: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*want, got.Stats) {
				t.Errorf("1-shard cluster diverged from unsharded run:\nunsharded: %+v\n  sharded: %+v", *want, got.Stats)
			}
			if got.Migrated != 0 || got.MigrateRequests != 0 {
				t.Errorf("single-shard run migrated %d (%d requests)", got.Migrated, got.MigrateRequests)
			}
		})
	}
}

// shardScaleConfig builds a broker-bound scenario: device capacity far
// exceeds what one dispatcher can push, so throughput should track shard
// count. Load is weak-scaled (tasks ∝ shards) to keep makespans comparable.
func shardScaleConfig(shards int, tasksPerShard int, program func(i int) uint64) ShardedConfig {
	devices := make([]DeviceSpec, 4*shards)
	for i := range devices {
		devices[i] = DeviceSpec{Class: core.ClassDesktop, Slots: 4, Speed: 100}
	}
	n := tasksPerShard * shards
	tasks := make([]TaskSpec, n)
	for i := range tasks {
		tasks[i] = TaskSpec{Fuel: 100_000, Program: program(i)} // 1ms of work, arrival 0
	}
	return ShardedConfig{
		Base: Config{
			Devices: devices,
			Tasks:   tasks,
			Latency: 100 * time.Microsecond,
			Seed:    5,
		},
		Shards:         shards,
		BrokerOverhead: 50 * time.Microsecond,
		// Fine-grained exchange: ~1k dispatcher ops per shard per tick
		// would be far too coarse for ~100ms runs, so gossip every 2ms and
		// steal down to small gaps.
		GossipInterval: 2 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 4},
	}
}

func uniqueProgram(i int) uint64 { return 0xabcd_0000 + uint64(i) }

// TestShardedThroughputScales pins the tentpole claim at test scale: 4
// shards deliver ≥3× the aggregate saturation throughput of 1 shard.
func TestShardedThroughputScales(t *testing.T) {
	tput := func(shards int) float64 {
		st, err := RunSharded(shardScaleConfig(shards, 1500, uniqueProgram))
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != 1500*shards {
			t.Fatalf("%d shards: completed %d of %d", shards, st.Completed, 1500*shards)
		}
		return float64(st.Completed) / st.Makespan.Seconds()
	}
	t1, t4 := tput(1), tput(4)
	t.Logf("throughput: 1 shard %.0f/s, 4 shards %.0f/s (%.2fx)", t1, t4, t4/t1)
	if t4 < 3*t1 {
		t.Fatalf("4-shard throughput %.0f/s is under 3× the 1-shard %.0f/s", t4, t1)
	}
}

// TestShardedSkewExchangeRecovers pins the work-exchange claim: under a
// fully skewed workload (every task routes to one hot shard), enabling the
// exchange recovers ≥80%% of balanced-load throughput, while without it the
// cluster degrades to single-shard speed.
func TestShardedSkewExchangeRecovers(t *testing.T) {
	const shards, perShard = 4, 750
	run := func(program func(i int) uint64, exchange bool) *ShardedStats {
		cfg := shardScaleConfig(shards, perShard, program)
		cfg.Exchange = exchange
		st, err := RunSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != shards*perShard {
			t.Fatalf("completed %d of %d", st.Completed, shards*perShard)
		}
		return st
	}
	hot := func(int) uint64 { return 0xbeef } // one program hash: all → one shard

	balanced := run(uniqueProgram, false)
	skewOff := run(hot, false)
	skewOn := run(hot, true)

	tp := func(s *ShardedStats) float64 { return float64(s.Completed) / s.Makespan.Seconds() }
	recovery := tp(skewOn) / tp(balanced)
	t.Logf("balanced %.0f/s, skew no-exchange %.0f/s, skew exchange %.0f/s (recovery %.2f, migrated %d in %d requests)",
		tp(balanced), tp(skewOff), tp(skewOn), recovery, skewOn.Migrated, skewOn.MigrateRequests)

	if skewOn.Migrated == 0 {
		t.Fatal("exchange run migrated nothing")
	}
	if skewOff.Migrated != 0 {
		t.Fatalf("exchange-off run migrated %d", skewOff.Migrated)
	}
	if tp(skewOn) <= tp(skewOff) {
		t.Fatalf("exchange did not improve skewed throughput: %.0f/s vs %.0f/s", tp(skewOn), tp(skewOff))
	}
	if recovery < 0.8 {
		t.Fatalf("exchange recovered only %.0f%% of balanced throughput", 100*recovery)
	}
}

// TestShardedMultihome checks split-slot multi-homing: every device
// registers with two shards at half capacity, and the cluster still
// completes everything with the full slot budget in play.
func TestShardedMultihome(t *testing.T) {
	cfg := shardScaleConfig(2, 400, uniqueProgram)
	cfg.Multihome = 2
	st, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 800 {
		t.Fatalf("completed %d of 800", st.Completed)
	}
	// 8 devices × multihome 2 = 16 sub-devices, 2 slots each.
	if len(st.BusyTime) != 16 {
		t.Fatalf("got %d sub-devices, want 16", len(st.BusyTime))
	}
	for i := range st.Finals {
		if st.Finals[i].Tasklet == 0 {
			t.Fatalf("task %d has no final", i)
		}
	}
}

// TestShardedDeterministic: same config, same seed → identical stats.
func TestShardedDeterministic(t *testing.T) {
	cfg := shardScaleConfig(3, 300, func(int) uint64 { return 0xbeef })
	cfg.Exchange = true
	a, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded runs with identical seeds diverged")
	}
}
