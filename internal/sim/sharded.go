package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/shard"
)

// ShardedConfig describes a multi-shard broker cluster scenario: the base
// single-broker scenario plus the cluster shape and the work-exchange
// policy. Tasklets route to shards by consistent hash of their program
// hash (TaskSpec.Program, falling back to Key, then a per-task spread), so
// repeated programs always land where their memo entries live.
type ShardedConfig struct {
	Base Config

	// Shards is the cluster size. 1 reproduces Run exactly (the
	// differential tests pin this), with devices and tasks unpartitioned.
	Shards int

	// Multihome splits every device into this many sub-providers
	// registered with consecutive shards, each advertising Slots/Multihome
	// slots — the provider-side half of the sharding design. 0 or 1 means
	// each device registers with exactly one shard (round-robin).
	Multihome int

	// BrokerOverhead is the serialized dispatcher CPU cost charged per
	// placement dispatch and per result processed, per shard. Virtual-time
	// execution has no intrinsic broker cost, so this is what makes the
	// broker a bottleneck that sharding can relieve; zero disables the
	// model (then sharding only redistributes device capacity).
	BrokerOverhead time.Duration

	// FrameOverhead is the per-wire-frame serialized cost (encode, syscall,
	// decode) added on top of BrokerOverhead for each frame the dispatcher
	// handles; zero disables the frame model, keeping runs bit-identical to
	// the pre-batching simulator. Batch selects the batched control plane:
	// with Batch off every dispatch and every result carries its own frame;
	// with Batch on a placement pass pays one frame per destination device
	// (AssignBatch) and a result pays a frame only when the dispatcher is
	// idle (AttemptResultBatch folding) — mirroring the live broker's
	// capability-gated batching, which E12 ablates.
	FrameOverhead time.Duration
	Batch         bool

	// Partitions models the broker's lock-striped lifecycle partitions
	// (broker.Options.Partitions): with P > 1, result processing (the result
	// op plus its frame) is served by P parallel partition servers keyed by
	// tasklet ID instead of the one serialized dispatcher line, while
	// placement dispatch stays serialized (the live scheduler goroutine is
	// single-writer). 0 or 1 keeps the fully serialized model, bit-identical
	// to the pre-partitioning simulator — the E13 ablation pins that.
	Partitions int

	// ResultOverhead overrides the per-result dispatcher cost when set;
	// zero charges BrokerOverhead for results too (the legacy model).
	// Results are the broker's hot path (decode, lifecycle, QoC, metrics),
	// typically costlier than a dispatch, and they are what partitioning
	// parallelizes — E13 sets this to put the bottleneck where the live
	// broker has it.
	ResultOverhead time.Duration

	// Exchange enables gossip-driven work migration between shards;
	// GossipInterval is the load-snapshot period (default 10ms), and
	// ExchangePolicy tunes the pull decision (zero fields = defaults).
	Exchange       bool
	GossipInterval time.Duration
	ExchangePolicy shard.Policy

	// PolicyFor supplies one placement policy per shard (policies are
	// stateful, so shards must not share one). Nil gives every shard a
	// fresh work_steal unless Base.Policy is set, which is then shared —
	// only valid for Shards==1 (the differential configuration).
	PolicyFor func(i int) scheduler.Policy

	// Vnodes overrides the ring's virtual-node count (0 = default).
	Vnodes int
}

// ShardStat is one shard's slice of a sharded run.
type ShardStat struct {
	Shard       uint64
	Completed   int
	Attempts    int
	MigratedIn  int
	MigratedOut int
}

// ShardedStats extends Stats with exchange accounting. BusyTime and
// DeviceExecuted are indexed by sub-device in shard-major order; Finals is
// indexed like Base.Tasks regardless of which shard finalized each task.
type ShardedStats struct {
	Stats
	Migrated        int // tasklets moved between shards
	MigrateRequests int // pull requests issued
	PerShard        []ShardStat
}

// shardSim is one shard's world plus its exchange bookkeeping.
type shardSim struct {
	*sim
	pos     int            // 0-based shard position; ring ID is pos+1
	nextTid core.TaskletID // shard-local tasklet ID allocator
	rate    float64        // EWMA finals/sec, gossiped
	rateOK  bool
	lastFin int // finals at previous gossip tick
	in, out int // migration counts
}

// shardWorld drives N shard sims over one shared event engine.
type shardWorld struct {
	cfg    ShardedConfig
	eng    *engine
	ring   *shard.Ring
	xpol   shard.Policy
	shards []*shardSim
	total  int
	stats  ShardedStats
	lat    *metrics.Histogram
	qd     *metrics.Histogram
}

// routeKey is the consistent-hash routing key for task i.
func routeKey(i int, ts TaskSpec) uint64 {
	if ts.Program != 0 {
		return ts.Program
	}
	if ts.Key != 0 {
		return ts.Key
	}
	// Anonymous tasks spread uniformly instead of all hashing to one arc.
	return 0x517cc1b727220a95 ^ uint64(i+1)
}

// RunSharded executes the scenario on a cluster of Shards brokers and
// returns merged statistics. With Shards==1 the event sequence is
// identical to Run on the same Base config.
func RunSharded(cfg ShardedConfig) (*ShardedStats, error) {
	base, err := cfg.Base.normalize()
	if err != nil {
		return nil, err
	}
	cfg.Base = base
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Multihome <= 0 {
		cfg.Multihome = 1
	}
	if cfg.Multihome > cfg.Shards {
		cfg.Multihome = cfg.Shards
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 10 * time.Millisecond
	}

	w := &shardWorld{
		cfg:   cfg,
		eng:   newEngine(base.Seed),
		ring:  shard.NewRing(cfg.Vnodes),
		xpol:  cfg.ExchangePolicy.Normalize(),
		total: len(base.Tasks),
		lat:   &metrics.Histogram{},
		qd:    &metrics.Histogram{},
	}

	// Partition devices: device i contributes Multihome sub-providers to
	// consecutive shards starting at i%Shards, splitting its slot budget.
	perShard := make([][]DeviceSpec, cfg.Shards)
	for i, spec := range base.Devices {
		if spec.Slots <= 0 {
			spec.Slots = 1
		}
		sub := spec
		sub.Slots = spec.Slots / cfg.Multihome
		if sub.Slots <= 0 {
			sub.Slots = 1
		}
		for k := 0; k < cfg.Multihome; k++ {
			perShard[(i+k)%cfg.Shards] = append(perShard[(i+k)%cfg.Shards], sub)
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		if len(perShard[i]) == 0 {
			return nil, fmt.Errorf("sim: shard %d owns no devices (%d devices × multihome %d over %d shards)",
				i+1, len(base.Devices), cfg.Multihome, cfg.Shards)
		}
	}

	for i := 0; i < cfg.Shards; i++ {
		scfg := base
		scfg.Devices = perShard[i]
		if cfg.PolicyFor != nil {
			scfg.Policy = cfg.PolicyFor(i)
		} else if cfg.Shards > 1 {
			scfg.Policy = scheduler.NewWorkSteal()
		}
		ss := &shardSim{sim: newSim(scfg, w.eng), pos: i}
		ss.overhead = cfg.BrokerOverhead
		ss.frameOverhead = cfg.FrameOverhead
		ss.batched = cfg.Batch
		ss.resultOverhead = cfg.ResultOverhead
		if cfg.Partitions > 1 {
			ss.partitions = cfg.Partitions
			ss.partBusy = make([]time.Duration, cfg.Partitions)
		}
		// All shards observe into the world's shared distributions.
		ss.latency, ss.queueDelay = w.lat, w.qd
		w.shards = append(w.shards, ss)
		w.ring.Add(uint64(i + 1))
	}

	// Route and schedule arrivals. Tasklet IDs are shard-local, assigned
	// in task order — for one shard that reproduces Run's i+1 exactly.
	firstArr := time.Duration(-1)
	for i, tspec := range base.Tasks {
		owner, _ := w.ring.Owner(routeKey(i, tspec))
		ss := w.shards[owner-1]
		ss.nextTid++
		fuel := tspec.Fuel
		if fuel == 0 {
			fuel = 1_000_000
		}
		t := core.Tasklet{
			ID: ss.nextTid, Job: 1, Index: i,
			Fuel: fuel, QoC: tspec.QoC,
		}
		if firstArr < 0 || tspec.Arrival < firstArr {
			firstArr = tspec.Arrival
		}
		content := tspec.Key
		w.eng.at(tspec.Arrival, func() { ss.onArrival(t, content) })
	}

	if cfg.Exchange && cfg.Shards > 1 {
		w.eng.after(cfg.GossipInterval, w.gossipTick)
	}

	for w.finalized() < w.total {
		if len(w.eng.heap) > 0 && w.eng.heap[0].at > base.MaxTime {
			return nil, fmt.Errorf("sim: exceeded max virtual time %v with %d tasklets unfinished",
				base.MaxTime, w.total-w.finalized())
		}
		if !w.eng.step() {
			return nil, errors.New("sim: event queue drained with tasklets unfinished (fleet dead?)")
		}
	}

	return w.merge(firstArr), nil
}

// finalized counts tasklets that reached a final state across all shards.
func (w *shardWorld) finalized() int {
	n := 0
	for _, ss := range w.shards {
		n += ss.stats.Completed + ss.stats.Failed
	}
	return n
}

// gossipTick is the cluster's periodic load exchange: refresh every
// shard's EWMA service rate, then let each underloaded shard plan one pull
// against the snapshot. Planned pulls reach the source a network latency
// later, like a MigrateRequest frame would.
func (w *shardWorld) gossipTick() {
	if w.finalized() >= w.total {
		return // run is over; stop rescheduling
	}
	loads := make([]shard.Load, len(w.shards))
	for i, ss := range w.shards {
		fin := ss.stats.Completed + ss.stats.Failed
		sample := float64(fin-ss.lastFin) / w.cfg.GossipInterval.Seconds()
		ss.lastFin = fin
		if !ss.rateOK {
			ss.rate, ss.rateOK = sample, true
		} else {
			ss.rate = shard.EWMA(ss.rate, sample)
		}
		free := 0
		if ss.index != nil {
			free = ss.index.FreeSlots()
		} else {
			for _, d := range ss.devices {
				if d.up {
					free += d.free
				}
			}
		}
		loads[i] = shard.Load{
			Shard: uint64(i + 1), Queue: len(ss.pending), Free: free, Rate: ss.rate,
		}
	}
	for i := range w.shards {
		dst := w.shards[i]
		from, n, ok := w.xpol.PlanPull(loads[i], loads)
		if !ok {
			continue
		}
		w.stats.MigrateRequests++
		src := w.shards[from-1]
		w.eng.after(w.cfg.Base.Latency, func() { w.migrate(src, dst, n) })
	}
	w.eng.after(w.cfg.GossipInterval, w.gossipTick)
}

// migrate is the source shard's side of a pull: pick up to max queued,
// never-in-flight tasklets off the back of the placement queue, Cancel
// them locally, and hand the batch to the destination one latency later
// (the MigrateTasklet flight). Eligibility is re-checked here, not at plan
// time — the queue may have drained since the gossip snapshot.
func (w *shardWorld) migrate(src, dst *shardSim, max int) {
	var picked []core.Tasklet
	taken := make(map[core.TaskletID]bool)
	for i := len(src.pending) - 1; i >= 0 && len(picked) < max; i-- {
		tid := src.pending[i].tasklet
		if taken[tid] {
			continue // voting fan-out queues one tid multiple times
		}
		t := src.life.Tasklet(tid)
		if t == nil {
			continue
		}
		// Deadline timers are armed on the source engine and cannot move;
		// in-flight fan-outs are never migrated by design.
		if t.QoC.Deadline > 0 {
			continue
		}
		if len(src.life.AppendActiveProviders(tid, src.excl[:0])) > 0 {
			continue
		}
		taken[tid] = true
		picked = append(picked, *t) // copy before Cancel recycles the state
	}
	if len(picked) == 0 {
		return
	}
	kept := src.pending[:0]
	for _, pe := range src.pending {
		if !taken[pe.tasklet] {
			kept = append(kept, pe)
		}
	}
	src.pending = kept
	launched := false
	for i := range picked {
		_, fx := src.life.Cancel(picked[i].ID)
		if src.apply(fx) { // a cancelled flight leader promotes a waiter
			launched = true
		}
	}
	if launched {
		src.schedule()
	}
	// The batch transfer costs each dispatcher one serialized operation and
	// one frame — migration frames batch like writer-loop sends, they are
	// not charged per tasklet.
	src.gate(true)
	src.out += len(picked)
	w.stats.Migrated += len(picked)
	w.eng.after(w.cfg.Base.Latency, func() {
		if d := dst.gate(true); d > 0 {
			w.eng.after(d, func() { w.admit(dst, picked) })
			return
		}
		w.admit(dst, picked)
	})
}

// admit is the destination side of a migration: fresh submissions under
// shard-local IDs, re-entering memoization, coalescing and QoC fan-out on
// the receiving engine — applied as ONE bulk lifecycle event burst, the
// same way the live broker ingests a decoded batch frame.
func (w *shardWorld) admit(dst *shardSim, batch []core.Tasklet) {
	dst.in += len(batch)
	evs := make([]lifecycle.Event, 0, len(batch))
	for _, t := range batch {
		dst.nextTid++
		t.ID = dst.nextTid
		ev := lifecycle.Event{Kind: lifecycle.EventSubmit, Tasklet: t}
		if content := w.cfg.Base.Tasks[t.Index].Key; dst.memoOn && content != 0 {
			ev.Key, ev.HaveKey = memo.KeyFor(content, dst.cfg.Seed, nil)
		}
		evs = append(evs, ev)
	}
	if dst.apply(dst.life.Apply(evs)) {
		dst.schedule()
	}
}

// merge folds the per-shard worlds into one ShardedStats.
func (w *shardWorld) merge(firstArr time.Duration) *ShardedStats {
	out := &w.stats
	out.Finals = make([]core.Result, w.total)
	lastDone := time.Duration(0)
	for _, ss := range w.shards {
		st := &ss.stats
		out.Completed += st.Completed
		out.Failed += st.Failed
		out.Attempts += st.Attempts
		out.LostAttempts += st.LostAttempts
		out.WastedAttempts += st.WastedAttempts
		out.CacheHits += st.CacheHits
		out.Coalesced += st.Coalesced
		for i, d := range ss.devices {
			st.BusyTime[i] = d.busy
			st.DeviceExecuted[i] = d.done
		}
		out.BusyTime = append(out.BusyTime, st.BusyTime...)
		out.DeviceExecuted = append(out.DeviceExecuted, st.DeviceExecuted...)
		for i, f := range st.Finals {
			if f.Tasklet != 0 {
				out.Finals[i] = f
			}
		}
		out.Trace = append(out.Trace, st.Trace...)
		if ss.lastDone > lastDone {
			lastDone = ss.lastDone
		}
		out.PerShard = append(out.PerShard, ShardStat{
			Shard: uint64(ss.pos + 1), Completed: st.Completed,
			Attempts: st.Attempts, MigratedIn: ss.in, MigratedOut: ss.out,
		})
	}
	sort.SliceStable(out.Trace, func(i, j int) bool { return out.Trace[i].At < out.Trace[j].At })
	out.Makespan = lastDone - firstArr
	out.Latency = w.lat.Snapshot()
	out.QueueDelay = w.qd.Snapshot()
	return out
}
