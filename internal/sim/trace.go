package sim

import (
	"fmt"
	"strings"
	"time"
)

// TraceKind classifies simulator trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceArrival TraceKind = iota
	TraceLaunch
	TraceComplete
	TraceLost
	TraceDeviceFail
	TraceDeviceRecover
	TraceFinal
)

// String returns the event-kind name.
func (k TraceKind) String() string {
	switch k {
	case TraceArrival:
		return "arrival"
	case TraceLaunch:
		return "launch"
	case TraceComplete:
		return "complete"
	case TraceLost:
		return "lost"
	case TraceDeviceFail:
		return "device_fail"
	case TraceDeviceRecover:
		return "device_recover"
	case TraceFinal:
		return "final"
	default:
		return fmt.Sprintf("trace(%d)", uint8(k))
	}
}

// TraceEvent is one recorded simulator event. Device is -1 when the event
// has no device (arrival, final); Tasklet/Attempt are 0 for device events.
type TraceEvent struct {
	At      time.Duration
	Kind    TraceKind
	Device  int
	Tasklet int
	Attempt int
	OK      bool // for TraceFinal: completed vs failed
}

// String renders one trace line.
func (e TraceEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %-14s", e.At.Round(time.Microsecond), e.Kind)
	if e.Device >= 0 {
		fmt.Fprintf(&b, " dev=%d", e.Device)
	}
	if e.Tasklet > 0 {
		fmt.Fprintf(&b, " task=%d", e.Tasklet)
	}
	if e.Attempt > 0 {
		fmt.Fprintf(&b, " attempt=%d", e.Attempt)
	}
	if e.Kind == TraceFinal {
		fmt.Fprintf(&b, " ok=%v", e.OK)
	}
	return b.String()
}

// Timeline renders a trace as one line per event, in order.
func Timeline(events []TraceEvent) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// trace appends an event when tracing is enabled.
func (s *sim) trace(kind TraceKind, device int, tasklet, attempt int, ok bool) {
	if !s.cfg.Trace {
		return
	}
	s.stats.Trace = append(s.stats.Trace, TraceEvent{
		At: s.eng.now, Kind: kind, Device: device,
		Tasklet: tasklet, Attempt: attempt, OK: ok,
	})
}
