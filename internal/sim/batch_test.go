package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// finalEssence strips a final result to its semantically meaningful part:
// timing and placement (Provider, Exec, FuelUsed, IDs) legitimately shift
// when the frame-overhead model reshapes the dispatcher timeline.
type finalEssence struct {
	Index   int
	Status  core.ResultStatus
	Return  string
	Fault   string
	Emitted int
}

func finalEssences(finals []core.Result) []finalEssence {
	out := make([]finalEssence, len(finals))
	for i, f := range finals {
		out[i] = finalEssence{
			Index: f.Index, Status: f.Status,
			Return: f.Return.String(), Fault: f.FaultMsg,
			Emitted: len(f.Emitted),
		}
	}
	return out
}

// TestSimBatchZeroFrameOverheadIdentical: with no frame cost configured the
// batched control-plane model must be completely inert — bit-identical
// stats with Batch on and off, and a 1-shard batched group bit-identical to
// the unsharded simulator, traces included.
func TestSimBatchZeroFrameOverheadIdentical(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.Trace = true
			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := RunSharded(ShardedConfig{Base: cfg, Shards: 1, Exchange: true, Batch: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*plain, batched.Stats) {
				t.Errorf("1-shard batched group diverged from unsharded run:\nunsharded: %+v\n  batched: %+v",
					*plain, batched.Stats)
			}
			unbatched, err := RunSharded(ShardedConfig{Base: cfg, Shards: 1, Exchange: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(unbatched, batched) {
				t.Error("Batch flag changed a zero-frame-overhead run")
			}
		})
	}
}

// batchScaleConfig is shardScaleConfig plus the frame-cost model: half the
// dispatcher's serialized cost is per-operation, half is per-frame, so
// batching has real headroom to reclaim. Tasks carry unique content keys so
// each final's value is content-determined — anonymous tasks return their
// shard-local tasklet ID, which legitimately shifts when different timing
// migrates a task to a different shard.
func batchScaleConfig(shards, tasksPerShard int, batch bool) ShardedConfig {
	cfg := shardScaleConfig(shards, tasksPerShard, uniqueProgram)
	for i := range cfg.Base.Tasks {
		cfg.Base.Tasks[i].Key = 0x5000_0000 + uint64(i)
	}
	cfg.BrokerOverhead = 25 * time.Microsecond
	cfg.FrameOverhead = 25 * time.Microsecond
	cfg.Batch = batch
	return cfg
}

// TestSimBatchDifferentialFinals: under a non-zero frame cost the batched
// and unbatched control planes must still produce semantically identical
// finals — on one shard and on a 4-shard cluster with the work exchange
// migrating tasklets.
func TestSimBatchDifferentialFinals(t *testing.T) {
	shapes := []struct {
		name   string
		shards int
	}{{"1-shard", 1}, {"4-shard-exchange", 4}}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			mk := func(batch bool) *ShardedStats {
				cfg := batchScaleConfig(sh.shards, 400, batch)
				cfg.Exchange = sh.shards > 1
				st, err := RunSharded(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			on, off := mk(true), mk(false)
			if on.Completed != 400*sh.shards || off.Completed != 400*sh.shards {
				t.Fatalf("completed %d / %d of %d", on.Completed, off.Completed, 400*sh.shards)
			}
			if !reflect.DeepEqual(finalEssences(on.Finals), finalEssences(off.Finals)) {
				t.Fatal("finals diverge between batch on and off")
			}
		})
	}
}

// TestSimBatchThroughputImproves pins the direction of the tentpole claim
// at test scale: with a real per-frame cost, the batched control plane
// saturates strictly higher than one frame per attempt. (The ≥1.5× bar at
// experiment scale is enforced by E12.)
func TestSimBatchThroughputImproves(t *testing.T) {
	tput := func(batch bool) float64 {
		st, err := RunSharded(batchScaleConfig(1, 1500, batch))
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != 1500 {
			t.Fatalf("completed %d of 1500", st.Completed)
		}
		return float64(st.Completed) / st.Makespan.Seconds()
	}
	on, off := tput(true), tput(false)
	t.Logf("throughput: batch on %.0f/s, off %.0f/s (%.2fx)", on, off, on/off)
	if on <= off {
		t.Fatalf("batching did not improve saturation throughput: on %.0f/s vs off %.0f/s", on, off)
	}
}
