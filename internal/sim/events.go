// Package sim implements a deterministic discrete-event simulator for
// Tasklet fleets. It substitutes for the paper's physical heterogeneous
// testbed: device classes with calibrated speed factors, multi-slot
// concurrency, exponential churn (MTBF/MTTR), link latency, and
// heartbeat-style failure detection — while reusing the *same* scheduling
// policies (internal/scheduler) and QoC engine (internal/qoc) as the live
// broker, so simulated and live behaviour differ only in the transport.
//
// Everything is driven by a binary-heap event queue over virtual time;
// given a seed, runs are bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"math"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// engine is the virtual clock and event loop.
type engine struct {
	now  time.Duration
	heap eventHeap
	seq  uint64
	rng  uint64
}

func newEngine(seed uint64) *engine {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &engine{rng: seed}
}

// at schedules fn at absolute virtual time t (clamped to now).
func (e *engine) at(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, &event{at: t, seq: e.seq, fn: fn})
}

// after schedules fn d from now.
func (e *engine) after(d time.Duration, fn func()) { e.at(e.now+d, fn) }

// step runs the next event; returns false when the queue is empty.
func (e *engine) step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// run drains the queue, stopping (with false) if virtual time exceeds max.
func (e *engine) run(max time.Duration) bool {
	for len(e.heap) > 0 {
		if e.heap[0].at > max {
			return false
		}
		e.step()
	}
	return true
}

// next64 advances the xorshift64* RNG.
func (e *engine) next64() uint64 {
	x := e.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	e.rng = x
	return x * 0x2545f4914f6cdd1d
}

// uniform returns a float in [0, 1).
func (e *engine) uniform() float64 {
	return float64(e.next64()>>11) / (1 << 53)
}

// exponential samples an exponential duration with the given mean.
func (e *engine) exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := e.uniform()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := -float64(mean) * math.Log(u)
	if d > float64(math.MaxInt64)/2 {
		d = float64(math.MaxInt64) / 2
	}
	return time.Duration(d)
}
