package sim

import (
	"container/heap"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
)

// --- event engine ---

func TestEventOrdering(t *testing.T) {
	e := newEngine(1)
	var order []int
	e.at(30*time.Millisecond, func() { order = append(order, 3) })
	e.at(10*time.Millisecond, func() { order = append(order, 1) })
	e.at(20*time.Millisecond, func() { order = append(order, 2) })
	e.run(time.Hour)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.now != 30*time.Millisecond {
		t.Fatalf("clock = %v", e.now)
	}
}

func TestEventFIFOAmongEqualTimes(t *testing.T) {
	e := newEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.at(time.Millisecond, func() { order = append(order, i) })
	}
	e.run(time.Hour)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := newEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.after(time.Second, tick)
		}
	}
	e.after(0, tick)
	e.run(time.Hour)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if e.now != 4*time.Second {
		t.Fatalf("clock = %v", e.now)
	}
}

func TestRunStopsAtMaxTime(t *testing.T) {
	e := newEngine(1)
	fired := false
	e.at(time.Hour, func() { fired = true })
	if e.run(time.Minute) {
		t.Fatal("run claimed completion")
	}
	if fired {
		t.Fatal("event beyond max fired")
	}
}

func TestHeapProperty(t *testing.T) {
	e := newEngine(42)
	var h eventHeap
	for i := 0; i < 500; i++ {
		heap.Push(&h, &event{at: time.Duration(e.next64() % 1000), seq: uint64(i)})
	}
	last := time.Duration(-1)
	for h.Len() > 0 {
		ev := heap.Pop(&h).(*event)
		if ev.at < last {
			t.Fatal("heap pop out of order")
		}
		last = ev.at
	}
}

func TestExponentialProperties(t *testing.T) {
	e := newEngine(7)
	mean := 10 * time.Second
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := e.exponential(mean)
		if d < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += d
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("sample mean %v, want ~%v", time.Duration(got), mean)
	}
	if e.exponential(0) != 0 {
		t.Fatal("zero mean should yield zero")
	}
}

// --- full simulations ---

func uniformTasks(n int, fuel uint64) []TaskSpec {
	tasks := make([]TaskSpec, n)
	for i := range tasks {
		tasks[i] = TaskSpec{Fuel: fuel}
	}
	return tasks
}

func homogeneous(n, slots int, speed float64) []DeviceSpec {
	devs := make([]DeviceSpec, n)
	for i := range devs {
		devs[i] = DeviceSpec{Class: core.ClassDesktop, Slots: slots, Speed: speed}
	}
	return devs
}

func TestSimBasicCompletion(t *testing.T) {
	stats, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   uniformTasks(10, 100_000_000), // 1s each at 100 Mops/s
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 10 || stats.Failed != 0 {
		t.Fatalf("completed/failed = %d/%d", stats.Completed, stats.Failed)
	}
	// Serial execution on one slot: makespan = 10s (+latency ~0).
	if stats.Makespan < 9*time.Second || stats.Makespan > 11*time.Second {
		t.Fatalf("makespan = %v, want ~10s", stats.Makespan)
	}
	if stats.Attempts != 10 {
		t.Fatalf("attempts = %d", stats.Attempts)
	}
}

func TestSimDeterministicPerSeed(t *testing.T) {
	cfg := Config{
		Devices: []DeviceSpec{
			{Class: core.ClassServer, Slots: 2, MTBF: 30 * time.Second, MTTR: 5 * time.Second},
			{Class: core.ClassMobile, Slots: 1, MTBF: 20 * time.Second, MTTR: 10 * time.Second},
			{Class: core.ClassDesktop, Slots: 1},
		},
		Tasks:  uniformTasks(200, 50_000_000),
		Policy: scheduler.NewRandom(3),
		Seed:   99,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = scheduler.NewRandom(3) // fresh policy state
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Attempts != b.Attempts ||
		a.LostAttempts != b.LostAttempts || a.Completed != b.Completed {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSimSpeedupWithMoreDevices(t *testing.T) {
	makespan := func(n int) time.Duration {
		stats, err := Run(Config{
			Devices: homogeneous(n, 1, 100),
			Tasks:   uniformTasks(64, 50_000_000),
			Seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	m1, m2, m4 := makespan(1), makespan(2), makespan(4)
	if s := float64(m1) / float64(m2); s < 1.8 || s > 2.2 {
		t.Fatalf("2-device speedup = %.2f, want ~2", s)
	}
	if s := float64(m1) / float64(m4); s < 3.5 || s > 4.5 {
		t.Fatalf("4-device speedup = %.2f, want ~4", s)
	}
}

func TestSimMultiSlotDeviceParallelism(t *testing.T) {
	one, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   uniformTasks(16, 100_000_000),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{
		Devices: homogeneous(1, 4, 100),
		Tasks:   uniformTasks(16, 100_000_000),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := float64(one.Makespan) / float64(four.Makespan); s < 3.5 {
		t.Fatalf("4-slot speedup = %.2f, want ~4", s)
	}
}

func TestSimFastPolicyBeatsRandomOnHeterogeneousFleet(t *testing.T) {
	// With an open arrival process at moderate load, speed-aware placement
	// sends work to fast devices while random wastes it on phones; the
	// mean response time separates the policies. (With a closed batch of
	// identical tasklets every work-conserving policy yields the same
	// makespan, so latency — not makespan — is the discriminating metric.)
	devices := []DeviceSpec{
		{Class: core.ClassServer, Slots: 2},
		{Class: core.ClassDesktop, Slots: 1},
		{Class: core.ClassLaptop, Slots: 1},
		{Class: core.ClassMobile, Slots: 1},
		{Class: core.ClassMobile, Slots: 1},
	}
	// Aggregate capacity: 610 Mops/s. Offered load ~40%: one 100 Mop task
	// every 400ms.
	tasks := uniformTasks(150, 100_000_000)
	for i := range tasks {
		tasks[i].Arrival = time.Duration(i) * 400 * time.Millisecond
	}
	run := func(p scheduler.Policy) float64 {
		stats, err := Run(Config{Devices: devices, Tasks: tasks, Policy: p, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Completed != 150 {
			t.Fatalf("completed = %d", stats.Completed)
		}
		return stats.Latency.Mean
	}
	random := run(scheduler.NewRandom(1))
	fastest := run(scheduler.NewFastestFree())
	if fastest >= random {
		t.Fatalf("fastest mean latency (%.1fms) should beat random (%.1fms)", fastest, random)
	}
	if random/fastest < 1.5 {
		t.Fatalf("expected a pronounced gap on this fleet: fastest=%.1fms random=%.1fms", fastest, random)
	}
}

func TestSimChurnWithRetriesCompletes(t *testing.T) {
	stats, err := Run(Config{
		Devices: []DeviceSpec{
			{Class: core.ClassDesktop, Slots: 1, MTBF: 5 * time.Second, MTTR: 2 * time.Second},
			{Class: core.ClassDesktop, Slots: 1, MTBF: 5 * time.Second, MTTR: 2 * time.Second},
			{Class: core.ClassDesktop, Slots: 1},
		},
		Tasks:       uniformTasks(100, 50_000_000),
		DetectDelay: 500 * time.Millisecond,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 100 {
		t.Fatalf("completed = %d, want 100 (retries should mask churn)", stats.Completed)
	}
	if stats.LostAttempts == 0 {
		t.Fatal("churny fleet lost no attempts; churn injection broken")
	}
	if stats.Attempts <= 100 {
		t.Fatalf("attempts = %d, want > 100 (re-issues)", stats.Attempts)
	}
}

func TestSimVotingDefeatsFaultyMinority(t *testing.T) {
	stats, err := Run(Config{
		Devices: []DeviceSpec{
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2},
			{Class: core.ClassDesktop, Slots: 2, Faulty: true},
		},
		Tasks: func() []TaskSpec {
			ts := uniformTasks(50, 10_000_000)
			for i := range ts {
				ts[i].QoC = core.QoC{Mode: core.QoCVoting, Replicas: 3}
			}
			return ts
		}(),
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 50 {
		t.Fatalf("completed = %d, want 50 (honest majority must win)", stats.Completed)
	}
	if stats.Attempts < 150 {
		t.Fatalf("attempts = %d, want >= 150 (3 replicas each)", stats.Attempts)
	}
}

func TestSimBestEffortOnFaultyDeviceReturnsWrongAnswerSilently(t *testing.T) {
	// Documents why voting exists: with best-effort QoC a faulty device's
	// corrupted results are accepted.
	stats, err := Run(Config{
		Devices: []DeviceSpec{{Class: core.ClassDesktop, Slots: 1, Faulty: true}},
		Tasks:   uniformTasks(5, 1_000_000),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 5 {
		t.Fatalf("completed = %d (best-effort accepts whatever arrives)", stats.Completed)
	}
}

func TestSimRedundancyCostsExtraAttempts(t *testing.T) {
	base, err := Run(Config{
		Devices: homogeneous(4, 1, 100),
		Tasks:   uniformTasks(40, 10_000_000),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := Run(Config{
		Devices: homogeneous(4, 1, 100),
		Tasks: func() []TaskSpec {
			ts := uniformTasks(40, 10_000_000)
			for i := range ts {
				ts[i].QoC = core.QoC{Mode: core.QoCRedundant, Replicas: 2}
			}
			return ts
		}(),
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dup.Attempts < 2*base.Attempts {
		t.Fatalf("redundant attempts = %d, want >= 2x base %d", dup.Attempts, base.Attempts)
	}
	if dup.WastedAttempts == 0 {
		t.Fatal("redundancy produced no wasted attempts")
	}
}

func TestSimDeadlineFailsSlowTasklets(t *testing.T) {
	stats, err := Run(Config{
		Devices: homogeneous(1, 1, 1), // 1 Mops/s: 100s per tasklet
		Tasks: func() []TaskSpec {
			ts := uniformTasks(3, 100_000_000)
			for i := range ts {
				ts[i].QoC = core.QoC{Deadline: 10 * time.Second}
			}
			return ts
		}(),
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 3 {
		t.Fatalf("failed = %d, want 3 (deadline 10s < exec 100s)", stats.Failed)
	}
}

func TestSimLatencyAddsToMakespan(t *testing.T) {
	fast, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   uniformTasks(10, 1_000_000),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   uniformTasks(10, 1_000_000),
		Latency: 100 * time.Millisecond,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= fast.Makespan+time.Second {
		t.Fatalf("latency had no effect: %v vs %v", fast.Makespan, slow.Makespan)
	}
}

func TestSimArrivalProcessRespected(t *testing.T) {
	tasks := uniformTasks(10, 1_000_000)
	for i := range tasks {
		tasks[i].Arrival = time.Duration(i) * time.Second
	}
	stats, err := Run(Config{
		Devices: homogeneous(4, 2, 100),
		Tasks:   tasks,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Last arrival at 9s; execution 10ms. Makespan dominated by arrivals.
	if stats.Makespan < 9*time.Second {
		t.Fatalf("makespan = %v, want >= 9s", stats.Makespan)
	}
}

func TestSimUtilizationBounds(t *testing.T) {
	devices := homogeneous(2, 1, 100)
	stats, err := Run(Config{
		Devices: devices,
		Tasks:   uniformTasks(20, 50_000_000),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := stats.Utilization(devices)
	if u <= 0.5 || u > 1.0001 {
		t.Fatalf("utilization = %v, want (0.5, 1]", u)
	}
}

func TestSimErrorCases(t *testing.T) {
	if _, err := Run(Config{Tasks: uniformTasks(1, 1)}); err == nil {
		t.Fatal("no devices accepted")
	}
	if _, err := Run(Config{Devices: homogeneous(1, 1, 1)}); err == nil {
		t.Fatal("no tasks accepted")
	}
	// A scenario that cannot finish within MaxTime errors out.
	_, err := Run(Config{
		Devices: homogeneous(1, 1, 0.001),
		Tasks:   uniformTasks(10, 1<<40),
		MaxTime: time.Second,
	})
	if err == nil {
		t.Fatal("impossible scenario did not error")
	}
}

func TestTraceRecordsTimeline(t *testing.T) {
	stats, err := Run(Config{
		Devices: homogeneous(2, 1, 100),
		Tasks:   uniformTasks(4, 10_000_000),
		Trace:   true,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[TraceKind]int{}
	for _, e := range stats.Trace {
		counts[e.Kind]++
	}
	if counts[TraceArrival] != 4 || counts[TraceFinal] != 4 {
		t.Fatalf("arrivals/finals = %d/%d, want 4/4", counts[TraceArrival], counts[TraceFinal])
	}
	if counts[TraceLaunch] != stats.Attempts || counts[TraceComplete] != stats.Attempts {
		t.Fatalf("launch/complete = %d/%d, attempts = %d",
			counts[TraceLaunch], counts[TraceComplete], stats.Attempts)
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(stats.Trace); i++ {
		if stats.Trace[i].At < stats.Trace[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
	}
	// Every attempt launches before it completes.
	launched := map[int]time.Duration{}
	for _, e := range stats.Trace {
		switch e.Kind {
		case TraceLaunch:
			launched[e.Attempt] = e.At
		case TraceComplete:
			at, ok := launched[e.Attempt]
			if !ok || e.At < at {
				t.Fatalf("attempt %d completed before launch", e.Attempt)
			}
		}
	}
	out := Timeline(stats.Trace)
	if !strings.Contains(out, "launch") || !strings.Contains(out, "final") {
		t.Fatalf("timeline rendering:\n%s", out)
	}
}

func TestTraceRecordsChurnEvents(t *testing.T) {
	stats, err := Run(Config{
		Devices: []DeviceSpec{
			{Class: core.ClassDesktop, Slots: 1, MTBF: 3 * time.Second, MTTR: time.Second},
			{Class: core.ClassDesktop, Slots: 1},
		},
		Tasks:       uniformTasks(50, 100_000_000),
		DetectDelay: 500 * time.Millisecond,
		Trace:       true,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fails, recovers, losses int
	for _, e := range stats.Trace {
		switch e.Kind {
		case TraceDeviceFail:
			fails++
		case TraceDeviceRecover:
			recovers++
		case TraceLost:
			losses++
		}
	}
	if fails == 0 {
		t.Fatal("churny run recorded no device failures")
	}
	if losses != stats.LostAttempts {
		t.Fatalf("trace losses %d != stats %d", losses, stats.LostAttempts)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	stats, err := Run(Config{
		Devices: homogeneous(1, 1, 100),
		Tasks:   uniformTasks(2, 1000),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Trace) != 0 {
		t.Fatal("trace recorded without Config.Trace")
	}
}
