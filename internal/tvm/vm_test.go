package tvm

import (
	"math"
	"strings"
	"testing"
)

// prog1 builds a single-function program for opcode-level tests.
func prog1(params, locals int, consts []Value, code ...Instr) *Program {
	return &Program{
		Consts: consts,
		Funcs:  []FuncProto{{Name: "main", NumParams: params, NumLocals: locals, Code: code}},
	}
}

// run executes a single-function program and returns the result.
func run(t *testing.T, p *Program, params ...Value) *Result {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := New(p, DefaultConfig()).Run(params...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// runFault executes a program expecting a fault with the given code.
func runFault(t *testing.T, p *Program, want FaultCode, params ...Value) *Fault {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	_, err := New(p, DefaultConfig()).Run(params...)
	if err == nil {
		t.Fatalf("expected %s fault, got success", want)
	}
	f, ok := AsFault(err)
	if !ok {
		t.Fatalf("error is not a Fault: %v", err)
	}
	if f.Code != want {
		t.Fatalf("fault code = %s, want %s (%v)", f.Code, want, err)
	}
	return f
}

func TestArithmeticInt(t *testing.T) {
	tests := []struct {
		name string
		op   Op
		a, b int64
		want int64
	}{
		{"add", OpAdd, 7, 5, 12},
		{"sub", OpSub, 7, 5, 2},
		{"mul", OpMul, 7, 5, 35},
		{"div", OpDiv, 7, 5, 1},
		{"div-neg", OpDiv, -7, 2, -3},
		{"mod", OpMod, 7, 5, 2},
		{"mod-neg", OpMod, -7, 5, -2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := prog1(0, 0, []Value{Int(tc.a), Int(tc.b)},
				Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{tc.op, 0}, Instr{OpReturn, 0})
			res := run(t, p)
			if res.Return.Kind != KindInt || res.Return.I != tc.want {
				t.Fatalf("%d %s %d = %s, want %d", tc.a, tc.op, tc.b, res.Return, tc.want)
			}
		})
	}
}

func TestArithmeticFloatPromotion(t *testing.T) {
	// int + float promotes to float.
	p := prog1(0, 0, []Value{Int(1), Float(2.5)},
		Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{OpAdd, 0}, Instr{OpReturn, 0})
	res := run(t, p)
	if res.Return.Kind != KindFloat || res.Return.F != 3.5 {
		t.Fatalf("1 + 2.5 = %s, want 3.5", res.Return)
	}
}

func TestFloatDivByZeroIsIEEE(t *testing.T) {
	p := prog1(0, 0, []Value{Float(1), Float(0)},
		Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{OpDiv, 0}, Instr{OpReturn, 0})
	res := run(t, p)
	if !math.IsInf(res.Return.F, 1) {
		t.Fatalf("1.0/0.0 = %s, want +Inf", res.Return)
	}
}

func TestStringConcat(t *testing.T) {
	p := prog1(0, 0, []Value{Str("foo"), Str("bar")},
		Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{OpAdd, 0}, Instr{OpReturn, 0})
	res := run(t, p)
	if res.Return.S != "foobar" {
		t.Fatalf("concat = %s", res.Return)
	}
}

func TestIntDivByZeroFaults(t *testing.T) {
	p := prog1(0, 0, []Value{Int(1), Int(0)},
		Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{OpDiv, 0}, Instr{OpReturn, 0})
	f := runFault(t, p, FaultDivByZero)
	if f.Func != "main" || f.PC != 2 {
		t.Fatalf("fault location = %s+%d, want main+2", f.Func, f.PC)
	}
}

func TestModByZeroFaults(t *testing.T) {
	p := prog1(0, 0, []Value{Int(1), Int(0)},
		Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{OpMod, 0}, Instr{OpReturn, 0})
	runFault(t, p, FaultDivByZero)
}

func TestTypeMismatchArith(t *testing.T) {
	p := prog1(0, 0, []Value{Str("x"), Int(1)},
		Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{OpMul, 0}, Instr{OpReturn, 0})
	runFault(t, p, FaultTypeMismatch)
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		op     Op
		a, b   Value
		want   bool
		expect bool // false => expect type fault
	}{
		{OpLt, Int(1), Int(2), true, true},
		{OpLe, Int(2), Int(2), true, true},
		{OpGt, Float(2.5), Int(2), true, true},
		{OpGe, Int(1), Float(1.5), false, true},
		{OpEq, Str("a"), Str("a"), true, true},
		{OpNe, Str("a"), Str("b"), true, true},
		{OpEq, Int(2), Float(2), true, true},   // numeric cross-kind equality
		{OpEq, Int(1), Str("1"), false, true},  // cross-kind is unequal, not a fault
		{OpLt, Str("a"), Str("b"), true, true}, // string ordering
		{OpLt, Int(1), Str("b"), false, false}, // ordering across kinds faults
	}
	for _, tc := range tests {
		p := prog1(0, 0, []Value{tc.a, tc.b},
			Instr{OpPushConst, 0}, Instr{OpPushConst, 1}, Instr{tc.op, 0}, Instr{OpReturn, 0})
		if !tc.expect {
			runFault(t, p, FaultTypeMismatch)
			continue
		}
		res := run(t, p)
		if res.Return.Kind != KindBool || res.Return.AsBool() != tc.want {
			t.Errorf("%s %s %s = %s, want %v", tc.a, tc.op, tc.b, res.Return, tc.want)
		}
	}
}

func TestNegAndNot(t *testing.T) {
	p := prog1(0, 0, []Value{Int(5)},
		Instr{OpPushConst, 0}, Instr{OpNeg, 0}, Instr{OpReturn, 0})
	if res := run(t, p); res.Return.I != -5 {
		t.Fatalf("neg = %s", res.Return)
	}
	p = prog1(0, 0, nil,
		Instr{OpPushTrue, 0}, Instr{OpNot, 0}, Instr{OpReturn, 0})
	if res := run(t, p); res.Return.AsBool() {
		t.Fatalf("!true should be false")
	}
}

func TestLocalsAndParams(t *testing.T) {
	// main(a, b) { c = a*10; return c + b }
	p := prog1(2, 3, nil,
		Instr{OpLoadLocal, 0},
		Instr{OpPushInt, 10},
		Instr{OpMul, 0},
		Instr{OpStoreLocal, 2},
		Instr{OpLoadLocal, 2},
		Instr{OpLoadLocal, 1},
		Instr{OpAdd, 0},
		Instr{OpReturn, 0},
	)
	res := run(t, p, Int(4), Int(3))
	if res.Return.I != 43 {
		t.Fatalf("result = %s, want 43", res.Return)
	}
}

func TestWrongParamCount(t *testing.T) {
	p := prog1(2, 2, nil, Instr{OpReturn0, 0})
	_, err := New(p, DefaultConfig()).Run(Int(1))
	if err == nil {
		t.Fatal("expected param-count error")
	}
}

func TestJumpLoop(t *testing.T) {
	// sum = 0; i = 0; while i < n { sum += i; i++ }; return sum
	p := prog1(1, 3, nil,
		Instr{OpPushInt, 0}, Instr{OpStoreLocal, 1}, // sum = 0
		Instr{OpPushInt, 0}, Instr{OpStoreLocal, 2}, // i = 0
		// loop head (pc 4)
		Instr{OpLoadLocal, 2}, Instr{OpLoadLocal, 0}, Instr{OpLt, 0},
		Instr{OpJumpIfFalse, 16},
		Instr{OpLoadLocal, 1}, Instr{OpLoadLocal, 2}, Instr{OpAdd, 0}, Instr{OpStoreLocal, 1},
		Instr{OpLoadLocal, 2}, Instr{OpPushInt, 1}, Instr{OpAdd, 0}, Instr{OpStoreLocal, 2},
		// (pc 16 target below)
	)
	p.Funcs[0].Code = append(p.Funcs[0].Code[:16],
		Instr{OpLoadLocal, 1}, Instr{OpReturn, 0})
	// fix the loop-back jump: insert before return (we appended at 16, so
	// jump back to 4 must be at pc 16; rebuild properly instead)
	code := p.Funcs[0].Code[:16]
	code = append(code, Instr{OpJump, 4})
	code = append(code, Instr{OpLoadLocal, 1}, Instr{OpReturn, 0})
	// Now the JumpIfFalse target must be 17 (the load after jump-back).
	code[7] = Instr{OpJumpIfFalse, 17}
	p.Funcs[0].Code = code

	res := run(t, p, Int(10))
	if res.Return.I != 45 {
		t.Fatalf("sum 0..9 = %s, want 45", res.Return)
	}
}

func TestFunctionCall(t *testing.T) {
	// add3(x) { return x + 3 }  main(a) { return add3(a) * 2 }
	p := &Program{
		Funcs: []FuncProto{
			{Name: "main", NumParams: 1, NumLocals: 1, Code: []Instr{
				{OpLoadLocal, 0},
				{OpCall, 1},
				{OpPushInt, 2},
				{OpMul, 0},
				{OpReturn, 0},
			}},
			{Name: "add3", NumParams: 1, NumLocals: 1, Code: []Instr{
				{OpLoadLocal, 0},
				{OpPushInt, 3},
				{OpAdd, 0},
				{OpReturn, 0},
			}},
		},
		Entry: 0,
	}
	res := run(t, p, Int(5))
	if res.Return.I != 16 {
		t.Fatalf("main(5) = %s, want 16", res.Return)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	// fib(n) { if n < 2 return n; return fib(n-1) + fib(n-2) }
	p := &Program{
		Funcs: []FuncProto{
			{Name: "fib", NumParams: 1, NumLocals: 1, Code: []Instr{
				{OpLoadLocal, 0}, {OpPushInt, 2}, {OpLt, 0},
				{OpJumpIfFalse, 6},
				{OpLoadLocal, 0}, {OpReturn, 0},
				{OpLoadLocal, 0}, {OpPushInt, 1}, {OpSub, 0}, {OpCall, 0},
				{OpLoadLocal, 0}, {OpPushInt, 2}, {OpSub, 0}, {OpCall, 0},
				{OpAdd, 0}, {OpReturn, 0},
			}},
		},
	}
	res := run(t, p, Int(15))
	if res.Return.I != 610 {
		t.Fatalf("fib(15) = %s, want 610", res.Return)
	}
}

func TestInfiniteRecursionFaults(t *testing.T) {
	p := &Program{
		Funcs: []FuncProto{{Name: "loop", NumParams: 0, NumLocals: 0, Code: []Instr{
			{OpCall, 0}, {OpReturn0, 0},
		}}},
	}
	runFault(t, p, FaultStackOverflow)
}

func TestOutOfFuel(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpJump, 0}) // spin forever
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Fuel = 1000
	_, err := New(p, cfg).Run()
	f, ok := AsFault(err)
	if !ok || f.Code != FaultOutOfFuel {
		t.Fatalf("want out_of_fuel, got %v", err)
	}
}

func TestFuelAccounting(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpPushInt, 1}, Instr{OpPushInt, 2}, Instr{OpAdd, 0}, Instr{OpReturn, 0})
	res := run(t, p)
	if res.FuelUsed != 4 {
		t.Fatalf("fuel used = %d, want 4", res.FuelUsed)
	}
}

func TestArrays(t *testing.T) {
	// a = [10, 20, 30]; a[1] = 5; return a[0] + a[1] + len(a)
	p := prog1(0, 1, nil,
		Instr{OpPushInt, 10}, Instr{OpPushInt, 20}, Instr{OpPushInt, 30},
		Instr{OpNewArray, 3}, Instr{OpStoreLocal, 0},
		Instr{OpLoadLocal, 0}, Instr{OpPushInt, 1}, Instr{OpPushInt, 5}, Instr{OpSetIndex, 0},
		Instr{OpLoadLocal, 0}, Instr{OpPushInt, 0}, Instr{OpIndex, 0},
		Instr{OpLoadLocal, 0}, Instr{OpPushInt, 1}, Instr{OpIndex, 0},
		Instr{OpAdd, 0},
		Instr{OpLoadLocal, 0}, Instr{OpLen, 0},
		Instr{OpAdd, 0},
		Instr{OpReturn, 0},
	)
	res := run(t, p)
	if res.Return.I != 18 {
		t.Fatalf("result = %s, want 18", res.Return)
	}
}

func TestArrayIndexOutOfRange(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpPushInt, 1}, Instr{OpNewArray, 1},
		Instr{OpPushInt, 5}, Instr{OpIndex, 0}, Instr{OpReturn, 0})
	runFault(t, p, FaultIndexRange)
}

func TestNegativeIndexFaults(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpPushInt, 1}, Instr{OpNewArray, 1},
		Instr{OpPushInt, -1}, Instr{OpIndex, 0}, Instr{OpReturn, 0})
	runFault(t, p, FaultIndexRange)
}

func TestStringIndexYieldsByte(t *testing.T) {
	p := prog1(0, 0, []Value{Str("AB")},
		Instr{OpPushConst, 0}, Instr{OpPushInt, 1}, Instr{OpIndex, 0}, Instr{OpReturn, 0})
	res := run(t, p)
	if res.Return.I != 'B' {
		t.Fatalf("\"AB\"[1] = %s, want %d", res.Return, 'B')
	}
}

func TestAppendGrowsSharedArray(t *testing.T) {
	// Arrays are reference values: append mutates in place.
	p := prog1(0, 2, nil,
		Instr{OpNewArray, 0}, Instr{OpStoreLocal, 0},
		Instr{OpLoadLocal, 0}, Instr{OpStoreLocal, 1}, // alias
		Instr{OpLoadLocal, 0}, Instr{OpPushInt, 42}, Instr{OpAppend, 0}, Instr{OpPop, 0},
		Instr{OpLoadLocal, 1}, Instr{OpLen, 0}, Instr{OpReturn, 0},
	)
	res := run(t, p)
	if res.Return.I != 1 {
		t.Fatalf("alias len = %s, want 1", res.Return)
	}
}

func TestHeapLimit(t *testing.T) {
	// Loop appending forever must trip the heap limit, not OOM the host.
	p := prog1(0, 1, nil,
		Instr{OpNewArray, 0}, Instr{OpStoreLocal, 0},
		Instr{OpLoadLocal, 0}, Instr{OpPushInt, 1}, Instr{OpAppend, 0}, Instr{OpPop, 0},
		Instr{OpJump, 2},
	)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxHeap = 100
	_, err := New(p, cfg).Run()
	f, ok := AsFault(err)
	if !ok || f.Code != FaultOutOfMemory {
		t.Fatalf("want out_of_memory, got %v", err)
	}
}

func TestOperandStackLimit(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpPushInt, 1}, Instr{OpJump, 0})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxStack = 64
	_, err := New(p, cfg).Run()
	f, ok := AsFault(err)
	if !ok || f.Code != FaultStackOverflow {
		t.Fatalf("want stack_overflow, got %v", err)
	}
}

func TestFallOffEndReturnsNil(t *testing.T) {
	p := prog1(0, 0, nil, Instr{OpNop, 0})
	res := run(t, p)
	if !res.Return.IsNil() {
		t.Fatalf("implicit return = %s, want nil", res.Return)
	}
}

func TestEmitCollectsResults(t *testing.T) {
	p := prog1(0, 0, []Value{Str("x")},
		Instr{OpPushInt, 1}, Instr{OpCallB, int32(BEmit)<<8 | 1}, Instr{OpPop, 0},
		Instr{OpPushConst, 0}, Instr{OpCallB, int32(BEmit)<<8 | 1}, Instr{OpPop, 0},
		Instr{OpReturn0, 0},
	)
	res := run(t, p)
	if len(res.Emitted) != 2 || res.Emitted[0].I != 1 || res.Emitted[1].S != "x" {
		t.Fatalf("emitted = %v", res.Emitted)
	}
}

func TestDeterministicRand(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpCallB, int32(BRand)<<8 | 0}, Instr{OpReturn, 0})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 42
	r1, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Return.F != r2.Return.F {
		t.Fatalf("same seed produced different rand: %v vs %v", r1.Return.F, r2.Return.F)
	}
	if r1.Return.F < 0 || r1.Return.F >= 1 {
		t.Fatalf("rand out of [0,1): %v", r1.Return.F)
	}
	cfg.Seed = 43
	r3, err := New(p, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r3.Return.F == r1.Return.F {
		t.Fatalf("different seeds produced identical rand")
	}
}

func TestResultHashStableAcrossRuns(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpPushInt, 7}, Instr{OpCallB, int32(BEmit)<<8 | 1}, Instr{OpPop, 0},
		Instr{OpPushInt, 9}, Instr{OpReturn, 0})
	r1 := run(t, p)
	r2 := run(t, p)
	if r1.Hash() != r2.Hash() {
		t.Fatal("hashes of identical runs differ")
	}
}

func TestUserAbort(t *testing.T) {
	p := prog1(0, 0, []Value{Str("boom")},
		Instr{OpPushConst, 0}, Instr{OpCallB, int32(BAbort)<<8 | 1}, Instr{OpReturn0, 0})
	f := runFault(t, p, FaultUserAbort)
	if !strings.Contains(f.Msg, "boom") {
		t.Fatalf("abort message lost: %v", f)
	}
}

func TestExecuteRejectsNilAndInvalid(t *testing.T) {
	if _, err := Execute(nil, DefaultConfig()); err == nil {
		t.Fatal("nil program accepted")
	}
	bad := prog1(0, 0, nil, Instr{OpPushConst, 99})
	if _, err := Execute(bad, DefaultConfig()); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestValueStringRendering(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Nil(), "nil"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Str("a\"b"), `"a\"b"`},
		{Arr(Int(1), Str("x")), `[1, "x"]`},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.v.Kind, got, tc.want)
		}
	}
}

func TestValueCloneIsDeep(t *testing.T) {
	orig := Arr(Arr(Int(1)), Int(2))
	clone := orig.Clone()
	clone.A.Elems[0].A.Elems[0] = Int(99)
	if orig.A.Elems[0].A.Elems[0].I != 1 {
		t.Fatal("clone shares nested storage with original")
	}
}

func TestValueEqual(t *testing.T) {
	if !Arr(Int(1), Str("a")).Equal(Arr(Int(1), Str("a"))) {
		t.Fatal("equal arrays not Equal")
	}
	if Arr(Int(1)).Equal(Arr(Int(2))) {
		t.Fatal("unequal arrays Equal")
	}
	if Int(1).Equal(Float(1)) {
		t.Fatal("Equal must be kind-sensitive (voting depends on it)")
	}
	nan := Float(math.NaN())
	if !nan.Equal(nan) {
		t.Fatal("NaN should equal NaN for voting purposes")
	}
}
