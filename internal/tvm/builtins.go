package tvm

import (
	"math"
	"strconv"
	"strings"
)

// Builtin identifies a host function callable from bytecode via OpCallB.
// IDs are part of the wire format; append only.
type Builtin uint16

// Builtin IDs.
const (
	BSqrt Builtin = iota + 1
	BPow
	BAbs
	BFloor
	BCeil
	BMin
	BMax
	BSin
	BCos
	BLog
	BExp
	BToInt
	BToFloat
	BToStr
	BOrd
	BChr
	BSubstr
	BSplit
	BLower
	BUpper
	BFind
	BRand
	BRandInt
	BEmit
	BPrint
	BAbort
	BParseInt
	BParseFloat
	BHash
)

// builtinSpec describes one builtin: its TCL-visible name, arity, and
// implementation.
type builtinSpec struct {
	name  string
	arity int
	fn    func(vm *VM, args []Value) (Value, *Fault)
}

// builtinTable is the single source of truth for builtins; the compiler
// resolves names against BuiltinByName, the VM dispatches through it, and
// Program.Validate checks OpCallB ids against it.
var builtinTable = map[Builtin]builtinSpec{
	BSqrt:  {"sqrt", 1, func(_ *VM, a []Value) (Value, *Fault) { return float1(a[0], math.Sqrt) }},
	BSin:   {"sin", 1, func(_ *VM, a []Value) (Value, *Fault) { return float1(a[0], math.Sin) }},
	BCos:   {"cos", 1, func(_ *VM, a []Value) (Value, *Fault) { return float1(a[0], math.Cos) }},
	BLog:   {"log", 1, func(_ *VM, a []Value) (Value, *Fault) { return float1(a[0], math.Log) }},
	BExp:   {"exp", 1, func(_ *VM, a []Value) (Value, *Fault) { return float1(a[0], math.Exp) }},
	BFloor: {"floor", 1, func(_ *VM, a []Value) (Value, *Fault) { return float1(a[0], math.Floor) }},
	BCeil:  {"ceil", 1, func(_ *VM, a []Value) (Value, *Fault) { return float1(a[0], math.Ceil) }},
	BPow: {"pow", 2, func(_ *VM, a []Value) (Value, *Fault) {
		x, y := a[0], a[1]
		if !isNum(x) || !isNum(y) {
			return Value{}, newFault(FaultTypeMismatch, "pow wants numbers, got %s, %s", x.Kind, y.Kind)
		}
		return Float(math.Pow(x.AsFloat(), y.AsFloat())), nil
	}},
	BAbs: {"abs", 1, func(_ *VM, a []Value) (Value, *Fault) {
		switch a[0].Kind {
		case KindInt:
			v := a[0].I
			if v < 0 {
				v = -v
			}
			return Int(v), nil
		case KindFloat:
			return Float(math.Abs(a[0].F)), nil
		}
		return Value{}, newFault(FaultTypeMismatch, "abs wants a number, got %s", a[0].Kind)
	}},
	BMin: {"min", 2, func(_ *VM, a []Value) (Value, *Fault) { return minmax(a[0], a[1], true) }},
	BMax: {"max", 2, func(_ *VM, a []Value) (Value, *Fault) { return minmax(a[0], a[1], false) }},
	BToInt: {"int", 1, func(_ *VM, a []Value) (Value, *Fault) {
		switch a[0].Kind {
		case KindInt:
			return a[0], nil
		case KindFloat:
			return Int(int64(a[0].F)), nil
		case KindBool:
			return Int(a[0].I), nil
		}
		return Value{}, newFault(FaultTypeMismatch, "int() cannot convert %s", a[0].Kind)
	}},
	BToFloat: {"float", 1, func(_ *VM, a []Value) (Value, *Fault) {
		switch a[0].Kind {
		case KindInt:
			return Float(float64(a[0].I)), nil
		case KindFloat:
			return a[0], nil
		}
		return Value{}, newFault(FaultTypeMismatch, "float() cannot convert %s", a[0].Kind)
	}},
	BToStr: {"str", 1, func(_ *VM, a []Value) (Value, *Fault) {
		if a[0].Kind == KindStr {
			return a[0], nil
		}
		return Str(a[0].String()), nil
	}},
	BOrd: {"ord", 1, func(_ *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindStr || len(a[0].S) == 0 {
			return Value{}, newFault(FaultTypeMismatch, "ord wants a non-empty str")
		}
		return Int(int64(a[0].S[0])), nil
	}},
	BChr: {"chr", 1, func(_ *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindInt || a[0].I < 0 || a[0].I > 255 {
			return Value{}, newFault(FaultTypeMismatch, "chr wants an int in [0,255]")
		}
		return Str(string([]byte{byte(a[0].I)})), nil
	}},
	BSubstr: {"substr", 3, func(_ *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindStr || a[1].Kind != KindInt || a[2].Kind != KindInt {
			return Value{}, newFault(FaultTypeMismatch, "substr wants (str, int, int)")
		}
		s, lo, hi := a[0].S, a[1].I, a[2].I
		if lo < 0 || hi < lo || hi > int64(len(s)) {
			return Value{}, newFault(FaultIndexRange, "substr bounds [%d:%d] on len %d", lo, hi, len(s))
		}
		return Str(s[lo:hi]), nil
	}},
	BSplit: {"split", 2, func(vm *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindStr || a[1].Kind != KindStr {
			return Value{}, newFault(FaultTypeMismatch, "split wants (str, str)")
		}
		var parts []string
		if a[1].S == "" {
			parts = strings.Fields(a[0].S)
		} else {
			parts = strings.Split(a[0].S, a[1].S)
		}
		if f := vm.alloc(len(parts)); f != nil {
			return Value{}, f
		}
		elems := make([]Value, len(parts))
		for i, p := range parts {
			elems[i] = Str(p)
		}
		return Value{Kind: KindArr, A: &Array{Elems: elems}}, nil
	}},
	BLower: {"lower", 1, func(_ *VM, a []Value) (Value, *Fault) { return strCase(a[0], strings.ToLower) }},
	BUpper: {"upper", 1, func(_ *VM, a []Value) (Value, *Fault) { return strCase(a[0], strings.ToUpper) }},
	BFind: {"find", 2, func(_ *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindStr || a[1].Kind != KindStr {
			return Value{}, newFault(FaultTypeMismatch, "find wants (str, str)")
		}
		return Int(int64(strings.Index(a[0].S, a[1].S))), nil
	}},
	BRand: {"rand", 0, func(vm *VM, _ []Value) (Value, *Fault) {
		// 53 random mantissa bits, uniform in [0, 1).
		return Float(float64(vm.nextRand()>>11) / (1 << 53)), nil
	}},
	BRandInt: {"randint", 1, func(vm *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindInt || a[0].I <= 0 {
			return Value{}, newFault(FaultTypeMismatch, "randint wants a positive int")
		}
		return Int(int64(vm.nextRand() % uint64(a[0].I))), nil
	}},
	BEmit: {"emit", 1, func(vm *VM, a []Value) (Value, *Fault) {
		if len(vm.emitted) >= vm.cfg.MaxEmit {
			return Value{}, newFault(FaultOutOfMemory, "emit limit %d exceeded", vm.cfg.MaxEmit)
		}
		vm.emitted = append(vm.emitted, a[0].Clone())
		return Nil(), nil
	}},
	BPrint: {"print", 1, func(vm *VM, a []Value) (Value, *Fault) {
		if len(vm.printed) < vm.cfg.MaxPrint {
			s := a[0].S
			if a[0].Kind != KindStr {
				s = a[0].String()
			}
			vm.printed = append(vm.printed, s)
		}
		return Nil(), nil
	}},
	BAbort: {"abort", 1, func(_ *VM, a []Value) (Value, *Fault) {
		msg := a[0].S
		if a[0].Kind != KindStr {
			msg = a[0].String()
		}
		return Value{}, newFault(FaultUserAbort, "%s", msg)
	}},
	BParseInt: {"parseint", 1, func(_ *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindStr {
			return Value{}, newFault(FaultTypeMismatch, "parseint wants a str")
		}
		n, err := strconv.ParseInt(strings.TrimSpace(a[0].S), 10, 64)
		if err != nil {
			return Value{}, newFault(FaultTypeMismatch, "parseint: %q is not an int", a[0].S)
		}
		return Int(n), nil
	}},
	BParseFloat: {"parsefloat", 1, func(_ *VM, a []Value) (Value, *Fault) {
		if a[0].Kind != KindStr {
			return Value{}, newFault(FaultTypeMismatch, "parsefloat wants a str")
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(a[0].S), 64)
		if err != nil {
			return Value{}, newFault(FaultTypeMismatch, "parsefloat: %q is not a float", a[0].S)
		}
		return Float(f), nil
	}},
	BHash: {"hash", 1, func(_ *VM, a []Value) (Value, *Fault) {
		return Int(int64(HashValue(a[0]))), nil
	}},
}

// builtinsByName maps TCL names to IDs, derived from builtinTable.
var builtinsByName = func() map[string]Builtin {
	m := make(map[string]Builtin, len(builtinTable))
	for id, spec := range builtinTable {
		m[spec.name] = id
	}
	return m
}()

// String returns the TCL-visible name of the builtin.
func (b Builtin) String() string {
	if spec, ok := builtinTable[b]; ok {
		return spec.name
	}
	return "builtin(" + strconv.Itoa(int(b)) + ")"
}

// BuiltinByName resolves a TCL builtin name. Used by the compiler.
func BuiltinByName(name string) (Builtin, bool) {
	b, ok := builtinsByName[name]
	return b, ok
}

// BuiltinArity returns the declared arity of a builtin.
func BuiltinArity(b Builtin) (int, bool) {
	spec, ok := builtinTable[b]
	if !ok {
		return 0, false
	}
	return spec.arity, true
}

// BuiltinNames returns all TCL builtin names (unordered). Used by docs and
// compiler tests.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtinTable))
	for _, spec := range builtinTable {
		names = append(names, spec.name)
	}
	return names
}

func float1(v Value, f func(float64) float64) (Value, *Fault) {
	if !isNum(v) {
		return Value{}, newFault(FaultTypeMismatch, "math builtin wants a number, got %s", v.Kind)
	}
	return Float(f(v.AsFloat())), nil
}

func strCase(v Value, f func(string) string) (Value, *Fault) {
	if v.Kind != KindStr {
		return Value{}, newFault(FaultTypeMismatch, "string builtin wants a str, got %s", v.Kind)
	}
	return Str(f(v.S)), nil
}

func isNum(v Value) bool { return v.Kind == KindInt || v.Kind == KindFloat }

func minmax(a, b Value, min bool) (Value, *Fault) {
	if !isNum(a) || !isNum(b) {
		return Value{}, newFault(FaultTypeMismatch, "min/max want numbers, got %s, %s", a.Kind, b.Kind)
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		if (a.I < b.I) == min {
			return a, nil
		}
		return b, nil
	}
	if (a.AsFloat() < b.AsFloat()) == min {
		return a, nil
	}
	return b, nil
}

// HashValue computes a deterministic 64-bit FNV-1a style hash over a value's
// structure. The QoC engine uses it to compare results from redundant
// executions without shipping full results between graders.
func HashValue(v Value) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime }
	mix64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(x >> (8 * i)))
		}
	}
	var walk func(v Value)
	walk = func(v Value) {
		mix(byte(v.Kind))
		switch v.Kind {
		case KindInt, KindBool:
			mix64(uint64(v.I))
		case KindFloat:
			mix64(math.Float64bits(v.F))
		case KindStr:
			mix64(uint64(len(v.S)))
			for i := 0; i < len(v.S); i++ {
				mix(v.S[i])
			}
		case KindArr:
			mix64(uint64(len(v.A.Elems)))
			for _, e := range v.A.Elems {
				walk(e)
			}
		}
	}
	walk(v)
	return h
}

// HashValues hashes a sequence of values, order-sensitively.
func HashValues(vs []Value) uint64 {
	h := uint64(17)
	for _, v := range vs {
		h = h*31 + HashValue(v)
	}
	return h
}
