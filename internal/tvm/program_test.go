package tvm

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	return &Program{
		Consts: []Value{Int(42), Float(3.25), Str("hello"), Bool(true)},
		Funcs: []FuncProto{
			{Name: "main", NumParams: 2, NumLocals: 4, Code: []Instr{
				{OpPushConst, 0}, {OpLoadLocal, 1}, {OpAdd, 0},
				{OpCall, 1}, {OpReturn, 0},
			}},
			{Name: "helper", NumParams: 1, NumLocals: 2, Code: []Instr{
				{OpLoadLocal, 0}, {OpPushInt, -7}, {OpMul, 0},
				{OpCallB, int32(BSqrt)<<8 | 1}, {OpReturn, 0},
			}},
		},
		Entry: 0,
	}
}

func TestProgramMarshalRoundTrip(t *testing.T) {
	p := sampleProgram()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*p, q) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p.Disassemble(), q.Disassemble())
	}
}

func TestProgramUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE1234"),
		"truncated": func() []byte {
			d, _ := sampleProgram().MarshalBinary()
			return d[:len(d)-3]
		}(),
		"trailing": func() []byte {
			d, _ := sampleProgram().MarshalBinary()
			return append(d, 0xff)
		}(),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var p Program
			if err := p.UnmarshalBinary(data); err == nil {
				t.Fatal("accepted malformed program")
			}
		})
	}
}

func TestProgramUnmarshalRejectsHugeCounts(t *testing.T) {
	// A tiny buffer claiming 2^31 constants must be rejected without a
	// giant allocation.
	data := []byte(programMagic)
	data = append(data, 0x7f, 0xff, 0xff, 0xff)
	var p Program
	if err := p.UnmarshalBinary(data); err == nil {
		t.Fatal("accepted program with absurd constant count")
	}
}

func TestValidateCatchesBadIndices(t *testing.T) {
	cases := map[string]*Program{
		"no funcs":    {},
		"bad entry":   {Funcs: []FuncProto{{Name: "f"}}, Entry: 5},
		"bad const":   prog1(0, 0, nil, Instr{OpPushConst, 0}),
		"bad local":   prog1(0, 1, nil, Instr{OpLoadLocal, 3}),
		"bad jump":    prog1(0, 0, nil, Instr{OpJump, 9}),
		"bad call":    prog1(0, 0, nil, Instr{OpCall, 2}),
		"bad builtin": prog1(0, 0, nil, Instr{OpCallB, int32(9999) << 8}),
		"neg arr":     prog1(0, 0, nil, Instr{OpNewArray, -1}),
		"locals < params": {Funcs: []FuncProto{
			{Name: "f", NumParams: 3, NumLocals: 1}}},
		"arr const": {Consts: []Value{Arr(Int(1))},
			Funcs: []FuncProto{{Name: "f"}}},
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			if err := p.Validate(); err == nil {
				t.Fatal("invalid program passed Validate")
			}
		})
	}
}

func TestDisassembleContainsMnemonics(t *testing.T) {
	out := sampleProgram().Disassemble()
	for _, want := range []string{"func main/2", "(entry)", "pushc 0", "callb sqrt/1", "func helper/1"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

// randomValue builds an arbitrary scalar-or-array value of bounded depth.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(6)
	if depth <= 0 && k == 5 {
		k = r.Intn(5)
	}
	switch k {
	case 0:
		return Nil()
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64() * 1e6)
	case 3:
		return Bool(r.Intn(2) == 0)
	case 4:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		return Str(string(b))
	default:
		n := r.Intn(5)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return Value{Kind: KindArr, A: &Array{Elems: elems}}
	}
}

// Property: every value survives an encode/decode round trip.
func TestValueCodecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 3)
		data, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("encode %s: %v", v, err)
		}
		got, n, err := DecodeValue(data)
		if err != nil {
			t.Fatalf("decode %s: %v", v, err)
		}
		if n != len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %s -> %s", v, got)
		}
	}
}

// Property: DecodeValue never panics or over-reads on arbitrary input.
func TestDecodeValueRobustProperty(t *testing.T) {
	f := func(data []byte) bool {
		v, n, err := DecodeValue(data)
		if err != nil {
			return true
		}
		_ = v.String() // must not panic
		return n <= len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: hash equality follows value equality for random values, and
// mutation changes the hash with overwhelming probability.
func TestHashValueProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		v := randomValue(r, 3)
		if HashValue(v) != HashValue(v.Clone()) {
			t.Fatalf("clone hash differs for %s", v)
		}
	}
	if HashValue(Int(1)) == HashValue(Int(2)) {
		t.Fatal("distinct ints hash equal")
	}
	if HashValue(Int(0)) == HashValue(Float(0)) {
		t.Fatal("hash must be kind-sensitive")
	}
	if HashValues([]Value{Int(1), Int(2)}) == HashValues([]Value{Int(2), Int(1)}) {
		t.Fatal("hash must be order-sensitive")
	}
}

// Property: programs with random (valid) const pools round trip.
func TestProgramRoundTripRandomConsts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		n := r.Intn(10)
		consts := make([]Value, n)
		for j := range consts {
			// Constant pool allows only scalars.
			switch r.Intn(4) {
			case 0:
				consts[j] = Int(r.Int63())
			case 1:
				consts[j] = Float(math.Float64frombits(r.Uint64()))
				if f := consts[j].F; math.IsNaN(f) {
					consts[j] = Float(0)
				}
			case 2:
				consts[j] = Bool(r.Intn(2) == 0)
			default:
				consts[j] = Str(string(rune('a' + r.Intn(26))))
			}
		}
		p := prog1(0, 0, consts, Instr{OpReturn0, 0})
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var q Program
		if err := q.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		d2, err := q.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, d2) {
			t.Fatal("re-marshal not byte-identical")
		}
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{OpAdd, 0}, "add"},
		{Instr{OpPushInt, 5}, "pushi 5"},
		{Instr{OpCallB, int32(BEmit)<<8 | 1}, "callb emit/1"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("Instr.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindArr.String() != "arr" || Kind(99).String() != "kind(99)" {
		t.Fatal("Kind.String misbehaves")
	}
}

func TestValidateBoundsFrameSizes(t *testing.T) {
	// Unbounded locals/params are an OOM vector (found by fuzzing): a
	// hostile program could demand a multi-gigabyte frame allocation.
	huge := &Program{Funcs: []FuncProto{
		{Name: "f", NumParams: 0, NumLocals: 1 << 30},
	}}
	if err := huge.Validate(); err == nil {
		t.Fatal("program with 2^30 locals accepted")
	}
	manyParams := &Program{Funcs: []FuncProto{
		{Name: "f", NumParams: MaxParams + 1, NumLocals: MaxParams + 1},
	}}
	if err := manyParams.Validate(); err == nil {
		t.Fatal("program with excess params accepted")
	}
	atLimit := &Program{Funcs: []FuncProto{
		{Name: "f", NumParams: MaxParams, NumLocals: MaxLocals},
	}}
	if err := atLimit.Validate(); err != nil {
		t.Fatalf("program at the limits rejected: %v", err)
	}
}
