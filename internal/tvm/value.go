// Package tvm implements the Tasklet Virtual Machine: a sandboxed,
// deterministic, stack-based bytecode interpreter that provides the common
// execution environment the Tasklet middleware uses to overcome platform
// heterogeneity. The same Program runs identically on every provider.
//
// The VM is deliberately small: four scalar kinds (int, float, bool, string)
// plus arrays, a flat function table, and a fuel meter that bounds execution.
// All runtime errors surface as *Fault values, never as panics.
package tvm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// Value kinds.
const (
	KindNil Kind = iota
	KindInt
	KindFloat
	KindBool
	KindStr
	KindArr
)

// String returns the lower-case name of the kind as used in diagnostics and
// the TCL type system.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindStr:
		return "str"
	case KindArr:
		return "arr"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Array is the reference-typed backing store for KindArr values. Two Values
// holding the same *Array alias the same elements, matching TCL semantics.
type Array struct {
	Elems []Value
}

// Value is the VM's tagged union. The zero value is the nil value.
//
// Values are small (word-sized payloads); arrays are held by pointer so
// copying a Value never copies element storage.
type Value struct {
	Kind Kind
	I    int64   // payload for KindInt and KindBool (0/1)
	F    float64 // payload for KindFloat
	S    string  // payload for KindStr
	A    *Array  // payload for KindArr
}

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Int constructs an int value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float constructs a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Bool constructs a bool value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Str constructs a string value.
func Str(v string) Value { return Value{Kind: KindStr, S: v} }

// Arr constructs an array value holding the given elements. The slice is
// used directly (not copied).
func Arr(elems ...Value) Value { return Value{Kind: KindArr, A: &Array{Elems: elems}} }

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.Kind == KindNil }

// AsBool reports the truthiness of a bool value. It is only meaningful for
// KindBool.
func (v Value) AsBool() bool { return v.I != 0 }

// AsFloat returns the numeric payload widened to float64. Only meaningful
// for KindInt and KindFloat.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// Equal reports deep equality of two values. Arrays compare element-wise.
// Int and float compare equal only when both kind and numeric value match,
// keeping equality compatible with the hash used for QoC result voting.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNil:
		return true
	case KindInt, KindBool:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F || (math.IsNaN(v.F) && math.IsNaN(o.F))
	case KindStr:
		return v.S == o.S
	case KindArr:
		if len(v.A.Elems) != len(o.A.Elems) {
			return false
		}
		for i := range v.A.Elems {
			if !v.A.Elems[i].Equal(o.A.Elems[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// String renders the value in TCL literal syntax: 42, 3.5, true, "s",
// [1, 2, 3].
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindStr:
		return strconv.Quote(v.S)
	case KindArr:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range v.A.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
		return b.String()
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.Kind))
	}
}

// Clone returns a deep copy of the value; arrays are copied recursively.
// Used when a value crosses an isolation boundary (e.g. tasklet parameters
// shared by redundant executions).
func (v Value) Clone() Value {
	if v.Kind != KindArr {
		return v
	}
	elems := make([]Value, len(v.A.Elems))
	for i, e := range v.A.Elems {
		elems[i] = e.Clone()
	}
	return Value{Kind: KindArr, A: &Array{Elems: elems}}
}
