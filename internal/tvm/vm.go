package tvm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Config bounds a single tasklet execution. Limits exist because providers
// run untrusted bytecode: a tasklet cannot spin, recurse, allocate or emit
// beyond its budget. The zero value is not usable; call DefaultConfig.
type Config struct {
	Fuel     uint64 // total instruction budget (weighted by fuelCost)
	MaxStack int    // operand stack depth limit
	MaxCall  int    // call stack depth limit
	MaxHeap  int    // total array elements a run may allocate
	MaxEmit  int    // maximum number of emitted results
	MaxPrint int    // maximum retained print() lines
	Seed     uint64 // seed for the deterministic rand() builtin

	// Cancel, when non-nil, is polled periodically by the interpreter;
	// setting it aborts the run with a FaultCancelled fault. Providers use
	// this to stop tasklets on shutdown or job cancellation.
	Cancel *atomic.Bool
}

// DefaultConfig returns generous but finite limits suitable for the standard
// workloads: ~100M fuel executes a few seconds of work on a modern core.
func DefaultConfig() Config {
	return Config{
		Fuel:     100_000_000,
		MaxStack: 64 << 10,
		MaxCall:  1 << 10,
		MaxHeap:  8 << 20,
		MaxEmit:  1 << 16,
		MaxPrint: 256,
		Seed:     1,
	}
}

// Result is the outcome of a successful run.
type Result struct {
	Return   Value    // value returned by the entry function
	Emitted  []Value  // values the program passed to emit(), in order
	Printed  []string // debug log lines from print()
	FuelUsed uint64
}

// Hash returns a deterministic hash over the semantically relevant outputs
// (return value and emitted values, not the debug log). Redundant executions
// of a deterministic tasklet produce equal hashes.
func (r *Result) Hash() uint64 {
	return HashValues(append([]Value{r.Return}, r.Emitted...))
}

// frame is one activation record.
type frame struct {
	fn     *FuncProto
	pc     int
	locals []Value
	base   int // operand stack height at entry; restored on return
}

// VM executes one tasklet program. A VM is single-use and not safe for
// concurrent use; the enclosing provider runs one VM per slot goroutine.
type VM struct {
	prog    *Program
	cfg     Config
	stack   []Value
	frames  []frame
	fuel    uint64
	heap    int
	rng     uint64
	emitted []Value
	printed []string
}

// New creates a VM for prog under the given limits. The program must have
// been validated (Program.UnmarshalBinary validates; hand-built programs
// should call Validate explicitly).
func New(prog *Program, cfg Config) *VM {
	rng := cfg.Seed
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15 // splitmix-style non-zero default
	}
	return &VM{prog: prog, cfg: cfg, fuel: cfg.Fuel, rng: rng}
}

// nextRand advances the xorshift64* generator. Deterministic across
// platforms, which keeps redundant executions vote-compatible.
func (vm *VM) nextRand() uint64 {
	x := vm.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	vm.rng = x
	return x * 0x2545f4914f6cdd1d
}

// alloc charges n array elements against the heap budget.
func (vm *VM) alloc(n int) *Fault {
	vm.heap += n
	if vm.heap > vm.cfg.MaxHeap {
		return newFault(FaultOutOfMemory, "heap limit %d elements exceeded", vm.cfg.MaxHeap)
	}
	return nil
}

// Run executes the program's entry function with the given parameters.
// It returns a *Fault (as error) on any runtime fault; the fault carries the
// function name and pc where execution stopped.
func (vm *VM) Run(params ...Value) (*Result, error) {
	entry := vm.prog.EntryFunc()
	if len(params) != entry.NumParams {
		return nil, newFault(FaultBadProgram, "entry %s wants %d params, got %d",
			entry.Name, entry.NumParams, len(params))
	}
	locals := make([]Value, entry.NumLocals)
	for i, p := range params {
		locals[i] = p
	}
	vm.frames = append(vm.frames, frame{fn: entry, locals: locals})

	ret, fault := vm.loop()
	if fault != nil {
		return nil, fault
	}
	return &Result{
		Return:   ret,
		Emitted:  vm.emitted,
		Printed:  vm.printed,
		FuelUsed: vm.cfg.Fuel - vm.fuel,
	}, nil
}

// push grows the operand stack, enforcing the depth limit.
func (vm *VM) push(v Value) *Fault {
	if len(vm.stack) >= vm.cfg.MaxStack {
		return newFault(FaultStackOverflow, "operand stack limit %d exceeded", vm.cfg.MaxStack)
	}
	vm.stack = append(vm.stack, v)
	return nil
}

// pop removes and returns the top of the operand stack.
func (vm *VM) pop() (Value, *Fault) {
	if len(vm.stack) == 0 {
		return Value{}, newFault(FaultBadProgram, "pop from empty stack")
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v, nil
}

// loop is the interpreter core. It returns the entry function's return
// value, or a fault annotated with the faulting location.
func (vm *VM) loop() (Value, *Fault) {
	f := &vm.frames[len(vm.frames)-1]
	const cancelPollMask = 4095 // poll Cancel every 4096 iterations
	var steps uint64
	for {
		steps++
		if steps&cancelPollMask == 0 && vm.cfg.Cancel != nil && vm.cfg.Cancel.Load() {
			return Value{}, vm.annotate(newFault(FaultCancelled, "execution cancelled by host"), f)
		}
		if f.pc >= len(f.fn.Code) {
			// Falling off the end of a function returns nil.
			ret, fault := vm.unwind(Nil())
			if fault != nil {
				return Value{}, vm.annotate(fault, f)
			}
			if len(vm.frames) == 0 {
				return ret, nil
			}
			f = &vm.frames[len(vm.frames)-1]
			continue
		}
		in := f.fn.Code[f.pc]
		cost := fuelCost(in.Op)
		if vm.fuel < cost {
			return Value{}, vm.annotate(newFault(FaultOutOfFuel, "fuel budget %d exhausted", vm.cfg.Fuel), f)
		}
		vm.fuel -= cost
		f.pc++

		var fault *Fault
		switch in.Op {
		case OpNop:

		case OpPushConst:
			fault = vm.push(vm.prog.Consts[in.Arg])
		case OpPushInt:
			fault = vm.push(Int(int64(in.Arg)))
		case OpPushNil:
			fault = vm.push(Nil())
		case OpPushTrue:
			fault = vm.push(Bool(true))
		case OpPushFalse:
			fault = vm.push(Bool(false))
		case OpPop:
			_, fault = vm.pop()
		case OpDup:
			if len(vm.stack) == 0 {
				fault = newFault(FaultBadProgram, "dup on empty stack")
			} else {
				fault = vm.push(vm.stack[len(vm.stack)-1])
			}

		case OpLoadLocal:
			fault = vm.push(f.locals[in.Arg])
		case OpStoreLocal:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				f.locals[in.Arg] = v
			}

		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			fault = vm.binaryArith(in.Op)
		case OpNeg:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				switch v.Kind {
				case KindInt:
					fault = vm.push(Int(-v.I))
				case KindFloat:
					fault = vm.push(Float(-v.F))
				default:
					fault = newFault(FaultTypeMismatch, "neg wants a number, got %s", v.Kind)
				}
			}

		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			fault = vm.compare(in.Op)

		case OpNot:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				if v.Kind != KindBool {
					fault = newFault(FaultTypeMismatch, "not wants a bool, got %s", v.Kind)
				} else {
					fault = vm.push(Bool(v.I == 0))
				}
			}

		case OpJump:
			f.pc = int(in.Arg)
		case OpJumpIfFalse, OpJumpIfTrue:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				if v.Kind != KindBool {
					fault = newFault(FaultTypeMismatch, "branch wants a bool, got %s", v.Kind)
				} else if v.AsBool() == (in.Op == OpJumpIfTrue) {
					f.pc = int(in.Arg)
				}
			}

		case OpCall:
			if len(vm.frames) >= vm.cfg.MaxCall {
				fault = newFault(FaultStackOverflow, "call depth limit %d exceeded", vm.cfg.MaxCall)
				break
			}
			callee := &vm.prog.Funcs[in.Arg]
			if len(vm.stack) < callee.NumParams {
				fault = newFault(FaultBadProgram, "call %s: %d args on stack, want %d",
					callee.Name, len(vm.stack), callee.NumParams)
				break
			}
			locals := make([]Value, callee.NumLocals)
			base := len(vm.stack) - callee.NumParams
			copy(locals, vm.stack[base:])
			vm.stack = vm.stack[:base]
			vm.frames = append(vm.frames, frame{fn: callee, locals: locals, base: base})
			f = &vm.frames[len(vm.frames)-1]

		case OpCallB:
			id := Builtin(in.Arg >> 8)
			argc := int(in.Arg & 0xff)
			spec, ok := builtinTable[id]
			if !ok {
				fault = newFault(FaultBadBuiltin, "unknown builtin %d", int(id))
				break
			}
			if argc != spec.arity {
				fault = newFault(FaultBadBuiltin, "%s wants %d args, got %d", spec.name, spec.arity, argc)
				break
			}
			if len(vm.stack) < argc {
				fault = newFault(FaultBadProgram, "builtin %s: stack underflow", spec.name)
				break
			}
			args := vm.stack[len(vm.stack)-argc:]
			var ret Value
			ret, fault = spec.fn(vm, args)
			if fault == nil {
				vm.stack = vm.stack[:len(vm.stack)-argc]
				fault = vm.push(ret)
			}

		case OpReturn, OpReturn0:
			ret := Nil()
			if in.Op == OpReturn {
				if ret, fault = vm.pop(); fault != nil {
					break
				}
			}
			var done Value
			done, fault = vm.unwind(ret)
			if fault == nil && len(vm.frames) == 0 {
				return done, nil
			}
			if fault == nil {
				f = &vm.frames[len(vm.frames)-1]
			}

		case OpNewArray:
			n := int(in.Arg)
			if len(vm.stack) < n {
				fault = newFault(FaultBadProgram, "newarr %d: stack underflow", n)
				break
			}
			if fault = vm.alloc(n); fault != nil {
				break
			}
			elems := make([]Value, n)
			copy(elems, vm.stack[len(vm.stack)-n:])
			vm.stack = vm.stack[:len(vm.stack)-n]
			fault = vm.push(Value{Kind: KindArr, A: &Array{Elems: elems}})

		case OpIndex:
			fault = vm.index()
		case OpSetIndex:
			fault = vm.setIndex()
		case OpLen:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				switch v.Kind {
				case KindArr:
					fault = vm.push(Int(int64(len(v.A.Elems))))
				case KindStr:
					fault = vm.push(Int(int64(len(v.S))))
				default:
					fault = newFault(FaultTypeMismatch, "len wants arr or str, got %s", v.Kind)
				}
			}
		case OpAppend:
			var v, a Value
			if v, fault = vm.pop(); fault != nil {
				break
			}
			if a, fault = vm.pop(); fault != nil {
				break
			}
			if a.Kind != KindArr {
				fault = newFault(FaultTypeMismatch, "append wants an arr, got %s", a.Kind)
				break
			}
			if fault = vm.alloc(1); fault != nil {
				break
			}
			a.A.Elems = append(a.A.Elems, v)
			fault = vm.push(a)

		default:
			fault = newFault(FaultBadProgram, "illegal opcode %d", uint8(in.Op))
		}

		if fault != nil {
			// f.pc was already advanced; report the faulting instruction.
			fault.Func = f.fn.Name
			fault.PC = f.pc - 1
			return Value{}, fault
		}
	}
}

// unwind pops the current frame, truncates the operand stack to the frame's
// base, and pushes ret for the caller. When the last frame returns, ret is
// the program result and is returned via the first return value.
func (vm *VM) unwind(ret Value) (Value, *Fault) {
	fr := vm.frames[len(vm.frames)-1]
	vm.frames = vm.frames[:len(vm.frames)-1]
	vm.stack = vm.stack[:fr.base]
	if len(vm.frames) == 0 {
		return ret, nil
	}
	return Value{}, vm.push(ret)
}

func (vm *VM) annotate(f *Fault, fr *frame) *Fault {
	if f.Func == "" {
		f.Func = fr.fn.Name
		f.PC = fr.pc
	}
	return f
}

// binaryArith implements add/sub/mul/div/mod with int/float promotion and
// string concatenation for add.
func (vm *VM) binaryArith(op Op) *Fault {
	b, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	if op == OpAdd && a.Kind == KindStr && b.Kind == KindStr {
		return vm.push(Str(a.S + b.S))
	}
	if !isNum(a) || !isNum(b) {
		return newFault(FaultTypeMismatch, "%s wants numbers, got %s, %s", op, a.Kind, b.Kind)
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch op {
		case OpAdd:
			return vm.push(Int(a.I + b.I))
		case OpSub:
			return vm.push(Int(a.I - b.I))
		case OpMul:
			return vm.push(Int(a.I * b.I))
		case OpDiv:
			if b.I == 0 {
				return newFault(FaultDivByZero, "integer division by zero")
			}
			return vm.push(Int(a.I / b.I))
		case OpMod:
			if b.I == 0 {
				return newFault(FaultDivByZero, "modulo by zero")
			}
			return vm.push(Int(a.I % b.I))
		}
	}
	if op == OpMod {
		return newFault(FaultTypeMismatch, "mod wants ints, got %s, %s", a.Kind, b.Kind)
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case OpAdd:
		return vm.push(Float(x + y))
	case OpSub:
		return vm.push(Float(x - y))
	case OpMul:
		return vm.push(Float(x * y))
	case OpDiv:
		// IEEE semantics: float division by zero yields ±Inf/NaN, which is
		// deterministic and therefore allowed.
		return vm.push(Float(x / y))
	}
	return newFault(FaultBadProgram, "unreachable arithmetic op %s", op)
}

// compare implements the six comparison ops. Equality works on any pair of
// kinds (cross-kind is false, except int/float which compare numerically);
// ordering requires two numbers or two strings.
func (vm *VM) compare(op Op) *Fault {
	b, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	if op == OpEq || op == OpNe {
		var eq bool
		if isNum(a) && isNum(b) && a.Kind != b.Kind {
			eq = a.AsFloat() == b.AsFloat()
		} else {
			eq = a.Equal(b)
		}
		return vm.push(Bool(eq == (op == OpEq)))
	}
	var cmp int
	switch {
	case isNum(a) && isNum(b):
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				cmp = -1
			case a.I > b.I:
				cmp = 1
			}
		} else {
			x, y := a.AsFloat(), b.AsFloat()
			switch {
			case x < y:
				cmp = -1
			case x > y:
				cmp = 1
			}
		}
	case a.Kind == KindStr && b.Kind == KindStr:
		switch {
		case a.S < b.S:
			cmp = -1
		case a.S > b.S:
			cmp = 1
		}
	default:
		return newFault(FaultTypeMismatch, "%s wants two numbers or two strings, got %s, %s", op, a.Kind, b.Kind)
	}
	var r bool
	switch op {
	case OpLt:
		r = cmp < 0
	case OpLe:
		r = cmp <= 0
	case OpGt:
		r = cmp > 0
	case OpGe:
		r = cmp >= 0
	}
	return vm.push(Bool(r))
}

func (vm *VM) index() *Fault {
	i, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	if i.Kind != KindInt {
		return newFault(FaultTypeMismatch, "index wants an int, got %s", i.Kind)
	}
	switch a.Kind {
	case KindArr:
		if i.I < 0 || i.I >= int64(len(a.A.Elems)) {
			return newFault(FaultIndexRange, "index %d out of range for arr of len %d", i.I, len(a.A.Elems))
		}
		return vm.push(a.A.Elems[i.I])
	case KindStr:
		if i.I < 0 || i.I >= int64(len(a.S)) {
			return newFault(FaultIndexRange, "index %d out of range for str of len %d", i.I, len(a.S))
		}
		return vm.push(Int(int64(a.S[i.I])))
	default:
		return newFault(FaultTypeMismatch, "cannot index %s", a.Kind)
	}
}

func (vm *VM) setIndex() *Fault {
	v, fault := vm.pop()
	if fault != nil {
		return fault
	}
	i, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	if a.Kind != KindArr {
		return newFault(FaultTypeMismatch, "cannot assign into %s", a.Kind)
	}
	if i.Kind != KindInt {
		return newFault(FaultTypeMismatch, "index wants an int, got %s", i.Kind)
	}
	if i.I < 0 || i.I >= int64(len(a.A.Elems)) {
		return newFault(FaultIndexRange, "index %d out of range for arr of len %d", i.I, len(a.A.Elems))
	}
	a.A.Elems[i.I] = v
	return nil
}

// Execute is a convenience wrapper: validate, run with cfg, and map the
// fault into an error. It is the API the provider runtime uses.
func Execute(prog *Program, cfg Config, params ...Value) (*Result, error) {
	if prog == nil {
		return nil, errors.New("tvm: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return New(prog, cfg).Run(params...)
}

// AsFault extracts the *Fault from an error returned by Run/Execute, if any.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

var _ fmt.Stringer = Op(0) // interface compliance documentation
