package tvm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Config bounds a single tasklet execution. Limits exist because providers
// run untrusted bytecode: a tasklet cannot spin, recurse, allocate or emit
// beyond its budget. The zero value is not usable; call DefaultConfig.
type Config struct {
	Fuel     uint64 // total instruction budget (weighted by fuelCost)
	MaxStack int    // operand stack depth limit
	MaxCall  int    // call stack depth limit
	MaxHeap  int    // total array elements a run may allocate
	MaxEmit  int    // maximum number of emitted results
	MaxPrint int    // maximum retained print() lines
	Seed     uint64 // seed for the deterministic rand() builtin

	// NoOptimize forces the VM onto the straight (unfused) instruction
	// stream even when the program has been through Program.Optimize.
	// The two streams are semantically identical — NoOptimize exists for
	// differential testing and ablation benchmarks.
	NoOptimize bool

	// Cancel, when non-nil, is polled periodically by the interpreter;
	// setting it aborts the run with a FaultCancelled fault. Providers use
	// this to stop tasklets on shutdown or job cancellation.
	Cancel *atomic.Bool
}

// DefaultConfig returns generous but finite limits suitable for the standard
// workloads: ~100M fuel executes a few seconds of work on a modern core.
func DefaultConfig() Config {
	return Config{
		Fuel:     100_000_000,
		MaxStack: 64 << 10,
		MaxCall:  1 << 10,
		MaxHeap:  8 << 20,
		MaxEmit:  1 << 16,
		MaxPrint: 256,
		Seed:     1,
	}
}

// Result is the outcome of a successful run.
type Result struct {
	Return   Value    // value returned by the entry function
	Emitted  []Value  // values the program passed to emit(), in order
	Printed  []string // debug log lines from print()
	FuelUsed uint64
}

// Hash returns a deterministic hash over the semantically relevant outputs
// (return value and emitted values, not the debug log). Redundant executions
// of a deterministic tasklet produce equal hashes.
func (r *Result) Hash() uint64 {
	return HashValues(append([]Value{r.Return}, r.Emitted...))
}

// frame is one activation record.
type frame struct {
	fn     *FuncProto
	pc     int
	locals []Value
	base   int // operand stack height at entry; restored on return
}

// VM executes one tasklet program. A VM is not safe for concurrent use; the
// enclosing provider runs one VM per slot goroutine. After a run completes,
// Reset prepares the VM for another run of the same program, reusing the
// operand stack, call frames and locals free list so that steady-state
// re-execution is allocation-free.
type VM struct {
	prog    *Program
	cfg     Config
	stack   []Value
	frames  []frame
	fuel    uint64
	heap    int
	rng     uint64
	emitted []Value
	printed []string

	// localsPool recycles call-frame locals slices so OpCall does not
	// allocate on re-entrant workloads. Bounded by the maximum call depth.
	localsPool [][]Value

	// deopt forces the straight stream for the rest of the run. It is set
	// when a block's fuel or stack margin cannot be verified up front; the
	// straight stream then reproduces the reference fault exactly.
	deopt bool

	// res backs the *Result returned by Run; reusing it keeps the
	// steady-state (Reset + Run) path allocation-free. It is invalidated
	// by the next Reset.
	res Result
}

// New creates a VM for prog under the given limits. The program must have
// been validated (Program.UnmarshalBinary validates; hand-built programs
// should call Validate explicitly).
func New(prog *Program, cfg Config) *VM {
	if !prog.prepped {
		// Compile- and wire-loaded programs are prepared (and usually
		// optimized) before they are shared; this fallback covers
		// hand-built programs. prepare serializes internally.
		prog.prepare()
	}
	rng := cfg.Seed
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15 // splitmix-style non-zero default
	}
	return &VM{prog: prog, cfg: cfg, fuel: cfg.Fuel, rng: rng}
}

// Reset returns the VM to its initial state so the same program can be run
// again under the same limits. Internal buffers (operand stack, frame stack,
// locals free list) are retained, making repeated Reset+Run cycles
// allocation-free for programs that do not emit or print. The Result
// returned by the previous Run is invalidated.
func (vm *VM) Reset() {
	for i := range vm.frames {
		fr := &vm.frames[i]
		if cap(fr.locals) > 0 {
			vm.localsPool = append(vm.localsPool, fr.locals)
		}
		*fr = frame{}
	}
	vm.frames = vm.frames[:0]
	// Clear retained Values (stack slack and pooled locals) so arrays from
	// the previous run are not kept alive across runs.
	stack := vm.stack[:cap(vm.stack)]
	for i := range stack {
		stack[i] = Value{}
	}
	vm.stack = vm.stack[:0]
	for _, s := range vm.localsPool {
		s = s[:cap(s)]
		for i := range s {
			s[i] = Value{}
		}
	}
	vm.fuel = vm.cfg.Fuel
	vm.heap = 0
	vm.rng = vm.cfg.Seed
	if vm.rng == 0 {
		vm.rng = 0x9e3779b97f4a7c15
	}
	vm.emitted = nil
	vm.printed = nil
	vm.deopt = false
	vm.res = Result{}
}

// nextRand advances the xorshift64* generator. Deterministic across
// platforms, which keeps redundant executions vote-compatible.
func (vm *VM) nextRand() uint64 {
	x := vm.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	vm.rng = x
	return x * 0x2545f4914f6cdd1d
}

// alloc charges n array elements against the heap budget.
func (vm *VM) alloc(n int) *Fault {
	vm.heap += n
	if vm.heap > vm.cfg.MaxHeap {
		return newFault(FaultOutOfMemory, "heap limit %d elements exceeded", vm.cfg.MaxHeap)
	}
	return nil
}

// getLocals returns a locals slice of length n, reusing the free list when
// possible. Slices too small to fit are discarded.
func (vm *VM) getLocals(n int) []Value {
	for k := len(vm.localsPool); k > 0; k-- {
		s := vm.localsPool[k-1]
		vm.localsPool = vm.localsPool[:k-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]Value, n)
}

// Run executes the program's entry function with the given parameters.
// It returns a *Fault (as error) on any runtime fault; the fault carries the
// function name and pc where execution stopped. The returned Result is
// owned by the VM and invalidated by the next Reset.
func (vm *VM) Run(params ...Value) (*Result, error) {
	entry := vm.prog.EntryFunc()
	if len(params) != entry.NumParams {
		return nil, newFault(FaultBadProgram, "entry %s wants %d params, got %d",
			entry.Name, entry.NumParams, len(params))
	}
	locals := vm.getLocals(entry.NumLocals)
	n := copy(locals, params)
	for i := n; i < len(locals); i++ {
		locals[i] = Value{}
	}
	vm.frames = append(vm.frames, frame{fn: entry, locals: locals})

	ret, fault := vm.loop()
	if fault != nil {
		return nil, fault
	}
	vm.res = Result{
		Return:   ret,
		Emitted:  vm.emitted,
		Printed:  vm.printed,
		FuelUsed: vm.cfg.Fuel - vm.fuel,
	}
	return &vm.res, nil
}

// push grows the operand stack, enforcing the depth limit.
func (vm *VM) push(v Value) *Fault {
	if len(vm.stack) >= vm.cfg.MaxStack {
		return newFault(FaultStackOverflow, "operand stack limit %d exceeded", vm.cfg.MaxStack)
	}
	vm.stack = append(vm.stack, v)
	return nil
}

// underflowFault is the shared operand-stack underflow fault, used uniformly
// by plain pops, OpDup, and fused ops that consume stack operands.
func underflowFault() *Fault {
	return newFault(FaultBadProgram, "pop from empty stack")
}

// pop removes and returns the top of the operand stack.
func (vm *VM) pop() (Value, *Fault) {
	if len(vm.stack) == 0 {
		return Value{}, underflowFault()
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v, nil
}

// stream selects the instruction stream for a function: the fused fast path
// when available and enabled, otherwise the straight translation.
func (vm *VM) stream(fn *FuncProto) ([]optInstr, bool) {
	if fn.opt != nil && !vm.cfg.NoOptimize && !vm.deopt {
		return fn.opt, true
	}
	return fn.fast, false
}

// faultAt annotates a fault with the current location unless a deeper
// handler already did.
func faultAt(ft *Fault, f *frame, pc int) *Fault {
	if ft.Func == "" {
		ft.Func = f.fn.Name
		ft.PC = pc
	}
	return ft
}

// loop is the interpreter core. It returns the entry function's return
// value, or a fault annotated with the faulting location.
//
// The hot-path state — current frame, instruction stream, pc and the next
// fuel-charge pc — is cached in locals and written back only on frame
// switches. In fused streams fuel and stack headroom are verified once per
// basic block (nextCharge tracks the next block leader); if a block's
// margin cannot be verified the VM deoptimizes to the straight stream at
// the block leader, which reproduces the reference interpreter's fault
// exactly.
func (vm *VM) loop() (Value, *Fault) {
	f := &vm.frames[len(vm.frames)-1]
	code, fused := vm.stream(f.fn)
	pc := f.pc
	nextCharge := pc
	maxStack := vm.cfg.MaxStack

	const cancelPollMask = 4095 // poll Cancel every 4096 dispatches
	var steps uint64
	for {
		steps++
		if steps&cancelPollMask == 0 && vm.cfg.Cancel != nil && vm.cfg.Cancel.Load() {
			return Value{}, faultAt(newFault(FaultCancelled, "execution cancelled by host"), f, pc)
		}
		if pc >= len(code) {
			// Falling off the end of a function returns nil.
			ret, fault := vm.unwind(Nil())
			if fault != nil {
				return Value{}, faultAt(fault, f, pc)
			}
			if len(vm.frames) == 0 {
				return ret, nil
			}
			f = &vm.frames[len(vm.frames)-1]
			code, fused = vm.stream(f.fn)
			pc = f.pc
			nextCharge = pc
			continue
		}
		if pc == nextCharge {
			oi := &code[pc]
			if fused {
				if vm.fuel < uint64(oi.blockFuel) || len(vm.stack)+int(oi.blockGrow) > maxStack {
					// Deoptimize: replay this block per-instruction on the
					// straight stream so the inevitable fault lands exactly
					// where the reference interpreter puts it.
					vm.deopt = true
					code, fused = f.fn.fast, false
					continue
				}
				vm.fuel -= uint64(oi.blockFuel)
				nextCharge = int(oi.blockEnd)
			} else {
				cost := uint64(oi.blockFuel) // per-instruction cost
				if vm.fuel < cost {
					return Value{}, faultAt(newFault(FaultOutOfFuel, "fuel budget %d exhausted", vm.cfg.Fuel), f, pc)
				}
				vm.fuel -= cost
				nextCharge = pc + 1
			}
		}

		oi := &code[pc]
		npc := pc + int(oi.n)
		var fault *Fault
		faultOff := 0

		switch oi.op {
		case OpNop:

		case OpPushConst:
			fault = vm.push(vm.prog.Consts[oi.a])
		case OpPushInt:
			fault = vm.push(Int(int64(oi.a)))
		case OpPushNil:
			fault = vm.push(Nil())
		case OpPushTrue:
			fault = vm.push(Bool(true))
		case OpPushFalse:
			fault = vm.push(Bool(false))
		case OpPop:
			_, fault = vm.pop()
		case OpDup:
			if len(vm.stack) == 0 {
				fault = underflowFault()
			} else {
				fault = vm.push(vm.stack[len(vm.stack)-1])
			}

		case OpLoadLocal:
			fault = vm.push(f.locals[oi.a])
		case OpStoreLocal:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				f.locals[oi.a] = v
			}

		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			fault = vm.binaryArith(oi.op)
		case OpNeg:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				switch v.Kind {
				case KindInt:
					fault = vm.push(Int(-v.I))
				case KindFloat:
					fault = vm.push(Float(-v.F))
				default:
					fault = newFault(FaultTypeMismatch, "neg wants a number, got %s", v.Kind)
				}
			}

		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			fault = vm.compare(oi.op)

		case OpNot:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				if v.Kind != KindBool {
					fault = newFault(FaultTypeMismatch, "not wants a bool, got %s", v.Kind)
				} else {
					fault = vm.push(Bool(v.I == 0))
				}
			}

		case OpJump:
			npc = int(oi.a)
			nextCharge = npc
		case OpJumpIfFalse, OpJumpIfTrue:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				if v.Kind != KindBool {
					fault = newFault(FaultTypeMismatch, "branch wants a bool, got %s", v.Kind)
				} else if v.AsBool() == (oi.op == OpJumpIfTrue) {
					npc = int(oi.a)
					nextCharge = npc
				}
			}

		case OpCall:
			if len(vm.frames) >= vm.cfg.MaxCall {
				fault = newFault(FaultStackOverflow, "call depth limit %d exceeded", vm.cfg.MaxCall)
				break
			}
			callee := &vm.prog.Funcs[oi.a]
			if len(vm.stack) < callee.NumParams {
				fault = newFault(FaultBadProgram, "call %s: %d args on stack, want %d",
					callee.Name, len(vm.stack), callee.NumParams)
				break
			}
			base := len(vm.stack) - callee.NumParams
			locals := vm.getLocals(callee.NumLocals)
			copy(locals, vm.stack[base:])
			for i := callee.NumParams; i < len(locals); i++ {
				locals[i] = Value{}
			}
			vm.stack = vm.stack[:base]
			f.pc = npc
			vm.frames = append(vm.frames, frame{fn: callee, locals: locals, base: base})
			f = &vm.frames[len(vm.frames)-1]
			code, fused = vm.stream(callee)
			npc = 0
			nextCharge = 0

		case OpCallB:
			id := Builtin(oi.a >> 8)
			argc := int(oi.a & 0xff)
			spec, ok := builtinTable[id]
			if !ok {
				fault = newFault(FaultBadBuiltin, "unknown builtin %d", int(id))
				break
			}
			if argc != spec.arity {
				fault = newFault(FaultBadBuiltin, "%s wants %d args, got %d", spec.name, spec.arity, argc)
				break
			}
			if len(vm.stack) < argc {
				fault = newFault(FaultBadProgram, "builtin %s: stack underflow", spec.name)
				break
			}
			args := vm.stack[len(vm.stack)-argc:]
			var ret Value
			ret, fault = spec.fn(vm, args)
			if fault == nil {
				vm.stack = vm.stack[:len(vm.stack)-argc]
				fault = vm.push(ret)
			}

		case OpReturn, OpReturn0:
			ret := Nil()
			if oi.op == OpReturn {
				if ret, fault = vm.pop(); fault != nil {
					break
				}
			}
			var done Value
			done, fault = vm.unwind(ret)
			if fault == nil && len(vm.frames) == 0 {
				return done, nil
			}
			if fault == nil {
				f = &vm.frames[len(vm.frames)-1]
				code, fused = vm.stream(f.fn)
				npc = f.pc
				nextCharge = npc
			}

		case OpNewArray:
			n := int(oi.a)
			if len(vm.stack) < n {
				fault = newFault(FaultBadProgram, "newarr %d: stack underflow", n)
				break
			}
			if fault = vm.alloc(n); fault != nil {
				break
			}
			elems := make([]Value, n)
			copy(elems, vm.stack[len(vm.stack)-n:])
			vm.stack = vm.stack[:len(vm.stack)-n]
			fault = vm.push(Value{Kind: KindArr, A: &Array{Elems: elems}})

		case OpIndex:
			fault = vm.index()
		case OpSetIndex:
			fault = vm.setIndex()
		case OpLen:
			var v Value
			if v, fault = vm.pop(); fault == nil {
				switch v.Kind {
				case KindArr:
					fault = vm.push(Int(int64(len(v.A.Elems))))
				case KindStr:
					fault = vm.push(Int(int64(len(v.S))))
				default:
					fault = newFault(FaultTypeMismatch, "len wants arr or str, got %s", v.Kind)
				}
			}
		case OpAppend:
			var v, a Value
			if v, fault = vm.pop(); fault != nil {
				break
			}
			if a, fault = vm.pop(); fault != nil {
				break
			}
			if a.Kind != KindArr {
				fault = newFault(FaultTypeMismatch, "append wants an arr, got %s", a.Kind)
				break
			}
			if fault = vm.alloc(1); fault != nil {
				break
			}
			a.A.Elems = append(a.A.Elems, v)
			fault = vm.push(a)

		// ---- superinstructions (fused streams only; operands trusted,
		// stack headroom verified at block entry) ----

		case opLocIntArith, opLocConstArith, opLocLocArith:
			x := f.locals[oi.a]
			var y Value
			switch oi.op {
			case opLocIntArith:
				y = Value{Kind: KindInt, I: int64(oi.b)}
			case opLocConstArith:
				y = vm.prog.Consts[oi.b]
			default:
				y = f.locals[oi.b]
			}
			if x.Kind == KindInt && y.Kind == KindInt && oi.sub <= OpMul {
				var r int64
				switch oi.sub {
				case OpAdd:
					r = x.I + y.I
				case OpSub:
					r = x.I - y.I
				default:
					r = x.I * y.I
				}
				vm.stack = append(vm.stack, Value{Kind: KindInt, I: r})
				break
			}
			var v Value
			if v, fault = arithVals(oi.sub, x, y); fault != nil {
				faultOff = 2
				break
			}
			vm.stack = append(vm.stack, v)

		case opLocIntArithStore:
			x := f.locals[oi.a]
			if x.Kind == KindInt && oi.sub <= OpMul {
				var r int64
				switch oi.sub {
				case OpAdd:
					r = x.I + int64(oi.b)
				case OpSub:
					r = x.I - int64(oi.b)
				default:
					r = x.I * int64(oi.b)
				}
				f.locals[oi.c] = Value{Kind: KindInt, I: r}
				break
			}
			var v Value
			if v, fault = arithVals(oi.sub, x, Int(int64(oi.b))); fault != nil {
				faultOff = 2
				break
			}
			f.locals[oi.c] = v

		case opArithStore:
			n := len(vm.stack)
			if n < 2 {
				fault = underflowFault()
				break
			}
			x, y := vm.stack[n-2], vm.stack[n-1]
			vm.stack = vm.stack[:n-2]
			var v Value
			if v, fault = arithVals(oi.sub, x, y); fault != nil {
				break
			}
			f.locals[oi.a] = v

		case opLocIntCmp, opLocLocCmp:
			x := f.locals[oi.a]
			var y Value
			if oi.op == opLocIntCmp {
				y = Value{Kind: KindInt, I: int64(oi.b)}
			} else {
				y = f.locals[oi.b]
			}
			var v Value
			if x.Kind == KindInt && y.Kind == KindInt {
				v = Bool(intCmp(oi.sub, x.I, y.I))
			} else if v, fault = cmpVals(oi.sub, x, y); fault != nil {
				faultOff = 2
				break
			}
			vm.stack = append(vm.stack, v)

		case opCmpBr:
			n := len(vm.stack)
			if n < 2 {
				fault = underflowFault()
				break
			}
			x, y := vm.stack[n-2], vm.stack[n-1]
			vm.stack = vm.stack[:n-2]
			var cond bool
			if x.Kind == KindInt && y.Kind == KindInt {
				cond = intCmp(oi.sub, x.I, y.I)
			} else {
				var v Value
				if v, fault = cmpVals(oi.sub, x, y); fault != nil {
					break
				}
				cond = v.I != 0
			}
			if cond == (oi.flag == 1) {
				npc = int(oi.a)
				nextCharge = npc
			}

		case opLocIntCmpBr, opLocLocCmpBr:
			x := f.locals[oi.a]
			var y Value
			if oi.op == opLocIntCmpBr {
				y = Value{Kind: KindInt, I: int64(oi.b)}
			} else {
				y = f.locals[oi.b]
			}
			var cond bool
			if x.Kind == KindInt && y.Kind == KindInt {
				cond = intCmp(oi.sub, x.I, y.I)
			} else {
				var v Value
				if v, fault = cmpVals(oi.sub, x, y); fault != nil {
					faultOff = 2
					break
				}
				cond = v.I != 0
			}
			if cond == (oi.flag == 1) {
				npc = int(oi.c)
				nextCharge = npc
			}

		case opLocCallB:
			vm.stack = append(vm.stack, f.locals[oi.a])
			id := Builtin(oi.b >> 8)
			argc := int(oi.b & 0xff)
			spec := builtinTable[id] // fusion guaranteed existence and arity
			if len(vm.stack) < argc {
				fault = newFault(FaultBadProgram, "builtin %s: stack underflow", spec.name)
				faultOff = 1
				break
			}
			args := vm.stack[len(vm.stack)-argc:]
			var ret Value
			if ret, fault = spec.fn(vm, args); fault != nil {
				faultOff = 1
				break
			}
			vm.stack = vm.stack[:len(vm.stack)-argc]
			vm.stack = append(vm.stack, ret)

		case opIllegal:
			fault = newFault(FaultBadProgram, "illegal opcode %d", uint8(oi.a))

		default:
			fault = newFault(FaultBadProgram, "illegal opcode %d", uint8(oi.op))
		}

		if fault != nil {
			fault.Func = f.fn.Name
			fault.PC = pc + faultOff
			return Value{}, fault
		}
		pc = npc
	}
}

// unwind pops the current frame, truncates the operand stack to the frame's
// base, recycles the frame's locals, and pushes ret for the caller. When the
// last frame returns, ret is the program result and is returned via the
// first return value.
func (vm *VM) unwind(ret Value) (Value, *Fault) {
	fr := vm.frames[len(vm.frames)-1]
	vm.frames = vm.frames[:len(vm.frames)-1]
	vm.stack = vm.stack[:fr.base]
	if cap(fr.locals) > 0 {
		vm.localsPool = append(vm.localsPool, fr.locals)
	}
	if len(vm.frames) == 0 {
		return ret, nil
	}
	return Value{}, vm.push(ret)
}

// intCmp evaluates an int/int comparison.
func intCmp(op Op, a, b int64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	default:
		return a >= b
	}
}

// binaryArith implements add/sub/mul/div/mod over the operand stack.
func (vm *VM) binaryArith(op Op) *Fault {
	b, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	v, fault := arithVals(op, a, b)
	if fault != nil {
		return fault
	}
	return vm.push(v)
}

// arithVals implements add/sub/mul/div/mod with int/float promotion and
// string concatenation for add. Shared by the plain stack ops and the fused
// superinstructions so both report identical faults.
func arithVals(op Op, a, b Value) (Value, *Fault) {
	if op == OpAdd && a.Kind == KindStr && b.Kind == KindStr {
		return Str(a.S + b.S), nil
	}
	if !isNum(a) || !isNum(b) {
		return Value{}, newFault(FaultTypeMismatch, "%s wants numbers, got %s, %s", op, a.Kind, b.Kind)
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch op {
		case OpAdd:
			return Int(a.I + b.I), nil
		case OpSub:
			return Int(a.I - b.I), nil
		case OpMul:
			return Int(a.I * b.I), nil
		case OpDiv:
			if b.I == 0 {
				return Value{}, newFault(FaultDivByZero, "integer division by zero")
			}
			return Int(a.I / b.I), nil
		case OpMod:
			if b.I == 0 {
				return Value{}, newFault(FaultDivByZero, "modulo by zero")
			}
			return Int(a.I % b.I), nil
		}
	}
	if op == OpMod {
		return Value{}, newFault(FaultTypeMismatch, "mod wants ints, got %s, %s", a.Kind, b.Kind)
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case OpAdd:
		return Float(x + y), nil
	case OpSub:
		return Float(x - y), nil
	case OpMul:
		return Float(x * y), nil
	case OpDiv:
		// IEEE semantics: float division by zero yields ±Inf/NaN, which is
		// deterministic and therefore allowed.
		return Float(x / y), nil
	}
	return Value{}, newFault(FaultBadProgram, "unreachable arithmetic op %s", op)
}

// compare implements the six comparison ops over the operand stack.
func (vm *VM) compare(op Op) *Fault {
	b, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	v, fault := cmpVals(op, a, b)
	if fault != nil {
		return fault
	}
	return vm.push(v)
}

// cmpVals implements the six comparison ops. Equality works on any pair of
// kinds (cross-kind is false, except int/float which compare numerically);
// ordering requires two numbers or two strings. Shared by plain and fused
// ops so both report identical faults.
func cmpVals(op Op, a, b Value) (Value, *Fault) {
	if op == OpEq || op == OpNe {
		var eq bool
		if isNum(a) && isNum(b) && a.Kind != b.Kind {
			eq = a.AsFloat() == b.AsFloat()
		} else {
			eq = a.Equal(b)
		}
		return Bool(eq == (op == OpEq)), nil
	}
	var cmp int
	switch {
	case isNum(a) && isNum(b):
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				cmp = -1
			case a.I > b.I:
				cmp = 1
			}
		} else {
			x, y := a.AsFloat(), b.AsFloat()
			switch {
			case x < y:
				cmp = -1
			case x > y:
				cmp = 1
			}
		}
	case a.Kind == KindStr && b.Kind == KindStr:
		switch {
		case a.S < b.S:
			cmp = -1
		case a.S > b.S:
			cmp = 1
		}
	default:
		return Value{}, newFault(FaultTypeMismatch, "%s wants two numbers or two strings, got %s, %s", op, a.Kind, b.Kind)
	}
	var r bool
	switch op {
	case OpLt:
		r = cmp < 0
	case OpLe:
		r = cmp <= 0
	case OpGt:
		r = cmp > 0
	case OpGe:
		r = cmp >= 0
	}
	return Bool(r), nil
}

func (vm *VM) index() *Fault {
	i, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	if i.Kind != KindInt {
		return newFault(FaultTypeMismatch, "index wants an int, got %s", i.Kind)
	}
	switch a.Kind {
	case KindArr:
		if i.I < 0 || i.I >= int64(len(a.A.Elems)) {
			return newFault(FaultIndexRange, "index %d out of range for arr of len %d", i.I, len(a.A.Elems))
		}
		return vm.push(a.A.Elems[i.I])
	case KindStr:
		if i.I < 0 || i.I >= int64(len(a.S)) {
			return newFault(FaultIndexRange, "index %d out of range for str of len %d", i.I, len(a.S))
		}
		return vm.push(Int(int64(a.S[i.I])))
	default:
		return newFault(FaultTypeMismatch, "cannot index %s", a.Kind)
	}
}

func (vm *VM) setIndex() *Fault {
	v, fault := vm.pop()
	if fault != nil {
		return fault
	}
	i, fault := vm.pop()
	if fault != nil {
		return fault
	}
	a, fault := vm.pop()
	if fault != nil {
		return fault
	}
	if a.Kind != KindArr {
		return newFault(FaultTypeMismatch, "cannot assign into %s", a.Kind)
	}
	if i.Kind != KindInt {
		return newFault(FaultTypeMismatch, "index wants an int, got %s", i.Kind)
	}
	if i.I < 0 || i.I >= int64(len(a.A.Elems)) {
		return newFault(FaultIndexRange, "index %d out of range for arr of len %d", i.I, len(a.A.Elems))
	}
	a.A.Elems[i.I] = v
	return nil
}

// Execute is a convenience wrapper: validate, run with cfg, and map the
// fault into an error. It is the API the provider runtime uses.
func Execute(prog *Program, cfg Config, params ...Value) (*Result, error) {
	if prog == nil {
		return nil, errors.New("tvm: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return New(prog, cfg).Run(params...)
}

// AsFault extracts the *Fault from an error returned by Run/Execute, if any.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

var _ fmt.Stringer = Op(0) // interface compliance documentation
