package tvm

import "sync"

// This file implements the TVM's load-time bytecode optimization pass.
//
// Programs execute from an internal instruction stream ([]optInstr) rather
// than directly from FuncProto.Code. Every function has a "straight" stream
// (fast): a 1:1 translation of Code that reproduces the reference
// interpreter's semantics exactly — same fuel charging order, same fault
// codes, messages and pcs. Program.Optimize additionally builds a fused
// stream (opt) per function:
//
//   - Peephole superinstruction fusion replaces the dominant 2–4 instruction
//     sequences (arithmetic on locals, compare-and-branch, local-argument
//     builtin calls) with single internal opcodes. Fusion happens in place:
//     the fused instruction occupies the slot of the sequence's first
//     instruction and advances the pc by the original sequence length, so
//     jump targets stay valid and faults report original pcs.
//   - Per-basic-block fuel and stack-effect precomputation: the interpreter
//     charges a block's exact total fuel once at block entry and verifies
//     the block's maximum stack growth once, letting fused ops skip
//     per-push depth checks.
//
// Invariants (differentially tested against the straight stream):
//
//   - Result.Hash() and Result.FuelUsed are identical. Block fuel totals are
//     the exact sum of the per-instruction costs the reference charges.
//   - Fault codes, messages and pcs are identical. Fused handlers map
//     component faults back to the original pc, and when a block's fuel or
//     stack margin cannot be pre-verified the VM deoptimizes to the straight
//     stream at the block leader, which reproduces the reference fault
//     exactly.
//   - Config.NoOptimize disables the fused stream per run for differential
//     testing; Optimize itself never mutates FuncProto.Code, so marshaling
//     and disassembly are unaffected.
//
// A sequence is only fused when no jump target lands inside it, and fused
// streams are produced exclusively by this pass (wire programs cannot inject
// superinstructions: unknown wire opcodes are sanitized to opIllegal during
// translation), so superinstruction operands are trusted.

// optInstr is one instruction of the internal executed stream. For plain
// (unfused) instructions, op/a mirror Instr and n is 1. Fused instructions
// use sub for the underlying arithmetic/comparison opcode, a/b/c for
// operands, flag for the branch sense, and n for the number of original
// instructions the superinstruction covers.
//
// Block metadata lives on block-leader slots of fused streams: blockFuel is
// the exact fuel the whole block charges, blockGrow the block's maximum
// transient operand-stack growth, and blockEnd the pc one past the block's
// last instruction. In straight streams every instruction is its own block
// (blockFuel = fuelCost, blockEnd = pc+1), which reproduces per-instruction
// charging.
type optInstr struct {
	op   Op
	sub  Op
	flag uint8 // branch sense for fused compare-branches: 1 = jump-if-true
	n    uint8 // original instructions covered; pc advances by n

	a, b, c int32

	blockFuel uint32
	blockGrow int32
	blockEnd  int32
}

// prepareMu serializes stream construction. Compile-time and provider
// load-time paths call Optimize before sharing a program; the mutex also
// makes the lazy New-time fallback for hand-built programs safe when such a
// program is shared across goroutines.
var prepareMu sync.Mutex

// prepare builds the straight streams for all functions. Idempotent.
func (p *Program) prepare() {
	prepareMu.Lock()
	defer prepareMu.Unlock()
	p.prepareLocked()
}

func (p *Program) prepareLocked() {
	if p.prepped {
		return
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		f.fast = straighten(f.Code)
	}
	p.prepped = true
}

// straighten translates Code 1:1 into the executed form, preserving
// reference semantics. Opcodes outside the wire set are sanitized to
// opIllegal so a hostile program can never dispatch into a superinstruction
// handler with unvalidated operands.
func straighten(code []Instr) []optInstr {
	out := make([]optInstr, len(code))
	for pc, in := range code {
		oi := optInstr{op: in.Op, a: in.Arg, n: 1, blockEnd: int32(pc + 1)}
		if in.Op > opWireMax {
			oi.op = opIllegal
			oi.a = int32(uint8(in.Op))
		}
		oi.blockFuel = uint32(fuelCost(oi.op))
		out[pc] = oi
	}
	return out
}

// Optimize runs the load-time optimization pass over the whole program,
// building the fused fast-path stream for every function. It must be called
// before the program is shared with concurrently running VMs (the compiler
// and the provider's program-cache insert both do); it never mutates
// Consts, Funcs metadata or Code. Idempotent.
func (p *Program) Optimize() {
	prepareMu.Lock()
	defer prepareMu.Unlock()
	p.prepareLocked()
	if p.optimized {
		return
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		f.opt = fuse(f.Code, f.fast)
		annotateBlocks(f.opt)
	}
	p.optimized = true
}

func isArith(op Op) bool { return op >= OpAdd && op <= OpMod }
func isCmp(op Op) bool   { return op >= OpEq && op <= OpGe }
func isBranch(op Op) bool {
	return op == OpJumpIfFalse || op == OpJumpIfTrue
}

// isTerminator reports whether the instruction ends a basic block. Calls
// terminate blocks so that a frame always resumes at a block leader.
func isTerminator(op Op) bool {
	switch op {
	case OpJump, OpJumpIfFalse, OpJumpIfTrue, OpCall, OpReturn, OpReturn0,
		opCmpBr, opLocIntCmpBr, opLocLocCmpBr:
		return true
	}
	return false
}

// leaders computes the block-leader set: the function entry, every jump
// target, and every instruction after a terminator.
func leaders(code []Instr) []bool {
	l := make([]bool, len(code)+1)
	if len(code) > 0 {
		l[0] = true
	}
	for pc, in := range code {
		switch in.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue:
			l[in.Arg] = true // Validate bounds targets to [0, len]
			l[pc+1] = true
		case OpCall, OpReturn, OpReturn0:
			l[pc+1] = true
		}
	}
	return l
}

// fuse builds the fused stream from the original code. Slots covered by the
// tail of a superinstruction keep their straight translation; they are
// unreachable (no jump target lands inside a fused window and the leading
// superinstruction steps over them) but keep the stream index-aligned with
// Code so faults and deoptimization use original pcs.
func fuse(code []Instr, straight []optInstr) []optInstr {
	out := make([]optInstr, len(straight))
	copy(out, straight)
	lead := leaders(code)

	// interiorFree reports whether (i, i+n) contains no jump target.
	interiorFree := func(i, n int) bool {
		for j := i + 1; j < i+n; j++ {
			if lead[j] {
				return false
			}
		}
		return true
	}

	for i := 0; i < len(code); {
		in := code[i]
		var fi optInstr
		n := 0

		// 4-wide patterns first, then 3-wide, then 2-wide.
		if in.Op == OpLoadLocal && i+4 <= len(code) && interiorFree(i, 4) {
			i1, i2, i3 := code[i+1], code[i+2], code[i+3]
			switch {
			case i1.Op == OpPushInt && isCmp(i2.Op) && isBranch(i3.Op):
				fi = optInstr{op: opLocIntCmpBr, sub: i2.Op, a: in.Arg, b: i1.Arg, c: i3.Arg}
				if i3.Op == OpJumpIfTrue {
					fi.flag = 1
				}
				n = 4
			case i1.Op == OpLoadLocal && isCmp(i2.Op) && isBranch(i3.Op):
				fi = optInstr{op: opLocLocCmpBr, sub: i2.Op, a: in.Arg, b: i1.Arg, c: i3.Arg}
				if i3.Op == OpJumpIfTrue {
					fi.flag = 1
				}
				n = 4
			case i1.Op == OpPushInt && isArith(i2.Op) && i3.Op == OpStoreLocal:
				fi = optInstr{op: opLocIntArithStore, sub: i2.Op, a: in.Arg, b: i1.Arg, c: i3.Arg}
				n = 4
			}
		}
		if n == 0 && in.Op == OpLoadLocal && i+3 <= len(code) && interiorFree(i, 3) {
			i1, i2 := code[i+1], code[i+2]
			switch {
			case i1.Op == OpPushInt && isArith(i2.Op):
				fi = optInstr{op: opLocIntArith, sub: i2.Op, a: in.Arg, b: i1.Arg}
				n = 3
			case i1.Op == OpPushConst && isArith(i2.Op):
				fi = optInstr{op: opLocConstArith, sub: i2.Op, a: in.Arg, b: i1.Arg}
				n = 3
			case i1.Op == OpLoadLocal && isArith(i2.Op):
				fi = optInstr{op: opLocLocArith, sub: i2.Op, a: in.Arg, b: i1.Arg}
				n = 3
			case i1.Op == OpPushInt && isCmp(i2.Op):
				fi = optInstr{op: opLocIntCmp, sub: i2.Op, a: in.Arg, b: i1.Arg}
				n = 3
			case i1.Op == OpLoadLocal && isCmp(i2.Op):
				fi = optInstr{op: opLocLocCmp, sub: i2.Op, a: in.Arg, b: i1.Arg}
				n = 3
			}
		}
		if n == 0 && i+2 <= len(code) && interiorFree(i, 2) {
			i1 := code[i+1]
			switch {
			case isCmp(in.Op) && isBranch(i1.Op):
				fi = optInstr{op: opCmpBr, sub: in.Op, a: i1.Arg}
				if i1.Op == OpJumpIfTrue {
					fi.flag = 1
				}
				n = 2
			case isArith(in.Op) && i1.Op == OpStoreLocal:
				fi = optInstr{op: opArithStore, sub: in.Op, a: i1.Arg}
				n = 2
			case in.Op == OpLoadLocal && i1.Op == OpCallB:
				id := Builtin(i1.Arg >> 8)
				argc := int(i1.Arg & 0xff)
				if spec, ok := builtinTable[id]; ok && argc == spec.arity {
					fi = optInstr{op: opLocCallB, a: in.Arg, b: i1.Arg}
					n = 2
				}
			}
		}

		if n == 0 {
			i++
			continue
		}
		fi.n = uint8(n)
		out[i] = fi
		i += n
	}
	return out
}

// stackEffect returns the maximum transient operand-stack growth an
// instruction can cause and its net stack delta. Overestimating grow is
// safe (it only forces a deoptimization that re-checks exactly);
// underestimating is not.
func stackEffect(oi *optInstr) (grow, net int) {
	switch oi.op {
	case OpPushConst, OpPushInt, OpPushNil, OpPushTrue, OpPushFalse,
		OpLoadLocal, OpDup:
		return 1, 1
	case OpPop, OpStoreLocal, OpJumpIfFalse, OpJumpIfTrue,
		OpReturn, OpIndex, OpAppend:
		return 0, -1
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 0, -1
	case OpNewArray:
		if oi.a == 0 {
			return 1, 1
		}
		return 0, 1 - int(oi.a)
	case OpSetIndex:
		return 0, -3
	case OpCallB:
		argc := int(oi.a & 0xff)
		g := 1 - argc
		if g < 0 {
			g = 0
		}
		return g, 1 - argc
	case OpCall:
		// The call terminates its block; the callee's effects are charged
		// in the callee's own blocks and the return push is depth-checked.
		return 0, 0
	case opLocIntArith, opLocConstArith, opLocLocArith, opLocIntCmp, opLocLocCmp:
		return 2, 1
	case opLocIntArithStore, opLocIntCmpBr, opLocLocCmpBr:
		return 2, 0
	case opArithStore, opCmpBr:
		return 0, -2
	case opLocCallB:
		argc := int(oi.b & 0xff)
		g := 2 - argc
		if g < 1 {
			g = 1
		}
		return g, 2 - argc
	default: // nop, neg, not, len, jump, return0, illegal
		return 0, 0
	}
}

// instrFuel returns the exact fuel an executed-stream instruction charges:
// for superinstructions, the sum of the covered instructions' costs.
func instrFuel(oi *optInstr) uint64 {
	switch oi.op {
	case opLocCallB:
		return 1 + fuelCost(OpCallB)
	case opLocIntArith, opLocConstArith, opLocLocArith, opLocIntCmp, opLocLocCmp,
		opLocIntArithStore, opArithStore, opCmpBr, opLocIntCmpBr, opLocLocCmpBr:
		return uint64(oi.n)
	default:
		return fuelCost(oi.op)
	}
}

// annotateBlocks walks the fused stream, delimits basic blocks, and stores
// each block's exact fuel total, maximum transient stack growth, and end pc
// on the leader slot.
func annotateBlocks(stream []optInstr) {
	// Recompute leaders on the fused stream: every slot reachable as a
	// block start. Fusion preserved original jump targets, so the original
	// leader set projected onto the fused stream is exactly the set of pcs
	// control can transfer to.
	lead := make([]bool, len(stream)+1)
	if len(stream) > 0 {
		lead[0] = true
	}
	for i := 0; i < len(stream); {
		oi := &stream[i]
		switch oi.op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue:
			lead[oi.a] = true
		case opCmpBr:
			lead[oi.a] = true
		case opLocIntCmpBr, opLocLocCmpBr:
			lead[oi.c] = true
		}
		n := int(oi.n)
		if isTerminator(oi.op) {
			lead[i+n] = true
		}
		i += n
	}

	for i := 0; i < len(stream); {
		var fuel uint64
		grow, s := 0, 0
		j := i
		for {
			oi := &stream[j]
			g, net := stackEffect(oi)
			if s+g > grow {
				grow = s + g
			}
			s += net
			fuel += instrFuel(oi)
			j += int(oi.n)
			if isTerminator(oi.op) || j >= len(stream) || lead[j] {
				break
			}
		}
		stream[i].blockFuel = uint32(fuel)
		stream[i].blockGrow = int32(grow)
		stream[i].blockEnd = int32(j)
		i = j
	}
}
