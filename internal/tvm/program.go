package tvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// FuncProto is one compiled function.
type FuncProto struct {
	Name      string
	NumParams int
	NumLocals int // total local slots, including parameters
	Code      []Instr

	// Executed instruction streams, built by prepare/Optimize (optimize.go).
	// fast is the straight 1:1 translation of Code; opt is the fused
	// fast-path stream. Neither crosses the wire nor affects equality of
	// freshly decoded programs (UnmarshalBinary does not build them).
	fast []optInstr
	opt  []optInstr
}

// Frame-size limits enforced by Validate. They bound the memory one call
// frame can demand (the VM allocates NumLocals values per activation) and
// are far above anything the TCL compiler emits.
const (
	MaxParams = 256
	MaxLocals = 1 << 16
)

// Program is a complete compiled tasklet program: a constant pool and a
// function table. Function index Entry is the entry point; its parameters
// are the tasklet parameters supplied at submission time.
//
// Programs are immutable after construction and safe to share between
// concurrently running VMs.
type Program struct {
	Consts []Value
	Funcs  []FuncProto
	Entry  int

	// Stream-construction state, guarded by prepareMu (optimize.go).
	prepped   bool
	optimized bool
}

// EntryFunc returns the entry-point function.
func (p *Program) EntryFunc() *FuncProto { return &p.Funcs[p.Entry] }

// Validate checks structural invariants that the interpreter relies on:
// indices in range, jump targets within the owning function, locals within
// declared bounds. A program that passes Validate cannot make the
// interpreter read out of bounds (it can still fault at runtime on type or
// range errors).
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return errors.New("tvm: program has no functions")
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("tvm: entry index %d out of range", p.Entry)
	}
	for _, c := range p.Consts {
		if c.Kind == KindArr || c.Kind == KindNil {
			return fmt.Errorf("tvm: constant pool may hold only scalars, got %s", c.Kind)
		}
	}
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		if f.NumParams < 0 || f.NumLocals < f.NumParams {
			return fmt.Errorf("tvm: func %s: locals %d < params %d", f.Name, f.NumLocals, f.NumParams)
		}
		// Frame sizes are attacker-controlled wire input; the VM allocates
		// NumLocals values per call, so unbounded frames are an OOM vector.
		if f.NumParams > MaxParams {
			return fmt.Errorf("tvm: func %s: %d params exceeds limit %d", f.Name, f.NumParams, MaxParams)
		}
		if f.NumLocals > MaxLocals {
			return fmt.Errorf("tvm: func %s: %d locals exceeds limit %d", f.Name, f.NumLocals, MaxLocals)
		}
		for pc, in := range f.Code {
			switch in.Op {
			case OpPushConst:
				if int(in.Arg) < 0 || int(in.Arg) >= len(p.Consts) {
					return fmt.Errorf("tvm: func %s pc %d: const index %d out of range", f.Name, pc, in.Arg)
				}
			case OpLoadLocal, OpStoreLocal:
				if int(in.Arg) < 0 || int(in.Arg) >= f.NumLocals {
					return fmt.Errorf("tvm: func %s pc %d: local slot %d out of range", f.Name, pc, in.Arg)
				}
			case OpJump, OpJumpIfFalse, OpJumpIfTrue:
				if int(in.Arg) < 0 || int(in.Arg) > len(f.Code) {
					return fmt.Errorf("tvm: func %s pc %d: jump target %d out of range", f.Name, pc, in.Arg)
				}
			case OpCall:
				if int(in.Arg) < 0 || int(in.Arg) >= len(p.Funcs) {
					return fmt.Errorf("tvm: func %s pc %d: call target %d out of range", f.Name, pc, in.Arg)
				}
			case OpCallB:
				b := Builtin(in.Arg >> 8)
				if _, ok := builtinTable[b]; !ok {
					return fmt.Errorf("tvm: func %s pc %d: unknown builtin %d", f.Name, pc, int(b))
				}
			case OpNewArray:
				if in.Arg < 0 {
					return fmt.Errorf("tvm: func %s pc %d: negative array size", f.Name, pc)
				}
			}
		}
	}
	return nil
}

// Disassemble renders the whole program as readable assembler, used in
// compiler golden tests and debugging.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		marker := ""
		if fi == p.Entry {
			marker = " (entry)"
		}
		fmt.Fprintf(&b, "func %s/%d locals=%d%s\n", f.Name, f.NumParams, f.NumLocals, marker)
		for pc, in := range f.Code {
			fmt.Fprintf(&b, "  %4d  %s\n", pc, in)
		}
	}
	return b.String()
}

// Wire format for programs:
//
//	magic "TVM1" | u32 nconsts | consts | u32 nfuncs | funcs | u32 entry
//
// Each value: u8 kind | payload. Each func: str name | u32 params |
// u32 locals | u32 ninstr | (u8 op, i32 arg)*.
const programMagic = "TVM1"

// maxProgramSection bounds decoded element counts to keep a malformed or
// hostile program from forcing huge allocations before validation.
const maxProgramSection = 1 << 20

// MarshalBinary encodes the program in the TVM wire format.
func (p *Program) MarshalBinary() ([]byte, error) {
	var b []byte
	b = append(b, programMagic...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.Consts)))
	for _, c := range p.Consts {
		var err error
		b, err = appendValue(b, c)
		if err != nil {
			return nil, err
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.Funcs)))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		b = appendString(b, f.Name)
		b = binary.BigEndian.AppendUint32(b, uint32(f.NumParams))
		b = binary.BigEndian.AppendUint32(b, uint32(f.NumLocals))
		b = binary.BigEndian.AppendUint32(b, uint32(len(f.Code)))
		for _, in := range f.Code {
			b = append(b, byte(in.Op))
			b = binary.BigEndian.AppendUint32(b, uint32(in.Arg))
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(p.Entry))
	return b, nil
}

// UnmarshalBinary decodes a program and validates it.
func (p *Program) UnmarshalBinary(data []byte) error {
	d := &decoder{buf: data}
	magic := d.bytes(4)
	if d.err != nil || string(magic) != programMagic {
		return errors.New("tvm: bad program magic")
	}
	nconsts := d.u32()
	if nconsts > maxProgramSection {
		return errors.New("tvm: constant pool too large")
	}
	consts := make([]Value, 0, nconsts)
	for i := uint32(0); i < nconsts && d.err == nil; i++ {
		consts = append(consts, d.value())
	}
	nfuncs := d.u32()
	if d.err == nil && nfuncs > maxProgramSection {
		return errors.New("tvm: function table too large")
	}
	funcs := make([]FuncProto, 0, nfuncs)
	for i := uint32(0); i < nfuncs && d.err == nil; i++ {
		var f FuncProto
		f.Name = d.str()
		f.NumParams = int(d.u32())
		f.NumLocals = int(d.u32())
		n := d.u32()
		if d.err == nil && n > maxProgramSection {
			return errors.New("tvm: function body too large")
		}
		f.Code = make([]Instr, 0, n)
		for j := uint32(0); j < n && d.err == nil; j++ {
			op := Op(d.u8())
			arg := int32(d.u32())
			f.Code = append(f.Code, Instr{Op: op, Arg: arg})
		}
		funcs = append(funcs, f)
	}
	entry := int(d.u32())
	if d.err != nil {
		return fmt.Errorf("tvm: truncated program: %w", d.err)
	}
	if len(d.buf) != d.off {
		return fmt.Errorf("tvm: %d trailing bytes after program", len(d.buf)-d.off)
	}
	np := Program{Consts: consts, Funcs: funcs, Entry: entry}
	if err := np.Validate(); err != nil {
		return err
	}
	*p = np
	return nil
}

// appendValue encodes a single value. Arrays encode recursively; nil encodes
// as its kind byte alone.
func appendValue(b []byte, v Value) ([]byte, error) {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case KindNil:
	case KindInt, KindBool:
		b = binary.BigEndian.AppendUint64(b, uint64(v.I))
	case KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.F))
	case KindStr:
		b = appendString(b, v.S)
	case KindArr:
		b = binary.BigEndian.AppendUint32(b, uint32(len(v.A.Elems)))
		for _, e := range v.A.Elems {
			var err error
			b, err = appendValue(b, e)
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("tvm: cannot encode value kind %d", v.Kind)
	}
	return b, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendValue exposes value encoding for the wire package, which ships
// tasklet parameters and results in the same format as program constants.
func AppendValue(b []byte, v Value) ([]byte, error) { return appendValue(b, v) }

// DecodeValue decodes one value from data, returning the value and the
// number of bytes consumed.
func DecodeValue(data []byte) (Value, int, error) {
	d := &decoder{buf: data}
	v := d.value()
	if d.err != nil {
		return Value{}, 0, d.err
	}
	return v, d.off, nil
}

// decoder is a cursor over an encoded buffer with sticky errors.
type decoder struct {
	buf []byte
	off int
	err error
}

var errTruncated = errors.New("unexpected end of input")

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = errTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err == nil && int(n) > len(d.buf)-d.off {
		d.err = errTruncated
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *decoder) value() Value {
	kind := Kind(d.u8())
	if d.err != nil {
		return Value{}
	}
	switch kind {
	case KindNil:
		return Nil()
	case KindInt:
		return Int(int64(d.u64()))
	case KindBool:
		return Bool(d.u64() != 0)
	case KindFloat:
		return Float(math.Float64frombits(d.u64()))
	case KindStr:
		return Str(d.str())
	case KindArr:
		n := d.u32()
		if d.err != nil {
			return Value{}
		}
		// Each element needs at least one byte; reject impossible counts
		// before allocating.
		if int(n) > len(d.buf)-d.off {
			d.err = errTruncated
			return Value{}
		}
		elems := make([]Value, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			elems = append(elems, d.value())
		}
		return Value{Kind: KindArr, A: &Array{Elems: elems}}
	default:
		d.err = fmt.Errorf("tvm: unknown value kind %d", kind)
		return Value{}
	}
}
