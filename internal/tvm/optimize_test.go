package tvm

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// runBothModes executes prog with the fused fast path and with
// Config.NoOptimize and asserts the observable outcomes are identical:
// Result.Hash, FuelUsed, Return, and for faults the code, message, function
// and pc. It returns the optimized-mode outcome for further assertions.
func runBothModes(t *testing.T, prog *Program, cfg Config, params ...Value) (*Result, error) {
	t.Helper()
	prog.Optimize()

	optCfg := cfg
	optCfg.NoOptimize = false
	optRes, optErr := New(prog, optCfg).Run(params...)

	refCfg := cfg
	refCfg.NoOptimize = true
	refRes, refErr := New(prog, refCfg).Run(params...)

	switch {
	case optErr == nil && refErr == nil:
		if optRes.Hash() != refRes.Hash() {
			t.Fatalf("hash mismatch: optimized %d vs reference %d\n%s",
				optRes.Hash(), refRes.Hash(), prog.Disassemble())
		}
		if optRes.FuelUsed != refRes.FuelUsed {
			t.Fatalf("fuel mismatch: optimized %d vs reference %d\n%s",
				optRes.FuelUsed, refRes.FuelUsed, prog.Disassemble())
		}
		if !optRes.Return.Equal(refRes.Return) {
			t.Fatalf("return mismatch: optimized %s vs reference %s", optRes.Return, refRes.Return)
		}
	case optErr != nil && refErr != nil:
		of, ok1 := AsFault(optErr)
		rf, ok2 := AsFault(refErr)
		if !ok1 || !ok2 {
			t.Fatalf("non-fault errors: %v vs %v", optErr, refErr)
		}
		if of.Code != rf.Code || of.Msg != rf.Msg || of.Func != rf.Func || of.PC != rf.PC {
			t.Fatalf("fault mismatch:\noptimized  %v (code=%s func=%s pc=%d)\nreference %v (code=%s func=%s pc=%d)\n%s",
				of, of.Code, of.Func, of.PC, rf, rf.Code, rf.Func, rf.PC, prog.Disassemble())
		}
	default:
		t.Fatalf("outcome mismatch: optimized err=%v, reference err=%v\n%s",
			optErr, refErr, prog.Disassemble())
	}
	return optRes, optErr
}

func mainProg(numParams, numLocals int, code []Instr, consts ...Value) *Program {
	p := &Program{
		Consts: consts,
		Funcs: []FuncProto{{
			Name: "main", NumParams: numParams, NumLocals: numLocals, Code: code,
		}},
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// optOps returns the fused-stream opcode at each reachable slot of the entry
// function, skipping superinstruction interiors.
func optOps(p *Program) []Op {
	p.Optimize()
	var ops []Op
	stream := p.EntryFunc().opt
	for i := 0; i < len(stream); {
		ops = append(ops, stream[i].op)
		n := int(stream[i].n)
		if n == 0 {
			n = 1
		}
		i += n
	}
	return ops
}

func TestFusionPatterns(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want []Op
	}{
		{
			"loc-int-arith",
			mainProg(1, 1, []Instr{{OpLoadLocal, 0}, {OpPushInt, 5}, {OpAdd, 0}, {OpReturn, 0}}),
			[]Op{opLocIntArith, OpReturn},
		},
		{
			"loc-const-arith",
			mainProg(1, 1, []Instr{{OpLoadLocal, 0}, {OpPushConst, 0}, {OpMul, 0}, {OpReturn, 0}}, Float(2.5)),
			[]Op{opLocConstArith, OpReturn},
		},
		{
			"loc-loc-arith",
			mainProg(2, 2, []Instr{{OpLoadLocal, 0}, {OpLoadLocal, 1}, {OpSub, 0}, {OpReturn, 0}}),
			[]Op{opLocLocArith, OpReturn},
		},
		{
			"loc-int-arith-store",
			mainProg(1, 2, []Instr{
				{OpLoadLocal, 0}, {OpPushInt, 1}, {OpAdd, 0}, {OpStoreLocal, 1},
				{OpLoadLocal, 1}, {OpReturn, 0},
			}),
			[]Op{opLocIntArithStore, OpLoadLocal, OpReturn},
		},
		{
			"arith-store",
			mainProg(0, 1, []Instr{
				{OpPushInt, 2}, {OpPushInt, 3}, {OpMul, 0}, {OpStoreLocal, 0},
				{OpLoadLocal, 0}, {OpReturn, 0},
			}),
			[]Op{OpPushInt, OpPushInt, opArithStore, OpLoadLocal, OpReturn},
		},
		{
			"loc-int-cmp-br",
			mainProg(1, 1, []Instr{
				{OpLoadLocal, 0}, {OpPushInt, 10}, {OpLt, 0}, {OpJumpIfFalse, 6},
				{OpPushTrue, 0}, {OpReturn, 0},
				{OpPushFalse, 0}, {OpReturn, 0},
			}),
			[]Op{opLocIntCmpBr, OpPushTrue, OpReturn, OpPushFalse, OpReturn},
		},
		{
			"cmp-br",
			mainProg(0, 0, []Instr{
				{OpPushInt, 1}, {OpPushInt, 2}, {OpEq, 0}, {OpJumpIfTrue, 5},
				{OpReturn0, 0}, {OpPushTrue, 0}, {OpReturn, 0},
			}),
			[]Op{OpPushInt, OpPushInt, opCmpBr, OpReturn0, OpPushTrue, OpReturn},
		},
		{
			"loc-callb",
			mainProg(1, 1, []Instr{
				{OpLoadLocal, 0}, {OpCallB, int32(BSqrt)<<8 | 1}, {OpReturn, 0},
			}),
			[]Op{opLocCallB, OpReturn},
		},
		{
			// A jump target inside the window must block fusion.
			"jump-into-window",
			mainProg(1, 1, []Instr{
				{OpJump, 1},
				{OpLoadLocal, 0}, {OpPushInt, 5}, {OpAdd, 0}, {OpReturn, 0},
			}),
			[]Op{OpJump, opLocIntArith, OpReturn},
		},
		{
			"jump-into-interior-blocks-fusion",
			mainProg(1, 1, []Instr{
				{OpJump, 2},
				{OpLoadLocal, 0},
				{OpPushInt, 5}, // jump target: pc 2 is a leader
				{OpAdd, 0}, {OpReturn, 0},
			}),
			[]Op{OpJump, OpLoadLocal, OpPushInt, OpAdd, OpReturn},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := optOps(tc.prog)
			if len(got) != len(tc.want) {
				t.Fatalf("stream ops = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("stream ops = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestOptimizeDifferentialHandBuilt(t *testing.T) {
	// acc = 0; for (i = 0; i < n; i = i + 1) { acc = acc + i % 7 }
	loop := mainProg(1, 3, []Instr{
		{OpPushInt, 0}, {OpStoreLocal, 1}, // 0,1: acc = 0
		{OpPushInt, 0}, {OpStoreLocal, 2}, // 2,3: i = 0
		{OpLoadLocal, 2}, {OpLoadLocal, 0}, {OpLt, 0}, {OpJumpIfFalse, 19}, // 4..7
		{OpLoadLocal, 1}, {OpLoadLocal, 2}, {OpPushInt, 7}, {OpMod, 0}, // 8..11
		{OpAdd, 0}, {OpStoreLocal, 1}, // 12,13
		{OpLoadLocal, 2}, {OpPushInt, 1}, {OpAdd, 0}, {OpStoreLocal, 2}, // 14..17
		{OpJump, 4},                     // 18
		{OpLoadLocal, 1}, {OpReturn, 0}, // 19,20
	})

	divZero := mainProg(2, 2, []Instr{
		{OpLoadLocal, 0}, {OpLoadLocal, 1}, {OpDiv, 0}, {OpReturn, 0},
	})
	strCat := mainProg(1, 1, []Instr{
		{OpLoadLocal, 0}, {OpPushConst, 0}, {OpAdd, 0}, {OpReturn, 0},
	}, Str("-suffix"))
	typeErr := mainProg(1, 2, []Instr{
		{OpLoadLocal, 0}, {OpPushInt, 3}, {OpMul, 0}, {OpStoreLocal, 1},
		{OpLoadLocal, 1}, {OpReturn, 0},
	})
	sqrtCall := mainProg(1, 1, []Instr{
		{OpLoadLocal, 0}, {OpCallB, int32(BSqrt)<<8 | 1}, {OpReturn, 0},
	})

	cfg := DefaultConfig()
	cases := []struct {
		name   string
		prog   *Program
		params []Value
	}{
		{"loop-sum", loop, []Value{Int(1000)}},
		{"loop-zero-iter", loop, []Value{Int(0)}},
		{"div-ok", divZero, []Value{Int(84), Int(2)}},
		{"div-zero-fault", divZero, []Value{Int(84), Int(0)}},
		{"str-concat", strCat, []Value{Str("pre")}},
		{"str-concat-type-fault", strCat, []Value{Int(1)}},
		{"mul-type-fault", typeErr, []Value{Str("oops")}},
		{"mul-ok", typeErr, []Value{Int(14)}},
		{"sqrt", sqrtCall, []Value{Float(2.0)}},
		{"sqrt-type-fault", sqrtCall, []Value{Str("x")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runBothModes(t, tc.prog, cfg, tc.params...)
		})
	}

	t.Run("loop-sum-value", func(t *testing.T) {
		res, err := runBothModes(t, loop, cfg, Int(1000))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		for i := int64(0); i < 1000; i++ {
			want += i % 7
		}
		if res.Return.I != want {
			t.Fatalf("loop sum = %d, want %d", res.Return.I, want)
		}
	})
}

// TestOptimizeFuelExhaustionMidBlock sweeps the fuel budget across every
// possible exhaustion point of a fused-heavy loop and asserts the optimized
// interpreter deoptimizes to the exact reference fault (same pc) or the
// exact reference success (same FuelUsed).
func TestOptimizeFuelExhaustionMidBlock(t *testing.T) {
	prog := mainProg(1, 2, []Instr{
		{OpPushInt, 0}, {OpStoreLocal, 1}, // 0,1: i = 0
		{OpLoadLocal, 1}, {OpLoadLocal, 0}, {OpLt, 0}, {OpJumpIfFalse, 11}, // 2..5
		{OpLoadLocal, 1}, {OpPushInt, 1}, {OpAdd, 0}, {OpStoreLocal, 1}, // 6..9
		{OpJump, 2},                     // 10
		{OpLoadLocal, 1}, {OpReturn, 0}, // 11,12
	})
	prog.Optimize()
	base := DefaultConfig()
	// Sweep every fuel budget from 0 to the full run's cost + 2, so the
	// meter runs dry at every possible pc at least once.
	res, err := New(prog, base).Run(Int(3))
	if err != nil {
		t.Fatal(err)
	}
	for fuel := uint64(0); fuel <= res.FuelUsed+2; fuel++ {
		cfg := base
		cfg.Fuel = fuel
		runBothModes(t, prog, cfg, Int(3))
	}
}

// TestOptimizeStackLimitDeopt pins the stack-margin deoptimization: with a
// MaxStack too small for a fused block's transient growth, the optimized
// interpreter must report the reference interpreter's overflow fault at the
// reference pc.
func TestOptimizeStackLimitDeopt(t *testing.T) {
	prog := mainProg(1, 1, []Instr{
		{OpLoadLocal, 0}, {OpPushInt, 5}, {OpAdd, 0}, {OpReturn, 0},
	})
	for _, maxStack := range []int{1, 2, 3} {
		cfg := DefaultConfig()
		cfg.MaxStack = maxStack
		runBothModes(t, prog, cfg, Int(1))
	}
}

// TestOptimizeRecursion checks fused streams across call frames and that the
// locals free list recycles cleanly over deep call trees.
func TestOptimizeRecursion(t *testing.T) {
	// fib(n): if n < 2 return n; return fib(n-1) + fib(n-2)
	p := &Program{
		Funcs: []FuncProto{
			{Name: "main", NumParams: 1, NumLocals: 1, Code: []Instr{
				{OpLoadLocal, 0}, {OpCall, 1}, {OpReturn, 0},
			}},
			{Name: "fib", NumParams: 1, NumLocals: 1, Code: []Instr{
				{OpLoadLocal, 0}, {OpPushInt, 2}, {OpLt, 0}, {OpJumpIfFalse, 6}, // 0..3
				{OpLoadLocal, 0}, {OpReturn, 0}, // 4,5
				{OpLoadLocal, 0}, {OpPushInt, 1}, {OpSub, 0}, {OpCall, 1}, // 6..9
				{OpLoadLocal, 0}, {OpPushInt, 2}, {OpSub, 0}, {OpCall, 1}, // 10..13
				{OpAdd, 0}, {OpReturn, 0}, // 14,15
			}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := runBothModes(t, p, DefaultConfig(), Int(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.I != 610 {
		t.Fatalf("fib(15) = %d, want 610", res.Return.I)
	}

	// Reset-reuse must reproduce the identical result without allocating new
	// state.
	p.Optimize()
	vm := New(p, DefaultConfig())
	var last *Result
	for i := 0; i < 3; i++ {
		vm.Reset()
		r, err := vm.Run(Int(15))
		if err != nil {
			t.Fatal(err)
		}
		if last != nil && (r.Return.I != 610 || r.FuelUsed != last.FuelUsed) {
			t.Fatalf("reset-reuse run %d diverged: %d fuel %d vs %d", i, r.Return.I, r.FuelUsed, last.FuelUsed)
		}
		cp := *r
		last = &cp
	}
}

// TestOptimizeSanitizesUnknownOpcodes ensures a hostile wire program cannot
// dispatch into superinstruction handlers: unknown opcodes (which Validate
// accepts) execute as illegal-opcode faults in both modes, even when their
// byte value collides with an internal superinstruction.
func TestOptimizeSanitizesUnknownOpcodes(t *testing.T) {
	for _, raw := range []Op{opWireMax + 1, opLocIntArith, opLocCallB, opIllegal, 255} {
		prog := mainProg(0, 0, []Instr{{OpNop, 0}, {raw, 0}, {OpReturn0, 0}})
		_, err := runBothModes(t, prog, DefaultConfig())
		f, ok := AsFault(err)
		if !ok {
			t.Fatalf("op %d: want illegal-opcode fault, got err=%v", uint8(raw), err)
		}
		if f.Code != FaultBadProgram || f.PC != 1 {
			t.Fatalf("op %d: fault %v (code=%s pc=%d), want bad-program at pc 1", uint8(raw), f, f.Code, f.PC)
		}
	}
}

// TestOptimizeDifferentialCorpus replays every fuzz-corpus program through
// both interpreters. Corpus entries are arbitrary fuzz-found byte strings;
// any that decode must behave identically in both modes.
func TestOptimizeDifferentialCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzProgramUnmarshal")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	cfg := Config{
		Fuel: 5_000, MaxStack: 512, MaxCall: 32,
		MaxHeap: 2048, MaxEmit: 32, MaxPrint: 4, Seed: 1,
	}
	parsed, ran := 0, 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		raw, ok := parseCorpusEntry(t, string(data))
		if !ok {
			continue
		}
		parsed++
		var p Program
		if err := p.UnmarshalBinary(raw); err != nil {
			continue // fuzz-found inputs that exercise decoder rejection
		}
		params := make([]Value, p.EntryFunc().NumParams)
		t.Run(e.Name(), func(t *testing.T) {
			runBothModes(t, &p, cfg, params...)
		})
		ran++
	}
	if parsed == 0 {
		t.Fatal("no corpus entries parsed; corpus missing?")
	}
	if ran == 0 {
		t.Fatal("no corpus entry decoded to a runnable program; expected at least the checked-in seeds")
	}
}

// parseCorpusEntry decodes one Go fuzz corpus file ("go test fuzz v1"
// followed by one []byte(...) literal per fuzz argument).
func parseCorpusEntry(t *testing.T, s string) ([]byte, bool) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, false
	}
	arg := strings.TrimSpace(lines[1])
	arg = strings.TrimPrefix(arg, "[]byte(")
	arg = strings.TrimSuffix(arg, ")")
	str, err := strconv.Unquote(arg)
	if err != nil {
		t.Fatalf("bad corpus entry: %v", err)
	}
	return []byte(str), true
}
