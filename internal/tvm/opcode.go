package tvm

import "fmt"

// Op is a TVM opcode. The instruction set is a conventional stack-machine
// ISA: operands are pushed, operators pop and push. Each instruction has one
// 32-bit immediate argument (unused by most ops).
type Op uint8

// Opcodes. The numeric values are part of the wire format; append only.
const (
	OpNop Op = iota

	// Stack & constants.
	OpPushConst // push consts[arg]
	OpPushInt   // push Int(arg)
	OpPushNil   // push nil
	OpPushTrue  // push true
	OpPushFalse // push false
	OpPop       // discard top of stack
	OpDup       // duplicate top of stack

	// Locals. Slot 0..NumParams-1 are the function parameters.
	OpLoadLocal  // push locals[arg]
	OpStoreLocal // locals[arg] = pop

	// Arithmetic. Numeric ops accept int/int, float/float, or mixed
	// (promoting to float); OpAdd additionally concatenates str/str.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod // ints only
	OpNeg

	// Comparison: push bool.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Logic.
	OpNot

	// Control flow. Targets are absolute instruction indexes within the
	// current function.
	OpJump        // pc = arg
	OpJumpIfFalse // if !pop { pc = arg }
	OpJumpIfTrue  // if pop { pc = arg }

	// Calls.
	OpCall    // call funcs[arg]; callee pops its own params
	OpCallB   // call builtin: arg = builtin<<8 | argc
	OpReturn  // return pop from current function
	OpReturn0 // return nil from current function

	// Arrays & strings.
	OpNewArray // pop arg elements (in push order) and push an array
	OpIndex    // a[i]: pop i, pop a, push element / byte (as int) for str
	OpSetIndex // a[i] = v: pop v, pop i, pop a
	OpLen      // push length of array or string
	OpAppend   // pop v, pop a (array); append v to a; push a
)

// opWireMax is the highest opcode that may appear in the wire format. Ops
// above it are internal superinstructions produced by the load-time
// optimization pass (see optimize.go); they never appear in Program.Code and
// never cross the wire.
const opWireMax = OpAppend

// Superinstructions. Each fuses a short sequence of wire opcodes that the
// TCL compiler emits back to back on hot paths. They exist only in the
// optimized instruction stream: the fuser is the sole producer, so their
// operands are trusted (bounds were validated on the original instructions).
// The `sub` field of an optimized instruction carries the underlying
// arithmetic/comparison opcode.
const (
	opLocIntArith      Op = 200 + iota // loadl a; pushi b; arith            → push
	opLocConstArith                    // loadl a; pushc b; arith            → push
	opLocLocArith                      // loadl a; loadl b; arith            → push
	opLocIntArithStore                 // loadl a; pushi b; arith; storel c  → locals[c]
	opArithStore                       // arith; storel a                    → locals[a]
	opLocIntCmp                        // loadl a; pushi b; cmp              → push bool
	opLocLocCmp                        // loadl a; loadl b; cmp              → push bool
	opCmpBr                            // cmp; jz/jnz a                      → branch
	opLocIntCmpBr                      // loadl a; pushi b; cmp; jz/jnz c    → branch
	opLocLocCmpBr                      // loadl a; loadl b; cmp; jz/jnz c    → branch
	opLocCallB                         // loadl a; callb b                   → push result
	opIllegal                          // sanitized unknown opcode (a = original byte)
)

var fusedNames = map[Op]string{
	opLocIntArith:      "loc.int.arith",
	opLocConstArith:    "loc.const.arith",
	opLocLocArith:      "loc.loc.arith",
	opLocIntArithStore: "loc.int.arith.store",
	opArithStore:       "arith.store",
	opLocIntCmp:        "loc.int.cmp",
	opLocLocCmp:        "loc.loc.cmp",
	opCmpBr:            "cmp.br",
	opLocIntCmpBr:      "loc.int.cmp.br",
	opLocLocCmpBr:      "loc.loc.cmp.br",
	opLocCallB:         "loc.callb",
	opIllegal:          "illegal",
}

var opNames = map[Op]string{
	OpNop:         "nop",
	OpPushConst:   "pushc",
	OpPushInt:     "pushi",
	OpPushNil:     "pushnil",
	OpPushTrue:    "pushtrue",
	OpPushFalse:   "pushfalse",
	OpPop:         "pop",
	OpDup:         "dup",
	OpLoadLocal:   "loadl",
	OpStoreLocal:  "storel",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpDiv:         "div",
	OpMod:         "mod",
	OpNeg:         "neg",
	OpEq:          "eq",
	OpNe:          "ne",
	OpLt:          "lt",
	OpLe:          "le",
	OpGt:          "gt",
	OpGe:          "ge",
	OpNot:         "not",
	OpJump:        "jmp",
	OpJumpIfFalse: "jz",
	OpJumpIfTrue:  "jnz",
	OpCall:        "call",
	OpCallB:       "callb",
	OpReturn:      "ret",
	OpReturn0:     "ret0",
	OpNewArray:    "newarr",
	OpIndex:       "index",
	OpSetIndex:    "setindex",
	OpLen:         "len",
	OpAppend:      "append",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	if s, ok := fusedNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Arg int32
}

// String renders the instruction in assembler form.
func (i Instr) String() string {
	switch i.Op {
	case OpPushConst, OpPushInt, OpLoadLocal, OpStoreLocal, OpJump,
		OpJumpIfFalse, OpJumpIfTrue, OpCall, OpNewArray:
		return fmt.Sprintf("%s %d", i.Op, i.Arg)
	case OpCallB:
		return fmt.Sprintf("%s %s/%d", i.Op, Builtin(i.Arg>>8), i.Arg&0xff)
	default:
		return i.Op.String()
	}
}

// fuelCost returns the fuel consumed by executing the instruction. Calls and
// allocations cost more than plain stack traffic so that fuel tracks real
// work at least roughly.
func fuelCost(op Op) uint64 {
	switch op {
	case OpCall, OpCallB:
		return 4
	case OpNewArray, OpAppend:
		return 2
	default:
		return 1
	}
}
