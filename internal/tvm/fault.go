package tvm

import "fmt"

// FaultCode classifies runtime faults. Codes cross the wire: a provider that
// hits a fault reports the code back to the broker, which uses it for QoC
// decisions (e.g. an out-of-fuel fault on one provider does not trigger
// re-issue to a slower one).
type FaultCode uint8

// Fault codes. Values are part of the wire format; append only.
const (
	FaultNone          FaultCode = iota
	FaultOutOfFuel               // fuel meter exhausted
	FaultStackOverflow           // operand or call stack limit exceeded
	FaultTypeMismatch            // operand kind invalid for opcode
	FaultDivByZero               // integer division or modulo by zero
	FaultIndexRange              // array/string index out of range
	FaultBadProgram              // malformed bytecode (bad const/func/local index)
	FaultBadBuiltin              // unknown builtin or wrong arity
	FaultOutOfMemory             // allocation limit exceeded
	FaultUserAbort               // abort() builtin called by the program
	FaultCancelled               // execution cancelled by the host (provider shutdown, job cancel)
)

// String returns a stable lower-snake name for the code.
func (c FaultCode) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultOutOfFuel:
		return "out_of_fuel"
	case FaultStackOverflow:
		return "stack_overflow"
	case FaultTypeMismatch:
		return "type_mismatch"
	case FaultDivByZero:
		return "div_by_zero"
	case FaultIndexRange:
		return "index_range"
	case FaultBadProgram:
		return "bad_program"
	case FaultBadBuiltin:
		return "bad_builtin"
	case FaultOutOfMemory:
		return "out_of_memory"
	case FaultUserAbort:
		return "user_abort"
	case FaultCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("fault(%d)", uint8(c))
	}
}

// Fault is a structured VM runtime error. It records where execution stopped
// so that faults are debuggable across the wire.
type Fault struct {
	Code FaultCode
	Msg  string
	Func string // function name, if known
	PC   int    // instruction index within Func
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Func != "" {
		return fmt.Sprintf("tvm: %s: %s (at %s+%d)", f.Code, f.Msg, f.Func, f.PC)
	}
	return fmt.Sprintf("tvm: %s: %s", f.Code, f.Msg)
}

// newFault constructs a fault; the VM fills in Func/PC when it propagates.
func newFault(code FaultCode, format string, args ...any) *Fault {
	return &Fault{Code: code, Msg: fmt.Sprintf(format, args...)}
}
