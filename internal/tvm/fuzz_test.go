package tvm

import "testing"

// FuzzProgramUnmarshal checks that arbitrary bytes never panic the program
// decoder, and that anything it accepts validates and can be executed (with
// synthesized zero-value parameters) under tight limits without panicking.
func FuzzProgramUnmarshal(f *testing.F) {
	seed, err := sampleProgram().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(programMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Program
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		// Decoded implies validated; run it to shake out interpreter
		// assumptions. Zero-value (nil) parameters are legal dynamic
		// values for any kind check. Every accepted program doubles as a
		// differential probe of the load-time optimization pass: the fused
		// and straight streams must agree on every observable outcome.
		params := make([]Value, p.EntryFunc().NumParams)
		cfg := Config{
			Fuel: 5_000, MaxStack: 512, MaxCall: 32,
			MaxHeap: 2048, MaxEmit: 32, MaxPrint: 4, Seed: 1,
		}
		runBothModes(t, &p, cfg, params...)
	})
}

// FuzzDecodeValue checks the value decoder against arbitrary input.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range []Value{Int(-1), Float(3.14), Str("abc"), Bool(true), Arr(Int(1), Str("x")), Nil()} {
		data, err := AppendValue(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeValue(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decoder claims %d bytes of %d", n, len(data))
		}
		// Accepted values re-encode and compare equal.
		out, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v", err)
		}
		v2, _, err := DecodeValue(out)
		if err != nil || !v.Equal(v2) {
			t.Fatalf("re-decode mismatch: %s vs %s (%v)", v, v2, err)
		}
	})
}
