package tvm

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// callBuiltin runs a one-instruction program that applies the builtin to the
// given constant arguments and returns its value.
func callBuiltin(t *testing.T, b Builtin, args ...Value) (Value, error) {
	t.Helper()
	code := make([]Instr, 0, len(args)+2)
	for i := range args {
		code = append(code, Instr{OpPushConst, int32(i)})
	}
	code = append(code, Instr{OpCallB, int32(b)<<8 | int32(len(args))}, Instr{OpReturn, 0})
	// Arrays are not legal constants; route them through locals instead.
	var consts []Value
	var pre []Instr
	locals := 0
	for i, a := range args {
		if a.Kind == KindArr {
			t.Fatalf("callBuiltin arg %d: use runBuiltinArr for arrays", i)
		}
		consts = append(consts, a)
	}
	p := prog1(0, locals, consts, append(pre, code...)...)
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := New(p, DefaultConfig()).Run()
	if err != nil {
		return Value{}, err
	}
	return res.Return, nil
}

func TestMathBuiltins(t *testing.T) {
	tests := []struct {
		name string
		b    Builtin
		args []Value
		want float64
	}{
		{"sqrt", BSqrt, []Value{Float(9)}, 3},
		{"sqrt-int", BSqrt, []Value{Int(16)}, 4},
		{"pow", BPow, []Value{Float(2), Float(10)}, 1024},
		{"floor", BFloor, []Value{Float(2.9)}, 2},
		{"ceil", BCeil, []Value{Float(2.1)}, 3},
		{"sin0", BSin, []Value{Float(0)}, 0},
		{"cos0", BCos, []Value{Float(0)}, 1},
		{"log-e", BLog, []Value{Float(math.E)}, 1},
		{"exp0", BExp, []Value{Float(0)}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := callBuiltin(t, tc.b, tc.args...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.AsFloat()-tc.want) > 1e-12 {
				t.Fatalf("= %s, want %v", got, tc.want)
			}
		})
	}
}

func TestAbsMinMax(t *testing.T) {
	if v, _ := callBuiltin(t, BAbs, Int(-5)); v.I != 5 || v.Kind != KindInt {
		t.Fatalf("abs(-5) = %s", v)
	}
	if v, _ := callBuiltin(t, BAbs, Float(-2.5)); v.F != 2.5 {
		t.Fatalf("abs(-2.5) = %s", v)
	}
	if v, _ := callBuiltin(t, BMin, Int(3), Int(7)); v.I != 3 {
		t.Fatalf("min = %s", v)
	}
	if v, _ := callBuiltin(t, BMax, Int(3), Float(7.5)); v.F != 7.5 {
		t.Fatalf("max mixed = %s", v)
	}
}

func TestConversions(t *testing.T) {
	if v, _ := callBuiltin(t, BToInt, Float(3.9)); v.I != 3 {
		t.Fatalf("int(3.9) = %s", v)
	}
	if v, _ := callBuiltin(t, BToInt, Bool(true)); v.I != 1 {
		t.Fatalf("int(true) = %s", v)
	}
	if v, _ := callBuiltin(t, BToFloat, Int(2)); v.F != 2.0 || v.Kind != KindFloat {
		t.Fatalf("float(2) = %s", v)
	}
	if v, _ := callBuiltin(t, BToStr, Int(42)); v.S != "42" {
		t.Fatalf("str(42) = %s", v)
	}
	if v, _ := callBuiltin(t, BToStr, Str("x")); v.S != "x" {
		t.Fatalf("str identity = %s", v)
	}
	if _, err := callBuiltin(t, BToInt, Str("nope")); err == nil {
		t.Fatal("int(str) should fault")
	}
}

func TestStringBuiltins(t *testing.T) {
	if v, _ := callBuiltin(t, BOrd, Str("A")); v.I != 65 {
		t.Fatalf("ord = %s", v)
	}
	if v, _ := callBuiltin(t, BChr, Int(66)); v.S != "B" {
		t.Fatalf("chr = %s", v)
	}
	if v, _ := callBuiltin(t, BSubstr, Str("hello"), Int(1), Int(3)); v.S != "el" {
		t.Fatalf("substr = %s", v)
	}
	if _, err := callBuiltin(t, BSubstr, Str("hi"), Int(1), Int(9)); err == nil {
		t.Fatal("substr out of range should fault")
	}
	if v, _ := callBuiltin(t, BLower, Str("AbC")); v.S != "abc" {
		t.Fatalf("lower = %s", v)
	}
	if v, _ := callBuiltin(t, BUpper, Str("abc")); v.S != "ABC" {
		t.Fatalf("upper = %s", v)
	}
	if v, _ := callBuiltin(t, BFind, Str("banana"), Str("na")); v.I != 2 {
		t.Fatalf("find = %s", v)
	}
	if v, _ := callBuiltin(t, BFind, Str("abc"), Str("z")); v.I != -1 {
		t.Fatalf("find missing = %s", v)
	}
}

func TestSplit(t *testing.T) {
	v, err := callBuiltin(t, BSplit, Str("a,b,,c"), Str(","))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindArr || len(v.A.Elems) != 4 || v.A.Elems[2].S != "" {
		t.Fatalf("split = %s", v)
	}
	// Empty separator splits on whitespace runs.
	v, err = callBuiltin(t, BSplit, Str("  a\tb  c "), Str(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.A.Elems) != 3 || v.A.Elems[0].S != "a" {
		t.Fatalf("split fields = %s", v)
	}
}

func TestParseBuiltins(t *testing.T) {
	if v, _ := callBuiltin(t, BParseInt, Str(" -42 ")); v.I != -42 {
		t.Fatalf("parseint = %s", v)
	}
	if _, err := callBuiltin(t, BParseInt, Str("4.2")); err == nil {
		t.Fatal("parseint non-int should fault")
	}
	if v, _ := callBuiltin(t, BParseFloat, Str("2.5")); v.F != 2.5 {
		t.Fatalf("parsefloat = %s", v)
	}
}

func TestRandIntRange(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpPushInt, 10},
		Instr{OpCallB, int32(BRandInt)<<8 | 1},
		Instr{OpReturn, 0})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 50; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		res, err := New(p, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Return.I < 0 || res.Return.I >= 10 {
			t.Fatalf("randint out of range: %s", res.Return)
		}
	}
	if _, err := callBuiltin(t, BRandInt, Int(0)); err == nil {
		t.Fatal("randint(0) should fault")
	}
}

func TestPrintRespectsLimit(t *testing.T) {
	p := prog1(0, 1, []Value{Str("line")},
		// i = 0; while i < 500 { print("line"); i++ }
		Instr{OpPushInt, 0}, Instr{OpStoreLocal, 0},
		Instr{OpLoadLocal, 0}, Instr{OpPushInt, 500}, Instr{OpLt, 0},
		Instr{OpJumpIfFalse, 14},
		Instr{OpPushConst, 0}, Instr{OpCallB, int32(BPrint)<<8 | 1}, Instr{OpPop, 0},
		Instr{OpLoadLocal, 0}, Instr{OpPushInt, 1}, Instr{OpAdd, 0}, Instr{OpStoreLocal, 0},
		Instr{OpJump, 2},
		Instr{OpReturn0, 0},
	)
	res := run(t, p)
	if len(res.Printed) != DefaultConfig().MaxPrint {
		t.Fatalf("printed %d lines, want cap %d", len(res.Printed), DefaultConfig().MaxPrint)
	}
}

func TestEmitLimit(t *testing.T) {
	p := prog1(0, 0, nil,
		Instr{OpPushInt, 1}, Instr{OpCallB, int32(BEmit)<<8 | 1}, Instr{OpPop, 0},
		Instr{OpJump, 0})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxEmit = 10
	cfg.Fuel = 1 << 20
	_, err := New(p, cfg).Run()
	f, ok := AsFault(err)
	if !ok || f.Code != FaultOutOfMemory {
		t.Fatalf("want out_of_memory on emit overflow, got %v", err)
	}
}

func TestHashBuiltinMatchesHashValue(t *testing.T) {
	v, err := callBuiltin(t, BHash, Str("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(v.I) != HashValue(Str("abc")) {
		t.Fatalf("hash builtin disagrees with HashValue")
	}
}

func TestBuiltinNameResolution(t *testing.T) {
	names := BuiltinNames()
	sort.Strings(names)
	if len(names) != len(builtinTable) {
		t.Fatalf("BuiltinNames returned %d, table has %d", len(names), len(builtinTable))
	}
	for _, n := range names {
		b, ok := BuiltinByName(n)
		if !ok {
			t.Fatalf("BuiltinByName(%q) failed", n)
		}
		if b.String() != n {
			t.Fatalf("name round trip %q -> %q", n, b.String())
		}
		if _, ok := BuiltinArity(b); !ok {
			t.Fatalf("BuiltinArity(%q) failed", n)
		}
	}
	if _, ok := BuiltinByName("no_such_builtin"); ok {
		t.Fatal("resolved a nonexistent builtin")
	}
	if !strings.Contains(Builtin(9999).String(), "9999") {
		t.Fatal("unknown builtin String should include the id")
	}
}

func TestWrongArityFaults(t *testing.T) {
	// sqrt with 2 args: validation passes (id is known) but execution
	// faults with bad_builtin.
	p := prog1(0, 0, []Value{Float(1), Float(2)},
		Instr{OpPushConst, 0}, Instr{OpPushConst, 1},
		Instr{OpCallB, int32(BSqrt)<<8 | 2}, Instr{OpReturn, 0})
	runFault(t, p, FaultBadBuiltin)
}
