package cliparse

import (
	"testing"

	"repro/internal/tvm"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		in   string
		want tvm.Value
	}{
		{"3", tvm.Int(3)},
		{"-42", tvm.Int(-42)},
		{" 7 ", tvm.Int(7)},
		{"2.5", tvm.Float(2.5)},
		{"1e6", tvm.Float(1e6)},
		{"-0.25", tvm.Float(-0.25)},
		{"true", tvm.Bool(true)},
		{"false", tvm.Bool(false)},
		{`"hello"`, tvm.Str("hello")},
		{`'single'`, tvm.Str("single")},
		{`"with, comma"`, tvm.Str("with, comma")},
		{`""`, tvm.Str("")},
		{`"true"`, tvm.Str("true")}, // quoted keyword stays a string
	}
	for _, tc := range tests {
		got, err := Value(tc.in)
		if err != nil {
			t.Errorf("Value(%q): %v", tc.in, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("Value(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestValueErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "abc", "1.2.3", "12abc"} {
		if _, err := Value(in); err == nil {
			t.Errorf("Value(%q) accepted", in)
		}
	}
}

func TestValuesList(t *testing.T) {
	vals, err := Values(`1, 2.5, "a,b", true`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tvm.Value{tvm.Int(1), tvm.Float(2.5), tvm.Str("a,b"), tvm.Bool(true)}
	if len(vals) != len(want) {
		t.Fatalf("got %d values", len(vals))
	}
	for i := range want {
		if !vals[i].Equal(want[i]) {
			t.Fatalf("vals[%d] = %s, want %s", i, vals[i], want[i])
		}
	}
}

func TestValuesEmpty(t *testing.T) {
	vals, err := Values("  ")
	if err != nil || vals != nil {
		t.Fatalf("empty = %v, %v", vals, err)
	}
}

func TestValuesTrailingComma(t *testing.T) {
	if _, err := Values("1, 2,"); err == nil {
		t.Fatal("trailing comma accepted (should report the empty field)")
	}
}

func TestRows(t *testing.T) {
	rows, err := Rows(`1, 2; 3, 4; "x; y", 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][0].I != 3 || rows[1][1].I != 4 {
		t.Fatalf("row 1 = %v", rows[1])
	}
	if rows[2][0].S != "x; y" {
		t.Fatalf("quoted semicolon split: %v", rows[2])
	}
}

func TestRowsEmptyRowBetweenSemicolons(t *testing.T) {
	// "3; ; 5" has an empty middle row: a parameterless tasklet.
	rows, err := Rows("3; ; 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1] != nil {
		t.Fatalf("rows = %v", rows)
	}
}

func TestUnterminatedQuote(t *testing.T) {
	if _, err := Values(`"open`); err == nil {
		t.Fatal("unterminated quote accepted")
	}
	if _, err := Rows(`1; "open`); err == nil {
		t.Fatal("unterminated quote accepted in rows")
	}
}
