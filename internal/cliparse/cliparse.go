// Package cliparse parses the command-line parameter syntax shared by the
// taskletc and tasklet-run tools: comma-separated values, semicolon-
// separated tasklet rows.
//
// Value syntax: bare ints and floats, true/false, and single- or double-
// quoted strings. Examples:
//
//	3            -> Int(3)
//	2.5          -> Float(2.5)
//	1e6          -> Float(1e6)
//	true         -> Bool(true)
//	"hi, there"  -> Str("hi, there")   (commas inside quotes are preserved)
package cliparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tvm"
)

// Value parses one parameter token.
func Value(tok string) (tvm.Value, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return tvm.Value{}, fmt.Errorf("cliparse: empty parameter")
	}
	if len(tok) >= 2 {
		if (tok[0] == '"' && tok[len(tok)-1] == '"') || (tok[0] == '\'' && tok[len(tok)-1] == '\'') {
			return tvm.Str(tok[1 : len(tok)-1]), nil
		}
	}
	switch tok {
	case "true":
		return tvm.Bool(true), nil
	case "false":
		return tvm.Bool(false), nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return tvm.Int(i), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return tvm.Float(f), nil
	}
	return tvm.Value{}, fmt.Errorf("cliparse: cannot parse parameter %q (quote strings)", tok)
}

// Values parses a comma-separated parameter list. Commas inside quoted
// strings do not split. An empty input yields nil.
func Values(s string) ([]tvm.Value, error) {
	toks, err := splitTop(s, ',')
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, nil
	}
	vals := make([]tvm.Value, 0, len(toks))
	for _, tok := range toks {
		v, err := Value(tok)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// Rows parses semicolon-separated parameter rows, one tasklet per row.
// "3; 4; 5" yields three single-parameter rows; "1,2; 3,4" two two-
// parameter rows. An empty input yields nil.
func Rows(s string) ([][]tvm.Value, error) {
	rowStrs, err := splitTop(s, ';')
	if err != nil {
		return nil, err
	}
	if len(rowStrs) == 0 {
		return nil, nil
	}
	rows := make([][]tvm.Value, 0, len(rowStrs))
	for _, rs := range rowStrs {
		row, err := Values(rs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// splitTop splits on sep outside of quotes. Whitespace-only input yields
// nil; empty fields between separators are kept (they error later in Value,
// pointing at the actual mistake).
func splitTop(s string, sep byte) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var parts []string
	var cur strings.Builder
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			cur.WriteByte(c)
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
			cur.WriteByte(c)
		case c == sep:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("cliparse: unterminated quote in %q", s)
	}
	parts = append(parts, cur.String())
	return parts, nil
}
