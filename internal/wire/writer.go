package wire

import "io"

// WriterOpts configures a WriterLoop.
type WriterOpts struct {
	// Max bounds how many queued messages one flush may cover.
	Max int
	// NoCoalesce disables burst draining: every message is sent (and
	// flushed) individually, restoring the historical one-frame-per-syscall
	// behavior for ablation and differential tests.
	NoCoalesce bool
	// Fold, when non-nil, rewrites each drained burst before it is sent —
	// e.g. FoldBatchFrames collapses runs of per-attempt frames into batch
	// frames. Nil sends the burst unchanged.
	Fold func([]Message) []Message
	// Done, when non-nil, terminates the loop when closed (peers whose out
	// channel stays open for the process lifetime). When nil, the loop runs
	// until out is closed, and on a send error it keeps draining out so
	// enqueuers never block.
	Done <-chan struct{}
	// Closer is closed on a send error, unblocking the connection's reader
	// so it tears the peer down. Typically the underlying net.Conn.
	Closer io.Closer
}

// WriterLoop drains a connection's outgoing queue onto conn. Unless
// coalescing is disabled it folds whatever burst is queued (up to Max) into
// one SendBatch, so a single flush — one syscall — covers the burst. It is
// the one copy of the drain logic shared by the broker (provider, consumer
// and peer links) and the provider (broker link).
func WriterLoop(conn *Conn, out <-chan Message, o WriterOpts) {
	if o.Max <= 0 {
		o.Max = 1
	}
	batch := make([]Message, 0, o.Max)
	for {
		var m Message
		var ok bool
		select {
		case m, ok = <-out:
			if !ok {
				return
			}
		case <-o.Done: // never fires while Done is nil
			return
		}
		batch = append(batch[:0], m)
		if !o.NoCoalesce {
		drain:
			for len(batch) < o.Max {
				select {
				case mm, ok := <-out:
					if !ok {
						break drain
					}
					batch = append(batch, mm)
				default:
					break drain
				}
			}
		}
		if o.Fold != nil {
			batch = o.Fold(batch)
		}
		if err := conn.SendBatch(batch); err != nil {
			if o.Closer != nil {
				o.Closer.Close() // unblocks the reader, which tears the peer down
			}
			if o.Done == nil {
				// Drain remaining messages so enqueuers never block.
				for range out {
				}
			}
			return
		}
	}
}

// FoldBatchFrames rewrites one writer burst in place, collapsing every run
// of two or more consecutive AttemptResult frames into one
// AttemptResultBatch and every such run of ResultPush frames into one
// ResultPushBatch. Lone frames pass through untouched, so low-rate traffic
// stays byte-identical to the pre-batch revision, and relative frame order
// is preserved — a ResultPush queued before a JobDone still arrives before
// it. Callers must only use it on connections whose peer advertised
// CapBatch.
func FoldBatchFrames(batch []Message) []Message {
	out := batch[:0] // in-place: the write index never passes the read index
	for i := 0; i < len(batch); {
		switch batch[i].(type) {
		case *AttemptResult:
			j := i + 1
			for j < len(batch) {
				if _, ok := batch[j].(*AttemptResult); !ok {
					break
				}
				j++
			}
			if j-i >= 2 {
				rb := &AttemptResultBatch{Results: make([]AttemptResult, 0, j-i)}
				for k := i; k < j; k++ {
					rb.Results = append(rb.Results, *batch[k].(*AttemptResult))
				}
				out = append(out, rb)
			} else {
				out = append(out, batch[i])
			}
			i = j
		case *ResultPush:
			j := i + 1
			for j < len(batch) {
				if _, ok := batch[j].(*ResultPush); !ok {
					break
				}
				j++
			}
			if j-i >= 2 {
				rb := &ResultPushBatch{Results: make([]ResultPush, 0, j-i)}
				for k := i; k < j; k++ {
					rb.Results = append(rb.Results, *batch[k].(*ResultPush))
				}
				out = append(out, rb)
			} else {
				out = append(out, batch[i])
			}
			i = j
		default:
			out = append(out, batch[i])
			i++
		}
	}
	return out
}
