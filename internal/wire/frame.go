package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// bufPool recycles frame scratch buffers across the encode and receive hot
// paths. Buffers that grew past maxPooledBuf (a huge program shipment, a
// giant parameter set) are dropped rather than pinned in the pool.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

const maxPooledBuf = 64 << 10

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// encPool recycles encoder state. The encoder is handed to Message.encode
// through an interface call, which the compiler cannot devirtualize, so a
// stack-allocated enc would escape on every frame; pooling it keeps the
// encode hot path allocation-free.
var encPool = sync.Pool{New: func() any { return new(enc) }}

// AppendFrame encodes m as a complete frame (length, type, payload) appended
// to dst, and returns the extended slice. It is the allocation-free core of
// Marshal: encoding writes directly into dst's spare capacity, so a caller
// that reuses its buffer pays zero allocations per message. The emitted
// bytes are identical to Marshal's.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(m.Type()))
	e := encPool.Get().(*enc)
	e.buf, e.err = dst, nil
	m.encode(e)
	buf, err := e.buf, e.err
	e.buf, e.err = nil, nil
	encPool.Put(e)
	if err != nil {
		return dst[:base], fmt.Errorf("wire: encode %s: %w", m.Type(), err)
	}
	n := len(buf) - base - 5
	if n > MaxFrame {
		return buf[:base], fmt.Errorf("wire: %s payload %d exceeds frame limit", m.Type(), n)
	}
	binary.BigEndian.PutUint32(buf[base:base+4], uint32(n))
	return buf, nil
}

// Marshal encodes a message into a complete frame (length, type, payload).
// Encoding runs through a pooled scratch buffer, so the only allocation is
// the exact-size caller-owned frame returned — small messages (Heartbeat,
// Bye) no longer pay append-growth reallocations on top. The hot send path
// (Conn.Send / Conn.SendBatch) skips even that copy by writing pooled
// buffers straight into the connection.
func Marshal(m Message) ([]byte, error) {
	bp := getBuf()
	frame, err := AppendFrame((*bp)[:0], m)
	if err != nil {
		putBuf(bp)
		return nil, err
	}
	out := make([]byte, len(frame))
	copy(out, frame)
	*bp = frame
	putBuf(bp)
	return out, nil
}

// Unmarshal decodes a payload of the given type. The payload is fully
// copied during decoding; the message never aliases it.
func Unmarshal(t MsgType, payload []byte) (Message, error) {
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	m.decode(&d)
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", t, err)
	}
	return m, nil
}

// Conn wraps a net.Conn with buffered, mutex-protected message I/O. Reads
// and writes may proceed concurrently (one reader, any number of writers).
//
// Flush policy (write coalescing): each Send writes its frame into the
// buffered writer under the write lock, then flushes only if it is the last
// writer in flight — when another Send or SendBatch has already registered
// (it will acquire the lock next), the flush is left to it, so one syscall
// covers the whole burst. A lone Send therefore still flushes immediately:
// coalescing never delays a frame behind an idle line, it only merges
// flushes that would otherwise race each other. Set NoCoalesce to restore
// the historical flush-per-Send behavior (ablation and differential tests).
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	// writers counts Send/SendBatch calls registered but not yet finished;
	// the writer that drops it to zero owns the flush.
	writers atomic.Int32

	wmu sync.Mutex
	w   *bufio.Writer

	// NoCoalesce forces a flush after every Send/SendBatch regardless of
	// concurrent writers. Frame bytes are unaffected — only the syscall
	// boundaries move — which the differential tests rely on.
	NoCoalesce bool

	// ReadTimeout, when nonzero, bounds each ReadMessage call.
	ReadTimeout time.Duration
}

// NewConn wraps nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64<<10),
		w:  bufio.NewWriterSize(nc, 64<<10),
	}
}

// writeLocked encodes m through a pooled buffer into the buffered writer.
// Callers must hold wmu.
func (c *Conn) writeLocked(m Message) error {
	bp := getBuf()
	frame, err := AppendFrame((*bp)[:0], m)
	if err != nil {
		putBuf(bp)
		return err
	}
	_, werr := c.w.Write(frame)
	*bp = frame
	putBuf(bp)
	if werr != nil {
		return fmt.Errorf("wire: send %s: %w", m.Type(), werr)
	}
	return nil
}

// flushIfLastLocked performs the coalesced flush: the writer that drops the
// in-flight count to zero flushes for everyone. Callers must hold wmu and
// have registered themselves in c.writers.
func (c *Conn) flushIfLastLocked() error {
	if c.writers.Add(-1) == 0 || c.NoCoalesce {
		if err := c.w.Flush(); err != nil {
			return fmt.Errorf("wire: flush: %w", err)
		}
	}
	return nil
}

// Send encodes and writes one message. Safe for concurrent use; see the
// Conn doc for the flush policy.
func (c *Conn) Send(m Message) error {
	c.writers.Add(1)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.writeLocked(m)
	if ferr := c.flushIfLastLocked(); err == nil {
		err = ferr
	}
	return err
}

// SendBatch encodes and writes every message in order under one lock
// acquisition and at most one flush. The byte stream is identical to
// calling Send for each message; only the flush boundaries differ. Safe for
// concurrent use with Send and other SendBatch calls.
func (c *Conn) SendBatch(ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	c.writers.Add(1)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var err error
	for _, m := range ms {
		if err = c.writeLocked(m); err != nil {
			break
		}
	}
	if ferr := c.flushIfLastLocked(); err == nil {
		err = ferr
	}
	return err
}

// Recv reads and decodes the next message. Only one goroutine may call
// Recv at a time. The payload is staged in a pooled buffer (decoding copies
// every field, so the buffer is recycled immediately).
func (c *Conn) Recv() (Message, error) {
	if c.ReadTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.ReadTimeout)); err != nil {
			return nil, err
		}
	} else if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
		// A deadline armed by an earlier Recv (e.g. during the handshake)
		// must not linger once the timeout is disabled.
		return nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	t := MsgType(hdr[4])
	bp := getBuf()
	var payload []byte
	if cap(*bp) >= int(n) {
		payload = (*bp)[:n]
	} else {
		payload = make([]byte, n)
		*bp = payload
	}
	if _, err := io.ReadFull(c.r, payload); err != nil {
		putBuf(bp)
		return nil, fmt.Errorf("wire: reading %s payload: %w", t, err)
	}
	m, err := Unmarshal(t, payload)
	putBuf(bp)
	return m, err
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
