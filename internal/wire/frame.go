package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Marshal encodes a message into a complete frame (length, type, payload).
func Marshal(m Message) ([]byte, error) {
	var e enc
	m.encode(&e)
	if e.err != nil {
		return nil, fmt.Errorf("wire: encode %s: %w", m.Type(), e.err)
	}
	if len(e.buf) > MaxFrame {
		return nil, fmt.Errorf("wire: %s payload %d exceeds frame limit", m.Type(), len(e.buf))
	}
	frame := make([]byte, 0, 5+len(e.buf))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(e.buf)))
	frame = append(frame, byte(m.Type()))
	frame = append(frame, e.buf...)
	return frame, nil
}

// Unmarshal decodes a payload of the given type.
func Unmarshal(t MsgType, payload []byte) (Message, error) {
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	m.decode(&d)
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", t, err)
	}
	return m, nil
}

// Conn wraps a net.Conn with buffered, mutex-protected message I/O. Reads
// and writes may proceed concurrently (one reader, any number of writers).
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer

	// ReadTimeout, when nonzero, bounds each ReadMessage call.
	ReadTimeout time.Duration
}

// NewConn wraps nc.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64<<10),
		w:  bufio.NewWriterSize(nc, 64<<10),
	}
}

// Send encodes and writes one message, flushing the buffer. Safe for
// concurrent use.
func (c *Conn) Send(m Message) error {
	frame, err := Marshal(m)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("wire: send %s: %w", m.Type(), err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush %s: %w", m.Type(), err)
	}
	return nil
}

// Recv reads and decodes the next message. Only one goroutine may call
// Recv at a time.
func (c *Conn) Recv() (Message, error) {
	if c.ReadTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.ReadTimeout)); err != nil {
			return nil, err
		}
	} else if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
		// A deadline armed by an earlier Recv (e.g. during the handshake)
		// must not linger once the timeout is disabled.
		return nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	t := MsgType(hdr[4])
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading %s payload: %w", t, err)
	}
	return Unmarshal(t, payload)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
