package wire

import "repro/internal/core"

// Batch frames coalesce the per-attempt control plane: many Assigns to one
// provider, many AttemptResults back, many ResultPushes out to a consumer —
// each as ONE frame, one decode, one lock acquisition at the receiver.
//
// They are a capability-gated compatible extension (CapBatch in the Hello
// tail): the broker ships batches only to peers that advertised the bit,
// and peers that did not keep receiving single frames byte-identical to the
// pre-batch revision. The single-frame encodings themselves are untouched —
// a batch is a new frame type wrapping them, not a change to them.

// ProgramBlob carries one program's bytecode inside an AssignBatch. Each
// distinct program a batch needs is shipped at most once, however many
// entries reference it.
type ProgramBlob struct {
	ID   core.ProgramID
	Data []byte
}

// AssignBatch dispatches many execution attempts to one provider in a
// single frame. Program bytes are deduplicated within the frame: entries
// reference programs by ID, and the Programs table holds the bytecode for
// any the broker believes the provider has not cached (possibly none). The
// provider installs the table's programs once, then admits every entry with
// a single cache lookup per distinct program.
//
// Entries reuse the Assign struct but NOT its single-frame encoding: an
// Assign's optional flags tail is detected by buffer exhaustion, which is
// meaningless mid-frame, so batch entries always encode the flags byte
// (like MigrateTasklet — every CapBatch peer is post-flags-revision). Entry
// ProgramData is always empty; bytecode travels only in the table.
type AssignBatch struct {
	Programs []ProgramBlob
	Assigns  []Assign
}

// AttemptResultBatch reports many attempt outcomes from provider to broker
// in one frame. The provider's writer loop folds the results that
// accumulated over one flush window; the broker applies the whole batch to
// the lifecycle engine under a single lock acquisition.
type AttemptResultBatch struct {
	Results []AttemptResult
}

// ResultPushBatch delivers many completed tasklets' final results to one
// consumer in a single frame, folded from the broker's per-consumer send
// queue over one writer flush window.
type ResultPushBatch struct {
	Results []ResultPush
}

// Interface compliance.
var (
	_ Message = (*AssignBatch)(nil)
	_ Message = (*AttemptResultBatch)(nil)
	_ Message = (*ResultPushBatch)(nil)
)

func (*AssignBatch) Type() MsgType        { return TypeAssignBatch }
func (*AttemptResultBatch) Type() MsgType { return TypeAttemptResultBatch }
func (*ResultPushBatch) Type() MsgType    { return TypeResultPushBatch }

func (m *AssignBatch) encode(e *enc) {
	e.u32(uint32(len(m.Programs)))
	for _, p := range m.Programs {
		e.u64(uint64(p.ID))
		e.bytes(p.Data)
	}
	e.u32(uint32(len(m.Assigns)))
	for i := range m.Assigns {
		a := &m.Assigns[i]
		e.u64(uint64(a.Attempt))
		e.u64(uint64(a.Tasklet))
		e.u64(uint64(a.Program))
		e.values(a.Params)
		e.u64(a.Fuel)
		e.u64(a.Seed)
		var fl uint8
		if a.NoCache {
			fl |= flagNoCache
		}
		e.u8(fl) // mandatory mid-frame; see the AssignBatch doc
	}
}

func (m *AssignBatch) decode(d *dec) {
	n := d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return
	}
	m.Programs = make([]ProgramBlob, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var p ProgramBlob
		p.ID = core.ProgramID(d.u64())
		p.Data = d.bytesv()
		m.Programs = append(m.Programs, p)
	}
	n = d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return
	}
	m.Assigns = make([]Assign, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var a Assign
		a.Attempt = core.AttemptID(d.u64())
		a.Tasklet = core.TaskletID(d.u64())
		a.Program = core.ProgramID(d.u64())
		a.Params = d.values()
		a.Fuel = d.u64()
		a.Seed = d.u64()
		a.NoCache = d.u8()&flagNoCache != 0
		m.Assigns = append(m.Assigns, a)
	}
}

func (m *AttemptResultBatch) encode(e *enc) {
	e.u32(uint32(len(m.Results)))
	for i := range m.Results {
		m.Results[i].encode(e)
	}
}

func (m *AttemptResultBatch) decode(d *dec) {
	n := d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return
	}
	m.Results = make([]AttemptResult, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var r AttemptResult
		r.decode(d)
		m.Results = append(m.Results, r)
	}
}

func (m *ResultPushBatch) encode(e *enc) {
	e.u32(uint32(len(m.Results)))
	for i := range m.Results {
		m.Results[i].encode(e)
	}
}

func (m *ResultPushBatch) decode(d *dec) {
	n := d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return
	}
	m.Results = make([]ResultPush, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var r ResultPush
		r.decode(d)
		m.Results = append(m.Results, r)
	}
}
