package wire

import "testing"

// FuzzUnmarshal checks the protocol decoder never panics and never
// over-reads on arbitrary payloads, for every message type. Messages that
// decode successfully must re-encode (the codec is total on its image).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allMessages() {
		frame, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(byte(m.Type()), frame[5:])
	}
	// Optional-tail seeds for Hello/SubmitJob/Assign: the flag- and
	// cap-bearing variants in allMessages seed the tail itself (emitted
	// only when non-zero), tailless frames double as legacy-format seeds,
	// and appending an explicit zero tail seeds the interim revision that
	// emitted one unconditionally.
	for _, m := range allMessages() {
		if t := m.Type(); t == TypeHello || t == TypeSubmitJob || t == TypeAssign {
			frame, err := Marshal(m)
			if err != nil {
				f.Fatal(err)
			}
			if !hasOptionalTail(m) {
				f.Add(byte(t), append(frame[5:], 0))
			} else {
				f.Add(byte(t), frame[5:len(frame)-1])
			}
		}
	}
	f.Add(byte(99), []byte{})
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		m, err := Unmarshal(MsgType(typ), payload)
		if err != nil {
			return
		}
		if _, err := Marshal(m); err != nil {
			t.Fatalf("decoded %s does not re-encode: %v", m.Type(), err)
		}
	})
}
