package wire

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tvm"
)

// mkResultBurst builds a writer-flush-window's worth of result frames.
func mkResultBurst(n int) []Message {
	out := make([]Message, n)
	for i := range out {
		out[i] = &AttemptResult{
			Attempt: core.AttemptID(i + 1), Tasklet: core.TaskletID(i + 1),
			Status: core.StatusOK, Return: tvm.Int(int64(i)),
			Emitted: []tvm.Value{}, FuelUsed: 500, ExecNanos: 1234,
		}
	}
	return out
}

// BenchmarkBatchFold measures folding a 64-frame result burst into one
// AttemptResultBatch — the work the provider's writer loop adds per flush.
func BenchmarkBatchFold(b *testing.B) {
	burst := mkResultBurst(64)
	scratch := make([]Message, len(burst))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, burst) // fold rewrites in place
		if out := FoldBatchFrames(scratch[:len(burst)]); len(out) != 1 {
			b.Fatalf("folded to %d messages", len(out))
		}
	}
}

// BenchmarkBatchSend measures sending a 64-result burst as one folded batch
// frame vs 64 single frames — the syscall-and-encode half of the batching
// claim (the receiver-side half is the broker's one-lock bulk ingest).
func BenchmarkBatchSend(b *testing.B) {
	burst := mkResultBurst(64)
	scratch := make([]Message, len(burst))

	b.Run("folded", func(b *testing.B) {
		c := NewConn(&sinkConn{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(scratch, burst)
			if err := c.SendBatch(FoldBatchFrames(scratch[:len(burst)])); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-frames", func(b *testing.B) {
		c := NewConn(&sinkConn{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.SendBatch(burst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchUnmarshalAssignBatch measures decoding a 64-entry
// AssignBatch — the provider-side cost of one batched dispatch.
func BenchmarkBatchUnmarshalAssignBatch(b *testing.B) {
	m := &AssignBatch{Programs: []ProgramBlob{{ID: 7, Data: make([]byte, 512)}}}
	for i := 0; i < 64; i++ {
		m.Assigns = append(m.Assigns, Assign{
			Attempt: core.AttemptID(i + 1), Tasklet: core.TaskletID(i + 1), Program: 7,
			Params: []tvm.Value{tvm.Int(int64(i))}, Fuel: 1000, Seed: 5,
		})
	}
	frame, err := Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	payload := frame[5:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(TypeAssignBatch, payload); err != nil {
			b.Fatal(err)
		}
	}
}
