package wire

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/tvm"
)

// ProtocolVersion is bumped on any incompatible change to the message
// vocabulary; Hello carries it and the broker rejects mismatches.
//
// Compatible extensions do NOT bump the version. Hello, SubmitJob and
// Assign grew an *optional tail*: one trailing byte appended after every
// fixed field (capability bits on Hello, flag bits on SubmitJob/Assign).
// Decoders read it only when bytes remain, and encoders emit it only when
// it is non-zero, so default frames stay byte-identical to the previous
// revision in both directions: old-format frames decode with all bits
// false, and new frames without set bits decode on old peers whose strict
// finish() rejects trailing bytes. A set bit can only reach a peer that
// can decode it: client->broker messages may always carry a tail (the
// broker is at least as new as its clients), while broker->client
// messages carry one only to peers that advertised CapFlagsTail in their
// Hello — the broker masks the flags otherwise. Future compatible
// additions must follow the same append-only, capability-gated
// discipline.
const ProtocolVersion = 1

// Capability bits carried in the optional tail of Hello. They declare
// which compatible protocol extensions the sender can decode, letting the
// broker tailor its frames per peer.
const (
	// CapFlagsTail: the sender decodes the optional flags tail on
	// broker-originated messages (Assign).
	CapFlagsTail uint8 = 1 << 0
	// CapBatch: the sender decodes the batch frames (AssignBatch,
	// AttemptResultBatch, ResultPushBatch). The broker sends batches only
	// to peers that advertised this bit; peers without it keep receiving
	// single frames byte-identical to the pre-batch revision.
	CapBatch uint8 = 1 << 1
)

// Flag bits carried in the optional tail of SubmitJob and Assign.
const (
	// flagNoCache marks a tasklet/attempt excluded from result memoization.
	flagNoCache = 1 << 0
)

// MsgType identifies a message on the wire. Values are part of the
// protocol; append only.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeWelcome
	TypeError
	TypeRegister
	TypeHeartbeat
	TypeAssign
	TypeCancelAttempt
	TypeAttemptResult
	TypeSubmitJob
	TypeJobAccepted
	TypeResultPush
	TypeJobDone
	TypeCancelJob
	TypeBye
	TypeQueryFleet
	TypeFleetInfo
	TypeShardGossip
	TypeMigrateRequest
	TypeMigrateTasklet
	TypeMigrateAck
	TypeMigrateResult
	TypeAssignBatch
	TypeAttemptResultBatch
	TypeResultPushBatch
)

// String returns the message-type name for logs.
func (t MsgType) String() string {
	names := map[MsgType]string{
		TypeHello: "hello", TypeWelcome: "welcome", TypeError: "error",
		TypeRegister: "register", TypeHeartbeat: "heartbeat",
		TypeAssign: "assign", TypeCancelAttempt: "cancel_attempt",
		TypeAttemptResult: "attempt_result", TypeSubmitJob: "submit_job",
		TypeJobAccepted: "job_accepted", TypeResultPush: "result_push",
		TypeJobDone: "job_done", TypeCancelJob: "cancel_job", TypeBye: "bye",
		TypeQueryFleet: "query_fleet", TypeFleetInfo: "fleet_info",
		TypeShardGossip: "shard_gossip", TypeMigrateRequest: "migrate_request",
		TypeMigrateTasklet: "migrate_tasklet", TypeMigrateAck: "migrate_ack",
		TypeMigrateResult: "migrate_result", TypeAssignBatch: "assign_batch",
		TypeAttemptResultBatch: "attempt_result_batch",
		TypeResultPushBatch:    "result_push_batch",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Role distinguishes the two client kinds at handshake time.
type Role uint8

// Connection roles.
const (
	RoleConsumer Role = iota + 1
	RoleProvider
	// RolePeer identifies a broker-to-broker link in a sharded cluster.
	// Peer links carry only gossip and migration frames.
	RolePeer
)

// Message is implemented by every protocol message.
type Message interface {
	Type() MsgType
	encode(e *enc)
	decode(d *dec)
}

// Hello opens every connection.
type Hello struct {
	Version uint16
	Role    Role
	Name    string // free-form client identification for logs

	// Caps advertises the compatible protocol extensions this client can
	// decode (Cap* bits). Carried in the optional tail; absent on
	// old-format frames, defaulting to none.
	Caps uint8
}

// Welcome acknowledges a Hello and assigns the session its ID.
type Welcome struct {
	ID uint64 // ProviderID or ConsumerID depending on role
}

// ErrorMsg reports a protocol or application error; the broker closes the
// connection after sending one for fatal conditions.
type ErrorMsg struct {
	Code uint16
	Msg  string
}

// Error codes.
const (
	ErrCodeProtocol   = 1 // malformed or unexpected message
	ErrCodeVersion    = 2 // version mismatch
	ErrCodeBadJob     = 3 // job validation failed
	ErrCodeOverloaded = 4 // broker queue full
)

// Register announces a provider's capacity; sent once after Welcome.
type Register struct {
	Slots int
	Class core.DeviceClass
	Speed float64 // self-measured mega-ops/sec (see internal/speedbench)
}

// Heartbeat is sent periodically by providers; the broker marks providers
// dead after missing several.
type Heartbeat struct {
	FreeSlots int
}

// Assign dispatches one execution attempt to a provider. ProgramData is
// empty when the broker knows the provider has the program cached.
type Assign struct {
	Attempt     core.AttemptID
	Tasklet     core.TaskletID
	Program     core.ProgramID
	ProgramData []byte // empty if cached on the provider
	Params      []tvm.Value
	Fuel        uint64
	Seed        uint64

	// NoCache tells the provider not to serve this attempt from (or store
	// it into) its local result memo. Carried in the optional flags tail;
	// absent on old-format frames, defaulting to false.
	NoCache bool
}

// CancelAttempt asks a provider to abort a running attempt (job cancelled
// or QoC already satisfied). Best-effort.
type CancelAttempt struct {
	Attempt core.AttemptID
}

// AttemptResult reports an attempt outcome from provider to broker.
type AttemptResult struct {
	Attempt   core.AttemptID
	Tasklet   core.TaskletID
	Status    core.ResultStatus
	Return    tvm.Value
	Emitted   []tvm.Value
	FaultCode tvm.FaultCode
	FaultMsg  string
	FuelUsed  uint64
	ExecNanos int64
}

// SubmitJob submits a batch of tasklets sharing one program and QoC.
type SubmitJob struct {
	Program []byte
	Params  [][]tvm.Value
	QoC     core.QoC
	Fuel    uint64
	Seed    uint64
}

// JobAccepted confirms a SubmitJob and assigns the job its ID.
type JobAccepted struct {
	Job      core.JobID
	Tasklets int
}

// ResultPush delivers one completed tasklet's final result to the consumer.
type ResultPush struct {
	Job       core.JobID
	Tasklet   core.TaskletID
	Index     int
	Status    core.ResultStatus
	Return    tvm.Value
	Emitted   []tvm.Value
	FaultCode tvm.FaultCode
	FaultMsg  string
	Provider  core.ProviderID
	Attempts  int
	ExecNanos int64
}

// JobDone signals that every tasklet of a job reached a final state.
type JobDone struct {
	Job       core.JobID
	Completed int
	Failed    int
}

// CancelJob asks the broker to abandon a job's outstanding tasklets.
type CancelJob struct {
	Job core.JobID
}

// Bye announces a graceful disconnect.
type Bye struct{}

// QueryFleet asks the broker for the current provider directory (resource
// discovery as seen by applications).
type QueryFleet struct{}

// ProviderEntry is one directory row in a FleetInfo reply.
type ProviderEntry struct {
	ID          core.ProviderID
	Class       core.DeviceClass
	Slots       int
	FreeSlots   int
	Speed       float64
	Reliability float64
	Executed    int64 // attempts finished on this provider
}

// FleetInfo is the broker's reply to QueryFleet.
type FleetInfo struct {
	Providers []ProviderEntry
	Pending   int // tasklets awaiting placement
}

// ShardGossip advertises one shard's load to a peer. Sent periodically on
// every peer link; the first gossip on a link also identifies the sending
// shard to an accepting broker. Seq increases monotonically per sender so
// receivers can discard reordered snapshots.
type ShardGossip struct {
	Shard      uint64
	Seq        uint64
	QueueDepth int
	FreeSlots  int
	Rate       float64 // EWMA tasklets finalized per second
}

// MigrateRequest is an underloaded shard's pull: "send me up to Max of
// your queued tasklets". The receiver decides which (if any) tasklets
// actually move; in-flight work never does.
type MigrateRequest struct {
	Shard uint64 // requesting shard
	Max   int
}

// MigrateTasklet transfers one queued tasklet to the requesting shard. It
// carries everything the receiving lifecycle engine needs for a fresh
// Submit — program, params, QoC, fuel, seed — plus the origin-side
// TaskletID so results can be routed back. The sender has already
// Cancelled the tasklet locally (Cancel-before-launch), so exactly one
// shard owns it at any instant.
type MigrateTasklet struct {
	Origin      core.TaskletID // sender-side ID, echoed in Ack/Result
	Program     core.ProgramID
	ProgramData []byte
	Params      []tvm.Value
	QoC         core.QoC
	Fuel        uint64
	Seed        uint64
}

// MigrateAck accepts or rejects a MigrateTasklet. A rejection (or a peer
// loss before the Ack) makes the origin shard re-Submit locally, so a
// migration can delay a tasklet but never lose it.
type MigrateAck struct {
	Shard    uint64 // acking shard
	Origin   core.TaskletID
	Accepted bool
}

// MigrateResult routes a migrated tasklet's final result back to its
// origin shard, which still owns the consumer connection and the job
// accounting. Mirrors ResultPush minus the job/index fields, which only
// the origin knows.
type MigrateResult struct {
	Origin    core.TaskletID
	Status    core.ResultStatus
	Return    tvm.Value
	Emitted   []tvm.Value
	FaultCode tvm.FaultCode
	FaultMsg  string
	Provider  core.ProviderID
	Attempts  int
	ExecNanos int64
}

// Interface compliance.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Welcome)(nil)
	_ Message = (*ErrorMsg)(nil)
	_ Message = (*Register)(nil)
	_ Message = (*Heartbeat)(nil)
	_ Message = (*Assign)(nil)
	_ Message = (*CancelAttempt)(nil)
	_ Message = (*AttemptResult)(nil)
	_ Message = (*SubmitJob)(nil)
	_ Message = (*JobAccepted)(nil)
	_ Message = (*ResultPush)(nil)
	_ Message = (*JobDone)(nil)
	_ Message = (*CancelJob)(nil)
	_ Message = (*Bye)(nil)
	_ Message = (*QueryFleet)(nil)
	_ Message = (*FleetInfo)(nil)
	_ Message = (*ShardGossip)(nil)
	_ Message = (*MigrateRequest)(nil)
	_ Message = (*MigrateTasklet)(nil)
	_ Message = (*MigrateAck)(nil)
	_ Message = (*MigrateResult)(nil)
)

// Type implementations.

func (*Hello) Type() MsgType         { return TypeHello }
func (*Welcome) Type() MsgType       { return TypeWelcome }
func (*ErrorMsg) Type() MsgType      { return TypeError }
func (*Register) Type() MsgType      { return TypeRegister }
func (*Heartbeat) Type() MsgType     { return TypeHeartbeat }
func (*Assign) Type() MsgType        { return TypeAssign }
func (*CancelAttempt) Type() MsgType { return TypeCancelAttempt }
func (*AttemptResult) Type() MsgType { return TypeAttemptResult }
func (*SubmitJob) Type() MsgType     { return TypeSubmitJob }
func (*JobAccepted) Type() MsgType   { return TypeJobAccepted }
func (*ResultPush) Type() MsgType    { return TypeResultPush }
func (*JobDone) Type() MsgType       { return TypeJobDone }
func (*CancelJob) Type() MsgType     { return TypeCancelJob }
func (*Bye) Type() MsgType           { return TypeBye }
func (*QueryFleet) Type() MsgType    { return TypeQueryFleet }
func (*FleetInfo) Type() MsgType     { return TypeFleetInfo }

func (*ShardGossip) Type() MsgType    { return TypeShardGossip }
func (*MigrateRequest) Type() MsgType { return TypeMigrateRequest }
func (*MigrateTasklet) Type() MsgType { return TypeMigrateTasklet }
func (*MigrateAck) Type() MsgType     { return TypeMigrateAck }
func (*MigrateResult) Type() MsgType  { return TypeMigrateResult }

func (m *Hello) encode(e *enc) {
	e.u16(m.Version)
	e.u8(uint8(m.Role))
	e.str(m.Name)
	if m.Caps != 0 { // optional tail; omitted when empty for legacy peers
		e.u8(m.Caps)
	}
}

func (m *Hello) decode(d *dec) {
	m.Version = d.u16()
	m.Role = Role(d.u8())
	m.Name = d.str()
	if d.err == nil && d.remaining() > 0 { // optional tail (new in caps rev)
		m.Caps = d.u8()
	}
}

func (m *Welcome) encode(e *enc) { e.u64(m.ID) }
func (m *Welcome) decode(d *dec) { m.ID = d.u64() }

func (m *ErrorMsg) encode(e *enc) {
	e.u16(m.Code)
	e.str(m.Msg)
}

func (m *ErrorMsg) decode(d *dec) {
	m.Code = d.u16()
	m.Msg = d.str()
}

func (m *Register) encode(e *enc) {
	e.u32(uint32(m.Slots))
	e.u8(uint8(m.Class))
	e.f64(m.Speed)
}

func (m *Register) decode(d *dec) {
	m.Slots = int(d.u32())
	m.Class = core.DeviceClass(d.u8())
	m.Speed = d.f64()
}

func (m *Heartbeat) encode(e *enc) { e.u32(uint32(m.FreeSlots)) }
func (m *Heartbeat) decode(d *dec) { m.FreeSlots = int(d.u32()) }

func (m *Assign) encode(e *enc) {
	e.u64(uint64(m.Attempt))
	e.u64(uint64(m.Tasklet))
	e.u64(uint64(m.Program))
	e.bytes(m.ProgramData)
	e.values(m.Params)
	e.u64(m.Fuel)
	e.u64(m.Seed)
	var fl uint8
	if m.NoCache {
		fl |= flagNoCache
	}
	if fl != 0 { // optional tail; omitted when empty for legacy peers
		e.u8(fl)
	}
}

func (m *Assign) decode(d *dec) {
	m.Attempt = core.AttemptID(d.u64())
	m.Tasklet = core.TaskletID(d.u64())
	m.Program = core.ProgramID(d.u64())
	m.ProgramData = d.bytesv()
	m.Params = d.values()
	m.Fuel = d.u64()
	m.Seed = d.u64()
	if d.err == nil && d.remaining() > 0 { // optional tail (new in flags rev)
		m.NoCache = d.u8()&flagNoCache != 0
	}
}

func (m *CancelAttempt) encode(e *enc) { e.u64(uint64(m.Attempt)) }
func (m *CancelAttempt) decode(d *dec) { m.Attempt = core.AttemptID(d.u64()) }

func (m *AttemptResult) encode(e *enc) {
	e.u64(uint64(m.Attempt))
	e.u64(uint64(m.Tasklet))
	e.u8(uint8(m.Status))
	e.value(m.Return)
	e.values(m.Emitted)
	e.u8(uint8(m.FaultCode))
	e.str(m.FaultMsg)
	e.u64(m.FuelUsed)
	e.i64(m.ExecNanos)
}

func (m *AttemptResult) decode(d *dec) {
	m.Attempt = core.AttemptID(d.u64())
	m.Tasklet = core.TaskletID(d.u64())
	m.Status = core.ResultStatus(d.u8())
	m.Return = d.value()
	m.Emitted = d.values()
	m.FaultCode = tvm.FaultCode(d.u8())
	m.FaultMsg = d.str()
	m.FuelUsed = d.u64()
	m.ExecNanos = d.i64()
}

func (m *SubmitJob) encode(e *enc) {
	e.bytes(m.Program)
	e.u32(uint32(len(m.Params)))
	for _, ps := range m.Params {
		e.values(ps)
	}
	e.u8(uint8(m.QoC.Mode))
	e.u32(uint32(m.QoC.Replicas))
	e.u32(uint32(m.QoC.MaxRetries))
	e.i64(int64(m.QoC.Deadline))
	e.boolv(m.QoC.PreferFast)
	e.boolv(m.QoC.LocalFallback)
	e.u64(m.Fuel)
	e.u64(m.Seed)
	var fl uint8
	if m.QoC.NoCache {
		fl |= flagNoCache
	}
	if fl != 0 { // optional tail; omitted when empty for legacy peers
		e.u8(fl)
	}
}

func (m *SubmitJob) decode(d *dec) {
	m.Program = d.bytesv()
	n := d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return
	}
	m.Params = make([][]tvm.Value, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		m.Params = append(m.Params, d.values())
	}
	m.QoC.Mode = core.QoCMode(d.u8())
	m.QoC.Replicas = int(d.u32())
	m.QoC.MaxRetries = int(d.u32())
	m.QoC.Deadline = time.Duration(d.i64())
	m.QoC.PreferFast = d.boolv()
	m.QoC.LocalFallback = d.boolv()
	m.Fuel = d.u64()
	m.Seed = d.u64()
	if d.err == nil && d.remaining() > 0 { // optional tail (new in flags rev)
		m.QoC.NoCache = d.u8()&flagNoCache != 0
	}
}

func (m *JobAccepted) encode(e *enc) {
	e.u64(uint64(m.Job))
	e.u32(uint32(m.Tasklets))
}

func (m *JobAccepted) decode(d *dec) {
	m.Job = core.JobID(d.u64())
	m.Tasklets = int(d.u32())
}

func (m *ResultPush) encode(e *enc) {
	e.u64(uint64(m.Job))
	e.u64(uint64(m.Tasklet))
	e.u32(uint32(m.Index))
	e.u8(uint8(m.Status))
	e.value(m.Return)
	e.values(m.Emitted)
	e.u8(uint8(m.FaultCode))
	e.str(m.FaultMsg)
	e.u64(uint64(m.Provider))
	e.u32(uint32(m.Attempts))
	e.i64(m.ExecNanos)
}

func (m *ResultPush) decode(d *dec) {
	m.Job = core.JobID(d.u64())
	m.Tasklet = core.TaskletID(d.u64())
	m.Index = int(d.u32())
	m.Status = core.ResultStatus(d.u8())
	m.Return = d.value()
	m.Emitted = d.values()
	m.FaultCode = tvm.FaultCode(d.u8())
	m.FaultMsg = d.str()
	m.Provider = core.ProviderID(d.u64())
	m.Attempts = int(d.u32())
	m.ExecNanos = d.i64()
}

func (m *JobDone) encode(e *enc) {
	e.u64(uint64(m.Job))
	e.u32(uint32(m.Completed))
	e.u32(uint32(m.Failed))
}

func (m *JobDone) decode(d *dec) {
	m.Job = core.JobID(d.u64())
	m.Completed = int(d.u32())
	m.Failed = int(d.u32())
}

func (m *CancelJob) encode(e *enc) { e.u64(uint64(m.Job)) }
func (m *CancelJob) decode(d *dec) { m.Job = core.JobID(d.u64()) }

func (*Bye) encode(*enc) {}
func (*Bye) decode(*dec) {}

func (*QueryFleet) encode(*enc) {}
func (*QueryFleet) decode(*dec) {}

func (m *FleetInfo) encode(e *enc) {
	e.u32(uint32(len(m.Providers)))
	for _, p := range m.Providers {
		e.u64(uint64(p.ID))
		e.u8(uint8(p.Class))
		e.u32(uint32(p.Slots))
		e.u32(uint32(p.FreeSlots))
		e.f64(p.Speed)
		e.f64(p.Reliability)
		e.i64(p.Executed)
	}
	e.u32(uint32(m.Pending))
}

func (m *FleetInfo) decode(d *dec) {
	n := d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return
	}
	m.Providers = make([]ProviderEntry, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var p ProviderEntry
		p.ID = core.ProviderID(d.u64())
		p.Class = core.DeviceClass(d.u8())
		p.Slots = int(d.u32())
		p.FreeSlots = int(d.u32())
		p.Speed = d.f64()
		p.Reliability = d.f64()
		p.Executed = d.i64()
		m.Providers = append(m.Providers, p)
	}
	m.Pending = int(d.u32())
}

func (m *ShardGossip) encode(e *enc) {
	e.u64(m.Shard)
	e.u64(m.Seq)
	e.u32(uint32(m.QueueDepth))
	e.u32(uint32(m.FreeSlots))
	e.f64(m.Rate)
}

func (m *ShardGossip) decode(d *dec) {
	m.Shard = d.u64()
	m.Seq = d.u64()
	m.QueueDepth = int(d.u32())
	m.FreeSlots = int(d.u32())
	m.Rate = d.f64()
}

func (m *MigrateRequest) encode(e *enc) {
	e.u64(m.Shard)
	e.u32(uint32(m.Max))
}

func (m *MigrateRequest) decode(d *dec) {
	m.Shard = d.u64()
	m.Max = int(d.u32())
}

// MigrateTasklet is a post-flags-revision frame: unlike SubmitJob it always
// emits the QoC flags byte — peers in a shard group run the same binary,
// so there is no legacy decoder to stay byte-compatible with.
func (m *MigrateTasklet) encode(e *enc) {
	e.u64(uint64(m.Origin))
	e.u64(uint64(m.Program))
	e.bytes(m.ProgramData)
	e.values(m.Params)
	e.u8(uint8(m.QoC.Mode))
	e.u32(uint32(m.QoC.Replicas))
	e.u32(uint32(m.QoC.MaxRetries))
	e.i64(int64(m.QoC.Deadline))
	e.boolv(m.QoC.PreferFast)
	e.boolv(m.QoC.LocalFallback)
	var fl uint8
	if m.QoC.NoCache {
		fl |= flagNoCache
	}
	e.u8(fl)
	e.u64(m.Fuel)
	e.u64(m.Seed)
}

func (m *MigrateTasklet) decode(d *dec) {
	m.Origin = core.TaskletID(d.u64())
	m.Program = core.ProgramID(d.u64())
	m.ProgramData = d.bytesv()
	m.Params = d.values()
	m.QoC.Mode = core.QoCMode(d.u8())
	m.QoC.Replicas = int(d.u32())
	m.QoC.MaxRetries = int(d.u32())
	m.QoC.Deadline = time.Duration(d.i64())
	m.QoC.PreferFast = d.boolv()
	m.QoC.LocalFallback = d.boolv()
	m.QoC.NoCache = d.u8()&flagNoCache != 0
	m.Fuel = d.u64()
	m.Seed = d.u64()
}

func (m *MigrateAck) encode(e *enc) {
	e.u64(m.Shard)
	e.u64(uint64(m.Origin))
	e.boolv(m.Accepted)
}

func (m *MigrateAck) decode(d *dec) {
	m.Shard = d.u64()
	m.Origin = core.TaskletID(d.u64())
	m.Accepted = d.boolv()
}

func (m *MigrateResult) encode(e *enc) {
	e.u64(uint64(m.Origin))
	e.u8(uint8(m.Status))
	e.value(m.Return)
	e.values(m.Emitted)
	e.u8(uint8(m.FaultCode))
	e.str(m.FaultMsg)
	e.u64(uint64(m.Provider))
	e.u32(uint32(m.Attempts))
	e.i64(m.ExecNanos)
}

func (m *MigrateResult) decode(d *dec) {
	m.Origin = core.TaskletID(d.u64())
	m.Status = core.ResultStatus(d.u8())
	m.Return = d.value()
	m.Emitted = d.values()
	m.FaultCode = tvm.FaultCode(d.u8())
	m.FaultMsg = d.str()
	m.Provider = core.ProviderID(d.u64())
	m.Attempts = int(d.u32())
	m.ExecNanos = d.i64()
}

// newMessage allocates the struct for a frame's message type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeWelcome:
		return &Welcome{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeRegister:
		return &Register{}, nil
	case TypeHeartbeat:
		return &Heartbeat{}, nil
	case TypeAssign:
		return &Assign{}, nil
	case TypeCancelAttempt:
		return &CancelAttempt{}, nil
	case TypeAttemptResult:
		return &AttemptResult{}, nil
	case TypeSubmitJob:
		return &SubmitJob{}, nil
	case TypeJobAccepted:
		return &JobAccepted{}, nil
	case TypeResultPush:
		return &ResultPush{}, nil
	case TypeJobDone:
		return &JobDone{}, nil
	case TypeCancelJob:
		return &CancelJob{}, nil
	case TypeBye:
		return &Bye{}, nil
	case TypeQueryFleet:
		return &QueryFleet{}, nil
	case TypeFleetInfo:
		return &FleetInfo{}, nil
	case TypeShardGossip:
		return &ShardGossip{}, nil
	case TypeMigrateRequest:
		return &MigrateRequest{}, nil
	case TypeMigrateTasklet:
		return &MigrateTasklet{}, nil
	case TypeMigrateAck:
		return &MigrateAck{}, nil
	case TypeMigrateResult:
		return &MigrateResult{}, nil
	case TypeAssignBatch:
		return &AssignBatch{}, nil
	case TypeAttemptResultBatch:
		return &AttemptResultBatch{}, nil
	case TypeResultPushBatch:
		return &ResultPushBatch{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", uint8(t))
	}
}
