// Package wire implements the Tasklet middleware's TCP protocol: a
// length-prefixed binary framing layer and the message vocabulary spoken
// between consumers, the broker, and providers.
//
// The codec is hand-rolled and versioned (no gob/JSON): frames are
// deterministic, bounded, and decodable by any implementation of the spec.
// Frame layout:
//
//	u32 payload length | u8 message type | payload
//
// Integers are big-endian. Strings and byte slices are u32-length-prefixed.
// TVM values use the tvm value encoding (shared with program constants).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/tvm"
)

// MaxFrame bounds a frame payload. Programs and parameter sets for large
// jobs must fit; 64 MiB is far beyond any workload in this repository while
// still preventing a hostile peer from forcing unbounded allocation.
const MaxFrame = 64 << 20

// enc accumulates an encoded payload.
type enc struct {
	buf []byte
	err error
}

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *enc) boolv(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) value(v tvm.Value) {
	if e.err != nil {
		return
	}
	b, err := tvm.AppendValue(e.buf, v)
	if err != nil {
		e.err = err
		return
	}
	e.buf = b
}

func (e *enc) values(vs []tvm.Value) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.value(v)
	}
}

// dec is a cursor over a received payload with a sticky error.
type dec struct {
	buf []byte
	off int
	err error
}

var errShort = errors.New("wire: truncated message")

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(errShort)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *dec) i64() int64     { return int64(d.u64()) }
func (d *dec) f64() float64   { return math.Float64frombits(d.u64()) }
func (d *dec) boolv() bool    { return d.u8() != 0 }
func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) str() string {
	n := d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return ""
	}
	return string(d.take(int(n)))
}

func (d *dec) bytesv() []byte {
	n := d.u32()
	if d.err == nil && int(n) > d.remaining() {
		d.fail(errShort)
		return nil
	}
	b := d.take(int(n))
	if d.err != nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *dec) value() tvm.Value {
	if d.err != nil {
		return tvm.Value{}
	}
	v, n, err := tvm.DecodeValue(d.buf[d.off:])
	if err != nil {
		d.fail(fmt.Errorf("wire: bad value: %w", err))
		return tvm.Value{}
	}
	d.off += n
	return v
}

func (d *dec) values() []tvm.Value {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.remaining() { // every value takes >= 1 byte
		d.fail(errShort)
		return nil
	}
	vs := make([]tvm.Value, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		vs = append(vs, d.value())
	}
	return vs
}

// finish returns an error if decoding failed or left trailing bytes.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes", d.remaining())
	}
	return nil
}
