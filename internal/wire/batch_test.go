package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/tvm"
)

// TestMsgTypeNumbersPinned pins every frame type's wire number. The protocol
// is append-only: these values may never change, and new frames may only
// extend the tail.
func TestMsgTypeNumbersPinned(t *testing.T) {
	pinned := map[MsgType]uint8{
		TypeHello: 1, TypeWelcome: 2, TypeError: 3,
		TypeRegister: 4, TypeHeartbeat: 5, TypeAssign: 6,
		TypeCancelAttempt: 7, TypeAttemptResult: 8,
		TypeSubmitJob: 9, TypeJobAccepted: 10, TypeResultPush: 11,
		TypeJobDone: 12, TypeCancelJob: 13, TypeBye: 14,
		TypeQueryFleet: 15, TypeFleetInfo: 16,
		TypeShardGossip: 17, TypeMigrateRequest: 18, TypeMigrateTasklet: 19,
		TypeMigrateAck: 20, TypeMigrateResult: 21,
		TypeAssignBatch: 22, TypeAttemptResultBatch: 23, TypeResultPushBatch: 24,
	}
	for mt, want := range pinned {
		if uint8(mt) != want {
			t.Errorf("%s = %d, want %d", mt, uint8(mt), want)
		}
	}
}

// TestBatchFramesLeaveSingleFramesUntouched proves the batch extension never
// changed the single-frame encodings: a frame marshalled today is
// byte-identical to wrapping the same message's payload by hand from the
// field layout the pre-batch revision used.
func TestBatchFramesLeaveSingleFramesUntouched(t *testing.T) {
	ar := &AttemptResult{
		Attempt: 9, Tasklet: 8, Status: core.StatusOK,
		Return: tvm.Int(7), Emitted: []tvm.Value{tvm.Str("x")},
		FuelUsed: 42, ExecNanos: 99,
	}
	frame, err := Marshal(ar)
	if err != nil {
		t.Fatal(err)
	}
	var e enc
	e.u64(9)
	e.u64(8)
	e.u8(uint8(core.StatusOK))
	e.value(tvm.Int(7))
	e.values([]tvm.Value{tvm.Str("x")})
	e.u8(0)
	e.str("")
	e.u64(42)
	e.i64(99)
	if !bytes.Equal(frame[5:], e.buf) {
		t.Fatalf("AttemptResult payload drifted:\n got %x\nwant %x", frame[5:], e.buf)
	}

	rp := &ResultPush{
		Job: 3, Tasklet: 8, Index: 17, Status: core.StatusOK,
		Return: tvm.Int(1), Emitted: []tvm.Value{},
		Provider: 2, Attempts: 2, ExecNanos: 7,
	}
	frame, err = Marshal(rp)
	if err != nil {
		t.Fatal(err)
	}
	e = enc{}
	e.u64(3)
	e.u64(8)
	e.u32(17)
	e.u8(uint8(core.StatusOK))
	e.value(tvm.Int(1))
	e.values([]tvm.Value{})
	e.u8(0)
	e.str("")
	e.u64(2)
	e.u32(2)
	e.i64(7)
	if !bytes.Equal(frame[5:], e.buf) {
		t.Fatalf("ResultPush payload drifted:\n got %x\nwant %x", frame[5:], e.buf)
	}
}

// TestAssignBatchEntryFlagsMandatory pins the one encoding difference
// between a batch entry and a single Assign frame: entries always carry the
// flags byte, even when zero, because the single frame's tail-by-buffer-
// exhaustion trick does not work mid-frame.
func TestAssignBatchEntryFlagsMandatory(t *testing.T) {
	mk := func(noCache bool) []byte {
		frame, err := Marshal(&AssignBatch{Assigns: []Assign{
			{Attempt: 1, Tasklet: 2, Program: 3, Params: []tvm.Value{}, Fuel: 4, Seed: 5, NoCache: noCache},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	plain, flagged := mk(false), mk(true)
	if len(plain) != len(flagged) {
		t.Fatalf("flags byte must be mandatory: plain %d bytes, flagged %d", len(plain), len(flagged))
	}
	if plain[len(plain)-1] != 0 || flagged[len(flagged)-1] != flagNoCache {
		t.Fatalf("flags byte = %#x / %#x, want 0 / %#x",
			plain[len(plain)-1], flagged[len(flagged)-1], flagNoCache)
	}
	got, err := Unmarshal(TypeAssignBatch, flagged[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*AssignBatch).Assigns[0].NoCache {
		t.Fatal("entry NoCache lost in round trip")
	}
}

// TestBatchRejectsHugeCounts: absurd element counts in small buffers must
// fail fast instead of allocating.
func TestBatchRejectsHugeCounts(t *testing.T) {
	var e enc
	e.u32(1 << 31) // program count
	if _, err := Unmarshal(TypeAssignBatch, e.buf); err == nil {
		t.Fatal("absurd program count accepted")
	}
	e = enc{}
	e.u32(1 << 31) // result count
	if _, err := Unmarshal(TypeAttemptResultBatch, e.buf); err == nil {
		t.Fatal("absurd result count accepted")
	}
	e = enc{}
	e.u32(1 << 31)
	if _, err := Unmarshal(TypeResultPushBatch, e.buf); err == nil {
		t.Fatal("absurd push count accepted")
	}
}

func ar(attempt uint64) *AttemptResult {
	return &AttemptResult{
		Attempt: core.AttemptID(attempt), Tasklet: 1, Status: core.StatusOK,
		Return: tvm.Int(int64(attempt)), Emitted: []tvm.Value{},
	}
}

func rp(tasklet uint64) *ResultPush {
	return &ResultPush{
		Job: 1, Tasklet: core.TaskletID(tasklet), Status: core.StatusOK,
		Return: tvm.Int(int64(tasklet)), Emitted: []tvm.Value{},
	}
}

func TestFoldBatchFrames(t *testing.T) {
	hb := &Heartbeat{FreeSlots: 1}

	t.Run("singletons untouched", func(t *testing.T) {
		in := []Message{ar(1), hb, rp(2)}
		out := FoldBatchFrames(append([]Message(nil), in...))
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("lone frames must not be wrapped: %#v", out)
		}
	})

	t.Run("runs fold", func(t *testing.T) {
		out := FoldBatchFrames([]Message{ar(1), ar(2), ar(3), hb, rp(4), rp(5)})
		if len(out) != 3 {
			t.Fatalf("got %d messages, want 3: %#v", len(out), out)
		}
		b1, ok := out[0].(*AttemptResultBatch)
		if !ok || len(b1.Results) != 3 || b1.Results[0].Attempt != 1 || b1.Results[2].Attempt != 3 {
			t.Fatalf("bad result batch: %#v", out[0])
		}
		if out[1] != hb {
			t.Fatalf("interleaved frame moved: %#v", out[1])
		}
		b2, ok := out[2].(*ResultPushBatch)
		if !ok || len(b2.Results) != 2 || b2.Results[0].Tasklet != 4 {
			t.Fatalf("bad push batch: %#v", out[2])
		}
	})

	t.Run("fold preserves content over the wire", func(t *testing.T) {
		in := []Message{ar(7), ar(8)}
		out := FoldBatchFrames(append([]Message(nil), in...))
		frame, err := Marshal(out[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(TypeAttemptResultBatch, frame[5:])
		if err != nil {
			t.Fatal(err)
		}
		batch := got.(*AttemptResultBatch)
		for i := range in {
			if !reflect.DeepEqual(*in[i].(*AttemptResult), batch.Results[i]) {
				t.Fatalf("entry %d mangled:\n in: %#v\nout: %#v", i, in[i], batch.Results[i])
			}
		}
	})
}

// TestCapBatchBit pins the capability bit assignment.
func TestCapBatchBit(t *testing.T) {
	if CapBatch != 1<<1 || CapFlagsTail != 1<<0 {
		t.Fatalf("capability bits moved: CapFlagsTail=%#x CapBatch=%#x", CapFlagsTail, CapBatch)
	}
	h := &Hello{Version: ProtocolVersion, Role: RoleProvider, Name: "n", Caps: CapFlagsTail | CapBatch}
	frame, err := Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if tail := frame[len(frame)-1]; tail != CapFlagsTail|CapBatch {
		t.Fatalf("caps tail = %#x, want %#x", tail, CapFlagsTail|CapBatch)
	}
	got, err := Unmarshal(TypeHello, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if got.(*Hello).Caps != CapFlagsTail|CapBatch {
		t.Fatal("caps lost in round trip")
	}
}
