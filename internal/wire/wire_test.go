package wire

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/tvm"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	return []Message{
		&Hello{Version: ProtocolVersion, Role: RoleProvider, Name: "node-7"},
		&Welcome{ID: 42},
		&ErrorMsg{Code: ErrCodeBadJob, Msg: "no such program"},
		&Register{Slots: 4, Class: core.ClassLaptop, Speed: 123.5},
		&Heartbeat{FreeSlots: 2},
		&Assign{
			Attempt: 9, Tasklet: 8, Program: 77,
			ProgramData: []byte{1, 2, 3},
			Params:      []tvm.Value{tvm.Int(1), tvm.Str("x"), tvm.Arr(tvm.Float(2.5))},
			Fuel:        1000, Seed: 5,
		},
		&Assign{
			Attempt: 10, Tasklet: 8, Program: 77,
			ProgramData: []byte{4},
			Params:      []tvm.Value{tvm.Int(2)},
			Fuel:        1, NoCache: true,
		},
		&CancelAttempt{Attempt: 9},
		&AttemptResult{
			Attempt: 9, Tasklet: 8, Status: core.StatusFault,
			Return:    tvm.Nil(),
			Emitted:   []tvm.Value{tvm.Int(3)},
			FaultCode: tvm.FaultOutOfFuel, FaultMsg: "budget exhausted",
			FuelUsed: 999, ExecNanos: 12345,
		},
		&SubmitJob{
			Program: []byte{9, 9, 9},
			Params:  [][]tvm.Value{{tvm.Int(1)}, {tvm.Int(2)}},
			QoC: core.QoC{
				Mode: core.QoCVoting, Replicas: 3, MaxRetries: 2,
				Deadline: 5 * time.Second, PreferFast: true,
			},
			Fuel: 10_000, Seed: 1,
		},
		&SubmitJob{
			Program: []byte{7},
			Params:  [][]tvm.Value{{}},
			QoC:     core.QoC{NoCache: true},
			Fuel:    1, Seed: 2,
		},
		&JobAccepted{Job: 3, Tasklets: 128},
		&ResultPush{
			Job: 3, Tasklet: 8, Index: 17, Status: core.StatusOK,
			Return:   tvm.Float(3.14),
			Emitted:  []tvm.Value{tvm.Str("out")},
			Provider: 2, Attempts: 2, ExecNanos: 777,
		},
		&JobDone{Job: 3, Completed: 120, Failed: 8},
		&CancelJob{Job: 3},
		&Bye{},
		&QueryFleet{},
		&FleetInfo{
			Providers: []ProviderEntry{
				{ID: 1, Class: core.ClassServer, Slots: 4, FreeSlots: 2,
					Speed: 200.5, Reliability: 0.95, Executed: 1234},
				{ID: 2, Class: core.ClassMobile, Slots: 1, FreeSlots: 1, Speed: 25},
			},
			Pending: 7,
		},
	}
}

func TestMarshalRoundTripAllTypes(t *testing.T) {
	for _, m := range allMessages() {
		t.Run(m.Type().String(), func(t *testing.T) {
			frame, err := Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			payload := frame[5:]
			got, err := Unmarshal(m.Type(), payload)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m, got) {
				t.Fatalf("round trip:\n in: %#v\nout: %#v", m, got)
			}
		})
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	for _, m := range allMessages() {
		frame, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := frame[5:]
		for cut := 1; cut <= len(payload); cut++ {
			// SubmitJob and Assign carry a 1-byte optional flags tail:
			// removing exactly that byte yields a valid *old-format* frame
			// by design (append-only protocol discipline), covered by
			// TestLegacyFramesStillDecode. Every deeper truncation must
			// still fail.
			if cut == 1 && (m.Type() == TypeSubmitJob || m.Type() == TypeAssign) {
				continue
			}
			if _, err := Unmarshal(m.Type(), payload[:len(payload)-cut]); err == nil {
				// Some prefixes of variable-length messages can decode by
				// coincidence only if every field is length-guarded; any
				// success here is a framing bug.
				t.Fatalf("%s: truncation by %d accepted", m.Type(), cut)
			}
		}
	}
}

// TestLegacyFramesStillDecode proves the append-only discipline: a frame
// encoded by the previous protocol revision — which had no flags tail on
// SubmitJob/Assign — still decodes, with every flag defaulting to false.
func TestLegacyFramesStillDecode(t *testing.T) {
	for _, m := range allMessages() {
		var want Message
		switch v := m.(type) {
		case *SubmitJob:
			if v.QoC.NoCache {
				continue // flags can't survive a legacy frame by definition
			}
			want = v
		case *Assign:
			if v.NoCache {
				continue
			}
			want = v
		default:
			continue
		}
		frame, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		legacy := frame[5 : len(frame)-1] // strip the flags tail byte
		got, err := Unmarshal(m.Type(), legacy)
		if err != nil {
			t.Fatalf("%s: legacy frame rejected: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s legacy decode:\n in: %#v\nout: %#v", m.Type(), want, got)
		}
	}
}

// TestFlagsTailRoundTrip pins the flag bit assignments on the wire.
func TestFlagsTailRoundTrip(t *testing.T) {
	sj := &SubmitJob{
		Program: []byte{1},
		Params:  [][]tvm.Value{{tvm.Int(1)}},
		QoC:     core.QoC{NoCache: true},
		Fuel:    5, Seed: 6,
	}
	frame, err := Marshal(sj)
	if err != nil {
		t.Fatal(err)
	}
	if tail := frame[len(frame)-1]; tail != flagNoCache {
		t.Fatalf("SubmitJob flags tail = %#x, want %#x", tail, flagNoCache)
	}
	got, err := Unmarshal(TypeSubmitJob, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*SubmitJob).QoC.NoCache {
		t.Fatal("SubmitJob NoCache lost in round trip")
	}

	as := &Assign{Attempt: 1, Tasklet: 2, Program: 3, Fuel: 4, Seed: 5, NoCache: true}
	frame, err = Marshal(as)
	if err != nil {
		t.Fatal(err)
	}
	if tail := frame[len(frame)-1]; tail != flagNoCache {
		t.Fatalf("Assign flags tail = %#x, want %#x", tail, flagNoCache)
	}
	got, err = Unmarshal(TypeAssign, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*Assign).NoCache {
		t.Fatal("Assign NoCache lost in round trip")
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	frame, _ := Marshal(&Welcome{ID: 1})
	payload := append(frame[5:], 0xAB)
	if _, err := Unmarshal(TypeWelcome, payload); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	if _, err := Unmarshal(MsgType(250), nil); err == nil {
		t.Fatal("unknown type accepted")
	}
}

// Property: random byte payloads never panic the decoder.
func TestUnmarshalRobustProperty(t *testing.T) {
	f := func(tByte uint8, payload []byte) bool {
		_, _ = Unmarshal(MsgType(tByte%20), payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitJobRejectsHugeParamCount(t *testing.T) {
	// Claiming 2^31 parameter sets in a small buffer must fail fast.
	var e enc
	e.bytes([]byte("prog"))
	e.u32(1 << 31)
	if _, err := Unmarshal(TypeSubmitJob, e.buf); err == nil {
		t.Fatal("absurd param count accepted")
	}
}

func TestConnSendRecv(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc, sc := NewConn(client), NewConn(server)

	done := make(chan error, 1)
	go func() {
		for _, m := range allMessages() {
			if err := cc.Send(m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	for _, want := range allMessages() {
		got, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Type(), err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("over pipe:\n in: %#v\nout: %#v", want, got)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("send: %v", err)
	}
}

func TestConnRecvTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(200 * time.Millisecond)
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(nc)
	defer c.Close()
	c.ReadTimeout = 30 * time.Millisecond
	if _, err := c.Recv(); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestConnRejectsOversizedFrame(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(TypeHello)}
		client.Write(hdr)
	}()
	sc := NewConn(server)
	if _, err := sc.Recv(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestConcurrentSendersInterleaveWholeFrames(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc, sc := NewConn(client), NewConn(server)

	const perSender, senders = 50, 4
	for i := 0; i < senders; i++ {
		go func(id int) {
			for j := 0; j < perSender; j++ {
				_ = cc.Send(&Heartbeat{FreeSlots: id})
			}
		}(i)
	}
	counts := map[int]int{}
	for i := 0; i < senders*perSender; i++ {
		m, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		hb, ok := m.(*Heartbeat)
		if !ok {
			t.Fatalf("frame corrupted: got %T", m)
		}
		counts[hb.FreeSlots]++
	}
	for i := 0; i < senders; i++ {
		if counts[i] != perSender {
			t.Fatalf("sender %d delivered %d frames, want %d", i, counts[i], perSender)
		}
	}
}

func TestMarshalFrameLayout(t *testing.T) {
	frame, err := Marshal(&Welcome{ID: 0x0102030405060708})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 8, // payload length
		byte(TypeWelcome),
		1, 2, 3, 4, 5, 6, 7, 8,
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame = %x, want %x", frame, want)
	}
}

func TestValueArraysSurviveWire(t *testing.T) {
	nested := tvm.Arr(tvm.Arr(tvm.Int(1), tvm.Int(2)), tvm.Str("deep"), tvm.Nil())
	m := &Assign{Params: []tvm.Value{nested}}
	frame, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(TypeAssign, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*Assign).Params[0].Equal(nested) {
		t.Fatalf("nested array mangled: %s", got.(*Assign).Params[0])
	}
}
