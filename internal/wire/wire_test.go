package wire

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/tvm"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	return []Message{
		&Hello{Version: ProtocolVersion, Role: RoleProvider, Name: "node-7"},
		&Hello{Version: ProtocolVersion, Role: RoleConsumer, Name: "app", Caps: CapFlagsTail},
		&Welcome{ID: 42},
		&ErrorMsg{Code: ErrCodeBadJob, Msg: "no such program"},
		&Register{Slots: 4, Class: core.ClassLaptop, Speed: 123.5},
		&Heartbeat{FreeSlots: 2},
		&Assign{
			Attempt: 9, Tasklet: 8, Program: 77,
			ProgramData: []byte{1, 2, 3},
			Params:      []tvm.Value{tvm.Int(1), tvm.Str("x"), tvm.Arr(tvm.Float(2.5))},
			Fuel:        1000, Seed: 5,
		},
		&Assign{
			Attempt: 10, Tasklet: 8, Program: 77,
			ProgramData: []byte{4},
			Params:      []tvm.Value{tvm.Int(2)},
			Fuel:        1, NoCache: true,
		},
		&CancelAttempt{Attempt: 9},
		&AttemptResult{
			Attempt: 9, Tasklet: 8, Status: core.StatusFault,
			Return:    tvm.Nil(),
			Emitted:   []tvm.Value{tvm.Int(3)},
			FaultCode: tvm.FaultOutOfFuel, FaultMsg: "budget exhausted",
			FuelUsed: 999, ExecNanos: 12345,
		},
		&SubmitJob{
			Program: []byte{9, 9, 9},
			Params:  [][]tvm.Value{{tvm.Int(1)}, {tvm.Int(2)}},
			QoC: core.QoC{
				Mode: core.QoCVoting, Replicas: 3, MaxRetries: 2,
				Deadline: 5 * time.Second, PreferFast: true,
			},
			Fuel: 10_000, Seed: 1,
		},
		&SubmitJob{
			Program: []byte{7},
			Params:  [][]tvm.Value{{}},
			QoC:     core.QoC{NoCache: true},
			Fuel:    1, Seed: 2,
		},
		&JobAccepted{Job: 3, Tasklets: 128},
		&ResultPush{
			Job: 3, Tasklet: 8, Index: 17, Status: core.StatusOK,
			Return:   tvm.Float(3.14),
			Emitted:  []tvm.Value{tvm.Str("out")},
			Provider: 2, Attempts: 2, ExecNanos: 777,
		},
		&JobDone{Job: 3, Completed: 120, Failed: 8},
		&CancelJob{Job: 3},
		&Bye{},
		&QueryFleet{},
		&FleetInfo{
			Providers: []ProviderEntry{
				{ID: 1, Class: core.ClassServer, Slots: 4, FreeSlots: 2,
					Speed: 200.5, Reliability: 0.95, Executed: 1234},
				{ID: 2, Class: core.ClassMobile, Slots: 1, FreeSlots: 1, Speed: 25},
			},
			Pending: 7,
		},
		&Hello{Version: ProtocolVersion, Role: RolePeer, Name: "shard-2"},
		&ShardGossip{Shard: 2, Seq: 41, QueueDepth: 120, FreeSlots: 3, Rate: 812.5},
		&MigrateRequest{Shard: 1, Max: 32},
		&MigrateTasklet{
			Origin: 55, Program: 77,
			ProgramData: []byte{1, 2, 3},
			Params:      []tvm.Value{tvm.Int(9), tvm.Str("k")},
			QoC: core.QoC{
				Mode: core.QoCVoting, Replicas: 3, MaxRetries: 2,
				Deadline: time.Second, PreferFast: true, NoCache: true,
			},
			Fuel: 5000, Seed: 11,
		},
		&MigrateTasklet{Origin: 56, Program: 77, ProgramData: []byte{}, Params: []tvm.Value{}},
		&MigrateAck{Shard: 2, Origin: 55, Accepted: true},
		&MigrateAck{Shard: 2, Origin: 56},
		&MigrateResult{
			Origin: 55, Status: core.StatusOK,
			Return:   tvm.Int(81),
			Emitted:  []tvm.Value{tvm.Str("log")},
			Provider: 4, Attempts: 1, ExecNanos: 4242,
		},
		&MigrateResult{
			Origin: 56, Status: core.StatusFault,
			Return:    tvm.Nil(),
			Emitted:   []tvm.Value{},
			FaultCode: tvm.FaultOutOfFuel, FaultMsg: "budget exhausted",
			Attempts: 3,
		},
		&AssignBatch{
			Programs: []ProgramBlob{{ID: 77, Data: []byte{1, 2, 3}}, {ID: 78, Data: []byte{}}},
			Assigns: []Assign{
				{Attempt: 9, Tasklet: 8, Program: 77,
					Params: []tvm.Value{tvm.Int(1), tvm.Str("x")}, Fuel: 1000, Seed: 5},
				{Attempt: 10, Tasklet: 9, Program: 78,
					Params: []tvm.Value{}, Fuel: 1, NoCache: true},
			},
		},
		&AssignBatch{Programs: []ProgramBlob{}, Assigns: []Assign{
			{Attempt: 11, Tasklet: 10, Program: 77, Params: []tvm.Value{tvm.Int(4)}},
		}},
		&AttemptResultBatch{Results: []AttemptResult{
			{Attempt: 9, Tasklet: 8, Status: core.StatusOK,
				Return: tvm.Int(7), Emitted: []tvm.Value{tvm.Str("out")},
				FuelUsed: 42, ExecNanos: 1234},
			{Attempt: 10, Tasklet: 9, Status: core.StatusFault,
				Return: tvm.Nil(), Emitted: []tvm.Value{},
				FaultCode: tvm.FaultOutOfFuel, FaultMsg: "budget exhausted",
				FuelUsed: 999, ExecNanos: 555},
		}},
		&ResultPushBatch{Results: []ResultPush{
			{Job: 3, Tasklet: 8, Index: 17, Status: core.StatusOK,
				Return: tvm.Float(3.14), Emitted: []tvm.Value{tvm.Str("out")},
				Provider: 2, Attempts: 2, ExecNanos: 777},
			{Job: 3, Tasklet: 9, Index: 18, Status: core.StatusFault,
				Return: tvm.Nil(), Emitted: []tvm.Value{},
				FaultCode: tvm.FaultOutOfFuel, FaultMsg: "budget exhausted",
				Provider: 4, Attempts: 1, ExecNanos: 12},
		}},
	}
}

func TestMarshalRoundTripAllTypes(t *testing.T) {
	for _, m := range allMessages() {
		t.Run(m.Type().String(), func(t *testing.T) {
			frame, err := Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			payload := frame[5:]
			got, err := Unmarshal(m.Type(), payload)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m, got) {
				t.Fatalf("round trip:\n in: %#v\nout: %#v", m, got)
			}
		})
	}
}

// hasOptionalTail reports whether a message instance encodes with the
// 1-byte optional tail (caps on Hello, flags on SubmitJob/Assign).
func hasOptionalTail(m Message) bool {
	switch v := m.(type) {
	case *Hello:
		return v.Caps != 0
	case *SubmitJob:
		return v.QoC.NoCache
	case *Assign:
		return v.NoCache
	}
	return false
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	for _, m := range allMessages() {
		frame, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := frame[5:]
		for cut := 1; cut <= len(payload); cut++ {
			// Removing exactly the optional-tail byte yields a valid
			// *old-format* frame by design (append-only protocol
			// discipline), covered by TestTaillessFramesMatchLegacyFormat.
			// Every deeper truncation must still fail.
			if cut == 1 && hasOptionalTail(m) {
				continue
			}
			if _, err := Unmarshal(m.Type(), payload[:len(payload)-cut]); err == nil {
				// Some prefixes of variable-length messages can decode by
				// coincidence only if every field is length-guarded; any
				// success here is a framing bug.
				t.Fatalf("%s: truncation by %d accepted", m.Type(), cut)
			}
		}
	}
}

// TestTaillessFramesMatchLegacyFormat proves both directions of the
// append-only discipline for Hello/SubmitJob/Assign. A frame with no set
// bits carries no tail at all — byte-identical to the pre-tail revision, so
// a legacy peer's strict trailing-bytes check accepts it — and is exactly
// one byte shorter than its flagged twin. And a frame that *does* carry a
// zero tail (the interim revision emitted one unconditionally) still
// decodes to the same message, with every bit false.
func TestTaillessFramesMatchLegacyFormat(t *testing.T) {
	pairs := []struct {
		name             string
		tailless, tailed Message
	}{
		{
			"hello",
			&Hello{Version: ProtocolVersion, Role: RoleProvider, Name: "n"},
			&Hello{Version: ProtocolVersion, Role: RoleProvider, Name: "n", Caps: CapFlagsTail},
		},
		{
			"assign",
			&Assign{Attempt: 1, Tasklet: 2, Program: 3, ProgramData: []byte{9},
				Params: []tvm.Value{tvm.Int(1)}, Fuel: 4, Seed: 5},
			&Assign{Attempt: 1, Tasklet: 2, Program: 3, ProgramData: []byte{9},
				Params: []tvm.Value{tvm.Int(1)}, Fuel: 4, Seed: 5, NoCache: true},
		},
		{
			"submit_job",
			&SubmitJob{Program: []byte{1}, Params: [][]tvm.Value{{tvm.Int(1)}}, Fuel: 2, Seed: 3},
			&SubmitJob{Program: []byte{1}, Params: [][]tvm.Value{{tvm.Int(1)}}, Fuel: 2, Seed: 3,
				QoC: core.QoC{NoCache: true}},
		},
	}
	for _, p := range pairs {
		plain, err := Marshal(p.tailless)
		if err != nil {
			t.Fatal(err)
		}
		flagged, err := Marshal(p.tailed)
		if err != nil {
			t.Fatal(err)
		}
		if len(flagged) != len(plain)+1 {
			t.Fatalf("%s: tailed frame is %d bytes, tailless %d; want exactly one extra",
				p.name, len(flagged), len(plain))
		}
		// A legacy frame equals the tailless encoding; decoding it must
		// reproduce the message with all tail bits false.
		got, err := Unmarshal(p.tailless.Type(), plain[5:])
		if err != nil {
			t.Fatalf("%s: legacy frame rejected: %v", p.name, err)
		}
		if !reflect.DeepEqual(p.tailless, got) {
			t.Fatalf("%s legacy decode:\n in: %#v\nout: %#v", p.name, p.tailless, got)
		}
		// The interim always-emit revision appended a zero tail; those
		// frames must keep decoding identically.
		withZero := append(append([]byte(nil), plain[5:]...), 0)
		got, err = Unmarshal(p.tailless.Type(), withZero)
		if err != nil {
			t.Fatalf("%s: zero-tail frame rejected: %v", p.name, err)
		}
		if !reflect.DeepEqual(p.tailless, got) {
			t.Fatalf("%s zero-tail decode:\n in: %#v\nout: %#v", p.name, p.tailless, got)
		}
	}
}

// TestFlagsTailRoundTrip pins the flag bit assignments on the wire.
func TestFlagsTailRoundTrip(t *testing.T) {
	sj := &SubmitJob{
		Program: []byte{1},
		Params:  [][]tvm.Value{{tvm.Int(1)}},
		QoC:     core.QoC{NoCache: true},
		Fuel:    5, Seed: 6,
	}
	frame, err := Marshal(sj)
	if err != nil {
		t.Fatal(err)
	}
	if tail := frame[len(frame)-1]; tail != flagNoCache {
		t.Fatalf("SubmitJob flags tail = %#x, want %#x", tail, flagNoCache)
	}
	got, err := Unmarshal(TypeSubmitJob, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*SubmitJob).QoC.NoCache {
		t.Fatal("SubmitJob NoCache lost in round trip")
	}

	as := &Assign{Attempt: 1, Tasklet: 2, Program: 3, Fuel: 4, Seed: 5, NoCache: true}
	frame, err = Marshal(as)
	if err != nil {
		t.Fatal(err)
	}
	if tail := frame[len(frame)-1]; tail != flagNoCache {
		t.Fatalf("Assign flags tail = %#x, want %#x", tail, flagNoCache)
	}
	got, err = Unmarshal(TypeAssign, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*Assign).NoCache {
		t.Fatal("Assign NoCache lost in round trip")
	}

	h := &Hello{Version: ProtocolVersion, Role: RoleProvider, Name: "n", Caps: CapFlagsTail}
	frame, err = Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if tail := frame[len(frame)-1]; tail != CapFlagsTail {
		t.Fatalf("Hello caps tail = %#x, want %#x", tail, CapFlagsTail)
	}
	got, err = Unmarshal(TypeHello, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if got.(*Hello).Caps != CapFlagsTail {
		t.Fatal("Hello Caps lost in round trip")
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	frame, _ := Marshal(&Welcome{ID: 1})
	payload := append(frame[5:], 0xAB)
	if _, err := Unmarshal(TypeWelcome, payload); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	if _, err := Unmarshal(MsgType(250), nil); err == nil {
		t.Fatal("unknown type accepted")
	}
}

// Property: random byte payloads never panic the decoder.
func TestUnmarshalRobustProperty(t *testing.T) {
	f := func(tByte uint8, payload []byte) bool {
		_, _ = Unmarshal(MsgType(tByte%25), payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitJobRejectsHugeParamCount(t *testing.T) {
	// Claiming 2^31 parameter sets in a small buffer must fail fast.
	var e enc
	e.bytes([]byte("prog"))
	e.u32(1 << 31)
	if _, err := Unmarshal(TypeSubmitJob, e.buf); err == nil {
		t.Fatal("absurd param count accepted")
	}
}

func TestConnSendRecv(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc, sc := NewConn(client), NewConn(server)

	done := make(chan error, 1)
	go func() {
		for _, m := range allMessages() {
			if err := cc.Send(m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	for _, want := range allMessages() {
		got, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Type(), err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("over pipe:\n in: %#v\nout: %#v", want, got)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("send: %v", err)
	}
}

func TestConnRecvTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(200 * time.Millisecond)
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(nc)
	defer c.Close()
	c.ReadTimeout = 30 * time.Millisecond
	if _, err := c.Recv(); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestConnRejectsOversizedFrame(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(TypeHello)}
		client.Write(hdr)
	}()
	sc := NewConn(server)
	if _, err := sc.Recv(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestConcurrentSendersInterleaveWholeFrames(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc, sc := NewConn(client), NewConn(server)

	const perSender, senders = 50, 4
	for i := 0; i < senders; i++ {
		go func(id int) {
			for j := 0; j < perSender; j++ {
				_ = cc.Send(&Heartbeat{FreeSlots: id})
			}
		}(i)
	}
	counts := map[int]int{}
	for i := 0; i < senders*perSender; i++ {
		m, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		hb, ok := m.(*Heartbeat)
		if !ok {
			t.Fatalf("frame corrupted: got %T", m)
		}
		counts[hb.FreeSlots]++
	}
	for i := 0; i < senders; i++ {
		if counts[i] != perSender {
			t.Fatalf("sender %d delivered %d frames, want %d", i, counts[i], perSender)
		}
	}
}

func TestMarshalFrameLayout(t *testing.T) {
	frame, err := Marshal(&Welcome{ID: 0x0102030405060708})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 8, // payload length
		byte(TypeWelcome),
		1, 2, 3, 4, 5, 6, 7, 8,
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame = %x, want %x", frame, want)
	}
}

func TestValueArraysSurviveWire(t *testing.T) {
	nested := tvm.Arr(tvm.Arr(tvm.Int(1), tvm.Int(2)), tvm.Str("deep"), tvm.Nil())
	m := &Assign{Params: []tvm.Value{nested}}
	frame, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(TypeAssign, frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.(*Assign).Params[0].Equal(nested) {
		t.Fatalf("nested array mangled: %s", got.(*Assign).Params[0])
	}
}
