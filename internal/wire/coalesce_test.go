package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// sinkConn is a net.Conn that records (or discards) everything written to
// it. Reads block forever; the write side is what the coalescing tests and
// benchmarks observe.
type sinkConn struct {
	mu      sync.Mutex
	buf     *bytes.Buffer // nil discards
	flushes int           // number of Write calls that reached the "socket"
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	if s.buf != nil {
		s.buf.Write(p)
	}
	return len(p), nil
}

func (s *sinkConn) Read(p []byte) (int, error)         { select {} }
func (s *sinkConn) Close() error                       { return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (s *sinkConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

func (s *sinkConn) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func (s *sinkConn) flushCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushes
}

// TestCoalescedOutputByteIdentical proves the coalescing machinery moves
// only syscall boundaries, never frame bytes: the same message sequence
// emitted via flush-per-Send (NoCoalesce), via one SendBatch, and via plain
// Marshal concatenation produces the identical byte stream.
func TestCoalescedOutputByteIdentical(t *testing.T) {
	msgs := allMessages()

	var want bytes.Buffer
	for _, m := range msgs {
		frame, err := Marshal(m)
		if err != nil {
			t.Fatalf("marshal %s: %v", m.Type(), err)
		}
		want.Write(frame)
	}

	uncoalesced := &sinkConn{buf: &bytes.Buffer{}}
	uc := NewConn(uncoalesced)
	uc.NoCoalesce = true
	for _, m := range msgs {
		if err := uc.Send(m); err != nil {
			t.Fatalf("uncoalesced send %s: %v", m.Type(), err)
		}
	}

	coalesced := &sinkConn{buf: &bytes.Buffer{}}
	cc := NewConn(coalesced)
	if err := cc.SendBatch(msgs); err != nil {
		t.Fatalf("batch send: %v", err)
	}

	if !bytes.Equal(uncoalesced.bytes(), want.Bytes()) {
		t.Fatal("uncoalesced stream differs from Marshal concatenation")
	}
	if !bytes.Equal(coalesced.bytes(), want.Bytes()) {
		t.Fatal("coalesced stream differs from Marshal concatenation")
	}
	if uf, cf := uncoalesced.flushCount(), coalesced.flushCount(); cf >= uf {
		t.Fatalf("coalescing saved no flushes: batch used %d writes, flush-per-send used %d", cf, uf)
	}
}

// TestConcurrentSendAndSendBatchStress hammers one Conn with a mix of Send
// and SendBatch from many goroutines (run under -race by `make check`) and
// verifies every frame arrives whole and exactly once.
func TestConcurrentSendAndSendBatchStress(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cc, sc := NewConn(client), NewConn(server)

	const senders = 8
	const perSender = 40 // frames each sender contributes in total
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sent := 0
			for sent < perSender {
				if id%2 == 0 {
					// Batches of 1..5 frames.
					n := 1 + (sent % 5)
					if sent+n > perSender {
						n = perSender - sent
					}
					batch := make([]Message, n)
					for j := range batch {
						batch[j] = &Heartbeat{FreeSlots: id}
					}
					if err := cc.SendBatch(batch); err != nil {
						return
					}
					sent += n
				} else {
					if err := cc.Send(&Heartbeat{FreeSlots: id}); err != nil {
						return
					}
					sent++
				}
			}
		}(i)
	}

	counts := map[int]int{}
	for i := 0; i < senders*perSender; i++ {
		m, err := sc.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		hb, ok := m.(*Heartbeat)
		if !ok {
			t.Fatalf("frame corrupted: got %T", m)
		}
		counts[hb.FreeSlots]++
	}
	wg.Wait()
	for i := 0; i < senders; i++ {
		if counts[i] != perSender {
			t.Fatalf("sender %d delivered %d frames, want %d", i, counts[i], perSender)
		}
	}
}

// TestAppendFrameMatchesMarshal pins AppendFrame (the pooled-buffer encode
// core) to Marshal output for every message type, including appending after
// existing bytes.
func TestAppendFrameMatchesMarshal(t *testing.T) {
	for _, m := range allMessages() {
		want, err := Marshal(m)
		if err != nil {
			t.Fatalf("marshal %s: %v", m.Type(), err)
		}
		got, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("append %s: %v", m.Type(), err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: AppendFrame differs from Marshal", m.Type())
		}
		prefix := []byte("prefix")
		got2, err := AppendFrame(append([]byte(nil), prefix...), m)
		if err != nil {
			t.Fatalf("append-after %s: %v", m.Type(), err)
		}
		if !bytes.Equal(got2, append(append([]byte(nil), prefix...), want...)) {
			t.Fatalf("%s: AppendFrame onto prefix corrupted stream", m.Type())
		}
	}
}

// BenchmarkConnSend_Heartbeat measures the full send path for a
// zero-payload message. With pooled encode buffers this is allocation-free.
func BenchmarkConnSend_Heartbeat(b *testing.B) {
	c := NewConn(&sinkConn{})
	hb := &Heartbeat{FreeSlots: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(hb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConnSend_AttemptResult measures the send path for a typical
// result frame (payload-bearing).
func BenchmarkConnSend_AttemptResult(b *testing.B) {
	c := NewConn(&sinkConn{})
	m := &AttemptResult{Attempt: 7, Tasklet: 9, Status: 0, FuelUsed: 12345, ExecNanos: 67890}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLegacySend_Heartbeat reconstructs the pre-coalescing send path —
// Marshal into a fresh slice, then write it — as the allocs/op baseline the
// pooled path is compared against.
func BenchmarkLegacySend_Heartbeat(b *testing.B) {
	sink := &sinkConn{}
	hb := &Heartbeat{FreeSlots: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := Marshal(hb)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sink.Write(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshal_Heartbeat tracks Marshal's own cost for zero-payload
// messages (one allocation: the returned caller-owned frame).
func BenchmarkMarshal_Heartbeat(b *testing.B) {
	hb := &Heartbeat{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(hb); err != nil {
			b.Fatal(err)
		}
	}
}
