// Package scheduler implements the computation-placement policies the
// Tasklet broker (and the simulator) use to map tasklets onto heterogeneous
// providers. Policies are synchronous and deterministic given their seed;
// the same implementations run in the live broker and in the discrete-event
// simulator, which is what makes the heterogeneity experiments (E4)
// apples-to-apples.
//
// Two placement paths exist:
//
//   - the legacy full-scan path: the caller snapshots the fleet into a
//     []Candidate and calls Policy.Pick, which filters and ranks the whole
//     slice (O(P log P) per pick);
//   - the incremental Index (index.go): the caller feeds provider events
//     (register, assign, complete, disconnect) into per-policy ordered
//     structures and each pick is a heap peek or an order-statistics query
//     (O(log P) per pick, no allocations).
//
// The two are provably pick-for-pick identical — see the differential tests
// in index_test.go. The legacy path remains the ablation baseline
// (broker/sim Options.NoIndex).
package scheduler

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/core"
)

// Candidate is the scheduler's view of one provider at decision time.
type Candidate struct {
	Info      *core.ProviderInfo
	FreeSlots int
	// Backlog counts attempts assigned but not yet completed (including
	// running ones); load-aware policies minimize Backlog/Slots.
	Backlog int
}

// Request describes one placement decision.
type Request struct {
	Tasklet *core.Tasklet
	// Exclude lists providers that must not receive this attempt (QoC
	// replicas must land on distinct providers; retried attempts avoid the
	// provider that just failed).
	Exclude map[core.ProviderID]bool
	// ExcludeIDs is the allocation-free form of Exclude: a small slice the
	// caller can reuse across picks (see qoc.Tracker.AppendActiveProviders).
	// A provider named by either field is excluded.
	ExcludeIDs []core.ProviderID
}

// excluded reports whether id is barred from receiving this attempt.
func (req *Request) excluded(id core.ProviderID) bool {
	if req.Exclude != nil && req.Exclude[id] {
		return true
	}
	for _, x := range req.ExcludeIDs {
		if x == id {
			return true
		}
	}
	return false
}

// Policy picks a provider for a tasklet attempt. Pick returns false when no
// acceptable provider exists (caller queues the attempt). Implementations
// may keep internal state (round-robin cursor, RNG, scratch buffers) and are
// safe for use from a single scheduling goroutine; they are not safe for
// concurrent use.
type Policy interface {
	Name() string
	Pick(req Request, cands []Candidate) (core.ProviderID, bool)
}

// scratch is the reusable eligible-candidate buffer every policy embeds so
// the legacy scan path performs no per-pick allocations (the ablation
// baseline measures ranking cost, not allocator churn).
type scratch struct {
	buf []Candidate
}

// eligible filters candidates with free capacity that are not excluded into
// the policy's scratch buffer, returning them in ascending provider-ID order
// for determinism. The returned slice is valid until the next call.
func (s *scratch) eligible(req Request, cands []Candidate) []Candidate {
	out := s.buf[:0]
	for _, c := range cands {
		if c.FreeSlots <= 0 {
			continue
		}
		if req.excluded(c.Info.ID) {
			continue
		}
		out = append(out, c)
	}
	slices.SortFunc(out, func(a, b Candidate) int { return cmp.Compare(a.Info.ID, b.Info.ID) })
	s.buf = out
	return out
}

// ---------- shared ranking functions ----------
//
// Each rank is computed by exactly one function shared between the legacy
// scan and the incremental index, so the two paths compare bit-identical
// float values and therefore make bit-identical picks.

// loadRank is the backlog-per-slot ratio minimized by LeastLoaded (and by
// Deadline among deadline-qualified providers).
func loadRank(backlog, slots int) float64 {
	if slots <= 0 {
		slots = 1
	}
	return float64(backlog) / float64(slots)
}

// completionRank orders providers by expected completion time for one more
// unit of work: (backlog/slots + 1) queue units at the provider's speed.
// The tasklet's fuel is a positive factor common to every candidate in a
// single decision, so it cancels out of the comparison and the rank is
// fuel-free — which is what lets the index maintain one heap across
// requests with differing fuel.
func completionRank(backlog, slots int, speed float64) float64 {
	if speed <= 0 {
		speed = 0.001
	}
	if slots <= 0 {
		slots = 1
	}
	return (float64(backlog)/float64(slots) + 1) / speed
}

// reliabilityRank is the score maximized by Reliable: completion ratio
// squared, weighted by speed.
func reliabilityRank(reliability, speed float64) float64 {
	if reliability <= 0 {
		reliability = 0.01
	}
	return reliability * reliability * (speed + 1)
}

// fasterCandidate reports whether a beats b under FastestFree's ordering:
// strictly higher speed, ties broken by lower ID.
func fasterCandidate(aSpeed float64, aID core.ProviderID, bSpeed float64, bID core.ProviderID) bool {
	if aSpeed != bSpeed {
		return aSpeed > bSpeed
	}
	return aID < bID
}

// Random places each attempt uniformly at random among eligible providers.
// This is the paper's baseline policy: it ignores heterogeneity entirely.
type Random struct {
	rng uint64
	scratch
}

// NewRandom creates a Random policy with a deterministic seed.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random{rng: seed}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// xorshiftMul advances the xorshift* generator state and returns (next
// state, output). Shared by Random and the index so their streams stay in
// lockstep.
func xorshiftMul(state uint64) (uint64, uint64) {
	x := state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x, x * 0x2545f4914f6cdd1d
}

func (r *Random) next() uint64 {
	var out uint64
	r.rng, out = xorshiftMul(r.rng)
	return out
}

// Pick implements Policy.
func (r *Random) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := r.eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	return el[r.next()%uint64(len(el))].Info.ID, true
}

// RoundRobin cycles through providers in ID order, skipping busy ones. It
// balances attempt counts but, like Random, is blind to provider speed.
type RoundRobin struct {
	cursor uint64
	scratch
}

// NewRoundRobin creates a RoundRobin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round_robin" }

// Pick implements Policy.
func (rr *RoundRobin) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := rr.eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	pick := el[rr.cursor%uint64(len(el))]
	rr.cursor++
	return pick.Info.ID, true
}

// FastestFree places each attempt on the fastest provider with a free slot
// (ties broken by lower ID). This is the speed-aware policy that exploits
// the providers' self-measured benchmark scores.
type FastestFree struct {
	scratch
}

// NewFastestFree creates a FastestFree policy.
func NewFastestFree() *FastestFree { return &FastestFree{} }

// Name implements Policy.
func (*FastestFree) Name() string { return "fastest" }

// Pick implements Policy.
func (f *FastestFree) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := f.eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	for _, c := range el[1:] {
		if c.Info.Speed > best.Info.Speed {
			best = c
		}
	}
	return best.Info.ID, true
}

// LeastLoaded minimizes the backlog-per-slot ratio, spreading work evenly
// across providers regardless of their speed.
type LeastLoaded struct {
	scratch
}

// NewLeastLoaded creates a LeastLoaded policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (*LeastLoaded) Name() string { return "least_loaded" }

// Pick implements Policy.
func (l *LeastLoaded) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := l.eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	bestRatio := loadRank(best.Backlog, best.Info.Slots)
	for _, c := range el[1:] {
		if r := loadRank(c.Backlog, c.Info.Slots); r < bestRatio {
			best, bestRatio = c, r
		}
	}
	return best.Info.ID, true
}

// WorkSteal approximates proportional-share placement: it ranks providers
// by expected completion time for one more attempt, accounting for the
// backlog already queued on each provider. With accurate speed scores this
// minimizes makespan on heterogeneous fleets.
type WorkSteal struct {
	scratch
}

// NewWorkSteal creates a WorkSteal policy.
func NewWorkSteal() *WorkSteal { return &WorkSteal{} }

// Name implements Policy.
func (*WorkSteal) Name() string { return "work_steal" }

// Pick implements Policy.
func (w *WorkSteal) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := w.eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	bestCost := completionRank(best.Backlog, best.Info.Slots, best.Info.Speed)
	for _, c := range el[1:] {
		if cost := completionRank(c.Backlog, c.Info.Slots, c.Info.Speed); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best.Info.ID, true
}

// Reliable weights speed by the broker-tracked reliability score, avoiding
// churn-prone providers for QoC-sensitive tasklets.
type Reliable struct {
	scratch
}

// NewReliable creates a Reliable policy.
func NewReliable() *Reliable { return &Reliable{} }

// Name implements Policy.
func (*Reliable) Name() string { return "reliable" }

// Pick implements Policy.
func (rel *Reliable) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := rel.eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	bestScore := reliabilityRank(best.Info.Reliability, best.Info.Speed)
	for _, c := range el[1:] {
		if s := reliabilityRank(c.Info.Reliability, c.Info.Speed); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best.Info.ID, true
}

// Deadline places deadline-carrying tasklets only on providers fast enough
// to finish within the budget (falling back to the fastest available when
// none qualifies), and behaves like WorkSteal for unconstrained tasklets.
type Deadline struct {
	steal WorkSteal
	scratch
}

// NewDeadline creates a Deadline policy.
func NewDeadline() *Deadline { return &Deadline{} }

// Name implements Policy.
func (*Deadline) Name() string { return "deadline" }

// Pick implements Policy.
func (d *Deadline) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	t := req.Tasklet
	if t == nil || t.QoC.Deadline <= 0 {
		return d.steal.Pick(req, cands)
	}
	el := d.eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	fuel := t.Fuel
	if fuel == 0 {
		fuel = 1
	}
	// Qualify providers whose expected execution fits the remaining
	// budget; among them take the least loaded to preserve capacity on
	// the fastest for tighter deadlines. Track the fastest eligible as we
	// go: when nothing meets the deadline, best effort lands there.
	var best, fastest Candidate
	haveBest, haveFastest := false, false
	var bestRatio float64
	for _, c := range el {
		if !haveFastest || fasterCandidate(c.Info.Speed, c.Info.ID, fastest.Info.Speed, fastest.Info.ID) {
			fastest, haveFastest = c, true
		}
		if exec := c.Info.ExpectedExec(fuel); exec > 0 && exec <= t.QoC.Deadline {
			if r := loadRank(c.Backlog, c.Info.Slots); !haveBest || r < bestRatio {
				best, bestRatio, haveBest = c, r, true
			}
		}
	}
	if haveBest {
		return best.Info.ID, true
	}
	// Nothing meets the deadline: best effort on the fastest.
	return fastest.Info.ID, true
}

// Names lists the registered policy names accepted by New.
func Names() []string {
	return []string{"random", "round_robin", "fastest", "least_loaded", "work_steal", "reliable", "deadline"}
}

// New constructs a policy by name; seed feeds stochastic policies.
func New(name string, seed uint64) (Policy, error) {
	switch name {
	case "random":
		return NewRandom(seed), nil
	case "round_robin":
		return NewRoundRobin(), nil
	case "fastest":
		return NewFastestFree(), nil
	case "least_loaded":
		return NewLeastLoaded(), nil
	case "work_steal":
		return NewWorkSteal(), nil
	case "reliable":
		return NewReliable(), nil
	case "deadline":
		return NewDeadline(), nil
	default:
		return nil, fmt.Errorf("scheduler: unknown policy %q (want one of %v)", name, Names())
	}
}
