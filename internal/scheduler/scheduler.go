// Package scheduler implements the computation-placement policies the
// Tasklet broker (and the simulator) use to map tasklets onto heterogeneous
// providers. Policies are synchronous and deterministic given their seed;
// the same implementations run in the live broker and in the discrete-event
// simulator, which is what makes the heterogeneity experiments (E4)
// apples-to-apples.
package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Candidate is the scheduler's view of one provider at decision time.
type Candidate struct {
	Info      *core.ProviderInfo
	FreeSlots int
	// Backlog counts attempts assigned but not yet completed (including
	// running ones); load-aware policies minimize Backlog/Slots.
	Backlog int
}

// Request describes one placement decision.
type Request struct {
	Tasklet *core.Tasklet
	// Exclude lists providers that must not receive this attempt (QoC
	// replicas must land on distinct providers; retried attempts avoid the
	// provider that just failed).
	Exclude map[core.ProviderID]bool
}

// Policy picks a provider for a tasklet attempt. Pick returns false when no
// acceptable provider exists (caller queues the attempt). Implementations
// may keep internal state (round-robin cursor, RNG) and are safe for use
// from a single scheduling goroutine; they are not safe for concurrent use.
type Policy interface {
	Name() string
	Pick(req Request, cands []Candidate) (core.ProviderID, bool)
}

// eligible filters candidates with free capacity that are not excluded,
// returning them in ascending provider-ID order for determinism.
func eligible(req Request, cands []Candidate) []Candidate {
	out := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.FreeSlots <= 0 {
			continue
		}
		if req.Exclude != nil && req.Exclude[c.Info.ID] {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.ID < out[j].Info.ID })
	return out
}

// Random places each attempt uniformly at random among eligible providers.
// This is the paper's baseline policy: it ignores heterogeneity entirely.
type Random struct {
	rng uint64
}

// NewRandom creates a Random policy with a deterministic seed.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random{rng: seed}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

func (r *Random) next() uint64 {
	x := r.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Pick implements Policy.
func (r *Random) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	return el[r.next()%uint64(len(el))].Info.ID, true
}

// RoundRobin cycles through providers in ID order, skipping busy ones. It
// balances attempt counts but, like Random, is blind to provider speed.
type RoundRobin struct {
	cursor uint64
}

// NewRoundRobin creates a RoundRobin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round_robin" }

// Pick implements Policy.
func (rr *RoundRobin) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	pick := el[rr.cursor%uint64(len(el))]
	rr.cursor++
	return pick.Info.ID, true
}

// FastestFree places each attempt on the fastest provider with a free slot
// (ties broken by lower ID). This is the speed-aware policy that exploits
// the providers' self-measured benchmark scores.
type FastestFree struct{}

// NewFastestFree creates a FastestFree policy.
func NewFastestFree() *FastestFree { return &FastestFree{} }

// Name implements Policy.
func (*FastestFree) Name() string { return "fastest" }

// Pick implements Policy.
func (*FastestFree) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	for _, c := range el[1:] {
		if c.Info.Speed > best.Info.Speed {
			best = c
		}
	}
	return best.Info.ID, true
}

// LeastLoaded minimizes the backlog-per-slot ratio, spreading work evenly
// across providers regardless of their speed.
type LeastLoaded struct{}

// NewLeastLoaded creates a LeastLoaded policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (*LeastLoaded) Name() string { return "least_loaded" }

// Pick implements Policy.
func (*LeastLoaded) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	best := el[0]
	bestRatio := loadRatio(best)
	for _, c := range el[1:] {
		if r := loadRatio(c); r < bestRatio {
			best, bestRatio = c, r
		}
	}
	return best.Info.ID, true
}

func loadRatio(c Candidate) float64 {
	slots := c.Info.Slots
	if slots <= 0 {
		slots = 1
	}
	return float64(c.Backlog) / float64(slots)
}

// WorkSteal approximates proportional-share placement: it ranks providers
// by expected completion time for this tasklet's fuel, accounting for the
// backlog already queued on each provider. With accurate speed scores this
// minimizes makespan on heterogeneous fleets.
type WorkSteal struct{}

// NewWorkSteal creates a WorkSteal policy.
func NewWorkSteal() *WorkSteal { return &WorkSteal{} }

// Name implements Policy.
func (*WorkSteal) Name() string { return "work_steal" }

// Pick implements Policy.
func (*WorkSteal) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	fuel := uint64(1)
	if req.Tasklet != nil && req.Tasklet.Fuel > 0 {
		fuel = req.Tasklet.Fuel
	}
	best := el[0]
	bestCost := expectedCompletion(best, fuel)
	for _, c := range el[1:] {
		if cost := expectedCompletion(c, fuel); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best.Info.ID, true
}

// expectedCompletion estimates seconds until a new attempt would finish on
// the candidate: (backlog/slots + 1) units of this tasklet's work at the
// provider's speed.
func expectedCompletion(c Candidate, fuel uint64) float64 {
	speed := c.Info.Speed
	if speed <= 0 {
		speed = 0.001
	}
	slots := c.Info.Slots
	if slots <= 0 {
		slots = 1
	}
	unitsAhead := float64(c.Backlog)/float64(slots) + 1
	return unitsAhead * float64(fuel) / (speed * 1e6)
}

// Reliable weights speed by the broker-tracked reliability score, avoiding
// churn-prone providers for QoC-sensitive tasklets.
type Reliable struct{}

// NewReliable creates a Reliable policy.
func NewReliable() *Reliable { return &Reliable{} }

// Name implements Policy.
func (*Reliable) Name() string { return "reliable" }

// Pick implements Policy.
func (*Reliable) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	el := eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	score := func(c Candidate) float64 {
		rel := c.Info.Reliability
		if rel <= 0 {
			rel = 0.01
		}
		return rel * rel * (c.Info.Speed + 1)
	}
	best := el[0]
	bestScore := score(best)
	for _, c := range el[1:] {
		if s := score(c); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best.Info.ID, true
}

// Deadline places deadline-carrying tasklets only on providers fast enough
// to finish within the budget (falling back to the fastest available when
// none qualifies), and behaves like WorkSteal for unconstrained tasklets.
type Deadline struct {
	steal WorkSteal
}

// NewDeadline creates a Deadline policy.
func NewDeadline() *Deadline { return &Deadline{} }

// Name implements Policy.
func (*Deadline) Name() string { return "deadline" }

// Pick implements Policy.
func (d *Deadline) Pick(req Request, cands []Candidate) (core.ProviderID, bool) {
	t := req.Tasklet
	if t == nil || t.QoC.Deadline <= 0 {
		return d.steal.Pick(req, cands)
	}
	el := eligible(req, cands)
	if len(el) == 0 {
		return 0, false
	}
	fuel := t.Fuel
	if fuel == 0 {
		fuel = 1
	}
	// Qualify providers whose expected execution fits the remaining
	// budget; among them take the least loaded to preserve capacity on
	// the fastest for tighter deadlines.
	var qualified []Candidate
	for _, c := range el {
		if exec := c.Info.ExpectedExec(fuel); exec > 0 && exec <= t.QoC.Deadline {
			qualified = append(qualified, c)
		}
	}
	if len(qualified) == 0 {
		// Nothing meets the deadline: best effort on the fastest.
		var ff FastestFree
		return ff.Pick(req, cands)
	}
	best := qualified[0]
	bestRatio := loadRatio(best)
	for _, c := range qualified[1:] {
		if r := loadRatio(c); r < bestRatio {
			best, bestRatio = c, r
		}
	}
	return best.Info.ID, true
}

// Names lists the registered policy names accepted by New.
func Names() []string {
	return []string{"random", "round_robin", "fastest", "least_loaded", "work_steal", "reliable", "deadline"}
}

// New constructs a policy by name; seed feeds stochastic policies.
func New(name string, seed uint64) (Policy, error) {
	switch name {
	case "random":
		return NewRandom(seed), nil
	case "round_robin":
		return NewRoundRobin(), nil
	case "fastest":
		return NewFastestFree(), nil
	case "least_loaded":
		return NewLeastLoaded(), nil
	case "work_steal":
		return NewWorkSteal(), nil
	case "reliable":
		return NewReliable(), nil
	case "deadline":
		return NewDeadline(), nil
	default:
		return nil, fmt.Errorf("scheduler: unknown policy %q (want one of %v)", name, Names())
	}
}
