package scheduler

import (
	"fmt"

	"repro/internal/core"
)

// Index is the incremental placement index: it maintains the per-policy
// ordered structure a policy ranks providers by, updated on provider events
// (register, assign, complete, disconnect) instead of rebuilt on every
// pick. A pick is then a heap peek (ranked policies) or an order-statistics
// query (random / round_robin) instead of an O(P log P) filter-and-sort,
// and performs zero allocations.
//
// The index is pick-for-pick identical to the legacy scan: for the same
// event sequence and the same stochastic seed it returns exactly the
// provider the equivalent Policy.Pick would return (see the differential
// tests). Exclusion (QoC replica fan-out, retry avoidance) is handled by
// bounded pop-and-reinsert: excluded entries are popped off the heap (or
// weight-masked in the selection tree), the winner is read, and the popped
// entries are pushed back — O(|exclude| · log P) per pick with reusable
// scratch, no allocations.
//
// Structures by policy:
//
//	fastest               max-heap on (speed, -ID)
//	least_loaded          min-heap on (backlog/slots, ID)
//	work_steal            min-heap on (completionRank, ID)
//	reliable              max-heap on (reliabilityRank, -ID)
//	deadline              work_steal heap (no-deadline requests) plus a
//	                      least_loaded heap swept in load order for
//	                      deadline-qualified selection
//	random, round_robin   ID-ordered ring with a Fenwick tree over free
//	                      flags for O(log P) k-th-eligible selection
//
// An Index is not safe for concurrent use; the broker serializes access
// under its scheduling mutex, matching the Policy contract. All methods are
// nil-receiver safe so callers running the legacy path need no guards.
type Index struct {
	kind policyKind

	entries map[core.ProviderID]*ixEntry
	free    int // total free slots across registered providers

	heapA ixHeap // primary ranking (unused by ring policies)
	heapB ixHeap // deadline only: load-ratio order

	rng    uint64 // random: xorshift* state, in lockstep with Random.rng
	cursor uint64 // round_robin cursor, in lockstep with RoundRobin.cursor

	ring ixRing

	stash   []*ixEntry // pop-and-reinsert scratch (heap policies)
	restore []*ixEntry // weight-restore scratch (ring policies)
}

type policyKind uint8

const (
	kindRandom policyKind = iota
	kindRoundRobin
	kindFastest
	kindLeastLoaded
	kindWorkSteal
	kindReliable
	kindDeadline
)

// ixEntry is the index's record of one provider. Rank inputs (speed, slots,
// reliability) are read through info at comparison time, so callers must
// report rank-affecting mutations of the shared ProviderInfo via Upsert /
// Assign / Complete, which restore heap invariants.
type ixEntry struct {
	info    *core.ProviderInfo
	free    int
	backlog int
	posA    int // position in heapA; -1 when absent
	posB    int // position in heapB; -1 when absent
	ringIdx int // slot in the selection ring; -1 when absent
}

// NewIndexFor builds an incremental index equivalent to policy p,
// snapshotting any stochastic state (RNG, cursor) so the index's pick
// stream continues exactly where the policy's would. Custom policies
// outside this package have no index; callers fall back to the legacy
// scan. The policy instance itself is not retained or mutated.
func NewIndexFor(p Policy) (*Index, error) {
	ix := &Index{entries: map[core.ProviderID]*ixEntry{}}
	switch pp := p.(type) {
	case *Random:
		ix.kind = kindRandom
		ix.rng = pp.rng
	case *RoundRobin:
		ix.kind = kindRoundRobin
		ix.cursor = pp.cursor
	case *FastestFree:
		ix.kind = kindFastest
		ix.heapA = ixHeap{slot: 0, less: lessFastest}
	case *LeastLoaded:
		ix.kind = kindLeastLoaded
		ix.heapA = ixHeap{slot: 0, less: lessLoad}
	case *WorkSteal:
		ix.kind = kindWorkSteal
		ix.heapA = ixHeap{slot: 0, less: lessCompletion}
	case *Reliable:
		ix.kind = kindReliable
		ix.heapA = ixHeap{slot: 0, less: lessReliable}
	case *Deadline:
		ix.kind = kindDeadline
		ix.heapA = ixHeap{slot: 0, less: lessCompletion}
		ix.heapB = ixHeap{slot: 1, less: lessLoad}
	default:
		return nil, fmt.Errorf("scheduler: policy %q has no incremental index", p.Name())
	}
	return ix, nil
}

// Heap orderings. Each delegates to the shared ranking function the legacy
// scan uses, with the legacy tie-break (lower provider ID wins).

func lessFastest(a, b *ixEntry) bool {
	return fasterCandidate(a.info.Speed, a.info.ID, b.info.Speed, b.info.ID)
}

func lessLoad(a, b *ixEntry) bool {
	ra, rb := loadRank(a.backlog, a.info.Slots), loadRank(b.backlog, b.info.Slots)
	if ra != rb {
		return ra < rb
	}
	return a.info.ID < b.info.ID
}

func lessCompletion(a, b *ixEntry) bool {
	ra := completionRank(a.backlog, a.info.Slots, a.info.Speed)
	rb := completionRank(b.backlog, b.info.Slots, b.info.Speed)
	if ra != rb {
		return ra < rb
	}
	return a.info.ID < b.info.ID
}

func lessReliable(a, b *ixEntry) bool {
	ra := reliabilityRank(a.info.Reliability, a.info.Speed)
	rb := reliabilityRank(b.info.Reliability, b.info.Speed)
	if ra != rb {
		return ra > rb
	}
	return a.info.ID < b.info.ID
}

// ---------- provider events ----------

// Upsert registers a provider or refreshes its capacity after a
// re-registration (or, in the simulator, a failure/recovery transition:
// free = 0 parks a down device without forgetting it). info is retained and
// read at comparison time, so speed/slots/reliability edits paired with an
// Upsert/Assign/Complete call are picked up automatically.
func (ix *Index) Upsert(info *core.ProviderInfo, free, backlog int) {
	if ix == nil {
		return
	}
	e := ix.entries[info.ID]
	if e == nil {
		e = &ixEntry{info: info, free: free, backlog: backlog, posA: -1, posB: -1, ringIdx: -1}
		ix.entries[info.ID] = e
		ix.free += free
		ix.insertStructures(e)
		return
	}
	was := e.free > 0
	ix.free += free - e.free
	e.info = info
	e.free = free
	e.backlog = backlog
	ix.syncEntry(e, was)
}

// Remove forgets a disconnected provider.
func (ix *Index) Remove(id core.ProviderID) {
	if ix == nil {
		return
	}
	e := ix.entries[id]
	if e == nil {
		return
	}
	ix.free -= e.free
	if e.posA >= 0 {
		ix.heapA.remove(e.posA)
	}
	if e.posB >= 0 {
		ix.heapB.remove(e.posB)
	}
	if e.ringIdx >= 0 {
		ix.ring.removeEntry(e)
	}
	delete(ix.entries, id)
}

// Assign records one attempt placed on the provider: a slot is consumed and
// its backlog grows, so its rank (and eligibility) may change.
func (ix *Index) Assign(id core.ProviderID) {
	if ix == nil {
		return
	}
	e := ix.entries[id]
	if e == nil {
		return
	}
	was := e.free > 0
	e.free--
	e.backlog++
	ix.free--
	ix.syncEntry(e, was)
}

// Complete records one attempt leaving the provider (result arrived or the
// attempt was abandoned with the slot reclaimed).
func (ix *Index) Complete(id core.ProviderID) {
	if ix == nil {
		return
	}
	e := ix.entries[id]
	if e == nil {
		return
	}
	was := e.free > 0
	e.free++
	e.backlog--
	ix.free++
	ix.syncEntry(e, was)
}

// FreeSlots returns the fleet's total free capacity.
func (ix *Index) FreeSlots() int {
	if ix == nil {
		return 0
	}
	return ix.free
}

// Len returns the number of registered providers.
func (ix *Index) Len() int {
	if ix == nil {
		return 0
	}
	return len(ix.entries)
}

// insertStructures adds a fresh entry to the policy's structures.
func (ix *Index) insertStructures(e *ixEntry) {
	if ix.usesRing() {
		ix.ring.insert(e, ringWeight(e))
		return
	}
	if e.free > 0 {
		ix.heapA.push(e)
		if ix.kind == kindDeadline {
			ix.heapB.push(e)
		}
	}
}

// syncEntry restores structure invariants after an entry's free/backlog (or
// shared info fields) changed. was reports whether the entry was eligible
// (free > 0) before the change.
func (ix *Index) syncEntry(e *ixEntry, was bool) {
	now := e.free > 0
	if ix.usesRing() {
		ix.ring.setWeight(e, ringWeight(e))
		return
	}
	switch {
	case was && !now:
		ix.heapA.remove(e.posA)
		if ix.kind == kindDeadline {
			ix.heapB.remove(e.posB)
		}
	case !was && now:
		ix.heapA.push(e)
		if ix.kind == kindDeadline {
			ix.heapB.push(e)
		}
	case was && now:
		ix.heapA.fix(e.posA)
		if ix.kind == kindDeadline {
			ix.heapB.fix(e.posB)
		}
	}
}

func (ix *Index) usesRing() bool {
	return ix.kind == kindRandom || ix.kind == kindRoundRobin
}

func ringWeight(e *ixEntry) int {
	if e.free > 0 {
		return 1
	}
	return 0
}

// ---------- picking ----------

// Pick selects a provider for t exactly as the equivalent legacy policy
// would, excluding the given providers. It performs no allocations after
// scratch buffers reach steady-state capacity.
func (ix *Index) Pick(t *core.Tasklet, exclude []core.ProviderID) (core.ProviderID, bool) {
	if ix == nil {
		return 0, false
	}
	switch ix.kind {
	case kindRandom, kindRoundRobin:
		return ix.pickRing(exclude)
	case kindDeadline:
		if t != nil && t.QoC.Deadline > 0 {
			return ix.pickDeadline(t, exclude)
		}
		return ix.pickHeap(&ix.heapA, exclude)
	default:
		return ix.pickHeap(&ix.heapA, exclude)
	}
}

func excludedID(exclude []core.ProviderID, id core.ProviderID) bool {
	for _, x := range exclude {
		if x == id {
			return true
		}
	}
	return false
}

// pickHeap peeks the heap top, popping excluded entries aside (bounded by
// |exclude|) and reinserting them before returning.
func (ix *Index) pickHeap(h *ixHeap, exclude []core.ProviderID) (core.ProviderID, bool) {
	ix.stash = ix.stash[:0]
	var winner *ixEntry
	for len(h.items) > 0 {
		top := h.items[0]
		if !excludedID(exclude, top.info.ID) {
			winner = top
			break
		}
		h.remove(0)
		ix.stash = append(ix.stash, top)
	}
	for _, e := range ix.stash {
		h.push(e)
	}
	if winner == nil {
		return 0, false
	}
	return winner.info.ID, true
}

// pickDeadline sweeps the load-ordered heap: the first non-excluded entry
// fast enough for the tasklet's budget is exactly the least-loaded
// qualified provider (pop order is (load, ID), matching the legacy scan's
// ordering over qualified candidates). If the sweep drains the heap without
// a qualified provider, the fastest eligible seen is the legacy best-effort
// fallback. All popped entries are reinserted.
func (ix *Index) pickDeadline(t *core.Tasklet, exclude []core.ProviderID) (core.ProviderID, bool) {
	fuel := t.Fuel
	if fuel == 0 {
		fuel = 1
	}
	h := &ix.heapB
	ix.stash = ix.stash[:0]
	var winner, fastest *ixEntry
	for len(h.items) > 0 {
		top := h.remove(0)
		ix.stash = append(ix.stash, top)
		if excludedID(exclude, top.info.ID) {
			continue
		}
		if fastest == nil || lessFastest(top, fastest) {
			fastest = top
		}
		if exec := top.info.ExpectedExec(fuel); exec > 0 && exec <= t.QoC.Deadline {
			winner = top
			break
		}
	}
	for _, e := range ix.stash {
		h.push(e)
	}
	if winner == nil {
		winner = fastest
	}
	if winner == nil {
		return 0, false
	}
	return winner.info.ID, true
}

// pickRing selects the k-th eligible provider in ID order, where k comes
// from the policy's RNG (random) or cursor (round_robin). Excluded
// providers are weight-masked for the query and restored afterwards.
func (ix *Index) pickRing(exclude []core.ProviderID) (core.ProviderID, bool) {
	ix.restore = ix.restore[:0]
	for _, id := range exclude {
		if e := ix.entries[id]; e != nil && e.ringIdx >= 0 && ix.ring.w[e.ringIdx] > 0 {
			ix.ring.setWeight(e, 0)
			ix.restore = append(ix.restore, e)
		}
	}
	var pid core.ProviderID
	n := ix.ring.n
	ok := n > 0
	if ok {
		var k uint64
		if ix.kind == kindRandom {
			var out uint64
			ix.rng, out = xorshiftMul(ix.rng)
			k = out % uint64(n)
		} else {
			k = ix.cursor % uint64(n)
			ix.cursor++
		}
		pid = ix.ring.kth(int(k)).info.ID
	}
	for _, e := range ix.restore {
		ix.ring.setWeight(e, 1)
	}
	return pid, ok
}

// ---------- intrusive heap ----------

// ixHeap is a binary heap over *ixEntry with intrusive positions (posA or
// posB, selected by slot) so remove/fix by entry are O(log P) without
// search and without the container/heap interface's boxing allocations.
type ixHeap struct {
	less  func(a, b *ixEntry) bool
	slot  int // 0 → posA, 1 → posB
	items []*ixEntry
}

func (h *ixHeap) setPos(e *ixEntry, i int) {
	if h.slot == 0 {
		e.posA = i
	} else {
		e.posB = i
	}
}

func (h *ixHeap) push(e *ixEntry) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	h.setPos(e, i)
	h.up(i)
}

// remove deletes the entry at position i and returns it.
func (h *ixHeap) remove(i int) *ixEntry {
	e := h.items[i]
	last := len(h.items) - 1
	if i != last {
		h.items[i] = h.items[last]
		h.setPos(h.items[i], i)
	}
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.fix(i)
	}
	h.setPos(e, -1)
	return e
}

// fix restores the invariant after the entry at position i changed rank.
func (h *ixHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *ixHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts the entry at i toward the leaves, reporting whether it moved.
func (h *ixHeap) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && h.less(h.items[r], h.items[kid]) {
			kid = r
		}
		if !h.less(h.items[kid], h.items[i]) {
			break
		}
		h.swap(i, kid)
		i = kid
	}
	return i > start
}

func (h *ixHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.setPos(h.items[i], i)
	h.setPos(h.items[j], j)
}

// ---------- ID-ordered selection ring (random / round_robin) ----------

// ixRing keeps providers in ascending-ID slots with a Fenwick tree over
// 0/1 eligibility weights, answering "the k-th eligible provider in ID
// order" in O(log P). Provider IDs are broker-monotonic, so inserts are
// appends in the common case; out-of-order inserts (simulator recovery,
// tests) and removal debt trigger an O(P log P) rebuild, amortized across
// the churn that caused them.
type ixRing struct {
	slots []*ixEntry // ID-ascending; nil = slot vacated by Remove
	w     []int      // current weight per slot (0 or 1)
	tree  []int      // Fenwick tree over w; length is a power of two ≥ len(slots)
	n     int        // total weight
	dead  int        // vacated slots awaiting compaction
	maxID core.ProviderID
}

func (r *ixRing) insert(e *ixEntry, weight int) {
	if len(r.slots) == 0 || e.info.ID > r.maxID {
		r.slots = append(r.slots, e)
		r.w = append(r.w, weight)
		e.ringIdx = len(r.slots) - 1
		r.maxID = e.info.ID
		if len(r.slots) > len(r.tree) {
			r.rebuild()
			return
		}
		if weight != 0 {
			r.n += weight
			r.treeAdd(e.ringIdx, weight)
		}
		return
	}
	// Out-of-order insert: splice into ID position and rebuild.
	pos := 0
	for pos < len(r.slots) && (r.slots[pos] == nil || r.slots[pos].info.ID < e.info.ID) {
		pos++
	}
	r.slots = append(r.slots, nil)
	copy(r.slots[pos+1:], r.slots[pos:])
	r.slots[pos] = e
	r.w = append(r.w, 0)
	copy(r.w[pos+1:], r.w[pos:])
	r.w[pos] = weight
	r.compact()
}

func (r *ixRing) removeEntry(e *ixEntry) {
	i := e.ringIdx
	r.setWeight(e, 0)
	r.slots[i] = nil
	e.ringIdx = -1
	r.dead++
	if r.dead > len(r.slots)/2 && len(r.slots) > 16 {
		r.compact()
	}
}

// setWeight sets the entry's eligibility weight (0 or 1).
func (r *ixRing) setWeight(e *ixEntry, weight int) {
	i := e.ringIdx
	if d := weight - r.w[i]; d != 0 {
		r.w[i] = weight
		r.n += d
		r.treeAdd(i, d)
	}
}

func (r *ixRing) treeAdd(i, delta int) {
	for j := i + 1; j <= len(r.tree); j += j & (-j) {
		r.tree[j-1] += delta
	}
}

// kth returns the (0-based) k-th weighted slot in ID order; k < r.n.
func (r *ixRing) kth(k int) *ixEntry {
	pos := 0
	rem := k + 1
	for bit := len(r.tree); bit > 0; bit >>= 1 {
		next := pos + bit
		if next <= len(r.tree) && r.tree[next-1] < rem {
			rem -= r.tree[next-1]
			pos = next
		}
	}
	return r.slots[pos]
}

// compact drops vacated slots and rebuilds indices and the tree.
func (r *ixRing) compact() {
	live := r.slots[:0]
	w := r.w[:0]
	for i, e := range r.slots {
		if e == nil {
			continue
		}
		live = append(live, e)
		w = append(w, r.w[i])
	}
	r.slots = live
	r.w = w
	r.dead = 0
	if len(r.slots) > 0 {
		r.maxID = r.slots[len(r.slots)-1].info.ID
	} else {
		r.maxID = 0
	}
	r.rebuild()
}

// rebuild recomputes the Fenwick tree (and ring indices) from the slots.
func (r *ixRing) rebuild() {
	size := 1
	for size < len(r.slots) {
		size *= 2
	}
	if cap(r.tree) >= size {
		r.tree = r.tree[:size]
		for i := range r.tree {
			r.tree[i] = 0
		}
	} else {
		r.tree = make([]int, size)
	}
	r.n = 0
	for i, e := range r.slots {
		if e != nil {
			e.ringIdx = i
		}
		if r.w[i] != 0 {
			r.n += r.w[i]
			r.treeAdd(i, r.w[i])
		}
	}
}
