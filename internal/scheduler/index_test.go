package scheduler

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

// mirrorFleet is the reference state for the differential property test:
// the legacy scan reads it as a candidate slice, the index receives the
// equivalent event stream. Info pointers are shared with the index, exactly
// as the broker shares providerState.info.
type mirrorFleet struct {
	provs  []*mirrorProv
	nextID core.ProviderID
}

type mirrorProv struct {
	info    *core.ProviderInfo
	free    int
	backlog int
}

var (
	tieSpeeds       = []float64{10, 50, 50, 100, 100, 250}
	tieReliabilties = []float64{1, 1, 0.75, 0.5}
)

func (m *mirrorFleet) join(rng *rand.Rand, ix *Index) {
	m.nextID++
	slots := 1 + rng.Intn(4)
	p := &mirrorProv{
		info: &core.ProviderInfo{
			ID:          m.nextID,
			Speed:       tieSpeeds[rng.Intn(len(tieSpeeds))],
			Slots:       slots,
			Reliability: tieReliabilties[rng.Intn(len(tieReliabilties))],
		},
		free: slots,
	}
	m.provs = append(m.provs, p)
	ix.Upsert(p.info, p.free, p.backlog)
}

// candidates returns the legacy view in randomized order: the broker builds
// candidates by map iteration, so the scan must not depend on slice order.
func (m *mirrorFleet) candidates(rng *rand.Rand, buf []Candidate) []Candidate {
	buf = buf[:0]
	for _, p := range m.provs {
		buf = append(buf, Candidate{Info: p.info, FreeSlots: p.free, Backlog: p.backlog})
	}
	rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
	return buf
}

func (m *mirrorFleet) byID(id core.ProviderID) *mirrorProv {
	for _, p := range m.provs {
		if p.info.ID == id {
			return p
		}
	}
	return nil
}

// TestIndexMatchesLegacyUnderChurn is the tentpole differential property
// test: for every policy, a randomized stream of joins, leaves, speed and
// reliability changes, completions, and picks (with random exclusions,
// fuel, and deadlines) must make the index return exactly the provider the
// legacy scan returns, step for step.
func TestIndexMatchesLegacyUnderChurn(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				runChurnTrial(t, name, int64(trial))
			}
		})
	}
}

func runChurnTrial(t *testing.T, policy string, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	pol, err := New(policy, uint64(seed)+1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndexFor(pol)
	if err != nil {
		t.Fatal(err)
	}

	m := &mirrorFleet{}
	for i := 0; i < 3+rng.Intn(6); i++ {
		m.join(rng, ix)
	}

	deadlines := []time.Duration{0, time.Millisecond, 100 * time.Millisecond, 10 * time.Second}
	var cands []Candidate
	var excl []core.ProviderID

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op == 0: // join
			m.join(rng, ix)
		case op == 1 && len(m.provs) > 1: // leave
			i := rng.Intn(len(m.provs))
			ix.Remove(m.provs[i].info.ID)
			m.provs = append(m.provs[:i], m.provs[i+1:]...)
		case op == 2: // a completion somewhere, with reliability drift
			p := m.provs[rng.Intn(len(m.provs))]
			if p.backlog > 0 {
				p.info.Reliability = tieReliabilties[rng.Intn(len(tieReliabilties))]
				p.free++
				p.backlog--
				ix.Complete(p.info.ID)
			}
		case op == 3: // heartbeat-style refresh with a speed change
			p := m.provs[rng.Intn(len(m.provs))]
			p.info.Speed = tieSpeeds[rng.Intn(len(tieSpeeds))]
			ix.Upsert(p.info, p.free, p.backlog)
		default: // pick
			excl = excl[:0]
			for _, p := range m.provs {
				if rng.Intn(4) == 0 {
					excl = append(excl, p.info.ID)
				}
			}
			fuel := uint64(rng.Intn(3)) * 500_000 // includes zero
			task := core.Tasklet{Fuel: fuel}
			if policy == "deadline" {
				task.QoC.Deadline = deadlines[rng.Intn(len(deadlines))]
			}
			cands = m.candidates(rng, cands)
			req := Request{Tasklet: &task, ExcludeIDs: excl}
			wantID, wantOK := pol.Pick(req, cands)
			gotID, gotOK := ix.Pick(&task, excl)
			if wantID != gotID || wantOK != gotOK {
				t.Fatalf("step %d: legacy picked (%d,%v), index picked (%d,%v)",
					step, wantID, wantOK, gotID, gotOK)
			}
			if wantOK {
				p := m.byID(wantID)
				p.free--
				p.backlog++
				ix.Assign(wantID)
			}
		}
		if ix.Len() != len(m.provs) {
			t.Fatalf("step %d: index has %d providers, mirror %d", step, ix.Len(), len(m.provs))
		}
		free := 0
		for _, p := range m.provs {
			free += p.free
		}
		if ix.FreeSlots() != free {
			t.Fatalf("step %d: index free=%d, mirror free=%d", step, ix.FreeSlots(), free)
		}
	}
}

// TestIndexOutOfOrderUpsert covers the ring's splice path: random and
// round_robin indexes built from IDs arriving out of order must still agree
// with the legacy scan (the simulator and tests may upsert non-monotonic
// IDs; the broker's are always monotonic).
func TestIndexOutOfOrderUpsert(t *testing.T) {
	for _, name := range []string{"random", "round_robin"} {
		t.Run(name, func(t *testing.T) {
			pol, _ := New(name, 11)
			ix, err := NewIndexFor(pol)
			if err != nil {
				t.Fatal(err)
			}
			infos := map[core.ProviderID]*core.ProviderInfo{}
			for _, id := range []core.ProviderID{5, 3, 9, 1, 7, 2} {
				infos[id] = &core.ProviderInfo{ID: id, Speed: 100, Slots: 2, Reliability: 1}
				ix.Upsert(infos[id], 2, 0)
			}
			cands := make([]Candidate, 0, len(infos))
			for _, info := range infos {
				cands = append(cands, Candidate{Info: info, FreeSlots: 2, Backlog: 0})
			}
			task := core.Tasklet{Fuel: 1000}
			for i := 0; i < 40; i++ {
				wantID, wantOK := pol.Pick(Request{Tasklet: &task}, cands)
				gotID, gotOK := ix.Pick(&task, nil)
				if wantID != gotID || wantOK != gotOK {
					t.Fatalf("pick %d: legacy (%d,%v), index (%d,%v)", i, wantID, wantOK, gotID, gotOK)
				}
			}
		})
	}
}

// TestIndexPickAllocFree pins the 0 allocs/op claim for the full indexed
// pick cycle (Pick with exclusions, Assign, Complete) and, after warm-up,
// for the reworked legacy scan.
func TestIndexPickAllocFree(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, _ := New(name, 3)
			ix, err := NewIndexFor(pol)
			if err != nil {
				t.Fatal(err)
			}
			infos := make([]*core.ProviderInfo, 64)
			cands := make([]Candidate, 64)
			for i := range infos {
				infos[i] = &core.ProviderInfo{
					ID:          core.ProviderID(i + 1),
					Speed:       tieSpeeds[i%len(tieSpeeds)],
					Slots:       4,
					Reliability: 1,
				}
				ix.Upsert(infos[i], 4, 0)
				cands[i] = Candidate{Info: infos[i], FreeSlots: 4, Backlog: 0}
			}
			task := core.Tasklet{Fuel: 1_000_000, QoC: core.QoC{Deadline: time.Second}}
			excl := []core.ProviderID{2, 5}

			cycle := func() {
				id, ok := ix.Pick(&task, excl)
				if !ok {
					t.Fatal("no pick")
				}
				ix.Assign(id)
				ix.Complete(id)
			}
			cycle() // warm scratch buffers
			if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
				t.Fatalf("indexed pick cycle allocated %.1f per op, want 0", allocs)
			}

			req := Request{Tasklet: &task, ExcludeIDs: excl}
			pol.Pick(req, cands) // warm the policy's eligible scratch
			if allocs := testing.AllocsPerRun(200, func() { pol.Pick(req, cands) }); allocs != 0 {
				t.Fatalf("legacy pick allocated %.1f per op, want 0", allocs)
			}
		})
	}
}
