package scheduler

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// benchFleet builds P provider infos with varied speeds and backlogs so the
// policy orderings are non-degenerate.
func benchFleet(p int) ([]*core.ProviderInfo, []Candidate) {
	infos := make([]*core.ProviderInfo, p)
	cands := make([]Candidate, p)
	for i := range infos {
		infos[i] = &core.ProviderInfo{
			ID:          core.ProviderID(i + 1),
			Speed:       float64(1 + (i*37)%100),
			Slots:       4,
			Reliability: 1 - float64(i%10)/20,
		}
		cands[i] = Candidate{Info: infos[i], FreeSlots: 4, Backlog: i % 4}
	}
	return infos, cands
}

// BenchmarkSchedulerPick measures one placement decision at fleet size P:
// the incremental index (Pick + Assign + Complete, the full broker cycle)
// against the legacy filter-and-sort scan. The acceptance bar for this PR
// is >=5x at P=10000 with 0 allocs/op on the indexed path.
func BenchmarkSchedulerPick(b *testing.B) {
	for _, policy := range []string{"fastest", "least_loaded", "work_steal", "random"} {
		for _, p := range []int{100, 1000, 10000} {
			b.Run(fmt.Sprintf("%s/P=%d/indexed", policy, p), func(b *testing.B) {
				pol, err := New(policy, 1)
				if err != nil {
					b.Fatal(err)
				}
				ix, err := NewIndexFor(pol)
				if err != nil {
					b.Fatal(err)
				}
				infos, _ := benchFleet(p)
				for i, info := range infos {
					ix.Upsert(info, 4, i%4)
				}
				task := &core.Tasklet{Fuel: 1_000_000}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id, ok := ix.Pick(task, nil)
					if !ok {
						b.Fatal("no pick")
					}
					ix.Assign(id)
					ix.Complete(id)
				}
			})
			b.Run(fmt.Sprintf("%s/P=%d/legacy", policy, p), func(b *testing.B) {
				pol, err := New(policy, 1)
				if err != nil {
					b.Fatal(err)
				}
				_, cands := benchFleet(p)
				req := Request{Tasklet: &core.Tasklet{Fuel: 1_000_000}}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := pol.Pick(req, cands); !ok {
						b.Fatal("no pick")
					}
				}
			})
		}
	}
}
