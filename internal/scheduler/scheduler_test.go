package scheduler

import (
	"testing"
	"time"

	"repro/internal/core"
)

// fleet builds candidates with the given (id, speed, slots, free, backlog)
// tuples.
func fleet(rows ...[5]int) []Candidate {
	cands := make([]Candidate, 0, len(rows))
	for _, r := range rows {
		cands = append(cands, Candidate{
			Info: &core.ProviderInfo{
				ID:          core.ProviderID(r[0]),
				Speed:       float64(r[1]),
				Slots:       r[2],
				Reliability: 1,
			},
			FreeSlots: r[3],
			Backlog:   r[4],
		})
	}
	return cands
}

func req() Request { return Request{Tasklet: &core.Tasklet{Fuel: 1_000_000}} }

func TestEligibleFiltersBusyAndExcluded(t *testing.T) {
	cands := fleet(
		[5]int{1, 10, 2, 0, 2}, // busy
		[5]int{2, 10, 2, 1, 1},
		[5]int{3, 10, 2, 2, 0},
	)
	r := req()
	r.Exclude = map[core.ProviderID]bool{3: true}
	var s scratch
	el := s.eligible(r, cands)
	if len(el) != 1 || el[0].Info.ID != 2 {
		t.Fatalf("eligible = %v", el)
	}
}

func TestAllPoliciesRespectExclusionAndCapacity(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			cands := fleet(
				[5]int{1, 100, 4, 0, 4}, // full
				[5]int{2, 50, 4, 2, 2},
				[5]int{3, 10, 4, 4, 0},
			)
			r := req()
			r.Exclude = map[core.ProviderID]bool{2: true}
			for i := 0; i < 50; i++ {
				id, ok := p.Pick(r, cands)
				if !ok {
					t.Fatal("no pick despite capacity")
				}
				if id != 3 {
					t.Fatalf("picked %d; only provider 3 is eligible", id)
				}
			}
		})
	}
}

func TestAllPoliciesReportNoCandidate(t *testing.T) {
	for _, name := range Names() {
		p, _ := New(name, 1)
		if _, ok := p.Pick(req(), nil); ok {
			t.Errorf("%s picked from empty fleet", name)
		}
		busy := fleet([5]int{1, 10, 1, 0, 1})
		if _, ok := p.Pick(req(), busy); ok {
			t.Errorf("%s picked a busy provider", name)
		}
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	cands := fleet([5]int{1, 1, 1, 1, 0}, [5]int{2, 1, 1, 1, 0}, [5]int{3, 1, 1, 1, 0})
	seq := func(seed uint64) []core.ProviderID {
		p := NewRandom(seed)
		var ids []core.ProviderID
		for i := 0; i < 20; i++ {
			id, _ := p.Pick(req(), cands)
			ids = append(ids, id)
		}
		return ids
	}
	a, b := seq(5), seq(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different sequence")
		}
	}
	c := seq(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRandomCoversAllProviders(t *testing.T) {
	cands := fleet([5]int{1, 1, 1, 1, 0}, [5]int{2, 1, 1, 1, 0}, [5]int{3, 1, 1, 1, 0})
	p := NewRandom(3)
	seen := map[core.ProviderID]bool{}
	for i := 0; i < 200; i++ {
		id, _ := p.Pick(req(), cands)
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random never visited some providers: %v", seen)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	cands := fleet([5]int{1, 1, 1, 1, 0}, [5]int{2, 1, 1, 1, 0}, [5]int{3, 1, 1, 1, 0})
	p := NewRoundRobin()
	var got []core.ProviderID
	for i := 0; i < 6; i++ {
		id, _ := p.Pick(req(), cands)
		got = append(got, id)
	}
	want := []core.ProviderID{1, 2, 3, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle = %v, want %v", got, want)
		}
	}
}

func TestFastestFreePrefersSpeed(t *testing.T) {
	cands := fleet([5]int{1, 10, 1, 1, 0}, [5]int{2, 99, 1, 1, 0}, [5]int{3, 50, 1, 1, 0})
	p := NewFastestFree()
	if id, _ := p.Pick(req(), cands); id != 2 {
		t.Fatalf("picked %d, want fastest (2)", id)
	}
	// When the fastest is busy, fall to next fastest.
	cands[1].FreeSlots = 0
	if id, _ := p.Pick(req(), cands); id != 3 {
		t.Fatalf("picked %d, want 3", id)
	}
}

func TestFastestFreeTieBreaksByID(t *testing.T) {
	cands := fleet([5]int{7, 50, 1, 1, 0}, [5]int{2, 50, 1, 1, 0})
	p := NewFastestFree()
	if id, _ := p.Pick(req(), cands); id != 2 {
		t.Fatalf("tie broke to %d, want lower ID 2", id)
	}
}

func TestLeastLoadedBalancesByRatio(t *testing.T) {
	cands := fleet(
		[5]int{1, 10, 4, 1, 3}, // ratio 0.75
		[5]int{2, 10, 2, 1, 1}, // ratio 0.5
		[5]int{3, 10, 1, 1, 1}, // ratio 1.0
	)
	p := NewLeastLoaded()
	if id, _ := p.Pick(req(), cands); id != 2 {
		t.Fatalf("picked %d, want 2 (lowest load ratio)", id)
	}
}

func TestWorkStealAccountsForBacklogAndSpeed(t *testing.T) {
	// Provider 1 is fast but deeply backlogged; provider 2 is slower but
	// idle and finishes the attempt sooner.
	cands := fleet(
		[5]int{1, 100, 1, 1, 20},
		[5]int{2, 20, 1, 1, 0},
	)
	p := NewWorkSteal()
	if id, _ := p.Pick(req(), cands); id != 2 {
		t.Fatalf("picked %d, want 2 (idle, earlier completion)", id)
	}
	// With both idle the faster provider wins.
	cands[0].Backlog = 0
	if id, _ := p.Pick(req(), cands); id != 1 {
		t.Fatalf("picked %d, want 1 (faster, both idle)", id)
	}
}

func TestReliablePenalizesFlakyProviders(t *testing.T) {
	cands := fleet([5]int{1, 100, 1, 1, 0}, [5]int{2, 60, 1, 1, 0})
	cands[0].Info.Reliability = 0.3 // fast but flaky
	cands[1].Info.Reliability = 1.0
	p := NewReliable()
	if id, _ := p.Pick(req(), cands); id != 2 {
		t.Fatalf("picked %d, want reliable provider 2", id)
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New("nope", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyNamesRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
}

func TestDeadlinePolicyQualifiesBySpeed(t *testing.T) {
	// Tasklet: 1e9 ops with a 5s budget. The 100 Mops/s provider finishes
	// in 10s (too slow); the 500 Mops/s provider in 2s (qualifies).
	cands := fleet(
		[5]int{1, 100, 1, 1, 0},
		[5]int{2, 500, 1, 1, 0},
	)
	p := NewDeadline()
	r := Request{Tasklet: &core.Tasklet{
		Fuel: 1_000_000_000,
		QoC:  core.QoC{Deadline: 5 * time.Second},
	}}
	if id, _ := p.Pick(r, cands); id != 2 {
		t.Fatalf("picked %d, want the only deadline-meeting provider (2)", id)
	}
}

func TestDeadlinePolicyPrefersLeastLoadedAmongQualified(t *testing.T) {
	cands := fleet(
		[5]int{1, 500, 2, 1, 1}, // qualified, loaded
		[5]int{2, 500, 2, 2, 0}, // qualified, idle
	)
	p := NewDeadline()
	r := Request{Tasklet: &core.Tasklet{
		Fuel: 1_000_000_000,
		QoC:  core.QoC{Deadline: 5 * time.Second},
	}}
	if id, _ := p.Pick(r, cands); id != 2 {
		t.Fatalf("picked %d, want idle qualified provider 2", id)
	}
}

func TestDeadlinePolicyFallsBackToFastest(t *testing.T) {
	// Nobody meets a 1ms deadline on 1e9 ops; best effort = fastest.
	cands := fleet(
		[5]int{1, 100, 1, 1, 0},
		[5]int{2, 500, 1, 1, 0},
	)
	p := NewDeadline()
	r := Request{Tasklet: &core.Tasklet{
		Fuel: 1_000_000_000,
		QoC:  core.QoC{Deadline: time.Millisecond},
	}}
	if id, _ := p.Pick(r, cands); id != 2 {
		t.Fatalf("picked %d, want fastest provider 2", id)
	}
}

func TestDeadlinePolicyWithoutDeadlineActsLikeWorkSteal(t *testing.T) {
	cands := fleet(
		[5]int{1, 100, 1, 1, 20},
		[5]int{2, 20, 1, 1, 0},
	)
	d := NewDeadline()
	ws := NewWorkSteal()
	r := req()
	got, _ := d.Pick(r, cands)
	want, _ := ws.Pick(r, cands)
	if got != want {
		t.Fatalf("deadline policy diverged from work_steal without a deadline: %d vs %d", got, want)
	}
}
