package memo

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tvm"
)

func testKey(t *testing.T, program, seed uint64, params ...tvm.Value) Key {
	t.Helper()
	k, ok := KeyFor(program, seed, params)
	if !ok {
		t.Fatalf("KeyFor(%d, %d, %v) not encodable", program, seed, params)
	}
	return k
}

func TestKeyForDistinguishesContent(t *testing.T) {
	base := testKey(t, 1, 2, tvm.Int(3))
	cases := map[string]Key{
		"program": testKey(t, 9, 2, tvm.Int(3)),
		"seed":    testKey(t, 1, 9, tvm.Int(3)),
		"params":  testKey(t, 1, 2, tvm.Int(9)),
		"arity":   testKey(t, 1, 2, tvm.Int(3), tvm.Int(3)),
		"kind":    testKey(t, 1, 2, tvm.Str("3")),
	}
	for name, k := range cases {
		if k == base {
			t.Errorf("%s variation produced the same key", name)
		}
	}
	if again := testKey(t, 1, 2, tvm.Int(3)); again != base {
		t.Error("identical inputs produced different keys")
	}
	if base.Hash() == 0 {
		t.Error("key hash is zero")
	}
}

func TestCacheHitReturnsDeepCopies(t *testing.T) {
	c := New(Config{})
	k := testKey(t, 1, 0, tvm.Int(1))
	c.Put(k, tvm.Arr(tvm.Int(7)), []tvm.Value{tvm.Str("e")}, 123, time.Millisecond, 0)

	e := c.Get(k, 0, 1000)
	if e == nil {
		t.Fatal("expected hit")
	}
	if e.FuelUsed != 123 || e.Exec != time.Millisecond {
		t.Fatalf("entry accounting wrong: %+v", e)
	}
	ret, em := e.CachedResult()
	ret.A.Elems[0] = tvm.Int(99) // mutate the copy
	if len(em) != 1 || em[0].S != "e" {
		t.Fatalf("emitted wrong: %v", em)
	}
	ret2, _ := e.CachedResult()
	if ret2.A.Elems[0].I != 7 {
		t.Fatal("CachedResult shares storage between calls")
	}
}

func TestCacheEntryBudget(t *testing.T) {
	c := New(Config{MaxEntries: 3})
	for i := uint64(0); i < 5; i++ {
		c.Put(testKey(t, i, 0), tvm.Int(int64(i)), nil, 1, 0, 0)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (entry budget)", c.Len())
	}
	// Oldest two evicted, newest three present.
	if e := c.Get(testKey(t, 0, 0), 0, 10); e != nil {
		t.Error("entry 0 should have been evicted")
	}
	if e := c.Get(testKey(t, 4, 0), 0, 10); e == nil {
		t.Error("entry 4 should be present")
	}
}

func TestCacheByteBudget(t *testing.T) {
	big := tvm.Str(strings.Repeat("x", 1000))
	c := New(Config{MaxEntries: 1000, MaxBytes: 3500})
	for i := uint64(0); i < 5; i++ {
		c.Put(testKey(t, i, 0), big, nil, 1, 0, 0)
	}
	if c.Bytes() > 3500 {
		t.Fatalf("Bytes = %d exceeds budget 3500", c.Bytes())
	}
	if c.Len() >= 5 {
		t.Fatalf("Len = %d, byte budget should have evicted some", c.Len())
	}
	// An entry larger than the entire budget is refused outright.
	huge := tvm.Str(strings.Repeat("y", 10000))
	c.Put(testKey(t, 99, 0), huge, nil, 1, 0, 0)
	if c.Get(testKey(t, 99, 0), 0, 10) != nil {
		t.Error("oversized entry should not have been stored")
	}
	if c.Bytes() > 3500 {
		t.Fatalf("Bytes = %d exceeds budget after oversized Put", c.Bytes())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	k1, k2, k3 := testKey(t, 1, 0), testKey(t, 2, 0), testKey(t, 3, 0)
	c.Put(k1, tvm.Int(1), nil, 1, 0, 0)
	c.Put(k2, tvm.Int(2), nil, 1, 0, 0)
	if c.Get(k1, 0, 10) == nil { // refresh k1; k2 becomes LRU
		t.Fatal("expected hit on k1")
	}
	c.Put(k3, tvm.Int(3), nil, 1, 0, 0)
	if c.Get(k2, 0, 10) != nil {
		t.Error("k2 should have been evicted (least recently used)")
	}
	if c.Get(k1, 0, 10) == nil {
		t.Error("k1 should have survived (recently used)")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{TTL: time.Minute, Clock: func() time.Time { return now }})
	k := testKey(t, 1, 0)
	c.Put(k, tvm.Int(1), nil, 1, 0, 0)
	now = now.Add(59 * time.Second)
	if c.Get(k, 0, 10) == nil {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(2 * time.Minute)
	if c.Get(k, 0, 10) != nil {
		t.Fatal("entry survived past TTL")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still counted: Len = %d", c.Len())
	}
}

func TestCacheStrengthGate(t *testing.T) {
	c := New(Config{})
	k := testKey(t, 1, 0)
	c.Put(k, tvm.Int(1), nil, 1, 0, 0) // best-effort final: strength 0
	if c.Get(k, 3, 10) != nil {
		t.Fatal("voting request (strength 3) must not hit a strength-0 entry")
	}
	c.Put(k, tvm.Int(1), nil, 1, 0, 3) // voting final upgrades the entry
	if c.Get(k, 3, 10) == nil {
		t.Fatal("voting request should hit a strength-3 entry")
	}
	if c.Get(k, 0, 10) == nil {
		t.Fatal("best-effort request should hit a strength-3 entry")
	}
	// A later weak final must not downgrade the stored strength.
	c.Put(k, tvm.Int(1), nil, 1, 0, 0)
	if c.Get(k, 3, 10) == nil {
		t.Fatal("weak Put downgraded a voting entry")
	}
}

func TestCacheFuelGate(t *testing.T) {
	c := New(Config{})
	k := testKey(t, 1, 0)
	c.Put(k, tvm.Int(1), nil, 500, 0, 0)
	if c.Get(k, 0, 499) != nil {
		t.Fatal("request with fuel below the entry's FuelUsed must miss")
	}
	if c.Get(k, 0, 500) == nil {
		t.Fatal("request with exactly enough fuel should hit")
	}
}

func TestCacheMetrics(t *testing.T) {
	reg := &metrics.Registry{}
	c := New(Config{MaxEntries: 1, Metrics: reg, Prefix: "memo."})
	k1, k2 := testKey(t, 1, 0), testKey(t, 2, 0)
	c.Get(k1, 0, 10)                    // miss
	c.Put(k1, tvm.Int(1), nil, 1, 0, 0) // store
	c.Get(k1, 0, 10)                    // hit
	c.Put(k2, tvm.Int(2), nil, 1, 0, 0) // store, evicts k1

	if got := reg.Counter("memo.hits").Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := reg.Counter("memo.misses").Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := reg.Counter("memo.stores").Value(); got != 2 {
		t.Errorf("stores = %d, want 2", got)
	}
	if got := reg.Counter("memo.evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := reg.Gauge("memo.entries").Value(); got != 1 {
		t.Errorf("entries gauge = %d, want 1", got)
	}
	if got := reg.Gauge("memo.bytes").Value(); got <= 0 {
		t.Errorf("bytes gauge = %d, want > 0", got)
	}
	if !strings.Contains(reg.Dump(), "counter memo.hits 1") {
		t.Error("metrics dump missing memo.hits")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	k := Key("k")
	c.Put(k, tvm.Int(1), nil, 1, 0, 0)
	if c.Get(k, 0, 10) != nil {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache reports non-empty")
	}
}

func TestFlightTableLifecycle(t *testing.T) {
	reg := &metrics.Registry{}
	ft := NewFlightTable(reg, "memo.")
	k := FlightKey{Content: "c", Mode: 0, Replicas: 1, Fuel: 100}

	if !ft.Join(k, 1) {
		t.Fatal("first joiner must be leader")
	}
	if ft.Join(k, 2) || ft.Join(k, 3) {
		t.Fatal("later joiners must be waiters")
	}
	if got := reg.Counter("memo.coalesced").Value(); got != 2 {
		t.Fatalf("coalesced = %d, want 2", got)
	}
	if f := ft.Lookup(k); f == nil || f.Leader != 1 || len(f.Waiters) != 2 {
		t.Fatalf("flight state wrong: %+v", ft.Lookup(k))
	}

	waiters := ft.Complete(k)
	if len(waiters) != 2 || waiters[0] != 2 || waiters[1] != 3 {
		t.Fatalf("Complete returned %v, want [2 3]", waiters)
	}
	if ft.Len() != 0 {
		t.Fatal("flight not removed after Complete")
	}
	if ft.Complete(k) != nil {
		t.Fatal("double Complete returned waiters")
	}
}

func TestFlightKeySeparatesQoC(t *testing.T) {
	ft := NewFlightTable(nil, "")
	a := FlightKey{Content: "c", Mode: 0, Replicas: 1, Fuel: 100}
	b := FlightKey{Content: "c", Mode: 2, Replicas: 3, Fuel: 100}
	if !ft.Join(a, 1) || !ft.Join(b, 2) {
		t.Fatal("different QoC must not coalesce")
	}
}

func TestFlightDropWaiter(t *testing.T) {
	ft := NewFlightTable(nil, "")
	k := FlightKey{Content: "c"}
	ft.Join(k, 1)
	ft.Join(k, 2)
	ft.Join(k, 3)
	ft.DropWaiter(k, 2)
	if w := ft.Complete(k); len(w) != 1 || w[0] != 3 {
		t.Fatalf("waiters after drop = %v, want [3]", w)
	}
}

func TestFlightDropLeaderPromotes(t *testing.T) {
	ft := NewFlightTable(nil, "")
	k := FlightKey{Content: "c"}
	ft.Join(k, 1)
	ft.Join(k, 2)
	ft.Join(k, 3)

	nl, ok := ft.DropLeader(k)
	if !ok || nl != 2 {
		t.Fatalf("DropLeader = (%d, %v), want (2, true)", nl, ok)
	}
	if f := ft.Lookup(k); f == nil || f.Leader != 2 || len(f.Waiters) != 1 {
		t.Fatalf("flight after promotion: %+v", ft.Lookup(k))
	}
	ft.DropLeader(k) // promotes 3
	if nl, ok := ft.DropLeader(k); ok {
		t.Fatalf("DropLeader with no waiters returned (%d, true)", nl)
	}
	if ft.Len() != 0 {
		t.Fatal("empty flight not removed")
	}
}

func TestNilFlightTable(t *testing.T) {
	var ft *FlightTable
	if !ft.Join(FlightKey{}, 1) {
		t.Fatal("nil table must elect every joiner leader")
	}
	if ft.Complete(FlightKey{}) != nil || ft.Len() != 0 {
		t.Fatal("nil table misbehaves")
	}
	if _, ok := ft.DropLeader(FlightKey{}); ok {
		t.Fatal("nil table DropLeader returned ok")
	}
	ft.DropWaiter(FlightKey{}, 1)
	if ft.Lookup(FlightKey{}) != nil {
		t.Fatal("nil table Lookup returned a flight")
	}
}
