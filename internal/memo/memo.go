// Package memo implements a content-addressed result cache for tasklets and
// the flight table used to coalesce identical in-flight work.
//
// Tasklets are side-effect-free by construction (DESIGN.md §1): a program's
// result is a pure function of its bytecode, its parameters, and the rand()
// seed. That purity makes memoization sound — two tasklets with the same
// content key *must* produce bit-identical results — so both the broker and
// the provider can serve repeats from a cache without changing observable
// behaviour.
//
// Two safety rules keep the cache from weakening the QoC engine:
//
//   - Only QoC-finalized successful results enter the cache. Raw attempt
//     outcomes never do, so a faulty provider's corrupted answer cannot be
//     laundered through the cache: under voting QoC it is outvoted before
//     anything is stored.
//   - Entries remember the voting strength they were finalized under
//     (Entry.Strength). A request only hits if the cached entry was
//     established with at least the strength the request demands, so a
//     best-effort result can never satisfy a voting request.
//
// The cache is a bounded LRU with two budgets — entry count and total bytes —
// plus TTL expiry, and reports hits/misses/stores/evictions on a
// metrics.Registry. All methods are nil-safe: a nil *Cache behaves as a
// disabled cache (every lookup misses, every store is dropped), which is how
// the negative-budget "disabled" configuration is represented.
package memo

import (
	"container/list"
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/tvm"
)

// Key is the content address of a tasklet: program hash, rand seed, and the
// canonical binary encoding of the parameters. Keys compare with == and are
// collision-free (the full encoded parameter bytes are part of the key, not
// just a hash of them).
type Key string

// KeyFor builds the content key for one tasklet invocation. The seed is part
// of the key because rand() makes results seed-dependent; two submissions
// that differ only in seed may legitimately produce different results.
//
// The bool result is false when a parameter value cannot be canonically
// encoded (which cannot happen for values that came off the wire); such
// tasklets are simply not cacheable.
func KeyFor(program uint64, seed uint64, params []tvm.Value) (Key, bool) {
	b := make([]byte, 16, 16+16*len(params))
	binary.BigEndian.PutUint64(b[0:8], program)
	binary.BigEndian.PutUint64(b[8:16], seed)
	var err error
	for _, p := range params {
		b, err = tvm.AppendValue(b, p)
		if err != nil {
			return "", false
		}
	}
	return Key(b), true
}

// Hash returns a 64-bit FNV-1a digest of the key, for logging and debugging.
// The cache itself indexes by the full key, never by this hash.
func (k Key) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint64(k[i])) * prime
	}
	return h
}

// Entry is one cached finalized result. The stored values are private deep
// copies; callers must Clone them again before handing them to anything that
// may mutate them (see CachedResult).
type Entry struct {
	Return  tvm.Value
	Emitted []tvm.Value

	// FuelUsed is the fuel the original execution consumed. Cache hits
	// report it unchanged so fuel accounting is identical with and without
	// the cache.
	FuelUsed uint64

	// Exec is the original provider-measured execution time, kept for
	// observability (hit latency is near zero; this preserves what the
	// computation originally cost).
	Exec time.Duration

	// Strength records the voting strength the result was finalized under:
	// 0 for best-effort and redundant finals, the replica count for voting
	// finals. A lookup demanding strength s only hits entries with
	// Strength >= s.
	Strength int

	stored time.Time
	size   int
}

// CachedResult returns deep copies of the entry's return value and emitted
// stream, safe to hand to consumers or VMs that may mutate arrays in place.
func (e *Entry) CachedResult() (tvm.Value, []tvm.Value) {
	ret := e.Return.Clone()
	var em []tvm.Value
	if len(e.Emitted) > 0 {
		em = make([]tvm.Value, len(e.Emitted))
		for i, v := range e.Emitted {
			em[i] = v.Clone()
		}
	}
	return ret, em
}

// valueSize estimates the in-memory footprint of a value in bytes, for the
// byte budget. It intentionally overcounts a little (headers, slice caps)
// rather than undercounting.
func valueSize(v tvm.Value) int {
	const header = 24
	switch v.Kind {
	case tvm.KindStr:
		return header + len(v.S)
	case tvm.KindArr:
		n := header
		if v.A != nil {
			for _, e := range v.A.Elems {
				n += valueSize(e)
			}
		}
		return n
	default:
		return header
	}
}

// entrySize estimates the total footprint of a cache entry: key bytes plus
// stored values plus fixed bookkeeping.
func entrySize(k Key, e *Entry) int {
	n := len(k) + 96 // key bytes + entry struct + list/map overhead
	n += valueSize(e.Return)
	for _, v := range e.Emitted {
		n += valueSize(v)
	}
	return n
}

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 16 << 20 // 16 MiB
	DefaultTTL        = 10 * time.Minute
)

// Config parameterizes a Cache. The zero value of each field selects the
// package default; New itself returns nil (a disabled cache) only when the
// caller decides so — by convention a negative MaxEntries/MaxBytes/TTL in the
// broker/provider/sim options means "disabled" and those layers pass nil.
type Config struct {
	MaxEntries int           // > 0 entry budget; 0 = DefaultMaxEntries
	MaxBytes   int           // > 0 byte budget; 0 = DefaultMaxBytes
	TTL        time.Duration // > 0 expiry; 0 = DefaultTTL

	// Clock supplies the current time; nil means time.Now. The simulator
	// injects its virtual clock so TTL expiry happens in simulated time.
	Clock func() time.Time

	// Metrics receives hit/miss/store/eviction counters and entry/byte
	// gauges. Nil disables reporting.
	Metrics *metrics.Registry

	// Prefix namespaces the metric names (e.g. "memo." or "provider.memo.").
	// Empty means "memo.".
	Prefix string
}

// Cache is a bounded, TTL-expiring, content-addressed LRU of finalized
// tasklet results. All methods are safe to call on a nil receiver (they
// behave as a cache that never hits and never stores). The cache carries its
// own mutex so it can be shared by concurrent callers — the partitioned
// broker runs one cache under all partition engines so repeats hit across
// partitions. Returned entries are immutable after storage; callers clone
// via CachedResult before mutating anything.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int
	ttl        time.Duration
	clock      func() time.Time

	entries map[Key]*list.Element
	order   *list.List // front = most recently used
	bytes   int

	hits, misses, stores, evictions *metrics.Counter
	entriesG, bytesG                *metrics.Gauge
}

type cacheItem struct {
	key   Key
	entry *Entry
}

// New builds a Cache from cfg, applying defaults for zero fields.
func New(cfg Config) *Cache {
	c := &Cache{
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		ttl:        cfg.TTL,
		clock:      cfg.Clock,
		entries:    make(map[Key]*list.Element),
		order:      list.New(),
	}
	if c.maxEntries <= 0 {
		c.maxEntries = DefaultMaxEntries
	}
	if c.maxBytes <= 0 {
		c.maxBytes = DefaultMaxBytes
	}
	if c.ttl <= 0 {
		c.ttl = DefaultTTL
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	if cfg.Metrics != nil {
		p := cfg.Prefix
		if p == "" {
			p = "memo."
		}
		c.hits = cfg.Metrics.Counter(p + "hits")
		c.misses = cfg.Metrics.Counter(p + "misses")
		c.stores = cfg.Metrics.Counter(p + "stores")
		c.evictions = cfg.Metrics.Counter(p + "evictions")
		c.entriesG = cfg.Metrics.Gauge(p + "entries")
		c.bytesG = cfg.Metrics.Gauge(p + "bytes")
	}
	return c
}

func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (c *Cache) updateGauges() {
	if c.entriesG != nil {
		c.entriesG.Set(int64(c.order.Len()))
	}
	if c.bytesG != nil {
		c.bytesG.Set(int64(c.bytes))
	}
}

// Get looks up the entry for key, subject to three gates: the entry must not
// have expired, its Strength must be at least strength, and its FuelUsed must
// fit within the requester's fuel budget. A gated entry counts as a miss (the
// requester genuinely has to execute). Hits refresh LRU position.
func (c *Cache) Get(key Key, strength int, fuel uint64) *Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		inc(c.misses)
		return nil
	}
	it := el.Value.(*cacheItem)
	if c.clock().Sub(it.entry.stored) > c.ttl {
		c.removeElement(el)
		inc(c.evictions)
		inc(c.misses)
		c.updateGauges()
		return nil
	}
	if it.entry.Strength < strength || it.entry.FuelUsed > fuel {
		inc(c.misses)
		return nil
	}
	c.order.MoveToFront(el)
	inc(c.hits)
	return it.entry
}

// Put stores a finalized result under key, deep-copying the values so the
// cache owns private storage. An existing entry is replaced only if the new
// entry's Strength is at least as high (a voting-finalized entry is never
// downgraded by a later best-effort final). Entries larger than the whole
// byte budget are dropped.
func (c *Cache) Put(key Key, ret tvm.Value, emitted []tvm.Value, fuelUsed uint64, exec time.Duration, strength int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		if el.Value.(*cacheItem).entry.Strength > strength {
			return
		}
		c.removeElement(el)
	}
	e := &Entry{
		Return:   ret.Clone(),
		FuelUsed: fuelUsed,
		Exec:     exec,
		Strength: strength,
		stored:   c.clock(),
	}
	if len(emitted) > 0 {
		e.Emitted = make([]tvm.Value, len(emitted))
		for i, v := range emitted {
			e.Emitted[i] = v.Clone()
		}
	}
	e.size = entrySize(key, e)
	if e.size > c.maxBytes {
		c.updateGauges()
		return
	}
	el := c.order.PushFront(&cacheItem{key: key, entry: e})
	c.entries[key] = el
	c.bytes += e.size
	inc(c.stores)
	for c.order.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldest()
	}
	c.updateGauges()
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the estimated total footprint of live entries.
func (c *Cache) Bytes() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *Cache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.removeElement(el)
	inc(c.evictions)
}

func (c *Cache) removeElement(el *list.Element) {
	it := el.Value.(*cacheItem)
	c.order.Remove(el)
	delete(c.entries, it.key)
	c.bytes -= it.entry.size
}
