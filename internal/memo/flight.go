package memo

import "repro/internal/metrics"

// FlightKey identifies a coalescible unit of in-flight work. Two tasklets
// coalesce only when their content (program, seed, params — all inside
// Content), their fuel budget, and their normalized QoC completion rule
// (mode + replica count) all match: coalescing must not change how many
// attempts the QoC engine runs or what "done" means for any waiter.
type FlightKey struct {
	Content  Key
	Mode     uint8
	Replicas int
	Fuel     uint64
}

// Flight is one in-flight coalition: the leader's tasklet drives the real
// attempt fan-out through the QoC engine, the waiters receive copies of the
// leader's finalized result.
type Flight struct {
	Leader  uint64
	Waiters []uint64
}

// FlightTable tracks in-flight coalitions (cluster-wide singleflight). Like
// Cache it is nil-safe: on a nil table every Join elects the caller leader,
// so code can treat "coalescing disabled" uniformly. Callers serialize
// access under their own lock.
type FlightTable struct {
	flights   map[FlightKey]*Flight
	coalesced *metrics.Counter
}

// NewFlightTable builds an empty table. reg may be nil; prefix defaults to
// "memo." and names the coalesce counter "<prefix>coalesced".
func NewFlightTable(reg *metrics.Registry, prefix string) *FlightTable {
	t := &FlightTable{flights: make(map[FlightKey]*Flight)}
	if reg != nil {
		if prefix == "" {
			prefix = "memo."
		}
		t.coalesced = reg.Counter(prefix + "coalesced")
	}
	return t
}

// Join adds id to the flight for k, creating the flight (with id as leader)
// if none exists. It reports whether id became the leader; a false return
// means id was coalesced as a waiter and must not schedule attempts.
func (t *FlightTable) Join(k FlightKey, id uint64) (leader bool) {
	if t == nil {
		return true
	}
	f, ok := t.flights[k]
	if !ok {
		t.flights[k] = &Flight{Leader: id}
		return true
	}
	f.Waiters = append(f.Waiters, id)
	inc(t.coalesced)
	return false
}

// Lookup returns the flight for k, or nil.
func (t *FlightTable) Lookup(k FlightKey) *Flight {
	if t == nil {
		return nil
	}
	return t.flights[k]
}

// Complete removes the flight for k and returns its waiters (nil if the
// flight did not exist or had none). The leader calls this when its result
// finalizes — successfully or not — and then fans out or dissolves.
func (t *FlightTable) Complete(k FlightKey) []uint64 {
	if t == nil {
		return nil
	}
	f, ok := t.flights[k]
	if !ok {
		return nil
	}
	delete(t.flights, k)
	return f.Waiters
}

// DropWaiter removes id from k's waiter list (a waiter's consumer
// disconnected or its deadline fired). No-op if id is not a waiter.
func (t *FlightTable) DropWaiter(k FlightKey, id uint64) {
	if t == nil {
		return
	}
	f, ok := t.flights[k]
	if !ok {
		return
	}
	for i, w := range f.Waiters {
		if w == id {
			f.Waiters = append(f.Waiters[:i], f.Waiters[i+1:]...)
			return
		}
	}
}

// DropLeader handles the leader's tasklet dying without a final result (its
// consumer disconnected, its deadline fired). The first waiter, if any, is
// promoted to leader and returned with ok=true — the caller must start real
// scheduling for it. With no waiters the flight is removed and ok is false.
func (t *FlightTable) DropLeader(k FlightKey) (newLeader uint64, ok bool) {
	if t == nil {
		return 0, false
	}
	f, exists := t.flights[k]
	if !exists {
		return 0, false
	}
	if len(f.Waiters) == 0 {
		delete(t.flights, k)
		return 0, false
	}
	newLeader = f.Waiters[0]
	f.Waiters = f.Waiters[1:]
	f.Leader = newLeader
	return newLeader, true
}

// Len returns the number of live flights.
func (t *FlightTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.flights)
}
