package stdtasks

import (
	"strings"
	"testing"

	"repro/internal/tvm"
)

// runTask executes a standard tasklet locally.
func runTask(t *testing.T, name string, params ...tvm.Value) *tvm.Result {
	t.Helper()
	prog, err := Program(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tvm.DefaultConfig()
	cfg.Seed = 7
	res, err := tvm.New(prog, cfg).Run(params...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestAllSourcesCompile(t *testing.T) {
	for _, name := range Names() {
		if _, err := Program(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestProgramCaches(t *testing.T) {
	a, _ := Program("noop")
	b, _ := Program("noop")
	if a != b {
		t.Fatal("Program should return the cached instance")
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := Program("nonexistent"); err == nil {
		t.Fatal("unknown tasklet accepted")
	}
	if _, err := Bytecode("nonexistent"); err == nil {
		t.Fatal("unknown bytecode accepted")
	}
}

func TestMandelbrotMatchesReference(t *testing.T) {
	const y, w, h, mi = 37, 64, 96, 50
	res := runTask(t, "mandelbrot", tvm.Int(y), tvm.Int(w), tvm.Int(h), tvm.Int(mi))
	refPixels, refTotal := RefMandelbrot(y, w, h, mi)
	if res.Return.I != int64(refTotal) {
		t.Fatalf("total = %d, want %d", res.Return.I, refTotal)
	}
	if len(res.Emitted) != w {
		t.Fatalf("emitted %d pixels, want %d", len(res.Emitted), w)
	}
	for x, v := range res.Emitted {
		if v.I != int64(refPixels[x]) {
			t.Fatalf("pixel %d = %d, want %d", x, v.I, refPixels[x])
		}
	}
}

func TestPrimesMatchesReference(t *testing.T) {
	tests := [][2]int{{0, 100}, {100, 1000}, {1000, 1100}}
	for _, tc := range tests {
		res := runTask(t, "primes", tvm.Int(int64(tc[0])), tvm.Int(int64(tc[1])))
		want := RefPrimes(tc[0], tc[1])
		if res.Return.I != int64(want) {
			t.Errorf("primes[%d,%d) = %d, want %d", tc[0], tc[1], res.Return.I, want)
		}
	}
	// Known value: 25 primes below 100.
	res := runTask(t, "primes", tvm.Int(0), tvm.Int(100))
	if res.Return.I != 25 {
		t.Fatalf("primes below 100 = %d, want 25", res.Return.I)
	}
}

func TestMonteCarloConverges(t *testing.T) {
	res := runTask(t, "montecarlo", tvm.Int(20000))
	pi := res.Return.F
	if pi < 3.0 || pi > 3.3 {
		t.Fatalf("pi estimate = %v", pi)
	}
}

func TestMonteCarloSeedSensitivity(t *testing.T) {
	prog := MustProgram("montecarlo")
	run := func(seed uint64) float64 {
		cfg := tvm.DefaultConfig()
		cfg.Seed = seed
		res, err := tvm.New(prog, cfg).Run(tvm.Int(5000))
		if err != nil {
			t.Fatal(err)
		}
		return res.Return.F
	}
	if run(1) != run(1) {
		t.Fatal("same seed differs")
	}
	if run(1) == run(2) {
		t.Fatal("different seeds agree exactly; rand() is broken")
	}
}

func TestMatmulMatchesReference(t *testing.T) {
	for _, tc := range []struct{ row, n int }{{0, 8}, {3, 16}, {7, 32}} {
		res := runTask(t, "matmul", tvm.Int(int64(tc.row)), tvm.Int(int64(tc.n)))
		want := RefMatmulRow(tc.row, tc.n)
		if res.Return.I != want {
			t.Errorf("matmul(%d, %d) = %d, want %d", tc.row, tc.n, res.Return.I, want)
		}
	}
}

func TestWordCountMatchesReference(t *testing.T) {
	text := "The quick brown fox jumps over the lazy dog. THE END the"
	res := runTask(t, "wordcount", tvm.Str(text), tvm.Str("the"))
	want := RefWordCount(text, "the")
	if res.Return.I != int64(want) {
		t.Fatalf("wordcount = %d, want %d", res.Return.I, want)
	}
	if want < 3 {
		t.Fatalf("reference broken: %d", want)
	}
}

func TestGrepMatchesReference(t *testing.T) {
	text := strings.Join([]string{
		"error: disk full",
		"info: all good",
		"warn: error rate high",
		"info: error-free",
	}, "\n")
	res := runTask(t, "grep", tvm.Str(text), tvm.Str("error"))
	want := RefGrep(text, "error")
	if res.Return.I != int64(len(want)) {
		t.Fatalf("grep count = %d, want %d", res.Return.I, len(want))
	}
	for i, idx := range want {
		if res.Emitted[i].I != int64(idx) {
			t.Fatalf("grep hit %d = %d, want %d", i, res.Emitted[i].I, idx)
		}
	}
}

func TestSpinMatchesReference(t *testing.T) {
	res := runTask(t, "spin", tvm.Int(10000))
	if res.Return.I != RefSpin(10000) {
		t.Fatalf("spin = %d, want %d", res.Return.I, RefSpin(10000))
	}
}

func TestSpinFuelEstimate(t *testing.T) {
	// SpinFuel's constant must track the actual per-iteration cost within
	// 5%; experiments rely on it to build calibrated workloads.
	prog := MustProgram("spin")
	for _, iters := range []int64{1000, 100000} {
		res, err := tvm.New(prog, tvm.DefaultConfig()).Run(tvm.Int(iters))
		if err != nil {
			t.Fatal(err)
		}
		est := float64(SpinFuel(iters))
		got := float64(res.FuelUsed)
		if ratio := est / got; ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("SpinFuel(%d) = %v but measured %v (ratio %.3f)", iters, est, got, ratio)
		}
	}
}

func TestNoopIsCheap(t *testing.T) {
	res := runTask(t, "noop")
	if res.FuelUsed > 8 {
		t.Fatalf("noop fuel = %d, want tiny", res.FuelUsed)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if len(names) != len(Sources) {
		t.Fatalf("Names() returned %d of %d", len(names), len(Sources))
	}
}

func TestBytecodeRoundTrips(t *testing.T) {
	data, err := Bytecode("primes")
	if err != nil {
		t.Fatal(err)
	}
	var p tvm.Program
	if err := p.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	res, err := tvm.New(&p, tvm.DefaultConfig()).Run(tvm.Int(0), tvm.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.I != int64(RefPrimes(0, 50)) {
		t.Fatal("decoded bytecode computes wrong result")
	}
}

func TestSortCheckMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		n    int
		seed int64
	}{{10, 1}, {100, 42}, {500, 7}} {
		res := runTask(t, "sortcheck", tvm.Int(int64(tc.n)), tvm.Int(tc.seed))
		want := RefSortCheck(tc.n, tc.seed)
		if res.Return.I != want {
			t.Errorf("sortcheck(%d, %d) = %d, want %d", tc.n, tc.seed, res.Return.I, want)
		}
	}
}

func TestNQueensMatchesReference(t *testing.T) {
	// Known values: 4->2, 6->4, 8->92.
	known := map[int]int{4: 2, 6: 4, 8: 92}
	for n, want := range known {
		if got := RefNQueens(n); got != want {
			t.Fatalf("reference nqueens(%d) = %d, want %d", n, got, want)
		}
		res := runTask(t, "nqueens", tvm.Int(int64(n)))
		if res.Return.I != int64(want) {
			t.Errorf("nqueens(%d) = %d, want %d", n, res.Return.I, want)
		}
	}
}

// TestOptimizedMatchesReference runs every standard tasklet through the
// optimized (fused fast-path) interpreter and the reference interpreter
// (tvm.Config.NoOptimize) and asserts identical result hashes and fuel use —
// a differential guard for the load-time optimization pass over realistic
// programs (loops, recursion, arrays, strings, builtins).
func TestOptimizedMatchesReference(t *testing.T) {
	params := map[string][]tvm.Value{
		"grep":       {tvm.Str("info ok\nerror bad\ninfo fine\nerror worse\n"), tvm.Str("error")},
		"mandelbrot": {tvm.Int(10), tvm.Int(32), tvm.Int(32), tvm.Int(50)},
		"matmul":     {tvm.Int(1), tvm.Int(12)},
		"montecarlo": {tvm.Int(5000)},
		"noop":       {},
		"nqueens":    {tvm.Int(6)},
		"primes":     {tvm.Int(0), tvm.Int(500)},
		"sortcheck":  {tvm.Int(64), tvm.Int(3)},
		"spin":       {tvm.Int(5000)},
		"wordcount":  {tvm.Str("the cat and the dog and the bird"), tvm.Str("the")},
	}
	for _, name := range Names() {
		p, ok := params[name]
		if !ok {
			t.Errorf("%s: no differential params registered; add it to this test", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			prog := MustProgram(name)
			optCfg := tvm.DefaultConfig()
			optCfg.Seed = 7
			opt, optErr := tvm.New(prog, optCfg).Run(p...)
			refCfg := optCfg
			refCfg.NoOptimize = true
			ref, refErr := tvm.New(prog, refCfg).Run(p...)
			if optErr != nil || refErr != nil {
				t.Fatalf("unexpected fault: optimized %v, reference %v", optErr, refErr)
			}
			if opt.Hash() != ref.Hash() || opt.FuelUsed != ref.FuelUsed {
				t.Fatalf("divergence: hash %d/%d fuel %d/%d",
					opt.Hash(), ref.Hash(), opt.FuelUsed, ref.FuelUsed)
			}
		})
	}
}
