// Package stdtasks provides the standard TCL tasklet programs used by the
// examples, experiments and benchmarks: compute kernels of the kinds the
// Tasklet paper's motivating applications need (fractal rendering, number
// theory, Monte-Carlo simulation, linear algebra, text processing).
//
// Each program is exposed as compiled bytecode plus a native Go reference
// implementation, so tests can verify that distributed execution produces
// exactly the result local execution would.
package stdtasks

import (
	"fmt"
	"strings"

	"repro/internal/tasklang"
	"repro/internal/tvm"
)

// Sources of the standard tasklets, by name.
var Sources = map[string]string{
	// Mandelbrot counts iterations for a W pixels-wide row of the set at
	// row y of h total rows, escape radius 2, max iterations mi. Emits one
	// iteration count per pixel and returns the row's total.
	"mandelbrot": `
func main(y int, w int, h int, mi int) int {
	var total int = 0;
	for (var x int = 0; x < w; x = x + 1) {
		var cr float = (float(x) / float(w)) * 3.5 - 2.5;
		var ci float = (float(y) / float(h)) * 2.0 - 1.0;
		var zr float = 0.0;
		var zi float = 0.0;
		var it int = 0;
		while (it < mi && zr*zr + zi*zi <= 4.0) {
			var t float = zr*zr - zi*zi + cr;
			zi = 2.0*zr*zi + ci;
			zr = t;
			it = it + 1;
		}
		emit(it);
		total = total + it;
	}
	return total;
}`,

	// primes counts primes in [lo, hi) by trial division.
	"primes": `
func isPrime(n int) bool {
	if (n < 2) { return false; }
	if (n % 2 == 0) { return n == 2; }
	for (var d int = 3; d * d <= n; d = d + 2) {
		if (n % d == 0) { return false; }
	}
	return true;
}
func main(lo int, hi int) int {
	var count int = 0;
	for (var n int = lo; n < hi; n = n + 1) {
		if (isPrime(n)) { count = count + 1; }
	}
	return count;
}`,

	// montecarlo estimates pi from `samples` pseudo-random points. The
	// deterministic seeded rand() keeps replicas vote-compatible.
	"montecarlo": `
func main(samples int) float {
	var hits int = 0;
	for (var i int = 0; i < samples; i = i + 1) {
		var x float = rand();
		var y float = rand();
		if (x*x + y*y <= 1.0) { hits = hits + 1; }
	}
	return 4.0 * float(hits) / float(samples);
}`,

	// matmul multiplies one row of an n x n integer matrix (generated from
	// a deterministic formula) against the whole matrix, returning a
	// checksum of the result row. Exercises function calls and nested
	// loops.
	"matmul": `
func cell(i int, j int, n int) int {
	return (i * 31 + j * 17 + 7) % 100;
}
func main(row int, n int) int {
	var check int = 0;
	for (var j int = 0; j < n; j = j + 1) {
		var sum int = 0;
		for (var k int = 0; k < n; k = k + 1) {
			sum = sum + cell(row, k, n) * cell(k, j, n);
		}
		check = (check * 131 + sum) % 1000000007;
	}
	return check;
}`,

	// wordcount counts occurrences of a target word (case-insensitive) in
	// a text shard.
	"wordcount": `
func main(text str, word str) int {
	var words arr = split(lower(text), "");
	var target str = lower(word);
	var count int = 0;
	for (var i int = 0; i < len(words); i = i + 1) {
		if (words[i] == target) { count = count + 1; }
	}
	return count;
}`,

	// grep emits the (0-based) indexes of lines containing the pattern.
	"grep": `
func main(text str, pattern str) int {
	var lines arr = split(text, "\n");
	var hits int = 0;
	for (var i int = 0; i < len(lines); i = i + 1) {
		if (find(lines[i], pattern) >= 0) {
			emit(i);
			hits = hits + 1;
		}
	}
	return hits;
}`,

	// spin burns exactly its argument's worth of loop iterations; the
	// overhead experiments use it as a calibrated synthetic workload.
	"spin": `
func main(iters int) int {
	var acc int = 0;
	for (var i int = 0; i < iters; i = i + 1) {
		acc = acc + i % 7;
	}
	return acc;
}`,

	// noop is the empty tasklet used to measure pure middleware overhead.
	"noop": `
func main() int { return 0; }`,

	// sortcheck generates n pseudo-random keys deterministically, sorts
	// them with insertion sort, and returns an order-sensitive checksum —
	// a heavy mutable-array workload.
	"sortcheck": `
func main(n int, seed int) int {
	var xs arr = [];
	var x int = seed;
	for (var i int = 0; i < n; i += 1) {
		x = (x * 1103515245 + 12345) % 2147483648;
		if (x < 0) { x += 2147483648; }
		xs = push(xs, x % 100000);
	}
	// insertion sort
	for (var i int = 1; i < len(xs); i += 1) {
		var key int = xs[i];
		var j int = i - 1;
		while (j >= 0 && xs[j] > key) {
			xs[j + 1] = xs[j];
			j -= 1;
		}
		xs[j + 1] = key;
	}
	var check int = 0;
	for (var i int = 0; i < len(xs); i += 1) {
		check = (check * 131 + xs[i]) % 1000000007;
	}
	return check;
}`,

	// nqueens counts the solutions of the n-queens problem by recursive
	// backtracking — a deep-call-stack, branchy workload.
	"nqueens": `
func safe(cols arr, row int, col int) bool {
	for (var r int = 0; r < row; r += 1) {
		var c int = cols[r];
		if (c == col) { return false; }
		if (c - col == row - r) { return false; }
		if (col - c == row - r) { return false; }
	}
	return true;
}
func place(cols arr, row int, n int) int {
	if (row == n) { return 1; }
	var count int = 0;
	for (var col int = 0; col < n; col += 1) {
		if (safe(cols, row, col)) {
			cols[row] = col;
			count += place(cols, row + 1, n);
		}
	}
	return count;
}
func main(n int) int {
	var cols arr = [];
	for (var i int = 0; i < n; i += 1) { cols = push(cols, 0); }
	return place(cols, 0, n);
}`,
}

// compiledCache holds compiled programs; initialized lazily and immutable
// afterwards (Compile is cheap, but benches call Program in loops).
var compiledCache = map[string]*tvm.Program{}

// Program returns the compiled bytecode of a named standard tasklet.
func Program(name string) (*tvm.Program, error) {
	if p, ok := compiledCache[name]; ok {
		return p, nil
	}
	src, ok := Sources[name]
	if !ok {
		return nil, fmt.Errorf("stdtasks: unknown tasklet %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	p, err := tasklang.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("stdtasks: %s does not compile: %w", name, err)
	}
	compiledCache[name] = p
	return p, nil
}

// MustProgram is Program for static names; panics on error.
func MustProgram(name string) *tvm.Program {
	p, err := Program(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Bytecode returns the marshalled program.
func Bytecode(name string) ([]byte, error) {
	p, err := Program(name)
	if err != nil {
		return nil, err
	}
	return p.MarshalBinary()
}

// Names lists the standard tasklets in lexical order.
func Names() []string {
	names := make([]string, 0, len(Sources))
	for n := range Sources {
		names = append(names, n)
	}
	// Insertion-sort: tiny n, no extra import.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// ---------- native Go reference implementations ----------

// RefMandelbrot mirrors the mandelbrot tasklet for one row.
func RefMandelbrot(y, w, h, maxIter int) (perPixel []int, total int) {
	perPixel = make([]int, 0, w)
	for x := 0; x < w; x++ {
		cr := (float64(x)/float64(w))*3.5 - 2.5
		ci := (float64(y)/float64(h))*2.0 - 1.0
		zr, zi := 0.0, 0.0
		it := 0
		for it < maxIter && zr*zr+zi*zi <= 4.0 {
			zr, zi = zr*zr-zi*zi+cr, 2.0*zr*zi+ci
			it++
		}
		perPixel = append(perPixel, it)
		total += it
	}
	return perPixel, total
}

// RefPrimes mirrors the primes tasklet.
func RefPrimes(lo, hi int) int {
	isPrime := func(n int) bool {
		if n < 2 {
			return false
		}
		if n%2 == 0 {
			return n == 2
		}
		for d := 3; d*d <= n; d += 2 {
			if n%d == 0 {
				return false
			}
		}
		return true
	}
	count := 0
	for n := lo; n < hi; n++ {
		if isPrime(n) {
			count++
		}
	}
	return count
}

// RefMatmulRow mirrors the matmul tasklet's row checksum.
func RefMatmulRow(row, n int) int64 {
	cell := func(i, j int) int64 {
		return int64((i*31 + j*17 + 7) % 100)
	}
	var check int64
	for j := 0; j < n; j++ {
		var sum int64
		for k := 0; k < n; k++ {
			sum += cell(row, k) * cell(k, j)
		}
		check = (check*131 + sum) % 1000000007
	}
	return check
}

// RefWordCount mirrors the wordcount tasklet.
func RefWordCount(text, word string) int {
	target := strings.ToLower(word)
	count := 0
	for _, w := range strings.Fields(strings.ToLower(text)) {
		if w == target {
			count++
		}
	}
	return count
}

// RefGrep mirrors the grep tasklet, returning matching line indexes.
func RefGrep(text, pattern string) []int {
	var hits []int
	for i, line := range strings.Split(text, "\n") {
		if strings.Contains(line, pattern) {
			hits = append(hits, i)
		}
	}
	return hits
}

// RefSortCheck mirrors the sortcheck tasklet.
func RefSortCheck(n int, seed int64) int64 {
	xs := make([]int64, 0, n)
	x := seed
	for i := 0; i < n; i++ {
		x = (x*1103515245 + 12345) % 2147483648
		if x < 0 {
			x += 2147483648
		}
		xs = append(xs, x%100000)
	}
	for i := 1; i < len(xs); i++ {
		key := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > key {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = key
	}
	var check int64
	for _, v := range xs {
		check = (check*131 + v) % 1000000007
	}
	return check
}

// RefNQueens mirrors the nqueens tasklet (solution count).
func RefNQueens(n int) int {
	cols := make([]int, n)
	var place func(row int) int
	place = func(row int) int {
		if row == n {
			return 1
		}
		count := 0
		for col := 0; col < n; col++ {
			ok := true
			for r := 0; r < row; r++ {
				c := cols[r]
				if c == col || c-col == row-r || col-c == row-r {
					ok = false
					break
				}
			}
			if ok {
				cols[row] = col
				count += place(row + 1)
			}
		}
		return count
	}
	return place(0)
}

// RefSpin mirrors the spin tasklet.
func RefSpin(iters int64) int64 {
	var acc int64
	for i := int64(0); i < iters; i++ {
		acc += i % 7
	}
	return acc
}

// SpinFuel estimates the fuel the spin tasklet consumes for the given
// iteration count (measured constant per loop iteration plus prologue).
// Experiments use it to generate tasklets of a target cost.
func SpinFuel(iters int64) uint64 {
	// Loop body: 15 fuel per iteration plus a small prologue (see
	// TestSpinFuelEstimate, which pins the constant).
	return uint64(iters)*15 + 10
}
