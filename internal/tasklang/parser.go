package tasklang

// Parser is a recursive-descent parser over the token stream produced by
// Lex. It builds the AST defined in ast.go and reports the first syntax
// error with its position.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a TCL source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.file()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errorf(p.cur().Pos, "expected %s, found %s", k, p.describe(p.cur()))
	}
	return p.next(), nil
}

func (p *Parser) describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return "'" + t.Text + "'"
	case TokInt, TokFloat:
		return "'" + t.Text + "'"
	case TokStr:
		return "string literal"
	default:
		return t.Kind.String()
	}
}

func (p *Parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	if len(f.Funcs) == 0 {
		return nil, errorf(Pos{1, 1}, "source contains no functions")
	}
	return f, nil
}

func (p *Parser) typeName() (Type, error) {
	tok, err := p.expect(TokIdent)
	if err != nil {
		return TAny, errorf(p.cur().Pos, "expected a type name")
	}
	t, ok := typeNames[tok.Text]
	if !ok {
		return TAny, errorf(tok.Pos, "unknown type %q (want int, float, bool, str, arr, any or void)", tok.Text)
	}
	return t, nil
}

func (p *Parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect(TokFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: kw.Pos, Name: name.Text, Ret: TVoid}
	if p.cur().Kind != TokRParen {
		for {
			pname, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			ptype, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if ptype == TVoid {
				return nil, errorf(pname.Pos, "parameter %q cannot be void", pname.Text)
			}
			fn.Params = append(fn.Params, Param{Pos: pname.Pos, Name: pname.Text, Type: ptype})
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if p.cur().Kind == TokIdent { // optional return type
		rt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		fn.Ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) block() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errorf(lb.Pos, "unclosed block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume '}'
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.block()
	case TokVar:
		s, err := p.varStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		return p.whileStmt()
	case TokFor:
		return p.forStmt()
	case TokReturn:
		kw := p.next()
		s := &ReturnStmt{Pos: kw.Pos}
		if p.cur().Kind != TokSemicolon {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	case TokBreak:
		kw := p.next()
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: kw.Pos}, nil
	case TokContinue:
		kw := p.next()
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: kw.Pos}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// varStmt parses "var name [type] [= expr]" without the trailing semicolon
// (shared by statement position and for-init position).
func (p *Parser) varStmt() (*VarStmt, error) {
	kw, err := p.expect(TokVar)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	s := &VarStmt{Pos: kw.Pos, Name: name.Text, Type: TAny}
	if p.cur().Kind == TokIdent {
		t, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if t == TVoid {
			return nil, errorf(name.Pos, "variable %q cannot be void", name.Text)
		}
		s.Type = t
		s.HasType = true
	}
	if p.accept(TokAssign) {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if !s.HasType && s.Init == nil {
		return nil, errorf(kw.Pos, "variable %q needs a type or an initializer", name.Text)
	}
	return s, nil
}

// simpleStmt parses an expression statement or an assignment (without the
// trailing semicolon).
func (p *Parser) simpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokAssign) {
		switch x.(type) {
		case *IdentExpr, *IndexExpr:
		default:
			return nil, errorf(pos, "left side of '=' must be a variable or index expression")
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Target: x, Value: v}, nil
	}
	// Compound assignment desugars to `target = target op value`. Targets
	// are restricted to identifiers so the target is evaluated exactly
	// once (with `a[f()] += v` the index expression would run twice).
	compound := map[TokKind]TokKind{
		TokPlusAssign:    TokPlus,
		TokMinusAssign:   TokMinus,
		TokStarAssign:    TokStar,
		TokSlashAssign:   TokSlash,
		TokPercentAssign: TokPercent,
	}
	if op, ok := compound[p.cur().Kind]; ok {
		tok := p.next()
		ident, isIdent := x.(*IdentExpr)
		if !isIdent {
			return nil, errorf(tok.Pos, "left side of %s must be a variable", tok.Kind)
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		// The target identifier appears on both sides; the checker
		// resolves each occurrence to the same slot.
		lhsCopy := &IdentExpr{Pos: ident.Pos, Name: ident.Name}
		return &AssignStmt{
			Pos:    pos,
			Target: ident,
			Value:  &BinaryExpr{Pos: tok.Pos, Op: op, L: lhsCopy, R: v},
		}, nil
	}
	return &ExprStmt{Pos: pos, X: x}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	kw := p.next() // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.accept(TokElse) {
		if p.cur().Kind == TokIf {
			e, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = e
		} else {
			e, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = e
		}
	}
	return s, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	kw := p.next() // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	kw := p.next() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: kw.Pos}
	if p.cur().Kind != TokSemicolon {
		if p.cur().Kind == TokVar {
			init, err := p.varStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemicolon {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr   := or
//	or     := and ('||' and)*
//	and    := eq ('&&' eq)*
//	eq     := rel (('=='|'!=') rel)*
//	rel    := add (('<'|'<='|'>'|'>=') add)*
//	add    := mul (('+'|'-') mul)*
//	mul    := unary (('*'|'/'|'%') unary)*
//	unary  := ('-'|'!') unary | postfix
//	postfix:= primary ('[' expr ']')*
//	primary:= literal | ident | call | '(' expr ')' | '[' args ']'
func (p *Parser) expr() (Expr, error) { return p.orExpr() }

func (p *Parser) binaryLevel(ops []TokKind, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.cur().Kind == op {
				tok := p.next()
				r, err := sub()
				if err != nil {
					return nil, err
				}
				l = &BinaryExpr{Pos: tok.Pos, Op: op, L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *Parser) orExpr() (Expr, error) {
	return p.binaryLevel([]TokKind{TokOrOr}, p.andExpr)
}

func (p *Parser) andExpr() (Expr, error) {
	return p.binaryLevel([]TokKind{TokAndAnd}, p.eqExpr)
}

func (p *Parser) eqExpr() (Expr, error) {
	return p.binaryLevel([]TokKind{TokEq, TokNe}, p.relExpr)
}

func (p *Parser) relExpr() (Expr, error) {
	return p.binaryLevel([]TokKind{TokLt, TokLe, TokGt, TokGe}, p.addExpr)
}

func (p *Parser) addExpr() (Expr, error) {
	return p.binaryLevel([]TokKind{TokPlus, TokMinus}, p.mulExpr)
}

func (p *Parser) mulExpr() (Expr, error) {
	return p.binaryLevel([]TokKind{TokStar, TokSlash, TokPercent}, p.unaryExpr)
}

func (p *Parser) unaryExpr() (Expr, error) {
	if k := p.cur().Kind; k == TokMinus || k == TokBang {
		tok := p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: tok.Pos, Op: k, X: x}, nil
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokLBracket {
		lb := p.next()
		i, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		x = &IndexExpr{Pos: lb.Pos, X: x, I: i}
	}
	return x, nil
}

func (p *Parser) primaryExpr() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInt:
		p.next()
		v, err := parseInt64(tok.Text)
		if err != nil {
			return nil, errorf(tok.Pos, "invalid int literal %q", tok.Text)
		}
		return &IntLit{Pos: tok.Pos, V: v}, nil
	case TokFloat:
		p.next()
		v, err := parseFloat64(tok.Text)
		if err != nil {
			return nil, errorf(tok.Pos, "invalid float literal %q", tok.Text)
		}
		return &FloatLit{Pos: tok.Pos, V: v}, nil
	case TokStr:
		p.next()
		return &StrLit{Pos: tok.Pos, V: tok.Text}, nil
	case TokTrue:
		p.next()
		return &BoolLit{Pos: tok.Pos, V: true}, nil
	case TokFalse:
		p.next()
		return &BoolLit{Pos: tok.Pos, V: false}, nil
	case TokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokLBracket:
		p.next()
		lit := &ArrLit{Pos: tok.Pos}
		if p.cur().Kind != TokRBracket {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				lit.Elems = append(lit.Elems, e)
				if !p.accept(TokComma) {
					break
				}
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		return lit, nil
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			p.next()
			call := &CallExpr{Pos: tok.Pos, Name: tok.Text, FuncIndex: -1}
			if p.cur().Kind != TokRParen {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			switch call.Name {
			case "len":
				if len(call.Args) != 1 {
					return nil, errorf(tok.Pos, "len wants exactly 1 argument, got %d", len(call.Args))
				}
				return &LenExpr{Pos: tok.Pos, X: call.Args[0]}, nil
			case "push":
				if len(call.Args) != 2 {
					return nil, errorf(tok.Pos, "push wants exactly 2 arguments, got %d", len(call.Args))
				}
				return &PushExpr{Pos: tok.Pos, X: call.Args[0], V: call.Args[1]}, nil
			}
			return call, nil
		}
		return &IdentExpr{Pos: tok.Pos, Name: tok.Text}, nil
	default:
		return nil, errorf(tok.Pos, "expected an expression, found %s", p.describe(tok))
	}
}
