package tasklang

import (
	"strings"
	"testing"
)

// wantCompileError asserts compilation fails and the error mentions substr.
func wantCompileError(t *testing.T, src, substr string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("compiled successfully, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err.Error(), substr)
	}
}

func TestCheckUndefinedVariable(t *testing.T) {
	wantCompileError(t, `func main() int { return x; }`, "undefined variable")
}

func TestCheckUndefinedFunction(t *testing.T) {
	wantCompileError(t, `func main() int { return nope(1); }`, "undefined function")
}

func TestCheckRedeclaredVariable(t *testing.T) {
	wantCompileError(t, `
func main() int {
	var a int = 1;
	var a int = 2;
	return a;
}`, "redeclared")
}

func TestCheckShadowingInNestedScopeAllowed(t *testing.T) {
	if _, err := Compile(`
func main() int {
	var a int = 1;
	{ var a int = 2; a = a + 1; }
	return a;
}`); err != nil {
		t.Fatalf("legal shadowing rejected: %v", err)
	}
}

func TestCheckRedeclaredFunction(t *testing.T) {
	wantCompileError(t, `
func f() int { return 1; }
func f() int { return 2; }
func main() int { return f(); }`, "redeclared")
}

func TestCheckFunctionShadowsBuiltin(t *testing.T) {
	wantCompileError(t, `
func sqrt(x float) float { return x; }
func main() int { return 0; }`, "shadows a builtin")
	wantCompileError(t, `
func len(x arr) int { return 0; }
func main() int { return 0; }`, "shadows a builtin")
}

func TestCheckArityMismatch(t *testing.T) {
	wantCompileError(t, `
func f(a int, b int) int { return a + b; }
func main() int { return f(1); }`, "wants 2 arguments")
	wantCompileError(t, `func main() float { return sqrt(1.0, 2.0); }`, "wants 1 argument")
	wantCompileError(t, `func main() int { return len(); }`, "len wants exactly 1 argument")
}

func TestCheckTypeErrors(t *testing.T) {
	cases := map[string]string{
		`func main() int { return "a" * 2; }`:                          "arithmetic wants numbers",
		`func main() int { var x int = "s"; return x; }`:               "cannot initialize",
		`func main() int { var x int = 1; x = 2.5; return x; }`:        "cannot assign",
		`func main() int { var x int = 1; x = true; return x; }`:       "cannot assign",
		`func main() int { if (1) { return 1; } return 0; }`:           "condition must be bool",
		`func main() int { while (1 + 2) { } return 0; }`:              "condition must be bool",
		`func main() int { return 1 && true; }`:                        "logical operator wants bool",
		`func main() int { return "a" < 1; }`:                          "cannot order",
		`func main() int { return 1.5 % 2.0; }`:                        "wants int operands",
		`func main() int { var s str = "x"; s[0] = 65; return 0; }`:    "only arr elements are assignable",
		`func main() int { var a arr = [1]; return a["x"]; }`:          "index must be int",
		`func main() int { var x int = 5; return x[0]; }`:              "cannot index",
		`func main() int { return len(5); }`:                           "len wants arr or str",
		`func main() int { return -true; }`:                            "unary '-' wants a number",
		`func main() int { return !5; }`:                               "'!' wants a bool",
		`func main() int { var v void; return 0; }`:                    "cannot be void",
		`func f(x void) int { return 0; } func main() int {return 0;}`: "cannot be void",
	}
	for src, want := range cases {
		t.Run(want, func(t *testing.T) {
			wantCompileError(t, src, want)
		})
	}
}

func TestCheckIntFloatNoImplicitConversion(t *testing.T) {
	// TCL requires explicit conversion between int and float in
	// assignments and calls, though mixed arithmetic promotes.
	wantCompileError(t, `
func f(x float) float { return x; }
func main() float { return f(1); }`, "cannot pass int as float")
	if _, err := Compile(`
func f(x float) float { return x; }
func main() float { return f(float(1)); }`); err != nil {
		t.Fatalf("explicit conversion rejected: %v", err)
	}
	if _, err := Compile(`func main() float { return 1 * 2.5; }`); err != nil {
		t.Fatalf("mixed arithmetic rejected: %v", err)
	}
}

func TestCheckReturnRules(t *testing.T) {
	wantCompileError(t, `func main() int { return; }`, "must return a int")
	wantCompileError(t, `func main() void { return 5; }`, "void and cannot return")
	wantCompileError(t, `func main() int { return "s"; }`, "cannot return")
	wantCompileError(t, `func main() int { return emit(1); }`, "void value used")
}

func TestCheckVoidCallAsStatementAllowed(t *testing.T) {
	if _, err := Compile(`func main() void { emit(1); print("x"); }`); err != nil {
		t.Fatalf("void call statement rejected: %v", err)
	}
}

func TestCheckBreakContinueOutsideLoop(t *testing.T) {
	wantCompileError(t, `func main() void { break; }`, "break outside")
	wantCompileError(t, `func main() void { continue; }`, "continue outside")
	wantCompileError(t, `
func main() void {
	while (true) { break; }
	continue;
}`, "continue outside")
}

func TestCheckVarNeedsTypeOrInit(t *testing.T) {
	wantCompileError(t, `func main() void { var x; }`, "needs a type or an initializer")
}

func TestCheckAssignToExpression(t *testing.T) {
	wantCompileError(t, `func main() void { 1 + 2 = 3; }`, "left side of '='")
}

func TestCheckForInitScopes(t *testing.T) {
	// The loop variable is not visible after the loop.
	wantCompileError(t, `
func main() int {
	for (var i int = 0; i < 3; i = i + 1) { }
	return i;
}`, "undefined variable")
}

func TestCheckSiblingScopesReuseSlots(t *testing.T) {
	// Two sibling blocks with locals must not inflate the frame; this is a
	// regression guard on slot recycling.
	prog, err := Compile(`
func main() int {
	var r int = 0;
	{ var a int = 1; r = r + a; }
	{ var b int = 2; r = r + b; }
	return r;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.EntryFunc().NumLocals; got != 2 {
		t.Fatalf("NumLocals = %d, want 2 (slot recycling broken)", got)
	}
}

func TestCheckErrorsCarryPositions(t *testing.T) {
	_, err := Compile("func main() int {\n\treturn x;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:") {
		t.Fatalf("error lacks line info: %v", err)
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		``,                                    // no functions
		`func`,                                // truncated
		`func main( { }`,                      // bad params
		`func main() int { return 1 }`,        // missing semicolon
		`func main() int { if true { } }`,     // missing parens
		`func main() int { var x blah = 1; }`, // unknown type
		`func main() int { return (1; }`,      // unbalanced paren
		`func main() int { return [1, ; }`,    // bad array literal
		`func main() int { `,                  // unclosed block
		`xyz`,                                 // not a func
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed %q without error", src)
		}
	}
}

func TestParseElseIfChain(t *testing.T) {
	f, err := Parse(`
func main(x int) int {
	if (x == 1) { return 1; }
	else if (x == 2) { return 2; }
	else { return 3; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	ifs, ok := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("statement is %T", f.Funcs[0].Body.Stmts[0])
	}
	if _, ok := ifs.Else.(*IfStmt); !ok {
		t.Fatalf("else-if not chained: %T", ifs.Else)
	}
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 == 7 && true  parses as ((1 + (2*3)) == 7) && true.
	f, err := Parse(`func main() bool { return 1 + 2 * 3 == 7 && true; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	and, ok := ret.X.(*BinaryExpr)
	if !ok || and.Op != TokAndAnd {
		t.Fatalf("top is not &&: %#v", ret.X)
	}
	eq, ok := and.L.(*BinaryExpr)
	if !ok || eq.Op != TokEq {
		t.Fatalf("left of && is not ==: %#v", and.L)
	}
	add, ok := eq.L.(*BinaryExpr)
	if !ok || add.Op != TokPlus {
		t.Fatalf("left of == is not +: %#v", eq.L)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != TokStar {
		t.Fatalf("right of + is not *: %#v", add.R)
	}
}

func TestParseUnaryChain(t *testing.T) {
	if _, err := Parse(`func main() int { return - - 1; }`); err != nil {
		t.Fatalf("double negation rejected: %v", err)
	}
	if _, err := Parse(`func main() bool { return !!true; }`); err != nil {
		t.Fatalf("double not rejected: %v", err)
	}
}

func TestParseIndexChain(t *testing.T) {
	f, err := Parse(`func main(a arr) int { return a[0][1]; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	outer, ok := ret.X.(*IndexExpr)
	if !ok {
		t.Fatalf("not an index: %#v", ret.X)
	}
	if _, ok := outer.X.(*IndexExpr); !ok {
		t.Fatalf("index not left-nested: %#v", outer.X)
	}
}
