package tasklang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tvm"
)

// Differential testing: generate random integer expression trees, render
// them as TCL, and check that compile→TVM produces exactly the value (or
// exactly the fault) that a direct Go evaluation of the same tree produces.
// This pins the full pipeline — lexer, parser, checker, codegen, VM
// arithmetic including Go's wrap-around and truncated-division semantics.

// expr is a tiny AST mirrored on both sides.
type dExpr interface {
	render(b *strings.Builder)
	// eval returns the value, or ok=false on division/modulo by zero.
	eval(env []int64) (v int64, ok bool)
}

type dLit int64

func (l dLit) render(b *strings.Builder) {
	if l < 0 {
		fmt.Fprintf(b, "(0 - %d)", -int64(l)) // TCL has no negative literals
	} else {
		fmt.Fprintf(b, "%d", int64(l))
	}
}
func (l dLit) eval([]int64) (int64, bool) { return int64(l), true }

type dVar int

func (v dVar) render(b *strings.Builder)      { fmt.Fprintf(b, "p%d", int(v)) }
func (v dVar) eval(env []int64) (int64, bool) { return env[int(v)], true }

type dBin struct {
	op   byte // '+', '-', '*', '/', '%'
	l, r dExpr
}

func (e dBin) render(b *strings.Builder) {
	b.WriteByte('(')
	e.l.render(b)
	fmt.Fprintf(b, " %c ", e.op)
	e.r.render(b)
	b.WriteByte(')')
}

func (e dBin) eval(env []int64) (int64, bool) {
	l, ok := e.l.eval(env)
	if !ok {
		return 0, false
	}
	r, ok := e.r.eval(env)
	if !ok {
		return 0, false
	}
	switch e.op {
	case '+':
		return l + r, true
	case '-':
		return l - r, true
	case '*':
		return l * r, true
	case '/':
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case '%':
		if r == 0 {
			return 0, false
		}
		return l % r, true
	}
	panic("bad op")
}

// runBothInterpreters executes a compiled program through the optimized
// (fused fast-path) interpreter and the reference interpreter
// (Config.NoOptimize) and asserts every observable outcome is identical:
// Result.Hash, FuelUsed, and fault code/pc on error. It returns the
// optimized-mode outcome, which the callers then compare against the Go-side
// evaluation.
func runBothInterpreters(t *testing.T, prog *tvm.Program, params ...tvm.Value) (*tvm.Result, error) {
	t.Helper()
	optRes, optErr := tvm.New(prog, tvm.DefaultConfig()).Run(params...)
	refCfg := tvm.DefaultConfig()
	refCfg.NoOptimize = true
	refRes, refErr := tvm.New(prog, refCfg).Run(params...)

	switch {
	case optErr == nil && refErr == nil:
		if optRes.Hash() != refRes.Hash() || optRes.FuelUsed != refRes.FuelUsed {
			t.Fatalf("optimized/reference divergence: hash %d/%d fuel %d/%d\n%s",
				optRes.Hash(), refRes.Hash(), optRes.FuelUsed, refRes.FuelUsed, prog.Disassemble())
		}
	case optErr != nil && refErr != nil:
		of, ok1 := tvm.AsFault(optErr)
		rf, ok2 := tvm.AsFault(refErr)
		if !ok1 || !ok2 || of.Code != rf.Code || of.PC != rf.PC || of.Func != rf.Func {
			t.Fatalf("optimized/reference fault divergence: %v vs %v\n%s", optErr, refErr, prog.Disassemble())
		}
	default:
		t.Fatalf("optimized/reference outcome divergence: err %v vs %v\n%s", optErr, refErr, prog.Disassemble())
	}
	return optRes, optErr
}

// genExpr builds a random expression of bounded depth over nVars variables.
func genExpr(r *rand.Rand, depth, nVars int) dExpr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 && nVars > 0 {
			return dVar(r.Intn(nVars))
		}
		// Mix small and large magnitudes to exercise wrap-around.
		switch r.Intn(4) {
		case 0:
			return dLit(r.Int63())
		case 1:
			return dLit(-r.Int63())
		default:
			return dLit(int64(r.Intn(41) - 20))
		}
	}
	ops := []byte{'+', '-', '*', '/', '%'}
	return dBin{
		op: ops[r.Intn(len(ops))],
		l:  genExpr(r, depth-1, nVars),
		r:  genExpr(r, depth-1, nVars),
	}
}

func TestDifferentialRandomIntExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(20260705))
	const nVars = 3
	const cases = 400
	for i := 0; i < cases; i++ {
		tree := genExpr(r, 4, nVars)
		var b strings.Builder
		b.WriteString("func main(p0 int, p1 int, p2 int) int {\n\treturn ")
		tree.render(&b)
		b.WriteString(";\n}\n")
		src := b.String()

		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: compile failed:\n%s\n%v", i, src, err)
		}

		env := []int64{r.Int63n(100) - 50, r.Int63n(100) - 50, r.Int63()}
		want, ok := tree.eval(env)

		res, err := runBothInterpreters(t, prog,
			tvm.Int(env[0]), tvm.Int(env[1]), tvm.Int(env[2]))
		if !ok {
			// Reference hit division by zero: the VM must fault the same
			// way.
			f, isFault := tvm.AsFault(err)
			if !isFault || f.Code != tvm.FaultDivByZero {
				t.Fatalf("case %d: want div_by_zero, got %v\n%s\nenv=%v", i, err, src, env)
			}
			continue
		}
		if err != nil {
			t.Fatalf("case %d: unexpected fault %v\n%s\nenv=%v", i, err, src, env)
		}
		if res.Return.Kind != tvm.KindInt || res.Return.I != want {
			t.Fatalf("case %d: got %s, want %d\n%s\nenv=%v", i, res.Return, want, src, env)
		}
	}
}

// TestDifferentialBoolExpressions does the same for comparison/logic trees.
func TestDifferentialBoolExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	cmpOps := []string{"==", "!=", "<", "<=", ">", ">="}
	for i := 0; i < 300; i++ {
		a, bv := r.Int63n(20)-10, r.Int63n(20)-10
		c, d := r.Int63n(20)-10, r.Int63n(20)-10
		op1 := cmpOps[r.Intn(len(cmpOps))]
		op2 := cmpOps[r.Intn(len(cmpOps))]
		logic := "&&"
		if r.Intn(2) == 0 {
			logic = "||"
		}
		neg := r.Intn(2) == 0
		cond := fmt.Sprintf("%d %s %d %s %d %s %d", a, op1, bv, logic, c, op2, d)
		if neg {
			cond = fmt.Sprintf("!(%s)", cond)
		}
		src := fmt.Sprintf("func main() int { if (%s) { return 1; } return 0; }", cond)

		cmp := func(op string, x, y int64) bool {
			switch op {
			case "==":
				return x == y
			case "!=":
				return x != y
			case "<":
				return x < y
			case "<=":
				return x <= y
			case ">":
				return x > y
			default:
				return x >= y
			}
		}
		var want bool
		if logic == "&&" {
			want = cmp(op1, a, bv) && cmp(op2, c, d)
		} else {
			want = cmp(op1, a, bv) || cmp(op2, c, d)
		}
		if neg {
			want = !want
		}

		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, src)
		}
		res, err := runBothInterpreters(t, prog)
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, src)
		}
		got := res.Return.I == 1
		if got != want {
			t.Fatalf("case %d: got %v, want %v\n%s", i, got, want, src)
		}
	}
}
