package tasklang

// Type is a TCL static type. The checker uses TAny for values whose type is
// only known at runtime (array elements); the VM enforces kinds dynamically.
type Type uint8

// TCL types.
const (
	TAny Type = iota
	TInt
	TFloat
	TBool
	TStr
	TArr
	TVoid
)

// String returns the TCL spelling of the type.
func (t Type) String() string {
	switch t {
	case TAny:
		return "any"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TStr:
		return "str"
	case TArr:
		return "arr"
	case TVoid:
		return "void"
	default:
		return "type(?)"
	}
}

var typeNames = map[string]Type{
	"any":   TAny,
	"int":   TInt,
	"float": TFloat,
	"bool":  TBool,
	"str":   TStr,
	"arr":   TArr,
	"void":  TVoid,
}

// File is a parsed TCL source file.
type File struct {
	Funcs []*FuncDecl

	// locals records per-function local slot counts, filled by Check and
	// consumed by Compile.
	locals map[string]int
}

// FuncDecl is a top-level function declaration.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Ret    Type
	Body   *BlockStmt
}

// Param is a typed function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtPos() Pos }

// Expr is implemented by all expression nodes.
type Expr interface{ exprPos() Pos }

// BlockStmt is a braced statement list with its own scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarStmt declares a variable, optionally typed and initialized.
// With no type annotation the declared type is inferred from Init; with no
// initializer the variable starts at the type's zero value.
type VarStmt struct {
	Pos      Pos
	Name     string
	Type     Type // TAny when omitted
	HasType  bool
	Init     Expr // may be nil
	Slot     int  // assigned by the checker
	DeclType Type // resolved type after checking
}

// AssignStmt assigns to an identifier or an index expression.
type AssignStmt struct {
	Pos    Pos
	Target Expr // *IdentExpr or *IndexExpr
	Value  Expr
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else; Else is nil, a *BlockStmt, or another *IfStmt.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init/Post may be nil; Cond nil means true.
type ForStmt struct {
	Pos  Pos
	Init Stmt // *VarStmt or *AssignStmt or *ExprStmt, no trailing ';'
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // nil for bare return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Pos Pos }

func (s *BlockStmt) stmtPos() Pos    { return s.Pos }
func (s *VarStmt) stmtPos() Pos      { return s.Pos }
func (s *AssignStmt) stmtPos() Pos   { return s.Pos }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos }
func (s *IfStmt) stmtPos() Pos       { return s.Pos }
func (s *WhileStmt) stmtPos() Pos    { return s.Pos }
func (s *ForStmt) stmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos   { return s.Pos }
func (s *BreakStmt) stmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) stmtPos() Pos { return s.Pos }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a float literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	V   bool
}

// StrLit is a string literal (unescaped).
type StrLit struct {
	Pos Pos
	V   string
}

// ArrLit is an array literal [e1, e2, ...].
type ArrLit struct {
	Pos   Pos
	Elems []Expr
}

// IdentExpr references a variable.
type IdentExpr struct {
	Pos  Pos
	Name string
	Slot int // assigned by the checker
}

// BinaryExpr applies a binary operator. Op is the lexical token kind.
type BinaryExpr struct {
	Pos  Pos
	Op   TokKind
	L, R Expr
}

// UnaryExpr applies unary '-' or '!'.
type UnaryExpr struct {
	Pos Pos
	Op  TokKind
	X   Expr
}

// CallExpr calls a user function or builtin by name.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr

	// Resolution, filled by the checker.
	FuncIndex int  // user function index, or -1
	IsBuiltin bool // true when Name resolves to a tvm builtin
}

// IndexExpr is a[i] on arrays and strings.
type IndexExpr struct {
	Pos Pos
	X   Expr
	I   Expr
}

// LenExpr is len(x); len is a keyword-like builtin with its own opcode.
type LenExpr struct {
	Pos Pos
	X   Expr
}

// PushExpr is push(a, v): appends v to array a in place and evaluates to
// the array, enabling `xs = push(xs, v)` chains and bare `push(xs, v);`
// statements. Like len, it compiles to a dedicated opcode.
type PushExpr struct {
	Pos Pos
	X   Expr
	V   Expr
}

func (e *IntLit) exprPos() Pos     { return e.Pos }
func (e *FloatLit) exprPos() Pos   { return e.Pos }
func (e *BoolLit) exprPos() Pos    { return e.Pos }
func (e *StrLit) exprPos() Pos     { return e.Pos }
func (e *ArrLit) exprPos() Pos     { return e.Pos }
func (e *IdentExpr) exprPos() Pos  { return e.Pos }
func (e *BinaryExpr) exprPos() Pos { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *LenExpr) exprPos() Pos    { return e.Pos }
func (e *PushExpr) exprPos() Pos   { return e.Pos }
