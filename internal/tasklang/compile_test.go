package tasklang

import (
	"strings"
	"testing"

	"repro/internal/tvm"
)

// evalTCL compiles src and runs main with params, failing the test on any
// compile or runtime error.
func evalTCL(t *testing.T, src string, params ...tvm.Value) *tvm.Result {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := tvm.New(prog, tvm.DefaultConfig()).Run(params...)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, prog.Disassemble())
	}
	return res
}

// wantInt asserts the program returns the given int.
func wantInt(t *testing.T, src string, want int64, params ...tvm.Value) {
	t.Helper()
	res := evalTCL(t, src, params...)
	if res.Return.Kind != tvm.KindInt || res.Return.I != want {
		t.Fatalf("returned %s, want %d", res.Return, want)
	}
}

func TestCompileArithmetic(t *testing.T) {
	wantInt(t, `func main() int { return 2 + 3 * 4 - 10 / 2; }`, 9)
	wantInt(t, `func main() int { return (2 + 3) * 4; }`, 20)
	wantInt(t, `func main() int { return 17 % 5; }`, 2)
	wantInt(t, `func main() int { return -7 + 2; }`, -5)
}

func TestCompileFloatArithmetic(t *testing.T) {
	res := evalTCL(t, `func main() float { return 1.5 * 4.0; }`)
	if res.Return.F != 6.0 {
		t.Fatalf("= %s", res.Return)
	}
}

func TestCompileVariablesAndScopes(t *testing.T) {
	wantInt(t, `
func main() int {
	var a int = 10;
	var b = a * 2;
	{
		var a int = 100;   // shadows outer a
		b = b + a;
	}
	return a + b;          // 10 + 120
}`, 130)
}

func TestCompileDefaultZeroValues(t *testing.T) {
	wantInt(t, `func main() int { var x int; return x; }`, 0)
	res := evalTCL(t, `func main() str { var s str; return s; }`)
	if res.Return.S != "" {
		t.Fatalf("zero str = %s", res.Return)
	}
	res = evalTCL(t, `func main() int { var a arr; return len(a); }`)
	if res.Return.I != 0 {
		t.Fatalf("zero arr len = %s", res.Return)
	}
	res = evalTCL(t, `func main() bool { var b bool; return b; }`)
	if res.Return.AsBool() {
		t.Fatalf("zero bool = %s", res.Return)
	}
	res = evalTCL(t, `func main() float { var f float; return f; }`)
	if res.Return.Kind != tvm.KindFloat || res.Return.F != 0 {
		t.Fatalf("zero float = %s", res.Return)
	}
}

func TestCompileIfElseChain(t *testing.T) {
	src := `
func classify(x int) int {
	if (x < 0) { return -1; }
	else if (x == 0) { return 0; }
	else { return 1; }
}
func main(x int) int { return classify(x); }`
	wantInt(t, src, -1, tvm.Int(-5))
	wantInt(t, src, 0, tvm.Int(0))
	wantInt(t, src, 1, tvm.Int(9))
}

func TestCompileWhileLoop(t *testing.T) {
	wantInt(t, `
func main(n int) int {
	var sum int = 0;
	var i int = 0;
	while (i < n) {
		sum = sum + i;
		i = i + 1;
	}
	return sum;
}`, 45, tvm.Int(10))
}

func TestCompileForLoop(t *testing.T) {
	wantInt(t, `
func main(n int) int {
	var sum int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		sum = sum + i;
	}
	return sum;
}`, 4950, tvm.Int(100))
}

func TestCompileForWithoutCond(t *testing.T) {
	wantInt(t, `
func main() int {
	var i int = 0;
	for (;;) {
		i = i + 1;
		if (i >= 7) { break; }
	}
	return i;
}`, 7)
}

func TestCompileBreakContinue(t *testing.T) {
	// Sum of odd numbers below 10, stopping at 7.
	wantInt(t, `
func main() int {
	var sum int = 0;
	for (var i int = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i > 7) { break; }
		sum = sum + i;
	}
	return sum;
}`, 16) // 1+3+5+7
}

func TestCompileNestedLoopsBreak(t *testing.T) {
	// break must bind to the innermost loop.
	wantInt(t, `
func main() int {
	var count int = 0;
	for (var i int = 0; i < 3; i = i + 1) {
		for (var j int = 0; j < 100; j = j + 1) {
			if (j == 2) { break; }
			count = count + 1;
		}
	}
	return count;
}`, 6)
}

func TestCompileContinueInWhileReevaluatesCond(t *testing.T) {
	wantInt(t, `
func main() int {
	var i int = 0;
	var hits int = 0;
	while (i < 10) {
		i = i + 1;
		if (i % 3 != 0) { continue; }
		hits = hits + 1;
	}
	return hits;
}`, 3)
}

func TestCompileRecursion(t *testing.T) {
	wantInt(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main(n int) int { return fib(n); }`, 610, tvm.Int(15))
}

func TestCompileMutualRecursion(t *testing.T) {
	wantInt(t, `
func isEven(n int) bool {
	if (n == 0) { return true; }
	return isOdd(n - 1);
}
func isOdd(n int) bool {
	if (n == 0) { return false; }
	return isEven(n - 1);
}
func main() int {
	if (isEven(10) && isOdd(7)) { return 1; }
	return 0;
}`, 1)
}

func TestCompileArrays(t *testing.T) {
	wantInt(t, `
func main() int {
	var a arr = [10, 20, 30];
	a[1] = a[1] + 5;
	var sum int = 0;
	for (var i int = 0; i < len(a); i = i + 1) {
		sum = sum + a[i];
	}
	return sum;
}`, 65)
}

func TestCompileEmitOrdering(t *testing.T) {
	res := evalTCL(t, `
func main() void {
	for (var i int = 0; i < 3; i = i + 1) {
		emit(i * i);
	}
}`)
	if len(res.Emitted) != 3 || res.Emitted[2].I != 4 {
		t.Fatalf("emitted = %v", res.Emitted)
	}
}

func TestCompileStrings(t *testing.T) {
	res := evalTCL(t, `
func main(name str) str {
	return "hello, " + name + "!";
}`, tvm.Str("world"))
	if res.Return.S != "hello, world!" {
		t.Fatalf("= %s", res.Return)
	}
}

func TestCompileStringBuiltins(t *testing.T) {
	wantInt(t, `
func main(text str) int {
	var words arr = split(lower(text), "");
	var count int = 0;
	for (var i int = 0; i < len(words); i = i + 1) {
		if (words[i] == "the") { count = count + 1; }
	}
	return count;
}`, 2, tvm.Str("The quick fox jumps over the lazy dog"))
}

func TestCompileShortCircuitAnd(t *testing.T) {
	// Right side would fault (division by zero) if evaluated.
	wantInt(t, `
func boom() bool { return 1 / 0 == 0; }
func main() int {
	if (false && boom()) { return 1; }
	return 2;
}`, 2)
}

func TestCompileShortCircuitOr(t *testing.T) {
	wantInt(t, `
func boom() bool { return 1 / 0 == 0; }
func main() int {
	if (true || boom()) { return 1; }
	return 2;
}`, 1)
}

func TestCompileLogicalResultValues(t *testing.T) {
	wantInt(t, `
func main(a bool, b bool) int {
	var r bool = a && b || !a;
	if (r) { return 1; }
	return 0;
}`, 1, tvm.Bool(true), tvm.Bool(true))
}

func TestCompileVoidFunction(t *testing.T) {
	res := evalTCL(t, `
func report(x int) void { emit(x); }
func main() void {
	report(1);
	report(2);
}`)
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted = %v", res.Emitted)
	}
}

func TestCompileEntrySelection(t *testing.T) {
	src := `
func alpha() int { return 1; }
func beta() int { return 2; }
`
	prog, err := CompileEntry(src, "beta")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tvm.New(prog, tvm.DefaultConfig()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.I != 2 {
		t.Fatalf("entry beta returned %s", res.Return)
	}
	if _, err := CompileEntry(src, "gamma"); err == nil {
		t.Fatal("missing entry accepted")
	}
	if _, err := Compile(src); err == nil {
		t.Fatal("missing main accepted")
	}
}

func TestCompileConstDedup(t *testing.T) {
	prog, err := Compile(`func main() float { return 2.5 + 2.5 + 2.5; }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Consts) != 1 {
		t.Fatalf("constant pool = %v, want single deduped const", prog.Consts)
	}
}

func TestCompileLargeIntLiteral(t *testing.T) {
	wantInt(t, `func main() int { return 5000000000; }`, 5_000_000_000)
}

func TestCompileMonteCarloPiDeterministic(t *testing.T) {
	src := `
func main(samples int) float {
	var hits int = 0;
	for (var i int = 0; i < samples; i = i + 1) {
		var x float = rand();
		var y float = rand();
		if (x*x + y*y <= 1.0) { hits = hits + 1; }
	}
	return 4.0 * float(hits) / float(samples);
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tvm.DefaultConfig()
	cfg.Seed = 99
	r1, err := tvm.New(prog, cfg).Run(tvm.Int(10000))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tvm.New(prog, cfg).Run(tvm.Int(10000))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Return.F != r2.Return.F {
		t.Fatal("same seed, different π estimate")
	}
	if r1.Return.F < 2.8 || r1.Return.F > 3.5 {
		t.Fatalf("π estimate wildly off: %v", r1.Return.F)
	}
}

func TestCompileRuntimeFaultCarriesLocation(t *testing.T) {
	prog, err := Compile(`
func main(i int) int {
	var a arr = [1, 2, 3];
	return a[i];
}`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tvm.New(prog, tvm.DefaultConfig()).Run(tvm.Int(99))
	f, ok := tvm.AsFault(err)
	if !ok || f.Code != tvm.FaultIndexRange || f.Func != "main" {
		t.Fatalf("fault = %v", err)
	}
}

func TestCompiledProgramSurvivesWire(t *testing.T) {
	prog, err := Compile(`func main(n int) int { return n * n; }`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded tvm.Program
	if err := decoded.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	res, err := tvm.New(&decoded, tvm.DefaultConfig()).Run(tvm.Int(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.I != 144 {
		t.Fatalf("decoded program returned %s", res.Return)
	}
}

func TestCompileDisassemblyGolden(t *testing.T) {
	// Literal arithmetic folds at compile time (see fold.go); runtime
	// operands do not.
	prog, err := Compile(`func main(n int) int { return n + 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	for _, want := range []string{"func main/1", "loadl 0", "pushi 2", "add", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	folded, err := Compile(`func main() int { return 1 + 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(folded.Disassemble(), "add") {
		t.Fatalf("literal addition not folded:\n%s", folded.Disassemble())
	}
}

func TestCompilePushGrowsArray(t *testing.T) {
	wantInt(t, `
func main(n int) int {
	var xs arr = [];
	for (var i int = 0; i < n; i = i + 1) {
		xs = push(xs, i * i);
	}
	var sum int = 0;
	for (var i int = 0; i < len(xs); i = i + 1) {
		sum = sum + xs[i];
	}
	return sum;
}`, 285, tvm.Int(10)) // 0+1+4+...+81
}

func TestCompilePushAsStatement(t *testing.T) {
	// push mutates in place, so a bare statement also works.
	wantInt(t, `
func main() int {
	var xs arr = [1];
	push(xs, 2);
	push(xs, 3);
	return len(xs);
}`, 3)
}

func TestCompilePushBuildsNestedArrays(t *testing.T) {
	res := evalTCL(t, `
func main() void {
	var rows arr = [];
	for (var i int = 0; i < 2; i = i + 1) {
		var row arr = [];
		for (var j int = 0; j < 3; j = j + 1) {
			row = push(row, i * 10 + j);
		}
		rows = push(rows, row);
	}
	emit(rows);
}`)
	want := tvm.Arr(
		tvm.Arr(tvm.Int(0), tvm.Int(1), tvm.Int(2)),
		tvm.Arr(tvm.Int(10), tvm.Int(11), tvm.Int(12)),
	)
	if !res.Emitted[0].Equal(want) {
		t.Fatalf("rows = %s, want %s", res.Emitted[0], want)
	}
}

func TestCompilePushTypeErrors(t *testing.T) {
	wantCompileError(t, `func main() int { return len(push(5, 1)); }`, "push wants an arr")
	wantCompileError(t, `func main() void { push([1]); }`, "push wants exactly 2 arguments")
}

func TestCompileCompoundAssignment(t *testing.T) {
	wantInt(t, `
func main(n int) int {
	var sum int = 0;
	for (var i int = 0; i < n; i += 1) {
		sum += i;
	}
	sum *= 2;
	sum -= 10;
	sum /= 3;
	sum %= 100;
	return sum;
}`, 26, tvm.Int(10)) // ((45*2)-10)/3 = 26; 26 % 100 = 26
}

func TestCompileCompoundAssignmentFloatsAndStrings(t *testing.T) {
	res := evalTCL(t, `
func main() float {
	var f float = 1.5;
	f *= 4.0;
	f += 0.5;
	return f;
}`)
	if res.Return.F != 6.5 {
		t.Fatalf("= %s", res.Return)
	}
	res = evalTCL(t, `
func main() str {
	var s str = "a";
	s += "b";
	s += "c";
	return s;
}`)
	if res.Return.S != "abc" {
		t.Fatalf("= %s", res.Return)
	}
}

func TestCompileCompoundAssignmentErrors(t *testing.T) {
	wantCompileError(t, `func main() void { var a arr = [1]; a[0] += 1; }`, "must be a variable")
	wantCompileError(t, `func main() void { 1 += 2; }`, "must be a variable")
	wantCompileError(t, `func main() void { var x int = 1; x += "s"; }`, "cannot add")
	wantCompileError(t, `func main() void { var s str = "x"; s -= "y"; }`, "arithmetic wants numbers")
}

func TestCompileCompoundInForPost(t *testing.T) {
	wantInt(t, `
func main() int {
	var total int = 0;
	for (var i int = 1; i <= 5; i *= 2) { total += i; }
	return total;
}`, 7) // 1 + 2 + 4
}
