package tasklang

// Constant folding: an AST-to-AST pass running after Check and before code
// generation. It evaluates operations whose operands are literals, using
// exactly the VM's semantics (Go int64 wrap-around, truncated division,
// IEEE floats, string concatenation), so folding is observationally
// invisible — the differential tests in differential_test.go pin this.
//
// Operations that would fault at runtime (integer division/modulo by zero)
// are left unfolded so programs keep their runtime fault behaviour.

// foldFile folds every function body in place.
func foldFile(f *File) {
	for _, fn := range f.Funcs {
		foldBlock(fn.Body)
	}
}

func foldBlock(b *BlockStmt) {
	for _, s := range b.Stmts {
		foldStmt(s)
	}
}

func foldStmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		foldBlock(s)
	case *VarStmt:
		if s.Init != nil {
			s.Init = foldExpr(s.Init)
		}
	case *AssignStmt:
		s.Target = foldExpr(s.Target)
		s.Value = foldExpr(s.Value)
	case *ExprStmt:
		s.X = foldExpr(s.X)
	case *IfStmt:
		s.Cond = foldExpr(s.Cond)
		foldBlock(s.Then)
		if s.Else != nil {
			foldStmt(s.Else)
		}
	case *WhileStmt:
		s.Cond = foldExpr(s.Cond)
		foldBlock(s.Body)
	case *ForStmt:
		if s.Init != nil {
			foldStmt(s.Init)
		}
		if s.Cond != nil {
			s.Cond = foldExpr(s.Cond)
		}
		if s.Post != nil {
			foldStmt(s.Post)
		}
		foldBlock(s.Body)
	case *ReturnStmt:
		if s.X != nil {
			s.X = foldExpr(s.X)
		}
	}
}

func foldExpr(e Expr) Expr {
	switch e := e.(type) {
	case *ArrLit:
		for i := range e.Elems {
			e.Elems[i] = foldExpr(e.Elems[i])
		}
		return e
	case *UnaryExpr:
		e.X = foldExpr(e.X)
		return foldUnary(e)
	case *BinaryExpr:
		e.L = foldExpr(e.L)
		e.R = foldExpr(e.R)
		return foldBinary(e)
	case *CallExpr:
		for i := range e.Args {
			e.Args[i] = foldExpr(e.Args[i])
		}
		return e
	case *IndexExpr:
		e.X = foldExpr(e.X)
		e.I = foldExpr(e.I)
		return e
	case *LenExpr:
		e.X = foldExpr(e.X)
		if s, ok := e.X.(*StrLit); ok {
			return &IntLit{Pos: e.Pos, V: int64(len(s.V))}
		}
		return e
	case *PushExpr:
		e.X = foldExpr(e.X)
		e.V = foldExpr(e.V)
		return e
	default:
		return e
	}
}

func foldUnary(e *UnaryExpr) Expr {
	switch x := e.X.(type) {
	case *IntLit:
		if e.Op == TokMinus {
			return &IntLit{Pos: e.Pos, V: -x.V}
		}
	case *FloatLit:
		if e.Op == TokMinus {
			return &FloatLit{Pos: e.Pos, V: -x.V}
		}
	case *BoolLit:
		if e.Op == TokBang {
			return &BoolLit{Pos: e.Pos, V: !x.V}
		}
	}
	return e
}

func foldBinary(e *BinaryExpr) Expr {
	// Short-circuit folding needs only the left operand. Dropping the
	// unevaluated right side matches runtime semantics exactly (it would
	// not have executed).
	if e.Op == TokAndAnd || e.Op == TokOrOr {
		if l, ok := e.L.(*BoolLit); ok {
			if (e.Op == TokAndAnd && !l.V) || (e.Op == TokOrOr && l.V) {
				return &BoolLit{Pos: e.Pos, V: l.V}
			}
			return e.R
		}
		return e
	}

	switch l := e.L.(type) {
	case *IntLit:
		if r, ok := e.R.(*IntLit); ok {
			return foldIntInt(e, l.V, r.V)
		}
		if r, ok := e.R.(*FloatLit); ok {
			return foldFloatFloat(e, float64(l.V), r.V)
		}
	case *FloatLit:
		if r, ok := e.R.(*FloatLit); ok {
			return foldFloatFloat(e, l.V, r.V)
		}
		if r, ok := e.R.(*IntLit); ok {
			return foldFloatFloat(e, l.V, float64(r.V))
		}
	case *StrLit:
		if r, ok := e.R.(*StrLit); ok {
			return foldStrStr(e, l.V, r.V)
		}
	case *BoolLit:
		if r, ok := e.R.(*BoolLit); ok {
			switch e.Op {
			case TokEq:
				return &BoolLit{Pos: e.Pos, V: l.V == r.V}
			case TokNe:
				return &BoolLit{Pos: e.Pos, V: l.V != r.V}
			}
		}
	}
	return e
}

func foldIntInt(e *BinaryExpr, l, r int64) Expr {
	switch e.Op {
	case TokPlus:
		return &IntLit{Pos: e.Pos, V: l + r}
	case TokMinus:
		return &IntLit{Pos: e.Pos, V: l - r}
	case TokStar:
		return &IntLit{Pos: e.Pos, V: l * r}
	case TokSlash:
		if r == 0 {
			return e // preserve the runtime fault
		}
		return &IntLit{Pos: e.Pos, V: l / r}
	case TokPercent:
		if r == 0 {
			return e
		}
		return &IntLit{Pos: e.Pos, V: l % r}
	case TokEq:
		return &BoolLit{Pos: e.Pos, V: l == r}
	case TokNe:
		return &BoolLit{Pos: e.Pos, V: l != r}
	case TokLt:
		return &BoolLit{Pos: e.Pos, V: l < r}
	case TokLe:
		return &BoolLit{Pos: e.Pos, V: l <= r}
	case TokGt:
		return &BoolLit{Pos: e.Pos, V: l > r}
	case TokGe:
		return &BoolLit{Pos: e.Pos, V: l >= r}
	}
	return e
}

func foldFloatFloat(e *BinaryExpr, l, r float64) Expr {
	switch e.Op {
	case TokPlus:
		return &FloatLit{Pos: e.Pos, V: l + r}
	case TokMinus:
		return &FloatLit{Pos: e.Pos, V: l - r}
	case TokStar:
		return &FloatLit{Pos: e.Pos, V: l * r}
	case TokSlash:
		// IEEE division by zero is defined (±Inf/NaN), identical in the
		// VM, so folding is safe.
		return &FloatLit{Pos: e.Pos, V: l / r}
	case TokEq:
		return &BoolLit{Pos: e.Pos, V: l == r}
	case TokNe:
		return &BoolLit{Pos: e.Pos, V: l != r}
	case TokLt:
		return &BoolLit{Pos: e.Pos, V: l < r}
	case TokLe:
		return &BoolLit{Pos: e.Pos, V: l <= r}
	case TokGt:
		return &BoolLit{Pos: e.Pos, V: l > r}
	case TokGe:
		return &BoolLit{Pos: e.Pos, V: l >= r}
	}
	return e
}

func foldStrStr(e *BinaryExpr, l, r string) Expr {
	switch e.Op {
	case TokPlus:
		return &StrLit{Pos: e.Pos, V: l + r}
	case TokEq:
		return &BoolLit{Pos: e.Pos, V: l == r}
	case TokNe:
		return &BoolLit{Pos: e.Pos, V: l != r}
	case TokLt:
		return &BoolLit{Pos: e.Pos, V: l < r}
	case TokLe:
		return &BoolLit{Pos: e.Pos, V: l <= r}
	case TokGt:
		return &BoolLit{Pos: e.Pos, V: l > r}
	case TokGe:
		return &BoolLit{Pos: e.Pos, V: l >= r}
	}
	return e
}
