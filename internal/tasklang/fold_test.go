package tasklang

import (
	"strings"
	"testing"

	"repro/internal/tvm"
)

// instrCount compiles src and returns main's instruction count excluding
// the implicit trailing ret0 every function body gets.
func instrCount(t *testing.T, src string) int {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return len(prog.EntryFunc().Code) - 1
}

func TestFoldIntArithmetic(t *testing.T) {
	// 2 + 3 * 4 folds to a single push.
	n := instrCount(t, `func main() int { return 2 + 3 * 4; }`)
	if n != 2 { // pushi 14; ret
		t.Fatalf("instructions = %d, want 2 (folded)", n)
	}
	wantInt(t, `func main() int { return 2 + 3 * 4; }`, 14)
}

func TestFoldPreservesDivByZeroFault(t *testing.T) {
	prog, err := Compile(`func main() int { return 1 / 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tvm.New(prog, tvm.DefaultConfig()).Run()
	f, ok := tvm.AsFault(err)
	if !ok || f.Code != tvm.FaultDivByZero {
		t.Fatalf("folded away a runtime fault: %v", err)
	}
	if _, err := Compile(`func main() int { return 5 % 0; }`); err != nil {
		t.Fatalf("mod-by-zero must still compile: %v", err)
	}
}

func TestFoldFloatDivByZeroIsIEEE(t *testing.T) {
	res := evalTCL(t, `func main() float { return 1.0 / 0.0; }`)
	if res.Return.F <= 0 || res.Return.F == res.Return.F-1 {
		// +Inf check without importing math: Inf-1 == Inf.
	}
	if got := res.Return.String(); got != "+Inf" {
		t.Fatalf("1.0/0.0 = %s", got)
	}
}

func TestFoldComparisonsAndLogic(t *testing.T) {
	// The whole condition folds to true; only the then-branch remains
	// reachable, and the condition costs nothing at runtime.
	src := `func main() int { if (3 < 5 && "a" != "b" || false) { return 1; } return 0; }`
	wantInt(t, src, 1)
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	if strings.Contains(dis, "lt") || strings.Contains(dis, "pushc") {
		t.Fatalf("condition not folded:\n%s", dis)
	}
}

func TestFoldShortCircuitDropsRightSide(t *testing.T) {
	// `false && boom()` folds to false without ever compiling the call.
	prog, err := Compile(`
func boom() bool { return 1 / 0 == 0; }
func main() int {
	if (false && boom()) { return 1; }
	return 2;
}`)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	// main must not contain a call instruction.
	mainDis := dis[:strings.Index(dis, "func boom")]
	if strings.Contains(mainDis, "call 1") {
		t.Fatalf("short-circuit not folded:\n%s", mainDis)
	}
	wantInt(t, `
func boom() bool { return 1 / 0 == 0; }
func main() int {
	if (false && boom()) { return 1; }
	return 2;
}`, 2)
}

func TestFoldTrueAndKeepsRightSide(t *testing.T) {
	// `true && f()` must still evaluate f (for its value).
	wantInt(t, `
func f() bool { emit(1); return true; }
func main() int {
	if (true && f()) { return 1; }
	return 0;
}`, 1)
	res := evalTCL(t, `
func f() bool { emit(1); return true; }
func main() int {
	if (true && f()) { return 1; }
	return 0;
}`)
	if len(res.Emitted) != 1 {
		t.Fatal("folding true&&f() dropped f's side effects")
	}
}

func TestFoldStringConcat(t *testing.T) {
	prog, err := Compile(`func main() str { return "a" + "b" + "c"; }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Consts) != 1 || prog.Consts[0].S != "abc" {
		t.Fatalf("consts = %v, want single folded \"abc\"", prog.Consts)
	}
}

func TestFoldLenOfStringLiteral(t *testing.T) {
	n := instrCount(t, `func main() int { return len("hello"); }`)
	if n != 2 {
		t.Fatalf("instructions = %d, want 2", n)
	}
	wantInt(t, `func main() int { return len("hello"); }`, 5)
}

func TestFoldUnary(t *testing.T) {
	wantInt(t, `func main() int { return -(3 + 4); }`, -7)
	n := instrCount(t, `func main() int { return -(3 + 4); }`)
	if n != 2 {
		t.Fatalf("instructions = %d, want 2", n)
	}
	wantInt(t, `func main() int { if (!false) { return 1; } return 0; }`, 1)
}

func TestFoldWrapAroundMatchesVM(t *testing.T) {
	// Literal overflow folds with Go's wrap-around — the same the VM does.
	src := `func main() int { return 9223372036854775807 + 1; }`
	res := evalTCL(t, src)
	if res.Return.I != -9223372036854775808 {
		t.Fatalf("wrap = %s", res.Return)
	}
}

func TestFoldMixedIntFloat(t *testing.T) {
	res := evalTCL(t, `func main() float { return 1 + 2.5; }`)
	if res.Return.Kind != tvm.KindFloat || res.Return.F != 3.5 {
		t.Fatalf("= %s", res.Return)
	}
	res = evalTCL(t, `func main() bool { return 2 == 2.0; }`)
	if !res.Return.AsBool() {
		t.Fatalf("2 == 2.0 folded to %s", res.Return)
	}
}

func TestFoldInsideControlFlowAndCalls(t *testing.T) {
	wantInt(t, `
func f(x int) int { return x; }
func main() int {
	var total int = 0;
	for (var i int = 0 * 5; i < 2 + 1; i = i + (3 - 2)) {
		total = total + f(10 / 2);
	}
	return total;
}`, 15)
}
