package tasklang

import (
	"fmt"
	"math"

	"repro/internal/tvm"
)

// Compile parses, checks and compiles TCL source into a validated TVM
// program whose entry point is the function named "main".
func Compile(src string) (*tvm.Program, error) {
	return CompileEntry(src, "main")
}

// CompileEntry compiles src selecting the named function as entry point.
func CompileEntry(src, entry string) (*tvm.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(file); err != nil {
		return nil, err
	}
	foldFile(file)
	cg := &codegen{file: file, constIdx: map[constKey]int{}}
	prog, err := cg.generate(entry)
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("tasklang: generated invalid bytecode: %w", err)
	}
	// Build the fused fast-path stream up front so compiled programs are
	// immutable (and optimization cost is paid once) before they are shared
	// with concurrently running VMs.
	prog.Optimize()
	return prog, nil
}

// constKey identifies a pool constant for deduplication.
type constKey struct {
	kind tvm.Kind
	i    int64
	f    float64
	s    string
}

// codegen emits TVM bytecode from a checked AST.
type codegen struct {
	file     *File
	prog     tvm.Program
	constIdx map[constKey]int

	// Per-function state.
	code       []tvm.Instr
	breakPatch []int // instruction indexes of pending break jumps
	contPatch  []int // instruction indexes of pending continue jumps
	loopMark   []int // stack of patch-list lengths at loop entry
}

func (g *codegen) generate(entry string) (*tvm.Program, error) {
	entryIdx := -1
	for i, fn := range g.file.Funcs {
		if fn.Name == entry {
			entryIdx = i
		}
		g.code = nil
		if err := g.stmtList(fn.Body.Stmts); err != nil {
			return nil, err
		}
		// Implicit return for functions that fall off the end.
		g.emit(tvm.OpReturn0, 0)
		g.prog.Funcs = append(g.prog.Funcs, tvm.FuncProto{
			Name:      fn.Name,
			NumParams: len(fn.Params),
			NumLocals: g.file.locals[fn.Name],
			Code:      g.code,
		})
	}
	if entryIdx < 0 {
		return nil, errorf(Pos{1, 1}, "entry function %q not found", entry)
	}
	g.prog.Entry = entryIdx
	return &g.prog, nil
}

func (g *codegen) emit(op tvm.Op, arg int32) int {
	g.code = append(g.code, tvm.Instr{Op: op, Arg: arg})
	return len(g.code) - 1
}

// patch sets the jump target of the instruction at idx to the current pc.
func (g *codegen) patch(idx int) { g.code[idx].Arg = int32(len(g.code)) }

func (g *codegen) constant(v tvm.Value) int32 {
	key := constKey{kind: v.Kind, i: v.I, f: v.F, s: v.S}
	if idx, ok := g.constIdx[key]; ok {
		return int32(idx)
	}
	g.prog.Consts = append(g.prog.Consts, v)
	idx := len(g.prog.Consts) - 1
	g.constIdx[key] = idx
	return int32(idx)
}

func (g *codegen) stmtList(stmts []Stmt) error {
	for _, s := range stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return g.stmtList(s.Stmts)

	case *VarStmt:
		if s.Init != nil {
			if err := g.expr(s.Init); err != nil {
				return err
			}
		} else {
			g.emitZero(s.DeclType)
		}
		g.emit(tvm.OpStoreLocal, int32(s.Slot))
		return nil

	case *AssignStmt:
		switch target := s.Target.(type) {
		case *IdentExpr:
			if err := g.expr(s.Value); err != nil {
				return err
			}
			g.emit(tvm.OpStoreLocal, int32(target.Slot))
		case *IndexExpr:
			if err := g.expr(target.X); err != nil {
				return err
			}
			if err := g.expr(target.I); err != nil {
				return err
			}
			if err := g.expr(s.Value); err != nil {
				return err
			}
			g.emit(tvm.OpSetIndex, 0)
		}
		return nil

	case *ExprStmt:
		if err := g.expr(s.X); err != nil {
			return err
		}
		g.emit(tvm.OpPop, 0)
		return nil

	case *IfStmt:
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		jz := g.emit(tvm.OpJumpIfFalse, 0)
		if err := g.stmtList(s.Then.Stmts); err != nil {
			return err
		}
		if s.Else == nil {
			g.patch(jz)
			return nil
		}
		jend := g.emit(tvm.OpJump, 0)
		g.patch(jz)
		if err := g.stmt(s.Else); err != nil {
			return err
		}
		g.patch(jend)
		return nil

	case *WhileStmt:
		head := len(g.code)
		if err := g.expr(s.Cond); err != nil {
			return err
		}
		jz := g.emit(tvm.OpJumpIfFalse, 0)
		g.enterLoop()
		if err := g.stmtList(s.Body.Stmts); err != nil {
			return err
		}
		g.emit(tvm.OpJump, int32(head))
		g.patch(jz)
		g.exitLoop(len(g.code), head)
		return nil

	case *ForStmt:
		if s.Init != nil {
			if err := g.stmt(s.Init); err != nil {
				return err
			}
		}
		head := len(g.code)
		jz := -1
		if s.Cond != nil {
			if err := g.expr(s.Cond); err != nil {
				return err
			}
			jz = g.emit(tvm.OpJumpIfFalse, 0)
		}
		g.enterLoop()
		if err := g.stmtList(s.Body.Stmts); err != nil {
			return err
		}
		post := len(g.code)
		if s.Post != nil {
			if err := g.stmt(s.Post); err != nil {
				return err
			}
		}
		g.emit(tvm.OpJump, int32(head))
		if jz >= 0 {
			g.patch(jz)
		}
		g.exitLoop(len(g.code), post)
		return nil

	case *ReturnStmt:
		if s.X == nil {
			g.emit(tvm.OpReturn0, 0)
			return nil
		}
		if err := g.expr(s.X); err != nil {
			return err
		}
		g.emit(tvm.OpReturn, 0)
		return nil

	case *BreakStmt:
		g.breakPatch = append(g.breakPatch, g.emit(tvm.OpJump, 0))
		return nil
	case *ContinueStmt:
		g.contPatch = append(g.contPatch, g.emit(tvm.OpJump, 0))
		return nil
	default:
		return errorf(s.stmtPos(), "internal: cannot compile statement %T", s)
	}
}

// enterLoop marks the start of a loop's break/continue patch regions.
func (g *codegen) enterLoop() {
	g.loopMark = append(g.loopMark, len(g.breakPatch), len(g.contPatch))
}

// exitLoop patches break jumps to breakTarget and continue jumps to
// contTarget for the innermost loop.
func (g *codegen) exitLoop(breakTarget, contTarget int) {
	cm := g.loopMark[len(g.loopMark)-1]
	bm := g.loopMark[len(g.loopMark)-2]
	g.loopMark = g.loopMark[:len(g.loopMark)-2]
	for _, idx := range g.breakPatch[bm:] {
		g.code[idx].Arg = int32(breakTarget)
	}
	g.breakPatch = g.breakPatch[:bm]
	for _, idx := range g.contPatch[cm:] {
		g.code[idx].Arg = int32(contTarget)
	}
	g.contPatch = g.contPatch[:cm]
}

// emitZero pushes the zero value for a declared type.
func (g *codegen) emitZero(t Type) {
	switch t {
	case TInt:
		g.emit(tvm.OpPushInt, 0)
	case TFloat:
		g.emit(tvm.OpPushConst, g.constant(tvm.Float(0)))
	case TBool:
		g.emit(tvm.OpPushFalse, 0)
	case TStr:
		g.emit(tvm.OpPushConst, g.constant(tvm.Str("")))
	case TArr:
		g.emit(tvm.OpNewArray, 0)
	default:
		g.emit(tvm.OpPushNil, 0)
	}
}

func (g *codegen) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		if e.V >= math.MinInt32 && e.V <= math.MaxInt32 {
			g.emit(tvm.OpPushInt, int32(e.V))
		} else {
			g.emit(tvm.OpPushConst, g.constant(tvm.Int(e.V)))
		}
		return nil
	case *FloatLit:
		g.emit(tvm.OpPushConst, g.constant(tvm.Float(e.V)))
		return nil
	case *BoolLit:
		if e.V {
			g.emit(tvm.OpPushTrue, 0)
		} else {
			g.emit(tvm.OpPushFalse, 0)
		}
		return nil
	case *StrLit:
		g.emit(tvm.OpPushConst, g.constant(tvm.Str(e.V)))
		return nil

	case *ArrLit:
		for _, el := range e.Elems {
			if err := g.expr(el); err != nil {
				return err
			}
		}
		g.emit(tvm.OpNewArray, int32(len(e.Elems)))
		return nil

	case *IdentExpr:
		g.emit(tvm.OpLoadLocal, int32(e.Slot))
		return nil

	case *UnaryExpr:
		if err := g.expr(e.X); err != nil {
			return err
		}
		if e.Op == TokMinus {
			g.emit(tvm.OpNeg, 0)
		} else {
			g.emit(tvm.OpNot, 0)
		}
		return nil

	case *BinaryExpr:
		return g.binary(e)

	case *IndexExpr:
		if err := g.expr(e.X); err != nil {
			return err
		}
		if err := g.expr(e.I); err != nil {
			return err
		}
		g.emit(tvm.OpIndex, 0)
		return nil

	case *LenExpr:
		if err := g.expr(e.X); err != nil {
			return err
		}
		g.emit(tvm.OpLen, 0)
		return nil

	case *PushExpr:
		if err := g.expr(e.X); err != nil {
			return err
		}
		if err := g.expr(e.V); err != nil {
			return err
		}
		g.emit(tvm.OpAppend, 0)
		return nil

	case *CallExpr:
		for _, a := range e.Args {
			if err := g.expr(a); err != nil {
				return err
			}
		}
		if e.IsBuiltin {
			b, _ := tvm.BuiltinByName(e.Name)
			g.emit(tvm.OpCallB, int32(b)<<8|int32(len(e.Args)))
		} else {
			g.emit(tvm.OpCall, int32(e.FuncIndex))
		}
		return nil

	default:
		return errorf(e.exprPos(), "internal: cannot compile expression %T", e)
	}
}

func (g *codegen) binary(e *BinaryExpr) error {
	// Short-circuit logic.
	switch e.Op {
	case TokAndAnd:
		if err := g.expr(e.L); err != nil {
			return err
		}
		jz := g.emit(tvm.OpJumpIfFalse, 0)
		if err := g.expr(e.R); err != nil {
			return err
		}
		jend := g.emit(tvm.OpJump, 0)
		g.patch(jz)
		g.emit(tvm.OpPushFalse, 0)
		g.patch(jend)
		return nil
	case TokOrOr:
		if err := g.expr(e.L); err != nil {
			return err
		}
		jnz := g.emit(tvm.OpJumpIfTrue, 0)
		if err := g.expr(e.R); err != nil {
			return err
		}
		jend := g.emit(tvm.OpJump, 0)
		g.patch(jnz)
		g.emit(tvm.OpPushTrue, 0)
		g.patch(jend)
		return nil
	}

	if err := g.expr(e.L); err != nil {
		return err
	}
	if err := g.expr(e.R); err != nil {
		return err
	}
	ops := map[TokKind]tvm.Op{
		TokPlus:    tvm.OpAdd,
		TokMinus:   tvm.OpSub,
		TokStar:    tvm.OpMul,
		TokSlash:   tvm.OpDiv,
		TokPercent: tvm.OpMod,
		TokEq:      tvm.OpEq,
		TokNe:      tvm.OpNe,
		TokLt:      tvm.OpLt,
		TokLe:      tvm.OpLe,
		TokGt:      tvm.OpGt,
		TokGe:      tvm.OpGe,
	}
	op, ok := ops[e.Op]
	if !ok {
		return errorf(e.Pos, "internal: unknown binary operator %s", e.Op)
	}
	g.emit(op, 0)
	return nil
}
