package tasklang

import (
	"strconv"

	"repro/internal/tvm"
)

func parseInt64(s string) (int64, error)     { return strconv.ParseInt(s, 10, 64) }
func parseFloat64(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// builtinRets gives static return types for builtins where they are fixed;
// anything absent defaults to TAny and is checked at runtime by the VM.
var builtinRets = map[string]Type{
	"sqrt": TFloat, "sin": TFloat, "cos": TFloat, "log": TFloat, "exp": TFloat,
	"floor": TFloat, "ceil": TFloat, "pow": TFloat,
	"int": TInt, "float": TFloat, "str": TStr,
	"ord": TInt, "chr": TStr, "substr": TStr, "split": TArr,
	"lower": TStr, "upper": TStr, "find": TInt,
	"rand": TFloat, "randint": TInt,
	"parseint": TInt, "parsefloat": TFloat, "hash": TInt,
	"emit": TVoid, "print": TVoid, "abort": TVoid,
	"abs": TAny, "min": TAny, "max": TAny,
}

// varInfo is one declared variable within a scope.
type varInfo struct {
	slot int
	typ  Type
}

// checker performs semantic analysis: scoping, slot allocation, arity and
// type checking. It mutates resolution fields in the AST (slots, function
// indexes) that the code generator consumes.
type checker struct {
	file    *File
	funcIdx map[string]int

	// Per-function state.
	fn        *FuncDecl
	scopes    []map[string]*varInfo
	nextSlot  int
	maxSlots  int
	loopDepth int
}

// Check runs semantic analysis over a parsed file.
func Check(f *File) error {
	c := &checker{file: f, funcIdx: make(map[string]int, len(f.Funcs))}
	for i, fn := range f.Funcs {
		if _, dup := c.funcIdx[fn.Name]; dup {
			return errorf(fn.Pos, "function %q redeclared", fn.Name)
		}
		if _, isBuiltin := tvm.BuiltinByName(fn.Name); isBuiltin || fn.Name == "len" || fn.Name == "push" {
			return errorf(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		c.funcIdx[fn.Name] = i
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.scopes = c.scopes[:0]
	c.nextSlot = 0
	c.maxSlots = 0
	c.loopDepth = 0
	c.pushScope()
	defer c.popScope()
	for _, p := range fn.Params {
		if _, err := c.declare(p.Pos, p.Name, p.Type); err != nil {
			return err
		}
	}
	if err := c.checkBlock(fn.Body, false); err != nil {
		return err
	}
	if c.file.locals == nil {
		c.file.locals = map[string]int{}
	}
	c.file.locals[fn.Name] = c.maxSlots
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*varInfo{}) }

func (c *checker) popScope() {
	top := c.scopes[len(c.scopes)-1]
	// Slots of the departing scope are recycled for sibling scopes.
	c.nextSlot -= len(top)
	c.scopes = c.scopes[:len(c.scopes)-1]
}

func (c *checker) declare(pos Pos, name string, t Type) (*varInfo, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, errorf(pos, "%q redeclared in this scope", name)
	}
	v := &varInfo{slot: c.nextSlot, typ: t}
	c.nextSlot++
	if c.nextSlot > c.maxSlots {
		c.maxSlots = c.nextSlot
	}
	top[name] = v
	return v, nil
}

func (c *checker) lookup(name string) (*varInfo, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// checkBlock checks the statements of b in a fresh scope. ownScope=false is
// used for function bodies whose scope (holding the parameters) is already
// open.
func (c *checker) checkBlock(b *BlockStmt, ownScope bool) error {
	if ownScope {
		c.pushScope()
		defer c.popScope()
	}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s, true)

	case *VarStmt:
		declType := s.Type
		if s.Init != nil {
			it, err := c.checkValueExpr(s.Init)
			if err != nil {
				return err
			}
			if s.HasType {
				if !assignable(s.Type, it) {
					return errorf(s.Pos, "cannot initialize %s variable %q with %s value", s.Type, s.Name, it)
				}
			} else {
				declType = it
			}
		}
		v, err := c.declare(s.Pos, s.Name, declType)
		if err != nil {
			return err
		}
		s.Slot = v.slot
		s.DeclType = declType
		return nil

	case *AssignStmt:
		vt, err := c.checkValueExpr(s.Value)
		if err != nil {
			return err
		}
		switch target := s.Target.(type) {
		case *IdentExpr:
			v, ok := c.lookup(target.Name)
			if !ok {
				return errorf(target.Pos, "undefined variable %q", target.Name)
			}
			target.Slot = v.slot
			if !assignable(v.typ, vt) {
				return errorf(s.Pos, "cannot assign %s value to %s variable %q", vt, v.typ, target.Name)
			}
		case *IndexExpr:
			xt, err := c.checkValueExpr(target.X)
			if err != nil {
				return err
			}
			if xt != TArr && xt != TAny {
				return errorf(target.Pos, "cannot assign into %s (only arr elements are assignable)", xt)
			}
			it, err := c.checkValueExpr(target.I)
			if err != nil {
				return err
			}
			if it != TInt && it != TAny {
				return errorf(target.Pos, "index must be int, got %s", it)
			}
		default:
			return errorf(s.Pos, "invalid assignment target")
		}
		return nil

	case *ExprStmt:
		_, err := c.checkExpr(s.X) // void allowed here
		return err

	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then, true); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil

	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(s.Body, true)

	case *ForStmt:
		// The init declaration scopes over cond, post and body.
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(s.Body, true)

	case *ReturnStmt:
		if s.X == nil {
			if c.fn.Ret != TVoid {
				return errorf(s.Pos, "function %q must return a %s value", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		if c.fn.Ret == TVoid {
			return errorf(s.Pos, "function %q is void and cannot return a value", c.fn.Name)
		}
		t, err := c.checkValueExpr(s.X)
		if err != nil {
			return err
		}
		if !assignable(c.fn.Ret, t) {
			return errorf(s.Pos, "function %q returns %s, cannot return %s", c.fn.Name, c.fn.Ret, t)
		}
		return nil

	case *BreakStmt:
		if c.loopDepth == 0 {
			return errorf(s.Pos, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errorf(s.Pos, "continue outside a loop")
		}
		return nil
	default:
		return errorf(s.stmtPos(), "internal: unknown statement")
	}
}

// checkCond checks a boolean condition expression.
func (c *checker) checkCond(e Expr) error {
	t, err := c.checkValueExpr(e)
	if err != nil {
		return err
	}
	if t != TBool && t != TAny {
		return errorf(e.exprPos(), "condition must be bool, got %s", t)
	}
	return nil
}

// checkValueExpr checks e and rejects void.
func (c *checker) checkValueExpr(e Expr) (Type, error) {
	t, err := c.checkExpr(e)
	if err != nil {
		return TAny, err
	}
	if t == TVoid {
		return TAny, errorf(e.exprPos(), "void value used as an expression")
	}
	return t, nil
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return TInt, nil
	case *FloatLit:
		return TFloat, nil
	case *BoolLit:
		return TBool, nil
	case *StrLit:
		return TStr, nil

	case *ArrLit:
		for _, el := range e.Elems {
			if _, err := c.checkValueExpr(el); err != nil {
				return TAny, err
			}
		}
		return TArr, nil

	case *IdentExpr:
		v, ok := c.lookup(e.Name)
		if !ok {
			return TAny, errorf(e.Pos, "undefined variable %q", e.Name)
		}
		e.Slot = v.slot
		return v.typ, nil

	case *UnaryExpr:
		t, err := c.checkValueExpr(e.X)
		if err != nil {
			return TAny, err
		}
		switch e.Op {
		case TokMinus:
			if t != TInt && t != TFloat && t != TAny {
				return TAny, errorf(e.Pos, "unary '-' wants a number, got %s", t)
			}
			return t, nil
		case TokBang:
			if t != TBool && t != TAny {
				return TAny, errorf(e.Pos, "'!' wants a bool, got %s", t)
			}
			return TBool, nil
		}
		return TAny, errorf(e.Pos, "internal: unknown unary operator")

	case *BinaryExpr:
		lt, err := c.checkValueExpr(e.L)
		if err != nil {
			return TAny, err
		}
		rt, err := c.checkValueExpr(e.R)
		if err != nil {
			return TAny, err
		}
		return c.binaryType(e, lt, rt)

	case *IndexExpr:
		xt, err := c.checkValueExpr(e.X)
		if err != nil {
			return TAny, err
		}
		it, err := c.checkValueExpr(e.I)
		if err != nil {
			return TAny, err
		}
		if it != TInt && it != TAny {
			return TAny, errorf(e.Pos, "index must be int, got %s", it)
		}
		switch xt {
		case TArr, TAny:
			return TAny, nil
		case TStr:
			return TInt, nil
		default:
			return TAny, errorf(e.Pos, "cannot index %s", xt)
		}

	case *LenExpr:
		t, err := c.checkValueExpr(e.X)
		if err != nil {
			return TAny, err
		}
		if t != TArr && t != TStr && t != TAny {
			return TAny, errorf(e.Pos, "len wants arr or str, got %s", t)
		}
		return TInt, nil

	case *PushExpr:
		xt, err := c.checkValueExpr(e.X)
		if err != nil {
			return TAny, err
		}
		if xt != TArr && xt != TAny {
			return TAny, errorf(e.Pos, "push wants an arr, got %s", xt)
		}
		if _, err := c.checkValueExpr(e.V); err != nil {
			return TAny, err
		}
		return TArr, nil

	case *CallExpr:
		for _, a := range e.Args {
			if _, err := c.checkValueExpr(a); err != nil {
				return TAny, err
			}
		}
		if idx, ok := c.funcIdx[e.Name]; ok {
			fn := c.file.Funcs[idx]
			if len(e.Args) != len(fn.Params) {
				return TAny, errorf(e.Pos, "%s wants %d arguments, got %d", e.Name, len(fn.Params), len(e.Args))
			}
			for i, a := range e.Args {
				at, _ := c.checkExpr(a) // already checked; re-derive the type
				if !assignable(fn.Params[i].Type, at) {
					return TAny, errorf(a.exprPos(), "argument %d of %s: cannot pass %s as %s",
						i+1, e.Name, at, fn.Params[i].Type)
				}
			}
			e.FuncIndex = idx
			return fn.Ret, nil
		}
		if b, ok := tvm.BuiltinByName(e.Name); ok {
			arity, _ := tvm.BuiltinArity(b)
			if len(e.Args) != arity {
				return TAny, errorf(e.Pos, "builtin %s wants %d arguments, got %d", e.Name, arity, len(e.Args))
			}
			e.IsBuiltin = true
			if rt, ok := builtinRets[e.Name]; ok {
				return rt, nil
			}
			return TAny, nil
		}
		return TAny, errorf(e.Pos, "undefined function %q", e.Name)

	default:
		return TAny, errorf(e.exprPos(), "internal: unknown expression")
	}
}

// binaryType computes the result type of a binary operation and rejects
// statically-known kind errors.
func (c *checker) binaryType(e *BinaryExpr, lt, rt Type) (Type, error) {
	isNum := func(t Type) bool { return t == TInt || t == TFloat || t == TAny }
	switch e.Op {
	case TokAndAnd, TokOrOr:
		if (lt != TBool && lt != TAny) || (rt != TBool && rt != TAny) {
			return TAny, errorf(e.Pos, "logical operator wants bool operands, got %s and %s", lt, rt)
		}
		return TBool, nil

	case TokEq, TokNe:
		return TBool, nil

	case TokLt, TokLe, TokGt, TokGe:
		ok := (isNum(lt) && isNum(rt)) ||
			(lt == TStr && (rt == TStr || rt == TAny)) ||
			(lt == TAny && rt == TStr)
		if !ok {
			return TAny, errorf(e.Pos, "cannot order %s and %s", lt, rt)
		}
		return TBool, nil

	case TokPlus:
		if lt == TStr && (rt == TStr || rt == TAny) {
			return TStr, nil
		}
		if rt == TStr && lt == TAny {
			return TStr, nil
		}
		if rt == TStr || lt == TStr {
			return TAny, errorf(e.Pos, "cannot add %s and %s", lt, rt)
		}
		fallthrough

	case TokMinus, TokStar, TokSlash:
		if !isNum(lt) || !isNum(rt) {
			return TAny, errorf(e.Pos, "arithmetic wants numbers, got %s and %s", lt, rt)
		}
		if lt == TInt && rt == TInt {
			return TInt, nil
		}
		if lt == TAny || rt == TAny {
			return TAny, nil
		}
		return TFloat, nil

	case TokPercent:
		if (lt != TInt && lt != TAny) || (rt != TInt && rt != TAny) {
			return TAny, errorf(e.Pos, "'%%' wants int operands, got %s and %s", lt, rt)
		}
		return TInt, nil
	}
	return TAny, errorf(e.Pos, "internal: unknown binary operator")
}

// assignable reports whether a value of type src may be stored where dst is
// expected. TCL has no implicit numeric conversions: int and float are
// distinct (convert explicitly with int()/float()); TAny bridges to
// everything and is checked at runtime.
func assignable(dst, src Type) bool {
	return dst == src || dst == TAny || src == TAny
}
