package tasklang

import (
	"testing"

	"repro/internal/tvm"
)

// FuzzCompile feeds arbitrary text through the whole pipeline. Invariants:
// the compiler never panics; anything it accepts produces bytecode that
// passes tvm validation, survives a marshal round trip, and can be executed
// under a small fuel budget without panicking.
func FuzzCompile(f *testing.F) {
	for _, src := range []string{
		"func main() int { return 1; }",
		"func main(a int, b int) int { return a % b; }",
		"func f() void { } func main() int { var x arr = [1,[2],\"s\"]; return len(x); }",
		"func main() float { return sqrt(2.0) * rand(); }",
		"func main() int { for (var i int = 0; i < 10; i = i + 1) { emit(i); } return 0; }",
		"func main() bool { return !(1 < 2) || true && false; }",
		"func main() str { return \"\\x41\\n\"; }",
		"/* comment */ func main() int { while (true) { break; } return 0; }",
		"func main() int { var xs arr = []; xs = push(xs, 1); return xs[0]; }",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("compiler emitted invalid bytecode: %v\nsource: %q", err, src)
		}
		data, err := prog.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var decoded tvm.Program
		if err := decoded.UnmarshalBinary(data); err != nil {
			t.Fatalf("round trip: %v\nsource: %q", err, src)
		}
		// Execute with tiny limits if the entry takes no parameters; any
		// fault is acceptable, any panic is a bug.
		if prog.EntryFunc().NumParams == 0 {
			cfg := tvm.Config{
				Fuel: 10_000, MaxStack: 1024, MaxCall: 64,
				MaxHeap: 4096, MaxEmit: 64, MaxPrint: 8, Seed: 1,
			}
			_, _ = tvm.New(prog, cfg).Run()
		}
	})
}
