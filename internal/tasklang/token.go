// Package tasklang implements the TCL ("Tasklet C-Like") compiler. TCL is
// the small, portable programming model of the Tasklet middleware: consumers
// write tasklets once in TCL, the compiler produces tvm bytecode, and every
// provider — whatever its platform — executes that bytecode identically.
//
// The pipeline is conventional: Lex → Parse → Check → Compile. All stages
// report errors with line/column positions; Compile returns a validated
// *tvm.Program.
package tasklang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokStr

	// Keywords.
	TokFunc
	TokVar
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue
	TokTrue
	TokFalse

	// Punctuation & operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemicolon
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokBang

	// Compound assignment.
	TokPlusAssign
	TokMinusAssign
	TokStarAssign
	TokSlashAssign
	TokPercentAssign
)

var tokNames = map[TokKind]string{
	TokEOF:           "EOF",
	TokIdent:         "identifier",
	TokInt:           "int literal",
	TokFloat:         "float literal",
	TokStr:           "string literal",
	TokFunc:          "'func'",
	TokVar:           "'var'",
	TokIf:            "'if'",
	TokElse:          "'else'",
	TokWhile:         "'while'",
	TokFor:           "'for'",
	TokReturn:        "'return'",
	TokBreak:         "'break'",
	TokContinue:      "'continue'",
	TokTrue:          "'true'",
	TokFalse:         "'false'",
	TokLParen:        "'('",
	TokRParen:        "')'",
	TokLBrace:        "'{'",
	TokRBrace:        "'}'",
	TokLBracket:      "'['",
	TokRBracket:      "']'",
	TokComma:         "','",
	TokSemicolon:     "';'",
	TokAssign:        "'='",
	TokPlus:          "'+'",
	TokMinus:         "'-'",
	TokStar:          "'*'",
	TokSlash:         "'/'",
	TokPercent:       "'%'",
	TokEq:            "'=='",
	TokNe:            "'!='",
	TokLt:            "'<'",
	TokLe:            "'<='",
	TokGt:            "'>'",
	TokGe:            "'>='",
	TokAndAnd:        "'&&'",
	TokOrOr:          "'||'",
	TokBang:          "'!'",
	TokPlusAssign:    "'+='",
	TokMinusAssign:   "'-='",
	TokStarAssign:    "'*='",
	TokSlashAssign:   "'/='",
	TokPercentAssign: "'%='",
}

// String returns a human-readable token-kind name for diagnostics.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"func":     TokFunc,
	"var":      TokVar,
	"if":       TokIf,
	"else":     TokElse,
	"while":    TokWhile,
	"for":      TokFor,
	"return":   TokReturn,
	"break":    TokBreak,
	"continue": TokContinue,
	"true":     TokTrue,
	"false":    TokFalse,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token. Text holds the raw lexeme for identifiers and
// literals (string literals are already unescaped).
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Error is a compile error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
