package tasklang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	ks := make([]TokKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`func main() int { return 1 + 2.5 * x; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokFunc, TokIdent, TokLParen, TokRParen, TokIdent, TokLBrace,
		TokReturn, TokInt, TokPlus, TokFloat, TokStar, TokIdent, TokSemicolon,
		TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`== != <= >= < > = && || ! % [ ] ,`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAssign, TokAndAnd,
		TokOrOr, TokBang, TokPercent, TokLBracket, TokRBracket, TokComma, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex(`if iff while whiles true truex`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokIf, TokIdent, TokWhile, TokIdent, TokTrue, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
x /* block
   comment */ y
`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := Lex("/* never closed"); err == nil {
		t.Fatal("unterminated block comment accepted")
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind TokKind
		text string
	}{
		{"0", TokInt, "0"},
		{"12345", TokInt, "12345"},
		{"1.5", TokFloat, "1.5"},
		{"0.25", TokFloat, "0.25"},
		{"1e3", TokFloat, "1e3"},
		{"2.5e-2", TokFloat, "2.5e-2"},
		{"1E+6", TokFloat, "1E+6"},
	}
	for _, tc := range tests {
		toks, err := Lex(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if toks[0].Kind != tc.kind || toks[0].Text != tc.text {
			t.Errorf("%s -> %s %q, want %s %q", tc.src, toks[0].Kind, toks[0].Text, tc.kind, tc.text)
		}
	}
}

func TestLexDotWithoutDigitsIsNotFloat(t *testing.T) {
	// "1." is an int followed by an error (no '.' token in TCL).
	if _, err := Lex("1."); err == nil {
		t.Fatal("expected error for '1.'")
	}
}

func TestLexNumberThenIdentRejected(t *testing.T) {
	if _, err := Lex("12abc"); err == nil {
		t.Fatal("expected error for '12abc'")
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\n\t\"\\\x41"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\n\t\"\\A" {
		t.Fatalf("escapes = %q", toks[0].Text)
	}
}

func TestLexStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"newline\n\"", `"\q"`, `"\x4"`, `"\xzz"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("accepted bad string %q", src)
		}
	}
}

func TestLexSingleAmpRejected(t *testing.T) {
	_, err := Lex("a & b")
	if err == nil || !strings.Contains(err.Error(), "&&") {
		t.Fatalf("want hint about '&&', got %v", err)
	}
	if _, err := Lex("a | b"); err == nil {
		t.Fatal("single '|' accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb\n\tccc")
	if err != nil {
		t.Fatal(err)
	}
	wantPos := []Pos{{1, 1}, {2, 3}, {3, 2}}
	for i, want := range wantPos {
		if toks[i].Pos != want {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, want)
		}
	}
}

func TestLexUnknownChar(t *testing.T) {
	_, err := Lex("a # b")
	if err == nil {
		t.Fatal("accepted '#'")
	}
	var cerr *Error
	if ok := asError(err, &cerr); !ok || cerr.Pos.Col != 3 {
		t.Fatalf("error position wrong: %v", err)
	}
}

func asError(err error, out **Error) bool {
	if e, ok := err.(*Error); ok {
		*out = e
		return true
	}
	return false
}

func TestLexCompoundAssignOperators(t *testing.T) {
	toks, err := Lex(`+= -= *= /= %= + = %`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokPlusAssign, TokMinusAssign, TokStarAssign, TokSlashAssign,
		TokPercentAssign, TokPlus, TokAssign, TokPercent, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexSlashAssignVsComment(t *testing.T) {
	// "/=" must not be confused with the start of a comment.
	toks, err := Lex("a /= b // trailing")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokSlashAssign || len(toks) != 4 {
		t.Fatalf("toks = %v", kinds(toks))
	}
}
