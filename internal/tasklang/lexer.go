package tasklang

import (
	"strings"
)

// Lexer turns TCL source text into tokens. It is a classic hand-written
// scanner over the raw bytes; TCL source is ASCII (string literals may carry
// arbitrary bytes via escapes).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token stream terminated by
// an EOF token, or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// skipSpace consumes whitespace and comments (// to end of line, /* */).
func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isDigit(c):
		return lx.number(pos)
	case isAlpha(c):
		return lx.identOrKeyword(pos)
	case c == '"':
		return lx.stringLit(pos)
	}
	lx.advance()
	two := func(next byte, ifTwo, ifOne TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: ifTwo, Pos: pos}
		}
		return Token{Kind: ifOne, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemicolon, Pos: pos}, nil
	case '+':
		return two('=', TokPlusAssign, TokPlus), nil
	case '-':
		return two('=', TokMinusAssign, TokMinus), nil
	case '*':
		return two('=', TokStarAssign, TokStar), nil
	case '/':
		return two('=', TokSlashAssign, TokSlash), nil
	case '%':
		return two('=', TokPercentAssign, TokPercent), nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	case '<':
		return two('=', TokLe, TokLt), nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Pos: pos}, nil
		}
		return Token{}, errorf(pos, "unexpected character '&' (did you mean '&&'?)")
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Pos: pos}, nil
		}
		return Token{}, errorf(pos, "unexpected character '|' (did you mean '||'?)")
	default:
		return Token{}, errorf(pos, "unexpected character %q", string(c))
	}
}

// number scans an int or float literal. Floats contain a '.' or exponent.
func (lx *Lexer) number(pos Pos) (Token, error) {
	var b strings.Builder
	isFloat := false
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		b.WriteByte(lx.advance())
	}
	if lx.peek() == '.' && isDigit(lx.peek2()) {
		isFloat = true
		b.WriteByte(lx.advance())
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			b.WriteByte(lx.advance())
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' {
		// Exponent must be followed by optional sign and digits.
		save := *lx
		b2 := b.String()
		var exp strings.Builder
		exp.WriteByte(lx.advance())
		if lx.peek() == '+' || lx.peek() == '-' {
			exp.WriteByte(lx.advance())
		}
		if !isDigit(lx.peek()) {
			*lx = save // not an exponent; restore
		} else {
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				exp.WriteByte(lx.advance())
			}
			isFloat = true
			return Token{Kind: TokFloat, Text: b2 + exp.String(), Pos: pos}, nil
		}
	}
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	if isAlpha(lx.peek()) {
		return Token{}, errorf(lx.pos(), "identifier cannot start immediately after a number")
	}
	return Token{Kind: kind, Text: b.String(), Pos: pos}, nil
}

func (lx *Lexer) identOrKeyword(pos Pos) (Token, error) {
	var b strings.Builder
	for lx.off < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
		b.WriteByte(lx.advance())
	}
	text := b.String()
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Text: text, Pos: pos}, nil
	}
	return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
}

// stringLit scans a double-quoted string with \n \t \r \\ \" \xNN escapes.
func (lx *Lexer) stringLit(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errorf(pos, "unterminated string literal")
		}
		c := lx.advance()
		switch c {
		case '"':
			return Token{Kind: TokStr, Text: b.String(), Pos: pos}, nil
		case '\n':
			return Token{}, errorf(pos, "newline in string literal")
		case '\\':
			if lx.off >= len(lx.src) {
				return Token{}, errorf(pos, "unterminated escape")
			}
			e := lx.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'x':
				if lx.off+1 >= len(lx.src) {
					return Token{}, errorf(lx.pos(), "truncated \\x escape")
				}
				hi, lo := hexVal(lx.advance()), hexVal(lx.advance())
				if hi < 0 || lo < 0 {
					return Token{}, errorf(lx.pos(), "invalid \\x escape")
				}
				b.WriteByte(byte(hi<<4 | lo))
			default:
				return Token{}, errorf(lx.pos(), "unknown escape '\\%s'", string(e))
			}
		default:
			b.WriteByte(c)
		}
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}
