package metrics

import (
	"sync"
	"testing"
)

func TestCounterShardMergesCells(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Shard(4)
	for i := 0; i < 4; i++ {
		c.Cell(i).Inc()
		c.Cell(i).Add(int64(i))
	}
	c.Cell(2).Add(-7) // negative deltas ignored on cells too
	want := int64(5 + 4 + 0 + 1 + 2 + 3)
	if got := c.Value(); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
	// Growing the cell set preserves existing stripes.
	c.Shard(8)
	if got := c.Value(); got != want {
		t.Fatalf("Value() after regrow = %d, want %d", got, want)
	}
}

func TestCounterShardConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cell := c.Cell(w)
			for i := 0; i < per; i++ {
				cell.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value() = %d, want %d", got, workers*per)
	}
}

func TestHistogramCellsMergeOnRead(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Shard(2)
	h.Cell(0).Observe(2)
	h.Cell(1).Observe(3)
	if got := h.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3", got)
	}
	if got := h.Sum(); got != 6 {
		t.Fatalf("Sum() = %g, want 6", got)
	}
	if got := h.Quantile(1); got != 3 {
		t.Fatalf("Max = %g, want 3", got)
	}
	// Reads drain cells; a second read must not double-count.
	if got := h.Count(); got != 3 {
		t.Fatalf("second Count() = %d, want 3", got)
	}
	h.Cell(0).Observe(10)
	if got := h.Count(); got != 4 {
		t.Fatalf("Count() after late observe = %d, want 4", got)
	}
	h.Reset()
	if got := h.Count(); got != 0 {
		t.Fatalf("Count() after Reset = %d, want 0", got)
	}
}
