package metrics

import "sync/atomic"

// This file implements lock-striped metric cells. A hot counter that many
// cores increment concurrently bounces one cache line between them; Shard
// splits the counter into per-caller cells (one per broker partition) that
// live on distinct cache lines, and Value sums base + cells on the (cold)
// read path. The exported Counter/Histogram API is unchanged — readers keep
// calling Value/Quantile/... on the parent and see the merged totals.

// CounterCell is one stripe of a sharded Counter. It is padded to a cache
// line so adjacent cells never false-share. Increments on a cell are folded
// into the parent's Value on read.
type CounterCell struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds one to the cell.
func (c *CounterCell) Inc() { c.v.Add(1) }

// Add adds delta to the cell. Negative deltas are ignored, matching
// Counter.Add's monotonicity contract.
func (c *CounterCell) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Shard ensures the counter has at least n cells. It is idempotent and safe
// to call concurrently; cells already handed out remain valid (growth copies
// cell pointers, never cell state).
func (c *Counter) Shard(n int) {
	for {
		cur := c.cells.Load()
		if cur != nil && len(*cur) >= n {
			return
		}
		var grown []*CounterCell
		if cur != nil {
			grown = append(grown, *cur...)
		}
		for len(grown) < n {
			grown = append(grown, &CounterCell{})
		}
		if c.cells.CompareAndSwap(cur, &grown) {
			return
		}
	}
}

// Cell returns stripe i, growing the cell set if needed.
func (c *Counter) Cell(i int) *CounterCell {
	c.Shard(i + 1)
	return (*c.cells.Load())[i]
}

// cellSum returns the total held in the stripes.
func (c *Counter) cellSum() int64 {
	cur := c.cells.Load()
	if cur == nil {
		return 0
	}
	var total int64
	for _, cell := range *cur {
		total += cell.v.Load()
	}
	return total
}

// Shard ensures the histogram has at least n cells. Each cell is itself a
// Histogram that observers record into without contending on the parent's
// mutex; parent read methods drain cell samples into the base sample set
// before answering, so totals and percentiles cover every stripe.
func (h *Histogram) Shard(n int) {
	h.mu.Lock()
	for len(h.cells) < n {
		h.cells = append(h.cells, &Histogram{})
	}
	h.mu.Unlock()
}

// Cell returns stripe i, growing the cell set if needed. Cells must not be
// sharded themselves.
func (h *Histogram) Cell(i int) *Histogram {
	h.mu.Lock()
	for len(h.cells) <= i {
		h.cells = append(h.cells, &Histogram{})
	}
	c := h.cells[i]
	h.mu.Unlock()
	return c
}

// drainCellsLocked moves every stripe's samples into the parent's sample
// set. Callers must hold h.mu. Observations racing with the drain simply
// land in their cell and are folded in by the next read.
func (h *Histogram) drainCellsLocked() {
	for _, c := range h.cells {
		c.mu.Lock()
		if len(c.vals) > 0 {
			h.vals = append(h.vals, c.vals...)
			h.sum += c.sum
			h.sorted = false
			c.vals = c.vals[:0]
			c.sum = 0
		}
		c.mu.Unlock()
	}
}
