// Package metrics provides the measurement plumbing used across the Tasklet
// middleware: counters, gauges, latency histograms with percentile queries,
// and printable series for the experiment harness.
//
// All types are safe for concurrent use unless documented otherwise, and all
// zero values are ready to use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use. Hot counters can be lock-striped with Shard/Cell (see striped.go);
// Value always returns the merged total.
type Counter struct {
	v     atomic.Int64
	cells atomic.Pointer[[]*CounterCell]
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Negative deltas are ignored so that the
// counter remains monotone.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count, including every stripe.
func (c *Counter) Value() int64 { return c.v.Load() + c.cellSum() }

// Gauge is an instantaneous value that can move in both directions. The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records observations and answers percentile queries. It keeps
// every observation (the experiment harness needs exact percentiles over at
// most a few million samples, so memory is not a concern). The zero value is
// ready to use.
type Histogram struct {
	mu     sync.Mutex
	sorted bool
	vals   []float64
	sum    float64
	// cells holds lock stripes (see striped.go); parent reads drain them.
	cells []*Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.vals = append(h.vals, v)
	h.sum += v
	h.sorted = false
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	h.drainCellsLocked()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	h.drainCellsLocked()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of the samples, or 0 for an empty
// histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	h.drainCellsLocked()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	return h.sum / float64(len(h.vals))
}

// ensureSortedLocked sorts the sample slice if needed. Callers must hold mu.
func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation, or 0 for an empty histogram. Out-of-range q is clamped.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	h.drainCellsLocked()
	defer h.mu.Unlock()
	n := len(h.vals)
	if n == 0 {
		return 0
	}
	h.ensureSortedLocked()
	if q <= 0 {
		return h.vals[0]
	}
	if q >= 1 {
		return h.vals[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.vals[lo]
	}
	frac := pos - float64(lo)
	return h.vals[lo]*(1-frac) + h.vals[hi]*frac
}

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Stddev returns the population standard deviation of the samples.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	h.drainCellsLocked()
	defer h.mu.Unlock()
	n := len(h.vals)
	if n == 0 {
		return 0
	}
	mean := h.sum / float64(n)
	var ss float64
	for _, v := range h.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range h.cells {
		c.Reset()
	}
	h.vals = h.vals[:0]
	h.sum = 0
	h.sorted = true
}

// Summary is an immutable snapshot of a histogram's distribution.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
	Stddev float64
}

// Snapshot computes a Summary of the current samples.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Min:    h.Min(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		Max:    h.Max(),
		Stddev: h.Stddev(),
	}
}

// String renders the summary in a fixed human-readable layout.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f sd=%.3f",
		s.Count, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max, s.Stddev)
}

// Series is an ordered collection of (x, y) points for one experiment curve,
// e.g. makespan versus provider count. It is not safe for concurrent use;
// experiments build series single-threaded after the measured phase.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Table renders one or more series that share an x-axis as an aligned text
// table, one row per x value, one column per series. Series with differing x
// values are merged on the union of x values; missing cells render as "-".
func Table(series ...*Series) string {
	if len(series) == 0 {
		return ""
	}
	// Union of x values, sorted.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)

	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", series[0].XLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.4g", x)
		for _, s := range series {
			y, ok := s.lookup(x)
			if ok {
				fmt.Fprintf(&b, " %16.4f", y)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders series sharing an x-axis as comma-separated values with a
// header row, suitable for plotting tools. Missing cells are empty.
func CSV(series ...*Series) string {
	if len(series) == 0 {
		return ""
	}
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)

	var b strings.Builder
	b.WriteString(csvField(series[0].XLabel))
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(csvField(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteByte(',')
			if y, ok := s.lookup(x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvField quotes a field if it contains a comma or quote.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func (s *Series) lookup(x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Registry is a named collection of metrics, used by long-running components
// (broker, providers) to expose their internals to tests and the harness.
// The zero value is ready to use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric in the registry as "name value" lines sorted by
// name, for debugging and golden tests.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
