package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-3)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10 (negative add ignored)", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Fatalf("empty histogram should report zeros: %+v", h.Snapshot())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {-1, 1}, {2, 100},
	}
	for _, tc := range tests {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	// Interleaving observations and quantile queries must stay correct
	// (the lazy sort must be invalidated).
	var h Histogram
	h.Observe(10)
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("max = %v, want 10", got)
	}
	h.Observe(5)
	if got := h.Quantile(0); got != 5 {
		t.Fatalf("min after second observe = %v, want 5", got)
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset histogram not empty: %+v", h.Snapshot())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("duration sample = %v ms, want 1.5", got)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			h.Observe(v)
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		lo, hi := h.Quantile(qa), h.Quantile(qb)
		return lo <= hi && h.Min() <= lo && hi <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestHistogramMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var h Histogram
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Clamp magnitude so that summation cannot overflow and skew the
			// mean outside [min, max]; the property targets ordinary samples.
			v = math.Mod(v, 1e12)
			h.Observe(v)
			n++
		}
		if n == 0 {
			return true
		}
		m := h.Mean()
		return m >= h.Min()-1e-6 && m <= h.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for j := 0; j < 500; j++ {
				h.Observe(r.Float64())
				if j%100 == 0 {
					_ = h.Quantile(0.9) // interleave reads
				}
			}
		}(int64(i))
	}
	wg.Wait()
	if got := h.Count(); got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}
}

func TestSeriesAppendAndTable(t *testing.T) {
	a := &Series{Name: "random", XLabel: "providers"}
	b := &Series{Name: "fastest", XLabel: "providers"}
	for _, n := range []float64{1, 2, 4} {
		a.Append(n, 100/n)
		b.Append(n, 80/n)
	}
	b.Append(8, 10) // extra x only in one series

	out := Table(a, b)
	if !strings.Contains(out, "providers") || !strings.Contains(out, "random") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 x values
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "-") {
		t.Fatalf("missing cell should render '-':\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	if got := Table(); got != "" {
		t.Fatalf("empty table = %q, want empty", got)
	}
}

func TestTableSortsX(t *testing.T) {
	s := &Series{Name: "y", XLabel: "x"}
	s.Append(4, 1)
	s.Append(1, 2)
	s.Append(2, 3)
	out := Table(s)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var xs []string
	for _, l := range lines[1:] {
		xs = append(xs, strings.Fields(l)[0])
	}
	if !sort.StringsAreSorted(xs) {
		t.Fatalf("x column not sorted: %v", xs)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	var r Registry
	c1 := r.Counter("a")
	c1.Inc()
	if got := r.Counter("a").Value(); got != 1 {
		t.Fatalf("registry counter not shared: %d", got)
	}
	h1 := r.Histogram("h")
	h1.Observe(3)
	if got := r.Histogram("h").Count(); got != 1 {
		t.Fatalf("registry histogram not shared: %d", got)
	}
	g1 := r.Gauge("g")
	g1.Set(9)
	if got := r.Gauge("g").Value(); got != 9 {
		t.Fatalf("registry gauge not shared: %d", got)
	}
}

func TestRegistryDump(t *testing.T) {
	var r Registry
	r.Counter("tasks.done").Add(3)
	r.Gauge("slots.free").Set(2)
	r.Histogram("latency").Observe(1)
	out := r.Dump()
	for _, want := range []string{"counter tasks.done 3", "gauge slots.free 2", "histogram latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(2)
	s := h.Snapshot().String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "mean=1.500") {
		t.Fatalf("unexpected summary string: %s", s)
	}
}

func TestCSVRendering(t *testing.T) {
	a := &Series{Name: "plain", XLabel: "x"}
	b := &Series{Name: `with "quote", comma`, XLabel: "x"}
	a.Append(1, 10)
	a.Append(2, 20)
	b.Append(1, 0.5)

	out := CSV(a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv = %q", out)
	}
	if lines[0] != `x,plain,"with ""quote"", comma"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,10,0.5" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20," { // missing cell empty
		t.Fatalf("row 2 = %q", lines[2])
	}
	if CSV() != "" {
		t.Fatal("empty CSV should be empty")
	}
}
