package lifecycle

import (
	"repro/internal/core"
	"repro/internal/memo"
)

// EventKind discriminates the bulk-applicable lifecycle events.
type EventKind uint8

// Bulk event kinds. Submit and Result are the two high-rate events — the
// ones batch wire frames carry in bursts; the low-rate events (ProviderLost,
// Deadline, Cancel) keep their dedicated methods.
const (
	EventSubmit EventKind = iota + 1
	EventResult
)

// Event is one element of a bulk Apply: either a tasklet submission or an
// attempt outcome. Result events get their Disposition written back in
// place, so the driver can settle slot accounting for the whole burst after
// one engine call.
type Event struct {
	Kind EventKind

	// EventSubmit fields (see Submit).
	Tasklet core.Tasklet
	Key     memo.Key
	HaveKey bool

	// EventResult input (see Result).
	Result core.Result
	// Disp is EventResult's output, written by Apply.
	Disp Disposition
}

// Apply feeds a burst of events through the engine under ONE effect-scratch
// reset and returns the concatenated effects, in event order. It is exactly
// equivalent to calling Submit/Result per event and concatenating their
// effects — the batch wire path and the per-frame path drive the same state
// transitions — but the driver pays one call, one effects walk, and one
// slice reset per burst instead of per event. Effects are valid until the
// next engine call, like every other event method.
func (e *Engine) Apply(evs []Event) []Effect {
	e.fx = e.fx[:0]
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case EventSubmit:
			e.submit(ev.Tasklet, ev.Key, ev.HaveKey)
		case EventResult:
			ev.Disp = e.result(ev.Result)
		}
	}
	return e.fx
}
