package lifecycle

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/tvm"
)

// fuzzWorld drives one Engine through an arbitrary event interleaving and
// checks the lifecycle invariants after every step:
//
//   - a tasklet is delivered exactly once, and never after being cancelled;
//   - attempt IDs are unique and monotonic;
//   - every CancelAttempt effect names an attempt the driver launched and
//     has not yet resolved;
//   - when every tasklet is finalized or cancelled and every outstanding
//     attempt has reported, the engine holds no records (nothing leaks).
type fuzzWorld struct {
	t   *testing.T
	e   *Engine
	now time.Duration

	nextTasklet core.TaskletID
	lastAttempt core.AttemptID

	// live tracks driver-side attempt state: which tasklet, which provider.
	live map[core.AttemptID]core.ProviderID

	// launchable holds tasklets with unrealized Launch effects, in order.
	launchable []core.TaskletID

	submitted int
	delivered map[core.TaskletID]bool
	cancelled map[core.TaskletID]bool
}

func (w *fuzzWorld) apply(fx []Effect) {
	for _, ef := range fx {
		switch ef.Kind {
		case EffectLaunch:
			// The tasklet may finalize later in this same batch (e.g. a
			// provider loss re-issues one attempt, then a second loss
			// exhausts the tracker); drivers purge such entries lazily, so
			// liveness is checked at realization time, not here.
			w.launchable = append(w.launchable, ef.Tasklet)
		case EffectCancelAttempt:
			if _, ok := w.live[ef.Attempt]; !ok {
				w.t.Fatalf("cancel effect for unknown attempt %d", ef.Attempt)
			}
		case EffectDeliver:
			tid := ef.Tasklet
			if w.delivered[tid] {
				w.t.Fatalf("tasklet %d delivered twice", tid)
			}
			if w.cancelled[tid] {
				w.t.Fatalf("tasklet %d delivered after cancellation", tid)
			}
			if ef.Final.Tasklet != tid {
				w.t.Fatalf("deliver for %d carries final of %d", tid, ef.Final.Tasklet)
			}
			w.delivered[tid] = true
		case EffectSetDeadline, EffectMemoStore, EffectCoalesced:
		default:
			w.t.Fatalf("unknown effect kind %v", ef.Kind)
		}
	}
}

// canonReturn is the deterministic "correct" value for a content key, so
// identical keys produce identical results (the purity contract memoization
// relies on).
func canonReturn(key uint64, tid core.TaskletID) tvm.Value {
	if key != 0 {
		return tvm.Int(int64(key) * 31)
	}
	return tvm.Int(int64(tid))
}

func FuzzLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 16, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 18, 2, 34, 2, 50, 6, 1})
	f.Add([]byte{0, 9, 1, 3, 66, 4, 0, 5, 0, 0, 25, 1, 6, 2, 2, 7})
	f.Add([]byte{0, 27, 0, 27, 0, 27, 1, 1, 1, 2, 3, 5, 3, 21, 2, 37})

	f.Fuzz(func(t *testing.T, data []byte) {
		w := &fuzzWorld{
			t: t,
			e: New(Options{
				Memo:        memo.New(memo.Config{}),
				Flights:     memo.NewFlightTable(nil, ""),
				MaxAttempts: 6,
			}),
			live:      map[core.AttemptID]core.ProviderID{},
			delivered: map[core.TaskletID]bool{},
			cancelled: map[core.TaskletID]bool{},
		}

		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		// pick returns the i-th (mod n) key of a map walked in insertion-
		// independent but deterministic order: smallest key plus offset scan.
		pickAttempt := func(sel byte) (core.AttemptID, core.ProviderID, bool) {
			if len(w.live) == 0 {
				return 0, 0, false
			}
			// Deterministic selection: walk IDs upward from 1 (attempt IDs
			// are small and dense in these runs).
			n := int(sel) % len(w.live)
			for aid := core.AttemptID(1); aid <= w.lastAttempt; aid++ {
				if pid, ok := w.live[aid]; ok {
					if n == 0 {
						return aid, pid, true
					}
					n--
				}
			}
			return 0, 0, false
		}

		for len(data) > 0 {
			op := next()
			switch op % 7 {
			case 0: // submit
				sel := next()
				w.nextTasklet++
				tid := w.nextTasklet
				qoc := core.QoC{}
				switch sel % 4 {
				case 1:
					qoc = core.QoC{Mode: core.QoCRedundant, Replicas: 2}
				case 2:
					qoc = core.QoC{Mode: core.QoCVoting, Replicas: 3}
				case 3:
					qoc = core.QoC{Deadline: time.Second, MaxRetries: 1}
				}
				if sel&64 != 0 {
					qoc.NoCache = true
				}
				var key memo.Key
				var haveKey bool
				if content := uint64(sel % 5); content != 0 {
					key, haveKey = memo.KeyFor(content, 1, nil)
				}
				w.submitted++
				w.apply(w.e.Submit(core.Tasklet{
					ID: tid, Job: 1, Index: int(tid) - 1, QoC: qoc, Fuel: 1000,
				}, key, haveKey))

			case 1: // realize one pending launch
				pid := core.ProviderID(next()%4 + 1)
				for len(w.launchable) > 0 {
					tid := w.launchable[0]
					w.launchable = w.launchable[1:]
					if !w.e.Live(tid) {
						continue // finalized while queued; drivers purge these
					}
					aid, ok := w.e.Launched(tid, pid)
					if !ok {
						t.Fatalf("Launched refused live tasklet %d", tid)
					}
					if aid <= w.lastAttempt {
						t.Fatalf("attempt ID %d not monotonic (last %d)", aid, w.lastAttempt)
					}
					w.lastAttempt = aid
					w.live[aid] = pid
					break
				}

			case 2: // attempt succeeds
				aid, pid, ok := pickAttempt(next())
				if !ok {
					continue
				}
				tl := w.e.Tasklet(taskletOf(w.e, aid))
				var key uint64
				if tl != nil {
					// Reconstruct the content key class from the tasklet's
					// index selector; exactness does not matter for the
					// invariants, only determinism per tasklet.
					key = uint64(tl.ID) % 5
				}
				delete(w.live, aid)
				_, fx := w.e.Result(core.Result{
					Attempt: aid, Provider: pid, Status: core.StatusOK,
					Return: canonReturn(key, taskletOf(w.e, aid)), FuelUsed: 500,
				})
				w.apply(fx)

			case 3: // attempt lost or faulted
				aid, pid, ok := pickAttempt(next())
				if !ok {
					continue
				}
				status := core.StatusLost
				if next()&1 == 1 {
					status = core.StatusFault
				}
				delete(w.live, aid)
				_, fx := w.e.Result(core.Result{Attempt: aid, Provider: pid, Status: status})
				w.apply(fx)

			case 4: // deadline fires for some tasklet
				sel := core.TaskletID(next())
				if sel == 0 || sel > w.nextTasklet {
					continue
				}
				expired, fx := w.e.Deadline(sel)
				if expired {
					w.apply(fx)
				} else if w.e.Live(sel) {
					t.Fatalf("deadline of live tasklet %d did not expire", sel)
				}

			case 5: // cancel some tasklet
				sel := core.TaskletID(next())
				if sel == 0 || sel > w.nextTasklet {
					continue
				}
				dropped, fx := w.e.Cancel(sel)
				if dropped {
					w.cancelled[sel] = true
					w.apply(fx)
				}

			case 6: // provider dies
				pid := core.ProviderID(next()%4 + 1)
				_, fx := w.e.ProviderLost(pid)
				for aid, p := range w.live {
					if p == pid {
						delete(w.live, aid)
					}
				}
				w.apply(fx)
			}
		}

		// Drain: resolve every remaining attempt, realizing any re-issues as
		// immediate losses too, then cancel whatever is still unfinished.
		for round := 0; round < 64; round++ {
			if len(w.live) == 0 && len(w.launchable) == 0 {
				break
			}
			for aid, pid := range w.live {
				delete(w.live, aid)
				_, fx := w.e.Result(core.Result{Attempt: aid, Provider: pid, Status: core.StatusLost})
				w.apply(fx)
			}
			for len(w.launchable) > 0 {
				tid := w.launchable[0]
				w.launchable = w.launchable[1:]
				if !w.e.Live(tid) {
					continue
				}
				if aid, ok := w.e.Launched(tid, 1); ok {
					w.lastAttempt = aid
					w.live[aid] = 1
				}
			}
		}
		for tid := core.TaskletID(1); tid <= w.nextTasklet; tid++ {
			if dropped, fx := w.e.Cancel(tid); dropped {
				w.cancelled[tid] = true
				w.apply(fx)
			}
		}

		// Terminal invariants: every tasklet reached exactly one outcome,
		// and the engine retains nothing.
		for tid := core.TaskletID(1); tid <= w.nextTasklet; tid++ {
			if w.delivered[tid] == w.cancelled[tid] {
				t.Fatalf("tasklet %d: delivered=%v cancelled=%v, want exactly one",
					tid, w.delivered[tid], w.cancelled[tid])
			}
		}
		if n := w.e.Pending(); n != 0 {
			t.Fatalf("%d tasklets leaked in the engine", n)
		}
		if n := w.e.InFlight(); n != len(w.live) {
			t.Fatalf("engine tracks %d attempts, driver %d", n, len(w.live))
		}
	})
}

// taskletOf looks up which tasklet an attempt belongs to via VisitAttempts
// (test-only helper; the driver normally knows from its own records).
func taskletOf(e *Engine, aid core.AttemptID) core.TaskletID {
	var tid core.TaskletID
	e.VisitAttempts(func(id core.AttemptID, t core.TaskletID, _ core.ProviderID, _ bool) {
		if id == aid {
			tid = t
		}
	})
	return tid
}
