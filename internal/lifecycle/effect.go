package lifecycle

import (
	"time"

	"repro/internal/core"
)

// EffectKind enumerates the side effects the engine asks its driver to
// perform. The engine itself never touches a socket, a timer, or a virtual
// clock: it returns effects and the driver executes them in order — the
// broker against wall clocks and wire connections, the simulator against its
// event heap.
type EffectKind uint8

const (
	// EffectLaunch asks the driver to queue one placement attempt for
	// Tasklet. Delay is zero for immediate launches; a positive Delay (lost
	// -attempt re-issue backoff) means the driver must wait that long —
	// checking Live first — before queueing.
	EffectLaunch EffectKind = iota + 1
	// EffectCancelAttempt asks the driver to send a best-effort cancellation
	// for Attempt to Provider. The engine has already marked the attempt
	// abandoned; its eventual result is accounted as wasted.
	EffectCancelAttempt
	// EffectDeliver hands the driver a tasklet's final result. Exactly one
	// Deliver is emitted per submitted tasklet unless it is cancelled via
	// Cancel. Attempts is the attempt count to report (0 for cache hits and
	// coalesced waiters); Submitted echoes the tasklet's submission time for
	// latency accounting.
	EffectDeliver
	// EffectSetDeadline asks the driver to arm a timer that calls
	// Engine.Deadline(Tasklet) after Delay.
	EffectSetDeadline
	// EffectMemoStore reports that the engine stored Tasklet's final in the
	// result cache (informational; the store already happened).
	EffectMemoStore
	// EffectCoalesced reports that Tasklet joined an identical in-flight
	// tasklet as a waiter (informational, for driver statistics).
	EffectCoalesced
)

// String returns the effect-kind name.
func (k EffectKind) String() string {
	switch k {
	case EffectLaunch:
		return "launch"
	case EffectCancelAttempt:
		return "cancel_attempt"
	case EffectDeliver:
		return "deliver"
	case EffectSetDeadline:
		return "set_deadline"
	case EffectMemoStore:
		return "memo_store"
	case EffectCoalesced:
		return "coalesced"
	default:
		return "effect(?)"
	}
}

// Effect is one instruction from the engine to its driver. Which fields are
// meaningful depends on Kind (see the kind constants). Effect slices returned
// by engine methods are valid until the next engine call; drivers that defer
// execution must copy the values they need.
type Effect struct {
	Kind    EffectKind
	Tasklet core.TaskletID

	// Attempt/Provider identify the target of EffectCancelAttempt.
	Attempt  core.AttemptID
	Provider core.ProviderID

	// Delay parameterizes EffectLaunch (re-issue backoff) and
	// EffectSetDeadline (time until expiry).
	Delay time.Duration

	// Final, Attempts, FromCache and Submitted belong to EffectDeliver.
	Final     core.Result
	Attempts  int
	FromCache bool
	Submitted time.Time
}
