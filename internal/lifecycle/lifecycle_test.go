package lifecycle

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/tvm"
)

func newMemoEngine(maxAttempts int, backoff time.Duration) *Engine {
	return New(Options{
		Memo:         memo.New(memo.Config{}),
		Flights:      memo.NewFlightTable(nil, ""),
		MaxAttempts:  maxAttempts,
		RetryBackoff: backoff,
	})
}

// countKind tallies effects of one kind.
func countKind(fx []Effect, k EffectKind) int {
	n := 0
	for _, ef := range fx {
		if ef.Kind == k {
			n++
		}
	}
	return n
}

// firstKind returns the first effect of kind k.
func firstKind(t *testing.T, fx []Effect, k EffectKind) Effect {
	t.Helper()
	for _, ef := range fx {
		if ef.Kind == k {
			return ef
		}
	}
	t.Fatalf("no %v effect in %d effects", k, len(fx))
	return Effect{}
}

// launchOne applies the first pending launch for tid on provider pid and
// returns the attempt ID.
func launchOne(t *testing.T, e *Engine, tid core.TaskletID, pid core.ProviderID) core.AttemptID {
	t.Helper()
	aid, ok := e.Launched(tid, pid)
	if !ok {
		t.Fatalf("Launched(%d, %d) on dead tasklet", tid, pid)
	}
	return aid
}

func TestBestEffortHappyPath(t *testing.T) {
	e := New(Options{})
	fx := e.Submit(core.Tasklet{ID: 1, Job: 1, Index: 0, Fuel: 100}, "", false)
	if countKind(fx, EffectLaunch) != 1 {
		t.Fatalf("submit effects = %v, want one launch", fx)
	}
	aid := launchOne(t, e, 1, 7)
	disp, fx := e.Result(core.Result{Attempt: aid, Tasklet: 1, Provider: 7,
		Status: core.StatusOK, Return: tvm.Int(42)})
	if disp != ResultConsumed {
		t.Fatalf("disposition = %v, want consumed", disp)
	}
	d := firstKind(t, fx, EffectDeliver)
	if d.Final.Status != core.StatusOK || d.Final.Return.I != 42 || d.Attempts != 1 {
		t.Fatalf("deliver = %+v", d)
	}
	if e.Pending() != 0 || e.InFlight() != 0 {
		t.Fatalf("engine not drained: pending=%d inflight=%d", e.Pending(), e.InFlight())
	}
}

func TestStaleAndWastedDispositions(t *testing.T) {
	e := New(Options{})
	e.Submit(core.Tasklet{ID: 1, Fuel: 100}, "", false)
	aid := launchOne(t, e, 1, 3)

	// Unknown attempt and wrong provider are stale.
	if disp, _ := e.Result(core.Result{Attempt: 999, Provider: 3}); disp != ResultStale {
		t.Fatalf("unknown attempt disposition = %v", disp)
	}
	if disp, _ := e.Result(core.Result{Attempt: aid, Provider: 4}); disp != ResultStale {
		t.Fatalf("wrong-provider disposition = %v", disp)
	}

	// An attempt surviving its tasklet's deadline is wasted.
	expired, fx := e.Deadline(1)
	if !expired {
		t.Fatal("deadline did not expire a live tasklet")
	}
	if countKind(fx, EffectCancelAttempt) != 1 {
		t.Fatalf("deadline effects = %v, want one cancel", fx)
	}
	d := firstKind(t, fx, EffectDeliver)
	if d.Final.Status != core.StatusFault || d.Final.FaultMsg != "deadline exceeded" {
		t.Fatalf("deadline final = %+v", d.Final)
	}
	if disp, _ := e.Result(core.Result{Attempt: aid, Provider: 3, Status: core.StatusOK}); disp != ResultWasted {
		t.Fatalf("abandoned-attempt disposition = %v", disp)
	}
	if e.InFlight() != 0 {
		t.Fatalf("attempt leaked: inflight=%d", e.InFlight())
	}
}

func TestVotingMajorityCancelsRedundant(t *testing.T) {
	e := New(Options{})
	fx := e.Submit(core.Tasklet{ID: 1, QoC: core.QoC{Mode: core.QoCVoting, Replicas: 3}, Fuel: 100}, "", false)
	if countKind(fx, EffectLaunch) != 3 {
		t.Fatalf("voting fan-out = %v, want 3 launches", fx)
	}
	a1 := launchOne(t, e, 1, 1)
	a2 := launchOne(t, e, 1, 2)
	a3 := launchOne(t, e, 1, 3)

	if disp, fx := e.Result(core.Result{Attempt: a1, Provider: 1, Status: core.StatusOK, Return: tvm.Int(5)}); disp != ResultConsumed || len(fx) != 0 {
		t.Fatalf("first vote: disp=%v fx=%v", disp, fx)
	}
	_, fx = e.Result(core.Result{Attempt: a2, Provider: 2, Status: core.StatusOK, Return: tvm.Int(5)})
	if countKind(fx, EffectCancelAttempt) != 1 || firstKind(t, fx, EffectCancelAttempt).Attempt != a3 {
		t.Fatalf("majority effects = %v, want cancel of %d", fx, a3)
	}
	d := firstKind(t, fx, EffectDeliver)
	if d.Final.Return.I != 5 || d.Attempts != 3 {
		t.Fatalf("voting deliver = %+v", d)
	}
	// The cancelled straggler's report is wasted.
	if disp, _ := e.Result(core.Result{Attempt: a3, Provider: 3, Status: core.StatusOK, Return: tvm.Int(9)}); disp != ResultWasted {
		t.Fatalf("straggler disposition = %v", disp)
	}
}

func TestMemoHitDeliversWithoutLaunch(t *testing.T) {
	e := newMemoEngine(0, 0)
	key, ok := memo.KeyFor(11, 1, nil)
	if !ok {
		t.Fatal("KeyFor failed")
	}

	fx := e.Submit(core.Tasklet{ID: 1, Fuel: 100}, key, true)
	launchOne(t, e, 1, 1)
	aid := e.nextAttempt
	_, fx = e.Result(core.Result{Attempt: aid, Provider: 1, Status: core.StatusOK,
		Return: tvm.Int(7), FuelUsed: 50})
	if countKind(fx, EffectMemoStore) != 1 {
		t.Fatalf("leader final effects = %v, want a memo store", fx)
	}

	fx = e.Submit(core.Tasklet{ID: 2, Fuel: 100}, key, true)
	if countKind(fx, EffectLaunch) != 0 {
		t.Fatalf("cache hit launched: %v", fx)
	}
	d := firstKind(t, fx, EffectDeliver)
	if !d.FromCache || d.Attempts != 0 || d.Final.Return.I != 7 {
		t.Fatalf("cache-hit deliver = %+v", d)
	}
}

func TestCoalescedWaiterSharesLeaderFinal(t *testing.T) {
	e := newMemoEngine(0, 0)
	key, _ := memo.KeyFor(12, 1, nil)

	fx := e.Submit(core.Tasklet{ID: 1, Job: 1, Index: 0, Fuel: 100}, key, true)
	if countKind(fx, EffectLaunch) != 1 {
		t.Fatalf("leader submit = %v", fx)
	}
	fx = e.Submit(core.Tasklet{ID: 2, Job: 1, Index: 1, Fuel: 100}, key, true)
	if countKind(fx, EffectCoalesced) != 1 || countKind(fx, EffectLaunch) != 0 {
		t.Fatalf("waiter submit = %v, want coalesced and no launch", fx)
	}

	aid := launchOne(t, e, 1, 4)
	_, fx = e.Result(core.Result{Attempt: aid, Provider: 4, Status: core.StatusOK, Return: tvm.Int(9)})
	if countKind(fx, EffectDeliver) != 2 {
		t.Fatalf("leader final fan-out = %v, want 2 delivers", fx)
	}
	for _, ef := range fx {
		if ef.Kind != EffectDeliver {
			continue
		}
		if ef.Final.Return.I != 9 || ef.Final.Status != core.StatusOK {
			t.Fatalf("fan-out final = %+v", ef.Final)
		}
		if ef.Tasklet == 2 && ef.Attempts != 0 {
			t.Fatalf("waiter reported %d attempts, want 0", ef.Attempts)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("tasklets leaked: %d", e.Pending())
	}
}

func TestLeaderFailureDissolvesFlight(t *testing.T) {
	e := newMemoEngine(0, 0)
	key, _ := memo.KeyFor(13, 1, nil)
	e.Submit(core.Tasklet{ID: 1, QoC: core.QoC{Deadline: time.Second}, Fuel: 100}, key, true)
	e.Submit(core.Tasklet{ID: 2, Fuel: 100}, key, true)
	launchOne(t, e, 1, 1)

	// The leader's deadline expires: its fault must NOT be shared with the
	// waiter; the waiter re-enters scheduling with its own fan-out.
	expired, fx := e.Deadline(1)
	if !expired {
		t.Fatal("deadline ignored")
	}
	if countKind(fx, EffectDeliver) != 1 {
		t.Fatalf("dissolve delivered the failure to the waiter: %v", fx)
	}
	if countKind(fx, EffectLaunch) != 1 {
		t.Fatalf("dissolve effects = %v, want waiter re-launch", fx)
	}
	if !e.Live(2) || e.Live(1) {
		t.Fatalf("liveness after dissolve: leader=%v waiter=%v", e.Live(1), e.Live(2))
	}
}

func TestCancelPromotesWaiter(t *testing.T) {
	e := newMemoEngine(0, 0)
	key, _ := memo.KeyFor(14, 1, nil)
	e.Submit(core.Tasklet{ID: 1, Fuel: 100}, key, true)
	e.Submit(core.Tasklet{ID: 2, Fuel: 100}, key, true)
	launchOne(t, e, 1, 1)

	dropped, fx := e.Cancel(1)
	if !dropped {
		t.Fatal("cancel of live leader reported not dropped")
	}
	if countKind(fx, EffectDeliver) != 0 {
		t.Fatalf("cancel delivered a final: %v", fx)
	}
	if countKind(fx, EffectCancelAttempt) != 1 || countKind(fx, EffectLaunch) != 1 {
		t.Fatalf("cancel effects = %v, want attempt cancel + promoted-waiter launch", fx)
	}
	// The promoted waiter now runs to completion on its own.
	aid := launchOne(t, e, 2, 5)
	_, fx = e.Result(core.Result{Attempt: aid, Provider: 5, Status: core.StatusOK, Return: tvm.Int(3)})
	if firstKind(t, fx, EffectDeliver).Tasklet != 2 {
		t.Fatalf("promoted waiter final = %v", fx)
	}
}

func TestProviderLostReissuesAndCounts(t *testing.T) {
	e := New(Options{})
	e.Submit(core.Tasklet{ID: 1, Fuel: 100}, "", false)
	e.Submit(core.Tasklet{ID: 2, Fuel: 100}, "", false)
	launchOne(t, e, 1, 9)
	launchOne(t, e, 2, 9)

	lost, fx := e.ProviderLost(9)
	if lost != 2 {
		t.Fatalf("lost = %d, want 2", lost)
	}
	if countKind(fx, EffectLaunch) != 2 {
		t.Fatalf("provider-lost effects = %v, want 2 re-issues", fx)
	}
	if e.InFlight() != 0 {
		t.Fatalf("attempts leaked after provider loss: %d", e.InFlight())
	}
}

func TestRetryBudgetExhaustionFinalizesLost(t *testing.T) {
	e := New(Options{})
	e.Submit(core.Tasklet{ID: 1, QoC: core.QoC{MaxRetries: 1}, Fuel: 100}, "", false)
	aid := launchOne(t, e, 1, 1)
	// First loss spends the only retry; second loss exhausts the budget.
	_, fx := e.Result(core.Result{Attempt: aid, Provider: 1, Status: core.StatusLost})
	if countKind(fx, EffectLaunch) != 1 {
		t.Fatalf("first loss = %v, want re-issue", fx)
	}
	aid = launchOne(t, e, 1, 2)
	_, fx = e.Result(core.Result{Attempt: aid, Provider: 2, Status: core.StatusLost})
	d := firstKind(t, fx, EffectDeliver)
	if d.Final.Status != core.StatusLost {
		t.Fatalf("exhaustion final = %+v", d.Final)
	}
}

func TestMaxAttemptsCapFinalizesLost(t *testing.T) {
	e := New(Options{MaxAttempts: 1})
	e.Submit(core.Tasklet{ID: 1, Fuel: 100}, "", false)
	aid := launchOne(t, e, 1, 1)
	// The QoC tracker wants a re-issue (default retry budget 3), but the
	// global cap of one attempt swallows it: the tasklet finalizes lost.
	_, fx := e.Result(core.Result{Attempt: aid, Provider: 1, Status: core.StatusLost})
	if countKind(fx, EffectLaunch) != 0 {
		t.Fatalf("cap allowed a re-issue: %v", fx)
	}
	d := firstKind(t, fx, EffectDeliver)
	if d.Final.Status != core.StatusLost || d.Final.FaultMsg != "attempt cap exhausted" {
		t.Fatalf("cap final = %+v", d.Final)
	}
	if e.Pending() != 0 {
		t.Fatal("tasklet leaked after cap exhaustion")
	}
}

func TestMaxAttemptsCapsInitialFanOut(t *testing.T) {
	e := New(Options{MaxAttempts: 2})
	fx := e.Submit(core.Tasklet{ID: 1, QoC: core.QoC{Mode: core.QoCVoting, Replicas: 3}, Fuel: 100}, "", false)
	if countKind(fx, EffectLaunch) != 2 {
		t.Fatalf("capped fan-out = %v, want 2 launches", fx)
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	e := New(Options{RetryBackoff: 10 * time.Millisecond})
	fx := e.Submit(core.Tasklet{ID: 1, Fuel: 100}, "", false)
	if d := firstKind(t, fx, EffectLaunch).Delay; d != 0 {
		t.Fatalf("initial fan-out delayed by %v", d)
	}
	for i, want := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond} {
		aid := launchOne(t, e, 1, core.ProviderID(i+1))
		_, fx = e.Result(core.Result{Attempt: aid, Provider: core.ProviderID(i + 1), Status: core.StatusLost})
		if d := firstKind(t, fx, EffectLaunch).Delay; d != want {
			t.Fatalf("re-issue %d delay = %v, want %v", i+1, d, want)
		}
	}
}

func TestAttemptIDsMonotonic(t *testing.T) {
	e := New(Options{})
	var last core.AttemptID
	for i := 1; i <= 10; i++ {
		tid := core.TaskletID(i)
		e.Submit(core.Tasklet{ID: tid, Fuel: 100}, "", false)
		aid := launchOne(t, e, tid, 1)
		if aid <= last {
			t.Fatalf("attempt ID %d not monotonic after %d", aid, last)
		}
		last = aid
		e.Result(core.Result{Attempt: aid, Provider: 1, Status: core.StatusOK})
	}
}
