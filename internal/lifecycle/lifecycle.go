// Package lifecycle implements the transport-agnostic tasklet lifecycle
// engine: the single deterministic state machine that owns the path
// submission → memo lookup → flight coalescing → QoC attempt fan-out →
// attempt result/lost handling → decision application → deadline expiry →
// finalization → memo store.
//
// The engine is pure event-in/effects-out: callers feed events (Submit,
// Result, ProviderLost, Deadline, Cancel, Launched) and execute the returned
// Effects (queue a placement, cancel an attempt, deliver a final, arm a
// deadline timer). It holds no clock, no RNG, no sockets and no goroutines —
// the live broker drives it under its mutex against wall time, and the
// discrete-event simulator drives the very same code against virtual time,
// so the two can no longer drift apart (they used to carry independent
// copies of this logic, kept equal only by differential tests).
//
// On top of the QoC tracker's per-tasklet retry budget the engine enforces
// an optional global per-tasklet attempt cap (Options.MaxAttempts) with
// exponential re-issue backoff (Options.RetryBackoff); a tasklet that
// exhausts its cap with nothing left in flight finalizes as StatusLost.
package lifecycle

import (
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/qoc"
	"repro/internal/tvm"
)

// Options parameterizes an Engine.
type Options struct {
	// Memo is the content-addressed result cache consulted at submission and
	// written on cacheable finals. Nil disables memoization (and, together
	// with a nil Flights, coalescing). The caller owns the cache — it injects
	// the clock (wall or virtual) and the metrics registry.
	Memo *memo.Cache
	// Flights coalesces identical in-flight tasklets. Nil disables
	// coalescing. All FlightTable methods are nil-safe.
	Flights *memo.FlightTable

	// MaxAttempts caps the total attempts (launched + queued) a single
	// tasklet may consume across re-issues; 0 or negative means unlimited
	// (the legacy behavior, bounded only by the QoC retry budget). A tasklet
	// whose re-issue is swallowed by the cap with nothing outstanding
	// finalizes as StatusLost ("attempt cap exhausted").
	MaxAttempts int
	// RetryBackoff delays lost-attempt re-issues: the n-th re-issue of a
	// tasklet waits RetryBackoff << min(n-1, 6). Zero re-issues immediately
	// (the legacy behavior). The initial QoC fan-out and promoted flight
	// waiters are never delayed.
	RetryBackoff time.Duration

	// AttemptOffset and AttemptStride partition the attempt-ID space for
	// drivers that run several engines side by side (the partitioned
	// broker): engine i of P passes Offset=i, Stride=P and allocates IDs
	// i+P, i+2P, ... — disjoint across engines, never zero. The zero values
	// select the legacy single-engine sequence 1, 2, 3, ...
	AttemptOffset uint64
	AttemptStride uint64
}

// Disposition classifies what Result did with an attempt outcome.
type Disposition uint8

const (
	// ResultStale means the attempt is unknown or reported by the wrong
	// provider (duplicate or forged report): the driver must not touch its
	// slot accounting.
	ResultStale Disposition = iota
	// ResultWasted means the attempt was real but its outcome no longer
	// matters (abandoned by a cancellation, or its tasklet already
	// finalized): free the slot, count it wasted, expect no effects.
	ResultWasted
	// ResultConsumed means the outcome fed the tasklet's QoC tracker; the
	// accompanying effects reflect the resulting decision.
	ResultConsumed
)

// flightRole is a tasklet's position in its coalescing flight, if any.
type flightRole uint8

const (
	flightNone   flightRole = iota // not coalesced (memo off, NoCache, unique)
	flightLeader                   // drives the real attempt fan-out
	flightWaiter                   // receives a copy of the leader's final
)

// taskletState is the engine's per-tasklet record. States are pooled: a
// finalized tasklet's record is reset and reused by a later submission, so
// the steady-state submit→launch→result cycle allocates nothing.
type taskletState struct {
	t       core.Tasklet
	tracker qoc.Tracker
	coKey   memo.FlightKey
	role    flightRole
	// queued counts launch effects emitted but not yet turned into attempts
	// via Launched; it keeps MaxAttempts honest while placements wait.
	queued int
	// reissues counts post-fan-out launches, driving the backoff schedule.
	reissues int
}

// attemptEntry is the engine's per-attempt record (value type: the attempt
// map never allocates per entry).
type attemptEntry struct {
	tasklet   core.TaskletID
	provider  core.ProviderID
	abandoned bool // result will be ignored; slot freed when it arrives
}

// Engine is the lifecycle state machine. It is not safe for concurrent use;
// the broker serializes calls under its mutex, the simulator is single
// -threaded by construction.
type Engine struct {
	opts Options

	tasklets map[core.TaskletID]*taskletState
	attempts map[core.AttemptID]attemptEntry

	// nextAttempt allocates attempt IDs in launch order, advancing by
	// strideAttempt each launch. With the default offset 0 / stride 1 this
	// is the same single counter the broker and simulator used before the
	// extraction, so attempt IDs are bit-identical to the legacy
	// implementations.
	nextAttempt   core.AttemptID
	strideAttempt core.AttemptID

	// fx is the effect scratch returned by event methods; valid until the
	// next call.
	fx []Effect
	// freeStates pools finalized taskletState records for reuse.
	freeStates []*taskletState
	// lostScratch stages ProviderLost's doomed attempt IDs (feeding a loss
	// can cancel other attempts, so collection and mutation are split).
	lostScratch []core.AttemptID
}

// New builds an engine.
func New(opts Options) *Engine {
	stride := core.AttemptID(opts.AttemptStride)
	if stride == 0 {
		stride = 1
	}
	return &Engine{
		opts:          opts,
		tasklets:      map[core.TaskletID]*taskletState{},
		attempts:      map[core.AttemptID]attemptEntry{},
		nextAttempt:   core.AttemptID(opts.AttemptOffset),
		strideAttempt: stride,
	}
}

// ---------- events ----------

// Submit admits one tasklet. key is its memo content key when haveKey is
// true (the drivers compute it: program hash + seed + params for the broker,
// the synthetic content key for the simulator). The returned effects are,
// in order: a Deliver for an immediate cache hit, or SetDeadline (when the
// QoC carries one) followed by either Coalesced (joined a flight as waiter)
// or the initial fan-out's Launch effects.
func (e *Engine) Submit(t core.Tasklet, key memo.Key, haveKey bool) []Effect {
	e.fx = e.fx[:0]
	e.submit(t, key, haveKey)
	return e.fx
}

// submit is the reset-free core of Submit, shared with Apply.
func (e *Engine) submit(t core.Tasklet, key memo.Key, haveKey bool) {
	ts := e.newState(t)
	e.tasklets[t.ID] = ts
	goal := ts.tracker.Goal()

	memoOn := (e.opts.Memo != nil || e.opts.Flights != nil) && haveKey && !goal.NoCache
	if memoOn {
		if ent := e.opts.Memo.Get(key, goal.VoteStrength(), t.Fuel); ent != nil {
			// Finalized identical work already cached: deliver without
			// touching a provider (Attempts = 0).
			ret, em := ent.CachedResult()
			e.deliver(ts, core.Result{
				Tasklet: t.ID, Job: t.Job, Index: t.Index,
				Status: core.StatusOK, Return: ret, Emitted: em,
				FuelUsed: ent.FuelUsed, Exec: ent.Exec,
			}, 0, true)
			return
		}
	}

	if goal.Deadline > 0 {
		e.emit(Effect{Kind: EffectSetDeadline, Tasklet: t.ID, Delay: goal.Deadline})
	}

	if memoOn {
		ts.coKey = memo.FlightKey{
			Content:  key,
			Mode:     uint8(goal.Mode),
			Replicas: goal.Replicas,
			Fuel:     t.Fuel,
		}
		if e.opts.Flights.Join(ts.coKey, uint64(t.ID)) {
			ts.role = flightLeader
		} else {
			// Coalesced behind an identical in-flight tasklet: no attempts
			// of its own; the leader's final fans out to it. The deadline
			// still applies independently.
			ts.role = flightWaiter
			e.emit(Effect{Kind: EffectCoalesced, Tasklet: t.ID})
			return
		}
	}

	e.applyDecision(ts, ts.tracker.Start())
}

// Launched records that the driver placed one attempt for tid on provider
// pid, and returns the allocated attempt ID. ok is false when the tasklet is
// no longer live (defensive; drivers check Live before placing).
func (e *Engine) Launched(tid core.TaskletID, pid core.ProviderID) (core.AttemptID, bool) {
	ts := e.tasklets[tid]
	if ts == nil {
		return 0, false
	}
	e.nextAttempt += e.strideAttempt
	aid := e.nextAttempt
	e.attempts[aid] = attemptEntry{tasklet: tid, provider: pid}
	if ts.queued > 0 {
		ts.queued--
	}
	ts.tracker.OnLaunched(aid, pid)
	return aid, true
}

// Result feeds one attempt outcome. The disposition tells the driver how to
// account it (see Disposition); effects accompany ResultConsumed only.
func (e *Engine) Result(res core.Result) (Disposition, []Effect) {
	e.fx = e.fx[:0]
	disp := e.result(res)
	if disp != ResultConsumed {
		return disp, nil
	}
	return disp, e.fx
}

// result is the reset-free core of Result, shared with Apply. It appends
// effects only when the outcome is consumed.
func (e *Engine) result(res core.Result) Disposition {
	a, ok := e.attempts[res.Attempt]
	if !ok || a.provider != res.Provider {
		return ResultStale
	}
	delete(e.attempts, res.Attempt)
	if a.abandoned {
		return ResultWasted
	}
	ts := e.tasklets[a.tasklet]
	if ts == nil {
		return ResultWasted
	}
	e.applyDecision(ts, ts.tracker.OnResult(res))
	return ResultConsumed
}

// ProviderLost declares every attempt on pid lost and feeds the losses to
// their trackers. It returns how many live (non-abandoned, tasklet still
// pending) attempts died — the broker's attempts.lost count — plus the
// re-issue/finalization effects.
func (e *Engine) ProviderLost(pid core.ProviderID) (int, []Effect) {
	e.fx = e.fx[:0]
	e.lostScratch = e.lostScratch[:0]
	for aid, a := range e.attempts {
		if a.provider == pid {
			e.lostScratch = append(e.lostScratch, aid)
		}
	}
	lost := 0
	for _, aid := range e.lostScratch {
		// Re-read: feeding an earlier loss may have abandoned this attempt
		// (a tracker completing cancels its redundant siblings).
		a := e.attempts[aid]
		delete(e.attempts, aid)
		if a.abandoned {
			continue
		}
		ts := e.tasklets[a.tasklet]
		if ts == nil {
			continue
		}
		lost++
		e.applyDecision(ts, ts.tracker.OnResult(core.Result{
			Attempt: aid, Status: core.StatusLost, Provider: pid,
		}))
	}
	return lost, e.fx
}

// Deadline expires tid's wall-clock budget: outstanding attempts are
// abandoned (cancel effects) and the tasklet finalizes as a fault. expired
// is false when the tasklet already finished (stale timer).
func (e *Engine) Deadline(tid core.TaskletID) (expired bool, fx []Effect) {
	ts := e.tasklets[tid]
	if ts == nil {
		return false, nil
	}
	e.fx = e.fx[:0]
	e.abandonAttempts(tid)
	e.finalize(ts, core.Result{
		Tasklet: ts.t.ID, Job: ts.t.Job, Index: ts.t.Index,
		Status: core.StatusFault, FaultMsg: "deadline exceeded",
	}, ts.tracker.Attempts())
	return true, e.fx
}

// Cancel abandons tid without delivering a final (job cancelled, consumer
// disconnected): attempts are cancelled, a led flight is handed to its first
// waiter (which starts real scheduling — watch for Launch effects), a
// waiter's slot in its flight is vacated. dropped is false when the tasklet
// is already gone.
func (e *Engine) Cancel(tid core.TaskletID) (dropped bool, fx []Effect) {
	ts := e.tasklets[tid]
	if ts == nil {
		return false, nil
	}
	e.fx = e.fx[:0]
	e.abandonAttempts(tid)
	switch ts.role {
	case flightWaiter:
		e.opts.Flights.DropWaiter(ts.coKey, uint64(tid))
	case flightLeader:
		if nl, ok := e.opts.Flights.DropLeader(ts.coKey); ok {
			if nts := e.tasklets[core.TaskletID(nl)]; nts != nil {
				nts.role = flightLeader
				e.applyDecision(nts, nts.tracker.Start())
			}
		}
	}
	ts.role = flightNone
	delete(e.tasklets, tid)
	e.recycle(ts)
	return true, e.fx
}

// ---------- accessors ----------

// Live reports whether tid is still pending a final.
func (e *Engine) Live(tid core.TaskletID) bool {
	return e.tasklets[tid] != nil
}

// Tasklet returns the stored tasklet for placement (nil when finished). The
// pointer is valid until the tasklet finalizes; drivers use it transiently
// within one placement pick.
func (e *Engine) Tasklet(tid core.TaskletID) *core.Tasklet {
	ts := e.tasklets[tid]
	if ts == nil {
		return nil
	}
	return &ts.t
}

// AppendActiveProviders appends the providers currently running tid's
// attempts to buf (the placement exclusion list) and returns the extended
// slice.
func (e *Engine) AppendActiveProviders(tid core.TaskletID, buf []core.ProviderID) []core.ProviderID {
	ts := e.tasklets[tid]
	if ts == nil {
		return buf
	}
	return ts.tracker.AppendActiveProviders(buf)
}

// InFlight returns the number of attempt records (including abandoned ones
// whose results have not yet arrived), mirroring the broker's old
// len(attempts) snapshot.
func (e *Engine) InFlight() int { return len(e.attempts) }

// Pending returns the number of tasklets awaiting a final.
func (e *Engine) Pending() int { return len(e.tasklets) }

// VisitAttempts calls fn for every attempt record. The engine must not be
// mutated during the walk; used by benchmarks and tests.
func (e *Engine) VisitAttempts(fn func(id core.AttemptID, tasklet core.TaskletID, provider core.ProviderID, abandoned bool)) {
	for aid, a := range e.attempts {
		fn(aid, a.tasklet, a.provider, a.abandoned)
	}
}

// ---------- internals ----------

func (e *Engine) emit(ef Effect) { e.fx = append(e.fx, ef) }

// newState takes a pooled record or allocates one, and initializes it for t.
func (e *Engine) newState(t core.Tasklet) *taskletState {
	var ts *taskletState
	if n := len(e.freeStates); n > 0 {
		ts = e.freeStates[n-1]
		e.freeStates = e.freeStates[:n-1]
	} else {
		ts = &taskletState{}
	}
	ts.t = t
	ts.tracker.Reset(&ts.t)
	ts.coKey = memo.FlightKey{}
	ts.role = flightNone
	ts.queued = 0
	ts.reissues = 0
	return ts
}

func (e *Engine) recycle(ts *taskletState) {
	if len(e.freeStates) < 64 {
		e.freeStates = append(e.freeStates, ts)
	}
}

// abandonAttempts marks every live attempt of tid abandoned and emits cancel
// effects.
func (e *Engine) abandonAttempts(tid core.TaskletID) {
	for aid, a := range e.attempts {
		if a.tasklet == tid && !a.abandoned {
			a.abandoned = true
			e.attempts[aid] = a
			e.emit(Effect{Kind: EffectCancelAttempt, Tasklet: tid, Attempt: aid, Provider: a.provider})
		}
	}
}

// cancelAttempt abandons one attempt (QoC decision cancel).
func (e *Engine) cancelAttempt(aid core.AttemptID) {
	a, ok := e.attempts[aid]
	if !ok || a.abandoned {
		return
	}
	a.abandoned = true
	e.attempts[aid] = a
	e.emit(Effect{Kind: EffectCancelAttempt, Tasklet: a.tasklet, Attempt: aid, Provider: a.provider})
}

// applyDecision turns a QoC decision into effects: launches (capped by
// MaxAttempts, delayed by the backoff schedule), cancellations, and — when
// the decision is final, or the cap starves a re-issue with nothing left in
// flight — finalization.
func (e *Engine) applyDecision(ts *taskletState, d qoc.Decision) {
	launch := d.Launch
	if launch > 0 && e.opts.MaxAttempts > 0 {
		budget := e.opts.MaxAttempts - ts.tracker.Attempts() - ts.queued
		if launch > budget {
			launch = budget
			if launch < 0 {
				launch = 0
			}
		}
	}
	// Re-issues (anything after the initial fan-out) back off; the first
	// fan-out and promoted flight waiters launch immediately.
	reissue := ts.tracker.Attempts() > 0 || ts.queued > 0
	for i := 0; i < launch; i++ {
		var delay time.Duration
		if reissue && e.opts.RetryBackoff > 0 {
			shift := ts.reissues
			if shift > 6 {
				shift = 6
			}
			delay = e.opts.RetryBackoff << shift
			ts.reissues++
		}
		ts.queued++
		e.emit(Effect{Kind: EffectLaunch, Tasklet: ts.t.ID, Delay: delay})
	}
	for _, aid := range d.Cancel {
		e.cancelAttempt(aid)
	}
	if d.Done {
		e.finalize(ts, d.Final, ts.tracker.Attempts())
		return
	}
	if launch < d.Launch && ts.tracker.Outstanding() == 0 && ts.queued == 0 {
		// The attempt cap swallowed every wanted launch and nothing is in
		// flight or queued: the tasklet can never finish. Finalize as lost,
		// like a retry-budget exhaustion.
		e.abandonAttempts(ts.t.ID) // no live attempts; keeps invariants obvious
		e.finalize(ts, core.Result{
			Tasklet: ts.t.ID, Job: ts.t.Job, Index: ts.t.Index,
			Status: core.StatusLost, FaultMsg: "attempt cap exhausted",
		}, ts.tracker.Attempts())
	}
}

// finalize delivers ts's final result and settles its coalescing flight: a
// leader's successful final enters the memo cache and fans out to every
// waiter; a leader's failed final dissolves the flight so each waiter
// schedules independently (failures describe this run — losses, deadlines —
// and must not be shared or memoized). Waiters that finalize on their own
// (deadline) just leave the flight.
func (e *Engine) finalize(ts *taskletState, final core.Result, attempts int) {
	role, fk := ts.role, ts.coKey
	ts.role = flightNone
	cacheable := ts.tracker.FinalCacheable() && final.Status == core.StatusOK
	strength := ts.tracker.Goal().VoteStrength()
	e.deliver(ts, final, attempts, false)

	switch role {
	case flightWaiter:
		e.opts.Flights.DropWaiter(fk, uint64(final.Tasklet))
	case flightLeader:
		if final.Status == core.StatusOK {
			if cacheable {
				e.opts.Memo.Put(fk.Content, final.Return, final.Emitted,
					final.FuelUsed, final.Exec, strength)
				e.emit(Effect{Kind: EffectMemoStore, Tasklet: final.Tasklet})
			}
			for _, w := range e.opts.Flights.Complete(fk) {
				wts := e.tasklets[core.TaskletID(w)]
				if wts == nil {
					continue
				}
				wts.role = flightNone
				// Like a cache hit, a coalesced waiter consumed no attempts
				// of its own — the leader's fan-out is reported on the
				// leader's result only.
				e.deliver(wts, core.Result{
					Tasklet: wts.t.ID, Job: wts.t.Job, Index: wts.t.Index,
					Provider: final.Provider, Status: core.StatusOK,
					Return: final.Return.Clone(), Emitted: cloneEmitted(final.Emitted),
					FuelUsed: final.FuelUsed, Exec: final.Exec,
				}, 0, false)
			}
		} else {
			for _, w := range e.opts.Flights.Complete(fk) {
				wts := e.tasklets[core.TaskletID(w)]
				if wts == nil {
					continue
				}
				wts.role = flightNone
				e.applyDecision(wts, wts.tracker.Start())
			}
		}
	}
}

// cloneEmitted deep-copies an emitted-value stream for waiter fan-out.
func cloneEmitted(emitted []tvm.Value) []tvm.Value {
	if len(emitted) == 0 {
		return nil
	}
	em := make([]tvm.Value, len(emitted))
	for i, v := range emitted {
		em[i] = v.Clone()
	}
	return em
}

// deliver removes ts and emits its Deliver effect.
func (e *Engine) deliver(ts *taskletState, final core.Result, attempts int, fromCache bool) {
	delete(e.tasklets, ts.t.ID)
	e.emit(Effect{
		Kind: EffectDeliver, Tasklet: ts.t.ID,
		Final: final, Attempts: attempts, FromCache: fromCache,
		Submitted: ts.t.Submitted,
	})
	e.recycle(ts)
}
