package lifecycle

import (
	"testing"

	"repro/internal/core"
)

// TestAttemptStride pins the partitioned attempt-ID allocation: engine i of
// P allocates i+P, i+2P, ... (disjoint, never zero), and the zero-value
// options keep the legacy 1, 2, 3, ... sequence.
func TestAttemptStride(t *testing.T) {
	launch := func(e *Engine, tid core.TaskletID) core.AttemptID {
		e.Submit(core.Tasklet{ID: tid, Job: 1, Fuel: 10}, "", false)
		aid, ok := e.Launched(tid, 1)
		if !ok {
			t.Fatalf("Launched(%d) not live", tid)
		}
		return aid
	}

	legacy := New(Options{})
	for i, want := range []core.AttemptID{1, 2, 3} {
		if got := launch(legacy, core.TaskletID(i+1)); got != want {
			t.Fatalf("legacy attempt %d = %d, want %d", i, got, want)
		}
	}

	const P = 4
	seen := map[core.AttemptID]bool{}
	for part := 0; part < P; part++ {
		e := New(Options{AttemptOffset: uint64(part), AttemptStride: P})
		for n := 1; n <= 3; n++ {
			aid := launch(e, core.TaskletID(100*part+n))
			want := core.AttemptID(part + n*P)
			if aid != want {
				t.Fatalf("partition %d attempt %d = %d, want %d", part, n, aid, want)
			}
			if aid == 0 || seen[aid] {
				t.Fatalf("attempt ID %d zero or duplicated", aid)
			}
			seen[aid] = true
		}
	}
}
