package lifecycle

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tvm"
)

// BenchmarkLifecycleEngine measures the steady-state cost of one full
// tasklet lifecycle through the engine — Submit, Launched, Result(OK),
// Deliver — with pooled state records and reused effect scratch this is
// the broker's per-tasklet control-plane overhead and must not allocate.
func BenchmarkLifecycleEngine(b *testing.B) {
	e := New(Options{})
	// Warm the pools (state freelist, effect scratch, map buckets).
	for i := 0; i < 100; i++ {
		runOne(b, e, core.TaskletID(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, e, core.TaskletID(i+101))
	}
}

func runOne(b *testing.B, e *Engine, tid core.TaskletID) {
	fx := e.Submit(core.Tasklet{ID: tid, Job: 1, Fuel: 1000}, "", false)
	if len(fx) != 1 || fx[0].Kind != EffectLaunch {
		b.Fatalf("submit effects = %v", fx)
	}
	aid, ok := e.Launched(tid, 1)
	if !ok {
		b.Fatal("launch refused")
	}
	disp, fx := e.Result(core.Result{
		Attempt: aid, Tasklet: tid, Provider: 1,
		Status: core.StatusOK, Return: tvm.Int(7), FuelUsed: 500,
	})
	if disp != ResultConsumed || len(fx) != 1 || fx[0].Kind != EffectDeliver {
		b.Fatalf("result: disp=%v fx=%v", disp, fx)
	}
}
