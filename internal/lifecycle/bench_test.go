package lifecycle

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tvm"
)

// BenchmarkLifecycleEngine measures the steady-state cost of one full
// tasklet lifecycle through the engine — Submit, Launched, Result(OK),
// Deliver — with pooled state records and reused effect scratch this is
// the broker's per-tasklet control-plane overhead and must not allocate.
func BenchmarkLifecycleEngine(b *testing.B) {
	e := New(Options{})
	// Warm the pools (state freelist, effect scratch, map buckets).
	for i := 0; i < 100; i++ {
		runOne(b, e, core.TaskletID(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, e, core.TaskletID(i+101))
	}
}

// BenchmarkLifecycleEngineApply measures the bulk-ingest path a decoded
// batch frame drives: one Apply call covering a burst of 64 submissions,
// then one covering their 64 results — one effects reset and one walk per
// burst instead of per event.
func BenchmarkLifecycleEngineApply(b *testing.B) {
	const burst = 64
	e := New(Options{})
	evs := make([]Event, burst)
	aids := make([]core.AttemptID, burst)
	next := core.TaskletID(1)
	run := func() {
		for i := range evs {
			evs[i] = Event{Kind: EventSubmit, Tasklet: core.Tasklet{ID: next, Job: 1, Fuel: 1000}}
			next++
		}
		if fx := e.Apply(evs); len(fx) != burst {
			b.Fatalf("submit burst effects = %d", len(fx))
		}
		base := next - burst
		for i := range aids {
			aid, ok := e.Launched(base+core.TaskletID(i), 1)
			if !ok {
				b.Fatal("launch refused")
			}
			aids[i] = aid
		}
		for i := range evs {
			evs[i] = Event{Kind: EventResult, Result: core.Result{
				Attempt: aids[i], Tasklet: base + core.TaskletID(i), Provider: 1,
				Status: core.StatusOK, Return: tvm.Int(7), FuelUsed: 500,
			}}
		}
		fx := e.Apply(evs)
		if len(fx) != burst {
			b.Fatalf("result burst effects = %d", len(fx))
		}
		for i := range evs {
			if evs[i].Disp != ResultConsumed {
				b.Fatalf("event %d disposition = %v", i, evs[i].Disp)
			}
		}
	}
	for i := 0; i < 10; i++ {
		run() // warm pools
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func runOne(b *testing.B, e *Engine, tid core.TaskletID) {
	fx := e.Submit(core.Tasklet{ID: tid, Job: 1, Fuel: 1000}, "", false)
	if len(fx) != 1 || fx[0].Kind != EffectLaunch {
		b.Fatalf("submit effects = %v", fx)
	}
	aid, ok := e.Launched(tid, 1)
	if !ok {
		b.Fatal("launch refused")
	}
	disp, fx := e.Result(core.Result{
		Attempt: aid, Tasklet: tid, Provider: 1,
		Status: core.StatusOK, Return: tvm.Int(7), FuelUsed: 500,
	})
	if disp != ResultConsumed || len(fx) != 1 || fx[0].Kind != EffectDeliver {
		b.Fatalf("result: disp=%v fx=%v", disp, fx)
	}
}
