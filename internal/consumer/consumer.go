// Package consumer implements the application-side Tasklet client: it
// connects to the broker, submits jobs (one program, many parameter sets,
// shared QoC goals), and streams final results back as they complete.
package consumer

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// Client is a consumer session with the broker. Create with Connect; a
// Client supports many concurrent jobs.
type Client struct {
	conn *wire.Conn
	nc   net.Conn
	id   core.ConsumerID

	mu           sync.Mutex
	jobs         map[core.JobID]*Job
	subs         chan *Job // handshake channel: SubmitJob → JobAccepted ordering
	fleetQueries chan chan *wire.FleetInfo
	closed       bool
	err          error

	wg sync.WaitGroup
}

// Job is a handle on one submitted job. Results arrive on Results in
// completion order (not index order); the channel closes after the final
// tasklet, and Err/Counts report the summary.
type Job struct {
	ID       core.JobID
	Tasklets int

	results  chan TaskResult
	done     chan struct{}
	doneOnce sync.Once

	mu        sync.Mutex
	finished  bool
	completed int
	failed    int
	err       error

	// Local-fallback state (QoC.LocalFallback): failed tasklets are
	// re-executed in-process; the job completes only after those local
	// executions drain.
	spec       core.JobSpec
	prog       *tvm.Program
	fallbacks  int
	brokerDone bool
}

// signalDone releases a Submit waiting for acknowledgement. Idempotent.
func (j *Job) signalDone() { j.doneOnce.Do(func() { close(j.done) }) }

// TaskResult is one tasklet's final outcome as seen by the application.
type TaskResult struct {
	Index    int
	Status   core.ResultStatus
	Return   tvm.Value
	Emitted  []tvm.Value
	Fault    string
	Provider core.ProviderID
	Attempts int
	Exec     time.Duration
	// Local reports that the result came from the consumer's in-process
	// fallback execution rather than a provider (QoC.LocalFallback).
	Local bool
}

// OK reports whether the tasklet completed successfully.
func (r TaskResult) OK() bool { return r.Status == core.StatusOK }

// Connect dials the broker and performs the handshake.
func Connect(addr, name string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("consumer: dial broker: %w", err)
	}
	conn := wire.NewConn(nc)
	// CapBatch lets the broker fold a burst of completed results into one
	// ResultPushBatch frame; the per-result payloads are identical, so the
	// application sees the same stream either way.
	if err := conn.Send(&wire.Hello{
		Version: wire.ProtocolVersion, Role: wire.RoleConsumer, Name: name,
		Caps: wire.CapFlagsTail | wire.CapBatch,
	}); err != nil {
		nc.Close()
		return nil, err
	}
	msg, err := conn.Recv()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("consumer: handshake: %w", err)
	}
	welcome, ok := msg.(*wire.Welcome)
	if !ok {
		nc.Close()
		return nil, fmt.Errorf("consumer: handshake: unexpected %s", msg.Type())
	}
	c := &Client{
		conn: conn,
		nc:   nc,
		id:   core.ConsumerID(welcome.ID),
		jobs: map[core.JobID]*Job{},
		// 1024 in-flight submissions keeps a closed-loop load generator (the
		// throughput benchmarks drive hundreds of concurrent single-tasklet
		// jobs) from tripping the unacknowledged-submission limit.
		subs:         make(chan *Job, 1024),
		fleetQueries: make(chan chan *wire.FleetInfo, 16),
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.readLoop()
	}()
	return c, nil
}

// ID returns the broker-assigned consumer ID.
func (c *Client) ID() core.ConsumerID { return c.id }

// Close tears the session down. Outstanding jobs fail with a connection
// error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.conn.Send(&wire.Bye{})
	err := c.nc.Close()
	c.wg.Wait()
	return err
}

// Submit sends a job and returns its handle once the broker accepts it.
func (c *Client) Submit(spec core.JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	job := &Job{
		results: make(chan TaskResult, len(spec.Params)),
		done:    make(chan struct{}),
		spec:    spec,
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.sessionError()
	}
	// Queue the handle before sending: JobAccepted replies arrive in
	// submission order.
	select {
	case c.subs <- job:
	default:
		c.mu.Unlock()
		return nil, errors.New("consumer: too many unacknowledged submissions")
	}
	c.mu.Unlock()

	err := c.conn.Send(&wire.SubmitJob{
		Program: spec.Program,
		Params:  spec.Params,
		QoC:     spec.QoC,
		Fuel:    spec.Fuel,
		Seed:    spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("consumer: submit: %w", err)
	}

	select {
	case <-job.done:
		// Err() locks: a concurrent connection loss may be writing the
		// error while we wake up.
		if err := job.Err(); err != nil {
			return nil, err
		}
		return job, nil
	case <-time.After(30 * time.Second):
		return nil, errors.New("consumer: broker did not acknowledge job")
	}
}

// Cancel asks the broker to abandon the job's outstanding tasklets.
func (c *Client) Cancel(job *Job) error {
	return c.conn.Send(&wire.CancelJob{Job: job.ID})
}

// FleetProvider is one row of the broker's provider directory.
type FleetProvider struct {
	ID          core.ProviderID
	Class       core.DeviceClass
	Slots       int
	FreeSlots   int
	Speed       float64
	Reliability float64
	Executed    int64
}

// Fleet queries the broker's provider directory: the application-visible
// face of the middleware's resource discovery. It returns the registered
// providers and the number of tasklets awaiting placement.
func (c *Client) Fleet() ([]FleetProvider, int, error) {
	waiter := make(chan *wire.FleetInfo, 1)
	select {
	case c.fleetQueries <- waiter:
	default:
		return nil, 0, errors.New("consumer: too many concurrent fleet queries")
	}
	if err := c.conn.Send(&wire.QueryFleet{}); err != nil {
		return nil, 0, err
	}
	select {
	case info := <-waiter:
		if info == nil {
			return nil, 0, c.sessionError()
		}
		out := make([]FleetProvider, 0, len(info.Providers))
		for _, p := range info.Providers {
			out = append(out, FleetProvider{
				ID: p.ID, Class: p.Class, Slots: p.Slots, FreeSlots: p.FreeSlots,
				Speed: p.Speed, Reliability: p.Reliability, Executed: p.Executed,
			})
		}
		return out, info.Pending, nil
	case <-time.After(30 * time.Second):
		return nil, 0, errors.New("consumer: fleet query timed out")
	}
}

func (c *Client) sessionError() error {
	if c.err != nil {
		return c.err
	}
	return errors.New("consumer: session closed")
}

// readLoop dispatches broker messages to job handles.
func (c *Client) readLoop() {
	var readErr error
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			readErr = err
			break
		}
		switch m := msg.(type) {
		case *wire.JobAccepted:
			c.onAccepted(m, nil)
		case *wire.ErrorMsg:
			c.onAccepted(nil, fmt.Errorf("consumer: broker rejected job: %s", m.Msg))
		case *wire.ResultPush:
			c.onResult(m)
		case *wire.ResultPushBatch:
			for i := range m.Results {
				c.onResult(&m.Results[i])
			}
		case *wire.JobDone:
			c.onJobDone(m)
		case *wire.FleetInfo:
			select {
			case waiter := <-c.fleetQueries:
				waiter <- m
			default: // stray reply
			}
		case *wire.Bye:
			readErr = errors.New("consumer: broker said goodbye")
			goto out
		}
	}
out:
	c.mu.Lock()
	c.closed = true
	c.err = readErr
	jobs := c.jobs
	c.jobs = map[core.JobID]*Job{}
	var pendingSubs []*Job
	for {
		select {
		case j := <-c.subs:
			pendingSubs = append(pendingSubs, j)
			continue
		default:
		}
		break
	}
	// Release any Fleet() callers still waiting for a reply.
	for {
		select {
		case waiter := <-c.fleetQueries:
			close(waiter)
			continue
		default:
		}
		break
	}
	c.mu.Unlock()

	fail := fmt.Errorf("consumer: connection lost: %w", readErr)
	for _, j := range pendingSubs {
		j.finish(fail)
	}
	for _, j := range jobs {
		j.finish(fail)
	}
}

// onAccepted pairs the oldest pending submission with its acknowledgement
// (or rejection).
func (c *Client) onAccepted(m *wire.JobAccepted, rejection error) {
	var job *Job
	select {
	case job = <-c.subs:
	default:
		return // stray ack
	}
	if rejection != nil {
		job.mu.Lock()
		job.err = rejection
		job.mu.Unlock()
		job.signalDone()
		return
	}
	job.ID = m.Job
	job.Tasklets = m.Tasklets
	c.mu.Lock()
	c.jobs[m.Job] = job
	c.mu.Unlock()
	job.signalDone()
}

func (c *Client) onResult(m *wire.ResultPush) {
	c.mu.Lock()
	job := c.jobs[m.Job]
	c.mu.Unlock()
	if job == nil {
		return
	}
	r := TaskResult{
		Index:    m.Index,
		Status:   m.Status,
		Return:   m.Return,
		Emitted:  m.Emitted,
		Fault:    m.FaultMsg,
		Provider: m.Provider,
		Attempts: m.Attempts,
		Exec:     time.Duration(m.ExecNanos),
	}
	if !r.OK() && job.spec.QoC.LocalFallback {
		job.startFallback(r)
		return
	}
	job.deliver(r)
}

func (c *Client) onJobDone(m *wire.JobDone) {
	c.mu.Lock()
	job := c.jobs[m.Job]
	delete(c.jobs, m.Job)
	c.mu.Unlock()
	if job == nil {
		return
	}
	job.mu.Lock()
	job.brokerDone = true
	drained := job.fallbacks == 0
	job.mu.Unlock()
	if drained {
		job.finish(nil)
	}
}

// deliver hands one final result to the application, updating counts. Safe
// against a concurrent finish (results buffered after finish are dropped —
// the job already ended abnormally).
func (j *Job) deliver(r TaskResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	if r.OK() {
		j.completed++
	} else {
		j.failed++
	}
	j.results <- r
}

// startFallback schedules an in-process execution replacing a failed
// distributed result. Runs asynchronously so a slow local execution cannot
// stall the session's read loop.
func (j *Job) startFallback(failed TaskResult) {
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	if j.prog == nil {
		j.prog = &tvm.Program{}
		if err := j.prog.UnmarshalBinary(j.spec.Program); err != nil {
			// Cannot happen for a spec that passed Validate; deliver the
			// original failure rather than dying silently.
			j.prog = nil
			j.mu.Unlock()
			j.deliver(failed)
			return
		}
	}
	prog := j.prog
	j.fallbacks++
	j.mu.Unlock()

	go func() {
		cfg := tvm.DefaultConfig()
		if j.spec.Fuel > 0 {
			cfg.Fuel = j.spec.Fuel
		}
		cfg.Seed = j.spec.Seed
		var params []tvm.Value
		if failed.Index >= 0 && failed.Index < len(j.spec.Params) {
			params = j.spec.Params[failed.Index]
		}
		start := time.Now()
		res, err := tvm.New(prog, cfg).Run(params...)
		out := TaskResult{
			Index:    failed.Index,
			Local:    true,
			Attempts: failed.Attempts + 1,
			Exec:     time.Since(start),
		}
		if err != nil {
			out.Status = core.StatusFault
			out.Fault = err.Error()
		} else {
			out.Status = core.StatusOK
			out.Return = res.Return
			out.Emitted = res.Emitted
		}
		j.deliver(out)

		j.mu.Lock()
		j.fallbacks--
		drained := j.brokerDone && j.fallbacks == 0
		j.mu.Unlock()
		if drained {
			j.finish(nil)
		}
	}()
}

// finish closes the job's result stream, recording err if the job ended
// abnormally, and releases any Submit still waiting for acknowledgement.
// Results already buffered remain drainable. Idempotent.
func (j *Job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	if err != nil {
		j.err = err
	}
	close(j.results)
	j.signalDone()
}

// Results returns the stream of final tasklet results. The channel closes
// when the job finishes (normally or abnormally); check Err afterwards.
func (j *Job) Results() <-chan TaskResult { return j.results }

// Collect drains the job to completion, returning results ordered by
// tasklet index. Failed tasklets appear with their fault status. ctx
// cancels the wait (the job keeps running broker-side; use Client.Cancel).
func (j *Job) Collect(ctx context.Context) ([]TaskResult, error) {
	out := make([]TaskResult, j.Tasklets)
	seen := 0
	ch := j.Results()
	for {
		select {
		case r, ok := <-ch:
			if !ok {
				if err := j.Err(); err != nil {
					return nil, err
				}
				return out, nil
			}
			if r.Index >= 0 && r.Index < len(out) {
				out[r.Index] = r
				seen++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Err reports how the job ended: nil for normal completion (even with
// failed tasklets), non-nil for session loss.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Counts returns completed and failed tasklet counts so far.
func (j *Job) Counts() (completed, failed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed, j.failed
}
