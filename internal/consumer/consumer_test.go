package consumer

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stdtasks"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// fakeBroker accepts one consumer connection and lets the test script the
// broker side of the protocol.
type fakeBroker struct {
	t    *testing.T
	ln   net.Listener
	conn chan *wire.Conn
}

func newFakeBroker(t *testing.T) *fakeBroker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb := &fakeBroker{t: t, ln: ln, conn: make(chan *wire.Conn, 1)}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		conn := wire.NewConn(nc)
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		if _, ok := msg.(*wire.Hello); !ok {
			fb.t.Errorf("first message = %T", msg)
			return
		}
		if err := conn.Send(&wire.Welcome{ID: 9}); err != nil {
			return
		}
		fb.conn <- conn
	}()
	return fb
}

func (fb *fakeBroker) addr() string { return fb.ln.Addr().String() }

func (fb *fakeBroker) accept() *wire.Conn {
	select {
	case c := <-fb.conn:
		return c
	case <-time.After(5 * time.Second):
		fb.t.Fatal("no consumer connected")
		return nil
	}
}

func spinSpec(rows int) core.JobSpec {
	data, err := stdtasks.Bytecode("spin")
	if err != nil {
		panic(err)
	}
	params := make([][]tvm.Value, rows)
	for i := range params {
		params[i] = []tvm.Value{tvm.Int(int64(i))}
	}
	return core.JobSpec{Program: data, Params: params, Seed: 1}
}

func TestConnectHandshake(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ID() != 9 {
		t.Fatalf("id = %d", c.ID())
	}
	fb.accept()
}

func TestSubmitValidatesLocally(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fb.accept()
	// Garbage program never reaches the broker.
	if _, err := c.Submit(core.JobSpec{Program: []byte("junk"), Params: [][]tvm.Value{{}}}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSubmitDeliversResultsInCompletionOrder(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()

	go func() {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		sub := msg.(*wire.SubmitJob)
		_ = conn.Send(&wire.JobAccepted{Job: 5, Tasklets: len(sub.Params)})
		// Deliver results out of index order.
		for _, idx := range []int{2, 0, 1} {
			_ = conn.Send(&wire.ResultPush{
				Job: 5, Index: idx, Status: core.StatusOK,
				Return: tvm.Int(int64(idx * 10)),
			})
		}
		_ = conn.Send(&wire.JobDone{Job: 5, Completed: 3})
	}()

	job, err := c.Submit(spinSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != 5 || job.Tasklets != 3 {
		t.Fatalf("job = %+v", job)
	}
	res, err := job.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res[i].Return.I != int64(i*10) {
			t.Fatalf("res[%d] = %+v (Collect must re-order by index)", i, res[i])
		}
	}
	completed, failed := job.Counts()
	if completed != 3 || failed != 0 {
		t.Fatalf("counts = %d/%d", completed, failed)
	}
}

func TestSubmitRejectionSurfacesError(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeBadJob, Msg: "quota exceeded"})
	}()
	_, err = c.Submit(spinSpec(1))
	if err == nil || !strings.Contains(err.Error(), "quota exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestBrokerDeathFailsOutstandingJobs(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		_ = conn.Send(&wire.JobAccepted{Job: 1, Tasklets: 1})
		time.Sleep(50 * time.Millisecond)
		conn.Close() // broker dies mid-job
	}()
	job, err := c.Submit(spinSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = job.Collect(context.Background())
	if err == nil || !strings.Contains(err.Error(), "connection lost") {
		t.Fatalf("err = %v", err)
	}
}

func TestBrokerDeathFailsPendingSubmission(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		conn.Close() // die before acknowledging
	}()
	if _, err := c.Submit(spinSpec(1)); err == nil {
		t.Fatal("submission should fail when the broker dies before ack")
	}
}

func TestCollectRespectsContext(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		_ = conn.Send(&wire.JobAccepted{Job: 1, Tasklets: 1})
		// Never deliver results.
	}()
	job, err := c.Submit(spinSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := job.Collect(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestResultsChannelClosesAfterJobDone(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		_ = conn.Send(&wire.JobAccepted{Job: 1, Tasklets: 1})
		_ = conn.Send(&wire.ResultPush{Job: 1, Index: 0, Status: core.StatusOK, Return: tvm.Int(1)})
		_ = conn.Send(&wire.JobDone{Job: 1, Completed: 1})
	}()
	job, err := c.Submit(spinSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	var got []TaskResult
	for r := range job.Results() {
		got = append(got, r)
	}
	if len(got) != 1 || job.Err() != nil {
		t.Fatalf("got %v, err %v", got, job.Err())
	}
	// Results after close returns a closed channel, not nil.
	if _, ok := <-job.Results(); ok {
		t.Fatal("drained job yielded another result")
	}
}

func TestCancelSendsCancelJob(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	recvd := make(chan wire.Message, 2)
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		_ = conn.Send(&wire.JobAccepted{Job: 3, Tasklets: 1})
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		recvd <- msg
	}()
	job, err := c.Submit(spinSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(job); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-recvd:
		cj, ok := msg.(*wire.CancelJob)
		if !ok || cj.Job != 3 {
			t.Fatalf("broker received %#v", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel never reached broker")
	}
}

func TestConnectFailures(t *testing.T) {
	if _, err := Connect("127.0.0.1:1", "test"); err == nil {
		t.Fatal("unreachable broker accepted")
	}
}

func TestTaskResultOK(t *testing.T) {
	if !(TaskResult{Status: core.StatusOK}).OK() {
		t.Fatal("OK broken")
	}
	if (TaskResult{Status: core.StatusLost}).OK() {
		t.Fatal("lost reported OK")
	}
}

func TestLocalFallbackReplacesFailedResult(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		_ = conn.Send(&wire.JobAccepted{Job: 1, Tasklets: 2})
		// Index 0 succeeds remotely; index 1 is lost and must be computed
		// locally by the consumer.
		_ = conn.Send(&wire.ResultPush{Job: 1, Index: 0, Status: core.StatusOK,
			Return: tvm.Int(stdtasks.RefSpin(0))})
		_ = conn.Send(&wire.ResultPush{Job: 1, Index: 1, Status: core.StatusLost,
			FaultMsg: "all attempts lost"})
		_ = conn.Send(&wire.JobDone{Job: 1, Completed: 1, Failed: 1})
	}()

	spec := spinSpec(2)
	spec.QoC.LocalFallback = true
	job, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK() || res[0].Local {
		t.Fatalf("res[0] = %+v", res[0])
	}
	if !res[1].OK() || !res[1].Local {
		t.Fatalf("res[1] = %+v, want local fallback success", res[1])
	}
	if res[1].Return.I != stdtasks.RefSpin(1) {
		t.Fatalf("fallback computed %s, want %d", res[1].Return, stdtasks.RefSpin(1))
	}
	completed, failed := job.Counts()
	if completed != 2 || failed != 0 {
		t.Fatalf("counts = %d/%d, fallback should convert the failure", completed, failed)
	}
}

func TestLocalFallbackDisabledKeepsFailure(t *testing.T) {
	fb := newFakeBroker(t)
	c, err := Connect(fb.addr(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := fb.accept()
	go func() {
		if _, err := conn.Recv(); err != nil {
			return
		}
		_ = conn.Send(&wire.JobAccepted{Job: 1, Tasklets: 1})
		_ = conn.Send(&wire.ResultPush{Job: 1, Index: 0, Status: core.StatusLost})
		_ = conn.Send(&wire.JobDone{Job: 1, Failed: 1})
	}()
	job, err := c.Submit(spinSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].OK() || res[0].Local {
		t.Fatalf("res = %+v, want remote failure preserved", res[0])
	}
}
