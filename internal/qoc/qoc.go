// Package qoc implements the Quality-of-Computation engine: the state
// machine that turns raw execution attempts into final tasklet results
// according to the tasklet's QoC goals (best-effort, redundant, voting).
//
// The engine is transport-agnostic: the live broker and the discrete-event
// simulator both drive Tracker instances, feeding attempt outcomes in and
// acting on the returned Decisions (launch more attempts, cancel redundant
// ones, deliver the final result).
package qoc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tvm"
)

// DefaultRetries is the re-issue budget applied when QoC.MaxRetries is zero.
const DefaultRetries = 3

// Decision tells the caller what to do after a state change.
type Decision struct {
	// Launch is the number of new attempts to schedule now.
	Launch int
	// Cancel lists outstanding attempts that became redundant (their
	// results can no longer affect the outcome); the caller should send
	// best-effort cancellations.
	Cancel []core.AttemptID
	// Done reports that the tasklet reached a final state; Final is valid.
	Done bool
	// Final is the tasklet's final result when Done.
	Final core.Result
}

// attemptState tracks one outstanding attempt. It is stored by value so the
// attempt map never allocates per entry.
type attemptState struct {
	provider core.ProviderID
	launched bool
}

// Tracker manages the attempt lifecycle of a single tasklet.
// It is not safe for concurrent use; the broker serializes per-tasklet
// events through its scheduling loop.
type Tracker struct {
	tasklet *core.Tasklet
	goal    core.QoC

	attempts map[core.AttemptID]attemptState
	// okResults accumulates successful attempt results for voting.
	okResults []core.Result
	// lastFailure remembers the most recent non-OK result for error
	// reporting when the tasklet ultimately fails.
	lastFailure core.Result
	hasFailure  bool

	launched    int // total attempts handed to the caller to launch
	retryBudget int

	done  bool
	final core.Result
}

// NewTracker creates the tracker for one tasklet. The tasklet's QoC is
// normalized (replica minimums, retry defaults) before use.
func NewTracker(t *core.Tasklet) *Tracker {
	tr := &Tracker{}
	tr.Reset(t)
	return tr
}

// Reset re-initializes the tracker for a new tasklet, reusing its internal
// storage. The lifecycle engine pools tracker-bearing records so the
// steady-state submit→result cycle allocates nothing.
func (tr *Tracker) Reset(t *core.Tasklet) {
	goal := t.QoC.Normalize()
	retries := goal.MaxRetries
	if retries == 0 {
		retries = DefaultRetries
	}
	tr.tasklet = t
	tr.goal = goal
	if tr.attempts == nil {
		tr.attempts = make(map[core.AttemptID]attemptState, goal.Replicas)
	} else {
		clear(tr.attempts)
	}
	tr.okResults = tr.okResults[:0]
	tr.lastFailure = core.Result{}
	tr.hasFailure = false
	tr.launched = 0
	tr.retryBudget = retries
	tr.done = false
	tr.final = core.Result{}
}

// Tasklet returns the tracked tasklet.
func (tr *Tracker) Tasklet() *core.Tasklet { return tr.tasklet }

// Goal returns the normalized QoC in force.
func (tr *Tracker) Goal() core.QoC { return tr.goal }

// Done reports whether the tasklet reached a final state.
func (tr *Tracker) Done() bool { return tr.done }

// Final returns the final result; valid only after Done.
func (tr *Tracker) Final() core.Result { return tr.final }

// Outstanding returns the number of attempts in flight.
func (tr *Tracker) Outstanding() int { return len(tr.attempts) }

// FinalCacheable reports whether the tasklet's final result may enter the
// result cache: the tracker must be done, the final must be a successful
// execution (faults, losses, and cancellations are never memoized — they
// describe this run, not the computation), and the tasklet must not have
// opted out via QoC.NoCache. Raw attempt outcomes are never cacheable; only
// this QoC-finalized result is, which under voting means it already carries
// majority agreement.
func (tr *Tracker) FinalCacheable() bool {
	return tr.done && tr.final.Status == core.StatusOK && !tr.goal.NoCache
}

// Attempts reports the total number of attempts launched so far.
func (tr *Tracker) Attempts() int { return tr.launched }

// LastFailure returns the most recent non-OK attempt result, if any.
func (tr *Tracker) LastFailure() (core.Result, bool) {
	return tr.lastFailure, tr.hasFailure
}

// ActiveProviders returns the providers currently executing attempts, used
// by the caller to keep replicas on distinct providers.
func (tr *Tracker) ActiveProviders() map[core.ProviderID]bool {
	m := make(map[core.ProviderID]bool, len(tr.attempts))
	for _, a := range tr.attempts {
		if a.launched {
			m[a.provider] = true
		}
	}
	return m
}

// AppendActiveProviders appends the providers currently executing attempts
// to buf and returns the extended slice. It is the allocation-free variant
// of ActiveProviders for placement hot paths: callers pass a scratch slice
// (typically buf[:0]) that is reused across placement attempts.
func (tr *Tracker) AppendActiveProviders(buf []core.ProviderID) []core.ProviderID {
	for _, a := range tr.attempts {
		if a.launched {
			buf = append(buf, a.provider)
		}
	}
	return buf
}

// Start returns the initial decision: launch the replica set.
func (tr *Tracker) Start() Decision {
	return Decision{Launch: tr.goal.Replicas}
}

// OnLaunched records that the caller placed an attempt on a provider.
func (tr *Tracker) OnLaunched(id core.AttemptID, p core.ProviderID) {
	tr.attempts[id] = attemptState{provider: p, launched: true}
	tr.launched++
}

// OnLaunchFailed records that the caller could not place an attempt (no
// eligible provider); the attempt stays pending and the caller retries
// placement later. No state changes beyond bookkeeping are needed.
func (tr *Tracker) OnLaunchFailed() {}

// OnResult feeds one attempt outcome and returns the next decision.
// Unknown attempt IDs (duplicates, post-completion stragglers) are ignored.
func (tr *Tracker) OnResult(res core.Result) Decision {
	if tr.done {
		return Decision{Done: true, Final: tr.final}
	}
	if _, known := tr.attempts[res.Attempt]; !known {
		return Decision{}
	}
	delete(tr.attempts, res.Attempt)

	switch res.Status {
	case core.StatusOK:
		return tr.onSuccess(res)
	case core.StatusFault:
		// Deterministic program faults (div-by-zero, index error, abort)
		// will recur on any provider; re-running wastes work. Environment
		// faults (cancel) behave like losses.
		if res.FaultCode == tvm.FaultCancelled {
			return tr.onLoss(res)
		}
		return tr.onFault(res)
	default: // StatusLost, StatusRejected
		return tr.onLoss(res)
	}
}

func (tr *Tracker) onSuccess(res core.Result) Decision {
	switch tr.goal.Mode {
	case core.QoCBestEffort, core.QoCRedundant:
		return tr.complete(res)
	case core.QoCVoting:
		tr.okResults = append(tr.okResults, res)
		need := core.Majority(tr.goal.Replicas)
		counts := map[uint64]int{}
		var winner *core.Result
		for i := range tr.okResults {
			h := tr.okResults[i].Hash()
			counts[h]++
			if counts[h] >= need {
				winner = &tr.okResults[i]
			}
		}
		if winner != nil {
			return tr.complete(*winner)
		}
		// No majority yet. If every launched attempt has reported and
		// agreement is still short, spend retries on extra attempts.
		if len(tr.attempts) == 0 {
			if tr.retryBudget > 0 {
				tr.retryBudget--
				return Decision{Launch: 1}
			}
			return tr.fail(res, "voting: no majority after all attempts")
		}
		return Decision{}
	}
	return tr.complete(res) // unreachable; defensive
}

func (tr *Tracker) onFault(res core.Result) Decision {
	tr.lastFailure, tr.hasFailure = res, true
	switch tr.goal.Mode {
	case core.QoCBestEffort:
		// A deterministic fault is the tasklet's true outcome.
		return tr.complete(res)
	default:
		// Redundant/voting: other replicas may still succeed (e.g. the
		// fault was fuel exhaustion on a throttled provider). When nothing
		// remains in flight and nothing can, give up.
		if len(tr.attempts) == 0 && !tr.canStillComplete() {
			return tr.complete(res)
		}
		if len(tr.attempts) == 0 {
			if tr.retryBudget > 0 {
				tr.retryBudget--
				return Decision{Launch: 1}
			}
			return tr.complete(res)
		}
		return Decision{}
	}
}

func (tr *Tracker) onLoss(res core.Result) Decision {
	tr.lastFailure, tr.hasFailure = res, true
	if tr.retryBudget > 0 {
		tr.retryBudget--
		return Decision{Launch: 1}
	}
	if len(tr.attempts) == 0 && !tr.tryCompleteFromVotes() {
		lost := res
		lost.Status = core.StatusLost
		return tr.fail(lost, "all attempts lost and retry budget exhausted")
	}
	return Decision{}
}

// canStillComplete reports whether voting could still reach a majority with
// the retry budget that remains.
func (tr *Tracker) canStillComplete() bool {
	if tr.goal.Mode != core.QoCVoting {
		return tr.retryBudget > 0
	}
	need := core.Majority(tr.goal.Replicas)
	maxAgree := 0
	counts := map[uint64]int{}
	for i := range tr.okResults {
		h := tr.okResults[i].Hash()
		counts[h]++
		if counts[h] > maxAgree {
			maxAgree = counts[h]
		}
	}
	return maxAgree+tr.retryBudget+len(tr.attempts) >= need
}

// tryCompleteFromVotes completes a voting tasklet if a majority already
// exists (used when a loss drains the attempt set).
func (tr *Tracker) tryCompleteFromVotes() bool {
	if tr.goal.Mode != core.QoCVoting {
		return false
	}
	need := core.Majority(tr.goal.Replicas)
	counts := map[uint64]int{}
	for i := range tr.okResults {
		h := tr.okResults[i].Hash()
		counts[h]++
		if counts[h] >= need {
			tr.complete(tr.okResults[i])
			return true
		}
	}
	return false
}

func (tr *Tracker) complete(res core.Result) Decision {
	tr.done = true
	tr.final = res
	tr.final.Tasklet = tr.tasklet.ID
	tr.final.Job = tr.tasklet.Job
	tr.final.Index = tr.tasklet.Index
	cancel := make([]core.AttemptID, 0, len(tr.attempts))
	for id := range tr.attempts {
		cancel = append(cancel, id)
	}
	clear(tr.attempts)
	return Decision{Done: true, Final: tr.final, Cancel: cancel}
}

func (tr *Tracker) fail(res core.Result, msg string) Decision {
	if res.Status == core.StatusOK {
		res.Status = core.StatusFault
	}
	if res.FaultMsg == "" {
		res.FaultMsg = msg
	} else {
		res.FaultMsg = fmt.Sprintf("%s (%s)", msg, res.FaultMsg)
	}
	return tr.complete(res)
}
