package qoc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tvm"
)

func TestVoteStrength(t *testing.T) {
	if s := (core.QoC{Mode: core.QoCBestEffort}).VoteStrength(); s != 0 {
		t.Errorf("best-effort strength = %d, want 0", s)
	}
	if s := (core.QoC{Mode: core.QoCRedundant, Replicas: 5}).VoteStrength(); s != 0 {
		t.Errorf("redundant strength = %d, want 0", s)
	}
	// Voting normalizes to at least 3 replicas.
	if s := (core.QoC{Mode: core.QoCVoting}).VoteStrength(); s != 3 {
		t.Errorf("voting strength = %d, want 3", s)
	}
	if s := (core.QoC{Mode: core.QoCVoting, Replicas: 5}).VoteStrength(); s != 5 {
		t.Errorf("voting(5) strength = %d, want 5", s)
	}
}

func cacheableTasklet(q core.QoC) *core.Tasklet {
	return &core.Tasklet{ID: 1, Job: 1, QoC: q}
}

func TestFinalCacheableOnlyAfterOKFinal(t *testing.T) {
	tr := NewTracker(cacheableTasklet(core.QoC{}))
	if tr.FinalCacheable() {
		t.Fatal("cacheable before any result")
	}
	tr.Start()
	tr.OnLaunched(1, 1)
	tr.OnResult(core.Result{Attempt: 1, Status: core.StatusOK, Return: tvm.Int(1)})
	if !tr.Done() || !tr.FinalCacheable() {
		t.Fatal("OK final should be cacheable")
	}
}

func TestFinalCacheableRejectsFaults(t *testing.T) {
	tr := NewTracker(cacheableTasklet(core.QoC{}))
	tr.Start()
	tr.OnLaunched(1, 1)
	tr.OnResult(core.Result{Attempt: 1, Status: core.StatusFault, FaultCode: tvm.FaultDivByZero})
	if !tr.Done() {
		t.Fatal("best-effort fault should finalize")
	}
	if tr.FinalCacheable() {
		t.Fatal("faulted final must not be cacheable")
	}
}

func TestFinalCacheableRejectsLosses(t *testing.T) {
	tr := NewTracker(cacheableTasklet(core.QoC{MaxRetries: -1}))
	tr.Start()
	// Exhaust the default retry budget with losses.
	attempt := core.AttemptID(1)
	for !tr.Done() {
		tr.OnLaunched(attempt, core.ProviderID(attempt))
		tr.OnResult(core.Result{Attempt: attempt, Status: core.StatusLost})
		attempt++
		if attempt > 100 {
			t.Fatal("tracker never finalized")
		}
	}
	if tr.FinalCacheable() {
		t.Fatal("lost final must not be cacheable")
	}
}

func TestFinalCacheableHonorsNoCache(t *testing.T) {
	tr := NewTracker(cacheableTasklet(core.QoC{NoCache: true}))
	tr.Start()
	tr.OnLaunched(1, 1)
	tr.OnResult(core.Result{Attempt: 1, Status: core.StatusOK, Return: tvm.Int(1)})
	if !tr.Done() {
		t.Fatal("expected done")
	}
	if tr.FinalCacheable() {
		t.Fatal("NoCache final must not be cacheable")
	}
}

func TestFinalCacheableVotingMajority(t *testing.T) {
	tr := NewTracker(cacheableTasklet(core.QoC{Mode: core.QoCVoting, Replicas: 3}))
	tr.Start()
	for i := core.AttemptID(1); i <= 3; i++ {
		tr.OnLaunched(i, core.ProviderID(i))
	}
	// One faulty provider disagrees; majority of 2 still finalizes OK.
	tr.OnResult(core.Result{Attempt: 1, Status: core.StatusOK, Return: tvm.Int(42)})
	tr.OnResult(core.Result{Attempt: 2, Status: core.StatusOK, Return: tvm.Int(-1)})
	tr.OnResult(core.Result{Attempt: 3, Status: core.StatusOK, Return: tvm.Int(42)})
	if !tr.Done() || tr.Final().Return.I != 42 {
		t.Fatalf("voting did not finalize on majority: done=%v final=%+v", tr.Done(), tr.Final())
	}
	if !tr.FinalCacheable() {
		t.Fatal("voting OK final should be cacheable")
	}
}
