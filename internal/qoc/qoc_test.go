package qoc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tvm"
)

func newTasklet(q core.QoC) *core.Tasklet {
	return &core.Tasklet{ID: 1, Job: 2, Index: 3, QoC: q}
}

// launch simulates the caller placing `n` attempts on providers p0, p0+1...
func launch(tr *Tracker, firstAttempt core.AttemptID, n int, firstProvider core.ProviderID) []core.AttemptID {
	ids := make([]core.AttemptID, n)
	for i := 0; i < n; i++ {
		id := firstAttempt + core.AttemptID(i)
		tr.OnLaunched(id, firstProvider+core.ProviderID(i))
		ids[i] = id
	}
	return ids
}

func okResult(a core.AttemptID, val int64) core.Result {
	return core.Result{Attempt: a, Status: core.StatusOK, Return: tvm.Int(val)}
}

func lostResult(a core.AttemptID) core.Result {
	return core.Result{Attempt: a, Status: core.StatusLost}
}

func faultResult(a core.AttemptID, code tvm.FaultCode) core.Result {
	return core.Result{Attempt: a, Status: core.StatusFault, FaultCode: code, FaultMsg: "boom"}
}

func TestBestEffortHappyPath(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{}))
	d := tr.Start()
	if d.Launch != 1 {
		t.Fatalf("initial launch = %d, want 1", d.Launch)
	}
	ids := launch(tr, 1, 1, 10)
	d = tr.OnResult(okResult(ids[0], 42))
	if !d.Done || d.Final.Status != core.StatusOK || d.Final.Return.I != 42 {
		t.Fatalf("decision = %+v", d)
	}
	// Final result carries the tasklet identity, not the attempt's zero
	// fields.
	if d.Final.Tasklet != 1 || d.Final.Job != 2 || d.Final.Index != 3 {
		t.Fatalf("identity not stamped: %+v", d.Final)
	}
	if !tr.Done() {
		t.Fatal("tracker not done")
	}
}

func TestBestEffortDeterministicFaultIsFinal(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{}))
	tr.Start()
	ids := launch(tr, 1, 1, 10)
	d := tr.OnResult(faultResult(ids[0], tvm.FaultDivByZero))
	if !d.Done || d.Final.Status != core.StatusFault {
		t.Fatalf("deterministic fault should complete immediately: %+v", d)
	}
	if d.Launch != 0 {
		t.Fatal("must not retry a deterministic fault")
	}
}

func TestBestEffortRetriesLostAttempts(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{}))
	tr.Start()
	next := core.AttemptID(1)
	for retry := 0; retry < DefaultRetries; retry++ {
		launch(tr, next, 1, core.ProviderID(10+retry))
		d := tr.OnResult(lostResult(next))
		if d.Done {
			t.Fatalf("done after %d losses, want retry", retry+1)
		}
		if d.Launch != 1 {
			t.Fatalf("loss %d: launch = %d, want 1", retry, d.Launch)
		}
		next++
	}
	// Budget exhausted: the next loss is final.
	launch(tr, next, 1, 99)
	d := tr.OnResult(lostResult(next))
	if !d.Done || d.Final.Status != core.StatusLost {
		t.Fatalf("decision = %+v, want final lost", d)
	}
}

func TestBestEffortCancelledFaultRetries(t *testing.T) {
	// FaultCancelled is an environment fault, not a program fault.
	tr := NewTracker(newTasklet(core.QoC{}))
	tr.Start()
	ids := launch(tr, 1, 1, 10)
	d := tr.OnResult(faultResult(ids[0], tvm.FaultCancelled))
	if d.Done || d.Launch != 1 {
		t.Fatalf("cancelled attempt should re-issue: %+v", d)
	}
}

func TestRedundantFirstResultWinsAndCancelsRest(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCRedundant, Replicas: 3}))
	d := tr.Start()
	if d.Launch != 3 {
		t.Fatalf("launch = %d, want 3", d.Launch)
	}
	ids := launch(tr, 1, 3, 10)
	d = tr.OnResult(okResult(ids[1], 7))
	if !d.Done || d.Final.Return.I != 7 {
		t.Fatalf("decision = %+v", d)
	}
	if len(d.Cancel) != 2 {
		t.Fatalf("cancel = %v, want the 2 outstanding attempts", d.Cancel)
	}
}

func TestRedundantSurvivesPartialLoss(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCRedundant, Replicas: 2}))
	tr.Start()
	ids := launch(tr, 1, 2, 10)
	d := tr.OnResult(lostResult(ids[0]))
	if d.Done {
		t.Fatal("done too early")
	}
	if d.Launch != 1 {
		t.Fatalf("lost replica should re-issue, launch = %d", d.Launch)
	}
	d = tr.OnResult(okResult(ids[1], 5))
	if !d.Done || d.Final.Return.I != 5 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestRedundantAllFaultReportsFault(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCRedundant, Replicas: 2, MaxRetries: 1}))
	tr.Start()
	ids := launch(tr, 1, 2, 10)
	d := tr.OnResult(faultResult(ids[0], tvm.FaultOutOfFuel))
	if d.Done {
		t.Fatal("first fault should not finish a redundant tasklet")
	}
	d = tr.OnResult(faultResult(ids[1], tvm.FaultOutOfFuel))
	// One retry remains: it should be spent.
	if d.Done || d.Launch != 1 {
		t.Fatalf("expected retry, got %+v", d)
	}
	launch(tr, 3, 1, 30)
	d = tr.OnResult(faultResult(3, tvm.FaultOutOfFuel))
	if !d.Done || d.Final.Status != core.StatusFault || d.Final.FaultCode != tvm.FaultOutOfFuel {
		t.Fatalf("decision = %+v", d)
	}
}

func TestVotingMajorityCompletes(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCVoting, Replicas: 3}))
	d := tr.Start()
	if d.Launch != 3 {
		t.Fatalf("launch = %d", d.Launch)
	}
	ids := launch(tr, 1, 3, 10)
	d = tr.OnResult(okResult(ids[0], 9))
	if d.Done {
		t.Fatal("one vote cannot complete a 3-replica voting tasklet")
	}
	d = tr.OnResult(okResult(ids[1], 9))
	if !d.Done || d.Final.Return.I != 9 {
		t.Fatalf("2/3 agreement should complete: %+v", d)
	}
	if len(d.Cancel) != 1 {
		t.Fatalf("third replica should be cancelled: %v", d.Cancel)
	}
}

func TestVotingDisagreementSpawnsExtraAttempt(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCVoting, Replicas: 3, MaxRetries: 2}))
	tr.Start()
	ids := launch(tr, 1, 3, 10)
	tr.OnResult(okResult(ids[0], 1))
	tr.OnResult(okResult(ids[1], 2)) // disagreement
	d := tr.OnResult(okResult(ids[2], 3))
	if d.Done || d.Launch != 1 {
		t.Fatalf("3-way disagreement should retry: %+v", d)
	}
	launch(tr, 4, 1, 40)
	d = tr.OnResult(okResult(4, 2))
	if !d.Done || d.Final.Return.I != 2 {
		t.Fatalf("tie-breaking vote should complete with 2: %+v", d)
	}
}

func TestVotingNeverAgreesFails(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCVoting, Replicas: 3, MaxRetries: 1}))
	tr.Start()
	ids := launch(tr, 1, 3, 10)
	tr.OnResult(okResult(ids[0], 1))
	tr.OnResult(okResult(ids[1], 2))
	d := tr.OnResult(okResult(ids[2], 3))
	if d.Launch != 1 {
		t.Fatalf("expected one retry, got %+v", d)
	}
	launch(tr, 4, 1, 40)
	d = tr.OnResult(okResult(4, 4))
	if !d.Done || d.Final.Status != core.StatusFault {
		t.Fatalf("persistent disagreement must fail: %+v", d)
	}
}

func TestVotingMajorityAlreadyReachedWhenLossArrives(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCVoting, Replicas: 3, MaxRetries: 0}))
	tr.Start()
	ids := launch(tr, 1, 3, 10)
	tr.OnResult(okResult(ids[0], 9))
	tr.OnResult(okResult(ids[1], 9))
	// Already done; the straggler loss must not disturb the final state.
	d := tr.OnResult(lostResult(ids[2]))
	if !d.Done || d.Final.Return.I != 9 {
		t.Fatalf("straggler loss corrupted final state: %+v", d)
	}
}

func TestDuplicateAndUnknownResultsIgnored(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{}))
	tr.Start()
	ids := launch(tr, 1, 1, 10)
	d := tr.OnResult(okResult(99, 1)) // unknown attempt
	if d.Done || d.Launch != 0 {
		t.Fatalf("unknown attempt changed state: %+v", d)
	}
	tr.OnResult(okResult(ids[0], 1))
	d = tr.OnResult(okResult(ids[0], 2)) // duplicate after completion
	if !d.Done || d.Final.Return.I != 1 {
		t.Fatalf("duplicate result changed outcome: %+v", d)
	}
}

func TestActiveProvidersTracksInFlight(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCRedundant, Replicas: 2}))
	tr.Start()
	ids := launch(tr, 1, 2, 10)
	ap := tr.ActiveProviders()
	if !ap[10] || !ap[11] || len(ap) != 2 {
		t.Fatalf("active providers = %v", ap)
	}
	tr.OnResult(lostResult(ids[0]))
	ap = tr.ActiveProviders()
	if ap[10] || !ap[11] {
		t.Fatalf("active providers after loss = %v", ap)
	}
}

func TestAppendActiveProvidersMatchesMap(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCRedundant, Replicas: 3}))
	tr.Start()
	ids := launch(tr, 1, 3, 10)
	tr.OnResult(lostResult(ids[1]))

	scratch := make([]core.ProviderID, 4) // dirty scratch must be overwritten, not appended to
	got := tr.AppendActiveProviders(scratch[:0])
	want := tr.ActiveProviders()
	if len(got) != len(want) {
		t.Fatalf("append variant returned %v, map variant %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("append variant returned %v, map variant %v", got, want)
		}
	}
	if &got[0] != &scratch[0] {
		t.Fatal("append variant did not reuse the scratch backing array")
	}
}

func TestAttemptsCounting(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCRedundant, Replicas: 3}))
	tr.Start()
	launch(tr, 1, 3, 10)
	if tr.Attempts() != 3 || tr.Outstanding() != 3 {
		t.Fatalf("attempts=%d outstanding=%d", tr.Attempts(), tr.Outstanding())
	}
	tr.OnResult(okResult(1, 1))
	if tr.Outstanding() != 0 { // completion clears outstanding
		t.Fatalf("outstanding after done = %d", tr.Outstanding())
	}
}

func TestNormalizationAppliedByTracker(t *testing.T) {
	tr := NewTracker(newTasklet(core.QoC{Mode: core.QoCVoting, Replicas: 1}))
	if tr.Goal().Replicas != 3 {
		t.Fatalf("voting replicas = %d, want normalized 3", tr.Goal().Replicas)
	}
	if d := tr.Start(); d.Launch != 3 {
		t.Fatalf("launch = %d, want 3", d.Launch)
	}
}

// TestTrackerRandomSequencesTerminate drives trackers with random outcome
// sequences for every QoC mode and checks the global invariants: the engine
// always reaches a final state, never launches more attempts than the
// replica set plus its retry budget (plus voting's disagreement retries),
// and never changes its mind after completion.
func TestTrackerRandomSequencesTerminate(t *testing.T) {
	rng := uint64(0x12345)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}

	modes := []core.QoC{
		{},
		{Mode: core.QoCBestEffort, MaxRetries: 5},
		{Mode: core.QoCRedundant, Replicas: 2},
		{Mode: core.QoCRedundant, Replicas: 3, MaxRetries: 2},
		{Mode: core.QoCVoting, Replicas: 3},
		{Mode: core.QoCVoting, Replicas: 5, MaxRetries: 4},
	}
	for trial := 0; trial < 2000; trial++ {
		q := modes[next(len(modes))]
		tr := NewTracker(newTasklet(q))
		goal := tr.Goal()
		retries := goal.MaxRetries
		if retries == 0 {
			retries = DefaultRetries
		}
		// Upper bound on launches: initial replicas + every retry the
		// budget allows (voting disagreement and losses share the budget).
		maxLaunches := goal.Replicas + retries

		d := tr.Start()
		nextAttempt := core.AttemptID(1)
		nextProvider := core.ProviderID(1)
		var inFlight []core.AttemptID
		launched := 0
		steps := 0
		for !tr.Done() {
			steps++
			if steps > 1000 {
				t.Fatalf("trial %d (%+v): tracker did not terminate", trial, q)
			}
			for i := 0; i < d.Launch; i++ {
				tr.OnLaunched(nextAttempt, nextProvider)
				inFlight = append(inFlight, nextAttempt)
				nextAttempt++
				nextProvider++
				launched++
			}
			if launched > maxLaunches {
				t.Fatalf("trial %d (%+v): launched %d > bound %d", trial, q, launched, maxLaunches)
			}
			if len(inFlight) == 0 {
				t.Fatalf("trial %d (%+v): stuck with no attempts outstanding and not done", trial, q)
			}
			// Resolve a random in-flight attempt.
			pick := next(len(inFlight))
			att := inFlight[pick]
			inFlight = append(inFlight[:pick], inFlight[pick+1:]...)

			var res core.Result
			res.Attempt = att
			switch next(5) {
			case 0:
				res.Status = core.StatusLost
			case 1:
				res.Status = core.StatusFault
				res.FaultCode = tvm.FaultOutOfFuel
				res.FaultMsg = "x"
			default:
				res.Status = core.StatusOK
				res.Return = tvm.Int(int64(next(2))) // two possible answers -> vote splits
			}
			d = tr.OnResult(res)
		}
		// Post-completion results must not disturb the final state.
		final := tr.Final()
		d2 := tr.OnResult(core.Result{Attempt: 999999, Status: core.StatusOK, Return: tvm.Int(7)})
		if !d2.Done || d2.Final.Hash() != final.Hash() {
			t.Fatalf("trial %d: completion not stable", trial)
		}
	}
}
