// Package workload generates the fleets, task batches and arrival processes
// the experiments sweep over: homogeneous and mixed device fleets with
// controlled speed spread, fixed and heavy-tailed tasklet sizes, closed
// batches and open Poisson arrivals. All generators are deterministic given
// their seed.
package workload

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// rng is a self-contained xorshift64* generator.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) uniform() float64 { return float64(r.next()>>11) / (1 << 53) }

// exp samples an exponential with the given mean.
func (r *rng) exp(mean float64) float64 {
	u := r.uniform()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// ---------- fleets ----------

// Homogeneous builds n identical devices.
func Homogeneous(n int, class core.DeviceClass, slots int) []sim.DeviceSpec {
	devs := make([]sim.DeviceSpec, n)
	for i := range devs {
		devs[i] = sim.DeviceSpec{Class: class, Slots: slots}
	}
	return devs
}

// PaperMix reproduces the device mix of the paper's testbed era: a couple
// of servers, office desktops, laptops, and a tail of phones. The slice
// cycles through the mix to reach n devices.
func PaperMix(n int) []sim.DeviceSpec {
	pattern := []sim.DeviceSpec{
		{Class: core.ClassServer, Slots: 4},
		{Class: core.ClassDesktop, Slots: 2},
		{Class: core.ClassDesktop, Slots: 2},
		{Class: core.ClassLaptop, Slots: 2},
		{Class: core.ClassLaptop, Slots: 1},
		{Class: core.ClassMobile, Slots: 1},
		{Class: core.ClassMobile, Slots: 1},
		{Class: core.ClassMobile, Slots: 1},
	}
	devs := make([]sim.DeviceSpec, n)
	for i := range devs {
		devs[i] = pattern[i%len(pattern)]
	}
	return devs
}

// SpreadFleet builds n single-slot devices whose speeds are log-uniformly
// spread over [base/sqrt(spread), base*sqrt(spread)]; spread = 1 is
// homogeneous. The heterogeneity experiment (E4) sweeps spread while
// holding aggregate capacity roughly constant.
func SpreadFleet(n int, base float64, spread float64, seed uint64) []sim.DeviceSpec {
	r := newRNG(seed)
	if spread < 1 {
		spread = 1
	}
	devs := make([]sim.DeviceSpec, n)
	for i := range devs {
		// log-uniform in [-ln(sqrt(spread)), +ln(sqrt(spread))]
		e := (r.uniform() - 0.5) * math.Log(spread)
		devs[i] = sim.DeviceSpec{
			Class: core.ClassDesktop,
			Slots: 1,
			Speed: base * math.Exp(e),
		}
	}
	return devs
}

// WithChurn returns a copy of the fleet with every device given the same
// exponential failure/recovery behaviour.
func WithChurn(devs []sim.DeviceSpec, mtbf, mttr time.Duration) []sim.DeviceSpec {
	out := make([]sim.DeviceSpec, len(devs))
	copy(out, devs)
	for i := range out {
		out[i].MTBF = mtbf
		out[i].MTTR = mttr
	}
	return out
}

// TotalSpeed sums the fleet's aggregate capacity in Mops/s, counting each
// slot at the device's full speed (slots model independent cores).
func TotalSpeed(devs []sim.DeviceSpec) float64 {
	var total float64
	for _, d := range devs {
		slots := d.Slots
		if slots <= 0 {
			slots = 1
		}
		speed := d.Speed
		if speed <= 0 {
			speed = 100 * core.ClassSpeedFactor(d.Class)
		}
		total += speed * float64(slots)
	}
	return total
}

// ---------- task batches ----------

// Batch builds n tasklets of fixed fuel arriving at time zero (a closed
// batch: the scaling and makespan experiments use it).
func Batch(n int, fuel uint64, q core.QoC) []sim.TaskSpec {
	tasks := make([]sim.TaskSpec, n)
	for i := range tasks {
		tasks[i] = sim.TaskSpec{Fuel: fuel, QoC: q}
	}
	return tasks
}

// Poisson builds n tasklets with exponential inter-arrival times at the
// given rate (tasklets/second). The open-system experiments (E4, E7) use
// it to control offered load.
func Poisson(n int, fuel uint64, rate float64, q core.QoC, seed uint64) []sim.TaskSpec {
	r := newRNG(seed)
	tasks := make([]sim.TaskSpec, n)
	var at float64
	for i := range tasks {
		at += r.exp(1 / rate)
		tasks[i] = sim.TaskSpec{
			Fuel:    fuel,
			Arrival: time.Duration(at * float64(time.Second)),
			QoC:     q,
		}
	}
	return tasks
}

// HeavyTailed builds n tasklets whose fuel follows a bounded Pareto
// distribution (alpha 1.5) between min and max fuel — the classic
// "most tasklets small, a few huge" compute workload shape.
func HeavyTailed(n int, minFuel, maxFuel uint64, q core.QoC, seed uint64) []sim.TaskSpec {
	r := newRNG(seed)
	const alpha = 1.5
	lo, hi := float64(minFuel), float64(maxFuel)
	tasks := make([]sim.TaskSpec, n)
	for i := range tasks {
		// Inverse-CDF sampling of a bounded Pareto.
		u := r.uniform()
		x := math.Pow(
			math.Pow(lo, -alpha)-u*(math.Pow(lo, -alpha)-math.Pow(hi, -alpha)),
			-1/alpha,
		)
		tasks[i] = sim.TaskSpec{Fuel: uint64(x), QoC: q}
	}
	return tasks
}

// ZipfIndices samples n indices from {0, ..., pool-1} under a Zipf
// distribution with exponent s (s = 0 is uniform; larger s concentrates mass
// on low indices). Sampling is by inverse CDF over the precomputed harmonic
// weights, deterministic given the seed.
func ZipfIndices(n, pool int, s float64, seed uint64) []int {
	if pool < 1 {
		pool = 1
	}
	r := newRNG(seed)
	// cdf[i] = P(index <= i), normalized.
	cdf := make([]float64, pool)
	var total float64
	for i := 0; i < pool; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	out := make([]int, n)
	for j := range out {
		u := r.uniform() * total
		// Binary search for the first cdf entry >= u.
		lo, hi := 0, pool-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[j] = lo
	}
	return out
}

// ZipfRepeated builds n tasklets whose content identity (TaskSpec.Key) is
// drawn Zipf-distributed from a pool of distinct contents, with exponential
// inter-arrival times at the given rate — the repeated-submission workload
// the result-memo experiments sweep. Keys are 1-based (pool index + 1) so
// every tasklet is memo-eligible.
func ZipfRepeated(n, pool int, skew float64, fuel uint64, rate float64, q core.QoC, seed uint64) []sim.TaskSpec {
	idx := ZipfIndices(n, pool, skew, seed)
	r := newRNG(seed ^ 0xa5a5a5a5a5a5a5a5)
	tasks := make([]sim.TaskSpec, n)
	var at float64
	for i := range tasks {
		if rate > 0 {
			at += r.exp(1 / rate)
		}
		tasks[i] = sim.TaskSpec{
			Fuel:    fuel,
			Arrival: time.Duration(at * float64(time.Second)),
			QoC:     q,
			Key:     uint64(idx[i] + 1),
		}
	}
	return tasks
}

// TotalFuel sums a batch's work.
func TotalFuel(tasks []sim.TaskSpec) uint64 {
	var total uint64
	for _, t := range tasks {
		total += t.Fuel
	}
	return total
}

// IdealMakespan is the lower bound on makespan for a closed batch: total
// work divided by aggregate fleet speed.
func IdealMakespan(tasks []sim.TaskSpec, devs []sim.DeviceSpec) time.Duration {
	speed := TotalSpeed(devs)
	if speed <= 0 {
		return 0
	}
	secs := float64(TotalFuel(tasks)) / (speed * 1e6)
	return time.Duration(secs * float64(time.Second))
}
