package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestHomogeneous(t *testing.T) {
	devs := Homogeneous(5, core.ClassLaptop, 2)
	if len(devs) != 5 {
		t.Fatalf("len = %d", len(devs))
	}
	for _, d := range devs {
		if d.Class != core.ClassLaptop || d.Slots != 2 {
			t.Fatalf("device = %+v", d)
		}
	}
}

func TestPaperMixCyclesAndContainsClasses(t *testing.T) {
	devs := PaperMix(20)
	if len(devs) != 20 {
		t.Fatalf("len = %d", len(devs))
	}
	seen := map[core.DeviceClass]bool{}
	for _, d := range devs {
		seen[d.Class] = true
	}
	for _, c := range []core.DeviceClass{core.ClassServer, core.ClassDesktop, core.ClassLaptop, core.ClassMobile} {
		if !seen[c] {
			t.Fatalf("class %s missing from mix", c)
		}
	}
	if devs[0].Class != devs[8].Class {
		t.Fatal("pattern does not cycle with period 8")
	}
}

func TestSpreadFleetBounds(t *testing.T) {
	const base, spread = 100.0, 16.0
	devs := SpreadFleet(200, base, spread, 7)
	lo, hi := base/math.Sqrt(spread), base*math.Sqrt(spread)
	var min, max float64 = math.Inf(1), 0
	for _, d := range devs {
		if d.Speed < lo-1e-9 || d.Speed > hi+1e-9 {
			t.Fatalf("speed %v outside [%v, %v]", d.Speed, lo, hi)
		}
		min = math.Min(min, d.Speed)
		max = math.Max(max, d.Speed)
	}
	if max/min < spread/2 {
		t.Fatalf("observed spread %.1f too narrow for requested %.0f", max/min, spread)
	}
}

func TestSpreadFleetDeterministic(t *testing.T) {
	a := SpreadFleet(10, 100, 4, 3)
	b := SpreadFleet(10, 100, 4, 3)
	for i := range a {
		if a[i].Speed != b[i].Speed {
			t.Fatal("same seed differs")
		}
	}
	c := SpreadFleet(10, 100, 4, 4)
	same := true
	for i := range a {
		if a[i].Speed != c[i].Speed {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds agree")
	}
}

func TestSpreadOneIsHomogeneous(t *testing.T) {
	devs := SpreadFleet(10, 100, 1, 1)
	for _, d := range devs {
		if math.Abs(d.Speed-100) > 1e-9 {
			t.Fatalf("spread=1 produced speed %v", d.Speed)
		}
	}
}

func TestWithChurnCopies(t *testing.T) {
	orig := Homogeneous(3, core.ClassDesktop, 1)
	churned := WithChurn(orig, time.Minute, 10*time.Second)
	if orig[0].MTBF != 0 {
		t.Fatal("WithChurn mutated its input")
	}
	for _, d := range churned {
		if d.MTBF != time.Minute || d.MTTR != 10*time.Second {
			t.Fatalf("churn not applied: %+v", d)
		}
	}
}

func TestTotalSpeed(t *testing.T) {
	devs := []sim.DeviceSpec{
		{Class: core.ClassDesktop, Slots: 2},            // 2 x 100
		{Class: core.ClassServer, Slots: 1},             // 200
		{Class: core.ClassDesktop, Slots: 1, Speed: 50}, // explicit 50
	}
	if got := TotalSpeed(devs); math.Abs(got-450) > 1e-9 {
		t.Fatalf("TotalSpeed = %v, want 450", got)
	}
}

func TestBatch(t *testing.T) {
	q := core.QoC{Mode: core.QoCRedundant, Replicas: 2}
	tasks := Batch(10, 5000, q)
	if len(tasks) != 10 {
		t.Fatalf("len = %d", len(tasks))
	}
	for _, task := range tasks {
		if task.Fuel != 5000 || task.Arrival != 0 || task.QoC != q {
			t.Fatalf("task = %+v", task)
		}
	}
	if TotalFuel(tasks) != 50000 {
		t.Fatalf("TotalFuel = %d", TotalFuel(tasks))
	}
}

func TestPoissonArrivalsIncreaseAndMatchRate(t *testing.T) {
	const n, rate = 20000, 50.0
	tasks := Poisson(n, 1000, rate, core.QoC{}, 3)
	var last time.Duration
	for i, task := range tasks {
		if task.Arrival < last {
			t.Fatalf("arrival %d goes backwards", i)
		}
		last = task.Arrival
	}
	gotRate := float64(n) / last.Seconds()
	if math.Abs(gotRate-rate)/rate > 0.05 {
		t.Fatalf("observed rate %.1f, want ~%.0f", gotRate, rate)
	}
}

func TestHeavyTailedBoundsAndShape(t *testing.T) {
	const n = 20000
	tasks := HeavyTailed(n, 1000, 1_000_000, core.QoC{}, 9)
	small := 0
	for _, task := range tasks {
		if task.Fuel < 1000 || task.Fuel > 1_000_000 {
			t.Fatalf("fuel %d outside bounds", task.Fuel)
		}
		if task.Fuel < 10_000 {
			small++
		}
	}
	// Pareto alpha=1.5 between 1e3 and 1e6: the majority of samples are
	// near the minimum.
	if frac := float64(small) / n; frac < 0.5 {
		t.Fatalf("only %.0f%% of tasklets are small; tail shape wrong", frac*100)
	}
}

func TestIdealMakespan(t *testing.T) {
	devs := Homogeneous(2, core.ClassDesktop, 1) // 200 Mops/s total
	tasks := Batch(10, 100_000_000, core.QoC{})  // 1e9 ops
	got := IdealMakespan(tasks, devs)
	if math.Abs(got.Seconds()-5) > 1e-9 {
		t.Fatalf("ideal makespan = %v, want 5s", got)
	}
	if IdealMakespan(tasks, nil) != 0 {
		t.Fatal("empty fleet should return 0")
	}
}

func TestGeneratedScenarioRunsInSimulator(t *testing.T) {
	stats, err := sim.Run(sim.Config{
		Devices: PaperMix(8),
		Tasks:   HeavyTailed(100, 1_000_000, 50_000_000, core.QoC{}, 1),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 100 {
		t.Fatalf("completed = %d", stats.Completed)
	}
	ideal := IdealMakespan(HeavyTailed(100, 1_000_000, 50_000_000, core.QoC{}, 1), PaperMix(8))
	if stats.Makespan < ideal {
		t.Fatalf("makespan %v beat the ideal bound %v", stats.Makespan, ideal)
	}
}

func TestZipfIndicesDeterministicAndBounded(t *testing.T) {
	a := ZipfIndices(500, 20, 1.1, 7)
	b := ZipfIndices(500, 20, 1.1, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 20 {
			t.Fatalf("index %d out of range", a[i])
		}
	}
	c := ZipfIndices(500, 20, 1.1, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	top := func(s float64) float64 {
		idx := ZipfIndices(20000, 50, s, 3)
		hot := 0
		for _, i := range idx {
			if i == 0 {
				hot++
			}
		}
		return float64(hot) / float64(len(idx))
	}
	uniform, mild, heavy := top(0), top(0.8), top(1.5)
	// s=0 is uniform: ~1/50 of samples hit any one index.
	if uniform < 0.01 || uniform > 0.04 {
		t.Fatalf("uniform top-1 share = %.3f, want ~0.02", uniform)
	}
	if !(heavy > mild && mild > uniform) {
		t.Fatalf("top-1 share not increasing in skew: %.3f, %.3f, %.3f", uniform, mild, heavy)
	}
	if heavy < 0.3 {
		t.Fatalf("s=1.5 top-1 share = %.3f, want > 0.3", heavy)
	}
}

func TestZipfRepeatedBuildsMemoEligibleTasks(t *testing.T) {
	q := core.QoC{Mode: core.QoCVoting, Replicas: 3}
	tasks := ZipfRepeated(300, 10, 1.0, 5_000_000, 100, q, 4)
	if len(tasks) != 300 {
		t.Fatalf("len = %d", len(tasks))
	}
	seen := map[uint64]bool{}
	var last time.Duration
	for i, ts := range tasks {
		if ts.Key < 1 || ts.Key > 10 {
			t.Fatalf("task %d key %d outside pool", i, ts.Key)
		}
		if ts.Fuel != 5_000_000 || ts.QoC != q {
			t.Fatalf("task %d spec mangled: %+v", i, ts)
		}
		if ts.Arrival < last {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		last = ts.Arrival
		seen[ts.Key] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct keys out of pool 10", len(seen))
	}
	// ~300 arrivals at 100/s should span roughly 3s.
	if last < time.Second || last > 10*time.Second {
		t.Fatalf("last arrival %v, want ~3s", last)
	}
}
