package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunE3 measures scalability (Figure 3): speedup of a fixed batch as the
// provider fleet grows, on homogeneous devices in the simulator.
func RunE3(opts Options) (*Result, error) {
	res := &Result{ID: "E3", Title: Title("e3")}
	nTasks, fuel := 512, uint64(100_000_000)
	fleets := []int{1, 2, 4, 8, 16, 32, 64}
	if opts.Quick {
		nTasks = 128
		fleets = []int{1, 2, 4, 8, 16}
	}
	speedup := &metrics.Series{Name: "speedup", XLabel: "providers"}
	efficiency := &metrics.Series{Name: "efficiency", XLabel: "providers"}
	var base time.Duration
	for _, n := range fleets {
		stats, err := sim.Run(sim.Config{
			Devices: workload.Homogeneous(n, core.ClassDesktop, 1),
			Tasks:   workload.Batch(nTasks, fuel, core.QoC{}),
			Latency: 2 * time.Millisecond,
			Seed:    opts.seed(),
		})
		if err != nil {
			return nil, err
		}
		if stats.Completed != nTasks {
			return nil, fmt.Errorf("e3: %d/%d completed", stats.Completed, nTasks)
		}
		if n == 1 {
			base = stats.Makespan
		}
		s := float64(base) / float64(stats.Makespan)
		speedup.Append(float64(n), s)
		efficiency.Append(float64(n), s/float64(n))
		opts.logf("e3: %d providers -> makespan %v (speedup %.2f)", n, stats.Makespan, s)
	}
	res.Series = []*metrics.Series{speedup, efficiency}
	res.Notes = append(res.Notes,
		"paper expectation: near-linear speedup while tasklets outnumber slots, flattening as the batch fragments")
	return res, nil
}

// RunE4 measures heterogeneity sensitivity (Figure 4): mean tasklet
// response time under open arrivals, sweeping the fleet's speed spread, for
// each scheduling policy. Speed-aware policies win increasingly as the
// spread grows; on a homogeneous fleet all policies coincide.
func RunE4(opts Options) (*Result, error) {
	res := &Result{ID: "E4", Title: Title("e4")}
	const devices = 12
	nTasks, fuel := 600, uint64(100_000_000)
	if opts.Quick {
		nTasks = 200
	}
	spreads := []float64{1, 2, 4, 8, 16}
	policies := []string{"random", "round_robin", "fastest", "work_steal"}

	series := make(map[string]*metrics.Series, len(policies))
	for _, pol := range policies {
		series[pol] = &metrics.Series{Name: pol + " ms", XLabel: "speed spread"}
	}
	for _, spread := range spreads {
		devs := workload.SpreadFleet(devices, 100, spread, opts.seed())
		// Offered load ~50% of aggregate capacity, independent of spread.
		rate := workload.TotalSpeed(devs) * 1e6 / float64(fuel) * 0.5
		tasks := workload.Poisson(nTasks, fuel, rate, core.QoC{}, opts.seed()+1)
		for _, pol := range policies {
			p, err := scheduler.New(pol, opts.seed())
			if err != nil {
				return nil, err
			}
			stats, err := sim.Run(sim.Config{
				Devices: devs,
				Tasks:   tasks,
				Policy:  p,
				Latency: 2 * time.Millisecond,
				Seed:    opts.seed(),
			})
			if err != nil {
				return nil, err
			}
			if stats.Completed != nTasks {
				return nil, fmt.Errorf("e4: %s spread %v: %d/%d completed", pol, spread, stats.Completed, nTasks)
			}
			series[pol].Append(spread, stats.Latency.Mean)
		}
		opts.logf("e4: spread %.0fx done", spread)
	}
	for _, pol := range policies {
		res.Series = append(res.Series, series[pol])
	}
	res.Notes = append(res.Notes,
		"paper expectation: all policies tie on homogeneous fleets; speed-aware placement wins as heterogeneity grows")
	return res, nil
}

// RunE5 measures reliability under churn (Figure 5): completion rate and
// attempt overhead as provider MTBF shrinks, for each QoC level. Retries
// and redundancy mask churn at the cost of extra attempts.
func RunE5(opts Options) (*Result, error) {
	res := &Result{ID: "E5", Title: Title("e5")}
	const devices = 16
	nTasks, fuel := 400, uint64(200_000_000) // 2s per attempt at desktop speed
	if opts.Quick {
		nTasks = 150
	}
	mtbfs := []time.Duration{120 * time.Second, 60 * time.Second, 30 * time.Second, 15 * time.Second, 8 * time.Second}

	qocs := []struct {
		name string
		q    core.QoC
	}{
		{"best_effort(no retry)", core.QoC{Mode: core.QoCBestEffort, MaxRetries: -1}},
		{"best_effort(retry3)", core.QoC{Mode: core.QoCBestEffort}},
		{"redundant2", core.QoC{Mode: core.QoCRedundant, Replicas: 2}},
	}
	// MaxRetries -1 is normalized to 0 which means "default"; encode the
	// no-retry level with MaxRetries 1 instead (a single re-issue) to keep
	// a visible gradation.
	qocs[0].q = core.QoC{Mode: core.QoCBestEffort, MaxRetries: 1}

	var completion, overhead []*metrics.Series
	for _, qc := range qocs {
		cs := &metrics.Series{Name: qc.name + " %done", XLabel: "MTBF s"}
		os := &metrics.Series{Name: qc.name + " attempts/task", XLabel: "MTBF s"}
		for _, mtbf := range mtbfs {
			devs := workload.WithChurn(
				workload.Homogeneous(devices, core.ClassDesktop, 1),
				mtbf, 10*time.Second)
			stats, err := sim.Run(sim.Config{
				Devices:     devs,
				Tasks:       workload.Batch(nTasks, fuel, qc.q),
				DetectDelay: time.Second,
				Latency:     2 * time.Millisecond,
				Seed:        opts.seed(),
				MaxTime:     96 * time.Hour,
			})
			if err != nil {
				return nil, err
			}
			cs.Append(mtbf.Seconds(), 100*float64(stats.Completed)/float64(nTasks))
			os.Append(mtbf.Seconds(), float64(stats.Attempts)/float64(nTasks))
		}
		completion = append(completion, cs)
		overhead = append(overhead, os)
		opts.logf("e5: qoc %s done", qc.name)
	}
	res.Series = append(completion, overhead...)
	res.Notes = append(res.Notes,
		"paper expectation: completion degrades without retries as MTBF approaches execution time; redundancy holds completion near 100% at the cost of ~2x attempts")
	return res, nil
}

// RunE6 measures the QoC cost matrix (Table 2): attempts, wasted work and
// latency of each QoC level on a stable fleet — what a consumer pays for
// reliability it does not need.
func RunE6(opts Options) (*Result, error) {
	res := &Result{ID: "E6", Title: Title("e6")}
	const devices = 8
	nTasks, fuel := 200, uint64(100_000_000)
	if opts.Quick {
		nTasks = 80
	}
	devs := workload.Homogeneous(devices, core.ClassDesktop, 1)
	qocs := []struct {
		name string
		q    core.QoC
	}{
		{"best_effort", core.QoC{}},
		{"redundant2", core.QoC{Mode: core.QoCRedundant, Replicas: 2}},
		{"redundant3", core.QoC{Mode: core.QoCRedundant, Replicas: 3}},
		{"voting3", core.QoC{Mode: core.QoCVoting, Replicas: 3}},
		{"voting5", core.QoC{Mode: core.QoCVoting, Replicas: 5}},
	}
	for _, qc := range qocs {
		stats, err := sim.Run(sim.Config{
			Devices: devs,
			Tasks:   workload.Batch(nTasks, fuel, qc.q),
			Latency: 2 * time.Millisecond,
			Seed:    opts.seed(),
		})
		if err != nil {
			return nil, err
		}
		if stats.Completed != nTasks {
			return nil, fmt.Errorf("e6: %s: %d/%d completed", qc.name, stats.Completed, nTasks)
		}
		res.Rows = append(res.Rows, [2]string{qc.name, fmt.Sprintf(
			"attempts/task %.2f, wasted %.0f%%, mean latency %.0f ms, makespan %v",
			float64(stats.Attempts)/float64(nTasks),
			100*float64(stats.WastedAttempts)/float64(stats.Attempts),
			stats.Latency.Mean,
			stats.Makespan.Round(time.Millisecond),
		)})
		opts.logf("e6: %s done", qc.name)
	}
	res.Notes = append(res.Notes,
		"paper expectation: redundancy multiplies attempts by the replica count; voting additionally waits for the k-th result, raising latency")
	return res, nil
}

// RunE8 measures result memoization (Figure 7): a Zipf-repeated workload —
// many submissions drawn from a small pool of distinct tasklet contents —
// swept over the Zipf skew, with the broker memo on and off. The memo turns
// repeated content into cache hits (or coalesced waiters while the first
// submission is still in flight), cutting both executed attempts and
// latency; the win grows with skew.
func RunE8(opts Options) (*Result, error) {
	res := &Result{ID: "E8", Title: Title("e8")}
	const devices = 8
	nTasks, fuel := 2000, uint64(50_000_000) // 0.5s per execution at desktop speed
	if opts.Quick {
		nTasks = 500
	}
	// A pool a quarter the draw count keeps uniform sampling from trivially
	// covering it, so the hit rate genuinely varies with skew.
	pool := nTasks / 4
	devs := workload.Homogeneous(devices, core.ClassDesktop, 1)
	// Offered load ~70% of capacity if every task executed; repeats push the
	// effective load far below that when the memo is on.
	rate := workload.TotalSpeed(devs) * 1e6 / float64(fuel) * 0.7
	skews := []float64{0, 0.5, 0.8, 1.0, 1.2, 1.5}

	hitRate := &metrics.Series{Name: "hit+coalesce %", XLabel: "zipf skew"}
	onP50 := &metrics.Series{Name: "memo on p50 ms", XLabel: "zipf skew"}
	offP50 := &metrics.Series{Name: "memo off p50 ms", XLabel: "zipf skew"}
	onP99 := &metrics.Series{Name: "memo on p99 ms", XLabel: "zipf skew"}
	offP99 := &metrics.Series{Name: "memo off p99 ms", XLabel: "zipf skew"}
	for _, s := range skews {
		tasks := workload.ZipfRepeated(nTasks, pool, s, fuel, rate, core.QoC{}, opts.seed())
		run := func(memoOn bool) (*sim.Stats, error) {
			cfg := sim.Config{Devices: devs, Tasks: tasks, Latency: 2 * time.Millisecond, Seed: opts.seed()}
			if !memoOn {
				cfg.MemoEntries, cfg.MemoBytes, cfg.MemoTTL = -1, -1, -1
			}
			return sim.Run(cfg)
		}
		on, err := run(true)
		if err != nil {
			return nil, err
		}
		off, err := run(false)
		if err != nil {
			return nil, err
		}
		if on.Completed != nTasks || off.Completed != nTasks {
			return nil, fmt.Errorf("e8: skew %v: completed on/off = %d/%d", s, on.Completed, off.Completed)
		}
		served := float64(on.CacheHits+on.Coalesced) / float64(nTasks) * 100
		hitRate.Append(s, served)
		onP50.Append(s, on.Latency.P50)
		offP50.Append(s, off.Latency.P50)
		onP99.Append(s, on.Latency.P99)
		offP99.Append(s, off.Latency.P99)
		opts.logf("e8: skew %.1f -> %.0f%% served from memo, p99 %.0fms vs %.0fms",
			s, served, on.Latency.P99, off.Latency.P99)
	}
	res.Series = []*metrics.Series{hitRate, onP50, offP50, onP99, offP99}
	res.Notes = append(res.Notes,
		"expectation: hit rate climbs with skew as mass concentrates on already-cached hot contents; memo-off latency is skew-independent (every submission executes), so the on/off gap widens with skew")
	return res, nil
}
