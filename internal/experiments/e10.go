package experiments

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workload"
)

// e10Fleet builds P provider infos with varied speeds and backlogs, the
// same shape the scheduler benchmarks use.
func e10Fleet(p int) ([]*core.ProviderInfo, []scheduler.Candidate) {
	infos := make([]*core.ProviderInfo, p)
	cands := make([]scheduler.Candidate, p)
	for i := range infos {
		infos[i] = &core.ProviderInfo{
			ID:          core.ProviderID(i + 1),
			Speed:       float64(1 + (i*37)%100),
			Slots:       4,
			Reliability: 1,
		}
		cands[i] = scheduler.Candidate{Info: infos[i], FreeSlots: 4, Backlog: i % 4}
	}
	return infos, cands
}

// e10IndexedPick times one full indexed placement decision (Pick + Assign +
// Complete) at fleet size p, returning ns/pick.
func e10IndexedPick(p int) (float64, error) {
	pol := scheduler.NewWorkSteal()
	ix, err := scheduler.NewIndexFor(pol)
	if err != nil {
		return 0, err
	}
	infos, _ := e10Fleet(p)
	for i, info := range infos {
		ix.Upsert(info, 4, i%4)
	}
	task := &core.Tasklet{Fuel: 1_000_000}
	const iters = 100_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		id, ok := ix.Pick(task, nil)
		if !ok {
			return 0, fmt.Errorf("e10: indexed pick failed at P=%d", p)
		}
		ix.Assign(id)
		ix.Complete(id)
	}
	return float64(time.Since(start)) / iters, nil
}

// e10LegacyPick times one legacy filter-and-sort placement decision at
// fleet size p, returning ns/pick.
func e10LegacyPick(p int) (float64, error) {
	pol := scheduler.NewWorkSteal()
	_, cands := e10Fleet(p)
	req := scheduler.Request{Tasklet: &core.Tasklet{Fuel: 1_000_000}}
	iters := 2_000_000 / p
	if iters < 50 {
		iters = 50
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, ok := pol.Pick(req, cands); !ok {
			return 0, fmt.Errorf("e10: legacy pick failed at P=%d", p)
		}
	}
	return float64(time.Since(start)) / float64(iters), nil
}

// RunE10 measures placement cost versus fleet size (Figure 9): per-pick
// latency of the incremental scheduler index against the legacy full-scan
// path, end-to-end simulated job throughput with the index on and off, and
// allocs-per-pick rows. The broker mediates every placement, so this is the
// constant that caps task-throughput scaling at paper-scale fleets.
func RunE10(opts Options) (*Result, error) {
	res := &Result{ID: "E10", Title: Title("e10")}

	fleets := []int{100, 1000, 10000}
	simFleets := []int{64, 256, 1024}
	if opts.Quick {
		fleets = []int{100, 1000}
		simFleets = []int{64, 256}
	}

	// Series 1/2: ns per placement decision vs fleet size.
	idxNS := &metrics.Series{Name: "ns/pick (indexed)", XLabel: "providers"}
	legNS := &metrics.Series{Name: "ns/pick (legacy)", XLabel: "providers"}
	var speedupAtMax float64
	for _, p := range fleets {
		in, err := e10IndexedPick(p)
		if err != nil {
			return nil, err
		}
		ln, err := e10LegacyPick(p)
		if err != nil {
			return nil, err
		}
		idxNS.Append(float64(p), in)
		legNS.Append(float64(p), ln)
		speedupAtMax = ln / in
		opts.logf("e10: P=%d placement %.0f ns indexed, %.0f ns legacy (%.0fx)", p, in, ln, ln/in)
	}
	res.Series = append(res.Series, idxNS, legNS)

	// Series 3/4: end-to-end simulated job throughput vs fleet size, index
	// on and off. Heterogeneous speeds, batch arrival, 4 tasklets per
	// provider; throughput is tasklets per wall-clock second, so it folds
	// scheduling overhead and everything else the simulator pays per event.
	idxTput := &metrics.Series{Name: "tasklets/s (indexed)", XLabel: "providers"}
	legTput := &metrics.Series{Name: "tasklets/s (no index)", XLabel: "providers"}
	for _, p := range simFleets {
		for _, noIndex := range []bool{false, true} {
			devs := workload.SpreadFleet(p, 100, 0.5, opts.seed())
			tasks := workload.Batch(4*p, 2_000_000, core.QoC{})
			start := time.Now()
			stats, err := sim.Run(sim.Config{
				Devices: devs,
				Tasks:   tasks,
				Policy:  scheduler.NewWorkSteal(),
				Seed:    opts.seed(),
				NoIndex: noIndex,
			})
			if err != nil {
				return nil, err
			}
			wall := time.Since(start).Seconds()
			if stats.Completed != len(tasks) {
				return nil, fmt.Errorf("e10: P=%d noIndex=%v completed %d of %d",
					p, noIndex, stats.Completed, len(tasks))
			}
			tput := float64(len(tasks)) / wall
			if noIndex {
				legTput.Append(float64(p), tput)
			} else {
				idxTput.Append(float64(p), tput)
			}
			opts.logf("e10: sim P=%d noIndex=%v %.0f tasklets/s wall", p, noIndex, tput)
		}
	}
	res.Series = append(res.Series, idxTput, legTput)

	// Allocation rows: the indexed pick cycle must be allocation-free; the
	// reworked legacy scan reuses its scratch after warm-up.
	pMax := fleets[len(fleets)-1]
	pol := scheduler.NewWorkSteal()
	ix, err := scheduler.NewIndexFor(pol)
	if err != nil {
		return nil, err
	}
	infos, cands := e10Fleet(pMax)
	for i, info := range infos {
		ix.Upsert(info, 4, i%4)
	}
	task := &core.Tasklet{Fuel: 1_000_000}
	idxAllocs := testing.AllocsPerRun(100, func() {
		id, _ := ix.Pick(task, nil)
		ix.Assign(id)
		ix.Complete(id)
	})
	req := scheduler.Request{Tasklet: task}
	pol.Pick(req, cands) // warm the eligible scratch
	legAllocs := testing.AllocsPerRun(20, func() { pol.Pick(req, cands) })

	res.Rows = append(res.Rows,
		[2]string{"allocs/pick (indexed)", fmt.Sprintf("%.1f", idxAllocs)},
		[2]string{"allocs/pick (legacy, warm)", fmt.Sprintf("%.1f", legAllocs)},
	)
	res.Notes = append(res.Notes,
		fmt.Sprintf("indexed placement is %.0fx faster than the legacy scan at P=%d", speedupAtMax, pMax))
	return res, nil
}
