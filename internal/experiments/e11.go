package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/sim"
)

// e11Config builds the broker-bound sharding scenario: device capacity far
// exceeds one dispatcher's service rate (50µs of broker CPU per dispatch
// and per result ≈ 10k tasklets/s per shard against 16k/s of device
// capacity), so aggregate throughput tracks the number of shards. Load is
// weak-scaled — tasks ∝ shards — to keep makespans comparable, and the
// exchange is tuned fine (2ms gossip, small hysteresis gap) relative to
// the ~100ms runs.
func e11Config(shards, perShard int, program func(i int) uint64, seed uint64) sim.ShardedConfig {
	devices := make([]sim.DeviceSpec, 4*shards)
	for i := range devices {
		devices[i] = sim.DeviceSpec{Class: core.ClassDesktop, Slots: 4, Speed: 100}
	}
	n := perShard * shards
	tasks := make([]sim.TaskSpec, n)
	for i := range tasks {
		tasks[i] = sim.TaskSpec{Fuel: 100_000, Program: program(i)} // 1ms of work each
	}
	return sim.ShardedConfig{
		Base: sim.Config{
			Devices: devices,
			Tasks:   tasks,
			Latency: 100 * time.Microsecond,
			Seed:    seed,
		},
		Shards:         shards,
		BrokerOverhead: 50 * time.Microsecond,
		GossipInterval: 2 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 4},
	}
}

// RunE11 evaluates broker sharding (Figure 10): aggregate saturation
// throughput versus shard count with consistent-hash routing spreading the
// programs, and the pull-based work exchange's recovery when every program
// hashes to one hot shard. Reported throughput is simulated tasklets per
// simulated second, so it isolates the dispatcher-serialization model from
// host noise.
func RunE11(opts Options) (*Result, error) {
	res := &Result{ID: "E11", Title: Title("e11")}

	shardCounts := []int{1, 2, 4, 8}
	perShard := 1500
	if opts.Quick {
		shardCounts = []int{1, 2, 4}
		perShard = 600
	}
	spread := func(i int) uint64 { return 0xabcd_0000 + uint64(i) }
	hot := func(int) uint64 { return 0xbeef }
	tput := func(st *sim.ShardedStats) float64 {
		return float64(st.Completed) / st.Makespan.Seconds()
	}

	// Series 1: aggregate throughput vs shard count, balanced routing.
	scale := &metrics.Series{Name: "tasklets/s (balanced)", XLabel: "shards"}
	var t1, t4 float64
	for _, s := range shardCounts {
		cfg := e11Config(s, perShard, spread, opts.seed())
		st, err := sim.RunSharded(cfg)
		if err != nil {
			return nil, err
		}
		if st.Completed != perShard*s {
			return nil, fmt.Errorf("e11: %d shards completed %d of %d", s, st.Completed, perShard*s)
		}
		tp := tput(st)
		scale.Append(float64(s), tp)
		if s == 1 {
			t1 = tp
		}
		if s == 4 {
			t4 = tp
		}
		opts.logf("e11: %d shards %.0f tasklets/s", s, tp)
	}
	res.Series = append(res.Series, scale)

	// Series 2: fully skewed load (every program hashes to one shard) at
	// the 4-shard point, exchange off and on, against the balanced run.
	const skewShards = 4
	run := func(program func(i int) uint64, exchange bool) (*sim.ShardedStats, error) {
		cfg := e11Config(skewShards, perShard, program, opts.seed())
		cfg.Exchange = exchange
		return sim.RunSharded(cfg)
	}
	balanced, err := run(spread, false)
	if err != nil {
		return nil, err
	}
	skewOff, err := run(hot, false)
	if err != nil {
		return nil, err
	}
	skewOn, err := run(hot, true)
	if err != nil {
		return nil, err
	}
	recovery := tput(skewOn) / tput(balanced)
	opts.logf("e11: skew %.0f/s off, %.0f/s on (recovery %.2f, %d migrated in %d requests)",
		tput(skewOff), tput(skewOn), recovery, skewOn.Migrated, skewOn.MigrateRequests)

	res.Rows = append(res.Rows,
		[2]string{"skewed, 4 shards, exchange off", fmt.Sprintf("%.0f tasklets/s", tput(skewOff))},
		[2]string{"skewed, 4 shards, exchange on", fmt.Sprintf("%.0f tasklets/s", tput(skewOn))},
		[2]string{"balanced, 4 shards", fmt.Sprintf("%.0f tasklets/s", tput(balanced))},
		[2]string{"speedup at 4 shards", fmt.Sprintf("%.2fx", t4/t1)},
		[2]string{"skew recovery (exchange on, vs balanced)", fmt.Sprintf("%.0f%%", 100*recovery)},
		[2]string{"tasklets migrated", fmt.Sprintf("%d in %d pulls", skewOn.Migrated, skewOn.MigrateRequests)},
	)
	res.Notes = append(res.Notes,
		fmt.Sprintf("4 shards deliver %.2fx the 1-shard saturation throughput (dispatcher-bound)", t4/t1),
		fmt.Sprintf("the work exchange recovers %.0f%% of balanced throughput under full skew", 100*recovery),
	)
	if t4 < 3*t1 {
		return nil, fmt.Errorf("e11: 4-shard speedup %.2fx is under the 3x claim", t4/t1)
	}
	if recovery < 0.8 {
		return nil, fmt.Errorf("e11: exchange recovery %.0f%% is under the 80%% claim", 100*recovery)
	}
	return res, nil
}
