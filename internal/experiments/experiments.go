// Package experiments implements the reproduction of every table and figure
// in the (reconstructed) evaluation of the Tasklets paper — see DESIGN.md §4
// for the experiment index. Each experiment is runnable from the
// tasklet-bench CLI and from the repository's bench harness, and renders
// the same rows/series the paper reports.
//
// Scale: Quick mode shrinks workloads so the full suite finishes in tens of
// seconds on a laptop; Full mode uses the paper-scale parameters.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks workloads for CI and benches.
	Quick bool
	// Seed makes simulated experiments reproducible.
	Seed uint64
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// Result is a rendered experiment outcome.
type Result struct {
	ID     string
	Title  string
	Series []*metrics.Series
	// Rows holds table-style experiments' rows (E1, E6).
	Rows [][2]string
	// Notes records derived observations (crossover points, ratios).
	Notes []string
}

// Render produces the experiment's printable report.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		w := 0
		for _, row := range r.Rows {
			if len(row[0]) > w {
				w = len(row[0])
			}
		}
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "  %-*s  %s\n", w, row[0], row[1])
		}
	}
	if len(r.Series) > 0 {
		b.WriteString(metrics.Table(r.Series...))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// registry maps experiment IDs to runners. It is populated in init rather
// than a composite literal because the runners themselves call Title(),
// which would otherwise form an initialization cycle.
var registry map[string]struct {
	title  string
	runner Runner
}

func init() {
	registry = map[string]struct {
		title  string
		runner Runner
	}{
		"e1":  {"Table 1 — middleware micro-overheads", RunE1},
		"e2":  {"Figure 2 — remote-vs-local offload crossover", RunE2},
		"e3":  {"Figure 3 — speedup vs number of providers", RunE3},
		"e4":  {"Figure 4 — heterogeneity and scheduling policy", RunE4},
		"e5":  {"Figure 5 — reliability under provider churn", RunE5},
		"e6":  {"Table 2 — QoC goal cost matrix", RunE6},
		"e7":  {"Figure 6 — broker throughput and queue delay", RunE7},
		"e8":  {"Figure 7 — result memoization on Zipf-repeated workloads", RunE8},
		"e9":  {"Figure 8 — data-plane throughput and p99 vs offered load (coalescing ablation)", RunE9},
		"e10": {"Figure 9 — placement latency and job throughput vs fleet size (scheduler-index ablation)", RunE10},
		"e11": {"Figure 10 — broker sharding: aggregate throughput and work-exchange recovery", RunE11},
		"e12": {"Figure 11 — control-plane batching: saturation throughput with batch frames on vs off", RunE12},
		"e13": {"Figure 12 — partitioned broker core: saturation throughput vs partition count", RunE13},
	}
}

// IDs lists the experiment identifiers in numeric order (e1..e10, not
// lexicographic, so e10 follows e9).
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Result, error) {
	ent, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	start := time.Now()
	res, err := ent.runner(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	opts.logf("%s finished in %v", id, time.Since(start).Round(time.Millisecond))
	return res, nil
}
