package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stdtasks"
	"repro/internal/tvm"
)

// e12Config builds the batching scenario: a dispatcher-bound shard where
// most of the serialized cost is per-frame rather than per-operation (10µs
// of broker CPU per dispatch/result plus 40µs of framing — header encode,
// syscall, wakeup). Unbatched, every attempt pays two full frames (50µs
// each ≈ 10k tasklets/s per shard); batched, the placement pass amortizes
// the dispatch frame across every assignment it groups per device and a
// busy dispatcher folds result frames, leaving mostly the 2×10µs
// per-operation floor. Device capacity (8 devices × 4 slots × 1ms of work
// = 32k tasklets/s per shard) stays well above either rate so the
// dispatcher model, not the fleet, sets throughput.
func e12Config(shards, perShard int, batch bool, seed uint64) sim.ShardedConfig {
	devices := make([]sim.DeviceSpec, 8*shards)
	for i := range devices {
		devices[i] = sim.DeviceSpec{Class: core.ClassDesktop, Slots: 4, Speed: 100}
	}
	n := perShard * shards
	tasks := make([]sim.TaskSpec, n)
	for i := range tasks {
		// Unique programs spread placement across shards under the
		// consistent-hash router, as in E11.
		tasks[i] = sim.TaskSpec{Fuel: 100_000, Program: 0xe12_0000 + uint64(i)} // 1ms of work each
	}
	return sim.ShardedConfig{
		Base: sim.Config{
			Devices: devices,
			Tasks:   tasks,
			Latency: 100 * time.Microsecond,
			Seed:    seed,
		},
		Shards:         shards,
		BrokerOverhead: 10 * time.Microsecond,
		FrameOverhead:  40 * time.Microsecond,
		Batch:          batch,
		GossipInterval: 2 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 4},
	}
}

// RunE12 evaluates control-plane batching (the AssignBatch /
// AttemptResultBatch / ResultPushBatch frames): saturation throughput with
// batching on versus off on one dispatcher-bound shard, the same ablation
// across a 4-shard group with the work exchange on, and an informational
// live-stack run over real loopback sockets. Simulated numbers are
// deterministic (simulated tasklets per simulated second) and carry the
// experiment's claims; the live rows show the real stack pointing the same
// direction but are subject to host noise.
func RunE12(opts Options) (*Result, error) {
	res := &Result{ID: "E12", Title: Title("e12")}

	perShard := 1500
	if opts.Quick {
		perShard = 600
	}
	tput := func(st *sim.ShardedStats) float64 {
		return float64(st.Completed) / st.Makespan.Seconds()
	}
	run := func(shards int, batch bool) (float64, error) {
		cfg := e12Config(shards, perShard, batch, opts.seed())
		cfg.Exchange = shards > 1
		st, err := sim.RunSharded(cfg)
		if err != nil {
			return 0, err
		}
		if st.Completed != perShard*shards {
			return 0, fmt.Errorf("e12: %d shards batch=%v completed %d of %d",
				shards, batch, st.Completed, perShard*shards)
		}
		return tput(st), nil
	}

	on := &metrics.Series{Name: "tasklets/s (batch on)", XLabel: "shards"}
	off := &metrics.Series{Name: "tasklets/s (batch off)", XLabel: "shards"}
	ratios := map[int]float64{}
	for _, s := range []int{1, 4} {
		tOn, err := run(s, true)
		if err != nil {
			return nil, err
		}
		tOff, err := run(s, false)
		if err != nil {
			return nil, err
		}
		on.Append(float64(s), tOn)
		off.Append(float64(s), tOff)
		ratios[s] = tOn / tOff
		opts.logf("e12: %d shard(s) %.0f/s batched, %.0f/s unbatched (%.2fx)", s, tOn, tOff, tOn/tOff)
		res.Rows = append(res.Rows,
			[2]string{fmt.Sprintf("%d shard(s), batch on", s), fmt.Sprintf("%.0f tasklets/s", tOn)},
			[2]string{fmt.Sprintf("%d shard(s), batch off", s), fmt.Sprintf("%.0f tasklets/s", tOff)},
			[2]string{fmt.Sprintf("%d-shard batching speedup", s), fmt.Sprintf("%.2fx", tOn/tOff)},
		)
	}
	res.Series = append(res.Series, on, off)

	// Live informational pass: the same ablation through real sockets. A
	// saturating burst of noop tasklets is the frame-dominated regime the
	// batch frames target.
	burst := 2048
	if opts.Quick {
		burst = 512
	}
	live := func(noBatch bool) (float64, error) {
		stack, err := newLiveStackBatch(4, 8, noBatch)
		if err != nil {
			return 0, err
		}
		defer stack.close()
		noopData, err := stdtasks.Bytecode("noop")
		if err != nil {
			return 0, err
		}
		params := make([][]tvm.Value, burst)
		el, results, err := stack.runBatch(noopData, params, core.QoC{}, 0)
		if err != nil {
			return 0, err
		}
		for _, r := range results {
			if !r.OK() {
				return 0, fmt.Errorf("e12: live tasklet failed: %+v", r)
			}
		}
		return float64(burst) / el.Seconds(), nil
	}
	liveOn, err := live(false)
	if err != nil {
		return nil, err
	}
	liveOff, err := live(true)
	if err != nil {
		return nil, err
	}
	opts.logf("e12: live %.0f/s batched, %.0f/s -no-batch (informational)", liveOn, liveOff)
	res.Rows = append(res.Rows,
		[2]string{"live loopback, batch on", fmt.Sprintf("%.0f tasklets/s", liveOn)},
		[2]string{"live loopback, -no-batch", fmt.Sprintf("%.0f tasklets/s", liveOff)},
	)

	res.Notes = append(res.Notes,
		fmt.Sprintf("batching lifts single-shard saturation throughput %.2fx when framing dominates dispatch cost", ratios[1]),
		fmt.Sprintf("the lift carries through a 4-shard group with the work exchange on (%.2fx)", ratios[4]),
		"live loopback rows are informational (host noise); the simulated series carries the claim")
	if ratios[1] < 1.5 {
		return nil, fmt.Errorf("e12: single-shard batching speedup %.2fx is under the 1.5x claim", ratios[1])
	}
	if ratios[4] < 1.2 {
		return nil, fmt.Errorf("e12: 4-shard batching speedup %.2fx did not carry through", ratios[4])
	}
	return res, nil
}
