package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func quick() Options { return Options{Quick: true, Seed: 7} }

func TestIDsComplete(t *testing.T) {
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	for _, id := range got {
		if Title(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("e99", quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestE1Overheads(t *testing.T) {
	res, err := RunE1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	out := res.Render()
	for _, want := range []string{"TCL compile", "round trip", "slowdown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE2CrossoverShape(t *testing.T) {
	res, err := RunE2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	local, remote, lan := res.Series[0], res.Series[1], res.Series[2]
	// On tiny tasklets, offload over a real network must lose to local.
	if lan.Y[0] <= local.Y[0] {
		t.Fatalf("tiny tasklet: LAN offload (%.3fms) should lose to local (%.3fms)", lan.Y[0], local.Y[0])
	}
	// On the largest swept size, the 4x-faster provider must win even
	// with the LAN RTT added.
	last := len(local.Y) - 1
	if lan.Y[last] >= local.Y[last] {
		t.Fatalf("large tasklet: LAN offload (%.1fms) should beat slow local (%.1fms)", lan.Y[last], local.Y[last])
	}
	// The loopback series bounds the middleware's own overhead: it must
	// sit below the LAN series everywhere.
	for i := range remote.Y {
		if remote.Y[i] >= lan.Y[i] {
			t.Fatalf("series inconsistent at %v", remote.X[i])
		}
	}
}

func TestE3SpeedupShape(t *testing.T) {
	res, err := RunE3(quick())
	if err != nil {
		t.Fatal(err)
	}
	speedup := res.Series[0]
	if speedup.Y[0] != 1 {
		t.Fatalf("speedup at 1 provider = %v", speedup.Y[0])
	}
	for i := 1; i < speedup.Len(); i++ {
		if speedup.Y[i] <= speedup.Y[i-1] {
			t.Fatalf("speedup not monotone: %v", speedup.Y)
		}
	}
	// 8 providers on a 128-task batch should achieve near-linear speedup.
	for i, x := range speedup.X {
		if x == 8 && speedup.Y[i] < 6 {
			t.Fatalf("speedup at 8 providers = %.2f, want > 6", speedup.Y[i])
		}
	}
}

func TestE4HeterogeneityShape(t *testing.T) {
	res, err := RunE4(quick())
	if err != nil {
		t.Fatal(err)
	}
	bySeries := map[string]*seriesView{}
	for _, s := range res.Series {
		bySeries[strings.Fields(s.Name)[0]] = &seriesView{x: s.X, y: s.Y}
	}
	random, fastest := bySeries["random"], bySeries["fastest"]
	if random == nil || fastest == nil {
		t.Fatalf("missing series in %v", res.Series)
	}
	// Homogeneous fleet (spread 1): policies within 10%.
	if r := random.at(1) / fastest.at(1); r < 0.9 || r > 1.3 {
		t.Fatalf("homogeneous fleet should tie: random %.1f vs fastest %.1f", random.at(1), fastest.at(1))
	}
	// Strong heterogeneity: fastest clearly wins.
	if random.at(16) <= fastest.at(16) {
		t.Fatalf("spread 16: random %.1f should exceed fastest %.1f", random.at(16), fastest.at(16))
	}
}

type seriesView struct{ x, y []float64 }

func (s *seriesView) at(x float64) float64 {
	for i, xv := range s.x {
		if xv == x {
			return s.y[i]
		}
	}
	return -1
}

func TestE5ChurnShape(t *testing.T) {
	res, err := RunE5(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Series: 3 completion curves then 3 overhead curves.
	if len(res.Series) != 6 {
		t.Fatalf("series = %d", len(res.Series))
	}
	redundant := res.Series[2]
	if !strings.Contains(redundant.Name, "redundant2") {
		t.Fatalf("series order changed: %s", redundant.Name)
	}
	// Redundancy keeps completion at 100% across the sweep.
	for i, y := range redundant.Y {
		if y < 99.9 {
			t.Fatalf("redundant completion at MTBF %v = %.1f%%", redundant.X[i], y)
		}
	}
	// Attempt overhead grows as MTBF shrinks for the retry level.
	retryOverhead := res.Series[4]
	first, last := retryOverhead.Y[0], retryOverhead.Y[len(retryOverhead.Y)-1]
	if last <= first {
		t.Fatalf("attempts/task should grow with churn: %v", retryOverhead.Y)
	}
}

func TestE6QoCCostShape(t *testing.T) {
	res, err := RunE6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// attempts/task must increase down the table (1, 2, 3, >=3, >=5).
	parse := func(row [2]string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[1], "attempts/task %f", &v); err != nil {
			t.Fatalf("row %q unparseable: %v", row[1], err)
		}
		return v
	}
	be, r2, r3 := parse(res.Rows[0]), parse(res.Rows[1]), parse(res.Rows[2])
	if !(be < r2 && r2 < r3) {
		t.Fatalf("attempt ordering wrong: %v %v %v", be, r2, r3)
	}
	if be > 1.01 {
		t.Fatalf("best effort attempts/task = %v, want 1", be)
	}
}

func TestE7ThroughputShape(t *testing.T) {
	res, err := RunE7(quick())
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Series[0]
	// The broker saturates quickly on noop tasklets; the figure's shape is
	// "high and roughly flat" — no batch size may collapse throughput.
	var max float64
	for _, y := range tput.Y {
		if y > max {
			max = y
		}
	}
	for i, y := range tput.Y {
		if y < max/5 {
			t.Fatalf("throughput collapsed at batch %v: %v (max %v)", tput.X[i], y, max)
		}
	}
	if max < 1000 {
		t.Fatalf("broker throughput %.0f tasklets/s is implausibly low", max)
	}
}

func TestE8MemoizationShape(t *testing.T) {
	res, err := RunE8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	hitRate, onP50, offP50 := res.Series[0], res.Series[1], res.Series[2]
	// The heaviest skew must serve more from the memo than uniform.
	first, last := hitRate.Y[0], hitRate.Y[len(hitRate.Y)-1]
	if last <= first {
		t.Fatalf("hit rate should grow with skew: %v", hitRate.Y)
	}
	if first < 30 {
		t.Fatalf("uniform hit rate = %.1f%%, repeats should dominate even unskewed", first)
	}
	// Median latency with the memo on must clearly beat memo off at every
	// skew (most submissions are served without executing).
	for i := range onP50.Y {
		if onP50.Y[i] >= offP50.Y[i] {
			t.Fatalf("skew %v: memo-on p50 %.1fms not below memo-off %.1fms",
				onP50.X[i], onP50.Y[i], offP50.Y[i])
		}
	}
}

func TestE9DataPlaneShape(t *testing.T) {
	res, err := RunE9(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Per mode (coalesced, uncoalesced): a throughput series then a p99
	// series.
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range []*metrics.Series{res.Series[0], res.Series[2]} {
		if !strings.Contains(s.Name, "tasklets/s") {
			t.Fatalf("series order changed: %s", s.Name)
		}
		// Noop tasklets over loopback: anything under 1k/s means the data
		// plane broke, not that the machine is slow.
		for i, y := range s.Y {
			if y < 1000 {
				t.Fatalf("%s at conc %v = %.0f tasklets/s, implausibly low", s.Name, s.X[i], y)
			}
		}
	}
	// The pooled send path must allocate strictly less than the legacy
	// Marshal+write discipline (the PR's ≥30%-fewer-allocs criterion; in
	// practice 0 vs 1).
	var pooled, legacy float64
	for _, row := range res.Rows {
		var v float64
		if _, err := fmt.Sscanf(row[1], "%f", &v); err != nil {
			t.Fatalf("row %q unparseable: %v", row[1], err)
		}
		if strings.Contains(row[0], "pooled") {
			pooled = v
		} else {
			legacy = v
		}
	}
	if pooled >= legacy {
		t.Fatalf("pooled send path allocs/msg = %v, legacy = %v; pooling regressed", pooled, legacy)
	}
}

func TestE12BatchingShape(t *testing.T) {
	res, err := RunE12(quick())
	if err != nil {
		t.Fatal(err) // RunE12 hard-fails below 1.5x single-shard / 1.2x 4-shard
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	on, off := res.Series[0], res.Series[1]
	if !strings.Contains(on.Name, "batch on") || !strings.Contains(off.Name, "batch off") {
		t.Fatalf("series order changed: %s / %s", on.Name, off.Name)
	}
	// Batched must beat unbatched at every shard count, and 4 batched
	// shards must still scale over 1 batched shard (batching must not eat
	// the sharding win).
	for i := range on.Y {
		if on.Y[i] <= off.Y[i] {
			t.Fatalf("at %v shards: batched %.0f/s not above unbatched %.0f/s", on.X[i], on.Y[i], off.Y[i])
		}
	}
	if last := len(on.Y) - 1; on.Y[last] < 3*on.Y[0] {
		t.Fatalf("4-shard batched throughput %.0f/s under 3x the 1-shard %.0f/s", on.Y[last], on.Y[0])
	}
}

func TestE13PartitionShape(t *testing.T) {
	res, err := RunE13(quick())
	if err != nil {
		t.Fatal(err) // RunE13 hard-fails below 1.5x simulated P=8/P=1
	}
	tput := res.Series[0]
	if !strings.Contains(tput.Name, "tasklets/s") {
		t.Fatalf("series order changed: %s", tput.Name)
	}
	// P=1 is the serialized legacy core; striping result processing must
	// never slow the broker down, and the sweep ends at least 2x up.
	for i := 1; i < tput.Len(); i++ {
		if tput.Y[i] < tput.Y[i-1]*0.99 {
			t.Fatalf("throughput regressed at P=%v: %v", tput.X[i], tput.Y)
		}
	}
	if last := tput.Len() - 1; tput.Y[last] < 2*tput.Y[0] {
		t.Fatalf("P=%v throughput %.0f/s under 2x the serialized %.0f/s",
			tput.X[last], tput.Y[last], tput.Y[0])
	}
}

func TestRenderIncludesNotes(t *testing.T) {
	res := &Result{ID: "X", Title: "t", Notes: []string{"hello note"}}
	if !strings.Contains(res.Render(), "hello note") {
		t.Fatal("notes missing from render")
	}
}

func TestRunDispatchesAndLogs(t *testing.T) {
	var sb strings.Builder
	opts := quick()
	opts.Out = &sb
	start := time.Now()
	res, err := Run("e3", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "E3" {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(sb.String(), "finished in") {
		t.Fatalf("log output = %q", sb.String())
	}
	_ = start
}
