package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stdtasks"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// discardConn is a net.Conn whose writes vanish; the wire-path allocation
// rows measure encoding cost without a kernel socket in the way.
type discardConn struct{}

func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Read(p []byte) (int, error)       { select {} }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (discardConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// RunE9 measures the data-plane hot path (Figure 8): submit→result
// throughput and p99 latency versus offered load (closed-loop concurrent
// consumers issuing single-tasklet noop jobs), with write coalescing enabled
// versus disabled, plus allocs-per-message rows for the wire send path. The
// workload is pure middleware — noop tasklets make every microsecond
// protocol overhead, which is what coalescing and buffer pooling attack.
func RunE9(opts Options) (*Result, error) {
	res := &Result{ID: "E9", Title: Title("e9")}

	noopData, err := stdtasks.Bytecode("noop")
	if err != nil {
		return nil, err
	}

	conc := []int{1, 4, 16, 64, 256}
	jobsPerLevel := 1500
	if opts.Quick {
		conc = []int{1, 8, 64}
		jobsPerLevel = 300
	}

	var peak [2]float64 // peak throughput by mode: [coalesced, uncoalesced]
	for mode, noCoalesce := range []bool{false, true} {
		label := "coalesced"
		if noCoalesce {
			label = "uncoalesced"
		}
		stack, err := newLiveStackCoalesce(4, 8, noCoalesce)
		if err != nil {
			return nil, err
		}
		tput := &metrics.Series{Name: "tasklets/s (" + label + ")", XLabel: "concurrency"}
		p99 := &metrics.Series{Name: "p99 ms (" + label + ")", XLabel: "concurrency"}
		for _, c := range conc {
			per := jobsPerLevel / c
			if per < 1 {
				per = 1
			}
			total := per * c
			var hist metrics.Histogram
			errc := make(chan error, c)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < c; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
					defer cancel()
					for j := 0; j < per; j++ {
						t0 := time.Now()
						job, err := stack.client.Submit(core.JobSpec{
							Program: noopData, Params: [][]tvm.Value{{}}, Seed: 1,
						})
						if err != nil {
							errc <- err
							return
						}
						results, err := job.Collect(ctx)
						if err != nil {
							errc <- err
							return
						}
						if len(results) != 1 || !results[0].OK() {
							errc <- fmt.Errorf("e9: tasklet failed: %+v", results)
							return
						}
						hist.ObserveDuration(time.Since(t0))
					}
				}()
			}
			wg.Wait()
			select {
			case err := <-errc:
				stack.close()
				return nil, err
			default:
			}
			el := time.Since(start)
			rate := float64(total) / el.Seconds()
			if rate > peak[mode] {
				peak[mode] = rate
			}
			tput.Append(float64(c), rate)
			p99.Append(float64(c), hist.Snapshot().P99)
			opts.logf("e9: %s conc %d -> %.0f tasklets/s, p99 %.2f ms",
				label, c, rate, hist.Snapshot().P99)
		}
		stack.close()
		res.Series = append(res.Series, tput, p99)
	}

	// Wire-path allocation rows: the pooled Conn.Send path versus the
	// pre-overhaul discipline (Marshal a fresh frame, write it). Measured
	// with the result frame the submit→result path carries per tasklet.
	msg := &wire.AttemptResult{Attempt: 1, Tasklet: 2, Status: core.StatusOK,
		Return: tvm.Int(42), FuelUsed: 128, ExecNanos: 1000}
	conn := wire.NewConn(discardConn{})
	pooled := testing.AllocsPerRun(2000, func() {
		if err := conn.Send(msg); err != nil {
			panic(err)
		}
	})
	sink := discardConn{}
	legacy := testing.AllocsPerRun(2000, func() {
		frame, err := wire.Marshal(msg)
		if err != nil {
			panic(err)
		}
		if _, err := sink.Write(frame); err != nil {
			panic(err)
		}
	})
	res.Rows = append(res.Rows,
		[2]string{"wire send allocs/msg (pooled Conn.Send)", fmt.Sprintf("%.0f", pooled)},
		[2]string{"wire send allocs/msg (legacy Marshal+write)", fmt.Sprintf("%.0f", legacy)},
	)
	if legacy > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"wire-path allocations: %.0f/msg pooled vs %.0f/msg legacy (%.0f%% fewer)",
			pooled, legacy, 100*(1-pooled/legacy)))
	}
	if peak[1] > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"peak throughput: %.0f tasklets/s coalesced vs %.0f uncoalesced (%.2fx)",
			peak[0], peak[1], peak[0]/peak[1]))
	}
	res.Notes = append(res.Notes,
		"paper expectation: coalescing lifts throughput under load without hurting unloaded latency; results are bit-identical either way (see TestDifferentialCoalescingBitIdentical)")
	return res, nil
}
