package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stdtasks"
	"repro/internal/tvm"
)

// e13Config builds the result-bound scenario the partitioned broker core
// targets: one shard whose fleet has ample capacity (16 devices × 6 slots ×
// 1ms of work = 96k tasklets/s) and whose serialized dispatcher line is
// dominated by per-result processing (60µs of result handling plus 25µs of
// framing). Fully serialized that line caps the broker near 12k results/s —
// far below both the fleet and the 50k/s offered load — so striping result
// processing across P partition servers is exactly the relief the makespan
// measures. Dispatch stays on the serialized line in every configuration,
// mirroring the live broker's single scheduler goroutine.
func e13Config(partitions, n int, seed uint64) sim.ShardedConfig {
	devices := make([]sim.DeviceSpec, 16)
	for i := range devices {
		devices[i] = sim.DeviceSpec{Class: core.ClassDesktop, Slots: 6, Speed: 100}
	}
	tasks := make([]sim.TaskSpec, n)
	for i := range tasks {
		tasks[i] = sim.TaskSpec{Fuel: 100_000, // 1ms of work each
			Arrival: time.Duration(i) * 20 * time.Microsecond}
	}
	return sim.ShardedConfig{
		Base: sim.Config{
			Devices: devices,
			Tasks:   tasks,
			Latency: 200 * time.Microsecond,
			Seed:    seed,
		},
		Shards:         1,
		BrokerOverhead: 12 * time.Microsecond,
		ResultOverhead: 60 * time.Microsecond,
		FrameOverhead:  25 * time.Microsecond,
		Batch:          true,
		Partitions:     partitions,
	}
}

// RunE13 evaluates the partitioned broker core (lock-striped lifecycle
// partitions with per-partition ingress rings and timer wheels): saturation
// throughput on a result-bound shard as the partition count sweeps 1, 2, 4,
// 8, where P=1 is the fully serialized legacy core. Simulated numbers are
// deterministic and carry the claim — the P=8 speedup must be at least
// 1.5x, targeting the 2x the paper-scale configuration reaches. A live
// loopback pass runs the same ablation through real sockets (-partitions=1
// vs GOMAXPROCS); on small hosts the live rows are informational, but on a
// machine with GOMAXPROCS >= 8 a live speedup under 1.5x fails the run.
func RunE13(opts Options) (*Result, error) {
	res := &Result{ID: "E13", Title: Title("e13")}

	n := 4000
	if opts.Quick {
		n = 1200
	}
	parts := []int{1, 2, 4, 8}
	tputs := map[int]float64{}
	series := &metrics.Series{Name: "tasklets/s", XLabel: "partitions"}
	for _, p := range parts {
		st, err := sim.RunSharded(e13Config(p, n, opts.seed()))
		if err != nil {
			return nil, err
		}
		if st.Completed != n {
			return nil, fmt.Errorf("e13: P=%d completed %d of %d", p, st.Completed, n)
		}
		t := float64(st.Completed) / st.Makespan.Seconds()
		tputs[p] = t
		series.Append(float64(p), t)
		opts.logf("e13: P=%d %.0f tasklets/s (makespan %v)", p, t, st.Makespan.Round(time.Microsecond))
		res.Rows = append(res.Rows,
			[2]string{fmt.Sprintf("simulated, %d partition(s)", p), fmt.Sprintf("%.0f tasklets/s", t)})
	}
	res.Series = append(res.Series, series)
	ratio := tputs[8] / tputs[1]
	res.Rows = append(res.Rows,
		[2]string{"simulated P=8 vs P=1 speedup", fmt.Sprintf("%.2fx", ratio)})

	// Live pass: the same ablation through real sockets. A saturating noop
	// burst keeps the broker core — not the fleet — as the bottleneck.
	burst := 2048
	if opts.Quick {
		burst = 512
	}
	live := func(partitions int) (float64, error) {
		stack, err := newLiveStackPartitions(4, 8, partitions)
		if err != nil {
			return 0, err
		}
		defer stack.close()
		noopData, err := stdtasks.Bytecode("noop")
		if err != nil {
			return 0, err
		}
		params := make([][]tvm.Value, burst)
		el, results, err := stack.runBatch(noopData, params, core.QoC{}, 0)
		if err != nil {
			return 0, err
		}
		for _, r := range results {
			if !r.OK() {
				return 0, fmt.Errorf("e13: live tasklet failed: %+v", r)
			}
		}
		return float64(burst) / el.Seconds(), nil
	}
	procs := runtime.GOMAXPROCS(0)
	liveOne, err := live(1)
	if err != nil {
		return nil, err
	}
	liveMax, err := live(procs)
	if err != nil {
		return nil, err
	}
	liveRatio := liveMax / liveOne
	opts.logf("e13: live %.0f/s P=1, %.0f/s P=%d (%.2fx, GOMAXPROCS=%d)",
		liveOne, liveMax, procs, liveRatio, procs)
	res.Rows = append(res.Rows,
		[2]string{"live loopback, -partitions=1", fmt.Sprintf("%.0f tasklets/s", liveOne)},
		[2]string{fmt.Sprintf("live loopback, -partitions=%d (GOMAXPROCS)", procs), fmt.Sprintf("%.0f tasklets/s", liveMax)},
		[2]string{"live speedup", fmt.Sprintf("%.2fx", liveRatio)})

	res.Notes = append(res.Notes,
		fmt.Sprintf("striping result processing across 8 partitions lifts saturation throughput %.2fx over the serialized core", ratio),
		"dispatch stays on one scheduler line in every configuration; the lift comes entirely from parallel result/lifecycle processing")
	if procs >= 8 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("live gate active (GOMAXPROCS=%d >= 8): measured %.2fx", procs, liveRatio))
		if liveRatio < 1.5 {
			return nil, fmt.Errorf("e13: live P=%d speedup %.2fx is under the 1.5x floor on a %d-way host",
				procs, liveRatio, procs)
		}
	} else {
		res.Notes = append(res.Notes,
			fmt.Sprintf("live rows informational on this %d-way host (gate requires GOMAXPROCS >= 8); the simulated series carries the claim", procs))
	}
	if ratio < 1.5 {
		return nil, fmt.Errorf("e13: simulated P=8 speedup %.2fx is under the 1.5x floor (target 2x)", ratio)
	}
	return res, nil
}
