package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/stdtasks"
	"repro/internal/tasklang"
	"repro/internal/tvm"
)

// liveStack is a broker + providers + consumer on loopback, the "real
// middleware" half of the evaluation (overhead and throughput numbers need
// real sockets and real serialization).
type liveStack struct {
	broker    *broker.Broker
	providers []*provider.Provider
	client    *consumer.Client
}

func newLiveStack(nProviders, slots int) (*liveStack, error) {
	return newLiveStackCoalesce(nProviders, slots, false)
}

// newLiveStackCoalesce additionally controls write coalescing on every
// connection (broker and providers); E9 ablates it.
func newLiveStackCoalesce(nProviders, slots int, noCoalesce bool) (*liveStack, error) {
	return newLiveStackOpts(nProviders, slots, noCoalesce, false)
}

// newLiveStackBatch additionally controls control-plane batching on the
// broker and every provider; E12 ablates it.
func newLiveStackBatch(nProviders, slots int, noBatch bool) (*liveStack, error) {
	return newLiveStackOpts(nProviders, slots, false, noBatch)
}

// newLiveStackPartitions additionally pins the broker's lock-striped
// partition count (1 = single-stripe legacy core); E13 ablates it.
func newLiveStackPartitions(nProviders, slots, partitions int) (*liveStack, error) {
	return newLiveStackFull(nProviders, slots, false, false, partitions)
}

func newLiveStackOpts(nProviders, slots int, noCoalesce, noBatch bool) (*liveStack, error) {
	return newLiveStackFull(nProviders, slots, noCoalesce, noBatch, 0)
}

func newLiveStackFull(nProviders, slots int, noCoalesce, noBatch bool, partitions int) (*liveStack, error) {
	// E1/E2/E7/E9 measure the raw dispatch path with repeated identical
	// tasklets; the result memo would serve those from cache and measure
	// the wrong thing, so it is disabled here. E8 covers the memo.
	s := &liveStack{broker: broker.New(broker.Options{
		MemoEntries: -1, MemoBytes: -1, MemoTTL: -1,
		NoCoalesce: noCoalesce, NoBatch: noBatch,
		Partitions: partitions,
	})}
	addr, err := s.broker.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nProviders; i++ {
		p, err := provider.Connect(provider.Options{
			BrokerAddr: addr, Slots: slots, Speed: 100,
			Name:        fmt.Sprintf("bench-%d", i),
			MemoEntries: -1, MemoBytes: -1, MemoTTL: -1,
			NoCoalesce: noCoalesce, NoBatch: noBatch,
		})
		if err != nil {
			s.close()
			return nil, err
		}
		s.providers = append(s.providers, p)
	}
	c, err := consumer.Connect(addr, "experiments")
	if err != nil {
		s.close()
		return nil, err
	}
	s.client = c
	return s, nil
}

func (s *liveStack) close() {
	if s.client != nil {
		s.client.Close()
	}
	for _, p := range s.providers {
		p.Close()
	}
	if s.broker != nil {
		s.broker.Close()
	}
}

// runBatch submits one job of n identical tasklets and waits. fuel 0
// selects the broker default.
func (s *liveStack) runBatch(prog []byte, params [][]tvm.Value, q core.QoC, fuel uint64) (time.Duration, []consumer.TaskResult, error) {
	start := time.Now()
	job, err := s.client.Submit(core.JobSpec{Program: prog, Params: params, QoC: q, Seed: 1, Fuel: fuel})
	if err != nil {
		return 0, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := job.Collect(ctx)
	if err != nil {
		return 0, nil, err
	}
	return time.Since(start), res, nil
}

// RunE1 measures the middleware's micro-overheads (Table 1): compilation,
// local VM dispatch, interpretation slowdown vs native Go, and the full
// submit-to-result round trip over real loopback sockets.
func RunE1(opts Options) (*Result, error) {
	res := &Result{ID: "E1", Title: Title("e1")}

	// Compilation cost (mandelbrot is the largest standard program).
	src := stdtasks.Sources["mandelbrot"]
	compileReps := 200
	if opts.Quick {
		compileReps = 50
	}
	start := time.Now()
	for i := 0; i < compileReps; i++ {
		if _, err := tasklang.Compile(src); err != nil {
			return nil, err
		}
	}
	compileUS := float64(time.Since(start).Microseconds()) / float64(compileReps)
	res.Rows = append(res.Rows, [2]string{"TCL compile (mandelbrot)", fmt.Sprintf("%.1f µs", compileUS)})

	data, err := stdtasks.Bytecode("mandelbrot")
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, [2]string{"bytecode size (mandelbrot)", fmt.Sprintf("%d bytes", len(data))})

	// Local VM dispatch: a noop tasklet end to end in-process.
	noop := stdtasks.MustProgram("noop")
	dispatchReps := 20000
	if opts.Quick {
		dispatchReps = 2000
	}
	start = time.Now()
	for i := 0; i < dispatchReps; i++ {
		if _, err := tvm.New(noop, tvm.DefaultConfig()).Run(); err != nil {
			return nil, err
		}
	}
	res.Rows = append(res.Rows, [2]string{"TVM dispatch (noop, local)",
		fmt.Sprintf("%.2f µs", float64(time.Since(start).Microseconds())/float64(dispatchReps))})

	// Interpretation overhead: spin kernel in the VM vs native Go.
	iters := int64(3_000_000)
	if opts.Quick {
		iters = 300_000
	}
	spin := stdtasks.MustProgram("spin")
	start = time.Now()
	vmRes, err := tvm.New(spin, tvm.DefaultConfig()).Run(tvm.Int(iters))
	if err != nil {
		return nil, err
	}
	vmTime := time.Since(start)
	start = time.Now()
	native := stdtasks.RefSpin(iters)
	nativeTime := time.Since(start)
	if native != vmRes.Return.I {
		return nil, fmt.Errorf("e1: spin mismatch vm=%d native=%d", vmRes.Return.I, native)
	}
	slowdown := float64(vmTime) / float64(nativeTime)
	res.Rows = append(res.Rows,
		[2]string{"VM ops/sec (spin kernel)", fmt.Sprintf("%.1f Mops/s", float64(vmRes.FuelUsed)/vmTime.Seconds()/1e6)},
		[2]string{"interpretation slowdown vs native Go", fmt.Sprintf("%.1fx", slowdown)},
	)

	// Full round trip over loopback: noop tasklets, one at a time.
	stack, err := newLiveStack(1, 1)
	if err != nil {
		return nil, err
	}
	defer stack.close()
	noopData, err := stdtasks.Bytecode("noop")
	if err != nil {
		return nil, err
	}
	rtReps := 200
	if opts.Quick {
		rtReps = 40
	}
	var rt metrics.Histogram
	for i := 0; i < rtReps; i++ {
		start := time.Now()
		if _, _, err := stack.runBatch(noopData, [][]tvm.Value{{}}, core.QoC{}, 0); err != nil {
			return nil, err
		}
		rt.ObserveDuration(time.Since(start))
	}
	snap := rt.Snapshot()
	res.Rows = append(res.Rows,
		[2]string{"submit→result round trip (noop, loopback)",
			fmt.Sprintf("p50 %.2f ms, p99 %.2f ms", snap.P50, snap.P99)},
	)
	res.Notes = append(res.Notes,
		"paper expectation: sub-millisecond VM dispatch, single-digit-ms round trip, interpreter 10-100x native")
	return res, nil
}

// RunE2 measures the offload crossover (Figure 2): a weak consumer device
// (mobile class, 4x slower than the provider) either runs a tasklet locally
// or offloads it over loopback. Offload pays once compute time exceeds the
// round-trip overhead.
func RunE2(opts Options) (*Result, error) {
	res := &Result{ID: "E2", Title: Title("e2")}
	stack, err := newLiveStack(1, 1)
	if err != nil {
		return nil, err
	}
	defer stack.close()

	spin := stdtasks.MustProgram("spin")
	spinData, err := stdtasks.Bytecode("spin")
	if err != nil {
		return nil, err
	}

	sizes := []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	if opts.Quick {
		sizes = sizes[:5]
	}
	mobileSlowdown := 1 / core.ClassSpeedFactor(core.ClassMobile)

	// Loopback RTTs (~50µs) are far below any real deployment; the LAN
	// series adds the 2ms round trip of a typical office network, which
	// is where the paper's crossover lives. The raw series shows the
	// middleware's own overhead floor.
	const lanRTT = 2 * time.Millisecond

	local := &metrics.Series{Name: "local(mobile) ms", XLabel: "spin iters"}
	remote := &metrics.Series{Name: "offload(loopback) ms", XLabel: "spin iters"}
	remoteLAN := &metrics.Series{Name: "offload(LAN 2ms) ms", XLabel: "spin iters"}
	var crossover int64 = -1
	for _, n := range sizes {
		// Local on the weak device: measured fast-host VM time scaled by
		// the mobile class factor (the provider in this stack represents
		// the fast host; the weak device is emulated). Best of 5 to match
		// the remote measurement discipline.
		var bestLocal time.Duration
		localCfg := tvm.DefaultConfig()
		localCfg.Fuel = 1 << 40 // the largest swept size exceeds the default budget
		for r := 0; r < 5; r++ {
			start := time.Now()
			if _, err := tvm.New(spin, localCfg).Run(tvm.Int(n)); err != nil {
				return nil, err
			}
			if el := time.Since(start); bestLocal == 0 || el < bestLocal {
				bestLocal = el
			}
		}
		localMS := bestLocal.Seconds() * 1e3 * mobileSlowdown

		reps := 5
		var best time.Duration
		for r := 0; r < reps; r++ {
			el, results, err := stack.runBatch(spinData, [][]tvm.Value{{tvm.Int(n)}}, core.QoC{}, 1<<40)
			if err != nil {
				return nil, err
			}
			if !results[0].OK() {
				return nil, fmt.Errorf("e2: tasklet failed: %+v", results[0])
			}
			if best == 0 || el < best {
				best = el
			}
		}
		remoteMS := best.Seconds() * 1e3

		lanMS := remoteMS + lanRTT.Seconds()*1e3
		local.Append(float64(n), localMS)
		remote.Append(float64(n), remoteMS)
		remoteLAN.Append(float64(n), lanMS)
		if crossover < 0 && lanMS < localMS {
			crossover = n
		}
	}
	res.Series = []*metrics.Series{local, remote, remoteLAN}
	if crossover >= 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("over a 2ms-RTT LAN, offload beats local execution from ~%d iterations", crossover))
	} else {
		res.Notes = append(res.Notes, "no crossover in the swept range (overhead dominates)")
	}
	res.Notes = append(res.Notes,
		"paper expectation: offload loses on tiny tasklets and wins beyond a workload-size threshold")
	return res, nil
}

// RunE7 measures broker throughput and queueing (Figure 6): batches of
// empty tasklets through a live stack; tasklets/second versus batch size.
func RunE7(opts Options) (*Result, error) {
	res := &Result{ID: "E7", Title: Title("e7")}
	stack, err := newLiveStack(4, 8)
	if err != nil {
		return nil, err
	}
	defer stack.close()

	noopData, err := stdtasks.Bytecode("noop")
	if err != nil {
		return nil, err
	}
	sizes := []int{64, 256, 1024, 4096}
	if opts.Quick {
		sizes = []int{64, 256, 1024}
	}
	tput := &metrics.Series{Name: "tasklets/s", XLabel: "batch size"}
	lat := &metrics.Series{Name: "mean latency ms", XLabel: "batch size"}
	for _, n := range sizes {
		params := make([][]tvm.Value, n)
		for i := range params {
			params[i] = nil
		}
		el, results, err := stack.runBatch(noopData, params, core.QoC{}, 0)
		if err != nil {
			return nil, err
		}
		ok := 0
		for _, r := range results {
			if r.OK() {
				ok++
			}
		}
		if ok != n {
			return nil, fmt.Errorf("e7: %d/%d tasklets failed", n-ok, n)
		}
		tput.Append(float64(n), float64(n)/el.Seconds())
		lat.Append(float64(n), el.Seconds()*1e3/float64(n))
		opts.logf("e7: batch %d -> %.0f tasklets/s", n, float64(n)/el.Seconds())
	}
	res.Series = []*metrics.Series{tput, lat}
	res.Notes = append(res.Notes,
		"paper expectation: throughput grows with batch size until the broker saturates, then flattens")
	return res, nil
}
