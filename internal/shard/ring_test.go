package shard

import "testing"

// keysFor distributes k synthetic routing keys and tallies owners.
func keysFor(r *Ring, k int) map[uint64]int {
	counts := make(map[uint64]int)
	for i := 0; i < k; i++ {
		owner, ok := r.Owner(uint64(i)*0x9e3779b97f4a7c15 + 1)
		if !ok {
			panic("empty ring")
		}
		counts[owner]++
	}
	return counts
}

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for id := uint64(1); id <= 4; id++ {
		a.Add(id)
		b.Add(id)
	}
	for i := 0; i < 1000; i++ {
		key := uint64(i) * 7919
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %d: ring A gives %d, ring B gives %d", key, oa, ob)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner(42); ok {
		t.Fatal("empty ring reported an owner")
	}
	r.Add(3)
	r.Add(1)
	r.Add(3) // duplicate add is a no-op
	if got := r.Size(); got != 2 {
		t.Fatalf("Size = %d, want 2", got)
	}
	m := r.Members()
	if len(m) != 2 || m[0] != 1 || m[1] != 3 {
		t.Fatalf("Members = %v, want [1 3]", m)
	}
	r.Remove(1)
	r.Remove(99) // absent remove is a no-op
	if owner, ok := r.Owner(42); !ok || owner != 3 {
		t.Fatalf("Owner after removals = %d,%v, want 3,true", owner, ok)
	}
}

// TestRingDistributionUniform bounds the χ² statistic of the key
// distribution over 8 shards. With 256 vnodes/shard the relative per-shard
// imbalance is ~1/sqrt(256) ≈ 6%; for K=100k keys that puts the expected
// χ² (df=7) in the low hundreds. The hash is deterministic, so this is a
// regression pin with headroom, not a statistical sample: the bound of
// 1200 corresponds to a ~12% relative stddev, double the design point.
func TestRingDistributionUniform(t *testing.T) {
	const shards, keys = 8, 100_000
	r := NewRing(0)
	for id := uint64(1); id <= shards; id++ {
		r.Add(id)
	}
	counts := keysFor(r, keys)
	expected := float64(keys) / shards
	var chi2 float64
	for id := uint64(1); id <= shards; id++ {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	t.Logf("counts=%v chi2=%.1f", counts, chi2)
	if chi2 > 1200 {
		t.Fatalf("χ² = %.1f exceeds uniformity bound 1200 (counts %v)", chi2, counts)
	}
	// No shard may be starved or doubled relative to the mean.
	for id := uint64(1); id <= shards; id++ {
		ratio := float64(counts[id]) / expected
		if ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("shard %d holds %.0f%% of expected load", id, 100*ratio)
		}
	}
}

// TestRingBoundedRemapOnJoin verifies the consistent-hashing contract: when
// shard N+1 joins an N-shard ring, every remapped key moves to the joining
// shard (nothing shuffles between survivors), and the moved fraction is
// close to the ideal K/(N+1).
func TestRingBoundedRemapOnJoin(t *testing.T) {
	const shards, keys = 4, 50_000
	r := NewRing(0)
	for id := uint64(1); id <= shards; id++ {
		r.Add(id)
	}
	before := make([]uint64, keys)
	for i := 0; i < keys; i++ {
		before[i], _ = r.Owner(uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	r.Add(shards + 1)
	moved := 0
	for i := 0; i < keys; i++ {
		after, _ := r.Owner(uint64(i)*0x9e3779b97f4a7c15 + 1)
		if after == before[i] {
			continue
		}
		if after != shards+1 {
			t.Fatalf("key %d moved %d→%d instead of to the joining shard", i, before[i], after)
		}
		moved++
	}
	ideal := keys / (shards + 1)
	t.Logf("moved %d keys (ideal %d)", moved, ideal)
	if moved == 0 {
		t.Fatal("join moved no keys")
	}
	if moved > ideal*3/2 {
		t.Fatalf("join remapped %d keys, more than 1.5× the ideal %d", moved, ideal)
	}
}

// TestRingBoundedRemapOnLeave is the converse: a leaving shard's keys
// scatter over the survivors, and no key owned by a survivor moves.
func TestRingBoundedRemapOnLeave(t *testing.T) {
	const shards, keys = 5, 50_000
	r := NewRing(0)
	for id := uint64(1); id <= shards; id++ {
		r.Add(id)
	}
	const leaving = 3
	before := make([]uint64, keys)
	for i := 0; i < keys; i++ {
		before[i], _ = r.Owner(uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	r.Remove(leaving)
	moved := 0
	for i := 0; i < keys; i++ {
		after, _ := r.Owner(uint64(i)*0x9e3779b97f4a7c15 + 1)
		if before[i] != leaving {
			if after != before[i] {
				t.Fatalf("survivor-owned key %d moved %d→%d on unrelated leave", i, before[i], after)
			}
			continue
		}
		if after == leaving {
			t.Fatalf("key %d still owned by removed shard", i)
		}
		moved++
	}
	ideal := keys / shards
	t.Logf("moved %d keys (ideal %d)", moved, ideal)
	if moved > ideal*3/2 {
		t.Fatalf("leave remapped %d keys, more than 1.5× the ideal %d", moved, ideal)
	}
}
