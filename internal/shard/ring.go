// Package shard provides the building blocks for running the broker as a
// group of cooperating shards: a consistent-hash ring that maps tasklet
// routing keys (program hashes) onto shard IDs, and a pull-based work
// exchange policy that decides when an underloaded shard should request
// queued tasklets from an overloaded peer.
//
// The package is pure data-structure code with no broker or network
// dependencies so both the live broker (internal/broker) and the simulator
// (internal/sim) drive the exact same routing and exchange decisions.
package shard

import "sort"

// DefaultVnodes is the number of virtual nodes placed on the ring per
// shard. 256 vnodes keeps the per-shard load imbalance in the low single
// digits (relative stddev ~1/sqrt(vnodes) ≈ 6%) while Owner lookups stay a
// single binary search over a few thousand points.
const DefaultVnodes = 256

type ringPoint struct {
	hash  uint64
	shard uint64
}

// Ring is a consistent-hash ring mapping 64-bit routing keys to shard IDs.
// Each shard contributes vnodes points; a key is owned by the first point
// clockwise from the key's hash. Adding or removing one shard therefore
// remaps only the keys on the arcs adjacent to that shard's points —
// roughly K/N of K keys for an N-shard ring — which is what keeps the
// per-shard memo and flight tables warm across membership changes.
//
// Ring is not safe for concurrent mutation; lookups are read-only and may
// be shared once membership is settled.
type Ring struct {
	vnodes  int
	points  []ringPoint
	members map[uint64]bool
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer. Routing keys are already hashes (FNV-1a program hashes), but
// mixing again decorrelates them from the vnode point positions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing creates an empty ring with the given virtual-node count per
// shard. vnodes <= 0 selects DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[uint64]bool)}
}

// Add places a shard on the ring. Adding a present member is a no-op.
func (r *Ring) Add(shard uint64) {
	if r.members[shard] {
		return
	}
	r.members[shard] = true
	for v := 0; v < r.vnodes; v++ {
		h := mix64(mix64(shard) + 0x9e3779b97f4a7c15*uint64(v+1))
		r.points = append(r.points, ringPoint{hash: h, shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove takes a shard off the ring. Removing an absent member is a no-op.
func (r *Ring) Remove(shard uint64) {
	if !r.members[shard] {
		return
	}
	delete(r.members, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner reports the shard owning key. ok is false on an empty ring.
func (r *Ring) Owner(key uint64) (shard uint64, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard, true
}

// Size reports the number of member shards.
func (r *Ring) Size() int { return len(r.members) }

// Members returns the member shard IDs in ascending order.
func (r *Ring) Members() []uint64 {
	ids := make([]uint64, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
