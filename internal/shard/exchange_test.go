package shard

import "testing"

func TestPolicyNormalizeDefaults(t *testing.T) {
	p := Policy{}.Normalize()
	if p.Ratio != 2 || p.MinGap != 16 || p.MaxPull != 64 {
		t.Fatalf("defaults = %+v", p)
	}
	custom := Policy{Ratio: 3, MinGap: 4, MaxPull: 8}.Normalize()
	if custom.Ratio != 3 || custom.MinGap != 4 || custom.MaxPull != 8 {
		t.Fatalf("explicit fields clobbered: %+v", custom)
	}
}

func TestPlanPullPicksMostLoadedPeer(t *testing.T) {
	p := Policy{MinGap: 8}
	self := Load{Shard: 1, Queue: 0, Free: 16}
	peers := []Load{
		{Shard: 2, Queue: 40},
		{Shard: 3, Queue: 100},
		{Shard: 4, Queue: 60},
	}
	from, n, ok := p.PlanPull(self, peers)
	if !ok || from != 3 {
		t.Fatalf("PlanPull = %d,%d,%v, want peer 3", from, n, ok)
	}
	if n != 50 {
		t.Fatalf("n = %d, want half the gap (50)", n)
	}
}

func TestPlanPullHysteresis(t *testing.T) {
	p := Policy{MinGap: 16}
	self := Load{Shard: 1, Queue: 0, Free: 8}

	// Gap below MinGap: no pull even though the ratio is satisfied.
	if _, _, ok := p.PlanPull(self, []Load{{Shard: 2, Queue: 10}}); ok {
		t.Fatal("pulled over a sub-MinGap imbalance")
	}
	// Ratio not met: peer 2× rule blocks near-equal queues.
	busy := Load{Shard: 1, Queue: 30, Free: 40}
	if _, _, ok := p.PlanPull(busy, []Load{{Shard: 2, Queue: 50}}); ok {
		t.Fatal("pulled although peer queue < Ratio×(self+1)")
	}
	// Both satisfied: pull happens.
	if _, n, ok := p.PlanPull(self, []Load{{Shard: 2, Queue: 40}}); !ok || n != 20 {
		t.Fatalf("expected pull of 20, got %d,%v", n, ok)
	}
}

func TestPlanPullRequiresUnderload(t *testing.T) {
	p := Policy{MinGap: 8}
	peers := []Load{{Shard: 2, Queue: 500}}
	// No free slots: pulled work could not launch.
	if _, _, ok := p.PlanPull(Load{Shard: 1, Queue: 0, Free: 0}, peers); ok {
		t.Fatal("pulled with zero free slots")
	}
	// Queue already covers the free slots.
	if _, _, ok := p.PlanPull(Load{Shard: 1, Queue: 12, Free: 8}, peers); ok {
		t.Fatal("pulled with queue ≥ free slots")
	}
}

func TestPlanPullCap(t *testing.T) {
	p := Policy{MinGap: 8, MaxPull: 32}
	self := Load{Shard: 1, Queue: 0, Free: 64}
	_, n, ok := p.PlanPull(self, []Load{{Shard: 2, Queue: 10_000}})
	if !ok || n != 32 {
		t.Fatalf("n = %d,%v, want MaxPull cap 32", n, ok)
	}
}

func TestPlanPullIgnoresSelfAndLighterPeers(t *testing.T) {
	p := Policy{MinGap: 8}
	self := Load{Shard: 1, Queue: 2, Free: 16}
	peers := []Load{
		{Shard: 1, Queue: 9_999}, // stale self-echo must be skipped
		{Shard: 2, Queue: 1},
	}
	if from, n, ok := p.PlanPull(self, peers); ok {
		t.Fatalf("unexpected pull %d,%d", from, n)
	}
}

func TestEWMA(t *testing.T) {
	v := 100.0
	for i := 0; i < 50; i++ {
		v = EWMA(v, 200)
	}
	if v < 199 || v > 200 {
		t.Fatalf("EWMA failed to converge: %f", v)
	}
	if got := EWMA(100, 100); got != 100 {
		t.Fatalf("EWMA(100,100) = %f", got)
	}
}
