package shard

// Load is one shard's gossiped load snapshot: instantaneous queue depth and
// free provider slots, plus an EWMA of the shard's service rate
// (tasklets finalized per second). Queue and Free drive the pull decision;
// Rate rides along so operators and future policies can reason about
// throughput, and it breaks ties between equally deep peers.
type Load struct {
	Shard uint64
	Queue int
	Free  int
	Rate  float64
}

// Policy tunes the pull-based work exchange. The zero value of any field
// selects the documented default, so brokers can embed a Policy literal and
// set only what they care about.
//
// The policy is deliberately one-sided: only an underloaded shard initiates
// a pull, and only for queued (never in-flight) work, so the exchange can
// slow down a hot shard's queue growth but never perturb running attempts.
type Policy struct {
	// Ratio is the hysteresis multiplier: a peer qualifies as a pull
	// source only when its queue exceeds Ratio×(self queue + 1).
	// Default 2. The +1 keeps the comparison meaningful when the puller
	// is fully drained.
	Ratio float64

	// MinGap is the absolute queue-depth gap below which no pull happens,
	// regardless of Ratio. It stops migration churn over trivially small
	// imbalances. Default 16.
	MinGap int

	// MaxPull caps tasklets requested per gossip interval so the exchange
	// never becomes the hot path. Default 64.
	MaxPull int
}

// Normalize fills defaulted fields.
func (p Policy) Normalize() Policy {
	if p.Ratio <= 0 {
		p.Ratio = 2
	}
	if p.MinGap <= 0 {
		p.MinGap = 16
	}
	if p.MaxPull <= 0 {
		p.MaxPull = 64
	}
	return p
}

// Underloaded reports whether a shard with the given load should consider
// pulling: it has idle provider slots and less queued work than slots to
// fill, so pulled tasklets can launch immediately instead of re-queueing.
func (p Policy) Underloaded(self Load) bool {
	return self.Free > 0 && self.Queue < self.Free
}

// PlanPull decides one gossip interval's exchange action for self given the
// latest peer snapshots: pull n queued tasklets from peer `from`, or do
// nothing (ok=false). The most-loaded qualifying peer is chosen; n is half
// the queue gap (pulling the full gap would just invert the imbalance a
// gossip interval later), clamped to MaxPull.
func (p Policy) PlanPull(self Load, peers []Load) (from uint64, n int, ok bool) {
	p = p.Normalize()
	if !p.Underloaded(self) {
		return 0, 0, false
	}
	best := -1
	for i, peer := range peers {
		if peer.Shard == self.Shard || peer.Queue <= self.Queue {
			continue
		}
		if best < 0 || peer.Queue > peers[best].Queue ||
			(peer.Queue == peers[best].Queue && peer.Shard < peers[best].Shard) {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	peer := peers[best]
	gap := peer.Queue - self.Queue
	if gap < p.MinGap || float64(peer.Queue) < p.Ratio*float64(self.Queue+1) {
		return 0, 0, false
	}
	n = gap / 2
	if n > p.MaxPull {
		n = p.MaxPull
	}
	if n < 1 {
		return 0, 0, false
	}
	return peer.Shard, n, true
}

// EWMAAlpha is the smoothing factor for gossiped service rates: ~70% of the
// weight sits in the last four samples, fast enough to track load shifts
// across a few gossip intervals without jittering on single-interval noise.
const EWMAAlpha = 0.3

// EWMA folds one service-rate sample into a running average. A zero prev
// with no history adopts the sample directly (handled by the caller passing
// sample as prev on first observation, or simply tolerating one warm-up
// interval).
func EWMA(prev, sample float64) float64 {
	return EWMAAlpha*sample + (1-EWMAAlpha)*prev
}
