package shard

import "testing"

// BenchmarkRingOwner measures the routing hot path: one Owner lookup on an
// 8-shard ring (2048 points) per submitted tasklet.
func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(0)
	for id := uint64(1); id <= 8; id++ {
		r.Add(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		owner, _ := r.Owner(uint64(i) * 0x9e3779b97f4a7c15)
		sink += owner
	}
	_ = sink
}

// BenchmarkRingAdd measures a full membership change (vnode placement plus
// re-sort) on a 7-shard ring.
func BenchmarkRingAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRing(0)
		for id := uint64(1); id <= 8; id++ {
			r.Add(id)
		}
	}
}

// BenchmarkPlanPull measures one gossip interval's exchange decision
// against 7 peer snapshots.
func BenchmarkPlanPull(b *testing.B) {
	p := Policy{}.Normalize()
	self := Load{Shard: 1, Queue: 3, Free: 32}
	peers := make([]Load, 7)
	for i := range peers {
		peers[i] = Load{Shard: uint64(i + 2), Queue: 10 * (i + 1), Free: 4}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		_, n, _ := p.PlanPull(self, peers)
		sink += n
	}
	_ = sink
}
