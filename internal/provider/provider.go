// Package provider implements the Tasklet provider runtime: the daemon that
// donates a device's idle cycles to the middleware. A provider connects to
// the broker, measures and advertises its execution speed, then executes
// assigned tasklets in sandboxed TVMs — one goroutine per slot — and
// reports results.
//
// Heterogeneity hooks: a Throttle factor slows execution to emulate weaker
// device classes on a fast test machine, and FailAfter makes the provider
// vanish mid-workload for churn experiments.
package provider

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/speedbench"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// Options configures a provider.
type Options struct {
	// BrokerAddr is the broker's TCP address. Required.
	BrokerAddr string
	// Slots is the number of concurrent tasklet executions. Zero selects 1.
	Slots int
	// Class is the advertised device class (cosmetic in live mode; the
	// measured speed is what schedulers use).
	Class core.DeviceClass
	// Throttle in (0, 1] scales the advertised speed and stretches each
	// execution by sleeping (1/Throttle - 1) times the compute time,
	// emulating a slower device. Zero selects 1 (no throttle).
	Throttle float64
	// Speed overrides the measured benchmark score when positive (tests
	// and deterministic experiments set it; real deployments measure).
	Speed float64
	// HeartbeatInterval defaults to 1s.
	HeartbeatInterval time.Duration
	// Name identifies the provider in broker logs.
	Name string
	// Logger receives operational logs; nil discards them.
	Logger *log.Logger
	// FailAfter, when positive, makes the provider abruptly close its
	// connection after executing that many tasklets (churn injection).
	// Only real TVM executions count — attempts answered from the local
	// result memo don't, so fault-injection timing is identical whether
	// the memo is enabled or not.
	FailAfter int
	// CacheSize bounds the decoded-program LRU cache. Zero selects
	// defaultProgramCacheSize.
	CacheSize int
	// MemoEntries, MemoBytes and MemoTTL bound the local result memo:
	// attempts whose (program, seed, params) this node already executed
	// successfully are answered from cache without running the TVM, with
	// the original FuelUsed so accounting is unchanged. Zero selects the
	// provider defaults (512 entries, 4 MiB, memo.DefaultTTL); any
	// negative value disables the memo. Assignments flagged NoCache
	// bypass it either way.
	MemoEntries int
	MemoBytes   int
	MemoTTL     time.Duration
	// Metrics receives provider counters ("provider.memo.*" plus the
	// "provider.attempts.*" family) when non-nil.
	Metrics *metrics.Registry
	// NoCoalesce disables write coalescing on the broker connection: every
	// outgoing message is flushed individually instead of batching a burst
	// of results into one syscall. Ablation and differential tests only.
	NoCoalesce bool
	// NoBatch stops this provider from advertising CapBatch (so the broker
	// sends one Assign per attempt) and from folding its result bursts into
	// AttemptResultBatch frames. Ablation and differential tests only; job
	// results are identical either way.
	NoBatch bool
}

// Local result memo defaults: deliberately smaller than the broker tier —
// a donated device keeps a modest footprint.
const (
	defaultMemoEntries = 512
	defaultMemoBytes   = 4 << 20
)

// defaultProgramCacheSize bounds the program cache when Options.CacheSize is
// zero. 64 decoded programs comfortably cover the working set of every
// workload in this repo while keeping a small provider's memory bounded.
const defaultProgramCacheSize = 64

// Provider is a running provider instance.
type Provider struct {
	opts Options
	logf func(string, ...any)

	conn *wire.Conn
	nc   net.Conn
	id   core.ProviderID

	slotSem  chan struct{}
	out      chan wire.Message
	executed atomic.Int64 // attempts finished, memo-served included
	ran      atomic.Int64 // real TVM executions only; drives FailAfter
	closed   atomic.Bool

	mu      sync.Mutex
	cancels map[core.AttemptID]*atomic.Bool
	cache   *programLRU
	memo    *memo.Cache // nil when disabled; guarded by mu

	wg   sync.WaitGroup
	done chan struct{}

	// Hot-path metric handles, resolved once at Connect so the per-attempt
	// path never takes the registry lock (the memo cache resolves its
	// "provider.memo.*" handles the same way at construction).
	mExecuted   *metrics.Counter
	mMemoServed *metrics.Counter
	mRejected   *metrics.Counter
	mBatches    *metrics.Counter
}

// Connect dials the broker, performs the handshake, measures (or adopts)
// the speed score, registers, and starts the execution loops.
func Connect(opts Options) (*Provider, error) {
	if opts.BrokerAddr == "" {
		return nil, errors.New("provider: broker address required")
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.Throttle <= 0 || opts.Throttle > 1 {
		opts.Throttle = 1
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = time.Second
	}
	logf := func(string, ...any) {}
	if opts.Logger != nil {
		logf = opts.Logger.Printf
	}

	speed := opts.Speed
	if speed <= 0 {
		score, err := speedbench.Measure(speedbench.Options{MinDuration: 30 * time.Millisecond})
		if err != nil {
			return nil, fmt.Errorf("provider: speed benchmark: %w", err)
		}
		speed = score.MegaOpsPerSec
	}
	speed *= opts.Throttle

	nc, err := net.Dial("tcp", opts.BrokerAddr)
	if err != nil {
		return nil, fmt.Errorf("provider: dial broker: %w", err)
	}
	conn := wire.NewConn(nc)
	conn.NoCoalesce = opts.NoCoalesce
	caps := wire.CapFlagsTail
	if !opts.NoBatch {
		caps |= wire.CapBatch
	}
	if err := conn.Send(&wire.Hello{
		Version: wire.ProtocolVersion, Role: wire.RoleProvider, Name: opts.Name,
		Caps: caps,
	}); err != nil {
		nc.Close()
		return nil, err
	}
	msg, err := conn.Recv()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("provider: handshake: %w", err)
	}
	welcome, ok := msg.(*wire.Welcome)
	if !ok {
		nc.Close()
		return nil, fmt.Errorf("provider: handshake: unexpected %s", msg.Type())
	}

	p := &Provider{
		opts:    opts,
		logf:    logf,
		conn:    conn,
		nc:      nc,
		id:      core.ProviderID(welcome.ID),
		slotSem: make(chan struct{}, opts.Slots),
		out:     make(chan wire.Message, 1024),
		cancels: map[core.AttemptID]*atomic.Bool{},
		cache:   newProgramLRU(opts.CacheSize),
		done:    make(chan struct{}),
	}
	reg := opts.Metrics
	if reg == nil {
		reg = &metrics.Registry{} // private sink; keeps handles non-nil
	}
	p.mExecuted = reg.Counter("provider.attempts.executed")
	p.mMemoServed = reg.Counter("provider.attempts.memo_served")
	p.mRejected = reg.Counter("provider.attempts.rejected")
	p.mBatches = reg.Counter("provider.batches.received")
	if opts.MemoEntries >= 0 && opts.MemoBytes >= 0 && opts.MemoTTL >= 0 {
		entries, bytes := opts.MemoEntries, opts.MemoBytes
		if entries == 0 {
			entries = defaultMemoEntries
		}
		if bytes == 0 {
			bytes = defaultMemoBytes
		}
		p.memo = memo.New(memo.Config{
			MaxEntries: entries,
			MaxBytes:   bytes,
			TTL:        opts.MemoTTL,
			Metrics:    opts.Metrics,
			Prefix:     "provider.memo.",
		})
	}

	if err := conn.Send(&wire.Register{Slots: opts.Slots, Class: opts.Class, Speed: speed}); err != nil {
		nc.Close()
		return nil, err
	}
	logf("provider %d: registered %d slots at %.1f Mops/s", p.id, opts.Slots, speed)

	p.wg.Add(3)
	go func() { defer p.wg.Done(); p.writerLoop() }()
	go func() { defer p.wg.Done(); p.heartbeatLoop() }()
	go func() { defer p.wg.Done(); p.readLoop() }()
	return p, nil
}

// ID returns the broker-assigned provider ID.
func (p *Provider) ID() core.ProviderID { return p.id }

// Executed reports how many tasklets this provider has finished.
func (p *Provider) Executed() int64 { return p.executed.Load() }

// Close disconnects and waits for in-flight executions to unwind.
func (p *Provider) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.done)
	// Cancel running VMs so slots drain quickly.
	p.mu.Lock()
	for _, c := range p.cancels {
		c.Store(true)
	}
	p.mu.Unlock()
	p.nc.Close()
	p.wg.Wait()
	return nil
}

// Wait blocks until the provider's connection ends (broker gone or Close).
func (p *Provider) Wait() { p.wg.Wait() }

// writerBatchMax bounds how many queued messages one flush may cover; it
// mirrors the broker's writer batching so a slot-wide burst of results
// costs one syscall instead of one per result.
const writerBatchMax = 128

func (p *Provider) writerLoop() {
	// Fold each flush window's run of results into one AttemptResultBatch
	// frame; the broker always decodes batches regardless of capability
	// negotiation (liberal ingest), so the fold is gated only on NoBatch.
	var fold func([]wire.Message) []wire.Message
	if !p.opts.NoBatch {
		fold = wire.FoldBatchFrames
	}
	wire.WriterLoop(p.conn, p.out, wire.WriterOpts{
		Max:        writerBatchMax,
		NoCoalesce: p.opts.NoCoalesce,
		Fold:       fold,
		Done:       p.done,
		Closer:     p.nc,
	})
}

func (p *Provider) heartbeatLoop() {
	tick := time.NewTicker(p.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			free := p.opts.Slots - len(p.slotSem)
			p.send(&wire.Heartbeat{FreeSlots: free})
		case <-p.done:
			return
		}
	}
}

// send enqueues an outgoing message unless the provider is shutting down.
func (p *Provider) send(m wire.Message) {
	select {
	case p.out <- m:
	case <-p.done:
	}
}

func (p *Provider) readLoop() {
	defer p.nc.Close()
	for {
		msg, err := p.conn.Recv()
		if err != nil {
			if !p.closed.Load() {
				p.logf("provider %d: connection lost: %v", p.id, err)
			}
			return
		}
		switch m := msg.(type) {
		case *wire.Assign:
			p.onAssign(m)
		case *wire.AssignBatch:
			p.onAssignBatch(m)
		case *wire.CancelAttempt:
			p.mu.Lock()
			if c := p.cancels[m.Attempt]; c != nil {
				c.Store(true)
			}
			p.mu.Unlock()
		case *wire.ErrorMsg:
			p.logf("provider %d: broker error %d: %s", p.id, m.Code, m.Msg)
		case *wire.Bye:
			return
		default:
			p.logf("provider %d: unexpected %s", p.id, msg.Type())
		}
	}
}

// onAssign admits one execution attempt arriving as a single frame.
func (p *Provider) onAssign(m *wire.Assign) {
	prog, err := p.resolveProgram(m)
	if err != nil {
		p.reject(m, err.Error())
		return
	}
	p.admit(m, prog)
}

// onAssignBatch admits a burst of attempts from one AssignBatch frame: the
// frame's program table is installed and every distinct referenced program
// resolved under ONE mutex acquisition, then each entry goes through the
// same admission path a single Assign would.
func (p *Provider) onAssignBatch(m *wire.AssignBatch) {
	p.mBatches.Inc()
	progs := p.resolveBatch(m)
	for i := range m.Assigns {
		a := &m.Assigns[i]
		prog := progs[a.Program]
		if prog == nil {
			p.reject(a, fmt.Sprintf("unknown program %d in batch", a.Program))
			continue
		}
		p.admit(a, prog)
	}
}

// resolveBatch installs the batch's program table into the cache and maps
// every program its entries reference, holding the mutex once for the whole
// frame. Programs that fail verification or decoding are simply absent from
// the result, so the entries naming them get rejected individually.
func (p *Provider) resolveBatch(m *wire.AssignBatch) map[core.ProgramID]*tvm.Program {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range m.Programs {
		blob := &m.Programs[i]
		if _, ok := p.cache.get(blob.ID); ok {
			continue
		}
		if got := core.HashProgram(blob.Data); got != blob.ID {
			p.logf("provider %d: batch program hash mismatch: got %d want %d", p.id, got, blob.ID)
			continue
		}
		var prog tvm.Program
		if err := prog.UnmarshalBinary(blob.Data); err != nil {
			p.logf("provider %d: batch program %d: bad bytecode: %v", p.id, blob.ID, err)
			continue
		}
		prog.Optimize()
		p.cache.put(blob.ID, &prog)
	}
	progs := make(map[core.ProgramID]*tvm.Program, len(m.Programs)+1)
	for i := range m.Assigns {
		id := m.Assigns[i].Program
		if _, seen := progs[id]; seen {
			continue
		}
		prog, _ := p.cache.get(id) // nil on miss → entry rejected
		progs[id] = prog
	}
	return progs
}

// reject reports an attempt the provider will not run.
func (p *Provider) reject(m *wire.Assign, why string) {
	p.logf("provider %d: attempt %d rejected: %s", p.id, m.Attempt, why)
	p.mRejected.Inc()
	p.send(&wire.AttemptResult{
		Attempt: m.Attempt, Tasklet: m.Tasklet,
		Status: core.StatusRejected, FaultMsg: why,
	})
}

// admit runs one resolved assignment: memo short-circuit, slot claim, then
// an execution goroutine. The broker never over-commits a provider's slots,
// so a full semaphore indicates state drift; such attempts are rejected
// rather than queued to keep accounting exact.
func (p *Provider) admit(m *wire.Assign, prog *tvm.Program) {
	if p.memoServe(m) {
		return
	}
	select {
	case p.slotSem <- struct{}{}:
	default:
		p.reject(m, "no free slot")
		return
	}

	cancel := &atomic.Bool{}
	p.mu.Lock()
	p.cancels[m.Attempt] = cancel
	p.mu.Unlock()

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() { <-p.slotSem }()
		defer func() {
			p.mu.Lock()
			delete(p.cancels, m.Attempt)
			p.mu.Unlock()
		}()
		p.execute(m, prog, cancel)
	}()
}

// resolveProgram returns the cached or freshly-decoded program.
func (p *Provider) resolveProgram(m *wire.Assign) (*tvm.Program, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prog, ok := p.cache.get(m.Program); ok {
		return prog, nil
	}
	if len(m.ProgramData) == 0 {
		return nil, fmt.Errorf("unknown program %d and no bytecode attached", m.Program)
	}
	if got := core.HashProgram(m.ProgramData); got != m.Program {
		return nil, fmt.Errorf("program hash mismatch: got %d want %d", got, m.Program)
	}
	var prog tvm.Program
	if err := prog.UnmarshalBinary(m.ProgramData); err != nil {
		return nil, fmt.Errorf("bad bytecode: %w", err)
	}
	// Run the load-time optimization pass once at cache-insert time, while
	// the program is still private to this goroutine; every subsequent
	// execution shares the fused streams.
	prog.Optimize()
	p.cache.put(m.Program, &prog)
	return &prog, nil
}

// memoServe answers an assignment from the local result memo when this node
// has already executed identical content, skipping the TVM entirely. The
// reply carries the original FuelUsed (accounting unchanged) and the actual
// near-zero serve time in ExecNanos. Reports whether the attempt was served.
func (p *Provider) memoServe(m *wire.Assign) bool {
	if p.memo == nil || m.NoCache {
		return false
	}
	key, ok := memo.KeyFor(uint64(m.Program), m.Seed, m.Params)
	if !ok {
		return false
	}
	fuel := m.Fuel
	if fuel == 0 {
		fuel = tvm.DefaultConfig().Fuel
	}
	start := time.Now()
	p.mu.Lock()
	e := p.memo.Get(key, 0, fuel)
	p.mu.Unlock()
	if e == nil {
		return false
	}
	ret, em := e.CachedResult()
	p.send(&wire.AttemptResult{
		Attempt: m.Attempt, Tasklet: m.Tasklet, Status: core.StatusOK,
		Return: ret, Emitted: em, FuelUsed: e.FuelUsed,
		ExecNanos: int64(time.Since(start)),
	})
	// A memo hit finishes the attempt without running the TVM: it counts
	// toward Executed but not toward the FailAfter churn threshold, which
	// models failures of real executions.
	p.executed.Add(1)
	p.mExecuted.Inc()
	p.mMemoServed.Inc()
	return true
}

// execute runs one attempt in a fresh VM and reports the outcome.
func (p *Provider) execute(m *wire.Assign, prog *tvm.Program, cancel *atomic.Bool) {
	cfg := tvm.DefaultConfig()
	if m.Fuel > 0 {
		cfg.Fuel = m.Fuel
	}
	cfg.Seed = m.Seed
	cfg.Cancel = cancel

	start := time.Now()
	res, err := tvm.New(prog, cfg).Run(m.Params...)
	elapsed := time.Since(start)

	// Throttle emulation: stretch wall time as a slower device would.
	if p.opts.Throttle < 1 {
		extra := time.Duration(float64(elapsed) * (1/p.opts.Throttle - 1))
		select {
		case <-time.After(extra):
			elapsed += extra
		case <-p.done:
		}
	}

	out := &wire.AttemptResult{Attempt: m.Attempt, Tasklet: m.Tasklet, ExecNanos: int64(elapsed)}
	if err != nil {
		f, ok := tvm.AsFault(err)
		if !ok {
			f = &tvm.Fault{Code: tvm.FaultBadProgram, Msg: err.Error()}
		}
		out.Status = core.StatusFault
		out.FaultCode = f.Code
		out.FaultMsg = f.Msg
	} else {
		out.Status = core.StatusOK
		out.Return = res.Return
		out.Emitted = res.Emitted
		out.FuelUsed = res.FuelUsed
		// Remember our own successful executions only — a pure function of
		// content, so replaying one later is indistinguishable from
		// re-running it (voting replicas still land on distinct nodes).
		if p.memo != nil && !m.NoCache {
			if key, ok := memo.KeyFor(uint64(m.Program), m.Seed, m.Params); ok {
				p.mu.Lock()
				p.memo.Put(key, res.Return, res.Emitted, res.FuelUsed, elapsed, 0)
				p.mu.Unlock()
			}
		}
	}
	p.send(out)
	p.noteFinished()
}

// noteFinished counts a completed execution and fires the FailAfter churn
// injection when armed.
func (p *Provider) noteFinished() {
	p.executed.Add(1)
	p.mExecuted.Inc()
	n := p.ran.Add(1)
	if p.opts.FailAfter > 0 && int(n) >= p.opts.FailAfter && !p.closed.Swap(true) {
		p.logf("provider %d: injected failure after %d tasklets", p.id, n)
		close(p.done)
		p.nc.Close()
	}
}
