package provider

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stdtasks"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// fakeBroker is a minimal broker-side endpoint for driving a provider
// directly: it accepts one provider connection, completes the handshake,
// and exposes send/recv helpers.
type fakeBroker struct {
	t    *testing.T
	ln   net.Listener
	conn *wire.Conn

	welcomed chan *wire.Register
}

func newFakeBroker(t *testing.T) *fakeBroker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb := &fakeBroker{t: t, ln: ln, welcomed: make(chan *wire.Register, 1)}
	t.Cleanup(func() {
		ln.Close()
		if fb.conn != nil {
			fb.conn.Close()
		}
	})
	go fb.accept()
	return fb
}

func (fb *fakeBroker) addr() string { return fb.ln.Addr().String() }

func (fb *fakeBroker) accept() {
	nc, err := fb.ln.Accept()
	if err != nil {
		return
	}
	conn := wire.NewConn(nc)
	msg, err := conn.Recv()
	if err != nil {
		return
	}
	if _, ok := msg.(*wire.Hello); !ok {
		fb.t.Errorf("first message = %T, want Hello", msg)
		return
	}
	if err := conn.Send(&wire.Welcome{ID: 7}); err != nil {
		return
	}
	msg, err = conn.Recv()
	if err != nil {
		return
	}
	reg, ok := msg.(*wire.Register)
	if !ok {
		fb.t.Errorf("second message = %T, want Register", msg)
		return
	}
	fb.conn = conn
	fb.welcomed <- reg
}

// waitRegistered blocks until the provider finished the handshake.
func (fb *fakeBroker) waitRegistered() *wire.Register {
	select {
	case reg := <-fb.welcomed:
		return reg
	case <-time.After(5 * time.Second):
		fb.t.Fatal("provider never registered")
		return nil
	}
}

// recvType reads messages until one of the wanted type arrives, skipping
// heartbeats.
func recvType[T wire.Message](fb *fakeBroker) T {
	fb.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			fb.t.Fatal("timed out waiting for message")
		}
		msg, err := fb.conn.Recv()
		if err != nil {
			fb.t.Fatalf("recv: %v", err)
		}
		if m, ok := msg.(T); ok {
			return m
		}
		if _, ok := msg.(*wire.Heartbeat); ok {
			continue
		}
	}
}

func assignSpin(attempt core.AttemptID, iters int64, includeProgram bool) *wire.Assign {
	data, err := stdtasks.Bytecode("spin")
	if err != nil {
		panic(err)
	}
	a := &wire.Assign{
		Attempt: attempt, Tasklet: core.TaskletID(attempt), Program: core.HashProgram(data),
		Params: []tvm.Value{tvm.Int(iters)}, Fuel: 10_000_000, Seed: 1,
	}
	if includeProgram {
		a.ProgramData = data
	}
	return a
}

func startProvider(t *testing.T, fb *fakeBroker, opts Options) *Provider {
	t.Helper()
	opts.BrokerAddr = fb.addr()
	if opts.Speed == 0 {
		opts.Speed = 100
	}
	p, err := Connect(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	fb.waitRegistered()
	return p
}

func TestProviderRegistersAdvertisedCapacity(t *testing.T) {
	fb := newFakeBroker(t)
	opts := Options{BrokerAddr: fb.addr(), Slots: 3, Speed: 55, Class: core.ClassLaptop}
	p, err := Connect(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	reg := fb.waitRegistered()
	if reg.Slots != 3 || reg.Speed != 55 || reg.Class != core.ClassLaptop {
		t.Fatalf("register = %+v", reg)
	}
	if p.ID() != 7 {
		t.Fatalf("id = %d, want broker-assigned 7", p.ID())
	}
}

func TestProviderThrottleScalesAdvertisedSpeed(t *testing.T) {
	fb := newFakeBroker(t)
	p, err := Connect(Options{BrokerAddr: fb.addr(), Speed: 100, Throttle: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	reg := fb.waitRegistered()
	if reg.Speed != 25 {
		t.Fatalf("advertised speed = %v, want 25", reg.Speed)
	}
}

func TestProviderExecutesAndReports(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1})
	if err := fb.conn.Send(assignSpin(1, 1000, true)); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusOK || res.Attempt != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Return.I != stdtasks.RefSpin(1000) {
		t.Fatalf("return = %s", res.Return)
	}
	if res.FuelUsed == 0 || res.ExecNanos <= 0 {
		t.Fatalf("accounting missing: %+v", res)
	}
}

func TestProviderCachesProgram(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1})
	if err := fb.conn.Send(assignSpin(1, 10, true)); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)
	// Second assign ships no bytecode; the provider must use its cache.
	if err := fb.conn.Send(assignSpin(2, 10, false)); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusOK {
		t.Fatalf("cached-program result = %+v", res)
	}
}

func TestProviderRejectsUnknownProgram(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1})
	if err := fb.conn.Send(assignSpin(1, 10, false)); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusRejected {
		t.Fatalf("status = %s, want rejected", res.Status)
	}
}

func TestProviderRejectsHashMismatch(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1})
	a := assignSpin(1, 10, true)
	a.Program = 12345 // wrong hash for the attached bytecode
	if err := fb.conn.Send(a); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusRejected {
		t.Fatalf("status = %s, want rejected on hash mismatch", res.Status)
	}
}

func TestProviderRejectsOverCommit(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1})
	// Fill the single slot with a long-running tasklet, then over-commit.
	long := assignSpin(1, 50_000_000, true)
	long.Fuel = 1 << 40
	if err := fb.conn.Send(long); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let it start
	if err := fb.conn.Send(assignSpin(2, 10, false)); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Attempt != 2 || res.Status != core.StatusRejected {
		t.Fatalf("over-commit result = %+v", res)
	}
}

func TestProviderCancelAbortsRunningAttempt(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1})
	long := assignSpin(1, 1<<40, true)
	long.Fuel = 1 << 50
	if err := fb.conn.Send(long); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := fb.conn.Send(&wire.CancelAttempt{Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusFault || res.FaultCode != tvm.FaultCancelled {
		t.Fatalf("cancelled result = %+v", res)
	}
}

func TestProviderReportsProgramFault(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1})
	tiny := assignSpin(1, 1_000_000, true)
	tiny.Fuel = 100 // guaranteed out-of-fuel
	if err := fb.conn.Send(tiny); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusFault || res.FaultCode != tvm.FaultOutOfFuel {
		t.Fatalf("fault result = %+v", res)
	}
}

func TestProviderFailAfterDisconnects(t *testing.T) {
	fb := newFakeBroker(t)
	p := startProvider(t, fb, Options{Slots: 1, FailAfter: 2})
	// The first result must arrive; the second races the injected crash
	// (a crash is allowed to eat its own last result — the broker treats
	// it as lost either way), so only send it and wait for the
	// disconnect.
	// Distinct content both times: FailAfter counts real executions, and an
	// identical repeat would be served from the memo instead of running.
	if err := fb.conn.Send(assignSpin(1, 10, true)); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)
	if err := fb.conn.Send(assignSpin(2, 11, false)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("provider did not fail after 2 tasklets")
	}
	if p.Executed() != 2 {
		t.Fatalf("executed = %d", p.Executed())
	}
}

func TestProviderHeartbeats(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 2, HeartbeatInterval: 20 * time.Millisecond})
	hb := recvType[*wire.Heartbeat](fb)
	if hb.FreeSlots != 2 {
		t.Fatalf("free slots = %d", hb.FreeSlots)
	}
}

func TestProviderValidatesOptions(t *testing.T) {
	if _, err := Connect(Options{}); err == nil {
		t.Fatal("missing broker address accepted")
	}
	if _, err := Connect(Options{BrokerAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable broker accepted")
	}
}

func TestProviderCloseIdempotent(t *testing.T) {
	fb := newFakeBroker(t)
	p := startProvider(t, fb, Options{Slots: 1})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
