package provider

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stdtasks"
	"repro/internal/tvm"
	"repro/internal/wire"
)

func TestProviderMemoServesRepeats(t *testing.T) {
	fb := newFakeBroker(t)
	reg := &metrics.Registry{}
	startProvider(t, fb, Options{Slots: 1, Metrics: reg})

	if err := fb.conn.Send(assignSpin(1, 1000, true)); err != nil {
		t.Fatal(err)
	}
	first := recvType[*wire.AttemptResult](fb)
	if first.Status != core.StatusOK {
		t.Fatalf("first attempt: %+v", first)
	}

	// Identical content, new attempt ID: must be served from the memo with
	// the original execution's fuel accounting.
	if err := fb.conn.Send(assignSpin(2, 1000, false)); err != nil {
		t.Fatal(err)
	}
	second := recvType[*wire.AttemptResult](fb)
	if second.Status != core.StatusOK || second.Attempt != 2 {
		t.Fatalf("second attempt: %+v", second)
	}
	if !second.Return.Equal(first.Return) {
		t.Fatalf("memo served %s, executed %s", second.Return, first.Return)
	}
	if second.FuelUsed != first.FuelUsed {
		t.Fatalf("memo FuelUsed = %d, original %d", second.FuelUsed, first.FuelUsed)
	}
	if got := reg.Counter("provider.memo.hits").Value(); got != 1 {
		t.Fatalf("provider.memo.hits = %d, want 1", got)
	}
	if got := reg.Counter("provider.memo.stores").Value(); got != 1 {
		t.Fatalf("provider.memo.stores = %d, want 1", got)
	}
}

func TestProviderMemoDistinguishesContent(t *testing.T) {
	fb := newFakeBroker(t)
	reg := &metrics.Registry{}
	startProvider(t, fb, Options{Slots: 1, Metrics: reg})

	if err := fb.conn.Send(assignSpin(1, 1000, true)); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)

	// Different params and different seed must both execute for real.
	if err := fb.conn.Send(assignSpin(2, 999, false)); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)
	seeded := assignSpin(3, 1000, false)
	seeded.Seed = 2
	if err := fb.conn.Send(seeded); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)

	if got := reg.Counter("provider.memo.hits").Value(); got != 0 {
		t.Fatalf("provider.memo.hits = %d, want 0", got)
	}
	if got := reg.Counter("provider.memo.stores").Value(); got != 3 {
		t.Fatalf("provider.memo.stores = %d, want 3", got)
	}
}

func TestProviderMemoHonorsNoCache(t *testing.T) {
	fb := newFakeBroker(t)
	reg := &metrics.Registry{}
	startProvider(t, fb, Options{Slots: 1, Metrics: reg})

	a := assignSpin(1, 1000, true)
	a.NoCache = true
	if err := fb.conn.Send(a); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)
	b := assignSpin(2, 1000, false)
	b.NoCache = true
	if err := fb.conn.Send(b); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)

	if got := reg.Counter("provider.memo.hits").Value(); got != 0 {
		t.Fatalf("provider.memo.hits = %d, want 0 under NoCache", got)
	}
	if got := reg.Counter("provider.memo.stores").Value(); got != 0 {
		t.Fatalf("provider.memo.stores = %d, want 0 under NoCache", got)
	}
}

func TestProviderMemoDisabled(t *testing.T) {
	fb := newFakeBroker(t)
	reg := &metrics.Registry{}
	startProvider(t, fb, Options{Slots: 1, Metrics: reg, MemoEntries: -1})

	if err := fb.conn.Send(assignSpin(1, 1000, true)); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)
	if err := fb.conn.Send(assignSpin(2, 1000, false)); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusOK {
		t.Fatalf("repeat with memo disabled: %+v", res)
	}
	if got := reg.Counter("provider.memo.stores").Value(); got != 0 {
		t.Fatalf("provider.memo.stores = %d with memo disabled", got)
	}
}

// TestProviderMemoHitsDontTriggerFailAfter pins the fault-injection
// semantics: FailAfter counts real TVM executions, so memo-served repeats
// must not advance the churn threshold — injection timing is then identical
// between memo-on and memo-off runs.
func TestProviderMemoHitsDontTriggerFailAfter(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1, FailAfter: 2})

	if err := fb.conn.Send(assignSpin(1, 1000, true)); err != nil {
		t.Fatal(err)
	}
	if res := recvType[*wire.AttemptResult](fb); res.Status != core.StatusOK {
		t.Fatalf("first execution: %+v", res)
	}
	// Several memo hits: with the old attempt-counting semantics the second
	// served attempt would already kill the node.
	for i := core.AttemptID(2); i <= 5; i++ {
		if err := fb.conn.Send(assignSpin(i, 1000, false)); err != nil {
			t.Fatal(err)
		}
		if res := recvType[*wire.AttemptResult](fb); res.Status != core.StatusOK {
			t.Fatalf("memo hit %d: %+v", i, res)
		}
	}
	// A second real execution (distinct content) crosses the threshold and
	// drops the connection.
	if err := fb.conn.Send(assignSpin(6, 999, false)); err != nil {
		t.Fatal(err)
	}
	fb.conn.ReadTimeout = 5 * time.Second
	for {
		_, err := fb.conn.Recv()
		if err == nil {
			continue // the final result may still be flushed before the close
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("provider still alive after FailAfter real executions")
		}
		break
	}
}

func TestProviderMemoNeverServesFaults(t *testing.T) {
	fb := newFakeBroker(t)
	reg := &metrics.Registry{}
	startProvider(t, fb, Options{Slots: 1, Metrics: reg})

	// Starve the program of fuel so it faults; the fault must not be
	// memoized, and a later well-funded identical submission (different
	// fuel => different flight, but same content key) must execute.
	a := assignSpin(1, 100_000, true)
	a.Fuel = 10
	if err := fb.conn.Send(a); err != nil {
		t.Fatal(err)
	}
	res := recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusFault || res.FaultCode != tvm.FaultOutOfFuel {
		t.Fatalf("starved attempt: %+v", res)
	}
	if got := reg.Counter("provider.memo.stores").Value(); got != 0 {
		t.Fatalf("fault was memoized: stores = %d", got)
	}

	b := assignSpin(2, 100_000, false)
	if err := fb.conn.Send(b); err != nil {
		t.Fatal(err)
	}
	res = recvType[*wire.AttemptResult](fb)
	if res.Status != core.StatusOK || res.Return.I != stdtasks.RefSpin(100_000) {
		t.Fatalf("well-funded attempt: %+v", res)
	}
}
