package provider

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stdtasks"
	"repro/internal/tvm"
	"repro/internal/wire"
)

func TestProgramLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newProgramLRU(2)
	p1, p2, p3 := &tvm.Program{}, &tvm.Program{}, &tvm.Program{}
	c.put(1, p1)
	c.put(2, p2)
	// Touch 1 so 2 becomes the eviction victim.
	if got, ok := c.get(1); !ok || got != p1 {
		t.Fatalf("get(1) = %v, %v", got, ok)
	}
	c.put(3, p3)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if got, ok := c.get(1); !ok || got != p1 {
		t.Fatal("1 should have survived (recently used)")
	}
	if got, ok := c.get(3); !ok || got != p3 {
		t.Fatal("3 should be cached")
	}
}

func TestProgramLRUOverwriteKeepsSingleEntry(t *testing.T) {
	c := newProgramLRU(2)
	p1, p2 := &tvm.Program{}, &tvm.Program{}
	c.put(1, p1)
	c.put(1, p2)
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if got, _ := c.get(1); got != p2 {
		t.Fatal("overwrite did not replace the entry")
	}
}

func TestProgramLRUDefaultCapacity(t *testing.T) {
	c := newProgramLRU(0)
	for i := 0; i < defaultProgramCacheSize+10; i++ {
		c.put(core.ProgramID(i), &tvm.Program{})
	}
	if c.len() != defaultProgramCacheSize {
		t.Fatalf("len = %d, want %d", c.len(), defaultProgramCacheSize)
	}
}

// TestProviderCacheEvictionRoundTrip drives a provider with a single-entry
// program cache: loading a second program evicts the first, a bytecode-less
// assignment of the evicted program is rejected, and re-sending the bytecode
// re-decodes and executes correctly.
func TestProviderCacheEvictionRoundTrip(t *testing.T) {
	fb := newFakeBroker(t)
	startProvider(t, fb, Options{Slots: 1, CacheSize: 1})

	assignNoop := func(attempt core.AttemptID, includeProgram bool) *wire.Assign {
		data, err := stdtasks.Bytecode("noop")
		if err != nil {
			t.Fatal(err)
		}
		a := &wire.Assign{
			Attempt: attempt, Tasklet: core.TaskletID(attempt),
			Program: core.HashProgram(data), Fuel: 1_000_000, Seed: 1,
		}
		if includeProgram {
			a.ProgramData = data
		}
		return a
	}

	// Load spin, then noop (evicting spin from the 1-entry cache).
	if err := fb.conn.Send(assignSpin(1, 10, true)); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)
	if err := fb.conn.Send(assignNoop(2, true)); err != nil {
		t.Fatal(err)
	}
	recvType[*wire.AttemptResult](fb)

	// Spin without bytecode must now be rejected: it was evicted.
	if err := fb.conn.Send(assignSpin(3, 10, false)); err != nil {
		t.Fatal(err)
	}
	if res := recvType[*wire.AttemptResult](fb); res.Status != core.StatusRejected {
		t.Fatalf("evicted program status = %s, want rejected", res.Status)
	}

	// Re-sending the bytecode re-decodes and runs.
	if err := fb.conn.Send(assignSpin(4, 10, true)); err != nil {
		t.Fatal(err)
	}
	if res := recvType[*wire.AttemptResult](fb); res.Status != core.StatusOK {
		t.Fatalf("re-decoded program result = %+v", res)
	}

	// Spin's re-insert evicted noop in turn: with capacity 1 only the most
	// recent program survives, so a bytecode-less noop is now rejected.
	if err := fb.conn.Send(assignNoop(5, false)); err != nil {
		t.Fatal(err)
	}
	if res := recvType[*wire.AttemptResult](fb); res.Status != core.StatusRejected {
		t.Fatalf("evicted noop status = %s, want rejected", res.Status)
	}
}
