package provider

import (
	"container/list"

	"repro/internal/core"
	"repro/internal/tvm"
)

// programLRU is a bounded program cache with least-recently-used eviction.
// Unbounded caching is unacceptable on small providers: a long-lived worker
// sees an open-ended stream of distinct programs and each decoded program
// retains its bytecode, constant pool and optimized streams. The zero value
// is not usable; call newProgramLRU. Not safe for concurrent use — the
// provider guards it with Provider.mu.
type programLRU struct {
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[core.ProgramID]*list.Element
}

type lruEntry struct {
	id   core.ProgramID
	prog *tvm.Program
}

func newProgramLRU(capacity int) *programLRU {
	if capacity <= 0 {
		capacity = defaultProgramCacheSize
	}
	return &programLRU{
		cap:     capacity,
		order:   list.New(),
		entries: map[core.ProgramID]*list.Element{},
	}
}

// get returns the cached program and marks it most recently used.
func (c *programLRU) get(id core.ProgramID) (*tvm.Program, bool) {
	el, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).prog, true
}

// put inserts a program, evicting the least recently used entry when full.
func (c *programLRU) put(id core.ProgramID, prog *tvm.Program) {
	if el, ok := c.entries[id]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).prog = prog
		return
	}
	for len(c.entries) >= c.cap {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruEntry).id)
	}
	c.entries[id] = c.order.PushFront(&lruEntry{id: id, prog: prog})
}

func (c *programLRU) len() int { return len(c.entries) }
