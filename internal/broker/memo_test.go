package broker

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/wire"
)

// memoStack is testStack but returns the broker too, for metrics assertions.
func memoStack(t *testing.T, opts Options, n, slots int) (*Broker, string) {
	t.Helper()
	b := New(opts)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	for i := 0; i < n; i++ {
		p, err := provider.Connect(provider.Options{
			BrokerAddr: addr, Slots: slots, Speed: 100, Name: fmt.Sprintf("m%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
	}
	return b, addr
}

func TestBrokerMemoHitSkipsProvider(t *testing.T) {
	b, addr := memoStack(t, Options{}, 1, 2)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	submit := func() consumer.TaskResult {
		job, err := c.Submit(compileJob(t, squareSrc, []int64{12}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Collect(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	first := submit()
	if !first.OK() || first.Return.I != 144 || first.Attempts != 1 {
		t.Fatalf("first = %+v", first)
	}
	second := submit()
	if !second.OK() || second.Return.I != 144 {
		t.Fatalf("second = %+v", second)
	}
	// A memo hit is delivered without scheduling: zero attempts, no provider.
	if second.Attempts != 0 || second.Provider != 0 {
		t.Fatalf("cache hit ran attempts: %+v", second)
	}
	m := b.Metrics()
	if got := m.Counter("memo.hits").Value(); got != 1 {
		t.Fatalf("memo.hits = %d, want 1", got)
	}
	if got := m.Counter("attempts.launched").Value(); got != 1 {
		t.Fatalf("attempts.launched = %d, want 1", got)
	}
}

func TestBrokerCoalescesConcurrentIdenticalSubmissions(t *testing.T) {
	// Acceptance: N identical concurrent submissions against a single
	// 1-slot provider execute at most the QoC-required attempt count (1 for
	// best effort) while every consumer is served.
	const n = 6
	b, addr := memoStack(t, Options{}, 1, 1)

	// ~5M VM ops keeps the first submission in flight while the rest arrive;
	// a submission arriving after completion becomes a cache hit instead of
	// a waiter, so the attempt bound holds regardless of timing.
	spec := compileJob(t, `func main(iters int) int {
		var acc int = 0;
		for (var i int = 0; i < iters; i = i + 1) { acc = acc + i % 7; }
		return acc;
	}`, []int64{1_000_000})

	consumers := make([]*consumer.Client, n)
	jobs := make([]*consumer.Job, n)
	for i := range consumers {
		c, err := consumer.Connect(addr, fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		consumers[i] = c
		job, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	var want int64
	for i, job := range jobs {
		res, err := job.Collect(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || !res[0].OK() {
			t.Fatalf("consumer %d: %+v", i, res)
		}
		if i == 0 {
			want = res[0].Return.I
			if res[0].Attempts != 1 {
				t.Fatalf("leader reported %d attempts, want 1", res[0].Attempts)
			}
		} else if res[0].Return.I != want {
			t.Fatalf("consumer %d got %d, leader got %d", i, res[0].Return.I, want)
		} else if res[0].Attempts != 0 {
			// Waiters and cache hits alike consumed no attempts of their own.
			t.Fatalf("coalesced consumer %d reported %d attempts, want 0", i, res[0].Attempts)
		}
	}
	m := b.Metrics()
	if got := m.Counter("attempts.launched").Value(); got != 1 {
		t.Fatalf("attempts.launched = %d, want 1 (coalesced)", got)
	}
	if hits, co := m.Counter("memo.hits").Value(), m.Counter("memo.coalesced").Value(); hits+co != n-1 {
		t.Fatalf("hits(%d) + coalesced(%d) = %d, want %d", hits, co, hits+co, n-1)
	}
}

func TestBrokerCoalescingRespectsVotingReplicas(t *testing.T) {
	// Coalesced voting submissions still execute the full voting fan-out —
	// never fewer attempts than the QoC demands, never one fan-out per
	// submission.
	const n = 4
	b, addr := memoStack(t, Options{}, 3, 1)
	spec := compileJob(t, `func main(iters int) int {
		var acc int = 0;
		for (var i int = 0; i < iters; i = i + 1) { acc = acc + i % 7; }
		return acc;
	}`, []int64{1_000_000})
	spec.QoC = core.QoC{Mode: core.QoCVoting, Replicas: 3}

	jobs := make([]*consumer.Job, n)
	for i := range jobs {
		c, err := consumer.Connect(addr, fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		job, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	for i, job := range jobs {
		res, err := job.Collect(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || !res[0].OK() {
			t.Fatalf("consumer %d: %+v", i, res)
		}
	}
	if got := b.Metrics().Counter("attempts.launched").Value(); got != 3 {
		t.Fatalf("attempts.launched = %d, want 3 (one voting fan-out)", got)
	}
}

// TestDeadlinedLeaderReschedulesCoalescedWaiter pins the deadline path's
// reschedule: FlightKey omits the deadline, so a waiter with no deadline can
// coalesce behind a leader whose deadline fires. Dissolving that flight
// re-queues the waiter, and the deadline handler itself must run the
// scheduler — the provider here never answers assignments, so no other
// broker event would ever place the waiter.
func TestDeadlinedLeaderReschedulesCoalescedWaiter(t *testing.T) {
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	// Silent two-slot provider on raw wire: accepts assignments, never
	// reports results.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	pc := wire.NewConn(nc)
	if err := pc.Send(&wire.Hello{
		Version: wire.ProtocolVersion, Role: wire.RoleProvider, Name: "silent",
		Caps: wire.CapFlagsTail,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := pc.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Welcome); !ok {
		t.Fatalf("handshake reply = %T", msg)
	}
	if err := pc.Send(&wire.Register{Slots: 2, Speed: 100}); err != nil {
		t.Fatal(err)
	}
	assigns := make(chan *wire.Assign, 4)
	go func() {
		for {
			msg, err := pc.Recv()
			if err != nil {
				return
			}
			if a, ok := msg.(*wire.Assign); ok {
				assigns <- a
			}
		}
	}()

	spec := compileJob(t, squareSrc, []int64{31})

	leaderSpec := spec
	leaderSpec.QoC = core.QoC{Deadline: 150 * time.Millisecond}
	c1, err := consumer.Connect(addr, "leader")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	leaderJob, err := c1.Submit(leaderSpec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-assigns:
	case <-time.After(5 * time.Second):
		t.Fatal("leader was never assigned")
	}

	// Identical content, no deadline: coalesces behind the in-flight leader.
	c2, err := consumer.Connect(addr, "waiter")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Submit(spec); err != nil {
		t.Fatal(err)
	}

	res, err := leaderJob.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].OK() || res[0].Fault == "" {
		t.Fatalf("leader deadline result = %+v", res[0])
	}
	// The dissolved flight's waiter must reach the provider's free slot
	// without any further broker traffic.
	select {
	case <-assigns:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stalled: never rescheduled after the leader's deadline")
	}
}

func TestBrokerMemoHonorsNoCache(t *testing.T) {
	b, addr := memoStack(t, Options{}, 1, 2)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := compileJob(t, squareSrc, []int64{7})
	spec.QoC = core.QoC{NoCache: true}
	for i := 0; i < 2; i++ {
		job, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Collect(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		if !res[0].OK() || res[0].Return.I != 49 || res[0].Attempts != 1 {
			t.Fatalf("run %d: %+v", i, res[0])
		}
	}
	m := b.Metrics()
	if got := m.Counter("attempts.launched").Value(); got != 2 {
		t.Fatalf("attempts.launched = %d, want 2 under NoCache", got)
	}
	if got := m.Counter("memo.hits").Value(); got != 0 {
		t.Fatalf("memo.hits = %d under NoCache", got)
	}
}

func TestBrokerMemoDisabledByOptions(t *testing.T) {
	b, addr := memoStack(t, Options{MemoEntries: -1, MemoBytes: -1, MemoTTL: -1}, 1, 2)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 2; i++ {
		job, err := c.Submit(compileJob(t, squareSrc, []int64{6}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Collect(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		if !res[0].OK() || res[0].Attempts != 1 {
			t.Fatalf("run %d: %+v", i, res[0])
		}
	}
	if got := b.Metrics().Counter("attempts.launched").Value(); got != 2 {
		t.Fatalf("attempts.launched = %d, want 2 with memo disabled", got)
	}
}

// TestBrokerMemoDifferential runs a program suite — values, faults, emitted
// streams, voting QoC, repeated content — against a memo-on and a memo-off
// stack and asserts every result is bit-identical. (The faulty-provider
// differential lives in internal/sim, which can inject corrupted results.)
func TestBrokerMemoDifferential(t *testing.T) {
	type tcase struct {
		name string
		spec core.JobSpec
	}
	suite := func(t *testing.T) []tcase {
		montecarlo := `
func main(samples int) float {
	var hits int = 0;
	for (var i int = 0; i < samples; i = i + 1) {
		var x float = rand();
		var y float = rand();
		if (x*x + y*y <= 1.0) { hits = hits + 1; }
	}
	return 4.0 * float(hits) / float(samples);
}`
		emitSrc := `func main(n int) void { for (var i int = 0; i < n; i = i + 1) { emit(i * 10); } }`
		voting := compileJob(t, squareSrc, []int64{5}, []int64{5}, []int64{5})
		voting.QoC = core.QoC{Mode: core.QoCVoting, Replicas: 3}
		return []tcase{
			{"square-repeats", compileJob(t, squareSrc, []int64{3}, []int64{4}, []int64{3}, []int64{4}, []int64{3})},
			{"faults-repeat", compileJob(t, `func main(n int) int { return 1 / n; }`, []int64{0}, []int64{2}, []int64{0})},
			{"seeded-rand", compileJob(t, montecarlo, []int64{2000}, []int64{2000})},
			{"emitted", compileJob(t, emitSrc, []int64{4}, []int64{4})},
			{"voting", voting},
		}
	}

	collect := func(t *testing.T, addr string, cases []tcase) [][]consumer.TaskResult {
		c, err := consumer.Connect(addr, "diff")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		out := make([][]consumer.TaskResult, len(cases))
		for i, tc := range cases {
			job, err := c.Submit(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Collect(ctxT(t))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}

	_, onAddr := memoStack(t, Options{}, 3, 1)
	_, offAddr := memoStack(t, Options{MemoEntries: -1, MemoBytes: -1, MemoTTL: -1}, 3, 1)
	cases := suite(t)
	on := collect(t, onAddr, cases)
	off := collect(t, offAddr, cases)

	for ci, tc := range cases {
		for ri := range on[ci] {
			a, b := on[ci][ri], off[ci][ri]
			if a.Status != b.Status || a.Fault != b.Fault {
				t.Fatalf("%s[%d]: status/fault diverged: %+v vs %+v", tc.name, ri, a, b)
			}
			if !a.Return.Equal(b.Return) {
				t.Fatalf("%s[%d]: return diverged: %s vs %s", tc.name, ri, a.Return, b.Return)
			}
			if len(a.Emitted) != len(b.Emitted) {
				t.Fatalf("%s[%d]: emitted length diverged: %d vs %d", tc.name, ri, len(a.Emitted), len(b.Emitted))
			}
			for ei := range a.Emitted {
				if !a.Emitted[ei].Equal(b.Emitted[ei]) {
					t.Fatalf("%s[%d]: emitted[%d] diverged", tc.name, ri, ei)
				}
			}
		}
	}
}
