package broker

import (
	"net"
	"testing"
	"time"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/wire"
)

// silentProvider registers a raw-wire provider that accepts assignments but
// never reports results; the returned channel yields each Assign, and the
// returned func kills the connection (the broker then declares every attempt
// it holds lost).
func silentProvider(t *testing.T, addr string, slots int) (<-chan *wire.Assign, func()) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	pc := wire.NewConn(nc)
	if err := pc.Send(&wire.Hello{
		Version: wire.ProtocolVersion, Role: wire.RoleProvider, Name: "silent",
		Caps: wire.CapFlagsTail,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := pc.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Welcome); !ok {
		t.Fatalf("handshake reply = %T", msg)
	}
	if err := pc.Send(&wire.Register{Slots: slots, Speed: 100}); err != nil {
		t.Fatal(err)
	}
	assigns := make(chan *wire.Assign, 16)
	go func() {
		for {
			msg, err := pc.Recv()
			if err != nil {
				return
			}
			if a, ok := msg.(*wire.Assign); ok {
				assigns <- a
			}
		}
	}()
	return assigns, func() { nc.Close() }
}

// TestBrokerMaxAttemptsCapFailsLost pins Options.MaxAttempts on the live
// broker: with a cap of one, a tasklet whose only attempt dies with its
// provider must come back StatusLost instead of waiting for capacity to
// re-issue, and the cached attempts.lost counter must record the loss.
func TestBrokerMaxAttemptsCapFailsLost(t *testing.T) {
	b := New(Options{MaxAttempts: 1})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	assigns, kill := silentProvider(t, addr, 1)

	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job, err := c.Submit(compileJob(t, squareSrc, []int64{7}))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-assigns:
	case <-time.After(5 * time.Second):
		t.Fatal("tasklet was never assigned")
	}
	kill()

	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].OK() || res[0].Status != core.StatusLost {
		t.Fatalf("capped result = %+v, want StatusLost", res[0])
	}
	if res[0].Attempts != 1 {
		t.Fatalf("capped result reports %d attempts, want 1", res[0].Attempts)
	}
	if got := b.Metrics().Counter("attempts.lost").Value(); got != 1 {
		t.Fatalf("attempts.lost = %d, want 1", got)
	}
}

// TestBrokerUncappedReissuesAfterProviderLoss is the contrast run: without
// a cap the same loss re-queues the tasklet, and a healthy provider joining
// later completes it.
func TestBrokerUncappedReissuesAfterProviderLoss(t *testing.T) {
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	assigns, kill := silentProvider(t, addr, 1)

	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job, err := c.Submit(compileJob(t, squareSrc, []int64{7}))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-assigns:
	case <-time.After(5 * time.Second):
		t.Fatal("tasklet was never assigned")
	}
	kill()

	p, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 1, Speed: 100, Name: "healthy"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK() || res[0].Return.I != 49 {
		t.Fatalf("re-issued result = %+v, want 49", res[0])
	}
	if res[0].Attempts != 2 {
		t.Fatalf("re-issued result reports %d attempts, want 2", res[0].Attempts)
	}
}
