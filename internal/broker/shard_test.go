package broker

import (
	"net"
	"testing"
	"time"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/shard"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// slowSrc burns enough interpreter time that queues outlive gossip ticks.
const slowSrc = `func main(n int) int {
	var s int = 0;
	for (var i int = 0; i < 20000; i = i + 1) { s = s + i; }
	return n * n;
}`

func shardGroup(t *testing.T, n int, opts Options) (*ShardGroup, []string) {
	t.Helper()
	g := NewShardGroup(n, opts)
	addrs, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, addrs
}

func addProvider(t *testing.T, addr string, po provider.Options) *provider.Provider {
	t.Helper()
	po.BrokerAddr = addr
	p, err := provider.Connect(po)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func intRows(n int) [][]int64 {
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	return rows
}

func checkSquares(t *testing.T, res []consumer.TaskResult, n int) {
	t.Helper()
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for i, r := range res {
		if !r.OK() || r.Return.I != int64(i*i) {
			t.Fatalf("result[%d] = %+v, want %d", i, r, i*i)
		}
	}
}

// TestShardGroupExchangeSmoke is the multi-shard smoke test: two peered
// shards, all jobs submitted to shard 1 whose only provider is heavily
// throttled, a fast fleet on shard 2. The exchange must move work over and
// every tasklet must complete with the right answer.
func TestShardGroupExchangeSmoke(t *testing.T) {
	g, addrs := shardGroup(t, 2, Options{
		Exchange:       true,
		GossipInterval: 5 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 1},
	})
	addProvider(t, addrs[0], provider.Options{Slots: 1, Speed: 100, Throttle: 0.05, Name: "slow"})
	addProvider(t, addrs[1], provider.Options{Slots: 4, Speed: 100, Name: "fast"})

	c, err := consumer.Connect(addrs[0], "skewed")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 48
	job, err := c.Submit(compileJob(t, slowSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	checkSquares(t, res, n)

	migrated := g.Broker(0).Metrics().Counter("broker.exchange.migrated").Value()
	adopted := g.Broker(1).Metrics().Counter("broker.exchange.adopted").Value()
	requests := g.Broker(1).Metrics().Counter("broker.exchange.requests").Value()
	t.Logf("migrated=%d adopted=%d requests=%d", migrated, adopted, requests)
	if migrated == 0 || adopted == 0 {
		t.Fatalf("exchange moved nothing: migrated=%d adopted=%d", migrated, adopted)
	}
	if requests == 0 {
		t.Fatal("underloaded shard never sent a pull")
	}
}

// TestShardGroupSingleShard checks that a 1-shard group behaves like a
// plain broker: same end-to-end results, zero exchange traffic. (The
// rigorous event-level differential for the sharded world lives in
// internal/sim's TestShardedSingleMatchesUnsharded.)
func TestShardGroupSingleShard(t *testing.T) {
	g, addrs := shardGroup(t, 1, Options{Exchange: true, GossipInterval: 5 * time.Millisecond})
	addProvider(t, addrs[0], provider.Options{Slots: 2, Speed: 100, Name: "p"})

	c, err := consumer.Connect(addrs[0], "solo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 16
	job, err := c.Submit(compileJob(t, squareSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	checkSquares(t, res, n)
	if v := g.Broker(0).Metrics().Counter("broker.exchange.migrated").Value(); v != 0 {
		t.Fatalf("single-shard group migrated %d tasklets", v)
	}
}

// TestShardPeerLossResubmit kills the adopting shard mid-exchange: every
// migrated-but-unfinished tasklet must be re-submitted at its origin and
// the job must still deliver each result exactly once.
func TestShardPeerLossResubmit(t *testing.T) {
	g, addrs := shardGroup(t, 2, Options{
		Exchange:       true,
		GossipInterval: 5 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 1},
	})
	addProvider(t, addrs[0], provider.Options{Slots: 1, Speed: 100, Throttle: 0.2, Name: "origin"})
	// The adopter is slower still, so adopted work lingers when it dies.
	addProvider(t, addrs[1], provider.Options{Slots: 2, Speed: 100, Throttle: 0.05, Name: "doomed"})

	c, err := consumer.Connect(addrs[0], "resubmit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 32
	job, err := c.Submit(compileJob(t, slowSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}

	migratedC := g.Broker(0).Metrics().Counter("broker.exchange.migrated")
	deadline := time.Now().Add(10 * time.Second)
	for migratedC.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no migration happened within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := g.Broker(1).Close(); err != nil {
		t.Fatal(err)
	}

	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	checkSquares(t, res, n)
	t.Logf("migrated=%d before peer loss", migratedC.Value())
}

// fakePeer builds an in-memory peer link (a net.Pipe end, no wire loop).
// The buffered out channel absorbs every frame a test provokes.
func fakePeer(t *testing.T, id uint64) *peerState {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return &peerState{id: id, out: make(chan wire.Message, 32),
		nc: c1, label: "fake peer"}
}

// TestMigrateRequestSkipsAdopted: work adopted from one peer must never be
// offered onward to another. An adopted tasklet's job accounting lives at
// its origin shard (local Job is 0), so a failed second hop could not be
// re-submitted here and the tasklet would be lost.
func TestMigrateRequestSkipsAdopted(t *testing.T) {
	b := New(Options{ShardID: 1, Exchange: true, GossipInterval: time.Hour})
	defer b.Close()

	src := fakePeer(t, 2)
	b.exMu.Lock()
	b.links[src] = true
	b.peers[2] = src
	b.exMu.Unlock()

	prog := []byte("adopted-program")
	b.onMigrateTasklet(src, &wire.MigrateTasklet{
		Origin:      77,
		Program:     core.HashProgram(prog),
		ProgramData: prog,
		Params:      []tvm.Value{tvm.Int(3)},
		Fuel:        1 << 20,
	})
	b.exMu.Lock()
	nAdopted := len(b.adopted)
	b.exMu.Unlock()
	nPending := int(b.pendingN.Load())
	if nAdopted != 1 || nPending != 1 {
		t.Fatalf("adoption setup: adopted=%d pending=%d, want 1 and 1", nAdopted, nPending)
	}

	third := fakePeer(t, 3)
	b.exMu.Lock()
	b.links[third] = true
	b.peers[3] = third
	b.exMu.Unlock()
	b.onMigrateRequest(third, &wire.MigrateRequest{Shard: 3, Max: 8})

	b.exMu.Lock()
	defer b.exMu.Unlock()
	if len(b.migrated) != 0 {
		t.Fatalf("adopted tasklet was re-migrated: %d migrated records", len(b.migrated))
	}
	if len(b.adopted) != 1 || b.pendingN.Load() != 1 {
		t.Fatalf("adoption disturbed: adopted=%d pending=%d", len(b.adopted), b.pendingN.Load())
	}
	select {
	case m := <-third.out:
		t.Fatalf("shard 3 was offered %s for adopted work", m.Type())
	default:
	}
}

// TestDuplicateLinkDeathRehomesMigrated: with mutual dial two links to the
// same shard exist and MigrateTasklet frames can travel on either. When
// the link that carried a migration dies, its record must be re-homed even
// though the sibling link survives — frames queued on the dead link are
// gone with it.
func TestDuplicateLinkDeathRehomesMigrated(t *testing.T) {
	b := New(Options{ShardID: 1, Exchange: true, GossipInterval: time.Hour})
	defer b.Close()

	bound, dup := fakePeer(t, 2), fakePeer(t, 2)
	prog := []byte("migrated-program")
	pid := core.HashProgram(prog)

	b.exMu.Lock()
	b.links[bound] = true
	b.peers[2] = bound
	b.links[dup] = true
	tk := core.Tasklet{ID: 5, Job: 9, Program: pid,
		Params: []tvm.Value{tvm.Int(1)}, Fuel: 1 << 20, Submitted: time.Now()}
	b.migrated[tk.ID] = migratedRec{t: tk, peer: 2, link: dup}
	b.exMu.Unlock()
	b.progMu.Lock()
	b.programs[pid] = prog
	b.progMu.Unlock()
	job := &jobState{id: 9, consumer: 1, total: 1, tasklets: []core.TaskletID{5}}
	b.jobMu.Lock()
	b.jobs[9] = job
	b.jobMu.Unlock()

	b.removePeer(dup)

	b.exMu.Lock()
	if len(b.migrated) != 0 {
		t.Fatalf("migration on dead duplicate link not re-homed: %d records left", len(b.migrated))
	}
	if b.peers[2] != bound {
		t.Fatalf("bound link displaced by duplicate's death")
	}
	b.exMu.Unlock()
	if n := b.pendingN.Load(); n != 1 {
		t.Fatalf("re-homed tasklet not re-queued: pending=%d", n)
	}
	b.jobMu.Lock()
	if len(job.tasklets) != 2 {
		t.Fatalf("re-submit did not extend the job slot list: %v", job.tasklets)
	}
	b.jobMu.Unlock()

	// The bound link dying too must promote nothing (no siblings left) and
	// leave the re-homed record alone — it now belongs to no peer.
	b.removePeer(bound)
	b.exMu.Lock()
	if b.peers[2] != nil {
		t.Fatalf("dead shard still has a bound link")
	}
	b.exMu.Unlock()
	if n := b.pendingN.Load(); n != 1 {
		t.Fatalf("second link death disturbed the re-homed tasklet: pending=%d", n)
	}
}

// TestShardGroupRouting pins the ring-to-address mapping: stable per
// program, and every address is a member of the group.
func TestShardGroupRouting(t *testing.T) {
	g, addrs := shardGroup(t, 3, Options{GossipInterval: time.Hour})
	progs := [][]byte{[]byte("prog-a"), []byte("prog-b"), []byte("prog-c"), []byte("prog-d")}
	for _, p := range progs {
		a := g.AddrFor(p)
		if a != g.AddrFor(p) {
			t.Fatal("routing is not stable")
		}
		found := false
		for _, known := range addrs {
			if a == known {
				found = true
			}
		}
		if !found {
			t.Fatalf("AddrFor returned unknown address %q", a)
		}
	}
}
