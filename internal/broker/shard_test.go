package broker

import (
	"testing"
	"time"

	"repro/internal/consumer"
	"repro/internal/provider"
	"repro/internal/shard"
)

// slowSrc burns enough interpreter time that queues outlive gossip ticks.
const slowSrc = `func main(n int) int {
	var s int = 0;
	for (var i int = 0; i < 20000; i = i + 1) { s = s + i; }
	return n * n;
}`

func shardGroup(t *testing.T, n int, opts Options) (*ShardGroup, []string) {
	t.Helper()
	g := NewShardGroup(n, opts)
	addrs, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, addrs
}

func addProvider(t *testing.T, addr string, po provider.Options) *provider.Provider {
	t.Helper()
	po.BrokerAddr = addr
	p, err := provider.Connect(po)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func intRows(n int) [][]int64 {
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	return rows
}

func checkSquares(t *testing.T, res []consumer.TaskResult, n int) {
	t.Helper()
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for i, r := range res {
		if !r.OK() || r.Return.I != int64(i*i) {
			t.Fatalf("result[%d] = %+v, want %d", i, r, i*i)
		}
	}
}

// TestShardGroupExchangeSmoke is the multi-shard smoke test: two peered
// shards, all jobs submitted to shard 1 whose only provider is heavily
// throttled, a fast fleet on shard 2. The exchange must move work over and
// every tasklet must complete with the right answer.
func TestShardGroupExchangeSmoke(t *testing.T) {
	g, addrs := shardGroup(t, 2, Options{
		Exchange:       true,
		GossipInterval: 5 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 1},
	})
	addProvider(t, addrs[0], provider.Options{Slots: 1, Speed: 100, Throttle: 0.05, Name: "slow"})
	addProvider(t, addrs[1], provider.Options{Slots: 4, Speed: 100, Name: "fast"})

	c, err := consumer.Connect(addrs[0], "skewed")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 48
	job, err := c.Submit(compileJob(t, slowSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	checkSquares(t, res, n)

	migrated := g.Broker(0).Metrics().Counter("broker.exchange.migrated").Value()
	adopted := g.Broker(1).Metrics().Counter("broker.exchange.adopted").Value()
	requests := g.Broker(1).Metrics().Counter("broker.exchange.requests").Value()
	t.Logf("migrated=%d adopted=%d requests=%d", migrated, adopted, requests)
	if migrated == 0 || adopted == 0 {
		t.Fatalf("exchange moved nothing: migrated=%d adopted=%d", migrated, adopted)
	}
	if requests == 0 {
		t.Fatal("underloaded shard never sent a pull")
	}
}

// TestShardGroupSingleShard checks that a 1-shard group behaves like a
// plain broker: same end-to-end results, zero exchange traffic. (The
// rigorous event-level differential for the sharded world lives in
// internal/sim's TestShardedSingleMatchesUnsharded.)
func TestShardGroupSingleShard(t *testing.T) {
	g, addrs := shardGroup(t, 1, Options{Exchange: true, GossipInterval: 5 * time.Millisecond})
	addProvider(t, addrs[0], provider.Options{Slots: 2, Speed: 100, Name: "p"})

	c, err := consumer.Connect(addrs[0], "solo")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 16
	job, err := c.Submit(compileJob(t, squareSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	checkSquares(t, res, n)
	if v := g.Broker(0).Metrics().Counter("broker.exchange.migrated").Value(); v != 0 {
		t.Fatalf("single-shard group migrated %d tasklets", v)
	}
}

// TestShardPeerLossResubmit kills the adopting shard mid-exchange: every
// migrated-but-unfinished tasklet must be re-submitted at its origin and
// the job must still deliver each result exactly once.
func TestShardPeerLossResubmit(t *testing.T) {
	g, addrs := shardGroup(t, 2, Options{
		Exchange:       true,
		GossipInterval: 5 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 1},
	})
	addProvider(t, addrs[0], provider.Options{Slots: 1, Speed: 100, Throttle: 0.2, Name: "origin"})
	// The adopter is slower still, so adopted work lingers when it dies.
	addProvider(t, addrs[1], provider.Options{Slots: 2, Speed: 100, Throttle: 0.05, Name: "doomed"})

	c, err := consumer.Connect(addrs[0], "resubmit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 32
	job, err := c.Submit(compileJob(t, slowSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}

	migratedC := g.Broker(0).Metrics().Counter("broker.exchange.migrated")
	deadline := time.Now().Add(10 * time.Second)
	for migratedC.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no migration happened within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := g.Broker(1).Close(); err != nil {
		t.Fatal(err)
	}

	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	checkSquares(t, res, n)
	t.Logf("migrated=%d before peer loss", migratedC.Value())
}

// TestShardGroupRouting pins the ring-to-address mapping: stable per
// program, and every address is a member of the group.
func TestShardGroupRouting(t *testing.T) {
	g, addrs := shardGroup(t, 3, Options{GossipInterval: time.Hour})
	progs := [][]byte{[]byte("prog-a"), []byte("prog-b"), []byte("prog-c"), []byte("prog-d")}
	for _, p := range progs {
		a := g.AddrFor(p)
		if a != g.AddrFor(p) {
			t.Fatal("routing is not stable")
		}
		found := false
		for _, known := range addrs {
			if a == known {
				found = true
			}
		}
		if !found {
			t.Fatalf("AddrFor returned unknown address %q", a)
		}
	}
}
