// Package broker implements the Tasklet broker: the mediator between
// resource consumers and providers. It keeps the provider registry with
// heartbeat-based failure detection, routes bytecode and results, and drives
// the pluggable placement policy. The tasklet lifecycle itself — QoC attempt
// fan-out, memoization, coalescing, re-issue of lost attempts, finalization —
// lives in internal/lifecycle; the broker is the wire/wall-clock driver of
// that shared engine (the simulator drives the same engine in virtual time).
//
// Concurrency model: one reader goroutine per connection, one writer
// goroutine per connection (fed by a bounded queue so a slow peer cannot
// stall the broker), one scheduler goroutine, and a single mutex guarding
// all scheduling state. State-mutating work is short and never blocks on
// the network. Events (results, joins, deadlines) do not run placement
// themselves: they set a dirty flag and wake the scheduler, so a burst of
// events costs one placement pass instead of one per event, and result
// routing never serializes behind a scheduling walk. Heartbeats bypass the
// mutex entirely (atomic timestamp per provider). Writer goroutines drain
// their queue in batches so one socket flush covers a burst of Assigns or
// ResultPushes (see wire.Conn for the flush policy).
package broker

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Options configures a Broker. The zero value is usable: work-stealing
// policy, 5-second heartbeat timeout, silent logger.
type Options struct {
	// Policy is the placement policy; nil selects work_steal.
	Policy scheduler.Policy
	// HeartbeatTimeout is how long a provider may stay silent before it is
	// declared dead. Zero selects 5s.
	HeartbeatTimeout time.Duration
	// Logger receives operational logs; nil discards them.
	Logger *log.Logger
	// Metrics receives broker counters and histograms; nil allocates a
	// private registry (retrievable via Broker.Metrics).
	Metrics *metrics.Registry
	// MaxPendingPerConsumer bounds queued tasklets per consumer; zero
	// selects 1<<20.
	MaxPendingPerConsumer int
	// DisableProgramCache ships the full bytecode with every assignment
	// instead of once per provider. Exists for the program-cache ablation
	// benchmark; never enable it in a real deployment.
	DisableProgramCache bool

	// MemoEntries, MemoBytes, and MemoTTL configure the broker-tier result
	// memo (content-addressed cache of QoC-finalized results, plus
	// coalescing of identical in-flight tasklets). Zero selects the memo
	// package defaults (memo.DefaultMaxEntries etc.); any negative value
	// disables memoization and coalescing entirely.
	MemoEntries int
	MemoBytes   int
	MemoTTL     time.Duration

	// MaxAttempts caps the total attempts one tasklet may consume across
	// lost-attempt re-issues; zero (or negative) means unlimited — bounded
	// only by the QoC retry budget. A tasklet whose attempt cap is exhausted
	// with nothing left in flight finalizes as StatusLost.
	MaxAttempts int
	// RetryBackoff delays the n-th re-issue of a lost tasklet by
	// RetryBackoff << min(n-1, 6); zero re-issues immediately.
	RetryBackoff time.Duration

	// NoCoalesce disables write coalescing on this broker's connections:
	// writer loops send one message per flush instead of draining their
	// queue in batches, and the wire layer flushes after every frame.
	// Exists for the coalescing ablation and differential tests; frame
	// bytes are identical either way.
	NoCoalesce bool

	// NoBatch disables the batch control-plane frames on this broker:
	// placement sends one Assign per attempt instead of grouped
	// AssignBatches, and result pushes are never folded into
	// ResultPushBatches, regardless of what peers advertise. Incoming
	// batches are still decoded (liberal ingest). Exists for the batching
	// ablation (experiment E12) and differential tests; job results are
	// identical either way.
	NoBatch bool

	// NoIndex disables the incremental scheduler index and forces the
	// legacy full-scan placement path (rebuild candidates + Policy.Pick per
	// pending tasklet). Exists for the placement ablation (experiment E10)
	// and the differential tests; provider choices are identical either
	// way. Custom policies without an index fall back to the scan
	// automatically.
	NoIndex bool

	// ShardID names this broker within a shard group; zero means unsharded
	// and peer connections are refused. Consistent-hash routing happens on
	// the client (or in ShardGroup): brokers accept whatever they are handed
	// and rebalance queued work through the exchange. See internal/shard.
	ShardID uint64
	// GossipInterval is how often shard load gossip is emitted on every peer
	// link and exchange pulls are planned. Zero selects 100ms.
	GossipInterval time.Duration
	// Exchange enables pull-based migration toward this shard when it is
	// underloaded. Even with Exchange off the broker still answers peers'
	// MigrateRequests and emits gossip, so exchange can be enabled on any
	// subset of a group.
	Exchange bool
	// ExchangePolicy tunes the pull policy; zero fields take the shard
	// package defaults.
	ExchangePolicy shard.Policy
}

// sendQueueDepth bounds per-connection outgoing messages. A peer that
// cannot drain this many messages is broken or hostile and is dropped.
const sendQueueDepth = 4096

// writerBatchMax bounds how many queued messages a writer loop folds into
// one flush.
const writerBatchMax = 128

// Broker is the central coordinator. Create with New, start with Serve.
type Broker struct {
	opts Options
	reg  *metrics.Registry
	logf func(format string, args ...any)

	mu        sync.Mutex
	closed    bool
	ln        net.Listener
	providers map[core.ProviderID]*providerState
	consumers map[core.ConsumerID]*consumerState
	jobs      map[core.JobID]*jobState
	programs  map[core.ProgramID][]byte

	// life is the shared tasklet lifecycle engine: it owns tasklet and
	// attempt records, memo lookups, flight coalescing, QoC decisions and
	// finalization. The broker feeds it events under b.mu and executes the
	// returned effects against timers and connections.
	life *lifecycle.Engine
	// memoOn gates content-key computation on submission (pure CPU saving;
	// the engine would ignore the key anyway when memoization is off).
	memoOn bool
	// deadlines holds the armed per-tasklet deadline timers (the wall-clock
	// realization of the engine's SetDeadline effects).
	deadlines map[core.TaskletID]*time.Timer

	// pending is the placement queue: one entry per attempt awaiting a
	// provider, in FIFO order.
	pending []core.TaskletID

	// index is the incremental placement index mirroring provider
	// free/backlog state; nil when Options.NoIndex is set or the policy has
	// no indexed form, in which case the legacy scan runs. All Index
	// methods are nil-safe, so event handlers update it unconditionally.
	index *scheduler.Index

	// exclScratch and candScratch are placement-pass scratch buffers,
	// reused across picks so a pass over a deep queue performs no
	// allocations. Only touched under b.mu by the scheduler goroutine.
	exclScratch []core.ProviderID
	candScratch []scheduler.Candidate
	// stagedScratch lists the providers holding a staged AssignBatch this
	// pass; flushAssignBatchesLocked drains it.
	stagedScratch []*providerState
	// evScratch stages bulk lifecycle events (batched results, job
	// admission); reused across bursts under b.mu.
	evScratch []lifecycle.Event

	// schedDirty marks that scheduling state changed since the last
	// placement pass; schedWake pokes the scheduler goroutine. Events
	// between two passes collapse into one flag, so a burst costs one pass.
	schedDirty bool
	schedWake  chan struct{}

	// peers maps remote shard IDs to their bound peer links; links holds
	// every live peer connection, including inbound ones not yet named by a
	// first gossip. migrated records tasklets handed to a peer under
	// Cancel-before-launch — enough to re-Submit locally if the peer rejects
	// or dies, and to route the MigrateResult back into job accounting.
	// adopted records tasklets accepted from a peer, keyed by their fresh
	// local ID, so their finals return as MigrateResult instead of a
	// consumer push. See shard.go for the whole exchange.
	peers    map[uint64]*peerState
	links    map[*peerState]bool
	migrated map[core.TaskletID]migratedRec
	adopted  map[core.TaskletID]adoptedRec

	gossipSeq  uint64
	finalizedN int64 // finals processed (local + adopted); feeds the gossip rate
	lastFinal  int64
	exchRate   float64
	exchRateOK bool

	nextProvider core.ProviderID
	nextConsumer core.ConsumerID
	nextJob      core.JobID
	nextTasklet  core.TaskletID

	stop chan struct{}
	wg   sync.WaitGroup

	// Hot-path metric handles, resolved once at construction so the
	// per-result path never takes the registry lock.
	mSendDropped   *metrics.Counter
	mAttemptsOK    *metrics.Counter
	mAttemptsFlt   *metrics.Counter
	mAttemptsOth   *metrics.Counter
	mAttemptsLost  *metrics.Counter
	mLaunched      *metrics.Counter
	mCompleted     *metrics.Counter
	mFailed        *metrics.Counter
	mDeadlineExp   *metrics.Counter
	mProvidersLost *metrics.Counter
	mExecMS        *metrics.Histogram
	mLatencyMS     *metrics.Histogram
	mSchedPassNS   *metrics.Histogram
	mPendingDep    *metrics.Gauge
	mPlaced        *metrics.Counter
	mExchMigrated  *metrics.Counter
	mExchRequests  *metrics.Counter
	mExchAdopted   *metrics.Counter
	mShardQueue    *metrics.Gauge
}

type providerState struct {
	info     core.ProviderInfo
	out      chan wire.Message
	nc       net.Conn
	label    string // "provider N", precomputed for hot-path logs
	caps     uint8  // protocol extensions advertised in Hello
	free     int
	backlog  int
	sent     map[core.ProgramID]bool // programs already shipped
	assigned int
	finished int // attempts that returned any result
	gone     bool

	// staged accumulates this pass's assignments into one AssignBatch frame
	// (batch-capable providers only); flushed at the end of every placement
	// pass. Only touched under b.mu by the scheduler goroutine.
	staged *wire.AssignBatch

	// lastBeat is the UnixNano timestamp of the latest heartbeat, updated
	// without the broker mutex so heartbeats never queue behind scheduling.
	lastBeat atomic.Int64

	// dropWarned limits the send-queue-overflow log to once per connection.
	dropWarned atomic.Bool
}

type consumerState struct {
	id      core.ConsumerID
	out     chan wire.Message
	nc      net.Conn
	label   string // "consumer N", precomputed for hot-path logs
	caps    uint8  // protocol extensions advertised in Hello
	jobs    map[core.JobID]bool
	pending int // queued tasklets across this consumer's jobs
	gone    bool

	dropWarned atomic.Bool
}

type jobState struct {
	id        core.JobID
	consumer  core.ConsumerID
	tasklets  []core.TaskletID
	total     int
	completed int
	failed    int
	cancelled bool
}

// New creates a broker with the given options.
func New(opts Options) *Broker {
	if opts.Policy == nil {
		opts.Policy = scheduler.NewWorkSteal()
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	if opts.MaxPendingPerConsumer <= 0 {
		opts.MaxPendingPerConsumer = 1 << 20
	}
	if opts.GossipInterval <= 0 {
		opts.GossipInterval = 100 * time.Millisecond
	}
	opts.ExchangePolicy = opts.ExchangePolicy.Normalize()
	reg := opts.Metrics
	if reg == nil {
		reg = &metrics.Registry{}
	}
	logf := func(string, ...any) {}
	if opts.Logger != nil {
		logf = opts.Logger.Printf
	}
	b := &Broker{
		opts:      opts,
		reg:       reg,
		logf:      logf,
		providers: map[core.ProviderID]*providerState{},
		consumers: map[core.ConsumerID]*consumerState{},
		jobs:      map[core.JobID]*jobState{},
		programs:  map[core.ProgramID][]byte{},
		deadlines: map[core.TaskletID]*time.Timer{},
		peers:     map[uint64]*peerState{},
		links:     map[*peerState]bool{},
		migrated:  map[core.TaskletID]migratedRec{},
		adopted:   map[core.TaskletID]adoptedRec{},
		schedWake: make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	b.mSendDropped = reg.Counter("broker.send_dropped")
	b.mAttemptsOK = reg.Counter("attempts.ok")
	b.mAttemptsFlt = reg.Counter("attempts.fault")
	b.mAttemptsOth = reg.Counter("attempts.other")
	b.mAttemptsLost = reg.Counter("attempts.lost")
	b.mLaunched = reg.Counter("attempts.launched")
	b.mCompleted = reg.Counter("tasklets.completed")
	b.mFailed = reg.Counter("tasklets.failed")
	b.mDeadlineExp = reg.Counter("tasklets.deadline_expired")
	b.mProvidersLost = reg.Counter("providers.lost")
	b.mExecMS = reg.Histogram("attempt.exec_ms")
	b.mLatencyMS = reg.Histogram("tasklet.latency_ms")
	b.mSchedPassNS = reg.Histogram("broker.sched_pass_ns")
	b.mPendingDep = reg.Gauge("broker.pending_depth")
	b.mPlaced = reg.Counter("broker.placed_per_pass")
	b.mExchMigrated = reg.Counter("broker.exchange.migrated")
	b.mExchRequests = reg.Counter("broker.exchange.requests")
	b.mExchAdopted = reg.Counter("broker.exchange.adopted")
	b.mShardQueue = reg.Gauge("broker.shard.queue_depth")
	if !opts.NoIndex {
		// Custom policies outside the scheduler package have no indexed
		// form; the legacy scan handles them.
		if ix, err := scheduler.NewIndexFor(opts.Policy); err == nil {
			b.index = ix
		}
	}
	var lopts lifecycle.Options
	lopts.MaxAttempts = opts.MaxAttempts
	lopts.RetryBackoff = opts.RetryBackoff
	if opts.MemoEntries >= 0 && opts.MemoBytes >= 0 && opts.MemoTTL >= 0 {
		lopts.Memo = memo.New(memo.Config{
			MaxEntries: opts.MemoEntries,
			MaxBytes:   opts.MemoBytes,
			TTL:        opts.MemoTTL,
			Metrics:    reg,
			Prefix:     "memo.",
		})
		lopts.Flights = memo.NewFlightTable(reg, "memo.")
		b.memoOn = true
	}
	b.life = lifecycle.New(lopts)
	return b
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in background
// goroutines. It returns the bound address.
func (b *Broker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return "", errors.New("broker: already closed")
	}
	b.ln = ln
	b.mu.Unlock()

	b.wg.Add(3)
	go func() {
		defer b.wg.Done()
		b.acceptLoop(ln)
	}()
	go func() {
		defer b.wg.Done()
		b.reaperLoop()
	}()
	go func() {
		defer b.wg.Done()
		b.schedLoop()
	}()
	if b.opts.ShardID != 0 {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.gossipLoop()
		}()
	}
	return ln.Addr().String(), nil
}

// Close stops the broker: closes the listener and all connections, and
// waits for the handler goroutines to drain.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.stop)
	ln := b.ln
	var conns []net.Conn
	for _, p := range b.providers {
		conns = append(conns, p.nc)
	}
	for _, c := range b.consumers {
		conns = append(conns, c.nc)
	}
	for ps := range b.links {
		conns = append(conns, ps.nc)
	}
	b.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	b.wg.Wait()
	return nil
}

func (b *Broker) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(nc)
		}()
	}
}

// reaperLoop expires providers that miss heartbeats.
func (b *Broker) reaperLoop() {
	interval := b.opts.HeartbeatTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-b.stop:
			return
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		cutoff := time.Now().Add(-b.opts.HeartbeatTimeout).UnixNano()
		var dead []*providerState
		for _, p := range b.providers {
			if !p.gone && p.lastBeat.Load() < cutoff {
				dead = append(dead, p)
			}
		}
		for _, p := range dead {
			b.logf("broker: provider %d missed heartbeats, removing", p.info.ID)
			b.removeProviderLocked(p)
		}
		b.mu.Unlock()
		for _, p := range dead {
			p.nc.Close()
		}
	}
}

// handleConn performs the handshake and dispatches to the role loop.
func (b *Broker) handleConn(nc net.Conn) {
	defer nc.Close()
	conn := wire.NewConn(nc)
	conn.NoCoalesce = b.opts.NoCoalesce
	conn.ReadTimeout = 30 * time.Second

	msg, err := conn.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeProtocol, Msg: "expected hello"})
		return
	}
	if hello.Version != wire.ProtocolVersion {
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeVersion,
			Msg: fmt.Sprintf("protocol version %d unsupported", hello.Version)})
		return
	}

	switch hello.Role {
	case wire.RoleProvider:
		b.serveProvider(nc, conn, hello)
	case wire.RoleConsumer:
		b.serveConsumer(nc, conn, hello)
	case wire.RolePeer:
		b.servePeer(nc, conn, hello)
	default:
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeProtocol, Msg: "unknown role"})
	}
}

// schedLoop is the single scheduler goroutine: it runs one placement pass
// per wake-up. While a pass holds b.mu, arriving events queue on the mutex,
// set the dirty flag, and are all covered by the next pass — so a burst of
// N results costs one or two walks of the placement queue, not N.
func (b *Broker) schedLoop() {
	for {
		select {
		case <-b.schedWake:
		case <-b.stop:
			return
		}
		b.mu.Lock()
		for b.schedDirty && !b.closed {
			b.schedDirty = false
			b.schedulePassLocked()
		}
		b.mu.Unlock()
	}
}

// scheduleLocked records that scheduling state changed and wakes the
// scheduler goroutine. Callers hold b.mu; the pass itself runs on the
// scheduler goroutine so event handlers return immediately.
func (b *Broker) scheduleLocked() {
	b.schedDirty = true
	select {
	case b.schedWake <- struct{}{}:
	default: // a wake-up is already pending; it will cover this event
	}
}

// writerLoop drains a connection's outgoing queue through the shared
// wire.WriterLoop. fold, when non-nil, rewrites each drained burst before it
// is sent (batch-frame folding on capable consumer links).
func (b *Broker) writerLoop(conn *wire.Conn, out <-chan wire.Message, nc net.Conn, fold func([]wire.Message) []wire.Message) {
	wire.WriterLoop(conn, out, wire.WriterOpts{
		Max:        writerBatchMax,
		NoCoalesce: b.opts.NoCoalesce,
		Fold:       fold,
		Closer:     nc,
	})
}

// enqueue appends to a bounded send queue. A peer that cannot drain
// sendQueueDepth messages is broken or hostile: the drop is counted in
// broker.send_dropped, logged once per connection, and the connection is
// closed so the reader tears the peer down.
func (b *Broker) enqueue(out chan wire.Message, m wire.Message, nc net.Conn, warned *atomic.Bool, label string) {
	select {
	case out <- m:
	default:
		b.mSendDropped.Inc()
		if !warned.Swap(true) {
			b.logf("broker: %s send queue full; dropping %s and closing the connection", label, m.Type())
		}
		nc.Close()
	}
}

// ---------- lifecycle effect application ----------

// applyEffectsLocked executes the lifecycle engine's effects against the
// wire world: pending-queue appends, cancel messages, deadline timers, and
// result delivery. Effect slices are only valid until the next engine call,
// so callers must apply them before feeding another event.
func (b *Broker) applyEffectsLocked(fx []lifecycle.Effect) {
	for i := range fx {
		b.applyEffectLocked(&fx[i])
	}
}

func (b *Broker) applyEffectLocked(ef *lifecycle.Effect) {
	switch ef.Kind {
	case lifecycle.EffectLaunch:
		if ef.Delay > 0 {
			// Backoff re-issue: queue only after the delay, and only if the
			// tasklet is still live by then.
			tid := ef.Tasklet
			time.AfterFunc(ef.Delay, func() {
				b.mu.Lock()
				if !b.closed && b.life.Live(tid) {
					b.pending = append(b.pending, tid)
					b.scheduleLocked()
				}
				b.mu.Unlock()
			})
		} else {
			b.pending = append(b.pending, ef.Tasklet)
		}
	case lifecycle.EffectCancelAttempt:
		if p := b.providers[ef.Provider]; p != nil {
			b.enqueue(p.out, &wire.CancelAttempt{Attempt: ef.Attempt}, p.nc, &p.dropWarned, p.label)
		}
	case lifecycle.EffectSetDeadline:
		tid := ef.Tasklet
		b.deadlines[tid] = time.AfterFunc(ef.Delay, func() { b.onDeadline(tid) })
	case lifecycle.EffectDeliver:
		b.deliverLocked(ef)
	case lifecycle.EffectMemoStore, lifecycle.EffectCoalesced:
		// Informational; the memo package maintains its own counters.
	}
}

// ---------- provider side ----------

func (b *Broker) serveProvider(nc net.Conn, conn *wire.Conn, hello *wire.Hello) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.nextProvider++
	id := b.nextProvider
	now := time.Now()
	p := &providerState{
		info: core.ProviderInfo{
			ID:            id,
			Addr:          conn.RemoteAddr(),
			Reliability:   1,
			Joined:        now,
			LastHeartbeat: now,
		},
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: fmt.Sprintf("provider %d", id),
		caps:  hello.Caps,
		sent:  map[core.ProgramID]bool{},
	}
	p.lastBeat.Store(now.UnixNano())
	b.providers[id] = p
	b.mu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, p.out, nc, nil)
	}()

	b.enqueue(p.out, &wire.Welcome{ID: uint64(id)}, nc, &p.dropWarned, p.label)
	b.reg.Counter("providers.joined").Inc()
	b.logf("broker: provider %d connected from %s (%s)", id, conn.RemoteAddr(), hello.Name)

	conn.ReadTimeout = b.opts.HeartbeatTimeout * 2
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *wire.Register:
			p.lastBeat.Store(time.Now().UnixNano())
			b.mu.Lock()
			p.info.Slots = m.Slots
			p.info.Class = m.Class
			p.info.Speed = m.Speed
			p.free = m.Slots
			b.index.Upsert(&p.info, p.free, p.backlog)
			b.scheduleLocked()
			b.mu.Unlock()
			b.logf("broker: provider %d registered: %d slots, %.1f Mops/s, class %s",
				id, m.Slots, m.Speed, m.Class)
		case *wire.Heartbeat:
			// Liveness only; no broker state changes, so heartbeats never
			// queue behind the scheduling mutex.
			p.lastBeat.Store(time.Now().UnixNano())
		case *wire.AttemptResult:
			b.onAttemptResult(p, m)
		case *wire.AttemptResultBatch:
			b.onAttemptResultBatch(p, m)
		case *wire.Bye:
			goto done
		default:
			b.logf("broker: provider %d sent unexpected %s", id, msg.Type())
			goto done
		}
	}
done:
	b.mu.Lock()
	b.removeProviderLocked(p)
	b.mu.Unlock()
	close(p.out)
	b.mProvidersLost.Inc()
	b.logf("broker: provider %d disconnected", id)
}

// removeProviderLocked declares a provider dead: its in-flight attempts are
// fed back to the lifecycle engine as lost. Idempotent.
func (b *Broker) removeProviderLocked(p *providerState) {
	if p.gone {
		return
	}
	p.gone = true
	delete(b.providers, p.info.ID)
	b.index.Remove(p.info.ID)

	lost, fx := b.life.ProviderLost(p.info.ID)
	if lost > 0 {
		b.mAttemptsLost.Add(int64(lost))
	}
	b.applyEffectsLocked(fx)
	b.scheduleLocked()
}

// onAttemptResult processes a provider's result report.
func (b *Broker) onAttemptResult(p *providerState, m *wire.AttemptResult) {
	b.mu.Lock()
	defer b.mu.Unlock()

	disp, fx := b.life.Result(core.Result{
		Tasklet:   m.Tasklet,
		Attempt:   m.Attempt,
		Provider:  p.info.ID,
		Status:    m.Status,
		Return:    m.Return,
		Emitted:   m.Emitted,
		FaultCode: m.FaultCode,
		FaultMsg:  m.FaultMsg,
		FuelUsed:  m.FuelUsed,
		Exec:      time.Duration(m.ExecNanos),
	})
	if disp == lifecycle.ResultStale {
		return // unknown attempt or wrong provider; no slot was consumed
	}

	p.free++
	p.backlog--
	p.finished++
	b.updateReliabilityLocked(p)
	b.index.Complete(p.info.ID) // after the reliability update so rank refreshes

	if disp == lifecycle.ResultConsumed {
		switch m.Status {
		case core.StatusOK:
			b.mAttemptsOK.Inc()
		case core.StatusFault:
			b.mAttemptsFlt.Inc()
		default:
			b.mAttemptsOth.Inc()
		}
		b.mExecMS.Observe(float64(m.ExecNanos) / 1e6)
		b.applyEffectsLocked(fx)
	}
	b.scheduleLocked()
}

// onAttemptResultBatch processes a provider's folded burst of result
// reports: the whole batch becomes one slice of lifecycle events applied
// under a single lock acquisition, with one slot/index/reliability
// settlement, one counter update per status class, and one scheduler
// wake-up for the burst.
func (b *Broker) onAttemptResultBatch(p *providerState, m *wire.AttemptResultBatch) {
	if len(m.Results) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	evs := b.evScratch[:0]
	for i := range m.Results {
		r := &m.Results[i]
		evs = append(evs, lifecycle.Event{
			Kind: lifecycle.EventResult,
			Result: core.Result{
				Tasklet:   r.Tasklet,
				Attempt:   r.Attempt,
				Provider:  p.info.ID,
				Status:    r.Status,
				Return:    r.Return,
				Emitted:   r.Emitted,
				FaultCode: r.FaultCode,
				FaultMsg:  r.FaultMsg,
				FuelUsed:  r.FuelUsed,
				Exec:      time.Duration(r.ExecNanos),
			},
		})
	}
	fx := b.life.Apply(evs)

	freed := 0
	var nOK, nFlt, nOth int64
	for i := range evs {
		if evs[i].Disp == lifecycle.ResultStale {
			continue // unknown attempt or wrong provider; no slot was consumed
		}
		freed++
		if evs[i].Disp != lifecycle.ResultConsumed {
			continue
		}
		r := &m.Results[i]
		switch r.Status {
		case core.StatusOK:
			nOK++
		case core.StatusFault:
			nFlt++
		default:
			nOth++
		}
		b.mExecMS.Observe(float64(r.ExecNanos) / 1e6)
	}
	if freed > 0 {
		p.free += freed
		p.backlog -= freed
		p.finished += freed
		b.updateReliabilityLocked(p)
		// One absolute index resync replaces `freed` Complete calls: Upsert
		// sets free/backlog outright and re-ranks once.
		b.index.Upsert(&p.info, p.free, p.backlog)
	}
	if nOK > 0 {
		b.mAttemptsOK.Add(nOK)
	}
	if nFlt > 0 {
		b.mAttemptsFlt.Add(nFlt)
	}
	if nOth > 0 {
		b.mAttemptsOth.Add(nOth)
	}
	b.applyEffectsLocked(fx)
	b.scheduleLocked()
	b.evScratch = evs[:0]
}

// updateReliabilityLocked refreshes the completion-ratio estimate.
func (b *Broker) updateReliabilityLocked(p *providerState) {
	if p.assigned > 0 {
		p.info.Reliability = float64(p.finished) / float64(p.assigned)
		if p.info.Reliability > 1 {
			p.info.Reliability = 1
		}
	}
}

// ---------- consumer side ----------

func (b *Broker) serveConsumer(nc net.Conn, conn *wire.Conn, hello *wire.Hello) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.nextConsumer++
	id := b.nextConsumer
	c := &consumerState{
		id:    id,
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: fmt.Sprintf("consumer %d", id),
		caps:  hello.Caps,
		jobs:  map[core.JobID]bool{},
	}
	b.consumers[id] = c
	b.mu.Unlock()

	// Batch-capable consumers get each writer burst's run of ResultPushes
	// folded into one ResultPushBatch frame; legacy consumers keep receiving
	// byte-identical single frames.
	var fold func([]wire.Message) []wire.Message
	if c.caps&wire.CapBatch != 0 && !b.opts.NoBatch {
		fold = wire.FoldBatchFrames
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, c.out, nc, fold)
	}()

	b.enqueue(c.out, &wire.Welcome{ID: uint64(id)}, nc, &c.dropWarned, c.label)
	b.logf("broker: consumer %d connected from %s (%s)", id, conn.RemoteAddr(), hello.Name)

	conn.ReadTimeout = 0 // consumers may idle while awaiting results
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *wire.SubmitJob:
			if err := b.acceptJob(c, m); err != nil {
				b.enqueue(c.out, &wire.ErrorMsg{Code: wire.ErrCodeBadJob, Msg: err.Error()}, nc, &c.dropWarned, c.label)
			}
		case *wire.CancelJob:
			b.cancelJob(c, m.Job)
		case *wire.QueryFleet:
			b.enqueue(c.out, b.fleetInfo(), nc, &c.dropWarned, c.label)
		case *wire.Bye:
			goto done
		default:
			b.logf("broker: consumer %d sent unexpected %s", id, msg.Type())
			goto done
		}
	}
done:
	b.mu.Lock()
	b.removeConsumerLocked(c)
	b.mu.Unlock()
	close(c.out)
	b.logf("broker: consumer %d disconnected", id)
}

// acceptJob validates and admits a job, submitting its tasklets to the
// lifecycle engine.
func (b *Broker) acceptJob(c *consumerState, m *wire.SubmitJob) error {
	spec := core.JobSpec{
		Program: m.Program, Params: m.Params, QoC: m.QoC, Fuel: m.Fuel, Seed: m.Seed,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	fuel := m.Fuel
	if fuel == 0 {
		fuel = 100_000_000
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if c.gone {
		return errors.New("broker: consumer disconnected")
	}
	if c.pending+len(m.Params) > b.opts.MaxPendingPerConsumer {
		return fmt.Errorf("broker: consumer queue limit %d exceeded", b.opts.MaxPendingPerConsumer)
	}

	progID := core.HashProgram(m.Program)
	if _, ok := b.programs[progID]; !ok {
		data := make([]byte, len(m.Program))
		copy(data, m.Program)
		b.programs[progID] = data
	}

	b.nextJob++
	job := &jobState{id: b.nextJob, consumer: c.id, total: len(m.Params)}
	b.jobs[job.id] = job
	c.jobs[job.id] = true

	// The whole job is one bulk Submit: the engine walks every tasklet under
	// a single effect-scratch reset and returns one concatenated effect
	// slice. Deliver effects (cache hits) are skipped on the first walk and
	// replayed only after the JobAccepted below, so the consumer has
	// registered the job before its first ResultPush arrives; nothing
	// between the two walks calls the engine, so the slice stays valid.
	now := time.Now()
	evs := b.evScratch[:0]
	for i, params := range m.Params {
		b.nextTasklet++
		t := core.Tasklet{
			ID: b.nextTasklet, Job: job.id, Index: i,
			Program: progID, Params: params,
			QoC: m.QoC, Fuel: fuel, Seed: m.Seed, Submitted: now,
		}
		job.tasklets = append(job.tasklets, t.ID)
		c.pending++

		ev := lifecycle.Event{Kind: lifecycle.EventSubmit, Tasklet: t}
		if b.memoOn {
			ev.Key, ev.HaveKey = memo.KeyFor(uint64(progID), t.Seed, t.Params)
		}
		evs = append(evs, ev)
	}
	fx := b.life.Apply(evs)
	for j := range fx {
		if fx[j].Kind != lifecycle.EffectDeliver {
			b.applyEffectLocked(&fx[j])
		}
	}
	b.reg.Counter("tasklets.submitted").Add(int64(len(m.Params)))
	b.enqueue(c.out, &wire.JobAccepted{Job: job.id, Tasklets: job.total}, c.nc, &c.dropWarned, c.label)
	for j := range fx {
		if fx[j].Kind == lifecycle.EffectDeliver {
			b.deliverLocked(&fx[j])
		}
	}
	b.evScratch = evs[:0]
	b.logf("broker: job %d accepted: %d tasklets, qoc %s", job.id, job.total, m.QoC.Mode)
	b.scheduleLocked()
	return nil
}

// onDeadline fails a tasklet whose wall-clock budget expired.
func (b *Broker) onDeadline(id core.TaskletID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	expired, fx := b.life.Deadline(id)
	if !expired {
		return
	}
	b.mDeadlineExp.Inc()
	b.applyEffectsLocked(fx)
	b.scheduleLocked() // a deadlined leader's dissolved flight re-queues its waiters
}

// cancelJob abandons a job's outstanding tasklets.
func (b *Broker) cancelJob(c *consumerState, id core.JobID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	job := b.jobs[id]
	if job == nil || job.consumer != c.id || job.cancelled {
		return
	}
	job.cancelled = true
	for _, tid := range job.tasklets {
		if _, ok := b.migrated[tid]; ok {
			// Migrated away: the origin-side record is the unit of ownership
			// and it dies here; the peer's copy runs to waste and its
			// MigrateResult will find no record.
			delete(b.migrated, tid)
			job.failed++
			c.pending--
			continue
		}
		dropped, fx := b.life.Cancel(tid)
		if !dropped {
			continue
		}
		b.stopDeadlineLocked(tid)
		job.failed++
		c.pending--
		b.applyEffectsLocked(fx)
	}
	b.purgePendingLocked()
	b.scheduleLocked() // a dropped leader may have promoted a waiter
	b.enqueue(c.out, &wire.JobDone{Job: job.id, Completed: job.completed, Failed: job.failed}, c.nc, &c.dropWarned, c.label)
	b.logf("broker: job %d cancelled", id)
}

// removeConsumerLocked drops a consumer and abandons its outstanding work.
func (b *Broker) removeConsumerLocked(c *consumerState) {
	if c.gone {
		return
	}
	c.gone = true
	delete(b.consumers, c.id)
	for jid := range c.jobs {
		job := b.jobs[jid]
		if job == nil {
			continue
		}
		for _, tid := range job.tasklets {
			delete(b.migrated, tid)
			if dropped, fx := b.life.Cancel(tid); dropped {
				b.stopDeadlineLocked(tid)
				b.applyEffectsLocked(fx)
			}
		}
		delete(b.jobs, jid)
	}
	b.purgePendingLocked()
	b.scheduleLocked() // a dropped leader may have promoted a waiter
}

// stopDeadlineLocked disarms and forgets a tasklet's deadline timer, if any.
func (b *Broker) stopDeadlineLocked(tid core.TaskletID) {
	if t := b.deadlines[tid]; t != nil {
		t.Stop()
		delete(b.deadlines, tid)
	}
}

// deliverLocked pushes a final result to the consumer and updates job
// accounting.
func (b *Broker) deliverLocked(ef *lifecycle.Effect) {
	b.stopDeadlineLocked(ef.Tasklet)
	b.finalizedN++
	if rec, ok := b.adopted[ef.Tasklet]; ok {
		// An adopted tasklet's final goes home as a MigrateResult: the
		// origin shard owns the consumer connection and the job accounting.
		delete(b.adopted, ef.Tasklet)
		b.returnAdoptedLocked(rec, ef)
		return
	}
	final := ef.Final

	job := b.jobs[final.Job]
	if job == nil {
		return
	}
	if final.OK() {
		job.completed++
		b.mCompleted.Inc()
	} else {
		job.failed++
		b.mFailed.Inc()
	}
	b.mLatencyMS.ObserveDuration(time.Since(ef.Submitted))

	c := b.consumers[job.consumer]
	if c == nil || c.gone {
		return
	}
	c.pending--
	b.enqueue(c.out, &wire.ResultPush{
		Job:       final.Job,
		Tasklet:   final.Tasklet,
		Index:     final.Index,
		Status:    final.Status,
		Return:    final.Return,
		Emitted:   final.Emitted,
		FaultCode: final.FaultCode,
		FaultMsg:  final.FaultMsg,
		Provider:  final.Provider,
		Attempts:  ef.Attempts,
		ExecNanos: int64(final.Exec),
	}, c.nc, &c.dropWarned, c.label)
	if job.completed+job.failed == job.total {
		b.enqueue(c.out, &wire.JobDone{Job: job.id, Completed: job.completed, Failed: job.failed}, c.nc, &c.dropWarned, c.label)
		delete(b.jobs, job.id)
		delete(c.jobs, job.id)
		b.logf("broker: job %d done: %d completed, %d failed", job.id, job.completed, job.failed)
	}
}

// ---------- scheduling ----------

// schedulePassLocked walks the placement queue, assigning attempts to
// providers according to the policy. Entries whose tasklet vanished (job
// cancelled, already complete) are purged. Entries with no eligible provider
// stay queued. Event handlers never call this directly — they call
// scheduleLocked, which batches an event-burst into one pass run by
// schedLoop.
//
// Two implementations exist: the indexed batch pass (default) feeds the
// queue through the incremental scheduler index — each pick is a heap peek
// or an order-statistics query, zero allocations — while the legacy pass
// (Options.NoIndex, or a policy without an indexed form) rebuilds the
// candidate slice per pick. Both place the same provider sequence; the
// differential tests pin that equivalence.
func (b *Broker) schedulePassLocked() {
	b.mPendingDep.Set(int64(len(b.pending)))
	if len(b.pending) == 0 || len(b.providers) == 0 {
		return
	}
	start := time.Now()
	var placed int
	if b.index != nil {
		placed = b.schedulePassIndexedLocked()
	} else {
		placed = b.schedulePassLegacyLocked()
	}
	b.flushAssignBatchesLocked()
	b.mSchedPassNS.Observe(float64(time.Since(start)))
	if placed > 0 {
		b.mPlaced.Add(int64(placed))
		b.mLaunched.Add(int64(placed)) // one counter update per pass, not per attempt
	}
	b.mPendingDep.Set(int64(len(b.pending)))
}

// schedulePassIndexedLocked is the batch placement pass over the
// incremental index. The index mirrors provider free/backlog state (event
// handlers keep it in sync), so each pick consults the maintained order
// directly; launchAttemptLocked's Assign hook re-ranks the chosen provider
// before the next pick.
func (b *Broker) schedulePassIndexedLocked() int {
	placed := 0
	remaining := b.pending[:0]
	for idx, tid := range b.pending {
		// Without free capacity nothing below can place; keep the rest of
		// the queue as-is instead of walking it (the queue can hold many
		// thousands of entries and schedule runs on every result).
		if b.index.FreeSlots() <= 0 {
			remaining = append(remaining, b.pending[idx:]...)
			break
		}
		t := b.life.Tasklet(tid)
		if t == nil {
			continue
		}
		b.exclScratch = b.life.AppendActiveProviders(tid, b.exclScratch[:0])
		pid, ok := b.index.Pick(t, b.exclScratch)
		if !ok {
			remaining = append(remaining, tid)
			continue
		}
		p := b.providers[pid]
		if p == nil || p.free <= 0 {
			remaining = append(remaining, tid)
			continue
		}
		if b.launchAttemptLocked(t, p) {
			placed++
		}
	}
	b.pending = remaining
	return placed
}

// schedulePassLegacyLocked is the full-scan placement pass: the candidate
// view is rebuilt for every pick because free/backlog change as attempts
// are assigned. Kept for the E10 ablation and for policies without an
// indexed form.
func (b *Broker) schedulePassLegacyLocked() int {
	totalFree := 0
	for _, p := range b.providers {
		if p.info.Slots > 0 {
			totalFree += p.free
		}
	}

	placed := 0
	remaining := b.pending[:0]
	for idx, tid := range b.pending {
		// Without free capacity nothing below can place; keep the rest of
		// the queue as-is instead of walking it (the queue can hold many
		// thousands of entries and schedule runs on every result).
		if totalFree <= 0 {
			remaining = append(remaining, b.pending[idx:]...)
			break
		}
		t := b.life.Tasklet(tid)
		if t == nil {
			continue
		}
		// Rebuild the candidate view each pick; free/backlog change as we
		// assign.
		cands := b.candScratch[:0]
		for _, p := range b.providers {
			if p.info.Slots == 0 {
				continue // not yet registered
			}
			cands = append(cands, scheduler.Candidate{
				Info: &p.info, FreeSlots: p.free, Backlog: p.backlog,
			})
		}
		b.candScratch = cands
		b.exclScratch = b.life.AppendActiveProviders(tid, b.exclScratch[:0])
		req := scheduler.Request{Tasklet: t, ExcludeIDs: b.exclScratch}
		pid, ok := b.opts.Policy.Pick(req, cands)
		if !ok {
			remaining = append(remaining, tid)
			continue
		}
		p := b.providers[pid]
		if p == nil || p.free <= 0 {
			remaining = append(remaining, tid)
			continue
		}
		if b.launchAttemptLocked(t, p) {
			placed++
		}
		totalFree--
	}
	b.pending = remaining
	return placed
}

// purgePendingLocked removes queue entries whose tasklet no longer exists.
func (b *Broker) purgePendingLocked() {
	live := b.pending[:0]
	for _, tid := range b.pending {
		if b.life.Live(tid) {
			live = append(live, tid)
		}
	}
	b.pending = live
}

// launchAttemptLocked creates and dispatches one attempt. For
// batch-capable providers the assignment is staged into the provider's
// per-pass AssignBatch (flushed by flushAssignBatchesLocked at the end of
// the placement pass) instead of sent as its own frame.
func (b *Broker) launchAttemptLocked(t *core.Tasklet, p *providerState) bool {
	aid, ok := b.life.Launched(t.ID, p.info.ID)
	if !ok {
		return false // defensive; callers checked liveness under the same lock
	}
	p.free--
	p.backlog++
	p.assigned++
	b.updateReliabilityLocked(p)
	b.index.Assign(p.info.ID) // after the reliability update so rank refreshes

	a := wire.Assign{
		Attempt: aid,
		Tasklet: t.ID,
		Program: t.Program,
		Params:  t.Params,
		Fuel:    t.Fuel,
		Seed:    t.Seed,
		// A provider that never advertised the flags tail can't decode it;
		// drop the flag rather than the peer — a legacy provider has no
		// result memo for NoCache to bypass anyway.
		NoCache: t.QoC.NoCache && p.caps&wire.CapFlagsTail != 0,
	}
	var progData []byte
	if b.opts.DisableProgramCache {
		progData = b.programs[t.Program]
	} else if !p.sent[t.Program] {
		progData = b.programs[t.Program]
		p.sent[t.Program] = true
	}

	if !b.opts.NoBatch && p.caps&wire.CapBatch != 0 {
		if p.staged == nil {
			p.staged = &wire.AssignBatch{}
			b.stagedScratch = append(b.stagedScratch, p)
		}
		if len(progData) > 0 && !batchHasProgram(p.staged, t.Program) {
			// Program bytes are deduplicated within the frame: shipped once
			// in the table however many entries reference them.
			p.staged.Programs = append(p.staged.Programs, wire.ProgramBlob{ID: t.Program, Data: progData})
		}
		p.staged.Assigns = append(p.staged.Assigns, a)
		return true
	}
	a.ProgramData = progData
	b.enqueue(p.out, &a, p.nc, &p.dropWarned, p.label)
	return true
}

// batchHasProgram reports whether the staged batch's program table already
// carries id. Tables hold the pass's distinct fresh programs — almost
// always zero or one entry — so a linear scan wins over any map.
func batchHasProgram(ab *wire.AssignBatch, id core.ProgramID) bool {
	for i := range ab.Programs {
		if ab.Programs[i].ID == id {
			return true
		}
	}
	return false
}

// flushAssignBatchesLocked ships every staged AssignBatch accumulated by
// the current placement pass: one frame per provider per pass. A batch that
// holds a single assignment degenerates to a plain Assign frame, so
// low-rate traffic stays byte-identical to the pre-batch revision.
func (b *Broker) flushAssignBatchesLocked() {
	for _, p := range b.stagedScratch {
		ab := p.staged
		p.staged = nil
		if ab == nil || len(ab.Assigns) == 0 {
			continue
		}
		if len(ab.Assigns) == 1 {
			a := ab.Assigns[0]
			if len(ab.Programs) == 1 {
				a.ProgramData = ab.Programs[0].Data
			}
			b.enqueue(p.out, &a, p.nc, &p.dropWarned, p.label)
			continue
		}
		b.enqueue(p.out, ab, p.nc, &p.dropWarned, p.label)
	}
	b.stagedScratch = b.stagedScratch[:0]
}

// fleetInfo builds the provider-directory reply for QueryFleet.
func (b *Broker) fleetInfo() *wire.FleetInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	info := &wire.FleetInfo{Pending: len(b.pending)}
	for _, p := range b.providers {
		info.Providers = append(info.Providers, wire.ProviderEntry{
			ID:          p.info.ID,
			Class:       p.info.Class,
			Slots:       p.info.Slots,
			FreeSlots:   p.free,
			Speed:       p.info.Speed,
			Reliability: p.info.Reliability,
			Executed:    int64(p.finished),
		})
	}
	sort.Slice(info.Providers, func(i, j int) bool {
		return info.Providers[i].ID < info.Providers[j].ID
	})
	return info
}

// Snapshot is a point-in-time view of broker state for tests and the CLI.
type Snapshot struct {
	Providers []core.ProviderInfo
	Pending   int
	InFlight  int
	Jobs      int
}

// Snapshot returns current broker state.
func (b *Broker) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Snapshot{Pending: len(b.pending), InFlight: b.life.InFlight(), Jobs: len(b.jobs)}
	for _, p := range b.providers {
		info := p.info
		info.LastHeartbeat = time.Unix(0, p.lastBeat.Load())
		s.Providers = append(s.Providers, info)
	}
	return s
}

var _ io.Closer = (*Broker)(nil)
